package ldr

import (
	"time"

	"github.com/manetlab/ldr/internal/scenario"
)

// ProtocolName selects a routing protocol for a scenario.
type ProtocolName = scenario.ProtocolName

// The protocols evaluated in the paper.
const (
	ProtoLDR  = scenario.LDR
	ProtoAODV = scenario.AODV
	ProtoDSR  = scenario.DSR
	ProtoDSR7 = scenario.DSR7
	ProtoOLSR = scenario.OLSR
)

// ScenarioConfig describes one simulation run (see internal/scenario).
type ScenarioConfig = scenario.Config

// ScenarioResult carries a finished run's metrics.
type ScenarioResult = scenario.Result

// Scenario50 returns the paper's 50-node, 1500 m × 300 m scenario.
func Scenario50(proto ProtocolName, flows int, pause time.Duration, seed int64) ScenarioConfig {
	return scenario.Nodes50(proto, flows, pause, seed)
}

// Scenario100 returns the paper's 100-node, 2200 m × 600 m scenario.
func Scenario100(proto ProtocolName, flows int, pause time.Duration, seed int64) ScenarioConfig {
	return scenario.Nodes100(proto, flows, pause, seed)
}

// RunScenario executes a scenario to completion and returns its metrics.
func RunScenario(cfg ScenarioConfig) (ScenarioResult, error) {
	return scenario.Run(cfg)
}
