module github.com/manetlab/ldr

go 1.22
