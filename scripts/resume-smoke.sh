#!/bin/sh
# resume-smoke: crash-safety acceptance for journaled sweeps.
#
# Runs the chaos suite once uninterrupted as the reference, then again
# with a journal, SIGKILLs it mid-flight (no chance to clean up), resumes
# from the journal, and requires the resumed output to be byte-identical
# to the uninterrupted run. Also checks the stale-journal guard: a
# non-empty journal without -resume must be rejected.
set -eu

go=${GO:-go}
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

# Heavy enough that SIGKILL lands mid-sweep at 2 workers, small enough
# to finish in well under a minute: 2 profiles x 2 pauses x 2 protocols
# x 2 trials = 16 cells.
flags="-profiles reboot,flap -protocols ldr,aodv -trials 2 -simtime 20s -workers 2"

$go build -o "$dir/ldrchaos" ./cmd/ldrchaos

"$dir/ldrchaos" $flags >"$dir/ref.txt"

"$dir/ldrchaos" $flags -journal "$dir/journal" >"$dir/killed.txt" 2>/dev/null &
pid=$!
sleep 2
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

n=$(ls "$dir/journal" 2>/dev/null | wc -l)
echo "resume-smoke: SIGKILL left $n durable cell record(s)"

if [ "$n" -gt 0 ]; then
    if "$dir/ldrchaos" $flags -journal "$dir/journal" >/dev/null 2>&1; then
        echo "resume-smoke: FAIL — non-empty journal accepted without -resume" >&2
        exit 1
    fi
fi

"$dir/ldrchaos" $flags -journal "$dir/journal" -resume >"$dir/resumed.txt"

if ! cmp -s "$dir/ref.txt" "$dir/resumed.txt"; then
    echo "resume-smoke: FAIL — resumed output differs from the uninterrupted run" >&2
    diff "$dir/ref.txt" "$dir/resumed.txt" >&2 || true
    exit 1
fi
echo "resume-smoke: OK — resumed output byte-identical to the uninterrupted run"
