// Coordination: the paper's §1 argument, run live.
//
// Three families of loop-free routing repair the same broken link on the
// same 16-node ring:
//
//   - DUAL (wire-line diffusing computations): the stranded region must
//     exchange query/reply rounds and freeze routes until every neighbor
//     has answered;
//   - link reversal (Gafni-Bertsekas full and partial, TORA's engine):
//     height changes cascade node by node until the graph is again
//     destination-oriented;
//   - LDR: the node that lost its successor makes a purely local decision
//     (NDC), then issues one expanding-ring discovery; nobody is frozen
//     and no multi-hop synchronization happens.
//
// The example prints each scheme's control cost for the identical event.
package main

import (
	"fmt"
	"math"
	"os"
	"time"

	"github.com/manetlab/ldr/internal/core"
	"github.com/manetlab/ldr/internal/dual"
	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/sim"
	"github.com/manetlab/ldr/internal/tora"
)

const ringSize = 16

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "coordination:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("Repairing the link next to the destination on a %d-node ring:\n\n", ringSize)

	// DUAL.
	s := sim.New()
	dn := dual.NewNetwork(s, ringSize, 0, time.Millisecond)
	for i := 0; i < ringSize; i++ {
		dn.AddLink(i, (i+1)%ringSize, 1)
	}
	s.RunAll()
	before := dn.TotalMessages()
	qBefore, rBefore, uBefore := dn.Messages["query"], dn.Messages["reply"], dn.Messages["update"]
	dn.RemoveLink(0, 1)
	s.RunAll()
	fmt.Printf("%-28s %4d reliable messages (%d queries, %d replies, %d updates)\n",
		"DUAL diffusing computation:", dn.TotalMessages()-before,
		dn.Messages["query"]-qBefore, dn.Messages["reply"]-rBefore, dn.Messages["update"]-uBefore)
	if err := dn.CheckLoopFree(); err != nil {
		return err
	}

	// Link reversal.
	for _, v := range []struct {
		name    string
		variant tora.Variant
	}{
		{"Full link reversal:", tora.FullReversal},
		{"Partial link reversal (TORA):", tora.PartialReversal},
	} {
		tn := tora.New(ringSize, 0, v.variant)
		for i := 0; i < ringSize; i++ {
			tn.AddLink(i, (i+1)%ringSize)
		}
		tn.Stabilize()
		rBefore := tn.Reversals
		tn.RemoveLink(0, 1)
		rounds := tn.Stabilize()
		fmt.Printf("%-28s %4d node reversals over %d cascading rounds\n",
			v.name, tn.Reversals-rBefore, rounds)
	}

	// LDR over an actual wireless ring.
	msgs, rediscoveryLatency := ldrRepair()
	fmt.Printf("%-28s %4d wireless control transmissions, traffic restored in %v\n",
		"LDR local decision + ring:", msgs, rediscoveryLatency.Round(time.Millisecond))

	fmt.Println("\nDUAL freezes the dependent subtree until every reply arrives; link")
	fmt.Println("reversal touches a cascading region; LDR's labels let every node act")
	fmt.Println("alone, over unreliable broadcasts, with the destination's sequence")
	fmt.Println("number as the only reset authority.")
	return nil
}

// ldrRepair breaks the same ring link under LDR and measures control cost
// and time-to-repair.
func ldrRepair() (uint64, time.Duration) {
	radiusChord := 250.0
	radius := radiusChord / (2 * math.Sin(math.Pi/ringSize))
	pts := make([]mobility.Point, ringSize)
	for i := range pts {
		angle := 2 * math.Pi * float64(i) / ringSize
		pts[i] = mobility.Point{X: radius + radius*math.Cos(angle), Y: radius + radius*math.Sin(angle)}
	}
	tracks := make([][]mobility.ScriptLeg, ringSize)
	for i, p := range pts {
		tracks[i] = []mobility.ScriptLeg{{At: 0, Pos: p}}
	}
	tracks[1] = []mobility.ScriptLeg{
		{At: 0, Pos: pts[1]},
		{At: 6 * time.Second, Pos: pts[1]},
		{At: 8 * time.Second, Pos: mobility.Point{X: pts[1].X, Y: pts[1].Y + 5000}},
	}
	nw := routing.NewNetwork(ringSize, mobility.NewScript(tracks),
		radio.DefaultConfig(), mac.DefaultConfig(), 5,
		func(n *routing.Node) routing.Protocol { return core.New(n, core.DefaultConfig()) })
	nw.Start()
	for ts := time.Second; ts < 20*time.Second; ts += 250 * time.Millisecond {
		nw.Sim.At(ts, func() { nw.Nodes[2].OriginateData(0, 64) })
	}
	var ctrlBefore, deliveredBefore uint64
	var breakAt, restoredAt time.Duration
	nw.Sim.At(6*time.Second, func() {
		ctrlBefore = nw.Collector.TotalControlTransmitted()
		deliveredBefore = nw.Collector.DataDelivered
		breakAt = nw.Sim.Now()
	})
	var check func()
	check = func() {
		if restoredAt == 0 && breakAt > 0 && nw.Collector.DataDelivered > deliveredBefore+8 {
			restoredAt = nw.Sim.Now()
			return
		}
		nw.Sim.Schedule(100*time.Millisecond, check)
	}
	nw.Sim.Schedule(6*time.Second, check)
	nw.Sim.Run(20 * time.Second)
	return nw.Collector.TotalControlTransmitted() - ctrlBefore, restoredAt - breakAt
}
