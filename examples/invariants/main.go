// Invariants: a deterministic walkthrough of LDR's two loop-freedom
// invariants, in the spirit of the paper's §2.3 example (Fig. 1).
//
// A four-hop chain T–D–C–B leads to a roaming node E that starts next to
// the destination T and then drives to the far end of the chain. While E
// is adjacent to T its feasible distance to T becomes 1 — the strongest
// label possible. After the move, *no* path to T can beat that label
// (every candidate has distance ≥ 1), so E's new route request cannot be
// answered by any intermediate node without violating the ordering
// criterion: the relays set the reset-required (T) bit, the request runs
// all the way to the destination, and T — and only T — increments its
// sequence number, resetting the feasible distances along the reply path.
//
// The example prints the (distance, feasible distance, sequence number)
// labels along the successor path at each stage and checks the global
// loop-freedom invariant continuously.
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/manetlab/ldr/internal/core"
	"github.com/manetlab/ldr/internal/loopcheck"
	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/routing"
)

// Node roles, matching the paper's lettering.
const (
	nodeT = 0 // destination
	nodeD = 1
	nodeC = 2
	nodeB = 3
	nodeE = 4 // the roaming requester
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "invariants:", err)
		os.Exit(1)
	}
}

func run() error {
	// Chain T(0,0) — D(250,0) — C(500,0) — B(750,0); E starts beside T at
	// (250,100) and relocates to (1000,0), where it can reach only B.
	tracks := [][]mobility.ScriptLeg{
		nodeT: {{At: 0, Pos: mobility.Point{X: 0, Y: 0}}},
		nodeD: {{At: 0, Pos: mobility.Point{X: 250, Y: 0}}},
		nodeC: {{At: 0, Pos: mobility.Point{X: 500, Y: 0}}},
		nodeB: {{At: 0, Pos: mobility.Point{X: 750, Y: 0}}},
		nodeE: {
			{At: 0, Pos: mobility.Point{X: 250, Y: 100}},
			{At: 20 * time.Second, Pos: mobility.Point{X: 250, Y: 100}},
			{At: 30 * time.Second, Pos: mobility.Point{X: 1000, Y: 0}},
		},
	}
	model := mobility.NewScript(tracks)

	nw := routing.NewNetwork(5, model, radio.DefaultConfig(), mac.DefaultConfig(), 3,
		func(n *routing.Node) routing.Protocol {
			return core.New(n, core.DefaultConfig())
		})
	nw.Start()

	// E streams data toward T for the whole scenario, keeping its route
	// alive so the label history matters.
	for t := time.Second; t < 60*time.Second; t += 200 * time.Millisecond {
		nw.Sim.At(t, func() { nw.Nodes[nodeE].OriginateData(nodeT, 64) })
	}

	names := map[routing.NodeID]string{nodeT: "T", nodeD: "D", nodeC: "C", nodeB: "B", nodeE: "E"}
	dump := func(label string) {
		fmt.Printf("\n[%s] t=%v — labels toward T (dist/fd, sn counter):\n",
			label, nw.Sim.Now().Round(time.Millisecond))
		for _, id := range []routing.NodeID{nodeE, nodeB, nodeC, nodeD} {
			ldr := nw.Nodes[id].Protocol().(*core.LDR)
			if next, dist, ok := ldr.RouteTo(nodeT); ok {
				fmt.Printf("  %s -> %s   %d/%d, sn=%d\n",
					names[id], names[next], dist, ldr.FeasibleDistance(nodeT),
					core.Seqno(seqOf(ldr, nodeT)).Counter())
			} else {
				fmt.Printf("  %s has no active route (fd label retained: %d)\n",
					names[id], ldr.FeasibleDistance(nodeT))
			}
		}
		if vs := loopcheck.Check(nw.Nodes); len(vs) > 0 {
			for _, v := range vs {
				fmt.Println("  VIOLATION:", v)
			}
		} else {
			fmt.Println("  loopcheck: successor graph loop-free, ordering criterion holds")
		}
	}

	nw.Sim.At(10*time.Second, func() { dump("E beside T: one-hop route, fd=1") })
	nw.Sim.At(45*time.Second, func() { dump("E at far end: path reset by destination") })
	nw.Sim.Run(60 * time.Second)

	tNode := nw.Nodes[nodeT].Protocol().(*core.LDR)
	fmt.Printf("\nT's own sequence number counter: %d\n", tNode.OwnSeq().Counter())
	fmt.Println("Exactly the destination-controlled resets happened — no third party")
	fmt.Println("ever incremented T's number (AODV would have done so on every break).")
	return nil
}

// seqOf reads the sequence number E stores for dst via the snapshot API.
func seqOf(ldr *core.LDR, dst routing.NodeID) uint64 {
	for _, e := range ldr.SnapshotTable() {
		if e.Dst == dst {
			return e.SeqNo
		}
	}
	return 0
}
