// Rescue: a disaster-response network that partitions and heals.
//
// Two four-node teams work 800 m apart — far beyond radio range — linked
// only by a relay vehicle parked between them. Mid-scenario the relay
// drives away (the network partitions), then returns (the partition
// heals). The example shows LDR's failure handling end to end: link-layer
// loss detection, RERR propagation, failed expanding-ring searches while
// partitioned, and on-demand rediscovery the moment the relay returns —
// all without any sequence-number inflation at the destination.
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/manetlab/ldr/internal/core"
	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/routing"
)

const (
	teamSpacing = 200 // intra-team link length (m), below the 275 m range
	relayID     = 8
	simLen      = 120 * time.Second
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rescue:", err)
		os.Exit(1)
	}
}

func run() error {
	// West team: nodes 0-3 along x=0..600. East team: nodes 4-7 along
	// x=1000..1600. The relay (node 8) bridges x=600..1000 at x=800.
	tracks := make([][]mobility.ScriptLeg, 9)
	for i := 0; i < 4; i++ {
		tracks[i] = fixed(float64(i) * teamSpacing)
	}
	for i := 4; i < 8; i++ {
		tracks[i] = fixed(1000 + float64(i-4)*teamSpacing)
	}
	// The relay holds position, leaves at t=40 s, and is back by t=80 s.
	tracks[relayID] = []mobility.ScriptLeg{
		{At: 0, Pos: mobility.Point{X: 800, Y: 0}},
		{At: 40 * time.Second, Pos: mobility.Point{X: 800, Y: 0}},
		{At: 50 * time.Second, Pos: mobility.Point{X: 800, Y: 2000}}, // gone
		{At: 70 * time.Second, Pos: mobility.Point{X: 800, Y: 2000}},
		{At: 80 * time.Second, Pos: mobility.Point{X: 800, Y: 0}}, // back
	}
	model := mobility.NewScript(tracks)

	nw := routing.NewNetwork(9, model, radio.DefaultConfig(), mac.DefaultConfig(), 7,
		func(n *routing.Node) routing.Protocol {
			return core.New(n, core.DefaultConfig())
		})
	nw.Start()

	// Node 0 (west team lead) streams status reports to node 7 (east).
	for t := time.Second; t < simLen; t += 500 * time.Millisecond {
		nw.Sim.At(t, func() { nw.Nodes[0].OriginateData(7, 256) })
	}

	// Sample delivery in 20-second windows to show the partition window.
	var prevDelivered, prevInitiated uint64
	for w := 20 * time.Second; w <= simLen; w += 20 * time.Second {
		w := w
		nw.Sim.At(w, func() {
			c := nw.Collector
			dDel := c.DataDelivered - prevDelivered
			dIni := c.DataInitiated - prevInitiated
			prevDelivered, prevInitiated = c.DataDelivered, c.DataInitiated
			pct := 0.0
			if dIni > 0 {
				pct = 100 * float64(dDel) / float64(dIni)
			}
			fmt.Printf("t=%3.0fs  window delivery %5.1f%%  (RERRs so far: %d, RREQ floods: %d)\n",
				w.Seconds(), pct,
				c.ControlInitiated(metrics.RERR), c.ControlInitiated(metrics.RREQ))
		})
	}
	nw.Sim.Run(simLen + 2*time.Second)

	c := nw.Collector
	ldr7 := nw.Nodes[7].Protocol().(*core.LDR)
	fmt.Printf("\noverall: %d/%d delivered (%.1f%%), mean latency %v\n",
		c.DataDelivered, c.DataInitiated, 100*c.DeliveryRatio(),
		c.MeanLatency().Round(time.Microsecond))
	fmt.Printf("destination's own sequence number after the churn: ts=%d ctr=%d\n",
		ldr7.OwnSeq().Timestamp(), ldr7.OwnSeq().Counter())
	fmt.Println("(LDR resets feasible distances via the destination; the counter stays tiny.)")
	return nil
}

// fixed pins a node at (x, 0) for the whole scenario.
func fixed(x float64) []mobility.ScriptLeg {
	return []mobility.ScriptLeg{{At: 0, Pos: mobility.Point{X: x, Y: 0}}}
}
