// Fleet: a high-mobility vehicle fleet compared across all four
// protocols.
//
// Twenty-five vehicles move continuously (pause time 0, up to 20 m/s) on a
// 1200 m × 300 m strip while five concurrent telemetry flows run between
// random pairs. The example reproduces, in miniature, the paper's headline
// comparison: LDR's delivery leads, AODV follows, DSR's cached source
// routes go stale, and OLSR pays constant control overhead for its low
// latency.
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleet:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("%-8s %12s %14s %12s %12s\n",
		"proto", "delivery %", "latency", "net load", "rreq load")
	for _, proto := range scenario.AllProtocols {
		cfg := scenario.Config{
			Protocol:  proto,
			Nodes:     25,
			Terrain:   mobility.Terrain{Width: 1200, Height: 300},
			Flows:     5,
			PauseTime: 0, // constant motion
			MinSpeed:  1,
			MaxSpeed:  20,
			SimTime:   120 * time.Second,
			Seed:      2026,
		}
		res, err := scenario.Run(cfg)
		if err != nil {
			return err
		}
		c := res.Collector
		fmt.Printf("%-8s %11.1f%% %14v %12.2f %12.2f\n",
			proto, 100*c.DeliveryRatio(),
			c.MeanLatency().Round(100*time.Microsecond),
			c.NetworkLoad(), c.RREQLoad())
	}
	fmt.Println("\n(Same seed, same mobility, same traffic for every protocol.)")
	return nil
}
