// Quickstart: build a 10-node static network running LDR, send traffic
// across it, and read the metrics — the smallest complete use of the
// library.
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/manetlab/ldr/internal/core"
	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/routing"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Topology: ten nodes in a line, 250 m apart. The default radio
	//    range is 275 m, so each node only hears its direct neighbors and
	//    traffic between the ends must travel nine hops.
	model := mobility.Line(10, 250)

	// 2. Network: one LDR instance per node over a shared 2 Mb/s medium.
	nw := routing.NewNetwork(10, model, radio.DefaultConfig(), mac.DefaultConfig(),
		42 /* seed */, func(n *routing.Node) routing.Protocol {
			return core.New(n, core.DefaultConfig())
		})
	nw.Start()

	// 3. Workload: node 0 sends a 512-byte packet to node 9 every 100 ms.
	for i := 0; i < 50; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		nw.Sim.At(at, func() { nw.Nodes[0].OriginateData(9, 512) })
	}

	// 4. Run 10 simulated seconds (completes in milliseconds of real time).
	nw.Sim.Run(10 * time.Second)

	// 5. Inspect the outcome.
	c := nw.Collector
	fmt.Printf("delivered %d of %d packets (%.1f%%)\n",
		c.DataDelivered, c.DataInitiated, 100*c.DeliveryRatio())
	fmt.Printf("mean end-to-end latency: %v\n", c.MeanLatency().Round(time.Microsecond))
	fmt.Printf("route discovery cost: %d RREQ + %d RREP transmissions\n",
		c.ControlTransmitted(metrics.RREQ), c.ControlTransmitted(metrics.RREP))

	ldr := nw.Nodes[0].Protocol().(*core.LDR)
	if next, dist, ok := ldr.RouteTo(9); ok {
		fmt.Printf("node 0 reaches node 9 via node %d in %d hops (fd=%d)\n",
			next, dist, ldr.FeasibleDistance(9))
	}
	return nil
}
