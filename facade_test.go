package ldr_test

import (
	"testing"
	"time"

	ldr "github.com/manetlab/ldr"
)

func TestFacadeRunsScenario(t *testing.T) {
	cfg := ldr.Scenario50(ldr.ProtoLDR, 5, 0, 1)
	cfg.Nodes = 15
	cfg.SimTime = 30 * time.Second
	res, err := ldr.RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collector.DataInitiated == 0 {
		t.Fatal("facade run produced no traffic")
	}
	if res.Collector.DeliveryRatio() <= 0 {
		t.Fatal("facade run delivered nothing")
	}
}

func TestFacadeScenarioShapes(t *testing.T) {
	c50 := ldr.Scenario50(ldr.ProtoAODV, 10, time.Minute, 2)
	if c50.Nodes != 50 || c50.Terrain.Width != 1500 || c50.Terrain.Height != 300 {
		t.Fatalf("Scenario50 = %+v", c50)
	}
	c100 := ldr.Scenario100(ldr.ProtoOLSR, 30, 0, 3)
	if c100.Nodes != 100 || c100.Terrain.Width != 2200 || c100.Terrain.Height != 600 {
		t.Fatalf("Scenario100 = %+v", c100)
	}
}

func TestFacadeRejectsUnknownProtocol(t *testing.T) {
	cfg := ldr.Scenario50("not-a-protocol", 5, 0, 1)
	cfg.Nodes = 5
	cfg.SimTime = time.Second
	if _, err := ldr.RunScenario(cfg); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}
