// Package ldr is a from-scratch reproduction of "A New Approach to
// On-Demand Loop-Free Routing in Ad Hoc Networks" (Garcia-Luna-Aceves,
// Mosko, Perkins — PODC 2003): the Labeled Distance Routing protocol, the
// AODV/DSR/OLSR baselines it is evaluated against, and the discrete-event
// wireless network simulator the evaluation runs on.
//
// The facade in this package re-exports the pieces most users need; the
// full surface lives in the internal packages:
//
//   - internal/core — the LDR protocol (the paper's contribution)
//   - internal/aodv, internal/dsr, internal/olsr — baselines
//   - internal/sim, internal/radio, internal/mac — the simulator substrate
//   - internal/mobility, internal/traffic — workload models
//   - internal/scenario, internal/experiments — the paper's evaluation
//   - internal/loopcheck — runtime verification of the loop-freedom and
//     ordering-criterion invariants (Theorems 2 and 4)
//
// Quick start:
//
//	cfg := ldr.Scenario50(ldr.ProtoLDR, 10, 60*time.Second, 1)
//	res, err := ldr.RunScenario(cfg)
//	fmt.Println(res.Collector.DeliveryRatio())
//
// See examples/quickstart for assembling a network by hand, and
// cmd/ldrbench for regenerating every table and figure in the paper.
package ldr
