// Benchmarks regenerating every table and figure of the paper's
// evaluation at reduced scale: one benchmark per table/figure, each
// iteration running the corresponding scenario sweep and reporting the
// paper's metrics via b.ReportMetric. The full-scale reproduction (900 s,
// 10 trials) is cmd/ldrbench; these benches exercise the identical code
// path fast enough for routine regression runs.
//
//	go test -bench=. -benchmem
package ldr_test

import (
	"strconv"
	"testing"
	"time"

	ldr "github.com/manetlab/ldr"
	"github.com/manetlab/ldr/internal/core"
	"github.com/manetlab/ldr/internal/experiments"
	"github.com/manetlab/ldr/internal/scenario"
)

// benchSimTime keeps a single iteration around a second of wall time.
const benchSimTime = 60 * time.Second

// runCell executes one scenario cell and reports the paper's metrics.
func runCell(b *testing.B, cfg ldr.ScenarioConfig) {
	b.Helper()
	var delivery, latencyMs, netLoad float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := ldr.RunScenario(cfg)
		if err != nil {
			b.Fatal(err)
		}
		c := res.Collector
		delivery += 100 * c.DeliveryRatio()
		latencyMs += float64(c.MeanLatency()) / float64(time.Millisecond)
		netLoad += c.NetworkLoad()
	}
	n := float64(b.N)
	b.ReportMetric(delivery/n, "delivery_%")
	b.ReportMetric(latencyMs/n, "latency_ms")
	b.ReportMetric(netLoad/n, "ctrl/data")
}

func cell(proto ldr.ProtocolName, nodes, flows int, pause time.Duration) ldr.ScenarioConfig {
	cfg := ldr.Scenario50(proto, flows, pause, 1)
	if nodes == 100 {
		cfg = ldr.Scenario100(proto, flows, pause, 1)
	}
	cfg.SimTime = benchSimTime
	return cfg
}

// BenchmarkTable1 reproduces Table 1's per-protocol summary rows: each
// sub-benchmark is one (protocol, flow-count) cell of the paper's summary,
// averaged here over a single mid-mobility pause time.
func BenchmarkTable1(b *testing.B) {
	for _, flows := range []int{10, 30} {
		for _, proto := range scenario.AllProtocols {
			b.Run(string(proto)+"/flows="+strconv.Itoa(flows), func(b *testing.B) {
				runCell(b, cell(proto, 50, flows, 30*time.Second))
			})
		}
	}
}

// BenchmarkFig2DeliveryRatio50n10f: delivery vs pause time, 50 nodes, 10 flows.
func BenchmarkFig2DeliveryRatio50n10f(b *testing.B) {
	benchFigure(b, 50, 10)
}

// BenchmarkFig3DeliveryRatio50n30f: delivery vs pause time, 50 nodes, 30 flows.
func BenchmarkFig3DeliveryRatio50n30f(b *testing.B) {
	benchFigure(b, 50, 30)
}

// BenchmarkFig4DeliveryRatio100n10f: delivery vs pause time, 100 nodes, 10 flows.
func BenchmarkFig4DeliveryRatio100n10f(b *testing.B) {
	benchFigure(b, 100, 10)
}

// BenchmarkFig5DeliveryRatio100n30f: delivery vs pause time, 100 nodes, 30 flows.
func BenchmarkFig5DeliveryRatio100n30f(b *testing.B) {
	benchFigure(b, 100, 30)
}

func benchFigure(b *testing.B, nodes, flows int) {
	for _, pause := range []time.Duration{0, benchSimTime} { // moving vs static endpoints
		for _, proto := range scenario.AllProtocols {
			b.Run(string(proto)+"/pause="+pause.String(), func(b *testing.B) {
				runCell(b, cell(proto, nodes, flows, pause))
			})
		}
	}
}

// BenchmarkFig6QualnetDSR: the Fig. 3 scenario under the draft-7 DSR
// variant vs AODV (the paper's QualNet cross-check).
func BenchmarkFig6QualnetDSR(b *testing.B) {
	for _, proto := range []ldr.ProtocolName{ldr.ProtoAODV, ldr.ProtoDSR, ldr.ProtoDSR7} {
		b.Run(string(proto), func(b *testing.B) {
			runCell(b, cell(proto, 50, 30, 0))
		})
	}
}

// BenchmarkFig7SeqnoGrowth: mean destination sequence number, LDR vs AODV,
// at low and high load. The paper's separation — LDR ≲ 1.5, AODV in the
// hundreds — shows up at any scale.
func BenchmarkFig7SeqnoGrowth(b *testing.B) {
	for _, flows := range []int{10, 30} {
		for _, proto := range []ldr.ProtocolName{ldr.ProtoLDR, ldr.ProtoAODV} {
			b.Run(string(proto)+"/flows="+strconv.Itoa(flows), func(b *testing.B) {
				cfg := cell(proto, 50, flows, 0)
				var seqno float64
				for i := 0; i < b.N; i++ {
					cfg.Seed = int64(i + 1)
					res, err := ldr.RunScenario(cfg)
					if err != nil {
						b.Fatal(err)
					}
					seqno += res.Collector.MeanSeqno()
				}
				b.ReportMetric(seqno/float64(b.N), "mean_seqno")
			})
		}
	}
}

// BenchmarkAblation measures each LDR optimization's contribution (the
// design choices DESIGN.md calls out), on the constant-motion scenario.
func BenchmarkAblation(b *testing.B) {
	for _, v := range experiments.Variants() {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			v.Mutate(&cfg)
			sc := cell(ldr.ProtoLDR, 50, 10, 0)
			sc.LDRConfig = &cfg
			runCell(b, sc)
		})
	}
}
