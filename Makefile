# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet bench examples experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One benchmark per paper table/figure plus the engine and coordination
# benches, at reduced scale.
bench:
	$(GO) test -bench=. -benchmem ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/invariants
	$(GO) run ./examples/rescue
	$(GO) run ./examples/fleet
	$(GO) run ./examples/coordination

# Reduced-scale regeneration of every table and figure (minutes).
experiments:
	$(GO) run ./cmd/ldrbench -exp all

# The paper's full setup (many hours on one core).
experiments-full:
	$(GO) run ./cmd/ldrbench -exp all -trials 10 -simtime 900s

clean:
	$(GO) clean ./...
