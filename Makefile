# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build test vet race fuzz-smoke chaos adversary bench bench-sweep bench-smoke bench-chaos bench-adversary bench-all profile examples experiments clean

all: check

check: build vet test race fuzz-smoke adversary bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The sweep engine and its callers are the only concurrent code; -race on
# the whole module keeps them honest. The generous -timeout is for
# single-core boxes, where the race detector's slowdown is at its worst.
race:
	$(GO) test -race -timeout 60m ./internal/sweep/ ./internal/experiments/ ./internal/scenario/

# Bounded conformance fuzz: replay the committed regression seeds and a
# small randomized sweep (all protocols × fault profiles) under the race
# detector, then the same sweep again via the ldrfuzz binary, which must
# exit 0. Matches TestFuzzSmoke's bounds so failures reproduce in-test.
fuzz-smoke:
	$(GO) test -race -timeout 30m ./internal/conformance/ -run 'TestRegressionSeeds|TestFuzzSmoke'
	$(GO) run ./cmd/ldrfuzz -runs 8 -seed 42 -max-nodes 20 -max-simtime 12s -q

# The fault-injection suite under the race detector: the van Glabbeek
# loop reproduction, the per-profile LDR invariant properties, and the
# chaos sweep's worker-count determinism.
chaos:
	$(GO) test -race -timeout 60m ./internal/fault/ -run .
	$(GO) test -race -timeout 60m ./internal/experiments/ -run Chaos

# The Byzantine-node suite under the race detector: LDR's loop-freedom
# property under every attack profile, the committed AODV forged-seqno
# loop regression seed, attack accounting, storm suppression, and
# attacked-run determinism.
adversary:
	$(GO) test -race -timeout 60m ./internal/adversary/ -run .

# Attack impact at paper scale (delivery under attack vs baseline,
# control amplification, accounted adversary drops, NDC rejections),
# recorded as BENCH_adversary.json.
bench-adversary:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench AttackImpact -benchtime 2x \
		./internal/adversary/ | tee /dev/stderr | /tmp/benchjson -o BENCH_adversary.json

# Audit-hook overhead on the 50-node scenario (the <10% acceptance bar),
# recorded as BENCH_chaos.json.
bench-chaos:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench AuditOverhead -benchtime 3x \
		./internal/fault/ | tee /dev/stderr | /tmp/benchjson -o BENCH_chaos.json

# Sweep + radio hot-path benchmarks, recorded as BENCH_sweep.json
# (events/sec, cells/sec, ns/op, allocs/op per benchmark).
bench:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -bench 'Sweep|Transmit|Neighbors' -benchmem \
		./internal/sweep/ ./internal/radio/ | tee /dev/stderr | /tmp/benchjson -o BENCH_sweep.json

# Same benchmarks, gated against the committed BENCH_sweep.json: any
# benchmark whose B/op or allocs/op regressed more than 10% fails the
# target (non-zero exit) and leaves the committed baseline untouched.
bench-sweep:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -bench 'Sweep|Transmit|Neighbors' -benchmem \
		./internal/sweep/ ./internal/radio/ | tee /dev/stderr | /tmp/benchjson -o BENCH_sweep.json -maxregress 10

# Fast allocation-regression smoke: the zero-alloc guards on the event
# loop, MAC queue, and LDR round trip, plus a single tiny sweep cell.
# Part of `make check` so steady-state allocation creep fails CI quickly.
bench-smoke:
	$(GO) test -run 'Alloc|ZeroAlloc' ./internal/sim/ ./internal/mac/ ./internal/core/ ./internal/routing/
	$(GO) test -run '^$$' -bench 'ScheduleTransient|SweepSerial' -benchtime 10x \
		./internal/sim/ ./internal/sweep/

# CPU + allocation profiles of a reduced Table 1 run, written to
# profiles/ (gitignored); inspect with `go tool pprof`.
profile:
	mkdir -p profiles
	$(GO) run ./cmd/ldrbench -exp table1 -trials 1 -simtime 60s \
		-cpuprofile profiles/ldrbench.cpu.pprof -memprofile profiles/ldrbench.mem.pprof
	@echo "profiles written: profiles/ldrbench.cpu.pprof profiles/ldrbench.mem.pprof"
	@echo "inspect: go tool pprof -top profiles/ldrbench.mem.pprof"

# One benchmark per paper table/figure plus the engine and coordination
# benches, at reduced scale.
bench-all:
	$(GO) test -bench=. -benchmem ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/invariants
	$(GO) run ./examples/rescue
	$(GO) run ./examples/fleet
	$(GO) run ./examples/coordination

# Reduced-scale regeneration of every table and figure (minutes).
experiments:
	$(GO) run ./cmd/ldrbench -exp all

# The paper's full setup (many hours on one core).
experiments-full:
	$(GO) run ./cmd/ldrbench -exp all -trials 10 -simtime 900s

clean:
	$(GO) clean ./...
