# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check ci-quick ci-full build test vet race fuzz-smoke fuzz-radio chaos adversary modelcheck modelcheck-smoke modelcheck-seed resume-smoke bench bench-sweep bench-smoke bench-chaos bench-adversary bench-modelcheck bench-gate bench-all profile examples experiments clean

all: check

check: build vet test race fuzz-smoke adversary modelcheck-smoke bench-smoke resume-smoke

# Tiered CI entry points (.github/workflows/ci.yml): ci-quick gates every
# push, ci-full gates pull requests, and the scheduled nightly job runs
# `make chaos modelcheck fuzz-radio resume-smoke` directly.
ci-quick: build vet test

ci-full: race fuzz-smoke adversary modelcheck-smoke bench-smoke resume-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The sweep engine and its callers are the only concurrent code; -race on
# the whole module keeps them honest. The generous -timeout is for
# single-core boxes, where the race detector's slowdown is at its worst.
race:
	$(GO) test -race -timeout 60m ./internal/sweep/ ./internal/experiments/ ./internal/scenario/

# Bounded conformance fuzz: replay the committed regression seeds and a
# small randomized sweep (all protocols × fault profiles) under the race
# detector, then the same sweep again via the ldrfuzz binary, which must
# exit 0. Matches TestFuzzSmoke's bounds so failures reproduce in-test.
fuzz-smoke:
	$(GO) test -race -timeout 30m ./internal/conformance/ -run 'TestRegressionSeeds|TestFuzzSmoke'
	$(GO) run ./cmd/ldrfuzz -runs 8 -seed 42 -max-nodes 20 -max-simtime 12s -q

# Heterogeneous-radio fuzz axis (nightly): randomized scenarios drawn
# only from the profiles that produce one-way links and uneven placement,
# so the MAC ACK-exhaustion and hello-gating paths stay under continuous
# conservation/census audit.
fuzz-radio:
	$(GO) test -race -timeout 30m ./internal/conformance/ -run 'TestHeteroRadioChaosClean|TestAsymAckExhaustAccounted|TestOLSRAsymNoBlackhole'
	$(GO) run ./cmd/ldrfuzz -runs 24 -seed 7 -max-nodes 24 -max-simtime 15s \
		-radios mixed,asym -densities gradient,hotspot -q

# The fault-injection suite under the race detector: the van Glabbeek
# loop reproduction, the per-profile LDR invariant properties, and the
# chaos sweep's worker-count determinism. The closing ldrchaos run is
# journaled with a watchdog and keep-going quarantine — the crash-safe
# mode the nightly job exercises end to end; its journal (and failure
# manifest plus reproducers, if any cell was quarantined) survives in
# the printed directory for post-mortem.
chaos:
	$(GO) test -race -timeout 60m ./internal/fault/ -run .
	$(GO) test -race -timeout 60m ./internal/experiments/ -run Chaos
	d=$$(mktemp -d)/journal; echo "chaos journal: $$d"; \
	$(GO) run ./cmd/ldrchaos -trials 2 -simtime 60s -journal $$d -cell-timeout 10m -keep-going

# Crash-safety smoke: SIGKILL a journaled chaos sweep mid-flight, resume
# it from the journal, and require output byte-identical to an
# uninterrupted run (plus the stale-journal -resume guard). Part of
# `make check`, `make ci-full`, and the nightly job.
resume-smoke:
	GO="$(GO)" sh scripts/resume-smoke.sh

# Bounded model check, full scale (a few minutes on one core):
# exhaustively verify LDR's loop-freedom and (sn, fd) ordering on every
# non-isomorphic connected 3- and 4-node topology within the sweep's
# budgets (state counts reported, zero violations required), then make
# the checker rediscover the van Glabbeek AODV loop from scratch and
# replay both a fresh witness and the committed seed to a real routing
# loop under the full MAC/radio simulator.
modelcheck:
	$(GO) run ./cmd/ldrbench -exp modelcheck
	$(GO) run ./cmd/ldrcheck -protocol aodv -resets 1 -drops 1 -expect-violation -emit /tmp/aodv-line3-loop.json -q
	$(GO) test ./internal/modelcheck/ -run 'TestAODVLine3Violation|TestWitnessBridge' -v

# Fast model-check smoke under the race detector: LDR clean at the van
# Glabbeek budget, the rediscovered AODV loop, and the committed-seed
# bridge replays, all on the 3-node line. Part of `make check`.
modelcheck-smoke:
	$(GO) test -race -timeout 30m ./internal/modelcheck/ -run 'TestLDRLine3Clean|TestAODVLine3Violation|TestWitnessBridge'

# Regenerate the committed van Glabbeek witness seed from scratch (the
# checker re-derives the schedule; the file only changes if the witness
# translation rules did).
modelcheck-seed:
	$(GO) run ./cmd/ldrcheck -protocol aodv -resets 1 -drops 1 -expect-violation \
		-emit internal/modelcheck/testdata/aodv-line3-loop.json -q

# Exploration throughput (states/sec, trans/sec) and exact state counts,
# recorded as BENCH_modelcheck.json and gated against the committed
# baseline: >10% B/op or allocs/op regression fails the target.
bench-modelcheck:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench 'CheckLDRLine3|CheckAODVLine3' -benchtime 2x -benchmem \
		./internal/modelcheck/ | tee /dev/stderr | /tmp/benchjson -o BENCH_modelcheck.json -maxregress 10

# The Byzantine-node suite under the race detector: LDR's loop-freedom
# property under every attack profile, the committed AODV forged-seqno
# loop regression seed, attack accounting, storm suppression, and
# attacked-run determinism.
adversary:
	$(GO) test -race -timeout 60m ./internal/adversary/ -run .

# Attack impact at paper scale (delivery under attack vs baseline,
# control amplification, accounted adversary drops, NDC rejections),
# recorded as BENCH_adversary.json.
bench-adversary:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench AttackImpact -benchtime 2x \
		./internal/adversary/ | tee /dev/stderr | /tmp/benchjson -o BENCH_adversary.json

# Audit-hook overhead on the 50-node scenario (the <10% acceptance bar),
# recorded as BENCH_chaos.json.
bench-chaos:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench AuditOverhead -benchtime 3x \
		./internal/fault/ | tee /dev/stderr | /tmp/benchjson -o BENCH_chaos.json

# Sweep + radio hot-path benchmarks, recorded as BENCH_sweep.json
# (events/sec, cells/sec, ns/op, allocs/op per benchmark).
bench:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -bench 'Sweep|Transmit|Neighbors' -benchmem \
		./internal/sweep/ ./internal/radio/ | tee /dev/stderr | /tmp/benchjson -o BENCH_sweep.json

# Same benchmarks, gated against the committed BENCH_sweep.json: any
# benchmark whose B/op or allocs/op regressed more than 10% fails the
# target (non-zero exit) and leaves the committed baseline untouched.
bench-sweep:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -bench 'Sweep|Transmit|Neighbors' -benchmem \
		./internal/sweep/ ./internal/radio/ | tee /dev/stderr | /tmp/benchjson -o BENCH_sweep.json -maxregress 10

# Fast allocation-regression smoke: the zero-alloc guards on the event
# loop, MAC queue, and LDR round trip, plus a single tiny sweep cell.
# Part of `make check` so steady-state allocation creep fails CI quickly.
bench-smoke:
	$(GO) test -run 'Alloc|ZeroAlloc' ./internal/sim/ ./internal/mac/ ./internal/core/ ./internal/routing/
	$(GO) test -run '^$$' -bench 'ScheduleTransient|SweepSerial' -benchtime 10x \
		./internal/sim/ ./internal/sweep/

# CPU + allocation profiles of a reduced Table 1 run, written to
# profiles/ (gitignored); inspect with `go tool pprof`.
profile:
	mkdir -p profiles
	$(GO) run ./cmd/ldrbench -exp table1 -trials 1 -simtime 60s \
		-cpuprofile profiles/ldrbench.cpu.pprof -memprofile profiles/ldrbench.mem.pprof
	@echo "profiles written: profiles/ldrbench.cpu.pprof profiles/ldrbench.mem.pprof"
	@echo "inspect: go tool pprof -top profiles/ldrbench.mem.pprof"

# Every benchmark family gated against its committed BENCH_*.json
# baseline: a >10% B/op or allocs/op regression in any of the four fails
# the target and leaves that committed baseline untouched. This is CI's
# bench-gate job.
bench-gate: bench-sweep bench-modelcheck
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench AttackImpact -benchtime 2x \
		./internal/adversary/ | tee /dev/stderr | /tmp/benchjson -o BENCH_adversary.json -maxregress 10
	$(GO) test -run '^$$' -bench AuditOverhead -benchtime 3x \
		./internal/fault/ | tee /dev/stderr | /tmp/benchjson -o BENCH_chaos.json -maxregress 10

# One benchmark per paper table/figure plus the engine and coordination
# benches, at reduced scale.
bench-all:
	$(GO) test -bench=. -benchmem ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/invariants
	$(GO) run ./examples/rescue
	$(GO) run ./examples/fleet
	$(GO) run ./examples/coordination

# Reduced-scale regeneration of every table and figure (minutes).
experiments:
	$(GO) run ./cmd/ldrbench -exp all

# The paper's full setup (many hours on one core).
experiments-full:
	$(GO) run ./cmd/ldrbench -exp all -trials 10 -simtime 900s

clean:
	$(GO) clean ./...
