// Coordination-cost benchmark: the paper's §1 argument made measurable.
// DUAL (and ROAM) repair a route by synchronizing a diffusing computation
// across the dependent subtree; TORA's link reversal cascades height
// changes across a region; LDR repairs with a purely local decision plus
// at most one expanding-ring discovery. The benchmark breaks the same
// link in the same ring topology under each scheme and reports the
// control actions required.
package ldr_test

import (
	"math"
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/core"
	"github.com/manetlab/ldr/internal/dual"
	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/sim"
	"github.com/manetlab/ldr/internal/tora"
)

const coordRingSize = 16

// BenchmarkCoordinationCost reports control messages (or reversal
// operations) needed to repair a broken link adjacent to the destination
// on a 16-node ring.
func BenchmarkCoordinationCost(b *testing.B) {
	b.Run("dual-diffusing", func(b *testing.B) {
		var msgs float64
		for i := 0; i < b.N; i++ {
			s := sim.New()
			nw := dual.NewNetwork(s, coordRingSize, 0, time.Millisecond)
			for j := 0; j < coordRingSize; j++ {
				nw.AddLink(j, (j+1)%coordRingSize, 1)
			}
			s.RunAll()
			before := nw.TotalMessages()
			nw.RemoveLink(0, 1)
			s.RunAll()
			msgs += float64(nw.TotalMessages() - before)
		}
		b.ReportMetric(msgs/float64(b.N), "msgs/repair")
	})

	for _, v := range []struct {
		name    string
		variant tora.Variant
	}{
		{"tora-full-reversal", tora.FullReversal},
		{"tora-partial-reversal", tora.PartialReversal},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var reversals float64
			for i := 0; i < b.N; i++ {
				nw := tora.New(coordRingSize, 0, v.variant)
				for j := 0; j < coordRingSize; j++ {
					nw.AddLink(j, (j+1)%coordRingSize)
				}
				nw.Stabilize()
				before := nw.Reversals
				nw.RemoveLink(0, 1)
				nw.Stabilize()
				reversals += float64(nw.Reversals - before)
			}
			b.ReportMetric(reversals/float64(b.N), "reversals/repair")
		})
	}

	b.Run("ldr-local-repair", func(b *testing.B) {
		var msgs float64
		for i := 0; i < b.N; i++ {
			msgs += float64(ldrRingRepairCost(int64(i + 1)))
		}
		b.ReportMetric(msgs/float64(b.N), "msgs/repair")
	})
}

// ldrRingRepairCost runs LDR on a physical ring, breaks the link next to
// the destination mid-run, and returns the control transmissions spent
// after the break (discovery flood + replies + errors).
func ldrRingRepairCost(seed int64) uint64 {
	// Ring of radios: nodes on a circle, 250 m apart along the arc, so
	// each node reaches exactly its two ring neighbors... a polygon with
	// circumradius chosen so the chord to the next node is 250 m and the
	// chord to the second-next exceeds 275 m.
	tracks := make([][]mobility.ScriptLeg, coordRingSize)
	pts := ringPoints(coordRingSize, 250)
	for i, p := range pts {
		tracks[i] = []mobility.ScriptLeg{{At: 0, Pos: p}}
	}
	// Node 1 (the destination's ring neighbor) walks away at t=6 s,
	// breaking the 0–1 arc exactly like RemoveLink(0, 1) above.
	tracks[1] = []mobility.ScriptLeg{
		{At: 0, Pos: pts[1]},
		{At: 6 * time.Second, Pos: pts[1]},
		{At: 8 * time.Second, Pos: mobility.Point{X: pts[1].X, Y: pts[1].Y + 5000}},
	}
	nw := routing.NewNetwork(coordRingSize, mobility.NewScript(tracks),
		radio.DefaultConfig(), mac.DefaultConfig(), seed,
		func(n *routing.Node) routing.Protocol { return core.New(n, core.DefaultConfig()) })
	nw.Start()
	// Node 2 streams to node 0 via node 1 until the break, then around.
	for ts := time.Second; ts < 15*time.Second; ts += 250 * time.Millisecond {
		nw.Sim.At(ts, func() { nw.Nodes[2].OriginateData(0, 64) })
	}
	var before uint64
	nw.Sim.At(6*time.Second, func() { before = nw.Collector.TotalControlTransmitted() })
	nw.Sim.Run(15 * time.Second)
	return nw.Collector.TotalControlTransmitted() - before
}

// ringPoints places n points on a circle with the given chord length
// between adjacent points.
func ringPoints(n int, chord float64) []mobility.Point {
	// chord = 2R sin(π/n) → R = chord / (2 sin(π/n)).
	radius := chord / (2 * math.Sin(math.Pi/float64(n)))
	pts := make([]mobility.Point, n)
	for i := range pts {
		angle := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = mobility.Point{
			X: radius + radius*math.Cos(angle),
			Y: radius + radius*math.Sin(angle),
		}
	}
	return pts
}
