// Command ldrchaos runs the fault-injection ("chaos") suite: every
// protocol under every fault profile — node crash/reboot with volatile
// state loss, link flapping, network partitions, and lossy delivery —
// with the continuous loopcheck auditor scoring routing-loop and
// label-ordering violations throughout the run.
//
//	ldrchaos                                  # all profiles, reduced scale
//	ldrchaos -profiles reboot,mayhem -trials 5
//	ldrchaos -simtime 900s -trials 10         # the paper's full scale
//
// Profiles: none, reboot, flap, partition, lossy, mayhem. The "reboot"
// profile is the regime of van Glabbeek et al.'s AODV-loop construction:
// rebooted AODV nodes lose their sequence numbers and can pull stale
// routes into persistent loops, while LDR's persisted destination
// sequence numbers and feasible-distance labels keep its count at zero.
//
// With -adversary the suite switches from crash faults to Byzantine
// nodes: compromised nodes blackhole data, forge sequence numbers,
// replay stale labels, and flood control storms (see internal/adversary)
// while every attacked run is paired against an attack-free baseline on
// the same seed to report delivery impact and the control-amplification
// factor.
//
//	ldrchaos -adversary all
//	ldrchaos -adversary seqno-forge,storm -protocols ldr,aodv
//
// Adversary profiles: none, blackhole, grayhole, seqno-forge, replay,
// storm, byzantine.
//
// Output is deterministic: byte-identical for the same flags at any
// -workers setting.
//
// With -journal DIR the sweep is crash-safe: completed cells are durably
// recorded, ^C prints the exact resume command, and -resume continues a
// killed run to byte-identical output. -cell-timeout arms a per-cell
// watchdog and -keep-going quarantines failing cells (with auto-emitted
// reproducers) instead of aborting the whole sweep — the natural mode for
// a suite whose whole point is hostile conditions.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/manetlab/ldr/internal/adversary"
	"github.com/manetlab/ldr/internal/conformance"
	"github.com/manetlab/ldr/internal/experiments"
	"github.com/manetlab/ldr/internal/fault"
	"github.com/manetlab/ldr/internal/resilience"
	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/sweep"
	"github.com/manetlab/ldr/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ldrchaos:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		profiles = flag.String("profiles", "", "comma-separated fault profiles (default: all of "+strings.Join(fault.ProfileNames(), ",")+")")
		adv      = flag.String("adversary", "", "run the Byzantine-node suite instead: comma-separated adversary profiles, or \"all\" for "+strings.Join(adversary.ProfileNames(), ","))
		protos   = flag.String("protocols", "", "comma-separated protocol subset (default: ldr,aodv,dsr,olsr)")
		trials   = flag.Int("trials", 3, "trials (seeds) per cell; must be ≥ 1")
		simTime  = flag.Duration("simtime", 120*time.Second, "simulated time per run; must be > 0")
		seed     = flag.Int64("seed", 1, "base random seed")
		audit    = flag.Duration("audit", 100*time.Millisecond, "invariant-audit snapshot cadence; must be > 0")
		workers  = flag.Int("workers", 0, "concurrent cells; 0 = GOMAXPROCS, 1 = serial (output identical either way)")

		mobilityModel = flag.String("mobility", "", "mobility model for every cell: waypoint|manhattan|gaussmarkov (default waypoint)")
		trafficPat    = flag.String("traffic", "", "traffic pattern for every cell: cbr|bursty|reqresp (default cbr)")
		radioProf     = flag.String("radio", "", "radio profile for every cell: uniform|mixed|asym (default uniform disk)")
		densityProf   = flag.String("density", "", "placement-density profile for every cell: uniform|gradient|hotspot (default uniform)")
		adaptive      = flag.Bool("adaptive-timeout", false, "derive LDR/AODV route lifetimes from observed RTTs instead of constants")
	)
	var ef resilience.ExecFlags
	ef.Register(flag.CommandLine)
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintf(w, "usage: ldrchaos [flags]\n\n")
		fmt.Fprintf(w, "Run the fault-injection suite: every protocol under every fault profile\n")
		fmt.Fprintf(w, "(crash/reboot, link flapping, partitions, lossy delivery) with the\n")
		fmt.Fprintf(w, "continuous loopcheck auditor scoring invariant violations throughout.\n")
		fmt.Fprintf(w, "With -adversary, run the Byzantine-node suite instead: compromised nodes\n")
		fmt.Fprintf(w, "blackhole, forge sequence numbers, replay stale labels, and flood storms,\n")
		fmt.Fprintf(w, "each attacked run paired with an attack-free baseline on the same seed.\n")
		fmt.Fprintf(w, "Output is byte-identical for the same flags at any -workers setting.\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(w, "\nExamples:\n")
		fmt.Fprintf(w, "  ldrchaos -profiles reboot,mayhem -trials 5\n")
		fmt.Fprintf(w, "  ldrchaos -protocols ldr,aodv -simtime 900s -trials 10\n")
		fmt.Fprintf(w, "  ldrchaos -adversary all\n")
		fmt.Fprintf(w, "  ldrchaos -adversary seqno-forge,storm -protocols ldr,aodv\n")
		fmt.Fprintf(w, "  ldrchaos -profiles reboot -mobility manhattan -traffic bursty -adaptive-timeout\n")
		fmt.Fprintf(w, "  ldrchaos -profiles mayhem -radio mixed -density gradient  # one-way links under faults\n")
		fmt.Fprintf(w, "  ldrchaos -journal /tmp/chaos.journal                      # kill-safe; ^C prints the resume command\n")
		fmt.Fprintf(w, "  ldrchaos -journal /tmp/chaos.journal -resume              # continue a killed sweep\n")
		fmt.Fprintf(w, "  ldrchaos -journal DIR -cell-timeout 2m -keep-going        # quarantine wedged/panicking cells\n")
	}
	flag.Parse()

	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (ldrchaos takes only flags)", flag.Arg(0))
	}
	if *trials < 1 {
		return fmt.Errorf("-trials must be at least 1 (got %d)", *trials)
	}
	if *simTime <= 0 {
		return fmt.Errorf("-simtime must be positive (got %v)", *simTime)
	}
	if *audit <= 0 {
		return fmt.Errorf("-audit must be positive (got %v)", *audit)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be ≥ 0 (got %d; 0 means GOMAXPROCS)", *workers)
	}
	if !scenario.ValidMobility(*mobilityModel) {
		return fmt.Errorf("-mobility must be one of %v (got %q)", scenario.Mobilities(), *mobilityModel)
	}
	if !traffic.ValidPattern(*trafficPat) {
		return fmt.Errorf("-traffic must be one of %v (got %q)", traffic.Patterns(), *trafficPat)
	}
	if !scenario.ValidRadio(*radioProf) {
		return fmt.Errorf("-radio must be one of %v (got %q)", scenario.Radios(), *radioProf)
	}
	if !scenario.ValidDensity(*densityProf) {
		return fmt.Errorf("-density must be one of %v (got %q)", scenario.Densities(), *densityProf)
	}
	journal, err := ef.OpenJournal()
	if err != nil {
		return err
	}
	resilience.HandleSignals(journal, os.Stderr)

	var prog sweep.Progress
	opts := experiments.Options{
		Trials:          *trials,
		SimTime:         *simTime,
		Out:             os.Stdout,
		BaseSeed:        *seed,
		Workers:         *workers,
		AuditCadence:    *audit,
		Mobility:        *mobilityModel,
		TrafficPattern:  *trafficPat,
		Radio:           *radioProf,
		Density:         *densityProf,
		AdaptiveTimeout: *adaptive,
		Progress:        &prog,
		Exec: sweep.ExecOptions{
			Journal:     journal,
			CellTimeout: ef.CellTimeout,
			KeepGoing:   ef.KeepGoing,
		},
	}
	if journal != nil {
		opts.Exec.OnFailure = conformance.QuarantineEmitter(journal.Dir(), func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ldrchaos: "+format+"\n", args...)
		})
	}
	if *profiles != "" && *adv != "" {
		return fmt.Errorf("-profiles and -adversary are mutually exclusive (fault suite vs Byzantine suite)")
	}
	if *profiles != "" {
		for _, p := range strings.Split(*profiles, ",") {
			name := strings.TrimSpace(p)
			// Resolve now for a clean error before any simulation runs.
			if _, err := fault.Profile(name, 50, *simTime); err != nil {
				return err
			}
			opts.FaultProfiles = append(opts.FaultProfiles, name)
		}
	}
	if *adv != "" && *adv != "all" {
		for _, p := range strings.Split(*adv, ",") {
			name := strings.TrimSpace(p)
			// Resolve now for a clean error before any simulation runs.
			if _, err := adversary.Profile(name, 50, *simTime); err != nil {
				return err
			}
			opts.AdversaryProfiles = append(opts.AdversaryProfiles, name)
		}
	}
	if *protos != "" {
		for _, p := range strings.Split(*protos, ",") {
			name := scenario.ProtocolName(strings.TrimSpace(p))
			// Resolve now for a clean error before any simulation runs.
			if _, err := scenario.Factory(name, nil); err != nil {
				return err
			}
			opts.Protocols = append(opts.Protocols, name)
		}
	}
	// On a degraded keep-going run, render whatever completed, then leave
	// a machine-readable manifest next to the journal records.
	if *adv != "" {
		err := experiments.Adversary(opts)
		return sweep.ReportFailures(os.Stderr, "ldrchaos", journal, "adversary", prog.Total(), err)
	}
	err = experiments.Chaos(opts)
	return sweep.ReportFailures(os.Stderr, "ldrchaos", journal, "chaos", prog.Total(), err)
}
