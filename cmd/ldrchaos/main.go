// Command ldrchaos runs the fault-injection ("chaos") suite: every
// protocol under every fault profile — node crash/reboot with volatile
// state loss, link flapping, network partitions, and lossy delivery —
// with the continuous loopcheck auditor scoring routing-loop and
// label-ordering violations throughout the run.
//
//	ldrchaos                                  # all profiles, reduced scale
//	ldrchaos -profiles reboot,mayhem -trials 5
//	ldrchaos -simtime 900s -trials 10         # the paper's full scale
//
// Profiles: none, reboot, flap, partition, lossy, mayhem. The "reboot"
// profile is the regime of van Glabbeek et al.'s AODV-loop construction:
// rebooted AODV nodes lose their sequence numbers and can pull stale
// routes into persistent loops, while LDR's persisted destination
// sequence numbers and feasible-distance labels keep its count at zero.
//
// Output is deterministic: byte-identical for the same flags at any
// -workers setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/manetlab/ldr/internal/experiments"
	"github.com/manetlab/ldr/internal/fault"
	"github.com/manetlab/ldr/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ldrchaos:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		profiles = flag.String("profiles", "", "comma-separated fault profiles (default: all of "+strings.Join(fault.ProfileNames(), ",")+")")
		protos   = flag.String("protocols", "", "comma-separated protocol subset (default: ldr,aodv,dsr,olsr)")
		trials   = flag.Int("trials", 3, "trials (seeds) per cell; must be ≥ 1")
		simTime  = flag.Duration("simtime", 120*time.Second, "simulated time per run; must be > 0")
		seed     = flag.Int64("seed", 1, "base random seed")
		audit    = flag.Duration("audit", 100*time.Millisecond, "invariant-audit snapshot cadence; must be > 0")
		workers  = flag.Int("workers", 0, "concurrent cells; 0 = GOMAXPROCS, 1 = serial (output identical either way)")
	)
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintf(w, "usage: ldrchaos [flags]\n\n")
		fmt.Fprintf(w, "Run the fault-injection suite: every protocol under every fault profile\n")
		fmt.Fprintf(w, "(crash/reboot, link flapping, partitions, lossy delivery) with the\n")
		fmt.Fprintf(w, "continuous loopcheck auditor scoring invariant violations throughout.\n")
		fmt.Fprintf(w, "Output is byte-identical for the same flags at any -workers setting.\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(w, "\nExamples:\n")
		fmt.Fprintf(w, "  ldrchaos -profiles reboot,mayhem -trials 5\n")
		fmt.Fprintf(w, "  ldrchaos -protocols ldr,aodv -simtime 900s -trials 10\n")
	}
	flag.Parse()

	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (ldrchaos takes only flags)", flag.Arg(0))
	}
	if *trials < 1 {
		return fmt.Errorf("-trials must be at least 1 (got %d)", *trials)
	}
	if *simTime <= 0 {
		return fmt.Errorf("-simtime must be positive (got %v)", *simTime)
	}
	if *audit <= 0 {
		return fmt.Errorf("-audit must be positive (got %v)", *audit)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be ≥ 0 (got %d; 0 means GOMAXPROCS)", *workers)
	}

	opts := experiments.Options{
		Trials:       *trials,
		SimTime:      *simTime,
		Out:          os.Stdout,
		BaseSeed:     *seed,
		Workers:      *workers,
		AuditCadence: *audit,
	}
	if *profiles != "" {
		for _, p := range strings.Split(*profiles, ",") {
			name := strings.TrimSpace(p)
			// Resolve now for a clean error before any simulation runs.
			if _, err := fault.Profile(name, 50, *simTime); err != nil {
				return err
			}
			opts.FaultProfiles = append(opts.FaultProfiles, name)
		}
	}
	if *protos != "" {
		for _, p := range strings.Split(*protos, ",") {
			name := scenario.ProtocolName(strings.TrimSpace(p))
			// Resolve now for a clean error before any simulation runs.
			if _, err := scenario.Factory(name, nil); err != nil {
				return err
			}
			opts.Protocols = append(opts.Protocols, name)
		}
	}
	return experiments.Chaos(opts)
}
