// Command ldrcheck runs the bounded model checker: it explores every
// message interleaving, loss, duplication, and crash schedule on a small
// topology (within explicit budgets) and checks loop freedom and (sn, fd)
// ordering — the paper's Theorem 1 invariants — at every reachable state,
// using the same loopcheck predicate the simulator's runtime auditor
// uses. A violation prints as a minimal action trace; -emit additionally
// writes a conformance seed that replays the schedule under the full
// MAC/radio simulator (commit it under internal/modelcheck/testdata/).
//
//	ldrcheck                                      # ldr on line3, default budgets
//	ldrcheck -topology sweep -resets 1 -drops 1   # every 3–4 node graph
//	ldrcheck -protocol aodv -resets 1 -drops 1 -expect-violation -emit seed.json
//	ldrcheck -topology n4-5 -depth 10 -vresets 1
//
// Topologies: line3, ring3, line4, star4, ring4, line5, ring5, any
// enumeration name n<nodes>-<k>, or sweep / sweep3 / sweep4 for every
// non-isomorphic connected graph of that size.
//
// Exit status is 1 when a violation is found, so the command can gate
// CI; -expect-violation inverts that (0 iff a violation is found), for
// pinning known-unsound protocols like AODV under reboots.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/manetlab/ldr/internal/modelcheck"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ldrcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		proto     = flag.String("protocol", "ldr", "protocol to check: ldr or aodv")
		topo      = flag.String("topology", "line3", "topology name, n<nodes>-<k>, or sweep|sweep3|sweep4")
		flows     = flag.String("flows", "", "comma-separated src>dst flows (default: every node toward the last)")
		depth     = flag.Int("depth", 12, "schedule length bound (actions per schedule)")
		drops     = flag.Int("drops", 0, "message-loss budget per schedule")
		dups      = flag.Int("dups", 0, "message-duplication budget per schedule")
		resets    = flag.Int("resets", 0, "crash-reboot budget per schedule (stable storage kept)")
		vresets   = flag.Int("vresets", 0, "volatile crash budget per schedule (stable storage wiped)")
		maxStates = flag.Int("max-states", 0, "distinct-state cap; 0 = 2,000,000 (exceeding truncates)")
		seed      = flag.Int64("seed", 1, "per-node RNG seed (only jitter draws consume it)")
		expect    = flag.Bool("expect-violation", false, "invert the exit status: 0 iff a violation is found")
		emit      = flag.String("emit", "", "write the first violation's conformance-replay seed to this file ('-' = stdout)")
		quiet     = flag.Bool("q", false, "suppress progress; print only results")
	)
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintf(w, "usage: ldrcheck [flags]\n\n")
		fmt.Fprintf(w, "Exhaustively explore a protocol's bounded state space on a small\n")
		fmt.Fprintf(w, "topology — every message interleaving, loss, duplication, and crash\n")
		fmt.Fprintf(w, "schedule within the budgets — checking loop freedom and (sn, fd)\n")
		fmt.Fprintf(w, "ordering at every reachable state. A violation prints as a minimal\n")
		fmt.Fprintf(w, "action trace and (with -emit) a conformance seed that replays it\n")
		fmt.Fprintf(w, "under the full MAC/radio simulator.\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(w, "\nExamples:\n")
		fmt.Fprintf(w, "  ldrcheck -topology sweep -resets 1 -drops 1\n")
		fmt.Fprintf(w, "  ldrcheck -protocol aodv -resets 1 -drops 1 -expect-violation -emit seed.json\n")
	}
	flag.Parse()

	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (ldrcheck takes only flags)", flag.Arg(0))
	}
	if _, err := scenario.Factory(scenario.ProtocolName(*proto), nil); err != nil {
		return err
	}
	if *depth < 1 {
		return fmt.Errorf("-depth must be at least 1 (got %d)", *depth)
	}
	for name, v := range map[string]int{"drops": *drops, "dups": *dups, "resets": *resets, "vresets": *vresets} {
		if v < 0 {
			return fmt.Errorf("-%s must be ≥ 0 (got %d)", name, v)
		}
	}
	if *maxStates < 0 {
		return fmt.Errorf("-max-states must be ≥ 0 (got %d; 0 means the 2,000,000 default)", *maxStates)
	}

	var graphs []modelcheck.Graph
	switch *topo {
	case "sweep", "sweep3", "sweep4":
		for _, n := range []int{3, 4} {
			if *topo == "sweep3" && n != 3 || *topo == "sweep4" && n != 4 {
				continue
			}
			gs, err := modelcheck.ConnectedGraphs(n)
			if err != nil {
				return err
			}
			graphs = append(graphs, gs...)
		}
	default:
		g, err := modelcheck.NamedTopology(*topo)
		if err != nil {
			return err
		}
		graphs = []modelcheck.Graph{g}
	}

	var flowList []modelcheck.Flow
	if *flows != "" {
		if len(graphs) > 1 {
			return fmt.Errorf("-flows cannot be combined with a sweep (flows are per-topology)")
		}
		for _, part := range strings.Split(*flows, ",") {
			var src, dst int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d>%d", &src, &dst); err != nil {
				return fmt.Errorf("bad flow %q (want src>dst, e.g. 0>2)", part)
			}
			flowList = append(flowList, modelcheck.Flow{Src: routing.NodeID(src), Dst: routing.NodeID(dst)})
		}
	}

	opts := modelcheck.Options{
		MaxDepth:   *depth,
		MaxDrops:   *drops,
		MaxDups:    *dups,
		MaxResets:  *resets,
		MaxVResets: *vresets,
		MaxStates:  *maxStates,
	}
	if !*quiet {
		opts.Progress = func(p modelcheck.Progress) {
			rate := float64(p.Transitions) / p.Elapsed.Seconds()
			fmt.Fprintf(os.Stderr, "ldrcheck: states=%d frontier=%d transitions=%d depth=%d elapsed=%v (%.0f trans/s)\n",
				p.States, p.Frontier, p.Transitions, p.Depth, p.Elapsed.Round(10_000_000), rate)
		}
	}

	violations := 0
	for _, g := range graphs {
		sc := &modelcheck.Scenario{Graph: g, Protocol: *proto, Seed: *seed, Flows: flowList}
		res, err := modelcheck.Check(sc, opts)
		if err != nil {
			return err
		}
		status := "ok"
		if res.Truncated {
			status = "TRUNCATED (raise -max-states)"
		}
		if res.Violation != nil {
			status = "VIOLATION"
			violations++
		}
		fmt.Printf("%-8s %-24s states=%-8d transitions=%-9d depth=%-3d %v  %s\n",
			*proto, g, res.States, res.Transitions, res.Depth, res.Elapsed.Round(1_000_000), status)
		if res.Violation != nil {
			fmt.Printf("%s\n", res.Violation)
			if *emit != "" {
				if err := emitSeed(res.Violation, *emit); err != nil {
					return err
				}
				*emit = "" // only the first violation is emitted
			}
		}
	}

	if *expect {
		if violations == 0 {
			return fmt.Errorf("expected a violation, found none")
		}
		fmt.Printf("found %d expected violation(s)\n", violations)
		return nil
	}
	if violations > 0 {
		return fmt.Errorf("%d violating topolog%s", violations, map[bool]string{true: "y", false: "ies"}[violations == 1])
	}
	return nil
}

// emitSeed writes the witness's conformance-replay spec as JSON.
func emitSeed(w *modelcheck.Witness, path string) error {
	note := fmt.Sprintf("model-checker witness: %s on %s, %d-step schedule; regenerate with make modelcheck-seed",
		w.Scenario.Protocol, w.Scenario.Graph, len(w.Trace))
	spec, err := w.Spec(note)
	if err != nil {
		return err
	}
	raw, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ldrcheck: wrote replay seed to %s\n", path)
	return nil
}
