package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: github.com/manetlab/ldr/internal/sweep
cpu: Imaginary CPU @ 2.00GHz
BenchmarkSweepSerial-4          2	 612345678 ns/op	  13.1 cells/sec	 1834567 events/sec	 4096 B/op	   31 allocs/op
BenchmarkSweepWorkers4-4        8	 153086419 ns/op	  52.3 cells/sec	 7338268 events/sec	 4100 B/op	   35 allocs/op
PASS
ok  	github.com/manetlab/ldr/internal/sweep	3.211s
`
	rep, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "Imaginary CPU @ 2.00GHz" {
		t.Fatalf("header = %+v", rep)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "BenchmarkSweepSerial-4" || r.Iterations != 2 {
		t.Fatalf("result 0 = %+v", r)
	}
	want := map[string]float64{
		"ns/op": 612345678, "cells/sec": 13.1, "events/sec": 1834567,
		"B/op": 4096, "allocs/op": 31,
	}
	for unit, v := range want {
		if r.Metrics[unit] != v {
			t.Errorf("metric %s = %v, want %v", unit, r.Metrics[unit], v)
		}
	}
}

func TestParseBenchRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX notanumber 12 ns/op",
		"BenchmarkX 5 garbage ns/op",
	} {
		if _, ok := parseBench(line); ok {
			t.Errorf("parseBench(%q) accepted malformed input", line)
		}
	}
}
