// Command benchjson converts `go test -bench` output on stdin into a
// JSON report. Standard metrics (ns/op, B/op, allocs/op) and custom
// b.ReportMetric units (cells/sec, events/sec, ...) are all captured, so
// the sweep and radio benchmark numbers can be committed as one file:
//
//	go test -bench 'Sweep' -benchmem ./internal/sweep/ | benchjson -o BENCH_sweep.json
//
// Non-benchmark lines (ok/PASS/goos/...) are recorded as context where
// useful and otherwise ignored, so piping full `go test` output is fine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole file.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintf(w, "usage: go test -bench ... | benchjson [-o FILE]\n\n")
		fmt.Fprintf(w, "Convert `go test -bench` output on stdin into a JSON report. Standard\n")
		fmt.Fprintf(w, "metrics (ns/op, B/op, allocs/op) and custom b.ReportMetric units are\n")
		fmt.Fprintf(w, "all captured; non-benchmark lines are ignored.\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(w, "\nExample:\n")
		fmt.Fprintf(w, "  go test -bench Sweep -benchmem ./internal/sweep/ | benchjson -o BENCH_sweep.json\n")
	}
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: unexpected argument %q (input is read from stdin)\n", flag.Arg(0))
		os.Exit(1)
	}

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBench(line)
			if ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	return rep, sc.Err()
}

// parseBench parses one line of the form
//
//	BenchmarkName-8   120   9843215 ns/op   1024 B/op   12 allocs/op   321.5 cells/sec
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBench(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}
