// Command benchjson converts `go test -bench` output on stdin into a
// JSON report. Standard metrics (ns/op, B/op, allocs/op) and custom
// b.ReportMetric units (cells/sec, events/sec, ...) are all captured, so
// the sweep and radio benchmark numbers can be committed as one file:
//
//	go test -bench 'Sweep' -benchmem ./internal/sweep/ | benchjson -o BENCH_sweep.json
//
// Non-benchmark lines (ok/PASS/goos/...) are recorded as context where
// useful and otherwise ignored, so piping full `go test` output is fine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole file.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	maxRegress := flag.Float64("maxregress", 0,
		"max allowed %% regression in B/op and allocs/op vs the existing -o file; >0 enables the gate (exit 1, baseline kept)")
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintf(w, "usage: go test -bench ... | benchjson [-o FILE] [-maxregress PCT]\n\n")
		fmt.Fprintf(w, "Convert `go test -bench` output on stdin into a JSON report. Standard\n")
		fmt.Fprintf(w, "metrics (ns/op, B/op, allocs/op) and custom b.ReportMetric units are\n")
		fmt.Fprintf(w, "all captured; non-benchmark lines are ignored.\n\n")
		fmt.Fprintf(w, "With -maxregress, the existing -o file is the committed baseline: if\n")
		fmt.Fprintf(w, "any benchmark's B/op or allocs/op grew by more than PCT%%, the baseline\n")
		fmt.Fprintf(w, "is left untouched and benchjson exits non-zero.\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(w, "\nExamples:\n")
		fmt.Fprintf(w, "  go test -bench Sweep -benchmem ./internal/sweep/ | benchjson -o BENCH_sweep.json\n")
		fmt.Fprintf(w, "  go test -bench Sweep -benchmem ./internal/sweep/ | benchjson -o BENCH_sweep.json -maxregress 10\n")
	}
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: unexpected argument %q (input is read from stdin)\n", flag.Arg(0))
		os.Exit(1)
	}
	if *maxRegress > 0 && *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -maxregress needs -o FILE as the baseline")
		os.Exit(1)
	}

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	if *maxRegress > 0 {
		if base, err := loadReport(*out); err == nil {
			if regressions := compare(base, rep, *maxRegress); len(regressions) > 0 {
				for _, r := range regressions {
					fmt.Fprintln(os.Stderr, "benchjson: regression:", r)
				}
				fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) beyond %.0f%%; %s left untouched\n",
					len(regressions), *maxRegress, *out)
				os.Exit(1)
			}
		} else if !os.IsNotExist(err) {
			fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
			os.Exit(1)
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// loadReport reads a previously written report to serve as the baseline.
func loadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// compare flags every benchmark present in both reports whose B/op or
// allocs/op grew by more than maxPct percent over the baseline. Benchmark
// names include the GOMAXPROCS suffix, so baselines only gate runs on
// comparable machines.
func compare(base, cur *Report, maxPct float64) []string {
	baseline := make(map[string]map[string]float64, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r.Metrics
	}
	var regressions []string
	for _, r := range cur.Results {
		old, ok := baseline[r.Name]
		if !ok {
			continue
		}
		for _, unit := range []string{"B/op", "allocs/op"} {
			was, okOld := old[unit]
			now, okNew := r.Metrics[unit]
			if !okOld || !okNew || was <= 0 {
				continue
			}
			if growth := (now - was) / was * 100; growth > maxPct {
				regressions = append(regressions, fmt.Sprintf(
					"%s %s %.0f -> %.0f (+%.1f%%)", r.Name, unit, was, now, growth))
			}
		}
	}
	return regressions
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBench(line)
			if ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	return rep, sc.Err()
}

// parseBench parses one line of the form
//
//	BenchmarkName-8   120   9843215 ns/op   1024 B/op   12 allocs/op   321.5 cells/sec
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBench(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}
