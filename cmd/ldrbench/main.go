// Command ldrbench regenerates the tables and figures of the LDR paper's
// evaluation (§4). Each experiment sweeps the paper's scenario parameters,
// aggregates repeated trials into mean ± 95% confidence intervals, and
// prints the same rows/series the paper reports.
//
//	ldrbench -exp all                        # reduced scale (minutes)
//	ldrbench -exp table1 -simtime 900s -trials 10   # the paper's full setup
//
// Experiments: table1, fig2, fig3, fig4, fig5, fig6, fig7, ablation, all.
// The bounded model-check sweep (-exp modelcheck) runs only when named —
// it is exhaustive rather than statistical, so "all" (the paper set)
// excludes it.
//
// Output is deterministic: byte-identical for the same flags at any
// -workers setting.
//
// With -journal DIR the sweep is crash-safe: completed cells are durably
// recorded, ^C prints the exact resume command, and -resume continues a
// killed run to byte-identical output. -cell-timeout arms a per-cell
// watchdog and -keep-going quarantines failing cells (with auto-emitted
// reproducers) instead of aborting the whole sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/manetlab/ldr/internal/conformance"
	"github.com/manetlab/ldr/internal/experiments"
	"github.com/manetlab/ldr/internal/resilience"
	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/sweep"
	"github.com/manetlab/ldr/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ldrbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|fig2|fig3|fig4|fig5|fig6|fig7|ablation|all, or modelcheck|mobility|radio (not in all)")
		trials  = flag.Int("trials", 3, "trials (seeds) per configuration; paper: 10")
		simTime = flag.Duration("simtime", 300*time.Second, "simulated time per run; paper: 900s")
		seed    = flag.Int64("seed", 1, "base random seed")
		protos  = flag.String("protocols", "", "comma-separated protocol subset (default: ldr,aodv,dsr,olsr)")
		workers = flag.Int("workers", 0, "concurrent scenario cells; 0 = GOMAXPROCS, 1 = serial (output is identical either way)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file at exit")

		mobilityModel = flag.String("mobility", "", "mobility model for every cell: waypoint|manhattan|gaussmarkov (default: each experiment's own; -exp mobility sweeps all)")
		trafficPat    = flag.String("traffic", "", "traffic pattern for every cell: cbr|bursty|reqresp (default cbr)")
		radioProf     = flag.String("radio", "", "radio profile for every cell: uniform|mixed|asym (default uniform disk; -exp radio sweeps all)")
		densityProf   = flag.String("density", "", "placement-density profile for every cell: uniform|gradient|hotspot (default uniform; -exp radio sweeps all)")
		adaptive      = flag.Bool("adaptive-timeout", false, "derive LDR/AODV route lifetimes from observed RTTs instead of constants")
	)
	var ef resilience.ExecFlags
	ef.Register(flag.CommandLine)
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintf(w, "usage: ldrbench [flags]\n\n")
		fmt.Fprintf(w, "Regenerate the tables and figures of the LDR paper's evaluation (§4):\n")
		fmt.Fprintf(w, "each experiment sweeps the paper's scenario parameters, aggregates\n")
		fmt.Fprintf(w, "repeated trials into mean ± 95%% CI, and prints the rows the paper\n")
		fmt.Fprintf(w, "reports. Output is byte-identical at any -workers setting.\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(w, "\nExamples:\n")
		fmt.Fprintf(w, "  ldrbench -exp table1 -simtime 900s -trials 10   # the paper's full setup\n")
		fmt.Fprintf(w, "  ldrbench -exp fig3 -protocols ldr,aodv\n")
		fmt.Fprintf(w, "  ldrbench -exp mobility                          # waypoint vs manhattan vs gaussmarkov\n")
		fmt.Fprintf(w, "  ldrbench -exp table1 -traffic bursty -adaptive-timeout\n")
		fmt.Fprintf(w, "  ldrbench -exp radio                             # uniform vs mixed vs asym power, density profiles\n")
		fmt.Fprintf(w, "  ldrbench -exp fig3 -radio asym -density gradient\n")
		fmt.Fprintf(w, "  ldrbench -exp table1 -journal /tmp/t1.journal           # kill-safe; ^C prints the resume command\n")
		fmt.Fprintf(w, "  ldrbench -exp table1 -journal /tmp/t1.journal -resume   # continue a killed sweep\n")
		fmt.Fprintf(w, "  ldrbench -exp all -journal DIR -cell-timeout 2m -keep-going\n")
	}
	flag.Parse()

	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (ldrbench takes only flags)", flag.Arg(0))
	}
	if *trials < 1 {
		return fmt.Errorf("-trials must be at least 1 (got %d)", *trials)
	}
	if *simTime <= 0 {
		return fmt.Errorf("-simtime must be positive (got %v)", *simTime)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be ≥ 0 (got %d; 0 means GOMAXPROCS)", *workers)
	}
	if !scenario.ValidMobility(*mobilityModel) {
		return fmt.Errorf("-mobility must be one of %v (got %q)", scenario.Mobilities(), *mobilityModel)
	}
	if !traffic.ValidPattern(*trafficPat) {
		return fmt.Errorf("-traffic must be one of %v (got %q)", traffic.Patterns(), *trafficPat)
	}
	if !scenario.ValidRadio(*radioProf) {
		return fmt.Errorf("-radio must be one of %v (got %q)", scenario.Radios(), *radioProf)
	}
	if !scenario.ValidDensity(*densityProf) {
		return fmt.Errorf("-density must be one of %v (got %q)", scenario.Densities(), *densityProf)
	}
	journal, err := ef.OpenJournal()
	if err != nil {
		return err
	}
	resilience.HandleSignals(journal, os.Stderr)

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		defer func() {
			// alloc_space/alloc_objects cover the whole run even though the
			// snapshot is taken at exit; GC first so inuse numbers are live.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ldrbench: memprofile:", err)
			}
			f.Close()
		}()
	}

	var prog sweep.Progress
	opts := experiments.Options{
		Trials:          *trials,
		SimTime:         *simTime,
		Out:             os.Stdout,
		BaseSeed:        *seed,
		Workers:         *workers,
		Mobility:        *mobilityModel,
		TrafficPattern:  *trafficPat,
		Radio:           *radioProf,
		Density:         *densityProf,
		AdaptiveTimeout: *adaptive,
		Progress:        &prog,
		Exec: sweep.ExecOptions{
			Journal:     journal,
			CellTimeout: ef.CellTimeout,
			KeepGoing:   ef.KeepGoing,
		},
	}
	if journal != nil {
		opts.Exec.OnFailure = conformance.QuarantineEmitter(journal.Dir(), func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ldrbench: "+format+"\n", args...)
		})
	}
	// On a degraded keep-going run, render whatever completed, then leave
	// a machine-readable manifest next to the journal records.
	report := func(err error) error {
		return sweep.ReportFailures(os.Stderr, "ldrbench", journal, "metrics", prog.Total(), err)
	}
	if *protos != "" {
		for _, p := range strings.Split(*protos, ",") {
			name := scenario.ProtocolName(strings.TrimSpace(p))
			// Resolve now for a clean error before any simulation runs.
			if _, err := scenario.Factory(name, nil); err != nil {
				return err
			}
			opts.Protocols = append(opts.Protocols, name)
		}
	}

	type experiment struct {
		name string
		fn   func(experiments.Options) error
	}
	all := []experiment{
		{"table1", experiments.Table1},
		{"fig2", func(o experiments.Options) error {
			return experiments.DeliveryFigure(o, "Fig 2", 50, 10)
		}},
		{"fig3", func(o experiments.Options) error {
			return experiments.DeliveryFigure(o, "Fig 3", 50, 30)
		}},
		{"fig4", func(o experiments.Options) error {
			return experiments.DeliveryFigure(o, "Fig 4", 100, 10)
		}},
		{"fig5", func(o experiments.Options) error {
			return experiments.DeliveryFigure(o, "Fig 5", 100, 30)
		}},
		{"fig6", experiments.Fig6},
		{"fig7", experiments.Fig7},
		{"ablation", experiments.Ablation},
	}
	// Extra experiments that run only when named: modelcheck is a
	// bounded-exhaustive state-space sweep (minutes on one core) rather
	// than a statistical one, and mobility is a cross-model comparison
	// from the follow-on MANET literature, so "all" — the
	// paper-regeneration set — excludes them. See also cmd/ldrcheck for
	// the budget-tunable model-check front end.
	extra := []experiment{
		{"modelcheck", experiments.ModelCheck},
		{"mobility", experiments.Mobility},
		{"radio", experiments.Radio},
	}

	if *exp == "all" {
		for _, e := range all {
			start := time.Now()
			if err := e.fn(opts); err != nil {
				return report(fmt.Errorf("%s: %w", e.name, err))
			}
			fmt.Printf("[%s done in %v]\n", e.name, time.Since(start).Round(time.Second))
		}
		return nil
	}
	for _, e := range append(all, extra...) {
		if e.name == *exp {
			return report(e.fn(opts))
		}
	}
	names := make([]string, 0, len(all)+len(extra)+1)
	for _, e := range append(all, extra...) {
		names = append(names, e.name)
	}
	return fmt.Errorf("unknown experiment %q (have %s, all)", *exp, strings.Join(names, ", "))
}
