// Command ldrbench regenerates the tables and figures of the LDR paper's
// evaluation (§4). Each experiment sweeps the paper's scenario parameters,
// aggregates repeated trials into mean ± 95% confidence intervals, and
// prints the same rows/series the paper reports.
//
//	ldrbench -exp all                        # reduced scale (minutes)
//	ldrbench -exp table1 -simtime 900s -trials 10   # the paper's full setup
//
// Experiments: table1, fig2, fig3, fig4, fig5, fig6, fig7, ablation, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/manetlab/ldr/internal/experiments"
	"github.com/manetlab/ldr/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ldrbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|fig2|fig3|fig4|fig5|fig6|fig7|ablation|all")
		trials  = flag.Int("trials", 3, "trials (seeds) per configuration; paper: 10")
		simTime = flag.Duration("simtime", 300*time.Second, "simulated time per run; paper: 900s")
		seed    = flag.Int64("seed", 1, "base random seed")
		protos  = flag.String("protocols", "", "comma-separated protocol subset (default: ldr,aodv,dsr,olsr)")
		workers = flag.Int("workers", 0, "concurrent scenario cells; 0 = GOMAXPROCS, 1 = serial (output is identical either way)")
	)
	flag.Parse()

	opts := experiments.Options{
		Trials:   *trials,
		SimTime:  *simTime,
		Out:      os.Stdout,
		BaseSeed: *seed,
		Workers:  *workers,
	}
	if *protos != "" {
		for _, p := range strings.Split(*protos, ",") {
			opts.Protocols = append(opts.Protocols, scenario.ProtocolName(strings.TrimSpace(p)))
		}
	}

	type experiment struct {
		name string
		fn   func(experiments.Options) error
	}
	all := []experiment{
		{"table1", experiments.Table1},
		{"fig2", func(o experiments.Options) error {
			return experiments.DeliveryFigure(o, "Fig 2", 50, 10)
		}},
		{"fig3", func(o experiments.Options) error {
			return experiments.DeliveryFigure(o, "Fig 3", 50, 30)
		}},
		{"fig4", func(o experiments.Options) error {
			return experiments.DeliveryFigure(o, "Fig 4", 100, 10)
		}},
		{"fig5", func(o experiments.Options) error {
			return experiments.DeliveryFigure(o, "Fig 5", 100, 30)
		}},
		{"fig6", experiments.Fig6},
		{"fig7", experiments.Fig7},
		{"ablation", experiments.Ablation},
	}

	if *exp == "all" {
		for _, e := range all {
			start := time.Now()
			if err := e.fn(opts); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			fmt.Printf("[%s done in %v]\n", e.name, time.Since(start).Round(time.Second))
		}
		return nil
	}
	for _, e := range all {
		if e.name == *exp {
			return e.fn(opts)
		}
	}
	return fmt.Errorf("unknown experiment %q", *exp)
}
