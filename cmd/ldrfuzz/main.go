// Command ldrfuzz sweeps randomized scenarios through the conformance
// harness: every run is audited continuously for packet conservation
// (initiated == delivered + dropped + in-flight), at-most-once delivery,
// control-ledger consistency, and — for LDR — loop freedom. Each scenario
// also draws an adversary profile (Byzantine nodes that blackhole, forge
// sequence numbers, replay stale labels, or flood storms), a mobility
// model (waypoint, Manhattan grid, Gauss-Markov), a traffic pattern
// (CBR, bursty, request-response), a radio profile (uniform disk, mixed
// transmit-power classes, asym long/short — the latter two produce
// one-way links), a placement-density profile (uniform, gradient,
// hotspot), and whether adaptive RTT-derived route timeouts are on, so
// the fuzzer hunts for invariant breaks across the whole
// scenario-diversity matrix. Violating scenarios are greedily
// shrunk (drop flows, drop faults, drop the adversary, reset the
// diversity axes, shorten simtime) into minimal reproducers and printed as
// JSON specs ready to commit under internal/conformance/testdata/ — or,
// when the surviving ingredient is the adversary, under
// internal/adversary/testdata/.
//
//	ldrfuzz                          # 32 runs, all protocols × profiles
//	ldrfuzz -runs 200 -seed 7
//	ldrfuzz -protocols ldr,aodv -profiles reboot,mayhem -shrink=false
//	ldrfuzz -adversaries seqno-forge,byzantine -profiles none
//	ldrfuzz -runs 8 -max-nodes 20 -max-simtime 12s   # the smoke bound
//
// The sweep is deterministic in (-seed, -runs): the -workers setting
// changes neither the scenarios generated nor the findings reported.
// Exit status is 1 when any finding is reported, so the command can gate
// CI.
//
// With -journal DIR the sweep is crash-safe: completed runs are durably
// recorded, ^C prints the exact resume command, and -resume continues a
// killed campaign without re-simulating finished runs. -cell-timeout
// arms a per-run watchdog and -keep-going quarantines failing runs (with
// auto-emitted reproducers) instead of aborting the campaign.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/manetlab/ldr/internal/adversary"
	"github.com/manetlab/ldr/internal/conformance"
	"github.com/manetlab/ldr/internal/fault"
	"github.com/manetlab/ldr/internal/resilience"
	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/sweep"
	"github.com/manetlab/ldr/internal/traffic"
)

// trafficNames renders the candidate traffic patterns for flag help and
// error text.
func trafficNames() string {
	names := make([]string, 0, len(traffic.Patterns()))
	for _, p := range traffic.Patterns() {
		names = append(names, string(p))
	}
	return strings.Join(names, ",")
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ldrfuzz:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runs       = flag.Int("runs", 32, "scenarios to generate (≥ 1)")
		seed       = flag.Int64("seed", 1, "generator seed (nonzero)")
		workers    = flag.Int("workers", 0, "concurrent runs; 0 = GOMAXPROCS, 1 = serial (findings identical either way)")
		protocols  = flag.String("protocols", "", "comma-separated protocol subset (default: ldr,aodv,dsr,olsr)")
		profiles   = flag.String("profiles", "", "comma-separated fault profiles (default: all of "+strings.Join(fault.ProfileNames(), ",")+")")
		advs       = flag.String("adversaries", "", "comma-separated adversary profiles (default: all of "+strings.Join(adversary.ProfileNames(), ",")+")")
		mobilities = flag.String("mobilities", "", "comma-separated mobility models to draw from (default: all of "+strings.Join(scenario.Mobilities(), ",")+")")
		traffics   = flag.String("traffics", "", "comma-separated traffic patterns to draw from (default: all of "+trafficNames()+")")
		radios     = flag.String("radios", "", "comma-separated radio profiles to draw from (default: all of "+strings.Join(scenario.Radios(), ",")+")")
		densities  = flag.String("densities", "", "comma-separated placement-density profiles to draw from (default: all of "+strings.Join(scenario.Densities(), ",")+")")
		maxNodes   = flag.Int("max-nodes", 30, "node-count upper bound (≥ 8)")
		maxSimTime = flag.Duration("max-simtime", 45*time.Second, "simulated-length upper bound (≥ 5s)")
		shrink     = flag.Bool("shrink", true, "minimize findings into small reproducers")
		quiet      = flag.Bool("q", false, "suppress progress; print only the findings JSON")
	)
	var ef resilience.ExecFlags
	ef.Register(flag.CommandLine)
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintf(w, "usage: ldrfuzz [flags]\n\n")
		fmt.Fprintf(w, "Fuzz randomized ad hoc network scenarios through the conformance\n")
		fmt.Fprintf(w, "harness (packet conservation, at-most-once delivery, control ledgers,\n")
		fmt.Fprintf(w, "LDR loop freedom), drawing both a fault profile and a Byzantine\n")
		fmt.Fprintf(w, "adversary profile per scenario, and shrink any violation into a minimal\n")
		fmt.Fprintf(w, "reproducer. Findings are printed as JSON specs for\n")
		fmt.Fprintf(w, "internal/conformance/testdata/ (or internal/adversary/testdata/ when\n")
		fmt.Fprintf(w, "the adversary is what survives shrinking) and make the exit status 1.\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(w, "\nExamples:\n")
		fmt.Fprintf(w, "  ldrfuzz -runs 200 -seed 7\n")
		fmt.Fprintf(w, "  ldrfuzz -protocols ldr -profiles mayhem -shrink=false\n")
		fmt.Fprintf(w, "  ldrfuzz -adversaries seqno-forge,byzantine -profiles none\n")
		fmt.Fprintf(w, "  ldrfuzz -mobilities manhattan,gaussmarkov -traffics bursty,reqresp\n")
		fmt.Fprintf(w, "  ldrfuzz -radios mixed,asym -densities gradient,hotspot   # heterogeneous-radio hunt\n")
		fmt.Fprintf(w, "  ldrfuzz -runs 500 -journal /tmp/fuzz.journal             # kill-safe campaign; resume with -resume\n")
		fmt.Fprintf(w, "  ldrfuzz -journal DIR -cell-timeout 1m -keep-going        # quarantine wedged/panicking runs\n")
	}
	flag.Parse()

	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (ldrfuzz takes only flags)", flag.Arg(0))
	}
	if *runs < 1 {
		return fmt.Errorf("-runs must be at least 1 (got %d)", *runs)
	}
	if *seed == 0 {
		return fmt.Errorf("-seed must be nonzero")
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be ≥ 0 (got %d; 0 means GOMAXPROCS)", *workers)
	}
	if *maxNodes < 8 {
		return fmt.Errorf("-max-nodes must be at least 8 (got %d)", *maxNodes)
	}
	if *maxSimTime < 5*time.Second {
		return fmt.Errorf("-max-simtime must be at least 5s (got %v)", *maxSimTime)
	}
	journal, err := ef.OpenJournal()
	if err != nil {
		return err
	}
	resilience.HandleSignals(journal, os.Stderr)

	var prog sweep.Progress
	opts := conformance.Options{
		Runs:       *runs,
		Seed:       *seed,
		Workers:    *workers,
		MaxNodes:   *maxNodes,
		MaxSimTime: *maxSimTime,
		Shrink:     *shrink,
		Progress:   &prog,
		Exec: sweep.ExecOptions{
			Journal:     journal,
			CellTimeout: ef.CellTimeout,
			KeepGoing:   ef.KeepGoing,
		},
	}
	if journal != nil {
		opts.Exec.OnFailure = conformance.QuarantineEmitter(journal.Dir(), func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ldrfuzz: "+format+"\n", args...)
		})
	}
	if !*quiet {
		opts.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ldrfuzz: "+format+"\n", args...)
		}
	}
	if *protocols != "" {
		for _, p := range strings.Split(*protocols, ",") {
			name := strings.TrimSpace(p)
			// Resolve now for a clean error before any simulation runs.
			if _, err := scenario.Factory(scenario.ProtocolName(name), nil); err != nil {
				return err
			}
			opts.Protocols = append(opts.Protocols, name)
		}
	}
	if *profiles != "" {
		for _, p := range strings.Split(*profiles, ",") {
			name := strings.TrimSpace(p)
			if name != "none" {
				if _, err := fault.Profile(name, 50, time.Minute); err != nil {
					return err
				}
			}
			opts.Profiles = append(opts.Profiles, name)
		}
	}
	if *advs != "" {
		for _, p := range strings.Split(*advs, ",") {
			name := strings.TrimSpace(p)
			// Resolve now for a clean error before any simulation runs.
			if _, err := adversary.Profile(name, 50, time.Minute); err != nil {
				return err
			}
			opts.Adversaries = append(opts.Adversaries, name)
		}
	}
	if *mobilities != "" {
		for _, m := range strings.Split(*mobilities, ",") {
			name := strings.TrimSpace(m)
			if name == "" || !scenario.ValidMobility(name) {
				return fmt.Errorf("-mobilities: must be drawn from %v (got %q)", scenario.Mobilities(), name)
			}
			opts.Mobilities = append(opts.Mobilities, name)
		}
	}
	if *traffics != "" {
		for _, p := range strings.Split(*traffics, ",") {
			name := strings.TrimSpace(p)
			if name == "" || !traffic.ValidPattern(name) {
				return fmt.Errorf("-traffics: must be drawn from [%s] (got %q)", trafficNames(), name)
			}
			opts.Traffics = append(opts.Traffics, name)
		}
	}
	if *radios != "" {
		for _, r := range strings.Split(*radios, ",") {
			name := strings.TrimSpace(r)
			if name == "" || !scenario.ValidRadio(name) {
				return fmt.Errorf("-radios: must be drawn from %v (got %q)", scenario.Radios(), name)
			}
			opts.Radios = append(opts.Radios, name)
		}
	}
	if *densities != "" {
		for _, d := range strings.Split(*densities, ",") {
			name := strings.TrimSpace(d)
			if name == "" || !scenario.ValidDensity(name) {
				return fmt.Errorf("-densities: must be drawn from %v (got %q)", scenario.Densities(), name)
			}
			opts.Densities = append(opts.Densities, name)
		}
	}

	findings, err := conformance.Fuzz(opts)
	err = sweep.ReportFailures(os.Stderr, "ldrfuzz", journal, "fuzz", *runs, err)
	var fs sweep.Failures
	degraded := errors.As(err, &fs)
	if err != nil && !degraded {
		return err
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "ldrfuzz: %d runs, %d findings\n", *runs, len(findings))
	}
	if len(findings) > 0 {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if jerr := enc.Encode(findings); jerr != nil {
			return jerr
		}
		return fmt.Errorf("%d violating scenario(s) found", len(findings))
	}
	// A degraded keep-going campaign still exits nonzero: its Failures
	// error names the quarantined runs the findings above cannot cover.
	return err
}
