// Command ldrtrace runs a scenario while periodically dumping the global
// routing state: every node's routes toward a chosen destination, with
// LDR's (sequence number, feasible distance) labels, plus live invariant
// checking. It is the debugging companion to ldrsim.
//
//	ldrtrace -proto ldr -nodes 20 -dest 3 -interval 5s -simtime 60s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/manetlab/ldr/internal/loopcheck"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ldrtrace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		proto    = flag.String("proto", "ldr", "routing protocol: ldr|aodv|dsr|dsr7|olsr")
		nodes    = flag.Int("nodes", 20, "number of nodes")
		flows    = flag.Int("flows", 5, "concurrent CBR flows")
		pause    = flag.Duration("pause", 0, "random-waypoint pause time")
		simTime  = flag.Duration("simtime", 60*time.Second, "simulated duration")
		interval = flag.Duration("interval", 5*time.Second, "dump interval")
		dest     = flag.Int("dest", 0, "destination whose successor graph to dump")
		seed     = flag.Int64("seed", 1, "random seed")
		packets  = flag.Int("packets", 0, "also print the paths of the last N traced packets (≥ 0)")
	)
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintf(w, "usage: ldrtrace [flags]\n\n")
		fmt.Fprintf(w, "Run one scenario while periodically dumping every node's routes toward\n")
		fmt.Fprintf(w, "-dest (with LDR's sequence-number and feasible-distance labels) and\n")
		fmt.Fprintf(w, "checking the loop-freedom invariants live. Debugging companion to ldrsim.\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(w, "\nExamples:\n")
		fmt.Fprintf(w, "  ldrtrace -proto ldr -nodes 20 -dest 3 -interval 5s -simtime 60s\n")
		fmt.Fprintf(w, "  ldrtrace -proto aodv -packets 10\n")
	}
	flag.Parse()

	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (ldrtrace takes only flags)", flag.Arg(0))
	}
	if _, err := scenario.Factory(scenario.ProtocolName(*proto), nil); err != nil {
		return err
	}
	if *nodes < 2 {
		return fmt.Errorf("-nodes must be at least 2 (got %d)", *nodes)
	}
	if *flows < 1 {
		return fmt.Errorf("-flows must be at least 1 (got %d)", *flows)
	}
	if *pause < 0 {
		return fmt.Errorf("-pause must be ≥ 0 (got %v)", *pause)
	}
	if *simTime <= 0 {
		return fmt.Errorf("-simtime must be positive (got %v)", *simTime)
	}
	if *interval <= 0 {
		return fmt.Errorf("-interval must be positive (got %v)", *interval)
	}
	if *dest < 0 || *dest >= *nodes {
		return fmt.Errorf("-dest must name a node in [0,%d) (got %d)", *nodes, *dest)
	}
	if *packets < 0 {
		return fmt.Errorf("-packets must be ≥ 0 (got %d)", *packets)
	}

	cfg := scenario.Nodes50(scenario.ProtocolName(*proto), *flows, *pause, *seed)
	cfg.Nodes = *nodes
	cfg.SimTime = *simTime

	nw, gen, err := scenario.Build(cfg)
	if err != nil {
		return err
	}
	var rec *routing.Recorder
	if *packets > 0 {
		rec = routing.NewRecorder(65536)
		nw.SetTracer(rec)
	}
	nw.Start()
	gen.Start()

	var dump func()
	dump = func() {
		now := nw.Sim.Now()
		g := topology.SnapshotRanges(nw.Medium.Model(), now, nw.Medium.TxRanges())
		fmt.Printf("--- t=%v routes toward node %d (graph: %d components, %.0f%% pairs reachable) ---\n",
			now.Round(time.Millisecond), *dest, g.Components(), 100*g.ReachableFraction())
		printSuccessors(nw, routing.NodeID(*dest))
		if vs := loopcheck.Check(nw.Nodes); len(vs) > 0 {
			for _, v := range vs {
				fmt.Println("  INVARIANT VIOLATION:", v)
			}
		} else {
			fmt.Println("  invariants: OK (loop-free, ordering criterion holds)")
		}
		if now < cfg.SimTime {
			nw.Sim.Schedule(*interval, dump)
		}
	}
	nw.Sim.Schedule(*interval, dump)
	nw.Sim.Run(cfg.SimTime)

	if rec != nil {
		printPacketPaths(rec, *packets)
	}

	c := nw.Collector
	fmt.Printf("\ndelivery %.2f%% (%d/%d), mean latency %v\n",
		100*c.DeliveryRatio(), c.DataDelivered, c.DataInitiated,
		c.MeanLatency().Round(time.Microsecond))
	return nil
}

// printPacketPaths reconstructs and prints the hop sequences of the last
// n delivered packets from the trace recorder.
func printPacketPaths(rec *routing.Recorder, n int) {
	fmt.Printf("\n--- last %d delivered packet paths ---\n", n)
	evs := rec.Events()
	printed := 0
	seen := make(map[[2]uint64]bool)
	for i := len(evs) - 1; i >= 0 && printed < n; i-- {
		ev := evs[i]
		if ev.Kind != routing.TraceDeliver {
			continue
		}
		key := [2]uint64{uint64(ev.Src), ev.ID}
		if seen[key] {
			continue
		}
		seen[key] = true
		path := rec.PacketPath(ev.Src, ev.ID)
		fmt.Printf("  %d->%d pkt %d: %v\n", ev.Src, ev.Dst, ev.ID, path)
		printed++
	}
	if rec.Evicted() > 0 {
		fmt.Printf("  (%d older events evicted from the trace buffer)\n", rec.Evicted())
	}
}

func printSuccessors(nw *routing.Network, dest routing.NodeID) {
	type row struct {
		node routing.NodeID
		e    routing.RouteEntry
	}
	var rows []row
	for _, n := range nw.Nodes {
		snap, ok := n.Protocol().(routing.TableSnapshotter)
		if !ok {
			continue
		}
		for _, e := range snap.SnapshotTable() {
			if e.Dst == dest && e.Valid {
				rows = append(rows, row{node: n.ID(), e: e})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].node < rows[j].node })
	for _, r := range rows {
		if r.e.FD > 0 {
			fmt.Printf("  node %3d -> next %3d  dist %2d  fd %2d  sn %d\n",
				r.node, r.e.Next, r.e.Metric, r.e.FD, r.e.SeqNo)
		} else {
			fmt.Printf("  node %3d -> next %3d  dist %2d  sn %d\n",
				r.node, r.e.Next, r.e.Metric, r.e.SeqNo)
		}
	}
	if len(rows) == 0 {
		fmt.Println("  (no valid routes)")
	}
}
