// Command ldrsim runs one ad hoc network simulation and prints its
// metrics. It is the exploration tool; cmd/ldrbench regenerates the
// paper's tables and figures.
//
// Usage:
//
//	ldrsim -proto ldr -nodes 50 -flows 10 -pause 60s -simtime 300s -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ldrsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		proto   = flag.String("proto", "ldr", "routing protocol: ldr|aodv|dsr|dsr7|olsr|olsr-nojitter")
		nodes   = flag.Int("nodes", 50, "number of nodes")
		width   = flag.Float64("width", 1500, "terrain width (m)")
		height  = flag.Float64("height", 300, "terrain height (m)")
		flows   = flag.Int("flows", 10, "concurrent CBR flows")
		pause   = flag.Duration("pause", 60*time.Second, "random-waypoint pause time")
		speed   = flag.Float64("maxspeed", 20, "maximum node speed (m/s)")
		simTime = flag.Duration("simtime", 300*time.Second, "simulated duration")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := scenario.Config{
		Protocol:  scenario.ProtocolName(*proto),
		Nodes:     *nodes,
		Terrain:   mobility.Terrain{Width: *width, Height: *height},
		Flows:     *flows,
		PauseTime: *pause,
		MinSpeed:  1,
		MaxSpeed:  *speed,
		SimTime:   *simTime,
		Seed:      *seed,
	}

	start := time.Now()
	res, err := scenario.Run(cfg)
	if err != nil {
		return err
	}
	c := res.Collector

	fmt.Printf("protocol         %s\n", cfg.Protocol)
	fmt.Printf("scenario         %d nodes, %.0fx%.0f m, %d flows, pause %v, %v sim\n",
		cfg.Nodes, cfg.Terrain.Width, cfg.Terrain.Height, cfg.Flows, cfg.PauseTime, cfg.SimTime)
	fmt.Printf("data initiated   %d\n", c.DataInitiated)
	fmt.Printf("data delivered   %d\n", c.DataDelivered)
	fmt.Printf("delivery ratio   %.2f%%\n", 100*c.DeliveryRatio())
	fmt.Printf("mean latency     %v\n", c.MeanLatency().Round(time.Microsecond))
	fmt.Printf("latency p50/p95  %v / %v (p99 %v, max %v)\n",
		c.Latency.Percentile(50), c.Latency.Percentile(95),
		c.Latency.Percentile(99), c.Latency.Max().Round(time.Millisecond))
	fmt.Printf("network load     %.3f control pkts / delivered pkt\n", c.NetworkLoad())
	fmt.Printf("rreq load        %.3f RREQ transmissions / delivered pkt\n", c.RREQLoad())
	fmt.Printf("rrep init        %.3f RREPs initiated / RREQ initiated\n", c.RREPInitPerRREQ())
	fmt.Printf("rrep recv        %.3f usable RREPs / RREQ initiated\n", c.RREPRecvPerRREQ())
	fmt.Printf("mean path length %.2f hops\n", c.MeanHops())
	if c.SeqnoCount > 0 {
		fmt.Printf("mean dest seqno  %.2f\n", c.MeanSeqno())
	}
	fmt.Printf("sim events       %d (%.1fs wall)\n", res.Events, time.Since(start).Seconds())
	return nil
}
