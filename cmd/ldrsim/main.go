// Command ldrsim runs one ad hoc network simulation and prints its
// metrics. It is the exploration tool; cmd/ldrbench regenerates the
// paper's tables and figures.
//
// Usage:
//
//	ldrsim -proto ldr -nodes 50 -flows 10 -pause 60s -simtime 300s -seed 1
//
// With -trials N (N > 1) the same scenario is run across seeds
// seed..seed+N-1, fanned out over -workers goroutines, and reported as
// one line per seed plus a mean ± 95% CI summary.
//
// Flags are validated before anything runs: nonsensical values
// (-trials 0, -workers -1, zero nodes, an unknown protocol) are rejected
// with a clear error rather than silently misbehaving.
//
// ^C does not kill the simulation mid-event: the run stops at its next
// event boundary and the metrics accumulated so far are printed, with the
// seed to re-run the scenario in full. A second ^C force-kills.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/stats"
	"github.com/manetlab/ldr/internal/sweep"
	"github.com/manetlab/ldr/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ldrsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		proto   = flag.String("proto", "ldr", "routing protocol: ldr|aodv|dsr|dsr7|olsr|olsr-nojitter")
		nodes   = flag.Int("nodes", 50, "number of nodes (≥ 2)")
		width   = flag.Float64("width", 1500, "terrain width (m)")
		height  = flag.Float64("height", 300, "terrain height (m)")
		flows   = flag.Int("flows", 10, "concurrent CBR flows (≥ 1)")
		pause   = flag.Duration("pause", 60*time.Second, "random-waypoint pause time")
		speed   = flag.Float64("maxspeed", 20, "maximum node speed (m/s)")
		simTime = flag.Duration("simtime", 300*time.Second, "simulated duration (> 0)")
		seed    = flag.Int64("seed", 1, "random seed")
		trials  = flag.Int("trials", 1, "number of seeds to run, seed..seed+trials-1 (≥ 1)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent runs when trials > 1 (≥ 1; results are identical at any setting)")

		mobilityModel = flag.String("mobility", "waypoint", "mobility model: waypoint|manhattan|gaussmarkov")
		trafficPat    = flag.String("traffic", "cbr", "traffic pattern: cbr|bursty|reqresp")
		radioProf     = flag.String("radio", "uniform", "radio profile: uniform|mixed|asym (per-node transmit-power classes)")
		densityProf   = flag.String("density", "uniform", "placement-density profile: uniform|gradient|hotspot")
		adaptive      = flag.Bool("adaptive-timeout", false, "derive LDR/AODV route lifetimes from observed RTTs instead of constants")
	)
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintf(w, "usage: ldrsim [flags]\n\n")
		fmt.Fprintf(w, "Run one ad hoc network simulation (or -trials seeds of it) and print\n")
		fmt.Fprintf(w, "its metrics. cmd/ldrbench regenerates the paper's tables; cmd/ldrchaos\n")
		fmt.Fprintf(w, "runs the fault-injection suite.\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(w, "\nExamples:\n")
		fmt.Fprintf(w, "  ldrsim -proto ldr -nodes 50 -flows 10 -pause 60s -simtime 300s -seed 1\n")
		fmt.Fprintf(w, "  ldrsim -proto aodv -trials 10 -workers 4\n")
		fmt.Fprintf(w, "  ldrsim -proto ldr -mobility manhattan -traffic bursty -adaptive-timeout\n")
		fmt.Fprintf(w, "  ldrsim -proto olsr -radio asym -density gradient  # one-way links, uneven placement\n")
	}
	flag.Parse()

	if *trials < 1 {
		return fmt.Errorf("-trials must be at least 1 (got %d)", *trials)
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be at least 1 (got %d)", *workers)
	}
	if *nodes < 2 {
		return fmt.Errorf("-nodes must be at least 2 (got %d)", *nodes)
	}
	if *flows < 1 {
		return fmt.Errorf("-flows must be at least 1 (got %d)", *flows)
	}
	if *simTime <= 0 {
		return fmt.Errorf("-simtime must be positive (got %v)", *simTime)
	}
	if *width <= 0 || *height <= 0 {
		return fmt.Errorf("terrain must be positive (got %.0f x %.0f m)", *width, *height)
	}
	if *pause < 0 {
		return fmt.Errorf("-pause must not be negative (got %v)", *pause)
	}
	if *speed <= 0 {
		return fmt.Errorf("-maxspeed must be positive (got %.1f)", *speed)
	}
	if !scenario.ValidMobility(*mobilityModel) {
		return fmt.Errorf("-mobility must be one of %v (got %q)", scenario.Mobilities(), *mobilityModel)
	}
	if !traffic.ValidPattern(*trafficPat) {
		return fmt.Errorf("-traffic must be one of %v (got %q)", traffic.Patterns(), *trafficPat)
	}
	if !scenario.ValidRadio(*radioProf) {
		return fmt.Errorf("-radio must be one of %v (got %q)", scenario.Radios(), *radioProf)
	}
	if !scenario.ValidDensity(*densityProf) {
		return fmt.Errorf("-density must be one of %v (got %q)", scenario.Densities(), *densityProf)
	}

	// Stop at the next event boundary on ^C/SIGTERM and report the
	// partial metrics; a second signal falls through to the default
	// (fatal) disposition.
	ctl := scenario.NewControl()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigCh
		signal.Stop(sigCh)
		fmt.Fprintf(os.Stderr, "ldrsim: %v — stopping at the next event boundary (send again to force-kill)\n", s)
		ctl.Interrupt()
	}()

	cfg := scenario.Config{
		Protocol:        scenario.ProtocolName(*proto),
		Nodes:           *nodes,
		Terrain:         mobility.Terrain{Width: *width, Height: *height},
		Flows:           *flows,
		PauseTime:       *pause,
		MinSpeed:        1,
		MaxSpeed:        *speed,
		SimTime:         *simTime,
		Seed:            *seed,
		Mobility:        *mobilityModel,
		TrafficPattern:  traffic.Pattern(*trafficPat),
		Radio:           *radioProf,
		Density:         *densityProf,
		AdaptiveTimeout: *adaptive,
	}

	if *trials > 1 {
		return runTrials(cfg, *trials, *workers, ctl)
	}

	start := time.Now()
	res, err := scenario.RunWithControl(cfg, ctl)
	if err != nil {
		return err
	}
	c := res.Collector

	fmt.Printf("protocol         %s\n", cfg.Protocol)
	fmt.Printf("scenario         %d nodes, %.0fx%.0f m, %d flows, pause %v, %v sim\n",
		cfg.Nodes, cfg.Terrain.Width, cfg.Terrain.Height, cfg.Flows, cfg.PauseTime, cfg.SimTime)
	fmt.Printf("data initiated   %d\n", c.DataInitiated)
	fmt.Printf("data delivered   %d\n", c.DataDelivered)
	fmt.Printf("delivery ratio   %.2f%%\n", 100*c.DeliveryRatio())
	fmt.Printf("mean latency     %v\n", c.MeanLatency().Round(time.Microsecond))
	fmt.Printf("latency p50/p95  %v / %v (p99 %v, max %v)\n",
		c.Latency.Percentile(50), c.Latency.Percentile(95),
		c.Latency.Percentile(99), c.Latency.Max().Round(time.Millisecond))
	fmt.Printf("network load     %.3f control pkts / delivered pkt\n", c.NetworkLoad())
	fmt.Printf("rreq load        %.3f RREQ transmissions / delivered pkt\n", c.RREQLoad())
	fmt.Printf("rrep init        %.3f RREPs initiated / RREQ initiated\n", c.RREPInitPerRREQ())
	fmt.Printf("rrep recv        %.3f usable RREPs / RREQ initiated\n", c.RREPRecvPerRREQ())
	fmt.Printf("mean path length %.2f hops\n", c.MeanHops())
	if c.SeqnoCount > 0 {
		fmt.Printf("mean dest seqno  %.2f\n", c.MeanSeqno())
	}
	fmt.Printf("sim events       %d (%.1fs wall)\n", res.Events, time.Since(start).Seconds())
	if res.Interrupted {
		fmt.Printf("INTERRUPTED      metrics cover only the simulated time reached; re-run with -seed %d for the full %v\n",
			cfg.Seed, cfg.SimTime)
	}
	return nil
}

// runTrials runs the scenario across consecutive seeds in parallel and
// prints one line per seed plus an aggregate summary.
func runTrials(cfg scenario.Config, trials, workers int, ctl *scenario.Control) error {
	cfgs := make([]scenario.Config, trials)
	for i := range cfgs {
		cfgs[i] = cfg
		cfgs[i].Seed = cfg.Seed + int64(i)
	}

	start := time.Now()
	results, err := sweep.Run(cfgs, sweep.Options{Workers: workers, Exec: sweep.ExecOptions{Control: ctl}})
	if err != nil {
		return err
	}

	fmt.Printf("protocol         %s\n", cfg.Protocol)
	fmt.Printf("scenario         %d nodes, %.0fx%.0f m, %d flows, pause %v, %v sim, %d trials\n",
		cfg.Nodes, cfg.Terrain.Width, cfg.Terrain.Height, cfg.Flows, cfg.PauseTime, cfg.SimTime, trials)
	fmt.Printf("%-8s %12s %12s %14s %12s\n", "seed", "delivery %", "latency ms", "net load", "events")

	var delivery, latency, load []float64
	var events uint64
	ran, interrupted := 0, false
	for _, res := range results {
		c := res.Collector
		if c == nil {
			// An interrupted sweep stops claiming seeds; unclaimed cells
			// have no result.
			continue
		}
		ran++
		interrupted = interrupted || res.Interrupted
		d := 100 * c.DeliveryRatio()
		l := float64(c.MeanLatency()) / float64(time.Millisecond)
		n := c.NetworkLoad()
		delivery, latency, load = append(delivery, d), append(latency, l), append(load, n)
		events += res.Events
		mark := ""
		if res.Interrupted {
			mark = "  (interrupted: partial)"
		}
		fmt.Printf("%-8d %12.2f %12.3f %14.3f %12d%s\n", res.Config.Seed, d, l, n, res.Events, mark)
	}
	if ran == 0 {
		return fmt.Errorf("interrupted before any trial completed; re-run with -seed %d", cfg.Seed)
	}
	sd, sl, sn := stats.Summarize(delivery), stats.Summarize(latency), stats.Summarize(load)
	fmt.Printf("%-8s %6.2f ±%4.2f %6.3f ±%4.2f %8.3f ±%4.2f\n", "mean", sd.Mean, sd.CI95, sl.Mean, sl.CI95, sn.Mean, sn.CI95)
	wall := time.Since(start).Seconds()
	fmt.Printf("sim events       %d (%.1fs wall, %.0f events/s)\n", events, wall, float64(events)/wall)
	if interrupted || ran < trials {
		fmt.Printf("INTERRUPTED      %d of %d trials ran (some partial); re-run with -seed %d -trials %d for the full sweep\n",
			ran, trials, cfg.Seed, trials)
	}
	return nil
}
