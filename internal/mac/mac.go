// Package mac implements a simplified IEEE 802.11 DCF medium access layer.
//
// The model captures the DCF mechanisms that matter to routing-protocol
// comparisons: carrier sensing with DIFS deferral, slotted binary
// exponential backoff, unreliable broadcast (single attempt, no ACK), and
// reliable unicast (SIFS-spaced ACK, up to RetryLimit retransmissions).
// Exhausting retransmissions triggers the failure callback, which the
// routing protocols use as link-layer failure detection — exactly how
// AODV, DSR, and LDR detect broken links in the paper's simulations.
//
// The steady-state transmit path allocates nothing: air frames are drawn
// from a per-MAC free list and reference counted across their receptions
// (radio.Releasable), every scheduled continuation is a package-level
// function fed through sim.ScheduleTransient with the MAC pointer and the
// power-cycle epoch as arguments, and completion callbacks dispatch
// through the FrameHandler interface instead of per-frame closures.
package mac

import (
	"time"

	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/runpool"
	"github.com/manetlab/ldr/internal/sim"
)

// BroadcastAddr is the link-layer broadcast address.
const BroadcastAddr = -1

// Config parameterizes the MAC.
type Config struct {
	SlotTime    time.Duration // backoff slot
	DIFS        time.Duration // distributed inter-frame space
	SIFS        time.Duration // short inter-frame space (ACK turnaround)
	CWMin       int           // initial contention window (slots - 1)
	CWMax       int           // maximum contention window
	RetryLimit  int           // unicast retransmission limit
	QueueCap    int           // interface queue capacity (frames)
	HeaderBytes int           // MAC+PHY overhead added to every frame
	AckBytes    int           // ACK frame size on the air

	// RTS/CTS virtual carrier sensing. When enabled, unicast frames whose
	// network-layer size is at least RTSThreshold bytes are preceded by an
	// RTS/CTS handshake; overhearing nodes set their network-allocation
	// vector (NAV) for the advertised exchange duration, which suppresses
	// hidden-terminal collisions at the cost of extra control frames.
	RTSCTSEnabled bool
	RTSThreshold  int // bytes; 0 means every unicast frame
	RTSBytes      int // RTS frame size on the air
	CTSBytes      int // CTS frame size on the air
}

// DefaultConfig returns 802.11-like DCF parameters for a 2 Mb/s DSSS PHY.
func DefaultConfig() Config {
	return Config{
		SlotTime:    20 * time.Microsecond,
		DIFS:        50 * time.Microsecond,
		SIFS:        10 * time.Microsecond,
		CWMin:       31,
		CWMax:       1023,
		RetryLimit:  7,
		QueueCap:    64,
		HeaderBytes: 58, // 34 B MAC header + 24 B PHY preamble/PLCP
		AckBytes:    38, // 14 B ACK + PHY overhead

		RTSCTSEnabled: false, // basic access, as in the paper's setup
		RTSThreshold:  0,
		RTSBytes:      44, // 20 B RTS + PHY overhead
		CTSBytes:      38, // 14 B CTS + PHY overhead
	}
}

// FrameHandler receives a frame's completion events without per-frame
// closures: one handler instance (the network layer) serves every frame
// it sends. FrameSent/FrameFailed mirror OnSent/OnFail; FrameReleased
// fires once the MAC and radio are completely done with the frame — no
// queued, in-flight, or fault-delayed reference remains — and is where a
// pooling network layer reclaims the frame and its payload.
type FrameHandler interface {
	FrameSent(f *Frame)     // frame left the interface (broadcast) or was ACKed (unicast)
	FrameFailed(f *Frame)   // unicast retry limit exhausted or queue overflow
	FrameReleased(f *Frame) // last reference dropped; frame memory may be recycled
}

// Frame is one network-layer packet handed to the MAC for transmission.
// Completion is reported through Handler when set, else through the
// OnSent/OnFail closures (Handler avoids the per-frame closure
// allocations on the hot path; the closures remain for tests and simple
// callers).
type Frame struct {
	To      int          // destination MAC address, BroadcastAddr for broadcast
	Bytes   int          // network-layer size in bytes (MAC adds HeaderBytes)
	Payload any          // opaque network-layer packet
	Handler FrameHandler // optional completion/release target
	OnSent  func()       // optional: frame left the interface (broadcast) or was ACKed (unicast)
	OnFail  func()       // optional: unicast retry limit exhausted

	// Failed reports how the frame completed (set before FrameFailed and
	// FrameReleased fire); a frame wiped by Reset is also marked failed.
	Failed bool

	refs int32 // queue slot + one per in-flight air frame
}

// release drops one reference; the last reference hands the frame to its
// handler for recycling.
func (f *Frame) release() {
	f.refs--
	if f.refs != 0 {
		return
	}
	if f.Handler != nil {
		f.Handler.FrameReleased(f)
	}
}

// DeliverFunc receives frames addressed to this node (or broadcast).
type DeliverFunc func(from int, f *Frame)

// PromiscuousFunc receives decoded frames addressed to OTHER nodes, when
// promiscuous mode is enabled (DSR's overhearing optimizations use this).
type PromiscuousFunc func(from int, f *Frame)

type airKind uint8

const (
	airData airKind = iota + 1
	airAck
	airRTS
	airCTS
)

// airFrame is what actually crosses the radio. Air frames are pooled per
// MAC and reference counted: the radio takes a reference per reception
// (and per fault-delayed delivery), so the frame body stays readable
// until the last receiver is done, then returns to its owner's pool.
type airFrame struct {
	kind    airKind
	src     int
	dst     int
	seq     uint32
	retried bool
	bits    int           // on-air size, kept for deferred transmission
	dur     time.Duration // RTS/CTS: remaining exchange duration (NAV)
	frame   *Frame
	owner   *MAC
	refs    int32
}

// Ref implements radio.Releasable.
func (af *airFrame) Ref() { af.refs++ }

// Unref implements radio.Releasable; the last reference releases the
// underlying frame and recycles the air frame.
func (af *airFrame) Unref() {
	af.refs--
	if af.refs != 0 {
		return
	}
	if af.frame != nil {
		af.frame.release()
		af.frame = nil
	}
	af.owner.airPool.Put(af)
}

var _ radio.Releasable = (*airFrame)(nil)

// Stats are per-interface MAC counters.
type Stats struct {
	Sent        uint64 // data frames put on the air (including retries)
	Acked       uint64 // unicast frames successfully acknowledged
	Broadcast   uint64 // broadcast frames sent
	Retries     uint64 // retransmission attempts
	Failures    uint64 // frames dropped after retry exhaustion
	QueueDrops  uint64 // frames dropped on enqueue (queue full)
	Delivered   uint64 // frames delivered up the stack
	DupSuppress uint64 // duplicate retransmissions suppressed at receiver
	RTSSent     uint64 // RTS handshakes begun
	CTSTimeouts uint64 // RTS attempts with no CTS answer
}

// MAC is one node's medium-access instance.
type MAC struct {
	id      int
	sim     *sim.Simulator
	medium  *radio.Medium
	cfg     Config
	rng     *rng.Source
	deliver DeliverFunc

	queue    []*Frame
	inFlight bool
	cw       int
	retries  int
	seq      uint32

	awaitAckSeq uint32
	awaitAck    bool
	ackTimer    sim.Timer

	awaitCTS bool
	ctsTimer sim.Timer
	navUntil time.Duration

	lastSeq map[int]uint32 // receiver-side dedup: last data seq per source
	promisc PromiscuousFunc

	airPool runpool.Pool[airFrame] // recycled air frames, run-local

	// Pre-bound timer callbacks so arming a timer allocates no method
	// value.
	ackTimeoutFn func()
	ctsTimeoutFn func()

	// down gates the interface for fault injection: a powered-off MAC
	// neither transmits nor decodes. epoch invalidates scheduled
	// continuations (backoff expiry, idle notification, broadcast
	// completion) across a Reset: each carries the epoch at scheduling
	// time and becomes a no-op if the interface was power-cycled since.
	down  bool
	epoch uint32

	stats Stats
}

// New creates and attaches a MAC for node id.
func New(id int, s *sim.Simulator, medium *radio.Medium, cfg Config, src *rng.Source, deliver DeliverFunc) *MAC {
	m := &MAC{
		id:      id,
		sim:     s,
		medium:  medium,
		cfg:     cfg,
		rng:     src,
		deliver: deliver,
		cw:      cfg.CWMin,
		lastSeq: make(map[int]uint32),
	}
	m.ackTimeoutFn = m.ackTimeout
	m.ctsTimeoutFn = m.ctsTimeout
	medium.Attach(id, m.onRadio)
	return m
}

// ID returns the MAC address of this interface.
func (m *MAC) ID() int { return m.id }

// Stats returns a copy of the interface counters.
func (m *MAC) Stats() Stats { return m.stats }

// SetPromiscuous installs a tap for frames addressed to other nodes.
// Pass nil to disable.
func (m *MAC) SetPromiscuous(fn PromiscuousFunc) { m.promisc = fn }

// QueueLen returns the number of frames waiting in the interface queue.
func (m *MAC) QueueLen() int { return len(m.queue) }

// ForEachQueued invokes fn for every frame currently in the interface
// queue, head first — including an in-flight head still awaiting its
// ACK. Callers (crash accounting, the conformance census) must not
// mutate the queue from fn.
func (m *MAC) ForEachQueued(fn func(*Frame)) {
	for _, f := range m.queue {
		fn(f)
	}
}

// DataPayload unwraps the network-layer payload from an on-air frame
// captured at the radio boundary (a delayed delivery held by the fault
// hook). It returns false for anything that is not a MAC data frame —
// ACKs, RTS/CTS, or foreign payload types.
func DataPayload(airPayload any) (any, bool) {
	af, ok := airPayload.(*airFrame)
	if !ok || af.kind != airData || af.frame == nil {
		return nil, false
	}
	return af.frame.Payload, true
}

// SetDown powers the interface off (true) or on (false). While down the
// MAC neither transmits nor decodes: Send drops frames silently and
// received signals are ignored. The radio still counts signal energy at
// this node, so channel occupancy stays consistent for its neighbors.
func (m *MAC) SetDown(down bool) { m.down = down }

// Down reports whether the interface is powered off.
func (m *MAC) Down() bool { return m.down }

// Reset models a power-cycle: the interface queue, any in-flight
// exchange, backoff state, NAV, and the receiver's duplicate-suppression
// memory are discarded, and every pending timer or scheduled continuation
// is disarmed. Dropped frames invoke no OnSent/OnFail/FrameSent/
// FrameFailed callbacks — the state that would have handled them died
// with the node — but their queue references are dropped so the frames
// still reach FrameReleased (marked Failed) once the radio is done with
// them.
func (m *MAC) Reset() {
	m.epoch++
	m.ackTimer.Cancel()
	m.ackTimer = sim.Timer{}
	m.ctsTimer.Cancel()
	m.ctsTimer = sim.Timer{}
	m.awaitAck = false
	m.awaitCTS = false
	for i, f := range m.queue {
		f.Failed = true
		f.release()
		m.queue[i] = nil
	}
	m.queue = m.queue[:0]
	m.inFlight = false
	m.retries = 0
	m.cw = m.cfg.CWMin
	m.navUntil = 0
	clear(m.lastSeq)
}

// Send enqueues a frame for transmission. If the interface queue is full
// the frame is dropped and its failure callback is invoked immediately. A
// powered-off interface drops frames without callbacks.
func (m *MAC) Send(f *Frame) {
	f.refs++ // the queue slot's reference (or the drop path's)
	if m.down {
		m.stats.QueueDrops++
		f.Failed = true
		f.release()
		return
	}
	if len(m.queue) >= m.cfg.QueueCap {
		m.stats.QueueDrops++
		f.Failed = true
		if f.Handler != nil {
			f.Handler.FrameFailed(f)
		} else if f.OnFail != nil {
			f.OnFail()
		}
		f.release()
		return
	}
	m.queue = append(m.queue, f)
	m.kick()
}

// kick starts the send state machine if it is idle and work is queued.
func (m *MAC) kick() {
	if m.inFlight || len(m.queue) == 0 {
		return
	}
	m.inFlight = true
	m.retries = 0
	m.cw = m.cfg.CWMin
	m.seq++
	m.attempt()
}

// Package-level continuation callbacks for sim.ScheduleTransient: the
// MAC pointer rides in arg and the power-cycle epoch in u, so scheduling
// a retry, backoff expiry, or broadcast completion allocates nothing.

// attemptTr resumes the carrier-sense cycle (NAV wait expiry).
func attemptTr(arg any, u uint64) {
	m := arg.(*MAC)
	if uint64(m.epoch) == u {
		m.attempt()
	}
}

// backoffTr fires at backoff expiry: transmit if the channel stayed
// clear, otherwise defer again.
func backoffTr(arg any, u uint64) {
	m := arg.(*MAC)
	if uint64(m.epoch) != u {
		return
	}
	if m.medium.Busy(m.id) || m.navUntil > m.sim.Now() {
		// Channel was captured during our backoff; defer again.
		m.attempt()
		return
	}
	m.transmitHead()
}

// bcastDoneTr completes a broadcast once its airtime has elapsed.
func bcastDoneTr(arg any, u uint64) {
	m := arg.(*MAC)
	if uint64(m.epoch) == u {
		m.completeHead(true)
	}
}

// txAirTr transmits a pooled air frame after an inter-frame space (ACK
// and CTS responses), then drops the scheduling reference.
func txAirTr(arg any, _ uint64) {
	af := arg.(*airFrame)
	m := af.owner
	if !m.down {
		m.medium.Transmit(m.id, af.bits, af)
	}
	af.Unref()
}

// ChannelIdle implements radio.IdleWaiter: the medium went idle at this
// node; resume the pending carrier-sense cycle if the interface has not
// been power-cycled since it registered.
func (m *MAC) ChannelIdle(u uint64) {
	if uint64(m.epoch) == u {
		m.attempt()
	}
}

// attempt performs one carrier-sense + backoff cycle for the head frame.
// Both physical carrier sense and the NAV (when RTS/CTS is enabled) must
// show the channel idle. Every continuation it schedules carries the
// current epoch, so a Reset between scheduling and firing disarms it.
func (m *MAC) attempt() {
	if m.down || !m.inFlight || len(m.queue) == 0 {
		return // interface reset or powered down since this retry was queued
	}
	ep := uint64(m.epoch)
	if m.medium.Busy(m.id) {
		m.medium.NotifyIdle(m.id, m, ep)
		return
	}
	if wait := m.navUntil - m.sim.Now(); wait > 0 {
		m.sim.ScheduleTransient(wait, attemptTr, m, ep)
		return
	}
	backoff := m.cfg.DIFS + time.Duration(m.rng.Intn(m.cw+1))*m.cfg.SlotTime
	m.sim.ScheduleTransient(backoff, backoffTr, m, ep)
}

func (m *MAC) transmitHead() {
	f := m.queue[0]
	if m.useRTS(f) {
		m.sendRTS(f)
		return
	}
	m.transmitData(f)
}

// useRTS reports whether the head frame warrants an RTS/CTS handshake.
func (m *MAC) useRTS(f *Frame) bool {
	return m.cfg.RTSCTSEnabled && f.To != BroadcastAddr && f.Bytes >= m.cfg.RTSThreshold
}

// newAir draws an air frame from the pool, owned by this MAC with one
// reference (the caller's).
func (m *MAC) newAir(kind airKind, dst int, seq uint32, bits int) *airFrame {
	af := m.airPool.Get()
	af.kind = kind
	af.src = m.id
	af.dst = dst
	af.seq = seq
	af.retried = false
	af.bits = bits
	af.dur = 0
	af.frame = nil
	af.owner = m
	af.refs = 1
	return af
}

// sendRTS begins the RTS/CTS handshake for the head frame.
func (m *MAC) sendRTS(f *Frame) {
	dataAir := m.medium.AirTime((f.Bytes + m.cfg.HeaderBytes) * 8)
	ctsAir := m.medium.AirTime(m.cfg.CTSBytes * 8)
	ackAir := m.medium.AirTime(m.cfg.AckBytes * 8)
	// Duration field: everything after the RTS itself.
	dur := m.cfg.SIFS + ctsAir + m.cfg.SIFS + dataAir + m.cfg.SIFS + ackAir
	rts := m.newAir(airRTS, f.To, m.seq, m.cfg.RTSBytes*8)
	rts.dur = dur
	rtsAir := m.medium.Transmit(m.id, rts.bits, rts)
	rts.Unref()
	m.stats.RTSSent++

	m.awaitCTS = true
	timeout := rtsAir + m.cfg.SIFS + ctsAir + 4*m.cfg.SlotTime
	m.ctsTimer = m.sim.Schedule(timeout, m.ctsTimeoutFn)
}

func (m *MAC) ctsTimeout() {
	if !m.awaitCTS {
		return
	}
	m.awaitCTS = false
	m.stats.CTSTimeouts++
	m.retryHead()
}

// retryHead backs off and retries the head frame, giving up past the
// retry limit. Shared by the CTS and ACK timeout paths.
func (m *MAC) retryHead() {
	m.retries++
	m.stats.Retries++
	if m.retries > m.cfg.RetryLimit {
		m.stats.Failures++
		m.completeHead(false)
		return
	}
	if m.cw < m.cfg.CWMax {
		m.cw = min(2*(m.cw+1)-1, m.cfg.CWMax)
	}
	m.attempt()
}

// transmitData puts the head frame's data on the air.
func (m *MAC) transmitData(f *Frame) {
	af := m.newAir(airData, f.To, m.seq, (f.Bytes+m.cfg.HeaderBytes)*8)
	af.retried = m.retries > 0
	af.frame = f
	f.refs++ // the air frame reads f until its last reception ends
	air := m.medium.Transmit(m.id, af.bits, af)
	af.Unref()
	m.stats.Sent++

	if f.To == BroadcastAddr {
		m.stats.Broadcast++
		m.sim.ScheduleTransient(air, bcastDoneTr, m, uint64(m.epoch))
		return
	}

	// Unicast: wait for the ACK.
	m.awaitAck = true
	m.awaitAckSeq = m.seq
	ackAir := m.medium.AirTime(m.cfg.AckBytes * 8)
	timeout := air + m.cfg.SIFS + ackAir + 4*m.cfg.SlotTime
	m.ackTimer = m.sim.Schedule(timeout, m.ackTimeoutFn)
}

func (m *MAC) ackTimeout() {
	if !m.awaitAck {
		return
	}
	m.awaitAck = false
	m.retryHead()
}

// completeHead finishes the head-of-line frame and moves to the next.
// The queue is shift-drained (copy down, shrink from the tail) rather
// than head-sliced so the backing array is reused forever: a steady
// stream of sends stays allocation-free instead of reallocating a
// one-slot array per frame.
func (m *MAC) completeHead(ok bool) {
	f := m.queue[0]
	n := copy(m.queue, m.queue[1:])
	m.queue[n] = nil
	m.queue = m.queue[:n]
	m.inFlight = false
	if ok {
		if f.Handler != nil {
			f.Handler.FrameSent(f)
		} else if f.OnSent != nil {
			f.OnSent()
		}
	} else {
		f.Failed = true
		if f.Handler != nil {
			f.Handler.FrameFailed(f)
		} else if f.OnFail != nil {
			f.OnFail()
		}
	}
	f.release()
	m.kick()
}

func (m *MAC) onRadio(from int, payload any) {
	if m.down {
		return
	}
	af, ok := payload.(*airFrame)
	if !ok {
		return
	}
	switch af.kind {
	case airRTS:
		if af.dst == m.id {
			// Answer with CTS after SIFS; the CTS re-advertises the
			// remaining duration for third parties.
			cts := m.newAir(airCTS, af.src, af.seq, m.cfg.CTSBytes*8)
			cts.dur = af.dur
			m.sim.ScheduleTransient(m.cfg.SIFS, txAirTr, cts, 0)
			return
		}
		m.setNAV(af.dur)
	case airCTS:
		if af.dst == m.id && m.awaitCTS {
			m.awaitCTS = false
			m.ctsTimer.Cancel()
			f := m.queue[0]
			ep := m.epoch
			m.sim.Schedule(m.cfg.SIFS, func() {
				if m.epoch == ep && m.inFlight && len(m.queue) > 0 && m.queue[0] == f {
					m.transmitData(f)
				}
			})
			return
		}
		m.setNAV(af.dur)
	case airAck:
		if af.dst == m.id && m.awaitAck && af.seq == m.awaitAckSeq {
			m.awaitAck = false
			m.ackTimer.Cancel()
			m.stats.Acked++
			m.completeHead(true)
		}
	case airData:
		if af.dst == m.id {
			m.sendAck(af)
			if af.retried && m.lastSeq[af.src] == af.seq {
				// The original got through but its ACK was lost; suppress
				// the duplicate delivery.
				m.stats.DupSuppress++
				return
			}
			m.lastSeq[af.src] = af.seq
			m.stats.Delivered++
			m.deliver(from, af.frame)
			return
		}
		if af.dst == BroadcastAddr {
			m.stats.Delivered++
			m.deliver(from, af.frame)
			return
		}
		if m.promisc != nil {
			m.promisc(from, af.frame)
		}
	}
}

// setNAV extends the network-allocation vector: the node treats the
// channel as virtually busy until the overheard exchange completes.
func (m *MAC) setNAV(dur time.Duration) {
	if until := m.sim.Now() + dur; until > m.navUntil {
		m.navUntil = until
	}
}

func (m *MAC) sendAck(af *airFrame) {
	ack := m.newAir(airAck, af.src, af.seq, m.cfg.AckBytes*8)
	m.sim.ScheduleTransient(m.cfg.SIFS, txAirTr, ack, 0)
}
