package mac_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/sim"
)

// rig wires n MACs over static positions and records deliveries.
type rig struct {
	s        *sim.Simulator
	medium   *radio.Medium
	macs     []*mac.MAC
	received map[int][]*mac.Frame
}

func newRig(pts []mobility.Point) *rig {
	s := sim.New()
	r := &rig{
		s:        s,
		medium:   radio.New(s, mobility.NewStatic(pts), radio.DefaultConfig()),
		received: make(map[int][]*mac.Frame),
	}
	root := rng.New(99)
	for i := range pts {
		i := i
		m := mac.New(i, s, r.medium, mac.DefaultConfig(), root.Split("mac"+string(rune('a'+i))),
			func(_ int, f *mac.Frame) {
				r.received[i] = append(r.received[i], f)
			})
		r.macs = append(r.macs, m)
	}
	return r
}

func TestBroadcastReachesAllNeighbors(t *testing.T) {
	r := newRig([]mobility.Point{{X: 0}, {X: 200}, {X: 250}, {X: 900}})
	sent := false
	r.s.Schedule(0, func() {
		r.macs[0].Send(&mac.Frame{
			To: mac.BroadcastAddr, Bytes: 100, Payload: "bc",
			OnSent: func() { sent = true },
		})
	})
	r.s.RunAll()

	if !sent {
		t.Fatal("OnSent never fired for broadcast")
	}
	for _, id := range []int{1, 2} {
		if len(r.received[id]) != 1 {
			t.Fatalf("node %d received %d frames, want 1", id, len(r.received[id]))
		}
	}
	if len(r.received[3]) != 0 {
		t.Fatal("out-of-range node received the broadcast")
	}
}

func TestUnicastAckedAndDelivered(t *testing.T) {
	r := newRig([]mobility.Point{{X: 0}, {X: 200}, {X: 250}})
	var acked bool
	r.s.Schedule(0, func() {
		r.macs[0].Send(&mac.Frame{
			To: 1, Bytes: 512, Payload: "uni",
			OnSent: func() { acked = true },
			OnFail: func() { t.Error("unexpected OnFail") },
		})
	})
	r.s.RunAll()

	if !acked {
		t.Fatal("unicast never acknowledged")
	}
	if len(r.received[1]) != 1 || r.received[1][0].Payload != "uni" {
		t.Fatalf("destination received %v", r.received[1])
	}
	if len(r.received[2]) != 0 {
		t.Fatal("unicast delivered to a non-addressee")
	}
	st := r.macs[0].Stats()
	if st.Acked != 1 || st.Failures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnicastToAbsentNodeFails(t *testing.T) {
	// Node 1 exists but is out of range: no ACK can ever come back.
	r := newRig([]mobility.Point{{X: 0}, {X: 5000}})
	failed := false
	r.s.Schedule(0, func() {
		r.macs[0].Send(&mac.Frame{
			To: 1, Bytes: 512, Payload: "lost",
			OnSent: func() { t.Error("unexpected OnSent") },
			OnFail: func() { failed = true },
		})
	})
	r.s.RunAll()

	if !failed {
		t.Fatal("OnFail never fired for unreachable destination")
	}
	st := r.macs[0].Stats()
	wantAttempts := uint64(mac.DefaultConfig().RetryLimit + 1)
	if st.Sent != wantAttempts {
		t.Fatalf("sent %d attempts, want %d (retry limit + 1)", st.Sent, wantAttempts)
	}
	if st.Failures != 1 {
		t.Fatalf("failures = %d, want 1", st.Failures)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	cfgQ := mac.DefaultConfig().QueueCap
	r := newRig([]mobility.Point{{X: 0}, {X: 5000}})
	drops := 0
	r.s.Schedule(0, func() {
		for i := 0; i < cfgQ+10; i++ {
			r.macs[0].Send(&mac.Frame{
				To: 1, Bytes: 100, Payload: i,
				OnFail: func() { drops++ },
			})
		}
	})
	r.s.Run(time.Second)
	if r.macs[0].Stats().QueueDrops != 10 {
		t.Fatalf("queue drops = %d, want 10", r.macs[0].Stats().QueueDrops)
	}
	if drops < 10 {
		t.Fatalf("OnFail fired %d times, want ≥ 10 immediate drops", drops)
	}
}

func TestFramesDeliveredInOrder(t *testing.T) {
	r := newRig([]mobility.Point{{X: 0}, {X: 200}})
	r.s.Schedule(0, func() {
		for i := 0; i < 20; i++ {
			r.macs[0].Send(&mac.Frame{To: 1, Bytes: 64, Payload: i})
		}
	})
	r.s.RunAll()

	if len(r.received[1]) != 20 {
		t.Fatalf("received %d frames, want 20", len(r.received[1]))
	}
	for i, f := range r.received[1] {
		if f.Payload != i {
			t.Fatalf("frame %d carried payload %v (reordered?)", i, f.Payload)
		}
	}
}

func TestContendingSendersAllSucceed(t *testing.T) {
	// Three nodes in mutual range all unicast to node 0 simultaneously;
	// CSMA/CA with backoff must eventually deliver all frames.
	r := newRig([]mobility.Point{{X: 0}, {X: 150}, {X: 200, Y: 100}, {X: 100, Y: 150}})
	r.s.Schedule(0, func() {
		for src := 1; src <= 3; src++ {
			for k := 0; k < 5; k++ {
				r.macs[src].Send(&mac.Frame{To: 0, Bytes: 512, Payload: src*100 + k})
			}
		}
	})
	r.s.RunAll()

	if len(r.received[0]) != 15 {
		t.Fatalf("delivered %d of 15 frames under contention", len(r.received[0]))
	}
}

func TestDuplicateSuppressionOnAckLoss(t *testing.T) {
	// A long run of unicast traffic across a lossy (hidden-terminal)
	// topology: receivers must never deliver the same frame twice.
	r := newRig([]mobility.Point{{X: 0}, {X: 400}, {X: 800}})
	r.s.Schedule(0, func() {
		for k := 0; k < 30; k++ {
			r.macs[0].Send(&mac.Frame{To: 1, Bytes: 512, Payload: k})
			r.macs[2].Send(&mac.Frame{To: 1, Bytes: 512, Payload: 1000 + k})
		}
	})
	r.s.RunAll()

	seen := make(map[any]int)
	for _, f := range r.received[1] {
		seen[f.Payload]++
		if seen[f.Payload] > 1 {
			t.Fatalf("payload %v delivered twice", f.Payload)
		}
	}
}
