package mac_test

import (
	"testing"

	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/sim"
)

// TestMACEnqueueDequeueZeroAllocsWhenWarm pins the steady-state cost of a
// full unicast cycle — enqueue, DIFS/backoff, transmission, ACK, release —
// at zero heap allocations once the run-local pools are warm. A regression
// here means a pooled object (event, air frame, payload) started escaping
// again.
func TestMACEnqueueDequeueZeroAllocsWhenWarm(t *testing.T) {
	s := sim.New()
	medium := radio.New(s, mobility.NewStatic([]mobility.Point{{X: 0}, {X: 200}}), radio.DefaultConfig())
	root := rng.New(7)
	deliver := func(int, *mac.Frame) {}
	sender := mac.New(0, s, medium, mac.DefaultConfig(), root.Split("a"), deliver)
	mac.New(1, s, medium, mac.DefaultConfig(), root.Split("b"), deliver)

	f := &mac.Frame{}
	cycle := func() {
		*f = mac.Frame{To: 1, Bytes: 256}
		sender.Send(f)
		s.RunAll()
	}
	for i := 0; i < 64; i++ {
		cycle() // warm the event and air-frame pools
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("warm MAC unicast cycle allocates %.1f per op, want 0", avg)
	}
}

// TestMACBroadcastAllocsWhenWarm does the same for the broadcast path
// (no ACK, fixed done-timer), which the protocols' flood traffic rides.
func TestMACBroadcastAllocsWhenWarm(t *testing.T) {
	s := sim.New()
	medium := radio.New(s, mobility.NewStatic([]mobility.Point{{X: 0}, {X: 200}}), radio.DefaultConfig())
	root := rng.New(9)
	deliver := func(int, *mac.Frame) {}
	sender := mac.New(0, s, medium, mac.DefaultConfig(), root.Split("a"), deliver)
	mac.New(1, s, medium, mac.DefaultConfig(), root.Split("b"), deliver)

	f := &mac.Frame{}
	cycle := func() {
		*f = mac.Frame{To: mac.BroadcastAddr, Bytes: 128}
		sender.Send(f)
		s.RunAll()
	}
	for i := 0; i < 64; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("warm MAC broadcast cycle allocates %.1f per op, want 0", avg)
	}
}

func BenchmarkMACUnicastCycle(b *testing.B) {
	s := sim.New()
	medium := radio.New(s, mobility.NewStatic([]mobility.Point{{X: 0}, {X: 200}}), radio.DefaultConfig())
	root := rng.New(7)
	deliver := func(int, *mac.Frame) {}
	sender := mac.New(0, s, medium, mac.DefaultConfig(), root.Split("a"), deliver)
	mac.New(1, s, medium, mac.DefaultConfig(), root.Split("b"), deliver)
	f := &mac.Frame{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		*f = mac.Frame{To: 1, Bytes: 256}
		sender.Send(f)
		s.RunAll()
	}
}
