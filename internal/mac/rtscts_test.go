package mac_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/sim"
)

// rtsRig wires MACs with RTS/CTS enabled.
type rtsRig struct {
	s        *sim.Simulator
	macs     []*mac.MAC
	received map[int]int
}

func newRTSRig(pts []mobility.Point, enabled bool) *rtsRig {
	return newRTSRigCS(pts, enabled, 550)
}

// newRTSRigCS allows shrinking the carrier-sense range; setting it equal
// to the decodable range creates true hidden terminals on a 250 m chain.
func newRTSRigCS(pts []mobility.Point, enabled bool, csRange float64) *rtsRig {
	s := sim.New()
	radioCfg := radio.DefaultConfig()
	radioCfg.CSRange = csRange
	medium := radio.New(s, mobility.NewStatic(pts), radioCfg)
	cfg := mac.DefaultConfig()
	cfg.RTSCTSEnabled = enabled
	r := &rtsRig{s: s, received: make(map[int]int)}
	root := rng.New(7)
	for i := range pts {
		i := i
		m := mac.New(i, s, medium, cfg, root.Split("m"+string(rune('a'+i))),
			func(_ int, _ *mac.Frame) { r.received[i]++ })
		r.macs = append(r.macs, m)
	}
	return r
}

func TestRTSCTSUnicastSucceeds(t *testing.T) {
	r := newRTSRig([]mobility.Point{{X: 0}, {X: 200}}, true)
	acked := false
	r.s.Schedule(0, func() {
		r.macs[0].Send(&mac.Frame{To: 1, Bytes: 512, Payload: "x", OnSent: func() { acked = true }})
	})
	r.s.RunAll()
	if !acked || r.received[1] != 1 {
		t.Fatalf("acked=%v received=%d", acked, r.received[1])
	}
	if r.macs[0].Stats().RTSSent == 0 {
		t.Fatal("no RTS was sent despite RTS/CTS being enabled")
	}
}

func TestRTSCTSSuppressesHiddenTerminals(t *testing.T) {
	// Hidden terminals: with the carrier-sense range shrunk to the
	// decodable range, nodes 0 and 2 (500 m apart) cannot sense each
	// other but both reach node 1. Both ends pump unicast traffic at
	// node 1. With basic access this collides heavily; with RTS/CTS the
	// far end hears node 1's CTS and sets its NAV.
	pts := []mobility.Point{{X: 0}, {X: 250}, {X: 500}}
	load := func(enabled bool) (delivered int, retries uint64) {
		r := newRTSRigCS(pts, enabled, 275)
		r.s.Schedule(0, func() {
			for k := 0; k < 40; k++ {
				r.macs[0].Send(&mac.Frame{To: 1, Bytes: 512, Payload: k})
				r.macs[2].Send(&mac.Frame{To: 1, Bytes: 512, Payload: 100 + k})
			}
		})
		r.s.RunAll()
		return r.received[1], r.macs[0].Stats().Retries + r.macs[2].Stats().Retries
	}

	basicDelivered, basicRetries := load(false)
	rtsDelivered, rtsRetries := load(true)

	if rtsDelivered < basicDelivered {
		t.Fatalf("RTS/CTS delivered fewer frames (%d) than basic access (%d)", rtsDelivered, basicDelivered)
	}
	if rtsRetries >= basicRetries {
		t.Fatalf("RTS/CTS did not cut retransmissions: %d vs %d", rtsRetries, basicRetries)
	}
}

func TestNAVDefersThirdParty(t *testing.T) {
	// Hidden third party: node 2 cannot sense node 0 (500 m, CS range
	// 275 m) but hears node 1's CTS, which must set node 2's NAV and
	// defer its transmission past the end of the 0→1 exchange.
	pts := []mobility.Point{{X: 0}, {X: 250}, {X: 500}}
	r := newRTSRigCS(pts, true, 275)
	var thirdPartyDone time.Duration
	r.s.Schedule(0, func() {
		r.macs[0].Send(&mac.Frame{To: 1, Bytes: 512, Payload: "big"})
	})
	// By 1.2 ms node 0's exchange is in its data phase (worst-case
	// backoff 670 µs + RTS + SIFS + CTS ≈ 1.0 ms) and ends no earlier
	// than 2.8 ms after it started.
	r.s.Schedule(1200*time.Microsecond, func() {
		r.macs[2].Send(&mac.Frame{To: 1, Bytes: 100, Payload: "later",
			OnSent: func() { thirdPartyDone = r.s.Now() }})
	})
	r.s.RunAll()

	if r.received[1] != 2 {
		t.Fatalf("delivered %d frames, want both", r.received[1])
	}
	if got := r.macs[2].Stats().Retries; got != 0 {
		t.Fatalf("third party needed %d retries; NAV should have prevented the collision", got)
	}
	if thirdPartyDone < 2500*time.Microsecond {
		t.Fatalf("third party finished at %v, inside the NAV window", thirdPartyDone)
	}
}

func TestBroadcastSkipsRTS(t *testing.T) {
	r := newRTSRig([]mobility.Point{{X: 0}, {X: 200}}, true)
	r.s.Schedule(0, func() {
		r.macs[0].Send(&mac.Frame{To: mac.BroadcastAddr, Bytes: 512, Payload: "bc"})
	})
	r.s.RunAll()
	if r.macs[0].Stats().RTSSent != 0 {
		t.Fatal("broadcast used RTS")
	}
	if r.received[1] != 1 {
		t.Fatal("broadcast not delivered")
	}
}

func TestRTSThresholdExemptsSmallFrames(t *testing.T) {
	s := sim.New()
	medium := radio.New(s, mobility.NewStatic([]mobility.Point{{X: 0}, {X: 200}}), radio.DefaultConfig())
	cfg := mac.DefaultConfig()
	cfg.RTSCTSEnabled = true
	cfg.RTSThreshold = 256
	root := rng.New(8)
	delivered := 0
	m0 := mac.New(0, s, medium, cfg, root.Split("a"), func(int, *mac.Frame) {})
	mac.New(1, s, medium, cfg, root.Split("b"), func(int, *mac.Frame) { delivered++ })

	s.Schedule(0, func() {
		m0.Send(&mac.Frame{To: 1, Bytes: 100, Payload: "small"}) // below threshold
		m0.Send(&mac.Frame{To: 1, Bytes: 512, Payload: "big"})   // above
	})
	s.RunAll()

	if delivered != 2 {
		t.Fatalf("delivered %d frames", delivered)
	}
	if got := m0.Stats().RTSSent; got != 1 {
		t.Fatalf("RTS count = %d, want 1 (only the big frame)", got)
	}
}
