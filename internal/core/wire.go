package core

import (
	"time"

	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/wire"
)

// Flag bits in encoded LDR messages.
const (
	flagHaveDstSeq = 1 << iota
	flagT
	flagN
	flagD
)

// Marshal encodes the RREQ to its wire format.
func (q RREQ) Marshal() []byte {
	var flags uint8
	if q.HaveDstSeq {
		flags |= flagHaveDstSeq
	}
	if q.T {
		flags |= flagT
	}
	if q.N {
		flags |= flagN
	}
	if q.D {
		flags |= flagD
	}
	return wire.NewEncoder(wire.TypeLDRRREQ).
		U8(flags).
		Node(int(q.Dst)).
		U64(uint64(q.DstSeq)).
		Node(int(q.Origin)).
		U64(uint64(q.OriginSeq)).
		U32(q.ReqID).
		U32(uint32(q.FD)).
		U32(uint32(q.AnsDist)).
		U32(uint32(q.Dist)).
		U8(uint8(clampTTL(q.TTL))).
		Bytes()
}

// UnmarshalRREQ decodes an LDR RREQ.
func UnmarshalRREQ(b []byte) (RREQ, error) {
	d, err := wire.NewDecoder(b, wire.TypeLDRRREQ)
	if err != nil {
		return RREQ{}, err
	}
	flags := d.U8()
	q := RREQ{
		Dst:        routing.NodeID(d.Node()),
		DstSeq:     Seqno(d.U64()),
		HaveDstSeq: flags&flagHaveDstSeq != 0,
		T:          flags&flagT != 0,
		N:          flags&flagN != 0,
		D:          flags&flagD != 0,
	}
	q.Origin = routing.NodeID(d.Node())
	q.OriginSeq = Seqno(d.U64())
	q.ReqID = d.U32()
	q.FD = int(d.U32())
	q.AnsDist = int(d.U32())
	q.Dist = int(d.U32())
	q.TTL = int(d.U8())
	return q, d.Err()
}

// Marshal encodes the RREP to its wire format.
func (p RREP) Marshal() []byte {
	var flags uint8
	if p.N {
		flags |= flagN
	}
	return wire.NewEncoder(wire.TypeLDRRREP).
		U8(flags).
		Node(int(p.Dst)).
		U64(uint64(p.DstSeq)).
		Node(int(p.Origin)).
		U32(p.ReqID).
		U32(uint32(p.Dist)).
		U32(uint32(p.Lifetime / time.Millisecond)).
		Bytes()
}

// UnmarshalRREP decodes an LDR RREP.
func UnmarshalRREP(b []byte) (RREP, error) {
	d, err := wire.NewDecoder(b, wire.TypeLDRRREP)
	if err != nil {
		return RREP{}, err
	}
	flags := d.U8()
	p := RREP{N: flags&flagN != 0}
	p.Dst = routing.NodeID(d.Node())
	p.DstSeq = Seqno(d.U64())
	p.Origin = routing.NodeID(d.Node())
	p.ReqID = d.U32()
	p.Dist = int(d.U32())
	p.Lifetime = time.Duration(d.U32()) * time.Millisecond
	return p, d.Err()
}

// Marshal encodes the RERR to its wire format.
func (e RERR) Marshal() []byte {
	enc := wire.NewEncoder(wire.TypeLDRRERR).U16(uint16(len(e.Unreachable)))
	for _, u := range e.Unreachable {
		enc.Node(int(u.Dst)).U64(uint64(u.Seq))
	}
	return enc.Bytes()
}

// UnmarshalRERR decodes an LDR RERR.
func UnmarshalRERR(b []byte) (RERR, error) {
	d, err := wire.NewDecoder(b, wire.TypeLDRRERR)
	if err != nil {
		return RERR{}, err
	}
	n := int(d.U16())
	e := RERR{}
	for i := 0; i < n; i++ {
		e.Unreachable = append(e.Unreachable, RERRDest{
			Dst: routing.NodeID(d.Node()),
			Seq: Seqno(d.U64()),
		})
	}
	return e, d.Err()
}

// clampTTL bounds a hop budget into the encodable byte range.
func clampTTL(ttl int) int {
	if ttl < 0 {
		return 0
	}
	if ttl > 255 {
		return 255
	}
	return ttl
}
