// Package core implements the Labeled Distance Routing (LDR) protocol —
// the primary contribution of the paper. LDR is an on-demand routing
// protocol that is loop-free at every instant. It combines two invariants:
//
//   - a feasible distance (fd) per destination — the smallest distance the
//     node has ever had to the destination for the current sequence number
//     (the DUAL-style distance label), and
//   - a destination sequence number that only the destination itself may
//     increment, used to reset feasible distances.
//
// Route updates are accepted under the Numbered Distance Condition (NDC),
// route requests propagate the Feasible Distance Condition (FDC) via the
// reset-required (T) bit, and replies are issued under the Start Distance
// Condition (SDC). See DESIGN.md for the mapping from the paper's
// procedures to this package.
package core

import "time"

// Seqno is an LDR sequence number: a destination-specific timestamp in the
// high 32 bits and a monotonically increasing counter in the low 32 bits
// (paper §3). The timestamp advances only when the counter wraps, so no
// clock synchronization between nodes is required and reboot-hold delays
// (as in AODV) are unnecessary. The packed representation makes ordinary
// integer comparison the total order.
type Seqno uint64

// NewSeqno builds a sequence number from a timestamp and counter.
func NewSeqno(ts uint32, ctr uint32) Seqno {
	return Seqno(uint64(ts)<<32 | uint64(ctr))
}

// Timestamp returns the timestamp half of the sequence number.
func (s Seqno) Timestamp() uint32 { return uint32(s >> 32) }

// Counter returns the counter half of the sequence number.
func (s Seqno) Counter() uint32 { return uint32(s) }

// Next returns the incremented sequence number. When the counter wraps,
// the timestamp is replaced by `now` (virtual seconds) and the counter
// resets — the owning destination calls this, nobody else (the central
// design difference from AODV, where third parties increment a
// destination's number).
func (s Seqno) Next(now time.Duration) Seqno {
	if s.Counter() == ^uint32(0) {
		ts := uint32(now / time.Second)
		if ts <= s.Timestamp() {
			ts = s.Timestamp() + 1
		}
		return NewSeqno(ts, 0)
	}
	return s + 1
}
