package core_test

import (
	"fmt"
	"time"

	"github.com/manetlab/ldr/internal/core"
	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/routing"
)

// Example demonstrates the minimal LDR setup: a three-hop chain, one
// route discovery, end-to-end delivery.
func Example() {
	model := mobility.Line(4, 250) // 250 m spacing, 275 m radio range
	nw := routing.NewNetwork(4, model, radio.DefaultConfig(), mac.DefaultConfig(), 1,
		func(n *routing.Node) routing.Protocol {
			return core.New(n, core.DefaultConfig())
		})
	nw.Start()

	for i := 0; i < 10; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		nw.Sim.At(at, func() { nw.Nodes[0].OriginateData(3, 512) })
	}
	nw.Sim.Run(2 * time.Second)

	c := nw.Collector
	fmt.Printf("delivered %d/%d\n", c.DataDelivered, c.DataInitiated)

	ldr := nw.Nodes[0].Protocol().(*core.LDR)
	_, dist, ok := ldr.RouteTo(3)
	fmt.Printf("route known: %v, %d hops\n", ok, dist)
	// Output:
	// delivered 10/10
	// route known: true, 3 hops
}
