package core_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/core"
	"github.com/manetlab/ldr/internal/loopcheck"
	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/rng"
)

// diamondTracks builds a diamond topology: origin 0 reaches destination 3
// via relay 1 (primary chain 0-1-3) or relay 2 (0-2-3). Relay 1 departs
// at t=6 s.
func diamondTracks() [][]mobility.ScriptLeg {
	return [][]mobility.ScriptLeg{
		{{At: 0, Pos: mobility.Point{X: 0, Y: 0}}}, // 0 origin
		{ // 1 primary relay — leaves
			{At: 0, Pos: mobility.Point{X: 250, Y: 60}},
			{At: 6 * time.Second, Pos: mobility.Point{X: 250, Y: 60}},
			{At: 8 * time.Second, Pos: mobility.Point{X: 250, Y: 3000}},
		},
		{{At: 0, Pos: mobility.Point{X: 250, Y: -60}}}, // 2 alternate relay
		{{At: 0, Pos: mobility.Point{X: 500, Y: 0}}},   // 3 destination
	}
}

func TestMultipathRecordsAlternateSuccessors(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Multipath = true
	nw := buildNet(mobility.NewScript(diamondTracks()), 4, cfg)
	nw.Start()
	keepTraffic(nw, 0, 3, time.Second, 5*time.Second, 200*time.Millisecond)

	var alts []int
	nw.Sim.At(4*time.Second, func() {
		for _, a := range ldrAt(nw, 0).AltSuccessors(3) {
			alts = append(alts, int(a))
		}
	})
	nw.Sim.Run(5 * time.Second)

	if len(alts) == 0 {
		t.Fatal("no alternate successor recorded despite two equal-length paths")
	}
}

func TestMultipathFailsOverWithoutRediscovery(t *testing.T) {
	run := func(multipath bool) (rreqs uint64, delivery float64) {
		cfg := core.DefaultConfig()
		cfg.Multipath = multipath
		nw := buildNet(mobility.NewScript(diamondTracks()), 4, cfg)
		nw.Start()
		keepTraffic(nw, 0, 3, time.Second, 20*time.Second, 200*time.Millisecond)
		// A second flow through the alternate relay keeps its route warm,
		// the regime where instant failover pays off.
		keepTraffic(nw, 2, 3, time.Second, 20*time.Second, 200*time.Millisecond)
		nw.Sim.Run(22 * time.Second)
		return nw.Collector.ControlInitiated(metrics.RREQ), nw.Collector.DeliveryRatio()
	}

	singleRREQs, singleDelivery := run(false)
	multiRREQs, multiDelivery := run(true)

	if multiRREQs >= singleRREQs {
		t.Fatalf("multipath did not reduce rediscoveries: %d vs %d RREQs", multiRREQs, singleRREQs)
	}
	if multiDelivery < singleDelivery {
		t.Fatalf("multipath hurt delivery: %.3f vs %.3f", multiDelivery, singleDelivery)
	}
}

func TestMultipathPreservesLoopFreedom(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Multipath = true
	model := mobility.NewWaypoint(20, mobility.WaypointConfig{
		Terrain:  mobility.Terrain{Width: 1200, Height: 300},
		MinSpeed: 1, MaxSpeed: 20, Pause: 0,
	}, rng.New(21))
	nw := buildNet(model, 21, cfg)
	nw.Start()
	for f := 0; f < 6; f++ {
		keepTraffic(nw, f, 19-f, time.Second, 60*time.Second, 250*time.Millisecond)
	}

	var violations int
	for tick := time.Second; tick < 60*time.Second; tick += 500 * time.Millisecond {
		nw.Sim.At(tick, func() {
			if vs := loopcheck.Check(nw.Nodes); len(vs) > 0 {
				violations += len(vs)
				for _, v := range vs {
					t.Error(v)
				}
			}
		})
	}
	nw.Sim.Run(60 * time.Second)
	if violations > 0 {
		t.Fatalf("%d invariant violations under multipath failover", violations)
	}
}
