package core

import (
	"time"

	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/routing"
)

// RREQ is an LDR route request: simultaneously a solicitation for a route
// to Dst and an advertisement of a route back to Origin (paper §2, Table 1
// notation). Handlers work on their own value copy; the wire carries
// pooled pointers that the sending node recycles after transmission.
type RREQ struct {
	Dst        routing.NodeID
	DstSeq     Seqno // sn#: requested sequence number for Dst
	HaveDstSeq bool  // false when the origin has no state for Dst
	Origin     routing.NodeID
	OriginSeq  Seqno // origin's own sequence number (reverse advertisement)
	ReqID      uint32

	FD      int // fd#: running minimum feasible distance along the path
	AnsDist int // answering distance used for SDC (reduced-distance opt.)
	Dist    int // distance of the traversed path (reverse advertisement)
	TTL     int

	T bool // reset required: FDC violated somewhere along the path
	N bool // no reverse path: some relay could not install a route to Origin
	D bool // unicast leg: the RREQ is being forwarded to Dst for a reset
}

// Kind implements routing.Message.
func (RREQ) Kind() metrics.ControlKind { return metrics.RREQ }

// Size implements routing.Message: the length of the real encoding
// (fixed AODV-style fields plus the labeled-distance extension), computed
// arithmetically so the hot send path does not marshal; wire tests pin it
// to len(Marshal()).
func (RREQ) Size() int { return rreqWireSize }

// RREP is an LDR route reply: an advertisement of a route to Dst,
// forwarded hop-by-hop along the reverse path recorded by the RREQ flood.
type RREP struct {
	Dst      routing.NodeID
	DstSeq   Seqno
	Origin   routing.NodeID // terminus: the node whose solicitation this answers
	ReqID    uint32
	Dist     int
	Lifetime time.Duration
	N        bool // copied from the RREQ: reverse path incomplete
}

// Kind implements routing.Message.
func (RREP) Kind() metrics.ControlKind { return metrics.RREP }

// Size implements routing.Message.
func (RREP) Size() int { return rrepWireSize }

// RERRDest names one unreachable destination inside a RERR.
type RERRDest struct {
	Dst routing.NodeID
	Seq Seqno // the invalidated entry's sequence number
}

// RERR reports broken routes to upstream neighbors. Unlike AODV, LDR does
// not increment the destinations' sequence numbers here — sequence numbers
// belong to their destinations; the feasible distances already prevent
// loops through the stale upstream state.
type RERR struct {
	Unreachable []RERRDest
}

// Kind implements routing.Message.
func (RERR) Kind() metrics.ControlKind { return metrics.RERR }

// Size implements routing.Message.
func (e RERR) Size() int { return rerrWireBase + rerrWirePerDest*len(e.Unreachable) }

// Wire sizes of the fixed-layout encodings (type byte included); pinned
// against Marshal by the wire round-trip tests.
const (
	rreqWireSize    = 1 + 1 + 4 + 8 + 4 + 8 + 4 + 4 + 4 + 4 + 1
	rrepWireSize    = 1 + 1 + 4 + 8 + 4 + 4 + 4 + 4
	rerrWireBase    = 1 + 2
	rerrWirePerDest = 4 + 8
)
