package core_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/core"
	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/routing"
)

// TestRelayWithoutRouteDropsAndReportsError: a relay handed a data packet
// for a destination it has no active route to must drop it and broadcast
// a RERR (LDR relays do not repair on behalf of origins).
func TestRelayWithoutRouteDropsAndReportsError(t *testing.T) {
	nw := buildNet(mobility.Line(3, 250), 6, core.DefaultConfig())
	nw.Start()

	relay := ldrAt(nw, 1)
	dropsBefore := nw.Collector.DataDropped
	rerrBefore := nw.Collector.ControlInitiated(metrics.RERR)

	nw.Sim.Schedule(0, func() {
		// Hand node 1 a packet from node 0 toward node 2 with no route
		// primed anywhere.
		relay.HandleData(0, &routing.DataPacket{
			Src: 0, Dst: 2, ID: 1, Bytes: 64, TTL: 8,
		})
	})
	nw.Sim.Run(time.Second)

	if nw.Collector.DataDropped != dropsBefore+1 {
		t.Fatalf("drops = %d, want exactly one", nw.Collector.DataDropped-dropsBefore)
	}
	if nw.Collector.ControlInitiated(metrics.RERR) != rerrBefore+1 {
		t.Fatal("relay did not report the missing route")
	}
	if rreqs := nw.Collector.ControlInitiated(metrics.RREQ); rreqs != 0 {
		t.Fatalf("relay initiated %d discoveries; only origins rediscover", rreqs)
	}
}

// TestTTLExpiryDropsPacket: a packet arriving with TTL 1 at a relay dies
// there instead of being forwarded.
func TestTTLExpiryDropsPacket(t *testing.T) {
	nw := buildNet(mobility.Line(3, 250), 6, core.DefaultConfig())
	nw.Start()
	// Prime the route so the relay would otherwise forward.
	nw.Sim.Schedule(0, func() { nw.Nodes[0].OriginateData(2, 64) })
	nw.Sim.Run(time.Second)

	sent := nw.Collector.DataTransmitted
	nw.Sim.Schedule(0, func() {
		ldrAt(nw, 1).HandleData(0, &routing.DataPacket{
			Src: 0, Dst: 2, ID: 99, Bytes: 64, TTL: 1,
		})
	})
	nw.Sim.Run(1500 * time.Millisecond)

	if nw.Collector.DataTransmitted != sent {
		t.Fatal("TTL-1 packet was forwarded")
	}
}

// TestDataRefreshesRouteLifetime: forwarding data keeps the route alive
// past its idle timeout.
func TestDataRefreshesRouteLifetime(t *testing.T) {
	nw := buildNet(mobility.Line(3, 250), 6, core.DefaultConfig())
	nw.Start()
	// Send a packet every 2 s (inside the 3 s lifetime) for 12 s; the
	// route must never need a second discovery.
	for ts := time.Duration(0); ts < 12*time.Second; ts += 2 * time.Second {
		nw.Sim.At(ts, func() { nw.Nodes[0].OriginateData(2, 64) })
	}
	nw.Sim.Run(14 * time.Second)

	if rreqs := nw.Collector.ControlInitiated(metrics.RREQ); rreqs != 1 {
		t.Fatalf("route refreshed by use still rediscovered: %d RREQs", rreqs)
	}
	if nw.Collector.DataDelivered != 6 {
		t.Fatalf("delivered %d of 6", nw.Collector.DataDelivered)
	}
}
