package core

import (
	"time"

	"github.com/manetlab/ldr/internal/routing"
)

// Multipath support: the labeled-distance invariant admits more than one
// loop-free successor per destination. Any neighbor whose advertised
// distance is strictly below the node's feasible distance satisfies NDC,
// so it can serve as an instant fallback when the primary successor's
// link breaks — no rediscovery, no coordination, and loop-freedom is
// preserved by exactly the same argument as for the primary (this is the
// direction explored by the authors' follow-up work on labeled-distance
// multipath routing).
//
// Alternates are recorded opportunistically from advertisements that pass
// NDC but lose the primary-selection stability rule, and are promoted on
// link failure if their label still beats the entry's feasible distance.

// altSuccessor is a recorded fallback next hop.
type altSuccessor struct {
	next    routing.NodeID
	advDist int           // the distance the neighbor advertised
	heard   time.Duration // when the advertisement was heard
}

// rememberAlt records via as an alternate successor for e if its
// advertisement is loop-free (advDist < fd) at the entry's current
// sequence number. The best maxAlts alternates by advertised distance are
// retained.
func (e *entry) rememberAlt(via routing.NodeID, advSeq Seqno, advDist int, now time.Duration, maxAlts int) {
	if maxAlts <= 0 || via == e.next {
		return
	}
	if advSeq != e.seq || advDist >= e.fd {
		return
	}
	for i := range e.alts {
		if e.alts[i].next == via {
			e.alts[i].advDist = advDist
			e.alts[i].heard = now
			return
		}
	}
	a := altSuccessor{next: via, advDist: advDist, heard: now}
	if len(e.alts) < maxAlts {
		e.alts = append(e.alts, a)
		return
	}
	// Replace the worst recorded alternate if this one is better.
	worst := 0
	for i := range e.alts {
		if e.alts[i].advDist > e.alts[worst].advDist {
			worst = i
		}
	}
	if advDist < e.alts[worst].advDist {
		e.alts[worst] = a
	}
}

// dropAlt forgets an alternate (its link broke or it reported an error).
func (e *entry) dropAlt(via routing.NodeID) {
	for i := range e.alts {
		if e.alts[i].next == via {
			e.alts = append(e.alts[:i], e.alts[i+1:]...)
			return
		}
	}
}

// promoteAlt switches the entry to its best still-feasible alternate,
// returning false if none qualifies. Promotion re-applies NDC against the
// entry's own feasible distance, so the ordering criterion survives: the
// new successor's advertised distance is below fd, exactly as if the
// advertisement had just been accepted.
func (e *entry) promoteAlt(now, lifetime, maxAge time.Duration) bool {
	best := -1
	for i, a := range e.alts {
		if now-a.heard > maxAge || a.advDist >= e.fd {
			continue
		}
		if best < 0 || a.advDist < e.alts[best].advDist {
			best = i
		}
	}
	if best < 0 {
		return false
	}
	a := e.alts[best]
	e.alts = append(e.alts[:best], e.alts[best+1:]...)
	e.next = a.next
	d := a.advDist + 1
	e.dist = d
	if d < e.fd {
		e.fd = d
	}
	e.valid = true
	e.expiry = now + lifetime
	return true
}

// AltSuccessors exposes the current alternates for dst (tests, examples).
func (l *LDR) AltSuccessors(dst routing.NodeID) []routing.NodeID {
	e := l.routes.get(dst)
	if e == nil {
		return nil
	}
	out := make([]routing.NodeID, 0, len(e.alts))
	for _, a := range e.alts {
		out = append(out, a.next)
	}
	return out
}
