package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

const lifetime = 3 * time.Second

func TestNDCNilEntryAcceptsAnything(t *testing.T) {
	var e *entry
	if !e.ndc(NewSeqno(1, 0), 100) {
		t.Fatal("no-information case must accept")
	}
}

func TestNDCConditions(t *testing.T) {
	e := &entry{seq: NewSeqno(1, 5), dist: 4, fd: 3}
	tests := []struct {
		name string
		seq  Seqno
		dist int
		want bool
	}{
		{"newer seq always accepted", NewSeqno(1, 6), 99, true},
		{"equal seq, dist below fd", NewSeqno(1, 5), 2, true},
		{"equal seq, dist equals fd", NewSeqno(1, 5), 3, false},
		{"equal seq, dist above fd", NewSeqno(1, 5), 7, false},
		{"older seq rejected", NewSeqno(1, 4), 0, false},
	}
	for _, tt := range tests {
		if got := e.ndc(tt.seq, tt.dist); got != tt.want {
			t.Fatalf("%s: ndc = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestUpdateResetsFDOnNewSeq(t *testing.T) {
	e := &entry{seq: NewSeqno(1, 1), dist: 2, fd: 2}
	e.update(NewSeqno(1, 2), 9, 7, 1, 0, lifetime)
	if e.fd != 10 || e.dist != 10 {
		t.Fatalf("after seq reset: dist=%d fd=%d, want both 10", e.dist, e.fd)
	}
	if e.seq != NewSeqno(1, 2) || e.next != 7 || !e.valid {
		t.Fatalf("entry fields wrong: %+v", e)
	}
}

func TestUpdateKeepsFDMinimumAtSameSeq(t *testing.T) {
	e := &entry{seq: NewSeqno(1, 1), dist: 5, fd: 5}
	// Accept a shorter route: fd tightens.
	e.update(NewSeqno(1, 1), 2, 3, 1, 0, lifetime)
	if e.fd != 3 || e.dist != 3 {
		t.Fatalf("dist=%d fd=%d, want 3/3", e.dist, e.fd)
	}
	// Accept a route whose distance grew back (still NDC-feasible at the
	// caller): fd must NOT rise.
	e.update(NewSeqno(1, 1), 2, 9, 1, 0, lifetime)
	if e.fd != 3 {
		t.Fatalf("fd rose to %d after distance fluctuation", e.fd)
	}
	if e.dist != 3 {
		t.Fatalf("dist=%d", e.dist)
	}
}

func TestActiveRespectsValidityAndExpiry(t *testing.T) {
	e := &entry{valid: true, expiry: 10 * time.Second}
	if !e.active(9 * time.Second) {
		t.Fatal("entry inactive before expiry")
	}
	if e.active(10 * time.Second) {
		t.Fatal("entry active at expiry instant")
	}
	e.invalidate()
	if e.active(0) {
		t.Fatal("invalidated entry still active")
	}
	var nilEntry *entry
	if nilEntry.active(0) {
		t.Fatal("nil entry active")
	}
}

func TestRefreshOnlyExtends(t *testing.T) {
	e := &entry{valid: true, expiry: 10 * time.Second}
	e.refresh(5*time.Second, 3*time.Second) // 8s < 10s: no shrink
	if e.expiry != 10*time.Second {
		t.Fatalf("refresh shrank expiry to %v", e.expiry)
	}
	e.refresh(9*time.Second, 3*time.Second)
	if e.expiry != 12*time.Second {
		t.Fatalf("refresh did not extend: %v", e.expiry)
	}
}

// Property (Procedure 3 guarantee): under any sequence of NDC-accepted
// advertisements, (1) fd ≤ dist at all times, and (2) fd is non-increasing
// while the sequence number is unchanged.
func TestFDInvariantUnderRandomAdvertisements(t *testing.T) {
	type adv struct {
		SeqBump bool  // increment the advertised sequence number
		Dist    uint8 // advertised distance
		Via     uint8
	}
	f := func(advs []adv) bool {
		e := newEntry(NewSeqno(1, 0), 3, 1, 1, 0, lifetime)
		seq := NewSeqno(1, 0)
		for _, a := range advs {
			if a.SeqBump {
				seq = seq.Next(0)
			}
			d := int(a.Dist)
			if !e.ndc(seq, d) {
				continue // NDC rejects; entry untouched
			}
			prevSeq, prevFD := e.seq, e.fd
			e.update(seq, d, 5, 1, 0, lifetime)
			if e.fd > e.dist {
				return false // invariant 1 broken
			}
			if e.seq == prevSeq && e.fd > prevFD {
				return false // invariant 2 broken
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: any advertisement accepted under NDC with an equal sequence
// number strictly lowers or preserves fd — it can never raise it.
func TestNDCAcceptanceNeverRaisesFD(t *testing.T) {
	f := func(fd0, d uint8) bool {
		fd := int(fd0) + 1
		e := &entry{seq: NewSeqno(1, 1), dist: fd, fd: fd}
		if !e.ndc(NewSeqno(1, 1), int(d)) {
			return true
		}
		e.update(NewSeqno(1, 1), int(d), 2, 1, 0, lifetime)
		return e.fd <= fd
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
