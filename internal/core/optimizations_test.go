package core_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/core"
	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/routing"
)

// primeRoute drives one discovery 0→(n-1) on a chain and returns at 500ms.
func primeRoute(nw *routing.Network, dst int) {
	nw.Sim.Schedule(0, func() { nw.Nodes[0].OriginateData(routing.NodeID(dst), 64) })
	nw.Sim.Run(500 * time.Millisecond)
}

// TestRequestAsErrorInvalidatesRoute: node A (here node 0) holds a route
// to D via successor B; a solicitation for D arriving *from B itself*
// proves B lost its route, so A must invalidate (the paper's
// "request as error" optimization).
func TestRequestAsErrorInvalidatesRoute(t *testing.T) {
	for _, enabled := range []bool{true, false} {
		cfg := core.DefaultConfig()
		cfg.RequestAsError = enabled
		nw := buildNet(mobility.Line(3, 250), 2, cfg)
		nw.Start()
		primeRoute(nw, 2) // 0 → 1 → 2

		p := ldrAt(nw, 0)
		if _, _, ok := p.RouteTo(2); !ok {
			t.Fatal("setup: node 0 has no route to 2")
		}
		// Craft node 1's solicitation for destination 2 as node 0 hears it.
		nw.Sim.Schedule(0, func() {
			p.HandleControl(1, core.RREQ{
				Dst:        2,
				HaveDstSeq: false,
				Origin:     1,
				OriginSeq:  core.NewSeqno(1, 0),
				ReqID:      99,
				FD:         core.Infinity,
				AnsDist:    core.Infinity,
				TTL:        3,
			})
		})
		nw.Sim.Run(600 * time.Millisecond)

		_, _, ok := p.RouteTo(2)
		if enabled && ok {
			t.Fatal("request-as-error enabled but the route via the soliciting successor survived")
		}
		if !enabled && !ok {
			t.Fatal("request-as-error disabled but the route was invalidated anyway")
		}
	}
}

// TestMultipleRREPsRelayOnlyStronger: a relay forwards a second RREP for
// the same computation only when it carries strictly stronger invariants.
func TestMultipleRREPsRelayOnlyStronger(t *testing.T) {
	// Node 1 is the relay between origin 0 and the rest of the chain.
	cfg := core.DefaultConfig()
	nw := buildNet(mobility.Line(3, 250), 4, cfg)
	nw.Start()
	primeRoute(nw, 2)

	relay := ldrAt(nw, 1)
	countRREPs := func() uint64 { return nw.Collector.ControlTransmitted(metrics.RREP) }

	// Re-solicit so node 1 is engaged in a fresh computation from node 0.
	var before uint64
	nw.Sim.At(4*time.Second, func() { nw.Nodes[0].OriginateData(2, 64) })
	nw.Sim.Run(5 * time.Second)
	before = countRREPs()

	// The discovery used (origin 0, some reqid); find it by replaying the
	// destination's reply twice: once equal (suppressed), once stronger.
	// We synthesize RREPs directly at the relay; its cache still holds the
	// engagement within RREQCacheLife.
	reqID := latestReqID(relay)
	if reqID == 0 {
		t.Skip("no engaged computation found to replay against")
	}
	nw.Sim.Schedule(0, func() {
		equal := core.RREP{Dst: 2, DstSeq: currentSeq(relay, 2), Origin: 0, ReqID: reqID, Dist: 1, Lifetime: time.Second}
		relay.HandleControl(2, equal) // same invariants as already relayed
	})
	nw.Sim.Run(5100 * time.Millisecond)
	afterEqual := countRREPs()

	nw.Sim.Schedule(0, func() {
		stronger := core.RREP{Dst: 2, DstSeq: currentSeq(relay, 2) + 1, Origin: 0, ReqID: reqID, Dist: 0, Lifetime: time.Second}
		relay.HandleControl(2, stronger)
	})
	nw.Sim.Run(5200 * time.Millisecond)
	afterStronger := countRREPs()

	if afterEqual != before {
		t.Fatalf("equal-invariant duplicate RREP was relayed (%d -> %d)", before, afterEqual)
	}
	if afterStronger == afterEqual {
		t.Fatal("stronger RREP was not relayed")
	}
}

// latestReqID digs the most recent engagement's request id out of the
// relay via its observable behaviour: we track it through SnapshotTable's
// side door by replaying ids until one relays. Simpler: the protocol
// assigns reqIDs sequentially per origin starting at 1; after two
// discoveries from node 0 the live computation is id 2.
func latestReqID(*core.LDR) uint32 { return 2 }

func currentSeq(l *core.LDR, dst routing.NodeID) core.Seqno {
	for _, e := range l.SnapshotTable() {
		if e.Dst == dst {
			return core.Seqno(e.SeqNo)
		}
	}
	return core.NewSeqno(1, 0)
}
