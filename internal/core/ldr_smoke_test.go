package core_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/core"
	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/routing"
)

// lineNetwork builds an n-node chain where only adjacent nodes are in
// range, running LDR everywhere.
func lineNetwork(t *testing.T, n int, seed int64) *routing.Network {
	t.Helper()
	model := mobility.Line(n, 250) // range is 275 m; 250 m spacing → chain
	return routing.NewNetwork(n, model, radio.DefaultConfig(), mac.DefaultConfig(), seed,
		func(node *routing.Node) routing.Protocol {
			return core.New(node, core.DefaultConfig())
		})
}

func TestLDRDeliversAlongChain(t *testing.T) {
	nw := lineNetwork(t, 5, 1)
	nw.Start()
	// Send 20 packets from node 0 to node 4 (4 hops).
	for i := 0; i < 20; i++ {
		i := i
		nw.Sim.At(time.Duration(i)*100*time.Millisecond, func() {
			nw.Nodes[0].OriginateData(4, 512)
		})
	}
	nw.Sim.Run(10 * time.Second)

	c := nw.Collector
	if c.DataInitiated != 20 {
		t.Fatalf("initiated = %d, want 20", c.DataInitiated)
	}
	if c.DataDelivered < 19 {
		t.Fatalf("delivered = %d of %d, want ≥ 19", c.DataDelivered, c.DataInitiated)
	}
	if c.ControlInitiated(1 /* RREQ */) == 0 {
		t.Fatal("no RREQ was initiated")
	}
	if got := c.MeanLatency(); got <= 0 || got > time.Second {
		t.Fatalf("mean latency = %v, want within (0, 1s]", got)
	}
}

func TestLDRInstallsShortestRoute(t *testing.T) {
	nw := lineNetwork(t, 5, 2)
	nw.Start()
	nw.Sim.Schedule(0, func() { nw.Nodes[0].OriginateData(4, 512) })

	// Inspect the table while the route is still within its lifetime.
	var (
		next routing.NodeID
		dist int
		ok   bool
	)
	nw.Sim.At(time.Second, func() {
		ldr := nw.Nodes[0].Protocol().(*core.LDR)
		next, dist, ok = ldr.RouteTo(4)
	})
	nw.Sim.Run(5 * time.Second)

	if !ok {
		t.Fatal("node 0 has no route to node 4")
	}
	if next != 1 || dist != 4 {
		t.Fatalf("route = via %d dist %d, want via 1 dist 4", next, dist)
	}
}
