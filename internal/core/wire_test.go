package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/manetlab/ldr/internal/routing"
)

func TestRREQRoundTrip(t *testing.T) {
	f := func(dst, origin int32, dstSeq, originSeq uint64, reqID uint32,
		fd, ans, dist uint16, ttl uint8, have, tb, nb, db bool) bool {
		q := RREQ{
			Dst: routing.NodeID(dst), DstSeq: Seqno(dstSeq), HaveDstSeq: have,
			Origin: routing.NodeID(origin), OriginSeq: Seqno(originSeq),
			ReqID: reqID, FD: int(fd), AnsDist: int(ans), Dist: int(dist),
			TTL: int(ttl), T: tb, N: nb, D: db,
		}
		got, err := UnmarshalRREQ(q.Marshal())
		return err == nil && reflect.DeepEqual(got, q)
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRREQInfinityDistancesSurvive(t *testing.T) {
	q := RREQ{Dst: 1, Origin: 2, FD: Infinity, AnsDist: Infinity, Dist: 3, TTL: 35}
	got, err := UnmarshalRREQ(q.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.FD != Infinity || got.AnsDist != Infinity {
		t.Fatalf("Infinity mangled: fd=%d ans=%d", got.FD, got.AnsDist)
	}
}

func TestRREPRoundTrip(t *testing.T) {
	f := func(dst, origin int32, seq uint64, reqID uint32, dist uint16, lifeMs uint16, nb bool) bool {
		p := RREP{
			Dst: routing.NodeID(dst), DstSeq: Seqno(seq),
			Origin: routing.NodeID(origin), ReqID: reqID, Dist: int(dist),
			Lifetime: time.Duration(lifeMs) * time.Millisecond, N: nb,
		}
		got, err := UnmarshalRREP(p.Marshal())
		return err == nil && reflect.DeepEqual(got, p)
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRERRRoundTrip(t *testing.T) {
	e := RERR{Unreachable: []RERRDest{
		{Dst: 3, Seq: NewSeqno(1, 9)},
		{Dst: 44, Seq: NewSeqno(2, 0)},
	}}
	got, err := UnmarshalRERR(e.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("round trip: %+v != %+v", got, e)
	}
	// Empty RERR also survives.
	empty, err := UnmarshalRERR(RERR{}.Marshal())
	if err != nil || len(empty.Unreachable) != 0 {
		t.Fatalf("empty RERR: %+v, %v", empty, err)
	}
}

func TestSizesMatchEncodings(t *testing.T) {
	q := RREQ{TTL: 5}
	if q.Size() != len(q.Marshal()) {
		t.Fatal("RREQ.Size diverges from encoding")
	}
	p := RREP{}
	if p.Size() != len(p.Marshal()) {
		t.Fatal("RREP.Size diverges from encoding")
	}
	e := RERR{Unreachable: make([]RERRDest, 3)}
	if e.Size() != len(e.Marshal()) {
		t.Fatal("RERR.Size diverges from encoding")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalRREQ([]byte{99, 1, 2}); err == nil {
		t.Fatal("wrong type accepted")
	}
	if _, err := UnmarshalRREQ(RREQ{}.Marshal()[:5]); err == nil {
		t.Fatal("truncated RREQ accepted")
	}
	if _, err := UnmarshalRERR(append(RERR{}.Marshal(), 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
