package core

// Model-checker integration: a deterministic serialization of the entire
// protocol-relevant state, and the volatile-reset variant that wipes the
// §5 stable store. See routing.ModelStater / routing.VolatileResetter and
// internal/modelcheck.

import (
	"encoding/binary"
	"sort"

	"github.com/manetlab/ldr/internal/routing"
)

var (
	_ routing.ModelStater      = (*LDR)(nil)
	_ routing.VolatileResetter = (*LDR)(nil)
)

// ResetVolatile implements routing.VolatileResetter: a crash WITHOUT the
// stable storage §5 prescribes. Reset's persistence of the own sequence
// number and the per-destination (sn, fd) labels is what keeps
// post-reboot acceptances ordered; wiping them puts LDR in the volatile
// regime in which AODV loops, and this hook lets the model checker
// explore that regime directly. (Within the budgets explored so far the
// request-as-error discipline still prevents the van Glabbeek
// construction even without stable storage — the stale-route reply that
// seeds AODV's loop is answered with an RERR leg here.) nextReqID
// survives for the same simulation-artifact reason it survives Reset.
func (l *LDR) ResetVolatile() {
	l.Reset()
	l.routes = make(table)
	l.ownSeq = NewSeqno(1, 0)
}

// AppendModelState implements routing.ModelStater. Everything that can
// influence future protocol behaviour is emitted, in sorted order under
// the mapped identifiers: own sequence number, the full routing table
// (invalid entries included — their labels persist and gate NDC), the
// engaged-computation cache, buffered data, active discoveries, and the
// request-ID counter. Expiry times are included verbatim: the model runs
// at a frozen clock, so they are deterministic durations, and AODV-style
// lifetime propagation makes them behaviour-relevant in general. The
// per-neighbor rate limiters are deliberately omitted (their buckets
// cannot empty within any bounded exploration's horizon).
func (l *LDR) AppendModelState(out []byte, mapID func(routing.NodeID) routing.NodeID) []byte {
	out = append(out, 'L')
	out = binary.AppendUvarint(out, uint64(l.ownSeq))

	type rrow struct {
		dst routing.NodeID
		e   *entry
	}
	rows := make([]rrow, 0, len(l.routes))
	for dst, e := range l.routes {
		rows = append(rows, rrow{mapID(dst), e})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].dst < rows[j].dst })
	out = binary.AppendUvarint(out, uint64(len(rows)))
	for _, r := range rows {
		e := r.e
		out = binary.AppendVarint(out, int64(r.dst))
		out = appendBool(out, e.valid)
		out = binary.AppendUvarint(out, uint64(e.seq))
		out = binary.AppendVarint(out, int64(e.dist))
		out = binary.AppendVarint(out, int64(e.fd))
		out = binary.AppendVarint(out, int64(mapID(e.next)))
		out = binary.AppendVarint(out, int64(e.expiry))
		alts := make([]altSuccessor, len(e.alts))
		for i, a := range e.alts {
			alts[i] = altSuccessor{next: mapID(a.next), advDist: a.advDist, heard: a.heard}
		}
		sort.Slice(alts, func(i, j int) bool {
			if alts[i].next != alts[j].next {
				return alts[i].next < alts[j].next
			}
			return alts[i].advDist < alts[j].advDist
		})
		out = binary.AppendUvarint(out, uint64(len(alts)))
		for _, a := range alts {
			out = binary.AppendVarint(out, int64(a.next))
			out = binary.AppendVarint(out, int64(a.advDist))
			out = binary.AppendVarint(out, int64(a.heard))
		}
	}

	type qrow struct {
		origin routing.NodeID
		id     uint32
		st     *reqState
	}
	qrows := make([]qrow, 0, len(l.reqSeen))
	for k, st := range l.reqSeen {
		qrows = append(qrows, qrow{mapID(k.origin), k.id, st})
	}
	sort.Slice(qrows, func(i, j int) bool {
		if qrows[i].origin != qrows[j].origin {
			return qrows[i].origin < qrows[j].origin
		}
		return qrows[i].id < qrows[j].id
	})
	out = binary.AppendUvarint(out, uint64(len(qrows)))
	for _, q := range qrows {
		st := q.st
		out = binary.AppendVarint(out, int64(q.origin))
		out = binary.AppendUvarint(out, uint64(q.id))
		out = binary.AppendVarint(out, int64(mapID(st.lastHop)))
		out = appendBool(out, st.relayed)
		out = appendBool(out, st.unicastFwd)
		out = appendBool(out, st.replied)
		out = binary.AppendUvarint(out, uint64(st.relayedSeq))
		out = binary.AppendVarint(out, int64(st.relayedDist))
		hops := make([]routing.NodeID, len(st.altHops))
		for i, h := range st.altHops {
			hops[i] = mapID(h)
		}
		sort.Slice(hops, func(i, j int) bool { return hops[i] < hops[j] })
		out = binary.AppendUvarint(out, uint64(len(hops)))
		for _, h := range hops {
			out = binary.AppendVarint(out, int64(h))
		}
	}

	out = routing.AppendPendingModelState(out, l.pending, mapID)

	type arow struct {
		dst routing.NodeID
		d   *discovery
	}
	arows := make([]arow, 0, len(l.active))
	for dst, d := range l.active {
		arows = append(arows, arow{mapID(dst), d})
	}
	sort.Slice(arows, func(i, j int) bool { return arows[i].dst < arows[j].dst })
	out = binary.AppendUvarint(out, uint64(len(arows)))
	for _, a := range arows {
		out = binary.AppendVarint(out, int64(a.dst))
		out = binary.AppendUvarint(out, uint64(a.d.id))
		out = binary.AppendVarint(out, int64(a.d.ttl))
		out = binary.AppendVarint(out, int64(a.d.retries))
	}

	out = binary.AppendUvarint(out, uint64(l.nextReqID))
	return out
}

func appendBool(out []byte, b bool) []byte {
	if b {
		return append(out, 1)
	}
	return append(out, 0)
}
