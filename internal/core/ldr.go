package core

import (
	"time"

	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/runpool"
	"github.com/manetlab/ldr/internal/sim"
)

// Config tunes LDR's timers and the paper's §4 optimizations. The zero
// value is not valid; use DefaultConfig.
type Config struct {
	ActiveRouteTimeout time.Duration // route lifetime without use
	NodeTraversalTime  time.Duration // per-hop latency estimate for RREQ timers
	NetDiameter        int           // maximum network diameter in hops
	TTLStart           int           // expanding-ring initial TTL
	TTLIncrement       int           // expanding-ring step
	TTLThreshold       int           // ring TTL beyond which the flood goes network-wide
	RREQRetries        int           // network-wide retries after the ring fails
	LocalAddTTL        int           // slack added to distance-derived TTLs
	RREQCacheLife      time.Duration // engaged-state retention
	MaxQueuedPerDest   int           // data packets buffered awaiting a route
	BroadcastJitter    time.Duration // random delay before relaying a flood

	// The paper's suggested optimizations (§4), each independently
	// switchable for the ablation benchmarks.
	MultipleRREPs   bool    // relay later RREPs carrying stronger invariants
	RequestAsError  bool    // treat a successor's RREQ as evidence of a broken route
	ReducedDistance bool    // advertise an answering distance below fd
	ReducedFactor   float64 // answering-distance factor (paper: 0.8)
	MinLifetime     bool    // do not answer with a nearly expired route
	OptimalTTL      bool    // derive the initial ring TTL from known distance

	// Multipath keeps up to MaxAltSuccessors additional loop-free
	// successors per destination and fails over to them on link breaks
	// without rediscovery (the labeled-distance multipath extension).
	// AltLifetime bounds how long a recorded alternate may be promoted:
	// loop-freedom never decays (the alternate's advertised distance was
	// below fd, and fd is non-increasing at a fixed sequence number), but
	// an old alternate is increasingly likely to have lost its own route.
	Multipath        bool
	MaxAltSuccessors int
	AltLifetime      time.Duration

	// Per-neighbor control hardening (internal/adversary): RREQs and
	// RERRs arriving from one neighbor faster than these token-bucket
	// rates are discarded on receipt, so a compromised neighbor's control
	// storm is contained to its own links. The defaults are far above
	// benign per-neighbor rates; zero disables a limiter. Dropping
	// solicitations never threatens loop freedom — LDR is loss-tolerant
	// by design (a lost RREQ just retries) — it only bounds work.
	RREQRatePerNeighbor float64 // sustained RREQs/sec accepted per neighbor
	RREQRateBurst       int     // bucket depth for RREQ bursts
	RERRRatePerNeighbor float64 // sustained RERRs/sec accepted per neighbor
	RERRRateBurst       int     // bucket depth for RERR bursts

	// AdaptiveTimeout derives route lifetimes from observed discovery
	// round-trip times (routing.RTTEstimator) instead of the constant
	// ActiveRouteTimeout, which stays as the pre-sample fallback. Purely
	// a performance knob: lifetimes only bound how long a route already
	// admitted by NDC keeps being used, so loop freedom is untouched.
	AdaptiveTimeout bool
}

// DefaultConfig returns the configuration used for the paper-reproduction
// experiments, with all optimizations enabled.
func DefaultConfig() Config {
	return Config{
		ActiveRouteTimeout: 3 * time.Second,
		NodeTraversalTime:  40 * time.Millisecond,
		NetDiameter:        35,
		TTLStart:           2,
		TTLIncrement:       2,
		TTLThreshold:       7,
		RREQRetries:        2,
		LocalAddTTL:        2,
		RREQCacheLife:      6 * time.Second,
		MaxQueuedPerDest:   16,
		BroadcastJitter:    10 * time.Millisecond,

		MultipleRREPs:   true,
		RequestAsError:  true,
		ReducedDistance: true,
		ReducedFactor:   0.8,
		MinLifetime:     true,
		OptimalTTL:      true,

		Multipath:        false, // the paper's LDR is single-path
		MaxAltSuccessors: 2,
		AltLifetime:      10 * time.Second,

		RREQRatePerNeighbor: 20,
		RREQRateBurst:       40,
		RERRRatePerNeighbor: 10,
		RERRRateBurst:       20,
	}
}

// reqKey identifies a route computation (A, ID_A).
type reqKey struct {
	origin routing.NodeID
	id     uint32
}

// reqState is the engaged-state record for one computation: the reverse
// path hop plus bookkeeping for reply relaying (Theorem 3's computation
// tree is exactly this cache).
type reqState struct {
	lastHop routing.NodeID
	expires time.Duration

	relayed     bool  // at least one RREP relayed
	relayedSeq  Seqno // strongest invariants relayed so far
	relayedDist int
	unicastFwd  bool // the unicast reset leg has passed through here
	replied     bool // this node answered (destination or SDC reply)

	altHops []routing.NodeID // multipath: extra reverse hops already answered
}

// discovery is the active-state record at the origin of a computation.
type discovery struct {
	id      uint32
	ttl     int
	retries int // network-wide attempts used
	timer   sim.Timer
	sentAt  time.Duration // when the latest RREQ attempt left, for RTT
}

// LDR is one node's instance of the labeled distance routing protocol.
type LDR struct {
	node *routing.Node
	cfg  Config

	ownSeq  Seqno
	routes  table
	reqSeen map[reqKey]*reqState
	pending map[routing.NodeID][]*routing.DataPacket // data awaiting routes
	active  map[routing.NodeID]*discovery            // per-destination computations

	nextReqID uint32
	stopped   bool

	rreqLimiter *routing.RateLimiter
	rerrLimiter *routing.RateLimiter

	rtt *routing.RTTEstimator // nil unless cfg.AdaptiveTimeout

	// Free lists for outgoing control messages (recycled by the node
	// layer once the carrying frame is released) and a scratch buffer
	// for collecting broken destinations before they are copied into a
	// pooled RERR.
	rreqPool runpool.Pool[RREQ]
	rrepPool runpool.Pool[RREP]
	rerrPool runpool.Pool[RERR]
	rerrBuf  []RERRDest
}

var (
	_ routing.Protocol           = (*LDR)(nil)
	_ routing.TableSnapshotter   = (*LDR)(nil)
	_ routing.TableAppender      = (*LDR)(nil)
	_ routing.Resetter           = (*LDR)(nil)
	_ routing.DataFailureHandler = (*LDR)(nil)
	_ routing.MessageRecycler    = (*LDR)(nil)
)

// New builds an LDR instance bound to a node.
func New(node *routing.Node, cfg Config) *LDR {
	l := &LDR{
		node:    node,
		cfg:     cfg,
		ownSeq:  NewSeqno(1, 0),
		routes:  make(table),
		reqSeen: make(map[reqKey]*reqState),
		pending: make(map[routing.NodeID][]*routing.DataPacket),
		active:  make(map[routing.NodeID]*discovery),

		rreqLimiter: routing.NewRateLimiter(cfg.RREQRatePerNeighbor, cfg.RREQRateBurst),
		rerrLimiter: routing.NewRateLimiter(cfg.RERRRatePerNeighbor, cfg.RERRRateBurst),
	}
	if cfg.AdaptiveTimeout {
		l.rtt = routing.NewRTTEstimator()
	}
	return l
}

// Start implements routing.Protocol. LDR is purely reactive: nothing
// happens until data needs a route.
func (l *LDR) Start() {}

// Stop implements routing.Protocol.
func (l *LDR) Stop() {
	l.stopped = true
	for _, d := range l.active {
		d.timer.Cancel()
	}
}

// Reset implements routing.Resetter: a crash discards everything volatile
// — successors, alternates, the engaged-computation cache, buffered data,
// and every active discovery — but persists the label store: the node's
// own sequence number AND the (sn, fd) labels of every known destination.
// §5 of the paper keeps the own number in stable storage (its timestamp
// component makes even that cheap: a reboot with a fresh counter and a
// newer timestamp still compares higher), and the per-destination labels
// belong there with it, because they ARE the loop-freedom invariant:
// neighbors that chose this node as successor did so against its old
// labels, and a relay that re-learned routes from scratch could accept an
// equal-sequence-number route whose feasible distance has regressed —
// under lossy channels (where the request-as-error RREQ can miss the
// upstream node) that regression re-creates exactly the post-reboot loop
// AODV exhibits (see internal/fault). Keeping the labels makes every
// post-reboot acceptance pass NDC against pre-crash state, so the global
// ordering criterion survives the crash. nextReqID also survives: request
// IDs need only be unique per origin, and reusing pre-crash IDs would
// collide with neighbors' engaged-computation caches for up to the RREQ
// cache lifetime.
func (l *LDR) Reset() {
	for _, d := range l.active {
		d.timer.Cancel()
	}
	for _, q := range l.pending {
		for _, pkt := range q {
			l.node.DropData(pkt, routing.DropReset)
		}
	}
	for _, e := range l.routes {
		e.invalidate()
		e.alts = nil
	}
	l.reqSeen = make(map[reqKey]*reqState)
	l.pending = make(map[routing.NodeID][]*routing.DataPacket)
	l.active = make(map[routing.NodeID]*discovery)
	l.rreqLimiter.Reset()
	l.rerrLimiter.Reset()
	if l.rtt != nil {
		l.rtt.Reset()
	}
}

// OwnSeq exposes the node's own sequence number (for tests and Fig. 7).
func (l *LDR) OwnSeq() Seqno { return l.ownSeq }

// RTT exposes the adaptive-timeout estimator (nil when disabled), for
// tests and experiment diagnostics.
func (l *LDR) RTT() *routing.RTTEstimator { return l.rtt }

// lifetime returns the route lifetime for a path of hops hops: adaptive
// when enabled and samples exist, the constant otherwise.
func (l *LDR) lifetime(hops int) time.Duration {
	if l.rtt == nil {
		return l.cfg.ActiveRouteTimeout
	}
	return l.rtt.Lifetime(hops, l.cfg.ActiveRouteTimeout)
}

// WalkHeldData implements routing.HeldDataWalker: the only data packets
// LDR holds are those buffered while route discovery runs.
func (l *LDR) WalkHeldData(fn func(*routing.DataPacket)) {
	for _, q := range l.pending {
		for _, pkt := range q {
			fn(pkt)
		}
	}
}

// --- data plane ---

// Originate implements routing.Protocol.
func (l *LDR) Originate(pkt *routing.DataPacket) {
	l.sendOrQueue(pkt)
}

// HandleData implements routing.Protocol.
func (l *LDR) HandleData(from routing.NodeID, pkt *routing.DataPacket) {
	if pkt.Dst == l.node.ID() {
		l.node.DeliverLocal(pkt)
		return
	}
	pkt.TTL--
	if pkt.TTL <= 0 {
		l.node.DropData(pkt, routing.DropTTL)
		return
	}
	// Receiving data from a neighbor implies it uses us as successor;
	// keep the downstream route alive.
	l.sendOrQueue(pkt)
}

// sendOrQueue forwards pkt along the active route, or (at the origin)
// buffers it and solicits a route. Relays without a route drop the packet
// and report the error, as the origin will rediscover.
func (l *LDR) sendOrQueue(pkt *routing.DataPacket) {
	now := l.node.Now()
	e := l.routes.get(pkt.Dst)
	if e.active(now) {
		e.refresh(now, l.lifetime(e.dist))
		l.node.SendData(e.next, pkt)
		return
	}
	if pkt.Src == l.node.ID() {
		l.queuePacket(pkt)
		l.solicit(pkt.Dst)
		return
	}
	dst := pkt.Dst
	l.node.DropData(pkt, routing.DropNoRoute)
	l.rerrBuf = append(l.rerrBuf[:0], RERRDest{Dst: dst, Seq: l.seqFor(dst)})
	l.sendRERR(l.rerrBuf)
}

func (l *LDR) queuePacket(pkt *routing.DataPacket) {
	q := l.pending[pkt.Dst]
	if len(q) >= l.cfg.MaxQueuedPerDest {
		l.node.DropData(q[0], routing.DropQueueOverflow)
		q = q[1:]
	}
	l.pending[pkt.Dst] = append(q, pkt)
}

// flushPending drains the buffered packets for dst after a route appears.
func (l *LDR) flushPending(dst routing.NodeID) {
	q := l.pending[dst]
	if len(q) == 0 {
		return
	}
	delete(l.pending, dst)
	for _, pkt := range q {
		l.sendOrQueue(pkt)
	}
}

// DataFailed implements routing.DataFailureHandler: the MAC exhausted its
// retries toward next, returning the packet's ownership to the protocol.
func (l *LDR) DataFailed(next routing.NodeID, pkt *routing.DataPacket) {
	if l.stopped {
		return
	}
	l.linkFailure(next, pkt)
}

// RecycleMessage implements routing.MessageRecycler: the node layer hands
// back a control message once its frame is fully released.
func (l *LDR) RecycleMessage(msg routing.Message) {
	switch m := msg.(type) {
	case *RREQ:
		l.rreqPool.Put(m)
	case *RREP:
		l.rrepPool.Put(m)
	case *RERR:
		m.Unreachable = m.Unreachable[:0] // keep capacity for reuse
		l.rerrPool.Put(m)
	}
}

// sendRREQ, sendRREP: wrap a handler-built value in a pooled message for
// the wire. The pooled object belongs to the frame until recycled.
func (l *LDR) sendRREQ(to routing.NodeID, q RREQ) {
	m := l.rreqPool.Get()
	*m = q
	l.node.SendControl(to, m, nil)
}

func (l *LDR) sendRREP(to routing.NodeID, p RREP) {
	m := l.rrepPool.Get()
	*m = p
	l.node.SendControl(to, m, func() { l.rrepFailed(to) })
}

// rrepFailed handles a MAC-failed RREP unicast toward next: lastHop was
// recorded from a broadcast RREQ, which needs no return link, so on a
// one-way link the reply dies after its MAC retries and the reverse path
// is known-dead. Run the same route-state transitions a data-plane link
// break triggers — drop fallback successors via next, fail over or
// invalidate with a RERR — minus the packet salvage (there is no data
// packet here). Labels are untouched, so NDC feasibility is unaffected.
func (l *LDR) rrepFailed(next routing.NodeID) {
	if l.stopped {
		return
	}
	broken := l.rerrBuf[:0]
	for dst, e := range l.routes {
		e.dropAlt(next)
		if e.valid && e.next == next {
			if l.cfg.Multipath && e.promoteAlt(l.node.Now(), l.lifetime(e.dist), l.cfg.AltLifetime) {
				continue // failover without rediscovery or RERR
			}
			e.invalidate()
			broken = append(broken, RERRDest{Dst: dst, Seq: e.seq})
		}
	}
	l.rerrBuf = broken[:0]
	if len(broken) > 0 {
		l.sendRERR(broken)
	}
}

// linkFailure handles a MAC-layer unicast failure toward next: every route
// through next is invalidated (keeping sn and fd — LDR's reset discipline
// means no sequence numbers are touched), a RERR is issued, and any
// locally originated traffic triggers rediscovery.
func (l *LDR) linkFailure(next routing.NodeID, pkt *routing.DataPacket) {
	if l.stopped {
		return
	}
	broken := l.rerrBuf[:0]
	for dst, e := range l.routes {
		e.dropAlt(next)
		if e.valid && e.next == next {
			if l.cfg.Multipath && e.promoteAlt(l.node.Now(), l.lifetime(e.dist), l.cfg.AltLifetime) {
				continue // failover without rediscovery or RERR
			}
			e.invalidate()
			broken = append(broken, RERRDest{Dst: dst, Seq: e.seq})
		}
	}
	l.rerrBuf = broken[:0]
	if len(broken) > 0 {
		l.sendRERR(broken)
	}
	if e := l.routes.get(pkt.Dst); l.cfg.Multipath && e.active(l.node.Now()) {
		// A fallback successor took over; resend along it immediately.
		l.sendOrQueue(pkt)
		return
	}
	if pkt.Src == l.node.ID() {
		// Buffer the packet and reacquire the route.
		l.queuePacket(pkt)
		l.solicit(pkt.Dst)
	} else {
		l.node.DropData(pkt, routing.DropLinkBreak)
	}
}

// --- route discovery: Procedure 1 (Initiate Solicitation) ---

// solicit starts (or joins) the route computation for dst.
func (l *LDR) solicit(dst routing.NodeID) {
	if l.stopped || dst == l.node.ID() {
		return
	}
	if _, ok := l.active[dst]; ok {
		return // already active for dst; at most one computation each
	}
	l.nextReqID++
	d := &discovery{id: l.nextReqID, ttl: l.initialTTL(dst)}
	l.active[dst] = d
	l.broadcastRREQ(dst, d)
}

// initialTTL applies the optimal-TTL optimization: a node that recently
// had a route needs to reach only slightly past the old distance.
func (l *LDR) initialTTL(dst routing.NodeID) int {
	e := l.routes.get(dst)
	if l.cfg.OptimalTTL && e != nil && e.dist < Infinity {
		ttl := e.dist - l.answerDist(e) + l.cfg.LocalAddTTL
		if ttl < l.cfg.TTLStart {
			ttl = l.cfg.TTLStart
		}
		if ttl > l.cfg.NetDiameter {
			ttl = l.cfg.NetDiameter
		}
		return ttl
	}
	return l.cfg.TTLStart
}

// answerDist computes the answering distance carried in a RREQ: the
// node's feasible distance, optionally reduced (×0.8, floored, minimum 1)
// so that slightly longer loop-free paths remain answerable under churn.
func (l *LDR) answerDist(e *entry) int {
	fd := Infinity
	if e != nil {
		fd = e.fd
	}
	if !l.cfg.ReducedDistance || fd >= Infinity {
		return fd
	}
	ad := int(l.cfg.ReducedFactor * float64(fd))
	if ad < 1 {
		ad = 1
	}
	return ad
}

func (l *LDR) broadcastRREQ(dst routing.NodeID, d *discovery) {
	e := l.routes.get(dst)
	q := RREQ{
		Dst:       dst,
		Origin:    l.node.ID(),
		OriginSeq: l.ownSeq,
		ReqID:     d.id,
		FD:        Infinity,
		AnsDist:   l.answerDist(e),
		Dist:      0,
		TTL:       d.ttl,
	}
	if e != nil {
		q.HaveDstSeq = true
		q.DstSeq = e.seq
		q.FD = e.fd
	}
	l.node.Metrics().CountControlInitiate(metrics.RREQ)
	d.sentAt = l.node.Now()
	l.sendRREQ(routing.BroadcastID, q)

	timeout := 2 * time.Duration(d.ttl) * l.cfg.NodeTraversalTime
	d.timer = l.node.Schedule(timeout, func() { l.discoveryTimeout(dst, d) })
}

// discoveryTimeout implements the expanding-ring retry schedule. After the
// final attempt the buffered packets are dropped and the computation ends.
func (l *LDR) discoveryTimeout(dst routing.NodeID, d *discovery) {
	if l.stopped || l.active[dst] != d {
		return
	}
	if d.ttl >= l.cfg.NetDiameter {
		d.retries++
		if d.retries > l.cfg.RREQRetries {
			delete(l.active, dst)
			for _, pkt := range l.pending[dst] {
				l.node.DropData(pkt, routing.DropNoRoute)
			}
			delete(l.pending, dst)
			return
		}
	} else {
		d.ttl += l.cfg.TTLIncrement
		if d.ttl > l.cfg.TTLThreshold {
			d.ttl = l.cfg.NetDiameter
		}
	}
	l.nextReqID++
	d.id = l.nextReqID
	l.broadcastRREQ(dst, d)
}

// --- control plane ---

// HandleControl implements routing.Protocol.
func (l *LDR) HandleControl(from routing.NodeID, msg routing.Message) {
	if l.stopped {
		return
	}
	// The wire carries pooled pointers; tests and the adversary layer may
	// still construct value messages directly.
	switch m := msg.(type) {
	case *RREQ:
		l.handleRREQ(from, *m)
	case *RREP:
		l.handleRREP(from, *m)
	case *RERR:
		l.handleRERR(from, *m)
	case RREQ:
		l.handleRREQ(from, m)
	case RREP:
		l.handleRREP(from, m)
	case RERR:
		l.handleRERR(from, m)
	}
}

// handleRREQ implements Procedure 2 (Relay Solicitation) together with
// the destination behaviour and SDC replies.
func (l *LDR) handleRREQ(from routing.NodeID, q RREQ) {
	me := l.node.ID()
	if q.Origin == me {
		return
	}
	now := l.node.Now()
	if !l.rreqLimiter.Allow(from, now) {
		l.node.Metrics().RREQSuppressed++
		return
	}
	key := reqKey{origin: q.Origin, id: q.ReqID}
	st := l.reqSeen[key]
	if st != nil {
		// Already engaged: a node enters a computation at most once
		// (Theorem 3). The only second touch allowed is relaying the
		// unicast reset leg toward the destination, which follows the
		// loop-free successor graph rather than the flood tree.
		if q.D && !st.unicastFwd && !st.replied && q.Dst != me {
			st.unicastFwd = true
			l.forwardUnicastRREQ(q)
		} else if q.D && q.Dst == me && !st.replied {
			st.replied = true
			l.destinationReply(q, st)
		} else if l.cfg.Multipath && q.Dst == me && st.replied {
			// Multipath extension: a duplicate copy that arrived over a
			// different last hop reveals a node-disjoint reverse branch.
			// Answer it too (bounded by MaxAltSuccessors) so upstream
			// nodes can learn loop-free alternates.
			l.maybeAltReply(q, st, from)
		}
		return
	}
	st = &reqState{lastHop: from, expires: now + l.cfg.RREQCacheLife}
	l.reqSeen[key] = st
	l.node.Schedule(l.cfg.RREQCacheLife, func() { l.expireReq(key) })

	// The RREQ advertises a route back to its origin; try to install it.
	// The unicast reset leg (D bit) is NOT an advertisement: it travels
	// the successor path toward the destination, so its Dist describes
	// the original flood path, not the state of the neighbor relaying it
	// — installing a route from it would break the ordering criterion.
	reverseOK := false
	if !q.D {
		reverseOK = l.acceptAdvertisement(q.Origin, q.OriginSeq, q.Dist, from)
	}
	if !reverseOK && !l.routes.get(q.Origin).active(now) {
		q.N = true
	}

	// Request-as-error: a solicitation from our own successor for the very
	// destination it serves means its route is gone.
	if l.cfg.RequestAsError {
		if e := l.routes.get(q.Dst); e != nil && e.valid && e.next == from {
			if !q.HaveDstSeq || q.AnsDist > e.dist-1 {
				e.invalidate()
			}
		}
	}

	if q.Dst == me {
		st.replied = true
		l.destinationReply(q, st)
		return
	}

	e := l.routes.get(q.Dst)
	if l.sdc(e, q, now) {
		if !q.T {
			st.replied = true
			l.sendReply(q, e, now)
			return
		}
		// SDC holds but a reset is required: unicast the request the rest
		// of the way so the destination can raise its sequence number.
		st.unicastFwd = true
		uq := l.updateInvariants(q, e)
		uq.D = true
		uq.TTL = e.dist + l.cfg.LocalAddTTL
		l.forwardUnicastRREQ(uq)
		return
	}

	// Relay the flood.
	q.TTL--
	if q.TTL <= 0 {
		return
	}
	rq := l.updateInvariants(q, e)
	jitter := time.Duration(l.node.RNG().Float64() * float64(l.cfg.BroadcastJitter))
	l.node.Schedule(jitter, func() {
		if l.stopped {
			return
		}
		l.sendRREQ(routing.BroadcastID, rq)
	})
}

// sdc evaluates the Start Distance Condition at this node for a
// solicitation (ignoring the T bit, which the caller inspects):
//
//	sn = sn#  ∧  d < fd#           (3, with the answering distance)
//	sn > sn#                       (4)
//
// plus the minimum-lifetime optimization: nearly expired routes do not
// answer.
func (l *LDR) sdc(e *entry, q RREQ, now time.Duration) bool {
	if !e.active(now) {
		return false
	}
	if l.cfg.MinLifetime && e.expiry-now < l.cfg.ActiveRouteTimeout/3 {
		return false
	}
	if !q.HaveDstSeq {
		return true
	}
	if e.seq > q.DstSeq {
		return true
	}
	return e.seq == q.DstSeq && e.dist < q.AnsDist
}

// updateInvariants applies equations (5)–(8) to produce the relayed
// solicitation: the sequence number and feasible distance are strengthened
// with this node's state, the traversed distance grows by the link cost,
// and the T bit tracks FDC.
func (l *LDR) updateInvariants(q RREQ, e *entry) RREQ {
	q.Dist++ // eq. (7): the reverse-path advertisement grew one hop
	if e == nil {
		return q
	}
	switch {
	case !q.HaveDstSeq || e.seq > q.DstSeq:
		// eq. (5)/(6): our state supersedes the request's; any reply now
		// acts as a path reset, clearing T (eq. 8, first case).
		q.HaveDstSeq = true
		q.DstSeq = e.seq
		q.FD = e.fd
		q.AnsDist = l.answerDist(e)
		q.T = false
	case e.seq == q.DstSeq && e.fd < q.FD:
		// eq. (6): strengthen the minimum; FDC satisfied, T relayed as-is.
		q.FD = e.fd
		if ad := l.answerDist(e); ad < q.AnsDist {
			q.AnsDist = ad
		}
	case e.seq == q.DstSeq:
		// FDC violated (fd ≥ fd#): require a path reset (eq. 8, third case).
		q.T = true
	}
	// e.seq < q.DstSeq leaves the solicitation untouched: our stale state
	// cannot constrain a newer-numbered path.
	return q
}

// forwardUnicastRREQ sends the reset leg toward the destination along the
// successor path. If the route evaporated, the leg dies and the origin's
// retry timer recovers.
func (l *LDR) forwardUnicastRREQ(q RREQ) {
	now := l.node.Now()
	e := l.routes.get(q.Dst)
	if !e.active(now) {
		return
	}
	q.TTL--
	if q.TTL <= 0 {
		return
	}
	l.sendRREQ(e.next, q)
}

// destinationReply implements the destination's reset duty: raise the
// sequence number when the path needs resetting, then answer.
func (l *LDR) destinationReply(q RREQ, st *reqState) {
	now := l.node.Now()
	if q.T && q.HaveDstSeq && l.ownSeq <= q.DstSeq {
		// Only the destination may do this (eq. 8 discussion; the reply
		// resets feasible distances along the reverse path).
		l.ownSeq = l.ownSeq.Next(now)
	} else if q.HaveDstSeq && q.DstSeq > l.ownSeq {
		// A stale universe believes a higher number than ours (possible
		// only across reboots); jump past it before answering.
		l.ownSeq = NewSeqno(q.DstSeq.Timestamp(), q.DstSeq.Counter()).Next(now)
	}
	p := RREP{
		Dst:      l.node.ID(),
		DstSeq:   l.ownSeq,
		Origin:   q.Origin,
		ReqID:    q.ReqID,
		Dist:     0,
		Lifetime: l.cfg.ActiveRouteTimeout,
		N:        q.N,
	}
	l.node.Metrics().CountControlInitiate(metrics.RREP)
	l.sendRREP(st.lastHop, p)
}

// maybeAltReply sends an additional destination RREP along an alternate
// reverse hop for the same computation (multipath extension).
func (l *LDR) maybeAltReply(q RREQ, st *reqState, from routing.NodeID) {
	if from == st.lastHop || len(st.altHops) >= l.cfg.MaxAltSuccessors {
		return
	}
	for _, h := range st.altHops {
		if h == from {
			return
		}
	}
	st.altHops = append(st.altHops, from)
	p := RREP{
		Dst:      l.node.ID(),
		DstSeq:   l.ownSeq,
		Origin:   q.Origin,
		ReqID:    q.ReqID,
		Dist:     0,
		Lifetime: l.cfg.ActiveRouteTimeout,
		N:        q.N,
	}
	l.node.Metrics().CountControlInitiate(metrics.RREP)
	l.sendRREP(from, p)
}

// sendReply issues an SDC advertisement from an intermediate node.
func (l *LDR) sendReply(q RREQ, e *entry, now time.Duration) {
	st := l.reqSeen[reqKey{origin: q.Origin, id: q.ReqID}]
	if st == nil {
		return
	}
	p := RREP{
		Dst:      q.Dst,
		DstSeq:   e.seq,
		Origin:   q.Origin,
		ReqID:    q.ReqID,
		Dist:     e.dist,
		Lifetime: e.expiry - now,
		N:        q.N,
	}
	l.node.Metrics().CountControlInitiate(metrics.RREP)
	l.sendRREP(st.lastHop, p)
}

// handleRREP implements Procedure 4 (Relay Advertisement).
func (l *LDR) handleRREP(from routing.NodeID, p RREP) {
	me := l.node.ID()
	now := l.node.Now()

	accepted := false
	if p.Dst != me {
		accepted = l.acceptAdvertisement(p.Dst, p.DstSeq, p.Dist, from)
		if accepted {
			l.node.Metrics().RREPUsable++
			l.flushPending(p.Dst)
		}
	}

	if p.Origin == me {
		// Terminus: the computation (me, ReqID) ends in success if the
		// advertisement was feasible here.
		if d, ok := l.active[p.Dst]; ok && accepted {
			if l.rtt != nil {
				// One discovery round trip over p.Dist+1 hops. A reply
				// racing a ring retry measures against the latest attempt,
				// slightly under-reporting — harmless for a windowed mean.
				l.rtt.Observe(now-d.sentAt, p.Dist+1)
			}
			d.timer.Cancel()
			delete(l.active, p.Dst)
		}
		if p.N && accepted {
			// Reverse path incomplete: raise our own number so relays can
			// accept the rebuilt reverse advertisements, and probe again.
			l.ownSeq = l.ownSeq.Next(now)
		}
		return
	}

	key := reqKey{origin: p.Origin, id: p.ReqID}
	st := l.reqSeen[key]
	if st == nil {
		return // not engaged in this computation; nowhere to relay
	}
	e := l.routes.get(p.Dst)
	if !e.active(now) {
		// Cannot issue a fresh advertisement without an active route; the
		// advertisement dies here (paper: "the relay cannot issue a new
		// advertisement").
		return
	}
	// Procedure 4: relay with our own (possibly stronger) invariants.
	fwd := RREP{
		Dst:      p.Dst,
		DstSeq:   e.seq,
		Origin:   p.Origin,
		ReqID:    p.ReqID,
		Dist:     e.dist,
		Lifetime: e.expiry - now,
		N:        p.N,
	}
	if st.relayed {
		if !l.cfg.MultipleRREPs {
			return
		}
		// Only strictly stronger advertisements may follow earlier ones.
		stronger := fwd.DstSeq > st.relayedSeq ||
			(fwd.DstSeq == st.relayedSeq && fwd.Dist < st.relayedDist)
		if !stronger {
			return
		}
	}
	st.relayed = true
	st.relayedSeq = fwd.DstSeq
	st.relayedDist = fwd.Dist
	l.sendRREP(st.lastHop, fwd)
}

// handleRERR invalidates routes whose next hop reported them broken and
// propagates the error for entries that actually changed.
func (l *LDR) handleRERR(from routing.NodeID, e RERR) {
	if !l.rerrLimiter.Allow(from, l.node.Now()) {
		l.node.Metrics().RERRSuppressed++
		return
	}
	propagate := l.rerrBuf[:0]
	for _, u := range e.Unreachable {
		ent := l.routes.get(u.Dst)
		if ent == nil {
			continue
		}
		ent.dropAlt(from)
		if ent.valid && ent.next == from && ent.seq <= u.Seq {
			if l.cfg.Multipath && ent.promoteAlt(l.node.Now(), l.lifetime(ent.dist), l.cfg.AltLifetime) {
				continue
			}
			ent.invalidate()
			propagate = append(propagate, RERRDest{Dst: u.Dst, Seq: ent.seq})
		}
	}
	l.rerrBuf = propagate[:0]
	if len(propagate) > 0 {
		l.sendRERR(propagate)
	}
}

// sendRERR copies the broken-destination list into a pooled RERR; the
// caller's slice (typically l.rerrBuf) is free for reuse on return.
func (l *LDR) sendRERR(broken []RERRDest) {
	l.node.Metrics().CountControlInitiate(metrics.RERR)
	m := l.rerrPool.Get()
	m.Unreachable = append(m.Unreachable[:0], broken...)
	l.node.SendControl(routing.BroadcastID, m, nil)
}

// acceptAdvertisement applies NDC + Procedure 3 for an advertisement of
// dst (advSeq, advDist) heard from via. It returns whether the
// advertisement was usable (installed or refreshed a route).
func (l *LDR) acceptAdvertisement(dst routing.NodeID, advSeq Seqno, advDist int, via routing.NodeID) bool {
	if dst == l.node.ID() || via == routing.BroadcastID {
		return false
	}
	now := l.node.Now()
	e := l.routes.get(dst)
	if e == nil {
		l.routes[dst] = newEntry(advSeq, advDist, via, 1, now, l.lifetime(advDist+1))
		return true
	}
	if !e.ndc(advSeq, advDist) {
		// The feasibility condition is LDR's whole defense against lying
		// neighbors: an advertisement that does not beat the stored label
		// — a replayed stale (sn, fd), a forged distance at an old number
		// — is refused here, and the refusal is counted so attack runs
		// can prove forgeries were rejected rather than merely unlucky.
		l.node.Metrics().FeasibilityRejections++
		return false
	}
	// Stability rule (paper §2.1 note): with an active route and an equal
	// sequence number, keep the current successor unless the newcomer is
	// strictly shorter.
	if e.active(now) && advSeq == e.seq && via != e.next && advDist+1 >= e.dist {
		if l.cfg.Multipath {
			// The advertisement is loop-free even though it loses the
			// primary selection: remember it as a fallback successor.
			e.rememberAlt(via, advSeq, advDist, now, l.cfg.MaxAltSuccessors)
		}
		return false
	}
	e.update(advSeq, advDist, via, 1, now, l.lifetime(advDist+1))
	return true
}

// seqFor returns the stored sequence number for dst (zero when unknown).
func (l *LDR) seqFor(dst routing.NodeID) Seqno {
	if e := l.routes.get(dst); e != nil {
		return e.seq
	}
	return 0
}

func (l *LDR) expireReq(key reqKey) {
	if st := l.reqSeen[key]; st != nil && st.expires <= l.node.Now() {
		delete(l.reqSeen, key)
	}
}

// --- observability ---

// SnapshotTable implements routing.TableSnapshotter.
func (l *LDR) SnapshotTable() []routing.RouteEntry {
	return l.AppendTable(make([]routing.RouteEntry, 0, len(l.routes)))
}

// AppendTable implements routing.TableAppender.
func (l *LDR) AppendTable(out []routing.RouteEntry) []routing.RouteEntry {
	now := l.node.Now()
	for dst, e := range l.routes {
		out = append(out, routing.RouteEntry{
			Dst:    dst,
			Next:   e.next,
			Metric: e.dist,
			SeqNo:  uint64(e.seq),
			FD:     e.fd,
			Valid:  e.active(now),
		})
	}
	return out
}

// ReportSeqnos records the counter component of every known destination
// sequence number plus the node's own, feeding Fig. 7.
func (l *LDR) ReportSeqnos(col *metrics.Collector) {
	col.ObserveSeqno(float64(l.ownSeq.Counter()))
	for _, e := range l.routes {
		col.ObserveSeqno(float64(e.seq.Counter()))
	}
}

// RouteTo exposes (next hop, distance, ok) for examples and tests.
func (l *LDR) RouteTo(dst routing.NodeID) (routing.NodeID, int, bool) {
	e := l.routes.get(dst)
	if !e.active(l.node.Now()) {
		return 0, 0, false
	}
	return e.next, e.dist, true
}

// FeasibleDistance exposes the fd label for dst (Infinity when unknown),
// used by the invariants example and property tests.
func (l *LDR) FeasibleDistance(dst routing.NodeID) int {
	if e := l.routes.get(dst); e != nil {
		return e.fd
	}
	return Infinity
}
