package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSeqnoPackUnpack(t *testing.T) {
	s := NewSeqno(7, 42)
	if s.Timestamp() != 7 || s.Counter() != 42 {
		t.Fatalf("round trip failed: ts=%d ctr=%d", s.Timestamp(), s.Counter())
	}
}

func TestSeqnoOrdering(t *testing.T) {
	tests := []struct {
		a, b Seqno
	}{
		{NewSeqno(1, 0), NewSeqno(1, 1)},   // counter order
		{NewSeqno(1, 999), NewSeqno(2, 0)}, // timestamp dominates counter
		{NewSeqno(0, ^uint32(0)), NewSeqno(1, 0)},
	}
	for _, tt := range tests {
		if !(tt.a < tt.b) {
			t.Fatalf("want %v < %v", tt.a, tt.b)
		}
	}
}

func TestSeqnoNextIncrements(t *testing.T) {
	s := NewSeqno(1, 5)
	n := s.Next(0)
	if n != NewSeqno(1, 6) {
		t.Fatalf("Next = %v, want counter+1", n)
	}
}

func TestSeqnoNextWrapsCounterIntoTimestamp(t *testing.T) {
	s := NewSeqno(100, ^uint32(0))
	n := s.Next(50 * time.Second)
	if n.Counter() != 0 {
		t.Fatalf("counter after wrap = %d, want 0", n.Counter())
	}
	if n.Timestamp() <= 100 {
		t.Fatalf("timestamp after wrap = %d, must exceed 100", n.Timestamp())
	}
	if n <= s {
		t.Fatal("wrapped sequence number did not increase")
	}
}

func TestSeqnoNextWrapUsesClockWhenAhead(t *testing.T) {
	s := NewSeqno(10, ^uint32(0))
	n := s.Next(5000 * time.Second)
	if n.Timestamp() != 5000 {
		t.Fatalf("timestamp = %d, want wall-clock 5000", n.Timestamp())
	}
}

// Property: Next is strictly increasing for any state and clock.
func TestSeqnoNextStrictlyIncreasing(t *testing.T) {
	f := func(ts, ctr uint32, nowSec uint16) bool {
		s := NewSeqno(ts, ctr)
		return s.Next(time.Duration(nowSec)*time.Second) > s
	}
	cfg := &quick.Config{MaxCount: 5000, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
