package core

import (
	"time"

	"github.com/manetlab/ldr/internal/routing"
)

// Infinity is the distance representing "unreachable". It is large enough
// that no real path approaches it, yet small enough that adding link costs
// cannot overflow.
const Infinity = 1 << 24

// entry is one LDR routing-table row (paper Table 1: sn, d, fd, successor).
// Invalidated entries keep their sequence number and feasible distance —
// the invariants outlive the route, which is what makes reissuing RREQs
// with prior state safe.
type entry struct {
	seq    Seqno
	dist   int
	fd     int
	next   routing.NodeID
	valid  bool
	expiry time.Duration  // lifetime bound while valid
	alts   []altSuccessor // loop-free fallback successors (multipath mode)
}

// table maps destinations to entries. A node never holds an entry for
// itself (its distance to itself is zero and its own sequence number is
// tracked separately).
type table map[routing.NodeID]*entry

// get returns the entry for dst, or nil.
func (t table) get(dst routing.NodeID) *entry { return t[dst] }

// active reports whether the entry is usable at time now: valid and not
// past its lifetime.
func (e *entry) active(now time.Duration) bool {
	return e != nil && e.valid && e.expiry > now
}

// refresh extends the entry's lifetime; routes in use stay alive.
func (e *entry) refresh(now, lifetime time.Duration) {
	if exp := now + lifetime; exp > e.expiry {
		e.expiry = exp
	}
}

// invalidate marks the route unusable while retaining sn, d, and fd.
func (e *entry) invalidate() { e.valid = false }

// ndc evaluates the Numbered Distance Condition for an advertisement
// (advSeq, advDist) received at a node holding entry e:
//
//	sn* > sn                 (1)
//	sn* = sn  ∧  d* < fd     (2)
//
// A nil entry means "no information", which always passes.
func (e *entry) ndc(advSeq Seqno, advDist int) bool {
	if e == nil {
		return true
	}
	if advSeq > e.seq {
		return true
	}
	return advSeq == e.seq && advDist < e.fd
}

// update applies Procedure 3 (Set Route) for an accepted advertisement:
//
//	sn  ← sn*
//	d   ← d* + lc
//	fd  ← d          if sn < sn*   (sequence number reset)
//	fd  ← min(fd, d) if sn = sn*
//
// The caller must have verified NDC first. linkCost is 1 for hop counts.
func (e *entry) update(advSeq Seqno, advDist int, via routing.NodeID, linkCost int, now, lifetime time.Duration) {
	d := advDist + linkCost
	if advSeq > e.seq {
		e.fd = d
		// Alternates were validated against the old sequence number's
		// feasible distance; their labels are incomparable after a reset.
		e.alts = nil
	} else if d < e.fd {
		e.fd = d
	}
	e.seq = advSeq
	e.dist = d
	e.next = via
	e.valid = true
	e.expiry = now + lifetime
}

// newEntry installs a first-contact route (the "no information" NDC case).
func newEntry(advSeq Seqno, advDist int, via routing.NodeID, linkCost int, now, lifetime time.Duration) *entry {
	d := advDist + linkCost
	return &entry{
		seq:    advSeq,
		dist:   d,
		fd:     d,
		next:   via,
		valid:  true,
		expiry: now + lifetime,
	}
}
