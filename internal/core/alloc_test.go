package core_test

import (
	"testing"
	"time"
)

// ldrRoundTripAllocCeiling bounds one full LDR round trip on a warm
// 3-node chain: an expired route, a fresh RREQ flood, the destination's
// RREP, and the queued data packet's delivery. Discovery legitimately
// allocates a little (duplicate-cache entries and their expiry closures,
// the per-destination discovery record); the ceiling exists to catch the
// hot path regressing to per-packet marshalling or message boxing, which
// costs tens of allocations per round. Measured ~9 per round when the
// pools landed.
const ldrRoundTripAllocCeiling = 30

// TestLDRRREQRoundTripAllocBound runs repeated discovery+delivery rounds
// and fails when a round's average heap allocations exceed the ceiling.
func TestLDRRREQRoundTripAllocBound(t *testing.T) {
	nw := lineNetwork(t, 3, 11)
	nw.Start()
	// Space rounds past ActiveRouteTimeout (3s) so every round starts
	// with an expired route and must rediscover it.
	const window = 5 * time.Second
	var at time.Duration
	round := func() {
		nw.Sim.At(at, func() { nw.Nodes[0].OriginateData(2, 256) })
		at += window
		nw.Sim.Run(at)
	}
	for i := 0; i < 16; i++ {
		round() // warm the pools
	}
	if got, want := nw.Collector.DataInitiated, uint64(16); got != want {
		t.Fatalf("warmup initiated %d packets, want %d", got, want)
	}
	avg := testing.AllocsPerRun(50, round)
	t.Logf("LDR RREQ round trip: %.1f allocs per round (ceiling %d)", avg, ldrRoundTripAllocCeiling)
	if avg > ldrRoundTripAllocCeiling {
		t.Fatalf("LDR RREQ round trip allocates %.1f per round, ceiling %d",
			avg, ldrRoundTripAllocCeiling)
	}
	if nw.Collector.DataDelivered < nw.Collector.DataInitiated-1 {
		t.Fatalf("rounds stopped delivering: %d of %d",
			nw.Collector.DataDelivered, nw.Collector.DataInitiated)
	}
}
