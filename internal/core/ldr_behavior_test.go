package core_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/core"
	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/routing"
)

// buildNet creates an LDR network over the given mobility model.
func buildNet(model mobility.Model, seed int64, cfg core.Config) *routing.Network {
	return routing.NewNetwork(model.NumNodes(), model, radio.DefaultConfig(), mac.DefaultConfig(), seed,
		func(node *routing.Node) routing.Protocol {
			return core.New(node, cfg)
		})
}

func ldrAt(nw *routing.Network, id int) *core.LDR {
	return nw.Nodes[id].Protocol().(*core.LDR)
}

// keepTraffic schedules periodic packets src→dst over [from, to).
func keepTraffic(nw *routing.Network, src, dst int, from, to, every time.Duration) {
	for t := from; t < to; t += every {
		nw.Sim.At(t, func() { nw.Nodes[src].OriginateData(routing.NodeID(dst), 64) })
	}
}

// TestDestinationResetRaisesSequenceNumber reproduces the T-bit reset: a
// node whose feasible distance became very strong (fd=1) moves away; its
// rediscovery cannot be answered by intermediates and only a
// destination-controlled sequence-number increment can reset the path.
func TestDestinationResetRaisesSequenceNumber(t *testing.T) {
	tracks := [][]mobility.ScriptLeg{
		{{At: 0, Pos: mobility.Point{X: 0, Y: 0}}},   // 0: destination T
		{{At: 0, Pos: mobility.Point{X: 250, Y: 0}}}, // 1: D
		{{At: 0, Pos: mobility.Point{X: 500, Y: 0}}}, // 2: C
		{{At: 0, Pos: mobility.Point{X: 750, Y: 0}}}, // 3: B
		{ // 4: E roams from T's side to the far end
			{At: 0, Pos: mobility.Point{X: 250, Y: 100}},
			{At: 10 * time.Second, Pos: mobility.Point{X: 250, Y: 100}},
			{At: 18 * time.Second, Pos: mobility.Point{X: 1000, Y: 0}},
		},
	}
	nw := buildNet(mobility.NewScript(tracks), 3, core.DefaultConfig())
	nw.Start()
	keepTraffic(nw, 4, 0, time.Second, 40*time.Second, 200*time.Millisecond)

	var fdBefore int
	nw.Sim.At(8*time.Second, func() { fdBefore = ldrAt(nw, 4).FeasibleDistance(0) })
	nw.Sim.Run(40 * time.Second)

	if fdBefore != 1 {
		t.Fatalf("E's feasible distance beside T = %d, want 1", fdBefore)
	}
	dest := ldrAt(nw, 0)
	if dest.OwnSeq().Counter() == 0 {
		t.Fatal("destination never incremented its sequence number: the reset path did not run")
	}
	// After the reset E must have a working route again.
	if _, dist, ok := ldrAt(nw, 4).RouteTo(0); !ok || dist != 4 {
		t.Fatalf("E's post-reset route: dist=%d ok=%v, want 4 hops", dist, ok)
	}
	// And data kept flowing after the move.
	if ratio := nw.Collector.DeliveryRatio(); ratio < 0.80 {
		t.Fatalf("delivery across the reset = %.2f, want ≥ 0.80", ratio)
	}
}

// TestNoThirdPartyIncrementsSequenceNumbers is the structural contrast
// with AODV: across an entire mobile run, every node's stored sequence
// number for a destination never exceeds what that destination issued.
func TestNoThirdPartyIncrementsSequenceNumbers(t *testing.T) {
	cfg := core.DefaultConfig()
	model := mobility.NewWaypoint(15, mobility.WaypointConfig{
		Terrain:  mobility.Terrain{Width: 1000, Height: 300},
		MinSpeed: 1, MaxSpeed: 20, Pause: 0,
	}, rng.New(11))
	nw := buildNet(model, 11, cfg)
	nw.Start()
	for f := 0; f < 5; f++ {
		keepTraffic(nw, f, 14-f, time.Second, 60*time.Second, 250*time.Millisecond)
	}

	check := func() {
		for _, n := range nw.Nodes {
			p := n.Protocol().(*core.LDR)
			for _, e := range p.SnapshotTable() {
				issued := ldrAt(nw, int(e.Dst)).OwnSeq()
				if core.Seqno(e.SeqNo) > issued {
					t.Fatalf("node %d stores seq %d for dst %d, but the destination only issued %d",
						n.ID(), e.SeqNo, e.Dst, issued)
				}
			}
		}
	}
	for tick := 2 * time.Second; tick < 60*time.Second; tick += 2 * time.Second {
		nw.Sim.At(tick, check)
	}
	nw.Sim.Run(60 * time.Second)
}

// TestLinkFailureEmitsRERRAndInvalidatesUpstream: breaking the only link
// mid-path triggers a RERR that reaches the upstream relay.
func TestLinkFailureEmitsRERRAndInvalidatesUpstream(t *testing.T) {
	// Chain 0-1-2-3; node 3 walks away at t=5s.
	tracks := [][]mobility.ScriptLeg{
		{{At: 0, Pos: mobility.Point{X: 0}}},
		{{At: 0, Pos: mobility.Point{X: 250}}},
		{{At: 0, Pos: mobility.Point{X: 500}}},
		{
			{At: 0, Pos: mobility.Point{X: 750}},
			{At: 5 * time.Second, Pos: mobility.Point{X: 750}},
			{At: 8 * time.Second, Pos: mobility.Point{X: 750, Y: 3000}},
		},
	}
	nw := buildNet(mobility.NewScript(tracks), 5, core.DefaultConfig())
	nw.Start()
	keepTraffic(nw, 0, 3, time.Second, 15*time.Second, 250*time.Millisecond)
	nw.Sim.Run(20 * time.Second)

	if got := nw.Collector.ControlInitiated(metrics.RERR); got == 0 {
		t.Fatal("no RERR was initiated after the link break")
	}
	// The origin must have noticed: its route to 3 is gone or it has
	// issued fresh discoveries (which fail — node 3 is unreachable).
	if _, _, ok := ldrAt(nw, 0).RouteTo(3); ok {
		t.Fatal("origin still holds an active route to the departed node")
	}
}

// TestExpandingRingGrowsTTL: a destination 6 hops away cannot be found by
// the initial small-TTL flood, so discovery needs several attempts; a
// nearby destination needs exactly one.
func TestExpandingRingGrowsTTL(t *testing.T) {
	nw := buildNet(mobility.Line(8, 250), 5, core.DefaultConfig())
	nw.Start()
	nw.Sim.Schedule(0, func() { nw.Nodes[0].OriginateData(7, 64) })
	nw.Sim.Run(10 * time.Second)

	rreqs := nw.Collector.ControlInitiated(metrics.RREQ)
	if rreqs < 2 {
		t.Fatalf("RREQ floods = %d; a 7-hop destination must need ring expansion", rreqs)
	}
	if nw.Collector.DataDelivered != 1 {
		t.Fatalf("packet not delivered after ring search (delivered=%d)", nw.Collector.DataDelivered)
	}

	nw2 := buildNet(mobility.Line(8, 250), 5, core.DefaultConfig())
	nw2.Start()
	nw2.Sim.Schedule(0, func() { nw2.Nodes[0].OriginateData(1, 64) })
	nw2.Sim.Run(10 * time.Second)
	if rreqs := nw2.Collector.ControlInitiated(metrics.RREQ); rreqs != 1 {
		t.Fatalf("adjacent destination took %d floods, want 1", rreqs)
	}
}

// TestDiscoveryGivesUpWhenPartitioned: with no physical path, discovery
// retries then drops the queued packets rather than looping forever.
func TestDiscoveryGivesUpWhenPartitioned(t *testing.T) {
	// Node 1 is unreachable (5 km away).
	pts := []mobility.Point{{X: 0}, {X: 5000}}
	nw := buildNet(mobility.NewStatic(pts), 1, core.DefaultConfig())
	nw.Start()
	nw.Sim.Schedule(0, func() { nw.Nodes[0].OriginateData(1, 64) })
	nw.Sim.Run(120 * time.Second)

	c := nw.Collector
	if c.DataDropped != 1 {
		t.Fatalf("dropped = %d, want 1 (the queued packet)", c.DataDropped)
	}
	rreqs := c.ControlInitiated(metrics.RREQ)
	if rreqs == 0 {
		t.Fatal("no discovery attempted")
	}
	if rreqs > 12 {
		t.Fatalf("%d RREQ floods for an unreachable destination; retry cap broken", rreqs)
	}
	if nw.Sim.Pending() != 0 {
		t.Fatalf("%d events still pending after give-up; timers leak", nw.Sim.Pending())
	}
}

// TestIntermediateNodeAnswersFromCache: with a fresh route at a relay, the
// origin's discovery is answered without the flood reaching the
// destination (SDC reply), unlike AODV-after-break.
func TestIntermediateNodeAnswersWithSDC(t *testing.T) {
	nw := buildNet(mobility.Line(5, 250), 9, core.DefaultConfig())
	nw.Start()
	// Prime node 1's route to 4 (1→2→3→4).
	nw.Sim.Schedule(0, func() { nw.Nodes[1].OriginateData(4, 64) })
	// Node 0 asks shortly after; node 1 holds a fresh feasible route and
	// must answer itself.
	var destRREPs uint64
	nw.Sim.At(500*time.Millisecond, func() {
		destRREPs = nw.Collector.ControlInitiated(metrics.RREP)
		nw.Nodes[0].OriginateData(4, 64)
	})
	nw.Sim.Run(3 * time.Second)

	if _, dist, ok := ldrAt(nw, 0).RouteTo(4); !ok || dist != 4 {
		t.Fatalf("node 0 route to 4: dist=%d ok=%v, want 4", dist, ok)
	}
	if got := nw.Collector.ControlInitiated(metrics.RREP); got != destRREPs+1 {
		t.Fatalf("second discovery initiated %d RREPs, want exactly 1 (from the relay)", got-destRREPs)
	}
}
