// Package loopcheck verifies LDR's central claims at runtime: that the
// successor graph toward every destination is loop-free at every instant
// (Theorem 4) and that the (sequence number, feasible distance) labels
// along every successor path satisfy the ordering criterion (Theorem 2).
//
// The checker walks the instantaneous routing tables of all nodes — a
// god's-eye view no protocol has — so it lives outside the protocols and
// is hooked into simulations by tests, benchmarks, and the invariants
// example.
package loopcheck

import (
	"fmt"

	"github.com/manetlab/ldr/internal/routing"
)

// Violation describes one invariant breach.
type Violation struct {
	Dst   routing.NodeID
	Cycle []routing.NodeID // the offending successor cycle, if any
	Msg   string
}

// Error renders the violation.
func (v Violation) Error() string {
	if len(v.Cycle) > 0 {
		return fmt.Sprintf("loopcheck: routing loop toward %d: %v", v.Dst, v.Cycle)
	}
	return fmt.Sprintf("loopcheck: ordering violation toward %d: %s", v.Dst, v.Msg)
}

// snapshotAll collects every node's valid routes, indexed by destination.
type hop struct {
	node  routing.NodeID
	next  routing.NodeID
	seq   uint64
	fd    int
	hasFD bool
}

// Check inspects the instantaneous routing state of all nodes and returns
// every violation found. Protocols that do not implement
// routing.TableSnapshotter are skipped.
func Check(nodes []*routing.Node) []Violation {
	byDst := make(map[routing.NodeID][]hop)
	for _, n := range nodes {
		snap, ok := n.Protocol().(routing.TableSnapshotter)
		if !ok {
			continue
		}
		for _, e := range snap.SnapshotTable() {
			if !e.Valid {
				continue
			}
			byDst[e.Dst] = append(byDst[e.Dst], hop{
				node:  n.ID(),
				next:  e.Next,
				seq:   e.SeqNo,
				fd:    e.FD,
				hasFD: e.FD > 0,
			})
		}
	}

	var violations []Violation
	for dst, hops := range byDst {
		succ := make(map[routing.NodeID]hop, len(hops))
		for _, h := range hops {
			succ[h.node] = h
		}
		violations = append(violations, checkDst(dst, succ)...)
	}
	return violations
}

// checkDst walks every successor chain toward dst, detecting cycles and
// (when feasible distances are available) ordering-criterion breaches.
func checkDst(dst routing.NodeID, succ map[routing.NodeID]hop) []Violation {
	var violations []Violation
	// state: 0 unvisited, 1 on current path, 2 cleared.
	state := make(map[routing.NodeID]int, len(succ))

	for start := range succ {
		if state[start] != 0 {
			continue
		}
		var path []routing.NodeID
		cur := start
		for {
			if cur == dst {
				break // reached the destination: chain is fine
			}
			h, ok := succ[cur]
			if !ok {
				break // chain leaves the set of valid routes: no loop here
			}
			switch state[cur] {
			case 1:
				// Found a node already on the current path: cycle.
				violations = append(violations, Violation{Dst: dst, Cycle: cycleFrom(path, cur)})
				state[cur] = 2
			case 2:
				// Joins an already-cleared chain.
			default:
				state[cur] = 1
				path = append(path, cur)
				cur = h.next
				continue
			}
			break
		}
		for _, n := range path {
			state[n] = 2
		}
	}

	// Ordering criterion (Theorem 2): for an edge A→B on the successor
	// graph (B = A's next hop, B ≠ dst, both with routes and labels):
	// sn_B > sn_A, or sn_B = sn_A ∧ fd_B < fd_A.
	for _, h := range succ {
		if !h.hasFD || h.next == dst {
			continue
		}
		nh, ok := succ[h.next]
		if !ok || !nh.hasFD {
			continue
		}
		if nh.seq < h.seq {
			violations = append(violations, Violation{
				Dst: dst,
				Msg: fmt.Sprintf("successor %d has older seq (%d) than %d (%d)", h.next, nh.seq, h.node, h.seq),
			})
		} else if nh.seq == h.seq && nh.fd >= h.fd {
			violations = append(violations, Violation{
				Dst: dst,
				Msg: fmt.Sprintf("successor %d fd=%d not below %d fd=%d at equal seq", h.next, nh.fd, h.node, h.fd),
			})
		}
	}
	return violations
}

func cycleFrom(path []routing.NodeID, repeat routing.NodeID) []routing.NodeID {
	for i, n := range path {
		if n == repeat {
			out := append([]routing.NodeID(nil), path[i:]...)
			return append(out, repeat)
		}
	}
	return append([]routing.NodeID(nil), repeat)
}
