// Package loopcheck verifies LDR's central claims at runtime: that the
// successor graph toward every destination is loop-free at every instant
// (Theorem 4) and that the (sequence number, feasible distance) labels
// along every successor path satisfy the ordering criterion (Theorem 2).
//
// The checker walks the instantaneous routing tables of all nodes — a
// god's-eye view no protocol has — so it lives outside the protocols and
// is hooked into simulations by tests, benchmarks, and the invariants
// example.
package loopcheck

import (
	"fmt"

	"github.com/manetlab/ldr/internal/routing"
)

// Violation describes one invariant breach.
type Violation struct {
	Dst   routing.NodeID
	Cycle []routing.NodeID // the offending successor cycle, if any
	Msg   string
}

// Error renders the violation.
func (v Violation) Error() string {
	if len(v.Cycle) > 0 {
		return fmt.Sprintf("loopcheck: routing loop toward %d: %v", v.Dst, v.Cycle)
	}
	return fmt.Sprintf("loopcheck: ordering violation toward %d: %s", v.Dst, v.Msg)
}

// hop is one node's valid route toward some destination.
type hop struct {
	next  routing.NodeID
	seq   uint64
	fd    int
	has   bool // a valid route exists
	hasFD bool // the (seq, fd) label is meaningful
}

// Check inspects the instantaneous routing state of all nodes and returns
// every violation found. Protocols that do not implement
// routing.TableSnapshotter are skipped. One-shot convenience over
// Checker; continuous auditors should hold a Checker and reuse it.
func Check(nodes []*routing.Node) []Violation {
	return NewChecker().Check(nodes)
}

// Checker runs repeated invariant checks over the same network without
// per-check allocation: the successor matrix, DFS state, and snapshot
// buffer are all reused, and nodes/destinations are visited in ascending
// ID order so the violations returned are deterministic. Not safe for
// concurrent use; each worker holds its own Checker.
type Checker struct {
	n       int
	succ    []hop            // n×n matrix: succ[dst*n+node]
	dstUsed []bool           // destinations with ≥1 valid route
	state   []uint8          // DFS: 0 unvisited, 1 on current path, 2 cleared
	path    []routing.NodeID // DFS path scratch
	snap    []routing.RouteEntry
}

// NewChecker returns an empty Checker; it sizes itself to the node count
// on first use.
func NewChecker() *Checker { return &Checker{} }

func (c *Checker) resize(n int) {
	if c.n != n {
		c.n = n
		c.succ = make([]hop, n*n)
		c.dstUsed = make([]bool, n)
		c.state = make([]uint8, n)
		return
	}
	for i := range c.succ {
		c.succ[i] = hop{}
	}
	for i := range c.dstUsed {
		c.dstUsed[i] = false
	}
}

// Check snapshots every node's routing table and returns all loop and
// ordering violations, sorted by destination then discovery order. The
// returned slice is freshly allocated only when violations exist; a clean
// network costs zero allocations once the Checker is warm.
func (c *Checker) Check(nodes []*routing.Node) []Violation {
	c.resize(len(nodes))
	for _, node := range nodes {
		var snap []routing.RouteEntry
		switch p := node.Protocol().(type) {
		case routing.TableAppender:
			c.snap = p.AppendTable(c.snap[:0])
			snap = c.snap
		case routing.TableSnapshotter:
			snap = p.SnapshotTable()
		default:
			continue
		}
		c.addTable(int(node.ID()), snap)
	}
	return c.finish()
}

// CheckTables is the single loop-freedom/ordering predicate over a
// god's-eye view of routing state that has already been snapshotted:
// tables[i] is node i's table (routing.TableAppender output). Both the
// continuous auditor (via Check) and the bounded model checker
// (internal/modelcheck, which holds abstract states rather than live
// networks) evaluate the invariant through this one entry point, so the
// two can never drift.
func (c *Checker) CheckTables(tables [][]routing.RouteEntry) []Violation {
	c.resize(len(tables))
	for id, snap := range tables {
		c.addTable(id, snap)
	}
	return c.finish()
}

// addTable folds one node's snapshot into the successor matrix.
func (c *Checker) addTable(id int, snap []routing.RouteEntry) {
	n := c.n
	for _, e := range snap {
		if !e.Valid || int(e.Dst) < 0 || int(e.Dst) >= n || int(e.Dst) == id {
			continue
		}
		c.succ[int(e.Dst)*n+id] = hop{
			next:  e.Next,
			seq:   e.SeqNo,
			fd:    e.FD,
			has:   true,
			hasFD: e.FD > 0,
		}
		c.dstUsed[e.Dst] = true
	}
}

// finish walks the folded successor matrix for every used destination.
func (c *Checker) finish() []Violation {
	var violations []Violation
	for dst := 0; dst < c.n; dst++ {
		if c.dstUsed[dst] {
			violations = c.checkDst(routing.NodeID(dst), violations)
		}
	}
	return violations
}

// checkDst walks every successor chain toward dst, detecting cycles and
// (when feasible distances are available) ordering-criterion breaches.
func (c *Checker) checkDst(dst routing.NodeID, violations []Violation) []Violation {
	n := c.n
	succ := c.succ[int(dst)*n : int(dst)*n+n]
	for i := range c.state {
		c.state[i] = 0
	}

	for start := 0; start < n; start++ {
		if !succ[start].has || c.state[start] != 0 {
			continue
		}
		path := c.path[:0]
		cur := routing.NodeID(start)
		for {
			if cur == dst {
				break // reached the destination: chain is fine
			}
			i := int(cur)
			if i < 0 || i >= n || !succ[i].has {
				break // chain leaves the set of valid routes: no loop here
			}
			switch c.state[i] {
			case 1:
				// Found a node already on the current path: cycle.
				violations = append(violations, Violation{Dst: dst, Cycle: cycleFrom(path, cur)})
				c.state[i] = 2
			case 2:
				// Joins an already-cleared chain.
			default:
				c.state[i] = 1
				path = append(path, cur)
				cur = succ[i].next
				continue
			}
			break
		}
		for _, id := range path {
			c.state[id] = 2
		}
		c.path = path[:0] // keep any growth for the next chain
	}

	// Ordering criterion (Theorem 2): for an edge A→B on the successor
	// graph (B = A's next hop, B ≠ dst, both with routes and labels):
	// sn_B > sn_A, or sn_B = sn_A ∧ fd_B < fd_A.
	for a := 0; a < n; a++ {
		h := succ[a]
		if !h.has || !h.hasFD || h.next == dst {
			continue
		}
		b := int(h.next)
		if b < 0 || b >= n {
			continue
		}
		nh := succ[b]
		if !nh.has || !nh.hasFD {
			continue
		}
		if nh.seq < h.seq {
			violations = append(violations, Violation{
				Dst: dst,
				Msg: fmt.Sprintf("successor %d has older seq (%d) than %d (%d)", h.next, nh.seq, a, h.seq),
			})
		} else if nh.seq == h.seq && nh.fd >= h.fd {
			violations = append(violations, Violation{
				Dst: dst,
				Msg: fmt.Sprintf("successor %d fd=%d not below %d fd=%d at equal seq", h.next, nh.fd, a, h.fd),
			})
		}
	}
	return violations
}

func cycleFrom(path []routing.NodeID, repeat routing.NodeID) []routing.NodeID {
	for i, n := range path {
		if n == repeat {
			out := append([]routing.NodeID(nil), path[i:]...)
			return append(out, repeat)
		}
	}
	return append([]routing.NodeID(nil), repeat)
}
