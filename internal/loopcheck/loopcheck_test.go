package loopcheck_test

import (
	"strings"
	"testing"

	"github.com/manetlab/ldr/internal/loopcheck"
	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/routing"
)

// fakeProto serves a fixed routing table to the checker.
type fakeProto struct {
	table []routing.RouteEntry
}

func (p *fakeProto) Start()                                         {}
func (p *fakeProto) Stop()                                          {}
func (p *fakeProto) HandleControl(routing.NodeID, routing.Message)  {}
func (p *fakeProto) HandleData(routing.NodeID, *routing.DataPacket) {}
func (p *fakeProto) Originate(*routing.DataPacket)                  {}
func (p *fakeProto) SnapshotTable() []routing.RouteEntry            { return p.table }

// network builds n nodes each serving the given table.
func network(tables map[int][]routing.RouteEntry, n int) []*routing.Node {
	nw := routing.NewNetwork(n, mobility.Line(n, 250), radio.DefaultConfig(), mac.DefaultConfig(), 1,
		func(node *routing.Node) routing.Protocol {
			return &fakeProto{table: tables[int(node.ID())]}
		})
	return nw.Nodes
}

func TestCleanChainPasses(t *testing.T) {
	// 0→1→2→3 toward destination 3 with proper (seq, fd) ordering.
	tables := map[int][]routing.RouteEntry{
		0: {{Dst: 3, Next: 1, Metric: 3, SeqNo: 5, FD: 3, Valid: true}},
		1: {{Dst: 3, Next: 2, Metric: 2, SeqNo: 5, FD: 2, Valid: true}},
		2: {{Dst: 3, Next: 3, Metric: 1, SeqNo: 5, FD: 1, Valid: true}},
	}
	if vs := loopcheck.Check(network(tables, 4)); len(vs) != 0 {
		t.Fatalf("clean chain flagged: %v", vs)
	}
}

func TestDetectsTwoNodeLoop(t *testing.T) {
	tables := map[int][]routing.RouteEntry{
		0: {{Dst: 3, Next: 1, Metric: 2, Valid: true}},
		1: {{Dst: 3, Next: 0, Metric: 2, Valid: true}},
	}
	vs := loopcheck.Check(network(tables, 4))
	if len(vs) == 0 {
		t.Fatal("0↔1 loop not detected")
	}
	if len(vs[0].Cycle) == 0 {
		t.Fatalf("violation carries no cycle: %v", vs[0])
	}
}

func TestDetectsLongLoopOffPath(t *testing.T) {
	// 0 → 1 → 2 → 3 → 1: the cycle excludes the entry node 0.
	tables := map[int][]routing.RouteEntry{
		0: {{Dst: 9, Next: 1, Valid: true}},
		1: {{Dst: 9, Next: 2, Valid: true}},
		2: {{Dst: 9, Next: 3, Valid: true}},
		3: {{Dst: 9, Next: 1, Valid: true}},
	}
	vs := loopcheck.Check(network(tables, 10))
	if len(vs) == 0 {
		t.Fatal("1→2→3→1 loop not detected")
	}
}

func TestInvalidRoutesIgnored(t *testing.T) {
	tables := map[int][]routing.RouteEntry{
		0: {{Dst: 3, Next: 1, Valid: false}},
		1: {{Dst: 3, Next: 0, Valid: false}},
	}
	if vs := loopcheck.Check(network(tables, 4)); len(vs) != 0 {
		t.Fatalf("invalid routes produced violations: %v", vs)
	}
}

func TestOrderingViolationSeqno(t *testing.T) {
	// Successor holds an *older* sequence number: breach of Theorem 2.
	tables := map[int][]routing.RouteEntry{
		0: {{Dst: 3, Next: 1, Metric: 3, SeqNo: 6, FD: 3, Valid: true}},
		1: {{Dst: 3, Next: 3, Metric: 1, SeqNo: 5, FD: 1, Valid: true}},
	}
	vs := loopcheck.Check(network(tables, 4))
	if len(vs) == 0 {
		t.Fatal("seqno ordering violation not detected")
	}
	if !strings.Contains(vs[0].Error(), "older seq") {
		t.Fatalf("unexpected violation text: %v", vs[0])
	}
}

func TestOrderingViolationFD(t *testing.T) {
	// Equal seq but the successor's fd is not strictly smaller.
	tables := map[int][]routing.RouteEntry{
		0: {{Dst: 3, Next: 1, Metric: 3, SeqNo: 5, FD: 2, Valid: true}},
		1: {{Dst: 3, Next: 3, Metric: 1, SeqNo: 5, FD: 2, Valid: true}},
	}
	vs := loopcheck.Check(network(tables, 4))
	if len(vs) == 0 {
		t.Fatal("fd ordering violation not detected")
	}
	if !strings.Contains(vs[0].Error(), "fd") {
		t.Fatalf("unexpected violation text: %v", vs[0])
	}
}

func TestFDCheckSkippedWithoutLabels(t *testing.T) {
	// AODV-style tables (FD = 0) must only be loop-checked.
	tables := map[int][]routing.RouteEntry{
		0: {{Dst: 3, Next: 1, Metric: 3, SeqNo: 9, Valid: true}},
		1: {{Dst: 3, Next: 3, Metric: 1, SeqNo: 5, Valid: true}},
	}
	if vs := loopcheck.Check(network(tables, 4)); len(vs) != 0 {
		t.Fatalf("label checks applied to unlabeled tables: %v", vs)
	}
}

func TestChainsMergingAreNotLoops(t *testing.T) {
	// Two branches converge on node 2 then reach the destination: a DAG,
	// not a loop.
	tables := map[int][]routing.RouteEntry{
		0: {{Dst: 4, Next: 2, Valid: true}},
		1: {{Dst: 4, Next: 2, Valid: true}},
		2: {{Dst: 4, Next: 3, Valid: true}},
		3: {{Dst: 4, Next: 4, Valid: true}},
	}
	if vs := loopcheck.Check(network(tables, 5)); len(vs) != 0 {
		t.Fatalf("converging DAG flagged as loop: %v", vs)
	}
}
