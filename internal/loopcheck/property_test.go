package loopcheck_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/manetlab/ldr/internal/loopcheck"
	"github.com/manetlab/ldr/internal/routing"
)

// naiveHasCycle is the oracle: follow the successor chain from every node
// with a step budget; exceeding n steps without reaching the destination
// or a dead end means a cycle.
func naiveHasCycle(dst routing.NodeID, succ map[routing.NodeID]routing.NodeID, n int) bool {
	for start := range succ {
		cur := start
		for steps := 0; steps <= n; steps++ {
			if cur == dst {
				break
			}
			next, ok := succ[cur]
			if !ok {
				break
			}
			if steps == n {
				return true
			}
			cur = next
		}
	}
	return false
}

// TestDetectorAgreesWithNaiveOracle drives the cycle detector with random
// successor graphs and cross-checks it against brute force.
func TestDetectorAgreesWithNaiveOracle(t *testing.T) {
	f := func(raw []uint8) bool {
		const n = 12
		const dst = routing.NodeID(0)
		succ := make(map[routing.NodeID]routing.NodeID)
		tables := make(map[int][]routing.RouteEntry)
		for i, v := range raw {
			node := routing.NodeID(i%n + 1) // nodes 1..n-1 may have routes
			next := routing.NodeID(int(v) % (n + 1))
			if next == node {
				continue // self-successor is not representable table state
			}
			if _, dup := succ[node]; dup {
				continue // one entry per node per destination
			}
			succ[node] = next
			tables[int(node)] = append(tables[int(node)], routing.RouteEntry{
				Dst: dst, Next: next, Valid: true,
			})
		}
		nodes := network(tables, n+1)
		got := false
		for _, v := range loopcheck.Check(nodes) {
			if len(v.Cycle) > 0 {
				got = true
			}
		}
		want := naiveHasCycle(dst, succ, n+2)
		return got == want
	}
	cfg := &quick.Config{MaxCount: 1500, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
