// Package experiments regenerates every table and figure in the LDR
// paper's evaluation (§4). Each experiment runs the corresponding
// scenario sweep, aggregates trials into mean ± 95% CI, and renders the
// same rows/series the paper reports.
//
// Scale knobs: Options.SimTime and Options.Trials default to a reduced
// configuration that preserves the paper's comparative shape while
// completing in minutes on a laptop; passing 900 s and 10 trials
// reproduces the paper's full setup.
//
// Every experiment first enumerates its full list of scenario cells,
// fans them out across Options.Workers goroutines via internal/sweep,
// then aggregates and renders serially in enumeration order — so the
// rendered output is byte-identical whatever the worker count.
package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/manetlab/ldr/internal/adversary"
	"github.com/manetlab/ldr/internal/fault"
	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/stats"
	"github.com/manetlab/ldr/internal/sweep"
	"github.com/manetlab/ldr/internal/traffic"
)

// Options control experiment scale and output.
type Options struct {
	Trials    int           // random seeds per configuration (paper: 10)
	SimTime   time.Duration // simulated seconds per run (paper: 900 s)
	Out       io.Writer     // rendered tables/series
	BaseSeed  int64         // first seed; trials use BaseSeed..BaseSeed+Trials-1
	Protocols []scenario.ProtocolName

	// Workers is the number of scenario cells simulated concurrently.
	// Zero selects GOMAXPROCS; 1 forces the serial path. Output is
	// byte-identical at every setting.
	Workers int

	// FaultProfiles selects the fault profiles the Chaos experiment
	// sweeps (nil = all built-ins, see fault.ProfileNames).
	FaultProfiles []string

	// AdversaryProfiles selects the attack profiles the Adversary
	// experiment sweeps (nil = all built-ins, see adversary.ProfileNames).
	AdversaryProfiles []string

	// AuditCadence is the continuous-audit snapshot period used by the
	// Chaos experiment; zero selects 100 ms.
	AuditCadence time.Duration

	// Mobility, TrafficPattern, Radio, Density, and AdaptiveTimeout apply
	// the scenario-diversity axes to every cell of the experiment being
	// run (""/false select the paper's waypoint + CBR + uniform-disk +
	// uniform-placement + constant-timeout setup), so the chaos and
	// adversary matrices compose with the new models. The Mobility
	// experiment sweeps models itself and ignores o.Mobility; the Radio
	// experiment likewise sweeps radio and density profiles.
	Mobility        string
	TrafficPattern  string
	Radio           string
	Density         string
	AdaptiveTimeout bool

	// Progress, when non-nil, receives live cell counters for the sweep
	// currently running (see sweep.Progress).
	Progress *sweep.Progress

	// Exec carries the sweep resilience options — journal, per-cell
	// watchdog, keep-going quarantine, bounded retry — through to every
	// experiment's sweep (see sweep.ExecOptions). The journal scope is
	// per payload type ("metrics", "chaos", "adversary"), set by the
	// experiment; Exec.Scope is ignored. Under Exec.KeepGoing an
	// experiment with quarantined cells still renders its tables —
	// failed cells contribute zero-valued samples — and then returns the
	// sweep.Failures error so callers can write the manifest.
	Exec sweep.ExecOptions
}

// Defaults fills unset options with the reduced-scale defaults.
func (o Options) Defaults() Options {
	if o.Trials == 0 {
		o.Trials = 3
	}
	if o.SimTime == 0 {
		o.SimTime = 300 * time.Second
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if len(o.Protocols) == 0 {
		o.Protocols = scenario.AllProtocols
	}
	if len(o.FaultProfiles) == 0 {
		o.FaultProfiles = fault.ProfileNames()
	}
	if len(o.AdversaryProfiles) == 0 {
		o.AdversaryProfiles = adversary.ProfileNames()
	}
	if o.AuditCadence == 0 {
		o.AuditCadence = 100 * time.Millisecond
	}
	return o
}

func (o Options) sweepOptions() sweep.Options {
	return sweep.Options{Workers: o.Workers, Progress: o.Progress}
}

// execOptions is sweepOptions plus the resilience layer, with the journal
// scope pinned to the experiment's payload type so a "metrics" record can
// never be decoded as a "chaos" one from a shared journal directory.
func (o Options) execOptions(scope string) sweep.Options {
	so := o.sweepOptions()
	so.Exec = o.Exec
	so.Exec.Scope = scope
	return so
}

// applyDiversity stamps the options' scenario-diversity axes onto one
// cell config.
func (o Options) applyDiversity(cfg *scenario.Config) {
	cfg.Mobility = o.Mobility
	cfg.TrafficPattern = traffic.Pattern(o.TrafficPattern)
	cfg.Radio = o.Radio
	cfg.Density = o.Density
	cfg.AdaptiveTimeout = o.AdaptiveTimeout
}

// runMetrics is the per-run measurement vector (Table 1's columns). The
// fields are exported with JSON tags because journaled sweeps persist one
// runMetrics per cell; every field must round-trip through encoding/json
// exactly for resumed output to stay byte-identical.
type runMetrics struct {
	Delivery float64 `json:"delivery"`  // %
	Latency  float64 `json:"latency"`   // ms
	NetLoad  float64 `json:"net_load"`  // control pkts per received data pkt
	RREQLoad float64 `json:"rreq_load"` // RREQs per received data pkt
	RREPInit float64 `json:"rrep_init"` // RREPs initiated per RREQ initiated
	RREPRecv float64 `json:"rrep_recv"` // usable RREPs received per RREQ initiated
	Seqno    float64 `json:"seqno"`     // mean destination sequence number
}

func run(cfg scenario.Config, ctls ...*scenario.Control) (runMetrics, error) {
	res, err := scenario.RunWithControl(cfg, ctls...)
	if err != nil {
		return runMetrics{}, err
	}
	c := res.Collector
	return runMetrics{
		Delivery: 100 * c.DeliveryRatio(),
		Latency:  float64(c.MeanLatency()) / float64(time.Millisecond),
		NetLoad:  c.NetworkLoad(),
		RREQLoad: c.RREQLoad(),
		RREPInit: c.RREPInitPerRREQ(),
		RREPRecv: c.RREPRecvPerRREQ(),
		Seqno:    c.MeanSeqno(),
	}, nil
}

// runAll executes every cell across the worker pool and returns per-cell
// metrics in input order, journaled under the "metrics" scope when
// Options.Exec carries a journal. Under Exec.KeepGoing both the partial
// metrics (failed cells zero-valued) and the sweep.Failures error are
// returned; callers render the partial table and propagate the error.
func runAll(cfgs []scenario.Config, o Options) ([]runMetrics, error) {
	return sweep.RunCells(cfgs, o.execOptions("metrics"), func(i int, ctl *scenario.Control) (runMetrics, error) {
		return run(cfgs[i], ctl, o.Exec.Control)
	})
}

// trialSeeds yields the seed list for one configuration cell.
func (o Options) trialSeeds() []int64 {
	seeds := make([]int64, o.Trials)
	for i := range seeds {
		seeds[i] = o.BaseSeed + int64(i)
	}
	return seeds
}

// Table1 reproduces the paper's Table 1: for each flow count, every
// metric averaged over all pause times and both the 50- and 100-node
// scenarios, reported as mean ± 95% CI per protocol.
func Table1(o Options) error {
	o = o.Defaults()
	pauses := scenario.PauseTimes(o.SimTime)
	flowCounts := []int{10, 30}

	// Enumerate the full table as one flat cell list so the sweep can
	// keep every worker busy across protocol and flow sections; each
	// (flows, proto) row is a contiguous block of perRow cells.
	perRow := len(pauses) * o.Trials * 2
	var cfgs []scenario.Config
	for _, flows := range flowCounts {
		for _, proto := range o.Protocols {
			for _, pause := range pauses {
				for _, seed := range o.trialSeeds() {
					for _, build := range []func(scenario.ProtocolName, int, time.Duration, int64) scenario.Config{
						scenario.Nodes50, scenario.Nodes100,
					} {
						cfg := build(proto, flows, pause, seed)
						cfg.SimTime = o.SimTime
						o.applyDiversity(&cfg)
						cfgs = append(cfgs, cfg)
					}
				}
			}
		}
	}
	ms, err := runAll(cfgs, o)
	if ms == nil {
		return err
	}

	idx := 0
	for _, flows := range flowCounts {
		fmt.Fprintf(o.Out, "\nTable 1 — %d flows (mean ± 95%% CI over pause times × {50,100} nodes × %d trials, %v sim)\n",
			flows, o.Trials, o.SimTime)
		fmt.Fprintf(o.Out, "%-8s %16s %16s %16s %16s %16s %16s\n",
			"proto", "delivery %", "latency ms", "net load", "rreq load", "rrep init", "rrep recv")
		for _, proto := range o.Protocols {
			row := summarizeRuns(ms[idx : idx+perRow])
			idx += perRow
			fmt.Fprintf(o.Out, "%-8s %s %s %s %s %s %s\n", proto,
				ci(row.delivery), ci(row.latency), ci(row.netLoad),
				ci(row.rreqLoad), ci(row.rrepInit), ci(row.rrepRecv))
		}
	}
	return err
}

type summaries struct {
	delivery, latency, netLoad, rreqLoad, rrepInit, rrepRecv, seqno stats.Summary
}

func summarizeRuns(ms []runMetrics) summaries {
	col := func(f func(runMetrics) float64) stats.Summary {
		xs := make([]float64, len(ms))
		for i, m := range ms {
			xs[i] = f(m)
		}
		return stats.Summarize(xs)
	}
	return summaries{
		delivery: col(func(m runMetrics) float64 { return m.Delivery }),
		latency:  col(func(m runMetrics) float64 { return m.Latency }),
		netLoad:  col(func(m runMetrics) float64 { return m.NetLoad }),
		rreqLoad: col(func(m runMetrics) float64 { return m.RREQLoad }),
		rrepInit: col(func(m runMetrics) float64 { return m.RREPInit }),
		rrepRecv: col(func(m runMetrics) float64 { return m.RREPRecv }),
		seqno:    col(func(m runMetrics) float64 { return m.Seqno }),
	}
}

func ci(s stats.Summary) string {
	return fmt.Sprintf("%8.2f ±%5.2f", s.Mean, s.CI95)
}

// DeliveryFigure reproduces Figs. 2–5: delivery ratio vs pause time for
// one (node count, flow count) cell, one series per protocol.
func DeliveryFigure(o Options, id string, nodes, flows int) error {
	o = o.Defaults()
	pauses := scenario.PauseTimes(o.SimTime)

	var cfgs []scenario.Config
	for _, pause := range pauses {
		for _, proto := range o.Protocols {
			for _, seed := range o.trialSeeds() {
				cfg := cell(proto, nodes, flows, pause, seed)
				cfg.SimTime = o.SimTime
				o.applyDiversity(&cfg)
				cfgs = append(cfgs, cfg)
			}
		}
	}
	ms, err := runAll(cfgs, o)
	if ms == nil {
		return err
	}

	fmt.Fprintf(o.Out, "\n%s — delivery ratio vs pause time (%d nodes, %d flows, %v sim, %d trials)\n",
		id, nodes, flows, o.SimTime, o.Trials)
	fmt.Fprintf(o.Out, "%-8s", "pause_s")
	for _, proto := range o.Protocols {
		fmt.Fprintf(o.Out, " %18s", proto)
	}
	fmt.Fprintln(o.Out)

	idx := 0
	for _, pause := range pauses {
		fmt.Fprintf(o.Out, "%-8.0f", pause.Seconds())
		for range o.Protocols {
			xs := make([]float64, o.Trials)
			for t := 0; t < o.Trials; t++ {
				xs[t] = ms[idx].Delivery
				idx++
			}
			s := stats.Summarize(xs)
			fmt.Fprintf(o.Out, "    %7.2f ±%5.2f", s.Mean, s.CI95)
		}
		fmt.Fprintln(o.Out)
	}
	return err
}

func cell(proto scenario.ProtocolName, nodes, flows int, pause time.Duration, seed int64) scenario.Config {
	if nodes == 100 {
		return scenario.Nodes100(proto, flows, pause, seed)
	}
	cfg := scenario.Nodes50(proto, flows, pause, seed)
	cfg.Nodes = nodes
	return cfg
}

// Fig6 reproduces the QualNet cross-check: the Fig. 3 scenario (50 nodes,
// 30 flows) re-run with the draft-7 DSR variant against AODV — DSR
// improves slightly but keeps its downward mobility trend.
func Fig6(o Options) error {
	o.Protocols = []scenario.ProtocolName{scenario.AODV, scenario.DSR, scenario.DSR7}
	return DeliveryFigure(o, "Fig 6 (QualNet cross-check: DSR draft 3 vs draft 7)", 50, 30)
}

// Fig7 reproduces the mean destination sequence number comparison between
// LDR and AODV at low (10-flow) and high (30-flow) load. The paper's
// headline: LDR's means stay below ~1.5 while AODV's grow by orders of
// magnitude, because only LDR destinations control their own numbers.
func Fig7(o Options) error {
	o = o.Defaults()
	pauses := scenario.PauseTimes(o.SimTime)
	flowCounts := []int{10, 30}
	protos := []scenario.ProtocolName{scenario.LDR, scenario.AODV}

	var cfgs []scenario.Config
	for _, pause := range pauses {
		for _, flows := range flowCounts {
			for _, proto := range protos {
				for _, seed := range o.trialSeeds() {
					cfg := scenario.Nodes50(proto, flows, pause, seed)
					cfg.SimTime = o.SimTime
					o.applyDiversity(&cfg)
					cfgs = append(cfgs, cfg)
				}
			}
		}
	}
	ms, err := runAll(cfgs, o)
	if ms == nil {
		return err
	}

	fmt.Fprintf(o.Out, "\nFig 7 — mean destination sequence number (50 nodes, %v sim, %d trials)\n",
		o.SimTime, o.Trials)
	fmt.Fprintf(o.Out, "%-8s %18s %18s %18s %18s\n",
		"pause_s", "ldr-10f", "aodv-10f", "ldr-30f", "aodv-30f")
	idx := 0
	for _, pause := range pauses {
		fmt.Fprintf(o.Out, "%-8.0f", pause.Seconds())
		for range flowCounts {
			for range protos {
				xs := make([]float64, o.Trials)
				for t := 0; t < o.Trials; t++ {
					xs[t] = ms[idx].Seqno
					idx++
				}
				s := stats.Summarize(xs)
				fmt.Fprintf(o.Out, "    %7.2f ±%5.2f", s.Mean, s.CI95)
			}
		}
		fmt.Fprintln(o.Out)
	}
	return err
}
