package experiments

// ModelCheck sweeps the bounded model checker over every non-isomorphic
// connected 3- and 4-node topology per protocol — the exhaustive
// small-world complement to the statistical sweeps: each cell explores
// every message interleaving, loss, and crash schedule within its
// budgets and checks the loopcheck invariants at every reachable state.

import (
	"fmt"

	"github.com/manetlab/ldr/internal/modelcheck"
	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/sweep"
)

// mcCell is one (protocol × topology) exploration with its budgets.
type mcCell struct {
	proto string
	graph modelcheck.Graph
	opts  modelcheck.Options
}

// mcOptions picks exploration budgets by topology size. Three-node
// graphs get the full van Glabbeek regime (a crash AND a loss in the
// same schedule); four-node graphs branch far wider, so they trade the
// loss budget and two levels of depth for tractability (the K4 cell is
// ~600k states as it stands).
func mcOptions(n int) modelcheck.Options {
	if n <= 3 {
		return modelcheck.Options{MaxDepth: 12, MaxResets: 1, MaxDrops: 1}
	}
	return modelcheck.Options{MaxDepth: 10, MaxResets: 1}
}

// ModelCheck runs the sweep and renders one row per cell: distinct
// states, transitions, and the verdict. LDR must come out clean on every
// topology; AODV's line violations are the van Glabbeek result and are
// reported, not failed. Only protocols with model-checker state hooks
// (ldr, aodv) participate; others in Options.Protocols are skipped with
// a note.
func ModelCheck(o Options) error {
	o = o.Defaults()

	var protos []string
	var skipped []string
	for _, p := range o.Protocols {
		if modelcheck.Supports(string(p)) {
			protos = append(protos, string(p))
		} else {
			skipped = append(skipped, string(p))
		}
	}

	var graphs []modelcheck.Graph
	for _, n := range []int{3, 4} {
		gs, err := modelcheck.ConnectedGraphs(n)
		if err != nil {
			return err
		}
		graphs = append(graphs, gs...)
	}

	var cells []mcCell
	for _, p := range protos {
		for _, g := range graphs {
			cells = append(cells, mcCell{proto: p, graph: g, opts: mcOptions(g.N)})
		}
	}

	results := make([]*modelcheck.Result, len(cells))
	err := sweep.Each(len(cells), o.sweepOptions(), func(i int) error {
		c := cells[i]
		sc := &modelcheck.Scenario{Graph: c.graph, Protocol: c.proto, Seed: o.BaseSeed}
		res, err := modelcheck.Check(sc, c.opts)
		if err != nil {
			return fmt.Errorf("%s on %s: %w", c.proto, c.graph, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(o.Out, "\nModel check: bounded-exhaustive exploration, loopcheck invariants at every state\n")
	fmt.Fprintf(o.Out, "%-8s %-28s %5s %5s %6s %9s %12s  %s\n",
		"proto", "graph", "depth", "drops", "resets", "states", "transitions", "result")
	violations := map[string]int{}
	for i, c := range cells {
		res := results[i]
		verdict := "clean"
		if res.Truncated {
			verdict = "truncated"
		}
		if res.Violation != nil {
			verdict = fmt.Sprintf("VIOLATION in %d steps", len(res.Violation.Trace))
			violations[c.proto]++
		}
		fmt.Fprintf(o.Out, "%-8s %-28s %5d %5d %6d %9d %12d  %s\n",
			c.proto, c.graph, c.opts.MaxDepth, c.opts.MaxDrops, c.opts.MaxResets,
			res.States, res.Transitions, verdict)
	}
	for _, p := range protos {
		fmt.Fprintf(o.Out, "%s: %d/%d topologies violating\n", p, violations[p], len(graphs))
	}
	for _, p := range skipped {
		fmt.Fprintf(o.Out, "%s: skipped (no model-checker state hooks)\n", p)
	}
	if violations[string(scenario.LDR)] > 0 {
		return fmt.Errorf("experiments: LDR violated loop freedom in the model-check sweep")
	}
	return nil
}
