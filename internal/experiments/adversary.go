package experiments

import (
	"fmt"

	"github.com/manetlab/ldr/internal/adversary"
	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/sweep"
)

// advMetrics is the per-run measurement vector for the Adversary table.
type advMetrics struct {
	delivery float64 // %
	ctrlTx   uint64  // hop-wise control transmissions (CAF numerator/denominator)
	loops    uint64  // honest-subgraph successor cycles flagged by the auditor
	ordering uint64  // (seq, fd) ordering-criterion breaches
	advDrops uint64  // data packets blackholed/grayholed (DropAdversary)
	forged   uint64  // inflated-seqno RREPs forged
	replayed uint64  // stale recorded messages re-broadcast
	storm    uint64  // forged RREQs + RERRs flooded
	feasRej  uint64  // LDR NDC refusals of advertisements
	suppr    uint64  // RREQs + RERRs discarded by receive rate limiting
}

func advRun(cfg scenario.Config) (advMetrics, error) {
	res, err := scenario.Run(cfg)
	if err != nil {
		return advMetrics{}, err
	}
	c := res.Collector
	return advMetrics{
		delivery: 100 * c.DeliveryRatio(),
		ctrlTx:   c.TotalControlTransmitted(),
		loops:    c.LoopViolations,
		ordering: c.OrderingViolations,
		advDrops: c.DroppedBy(metrics.DropAdversary),
		forged:   res.Adversary.ForgedRREPs,
		replayed: res.Adversary.Replayed,
		storm:    res.Adversary.StormRREQs + res.Adversary.StormRERRs,
		feasRej:  c.FeasibilityRejections,
		suppr:    c.RREQSuppressed + c.RERRSuppressed,
	}, nil
}

// Adversary runs the attack-impact comparison: every protocol under every
// adversary profile, each attacked run paired with an attack-free baseline
// on the same seed so the control-amplification factor (CAF = attacked
// control transmissions / baseline control transmissions, averaged over
// per-seed ratios) isolates the attack's cost from normal protocol
// chatter. The continuous loopcheck auditor scores the honest subgraph
// throughout: compromised nodes expose empty tables, so a non-zero loop
// count means honest nodes were stitched into a cycle by forged state —
// the AODV failure mode under seqno-forge that LDR's feasibility condition
// (NDC) refuses, visible in the feas_rej column.
//
// Cells fan out across Options.Workers and are aggregated in enumeration
// order, so the rendered table is byte-identical at any worker count.
func Adversary(o Options) error {
	o = o.Defaults()

	type cellKey struct {
		profile string
		proto   scenario.ProtocolName
	}
	var cfgs []scenario.Config
	var keys []cellKey
	for _, profile := range o.AdversaryProfiles {
		plan, err := adversary.Profile(profile, 50, o.SimTime)
		if err != nil {
			return err
		}
		for _, proto := range o.Protocols {
			keys = append(keys, cellKey{profile, proto})
			for _, seed := range o.trialSeeds() {
				// Baseline first, attacked second: advAgg consumes pairs.
				base := scenario.Nodes50(proto, 10, 0, seed)
				base.SimTime = o.SimTime
				base.AuditCadence = o.AuditCadence
				o.applyDiversity(&base)
				cfgs = append(cfgs, base)

				attacked := base
				if len(plan.Compromises) > 0 {
					p := plan
					attacked.AdversaryPlan = &p
				}
				cfgs = append(cfgs, attacked)
			}
		}
	}

	ms := make([]advMetrics, len(cfgs))
	err := sweep.Each(len(cfgs), o.sweepOptions(), func(i int) error {
		m, err := advRun(cfgs[i])
		if err != nil {
			return err
		}
		ms[i] = m
		return nil
	})
	if err != nil {
		return err
	}

	idx := 0
	lastProfile := ""
	for _, k := range keys {
		if k.profile != lastProfile {
			lastProfile = k.profile
			fmt.Fprintf(o.Out, "\nAdversary — profile %s (50 nodes, 10 flows, %v sim, audit every %v, %d trials)\n",
				k.profile, o.SimTime, o.AuditCadence, o.Trials)
			fmt.Fprintf(o.Out, "%-8s %16s %16s %7s %9s %7s %8s %7s %8s %7s %6s %6s\n",
				"proto", "delivery %", "baseline %", "caf",
				"advdrop", "forged", "replay", "storm", "feasrej", "suppr", "loops", "order")
		}
		var attacked, baseline, cafs []float64
		agg := advMetrics{}
		for t := 0; t < o.Trials; t++ {
			b, a := ms[idx], ms[idx+1]
			idx += 2
			baseline = append(baseline, b.delivery)
			attacked = append(attacked, a.delivery)
			if b.ctrlTx > 0 {
				cafs = append(cafs, float64(a.ctrlTx)/float64(b.ctrlTx))
			}
			agg.loops += a.loops
			agg.ordering += a.ordering
			agg.advDrops += a.advDrops
			agg.forged += a.forged
			agg.replayed += a.replayed
			agg.storm += a.storm
			agg.feasRej += a.feasRej
			agg.suppr += a.suppr
		}
		fmt.Fprintf(o.Out, "%-8s %s %s %7.2f %9d %7d %8d %7d %8d %7d %6d %6d\n",
			k.proto, ciOf(attacked), ciOf(baseline), mean(cafs),
			agg.advDrops, agg.forged, agg.replayed, agg.storm,
			agg.feasRej, agg.suppr, agg.loops, agg.ordering)
	}
	return nil
}
