package experiments

import (
	"fmt"

	"github.com/manetlab/ldr/internal/adversary"
	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/sweep"
)

// advMetrics is the per-run measurement vector for the Adversary table.
// Exported fields with JSON tags because journaled adversary sweeps
// persist one advMetrics per cell (scope "adversary"); the counters are
// integers, so the round trip is exact and resumed tables stay
// byte-identical.
type advMetrics struct {
	Delivery float64 `json:"delivery"`  // %
	CtrlTx   uint64  `json:"ctrl_tx"`   // hop-wise control transmissions (CAF numerator/denominator)
	Loops    uint64  `json:"loops"`     // honest-subgraph successor cycles flagged by the auditor
	Ordering uint64  `json:"ordering"`  // (seq, fd) ordering-criterion breaches
	AdvDrops uint64  `json:"adv_drops"` // data packets blackholed/grayholed (DropAdversary)
	Forged   uint64  `json:"forged"`    // inflated-seqno RREPs forged
	Replayed uint64  `json:"replayed"`  // stale recorded messages re-broadcast
	Storm    uint64  `json:"storm"`     // forged RREQs + RERRs flooded
	FeasRej  uint64  `json:"feas_rej"`  // LDR NDC refusals of advertisements
	Suppr    uint64  `json:"suppr"`     // RREQs + RERRs discarded by receive rate limiting
}

func advRun(cfg scenario.Config, ctls ...*scenario.Control) (advMetrics, error) {
	res, err := scenario.RunWithControl(cfg, ctls...)
	if err != nil {
		return advMetrics{}, err
	}
	c := res.Collector
	return advMetrics{
		Delivery: 100 * c.DeliveryRatio(),
		CtrlTx:   c.TotalControlTransmitted(),
		Loops:    c.LoopViolations,
		Ordering: c.OrderingViolations,
		AdvDrops: c.DroppedBy(metrics.DropAdversary),
		Forged:   res.Adversary.ForgedRREPs,
		Replayed: res.Adversary.Replayed,
		Storm:    res.Adversary.StormRREQs + res.Adversary.StormRERRs,
		FeasRej:  c.FeasibilityRejections,
		Suppr:    c.RREQSuppressed + c.RERRSuppressed,
	}, nil
}

// Adversary runs the attack-impact comparison: every protocol under every
// adversary profile, each attacked run paired with an attack-free baseline
// on the same seed so the control-amplification factor (CAF = attacked
// control transmissions / baseline control transmissions, averaged over
// per-seed ratios) isolates the attack's cost from normal protocol
// chatter. The continuous loopcheck auditor scores the honest subgraph
// throughout: compromised nodes expose empty tables, so a non-zero loop
// count means honest nodes were stitched into a cycle by forged state —
// the AODV failure mode under seqno-forge that LDR's feasibility condition
// (NDC) refuses, visible in the feas_rej column.
//
// Cells fan out across Options.Workers and are aggregated in enumeration
// order, so the rendered table is byte-identical at any worker count.
func Adversary(o Options) error {
	o = o.Defaults()

	type cellKey struct {
		profile string
		proto   scenario.ProtocolName
	}
	var cfgs []scenario.Config
	var keys []cellKey
	for _, profile := range o.AdversaryProfiles {
		plan, err := adversary.Profile(profile, 50, o.SimTime)
		if err != nil {
			return err
		}
		for _, proto := range o.Protocols {
			keys = append(keys, cellKey{profile, proto})
			for _, seed := range o.trialSeeds() {
				// Baseline first, attacked second: advAgg consumes pairs.
				base := scenario.Nodes50(proto, 10, 0, seed)
				base.SimTime = o.SimTime
				base.AuditCadence = o.AuditCadence
				o.applyDiversity(&base)
				cfgs = append(cfgs, base)

				attacked := base
				if len(plan.Compromises) > 0 {
					p := plan
					attacked.AdversaryPlan = &p
				}
				cfgs = append(cfgs, attacked)
			}
		}
	}

	ms, err := sweep.RunCells(cfgs, o.execOptions("adversary"), func(i int, ctl *scenario.Control) (advMetrics, error) {
		return advRun(cfgs[i], ctl, o.Exec.Control)
	})
	if ms == nil {
		return err
	}

	idx := 0
	lastProfile := ""
	for _, k := range keys {
		if k.profile != lastProfile {
			lastProfile = k.profile
			fmt.Fprintf(o.Out, "\nAdversary — profile %s (50 nodes, 10 flows, %v sim, audit every %v, %d trials)\n",
				k.profile, o.SimTime, o.AuditCadence, o.Trials)
			fmt.Fprintf(o.Out, "%-8s %16s %16s %7s %9s %7s %8s %7s %8s %7s %6s %6s\n",
				"proto", "delivery %", "baseline %", "caf",
				"advdrop", "forged", "replay", "storm", "feasrej", "suppr", "loops", "order")
		}
		var attacked, baseline, cafs []float64
		agg := advMetrics{}
		for t := 0; t < o.Trials; t++ {
			b, a := ms[idx], ms[idx+1]
			idx += 2
			baseline = append(baseline, b.Delivery)
			attacked = append(attacked, a.Delivery)
			if b.CtrlTx > 0 {
				cafs = append(cafs, float64(a.CtrlTx)/float64(b.CtrlTx))
			}
			agg.Loops += a.Loops
			agg.Ordering += a.Ordering
			agg.AdvDrops += a.AdvDrops
			agg.Forged += a.Forged
			agg.Replayed += a.Replayed
			agg.Storm += a.Storm
			agg.FeasRej += a.FeasRej
			agg.Suppr += a.Suppr
		}
		fmt.Fprintf(o.Out, "%-8s %s %s %7.2f %9d %7d %8d %7d %8d %7d %6d %6d\n",
			k.proto, ciOf(attacked), ciOf(baseline), mean(cafs),
			agg.AdvDrops, agg.Forged, agg.Replayed, agg.Storm,
			agg.FeasRej, agg.Suppr, agg.Loops, agg.Ordering)
	}
	return err
}
