package experiments_test

import (
	"strings"
	"testing"

	"github.com/manetlab/ldr/internal/experiments"
	"github.com/manetlab/ldr/internal/scenario"
)

func TestMobilityRendersEveryModel(t *testing.T) {
	var buf strings.Builder
	o := tiny(scenario.LDR, scenario.AODV)
	o.Out = &buf
	if err := experiments.Mobility(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, model := range scenario.Mobilities() {
		if !strings.Contains(out, "Mobility — "+model) {
			t.Fatalf("missing section for %s:\n%s", model, out)
		}
		if !strings.Contains(out, "ranking "+model) {
			t.Fatalf("missing ranking line for %s:\n%s", model, out)
		}
	}
	// Each ranking line orders both protocols.
	if got := strings.Count(out, " > "); got < 2*len(scenario.Mobilities()) {
		t.Fatalf("ranking separators: got %d:\n%s", got, out)
	}
}

func TestMobilityComposesWithDiversityAxes(t *testing.T) {
	var buf strings.Builder
	o := tiny(scenario.LDR)
	o.Out = &buf
	o.TrafficPattern = "bursty"
	o.AdaptiveTimeout = true
	if err := experiments.Mobility(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ranking") {
		t.Fatalf("no output:\n%s", buf.String())
	}
}
