package experiments

import (
	"fmt"
	"time"

	"github.com/manetlab/ldr/internal/core"
	"github.com/manetlab/ldr/internal/scenario"
)

// LDRVariant is one ablation point: an LDR configuration with a single
// optimization removed (or, for the OLSR row, the jitter queue toggled).
type LDRVariant struct {
	Name   string
	Mutate func(*core.Config)
}

// Variants enumerates the ablations of the design choices the paper's §4
// calls out explicitly.
func Variants() []LDRVariant {
	return []LDRVariant{
		{Name: "ldr-full", Mutate: func(*core.Config) {}},
		{Name: "no-multi-rrep", Mutate: func(c *core.Config) { c.MultipleRREPs = false }},
		{Name: "no-req-as-err", Mutate: func(c *core.Config) { c.RequestAsError = false }},
		{Name: "no-reduced-dist", Mutate: func(c *core.Config) { c.ReducedDistance = false }},
		{Name: "no-min-lifetime", Mutate: func(c *core.Config) { c.MinLifetime = false }},
		{Name: "no-optimal-ttl", Mutate: func(c *core.Config) { c.OptimalTTL = false }},
		{Name: "no-ring", Mutate: func(c *core.Config) {
			// Disable the expanding ring: first attempt floods network-wide.
			c.TTLStart = c.NetDiameter
			c.OptimalTTL = false
		}},
		{Name: "ldr+multipath", Mutate: func(c *core.Config) {
			// Extension: loop-free alternate successors with instant
			// failover (the labeled-distance multipath direction).
			c.Multipath = true
		}},
	}
}

// Ablation measures each LDR variant (plus OLSR with and without the FIFO
// jitter queue) on the 50-node, 10-flow, constant-motion scenario — the
// regime where discovery efficiency matters most. Rows are enumerated as
// one flat cell list, simulated in parallel via internal/sweep, and
// rendered in enumeration order.
func Ablation(o Options) error {
	o = o.Defaults()
	const pause = 0 * time.Second

	base := func(seed int64) scenario.Config {
		sc := scenario.Nodes50(scenario.LDR, 10, pause, seed)
		sc.SimTime = o.SimTime
		return sc
	}

	var names []string
	var cfgs []scenario.Config
	addRow := func(name string, mutate func(*scenario.Config)) {
		names = append(names, name)
		for _, seed := range o.trialSeeds() {
			sc := base(seed)
			mutate(&sc)
			cfgs = append(cfgs, sc)
		}
	}

	for _, v := range Variants() {
		cfg := core.DefaultConfig()
		v.Mutate(&cfg)
		ldrCfg := cfg
		addRow(v.Name, func(sc *scenario.Config) { sc.LDRConfig = &ldrCfg })
	}
	for _, proto := range []scenario.ProtocolName{scenario.OLSR, scenario.OLSRJ} {
		proto := proto
		addRow(string(proto), func(sc *scenario.Config) { sc.Protocol = proto })
	}
	// MAC-level ablation: LDR with RTS/CTS virtual carrier sensing.
	addRow("ldr+rtscts", func(sc *scenario.Config) { sc.RTSCTS = true })

	ms, err := runAll(cfgs, o)
	if ms == nil {
		return err
	}

	fmt.Fprintf(o.Out, "\nAblation — 50 nodes, 10 flows, pause 0 s, %v sim, %d trials\n", o.SimTime, o.Trials)
	fmt.Fprintf(o.Out, "%-16s %16s %16s %16s %16s\n",
		"variant", "delivery %", "latency ms", "net load", "rreq load")
	for i, name := range names {
		printAblationRow(o, name, ms[i*o.Trials:(i+1)*o.Trials])
	}
	return err
}

func printAblationRow(o Options, name string, samples []runMetrics) {
	row := summarizeRuns(samples)
	fmt.Fprintf(o.Out, "%-16s %s %s %s %s\n", name,
		ci(row.delivery), ci(row.latency), ci(row.netLoad), ci(row.rreqLoad))
}
