package experiments_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/experiments"
	"github.com/manetlab/ldr/internal/resilience"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/sweep"
)

// TestChaosJournalResumeByteIdentical: a journaled chaos run re-rendered
// from a fresh process loads every cell from the journal and produces
// the same bytes as the uninterrupted run — the experiments-layer half
// of the kill-resume contract (the cmd-level half is `make resume-smoke`).
func TestChaosJournalResumeByteIdentical(t *testing.T) {
	base := tiny(scenario.LDR, scenario.AODV)
	base.SimTime = 12 * time.Second
	base.FaultProfiles = []string{"reboot"}
	base.Workers = 2

	ref := render(t, base, experiments.Chaos)

	dir := t.TempDir()
	j, err := resilience.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := base
	o.Exec = sweep.ExecOptions{Journal: j}
	first := render(t, o, experiments.Chaos)
	if first != ref {
		t.Fatalf("journaled run differs from plain run\n--- plain ---\n%s\n--- journaled ---\n%s", ref, first)
	}
	// 1 profile × 2 pauses × 2 protos × 1 trial.
	if j.Len() != 4 {
		t.Fatalf("journal holds %d records, want 4", j.Len())
	}

	j2, err := resilience.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var prog sweep.Progress
	o = base
	o.Exec = sweep.ExecOptions{Journal: j2}
	o.Progress = &prog
	resumed := render(t, o, experiments.Chaos)
	if prog.Loaded() != 4 {
		t.Fatalf("resume loaded %d of 4 cells", prog.Loaded())
	}
	if resumed != ref {
		t.Fatalf("resumed output differs\n--- reference ---\n%s\n--- resumed ---\n%s", ref, resumed)
	}
}

// expPoisoned panics on Start — an injected protocol bug for the
// keep-going contract test.
type expPoisoned struct{}

func (expPoisoned) Start()                                         { panic("experiments: deliberate test panic") }
func (expPoisoned) HandleControl(routing.NodeID, routing.Message)  {}
func (expPoisoned) HandleData(routing.NodeID, *routing.DataPacket) {}
func (expPoisoned) Originate(*routing.DataPacket)                  {}
func (expPoisoned) Stop()                                          {}

// TestKeepGoingRendersPartialTable: with a panicking protocol in the
// matrix and Exec.KeepGoing set, an experiment still renders its table —
// the healthy protocol's rows carry real data — and returns the
// sweep.Failures naming every quarantined cell.
func TestKeepGoingRendersPartialTable(t *testing.T) {
	const poisoned scenario.ProtocolName = "exp-poisoned"
	scenario.RegisterProtocol(poisoned, func(*routing.Node) routing.Protocol {
		return expPoisoned{}
	})

	o := tiny(scenario.LDR, poisoned)
	o.SimTime = 12 * time.Second
	o.Workers = 2
	o.Exec = sweep.ExecOptions{KeepGoing: true}
	var buf strings.Builder
	o.Out = &buf

	err := experiments.DeliveryFigure(o, "Fig KG", 15, 3)
	var fs sweep.Failures
	if !errors.As(err, &fs) {
		t.Fatalf("err = %T %v, want sweep.Failures", err, err)
	}
	// PauseTimes(12s) = 2 pauses × 1 trial of the poisoned protocol.
	if len(fs) != 2 {
		t.Fatalf("got %d failures, want 2: %v", len(fs), fs)
	}
	for _, ce := range fs {
		if resilience.Kind(ce.Err) != "panic" {
			t.Fatalf("cell %d failure kind %q, want panic", ce.Index, resilience.Kind(ce.Err))
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Fig KG") || !strings.Contains(out, string(poisoned)) {
		t.Fatalf("partial table missing header/columns:\n%s", out)
	}
	// The healthy series still carries non-zero delivery data.
	if !strings.Contains(out, "±") {
		t.Fatalf("partial table has no data rows:\n%s", out)
	}
}
