package experiments

import (
	"fmt"
	"time"

	"github.com/manetlab/ldr/internal/fault"
	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/stats"
	"github.com/manetlab/ldr/internal/sweep"
)

// chaosMetrics is the per-run measurement vector for the Chaos table:
// the usual performance pair plus everything the fault instruments saw.
// Exported fields with JSON tags because journaled chaos sweeps persist
// one chaosMetrics per cell (scope "chaos"); the counters are integers,
// so the round trip is exact and resumed tables stay byte-identical.
type chaosMetrics struct {
	Delivery float64 `json:"delivery"` // %
	NetLoad  float64 `json:"net_load"` // control pkts per delivered data pkt
	Loops    uint64  `json:"loops"`    // successor-graph cycles flagged by the auditor
	Ordering uint64  `json:"ordering"` // (seq, fd) ordering-criterion breaches
	Audits   uint64  `json:"audits"`   // table-snapshot sweeps taken
	Crashes  int     `json:"crashes"`  // node crashes the injector executed
}

func chaosRun(cfg scenario.Config, ctls ...*scenario.Control) (chaosMetrics, error) {
	res, err := scenario.RunWithControl(cfg, ctls...)
	if err != nil {
		return chaosMetrics{}, err
	}
	c := res.Collector
	return chaosMetrics{
		Delivery: 100 * c.DeliveryRatio(),
		NetLoad:  c.NetworkLoad(),
		Loops:    c.LoopViolations,
		Ordering: c.OrderingViolations,
		Audits:   c.AuditSnapshots,
		Crashes:  res.Faults.Crashes,
	}, nil
}

// Chaos runs the fault-injection comparison: every protocol under every
// fault profile, at the two pause-time extremes (0 = constant motion,
// SimTime = static), with the continuous loopcheck auditor scoring loop
// and ordering violations throughout. This is the regime of the van
// Glabbeek et al. AODV-loop construction: under the reboot profiles AODV
// accumulates loop counts while LDR — whose destinations persist their
// own sequence numbers and whose labels enforce the ordering criterion —
// stays at zero. DSR is source-routed (no distributed next-hop tables to
// loop), so its violation columns are structurally zero; OLSR's are
// transient artifacts of link-state convergence.
//
// Cells fan out across Options.Workers via the PR-1 worker pool and are
// aggregated in enumeration order, so the rendered table is
// byte-identical at any worker count.
func Chaos(o Options) error {
	o = o.Defaults()
	pauses := []time.Duration{0, o.SimTime}

	type cellKey struct {
		profile string
		pause   time.Duration
		proto   scenario.ProtocolName
	}
	var cfgs []scenario.Config
	var keys []cellKey
	for _, profile := range o.FaultProfiles {
		plan, err := fault.Profile(profile, 50, o.SimTime)
		if err != nil {
			return err
		}
		for _, pause := range pauses {
			for _, proto := range o.Protocols {
				keys = append(keys, cellKey{profile, pause, proto})
				for _, seed := range o.trialSeeds() {
					cfg := scenario.Nodes50(proto, 10, pause, seed)
					cfg.SimTime = o.SimTime
					cfg.FaultPlan = &plan
					cfg.AuditCadence = o.AuditCadence
					o.applyDiversity(&cfg)
					cfgs = append(cfgs, cfg)
				}
			}
		}
	}

	ms, err := sweep.RunCells(cfgs, o.execOptions("chaos"), func(i int, ctl *scenario.Control) (chaosMetrics, error) {
		return chaosRun(cfgs[i], ctl, o.Exec.Control)
	})
	if ms == nil {
		return err
	}

	idx := 0
	lastProfile := ""
	for _, k := range keys {
		if k.profile != lastProfile {
			lastProfile = k.profile
			fmt.Fprintf(o.Out, "\nChaos — profile %s (50 nodes, 10 flows, %v sim, audit every %v, %d trials)\n",
				k.profile, o.SimTime, o.AuditCadence, o.Trials)
			fmt.Fprintf(o.Out, "%-8s %8s %16s %12s %8s %8s %8s %8s\n",
				"proto", "pause_s", "delivery %", "net load", "loops", "order", "audits", "crashes")
		}
		agg := chaosMetrics{}
		var delivery, netLoad []float64
		for t := 0; t < o.Trials; t++ {
			m := ms[idx]
			idx++
			delivery = append(delivery, m.Delivery)
			netLoad = append(netLoad, m.NetLoad)
			agg.Loops += m.Loops
			agg.Ordering += m.Ordering
			agg.Audits += m.Audits
			agg.Crashes += m.Crashes
		}
		fmt.Fprintf(o.Out, "%-8s %8.0f %s %12.3f %8d %8d %8d %8d\n",
			k.proto, k.pause.Seconds(), ciOf(delivery), mean(netLoad),
			agg.Loops, agg.Ordering, agg.Audits, agg.Crashes)
	}
	return err
}

func ciOf(xs []float64) string {
	return ci(stats.Summarize(xs))
}

func mean(xs []float64) float64 {
	return stats.Summarize(xs).Mean
}
