package experiments_test

import (
	"strings"
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/experiments"
	"github.com/manetlab/ldr/internal/scenario"
)

// tiny returns options that keep an experiment under a second or two.
func tiny(protos ...scenario.ProtocolName) experiments.Options {
	return experiments.Options{
		Trials:    1,
		SimTime:   20 * time.Second,
		BaseSeed:  1,
		Protocols: protos,
	}
}

func TestDeliveryFigureRendersSeries(t *testing.T) {
	var buf strings.Builder
	o := tiny(scenario.LDR)
	o.Out = &buf
	if err := experiments.DeliveryFigure(o, "Fig X", 15, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "ldr") {
		t.Fatalf("missing header/series:\n%s", out)
	}
	// One row per pause time: PauseTimes(20s) = {0, 20s}.
	if rows := strings.Count(out, "±"); rows != 2 {
		t.Fatalf("want 2 data rows, got %d:\n%s", rows, out)
	}
}

func TestFig7ReportsSeqnos(t *testing.T) {
	var buf strings.Builder
	o := tiny()
	o.Out = &buf
	if err := experiments.Fig7(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, col := range []string{"ldr-10f", "aodv-10f", "ldr-30f", "aodv-30f"} {
		if !strings.Contains(out, col) {
			t.Fatalf("missing column %s:\n%s", col, out)
		}
	}
}

func TestVariantsCoverEveryOptimization(t *testing.T) {
	names := make(map[string]bool)
	for _, v := range experiments.Variants() {
		names[v.Name] = true
	}
	for _, want := range []string{
		"ldr-full", "no-multi-rrep", "no-req-as-err", "no-reduced-dist",
		"no-min-lifetime", "no-optimal-ttl", "no-ring",
	} {
		if !names[want] {
			t.Fatalf("ablation variant %q missing", want)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := experiments.Options{}.Defaults()
	if o.Trials != 3 || o.SimTime != 300*time.Second || o.BaseSeed != 1 {
		t.Fatalf("unexpected defaults: %+v", o)
	}
	if len(o.Protocols) != 4 {
		t.Fatalf("default protocols = %v", o.Protocols)
	}
}

func TestAblationRendersEveryVariant(t *testing.T) {
	var buf strings.Builder
	o := tiny()
	o.SimTime = 15 * time.Second
	o.Out = &buf
	if err := experiments.Ablation(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, row := range []string{"ldr-full", "no-ring", "ldr+multipath", "olsr-nojitter", "ldr+rtscts"} {
		if !strings.Contains(out, row) {
			t.Fatalf("ablation output missing row %q:\n%s", row, out)
		}
	}
}

func TestTable1RendersBothLoads(t *testing.T) {
	var buf strings.Builder
	o := tiny(scenario.LDR)
	o.SimTime = 15 * time.Second
	o.Out = &buf
	if err := experiments.Table1(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "10 flows") || !strings.Contains(out, "30 flows") {
		t.Fatalf("table1 output missing a flow section:\n%s", out)
	}
}

// render runs an experiment into a buffer and returns the bytes.
func render(t *testing.T, o experiments.Options, fn func(experiments.Options) error) string {
	t.Helper()
	var buf strings.Builder
	o.Out = &buf
	if err := fn(o); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestParallelOutputByteIdentical is the sweep engine's end-to-end
// determinism contract: every experiment's rendered output must be
// byte-identical between a serial run and a 4-worker run.
func TestParallelOutputByteIdentical(t *testing.T) {
	experimentsUnderTest := []struct {
		name string
		fn   func(experiments.Options) error
	}{
		{"table1", experiments.Table1},
		{"figure", func(o experiments.Options) error {
			return experiments.DeliveryFigure(o, "Fig X", 15, 3)
		}},
		{"fig7", experiments.Fig7},
		{"ablation", experiments.Ablation},
	}
	for _, e := range experimentsUnderTest {
		e := e
		t.Run(e.name, func(t *testing.T) {
			o := tiny(scenario.LDR, scenario.AODV)
			o.SimTime = 15 * time.Second
			o.Trials = 2
			o.Workers = 1
			serial := render(t, o, e.fn)
			o.Workers = 4
			parallel := render(t, o, e.fn)
			if serial != parallel {
				t.Fatalf("serial and 4-worker output differ\n--- serial ---\n%s\n--- parallel ---\n%s",
					serial, parallel)
			}
			if !strings.Contains(serial, "±") {
				t.Fatalf("output has no data rows:\n%s", serial)
			}
		})
	}
}
