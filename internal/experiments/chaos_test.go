package experiments_test

import (
	"strings"
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/experiments"
	"github.com/manetlab/ldr/internal/scenario"
)

// chaosTiny keeps the chaos table to a handful of 20-second cells.
func chaosTiny(workers int) (experiments.Options, *strings.Builder) {
	var buf strings.Builder
	o := tiny(scenario.LDR, scenario.AODV)
	o.Out = &buf
	o.Workers = workers
	o.FaultProfiles = []string{"reboot"}
	o.AuditCadence = 100 * time.Millisecond
	return o, &buf
}

func TestChaosRendersTable(t *testing.T) {
	o, buf := chaosTiny(0)
	if err := experiments.Chaos(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "profile reboot") {
		t.Fatalf("missing profile header:\n%s", out)
	}
	for _, col := range []string{"loops", "order", "audits", "crashes", "ldr", "aodv"} {
		if !strings.Contains(out, col) {
			t.Fatalf("missing %q:\n%s", col, out)
		}
	}
	// One row per (pause, protocol): 2 pauses × 2 protocols.
	if rows := strings.Count(out, "±"); rows != 4 {
		t.Fatalf("want 4 data rows, got %d:\n%s", rows, out)
	}
}

// TestChaosOutputIdenticalAcrossWorkers is the acceptance bar from the
// issue: the chaos sweep must render byte-identically whatever the
// worker count, because cells are enumerated, seeded, and aggregated in
// a fixed order and each simulation is single-threaded and
// virtual-time-only.
func TestChaosOutputIdenticalAcrossWorkers(t *testing.T) {
	serialOpts, serial := chaosTiny(1)
	if err := experiments.Chaos(serialOpts); err != nil {
		t.Fatal(err)
	}
	parallelOpts, parallel := chaosTiny(3)
	if err := experiments.Chaos(parallelOpts); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("chaos output differs between -workers 1 and 3:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}
