package experiments

import (
	"fmt"
	"sort"

	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/stats"
)

// Mobility runs the scenario-diversity comparison: all four protocols
// under random waypoint, Manhattan-grid, and Gauss-Markov movement at
// constant motion (pause 0, where the models differ most), reporting
// delivery, latency, and control overhead per model plus an explicit
// protocol ranking line. The Manhattan-grid MANET literature ("Simulation
// Analysis of Routing Protocols using Manhattan Grid Mobility Model")
// reports protocol rankings flipping under street-constrained movement
// relative to open-field waypoint — this table is where that claim is
// checked against our implementations (see EXPERIMENTS.md for the
// recorded outcome).
func Mobility(o Options) error {
	o = o.Defaults()
	models := scenario.Mobilities()

	var cfgs []scenario.Config
	for _, model := range models {
		for _, proto := range o.Protocols {
			for _, seed := range o.trialSeeds() {
				cfg := scenario.Nodes50(proto, 30, 0, seed)
				cfg.SimTime = o.SimTime
				// The other diversity axes still apply, so e.g.
				// -traffic bursty -exp mobility composes; the model
				// column overrides whatever o.Mobility says.
				o.applyDiversity(&cfg)
				cfg.Mobility = model
				cfgs = append(cfgs, cfg)
			}
		}
	}
	ms, err := runAll(cfgs, o)
	if ms == nil {
		return err
	}

	idx := 0
	for _, model := range models {
		fmt.Fprintf(o.Out, "\nMobility — %s (50 nodes, 30 flows, pause 0, %v sim, %d trials)\n",
			model, o.SimTime, o.Trials)
		fmt.Fprintf(o.Out, "%-8s %16s %16s %16s\n",
			"proto", "delivery %", "latency ms", "net load")
		type row struct {
			proto    scenario.ProtocolName
			delivery stats.Summary
			netLoad  stats.Summary
		}
		rows := make([]row, 0, len(o.Protocols))
		for _, proto := range o.Protocols {
			s := summarizeRuns(ms[idx : idx+o.Trials])
			idx += o.Trials
			fmt.Fprintf(o.Out, "%-8s %s %s %s\n",
				proto, ci(s.delivery), ci(s.latency), ci(s.netLoad))
			rows = append(rows, row{proto, s.delivery, s.netLoad})
		}
		// Explicit rankings so a flip between models is visible at a
		// glance (and greppable from CI logs).
		byDelivery := append([]row(nil), rows...)
		sort.SliceStable(byDelivery, func(i, j int) bool {
			return byDelivery[i].delivery.Mean > byDelivery[j].delivery.Mean
		})
		byOverhead := append([]row(nil), rows...)
		sort.SliceStable(byOverhead, func(i, j int) bool {
			return byOverhead[i].netLoad.Mean < byOverhead[j].netLoad.Mean
		})
		fmt.Fprintf(o.Out, "ranking %-12s delivery: %s   overhead: %s\n",
			model, rankString(byDelivery, func(r row) scenario.ProtocolName { return r.proto }),
			rankString(byOverhead, func(r row) scenario.ProtocolName { return r.proto }))
	}
	return err
}

func rankString[T any](rows []T, proto func(T) scenario.ProtocolName) string {
	s := ""
	for i, r := range rows {
		if i > 0 {
			s += " > "
		}
		s += string(proto(r))
	}
	return s
}
