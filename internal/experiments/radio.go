package experiments

import (
	"fmt"
	"sort"

	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/stats"
)

// Radio runs the heterogeneous-radio comparison: all four protocols
// under each transmit-power profile (uniform disk, mixed three-class,
// asym long/short) and then under each placement-density profile
// (uniform, gradient, hotspot) at constant motion, reporting delivery,
// latency, and control overhead per profile plus an explicit protocol
// ranking line. The asym profile is where bidirectionality assumptions
// bite: long-range nodes hear neighbors that cannot ACK back, so a
// protocol that installs routes from overheard traffic alone pays in
// MAC retry exhaustion and repair churn. The density profiles separate
// "sparse edge" effects (gradient) from "congested core" effects
// (hotspot) at a fixed node count.
func Radio(o Options) error {
	o = o.Defaults()

	type axis struct {
		label    string // table header prefix
		profiles []string
		apply    func(cfg *scenario.Config, profile string)
	}
	axes := []axis{
		{"radio", scenario.Radios(), func(cfg *scenario.Config, p string) { cfg.Radio = p }},
		{"density", scenario.Densities(), func(cfg *scenario.Config, p string) { cfg.Density = p }},
	}

	var cfgs []scenario.Config
	for _, ax := range axes {
		for _, profile := range ax.profiles {
			for _, proto := range o.Protocols {
				for _, seed := range o.trialSeeds() {
					cfg := scenario.Nodes50(proto, 30, 0, seed)
					cfg.SimTime = o.SimTime
					// The other diversity axes still apply, so e.g.
					// -mobility manhattan -exp radio composes; the
					// profile column overrides o.Radio / o.Density.
					o.applyDiversity(&cfg)
					ax.apply(&cfg, profile)
					cfgs = append(cfgs, cfg)
				}
			}
		}
	}
	ms, err := runAll(cfgs, o)
	if ms == nil {
		return err
	}

	idx := 0
	for _, ax := range axes {
		for _, profile := range ax.profiles {
			fmt.Fprintf(o.Out, "\nRadio — %s=%s (50 nodes, 30 flows, pause 0, %v sim, %d trials)\n",
				ax.label, profile, o.SimTime, o.Trials)
			fmt.Fprintf(o.Out, "%-8s %16s %16s %16s\n",
				"proto", "delivery %", "latency ms", "net load")
			type row struct {
				proto    scenario.ProtocolName
				delivery stats.Summary
				netLoad  stats.Summary
			}
			rows := make([]row, 0, len(o.Protocols))
			for _, proto := range o.Protocols {
				s := summarizeRuns(ms[idx : idx+o.Trials])
				idx += o.Trials
				fmt.Fprintf(o.Out, "%-8s %s %s %s\n",
					proto, ci(s.delivery), ci(s.latency), ci(s.netLoad))
				rows = append(rows, row{proto, s.delivery, s.netLoad})
			}
			byDelivery := append([]row(nil), rows...)
			sort.SliceStable(byDelivery, func(i, j int) bool {
				return byDelivery[i].delivery.Mean > byDelivery[j].delivery.Mean
			})
			byOverhead := append([]row(nil), rows...)
			sort.SliceStable(byOverhead, func(i, j int) bool {
				return byOverhead[i].netLoad.Mean < byOverhead[j].netLoad.Mean
			})
			fmt.Fprintf(o.Out, "ranking %s=%-10s delivery: %s   overhead: %s\n",
				ax.label, profile,
				rankString(byDelivery, func(r row) scenario.ProtocolName { return r.proto }),
				rankString(byOverhead, func(r row) scenario.ProtocolName { return r.proto }))
		}
	}
	return err
}
