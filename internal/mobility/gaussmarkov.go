package mobility

// Gauss-Markov mobility: each node's speed and direction evolve as a
// first-order autoregressive process, so velocity is temporally
// correlated — nodes glide along smooth curves instead of teleporting
// between waypoints. The memory parameter α tunes the spectrum: α=1 is
// straight-line constant-velocity motion, α=0 is memoryless Brownian
// wandering. Near the terrain edge the mean direction is steered toward
// the interior and the position update reflects off the boundary, the
// standard terrain-handling from the model's MANET usage.

import (
	"math"
	"strconv"
	"time"

	"github.com/manetlab/ldr/internal/rng"
)

// GaussMarkovConfig parameterizes the Gauss-Markov model.
type GaussMarkovConfig struct {
	Terrain Terrain
	// Alpha is the memory parameter in [0, 1]: higher means smoother,
	// more predictable motion. Zero selects 0.75.
	Alpha float64
	// MeanSpeed is the asymptotic mean speed in m/s (zero selects 10).
	MeanSpeed float64
	// MaxSpeed clamps the evolved speed (zero selects 2×MeanSpeed).
	// Speeds are also floored at 0: the process never runs backward.
	MaxSpeed float64
	// SpeedStdDev and DirStdDev scale the Gaussian innovations of the
	// speed (m/s) and direction (radians) processes. Zeros select
	// MeanSpeed/4 and 0.4 rad.
	SpeedStdDev, DirStdDev float64
	// Step is the discretization interval at which velocity is
	// re-drawn; positions interpolate linearly in between. Zero
	// selects 1 s.
	Step time.Duration
	// Margin is the edge width (m) inside which the mean direction is
	// forced toward the terrain interior. Zero selects 10% of the
	// smaller terrain dimension.
	Margin float64
}

func (c GaussMarkovConfig) withDefaults() GaussMarkovConfig {
	if c.Alpha <= 0 {
		c.Alpha = 0.75
	}
	if c.Alpha > 1 {
		c.Alpha = 1
	}
	if c.MeanSpeed <= 0 {
		c.MeanSpeed = 10
	}
	if c.MaxSpeed <= 0 {
		c.MaxSpeed = 2 * c.MeanSpeed
	}
	if c.SpeedStdDev <= 0 {
		c.SpeedStdDev = c.MeanSpeed / 4
	}
	if c.DirStdDev <= 0 {
		c.DirStdDev = 0.4
	}
	if c.Step <= 0 {
		c.Step = time.Second
	}
	if c.Margin <= 0 {
		m := c.Terrain.Width
		if c.Terrain.Height < m {
			m = c.Terrain.Height
		}
		c.Margin = 0.1 * m
	}
	return c
}

// GaussMarkov implements the Gauss-Markov model.
//
// State advances in fixed Step increments, lazily per node on Position
// queries (which the simulator issues with non-decreasing times), so a
// node's trajectory is a pure function of (seed, node, time) regardless
// of the query pattern — the same invariance Waypoint and Manhattan
// provide, which the radio grid's lookup skipping relies on.
type GaussMarkov struct {
	cfg   GaussMarkovConfig
	nodes []gmState
}

type gmState struct {
	step       int64   // completed steps (pos/speed/dir are at step*Step)
	pos        Point   // position at the last step boundary
	next       Point   // position at the next step boundary
	speed, dir float64 // velocity over [step, step+1)
	rng        *rng.Source
}

var _ Model = (*GaussMarkov)(nil)

// NewGaussMarkov places n nodes uniformly with stationary-distribution
// initial velocities.
func NewGaussMarkov(n int, cfg GaussMarkovConfig, src *rng.Source) *GaussMarkov {
	cfg = cfg.withDefaults()
	g := &GaussMarkov{cfg: cfg, nodes: make([]gmState, n)}
	for i := range g.nodes {
		st := &g.nodes[i]
		st.rng = src.Split("gaussmarkov" + strconv.Itoa(i))
		st.pos = Point{
			X: st.rng.Float64() * cfg.Terrain.Width,
			Y: st.rng.Float64() * cfg.Terrain.Height,
		}
		st.speed = clampSpeed(cfg.MeanSpeed+cfg.SpeedStdDev*gaussian(st.rng), cfg.MaxSpeed)
		st.dir = st.rng.Float64() * 2 * math.Pi
		g.advanceTarget(st)
	}
	return g
}

// NumNodes implements Model.
func (g *GaussMarkov) NumNodes() int { return len(g.nodes) }

// Position implements Model.
func (g *GaussMarkov) Position(id int, at time.Duration) Point {
	st := &g.nodes[id]
	step := int64(at / g.cfg.Step)
	for st.step < step {
		g.nextStep(st)
	}
	frac := float64(at-time.Duration(st.step)*g.cfg.Step) / float64(g.cfg.Step)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return Point{
		X: st.pos.X + (st.next.X-st.pos.X)*frac,
		Y: st.pos.Y + (st.next.Y-st.pos.Y)*frac,
	}
}

// Speed exposes node id's current speed (m/s) for the property tests.
func (g *GaussMarkov) Speed(id int) float64 { return g.nodes[id].speed }

// nextStep commits the current leg and evolves (speed, dir) by the
// Gauss-Markov recurrence:
//
//	s' = α·s + (1-α)·s̄ + sqrt(1-α²)·σs·w₁
//	d' = α·d + (1-α)·d̄ + sqrt(1-α²)·σd·w₂
//
// with d̄ steered toward the interior inside the edge margin.
func (g *GaussMarkov) nextStep(st *gmState) {
	st.pos = st.next
	st.step++

	c := g.cfg
	k := math.Sqrt(1 - c.Alpha*c.Alpha)
	// Two unconditional Gaussian draws per step keep the stream position
	// a pure function of the step count.
	w1 := gaussian(st.rng)
	w2 := gaussian(st.rng)
	st.speed = clampSpeed(c.Alpha*st.speed+(1-c.Alpha)*c.MeanSpeed+k*c.SpeedStdDev*w1, c.MaxSpeed)
	meanDir := g.meanDirection(st)
	st.dir = c.Alpha*st.dir + (1-c.Alpha)*meanDir + k*c.DirStdDev*w2

	g.advanceTarget(st)
}

// meanDirection returns the direction the process reverts to: the
// current heading in the interior, or the bearing toward the terrain
// center inside the margin (the standard edge-avoidance steering).
func (g *GaussMarkov) meanDirection(st *gmState) float64 {
	c := g.cfg
	nearEdge := st.pos.X < c.Margin || st.pos.X > c.Terrain.Width-c.Margin ||
		st.pos.Y < c.Margin || st.pos.Y > c.Terrain.Height-c.Margin
	if !nearEdge {
		return st.dir
	}
	return math.Atan2(c.Terrain.Height/2-st.pos.Y, c.Terrain.Width/2-st.pos.X)
}

// advanceTarget computes the next step-boundary position, reflecting
// off the terrain boundary (and flipping the heading component) so
// nodes never leave the terrain.
func (g *GaussMarkov) advanceTarget(st *gmState) {
	c := g.cfg
	dt := c.Step.Seconds()
	x := st.pos.X + st.speed*math.Cos(st.dir)*dt
	y := st.pos.Y + st.speed*math.Sin(st.dir)*dt
	reflectedX := false
	reflectedY := false
	x, reflectedX = reflect(x, c.Terrain.Width)
	y, reflectedY = reflect(y, c.Terrain.Height)
	if reflectedX {
		st.dir = math.Pi - st.dir
	}
	if reflectedY {
		st.dir = -st.dir
	}
	st.next = Point{X: x, Y: y}
}

// reflect folds v into [0, max], reporting whether a boundary was hit.
// One fold suffices: a single step never travels a full terrain span
// because MaxSpeed·Step is far below the terrain size in any sane
// configuration, and repeated folding would still terminate (v strictly
// decreases), so loop for robustness.
func reflect(v, max float64) (float64, bool) {
	hit := false
	for v < 0 || v > max {
		if v < 0 {
			v = -v
		} else {
			v = 2*max - v
		}
		hit = true
	}
	return v, hit
}

// gaussian returns one standard-normal draw via Box-Muller. Exactly two
// uniform words are consumed per call, keeping stream positions
// schedule-independent.
func gaussian(r *rng.Source) float64 {
	u1 := 1 - r.Float64() // (0, 1], avoids log(0)
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

func clampSpeed(s, max float64) float64 {
	if s < 0 {
		return 0
	}
	if s > max {
		return max
	}
	return s
}
