package mobility_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/rng"
)

func manhattanModel(n int, seed int64) *mobility.Manhattan {
	return mobility.NewManhattan(n, mobility.ManhattanConfig{
		Terrain:      mobility.Terrain{Width: 1500, Height: 300},
		MinSpeed:     1,
		MaxSpeed:     20,
		TurnProb:     0.25,
		SpeedClasses: []float64{1, 0.5},
	}, rng.New(seed))
}

func gaussMarkovModel(n int, seed int64) *mobility.GaussMarkov {
	return mobility.NewGaussMarkov(n, mobility.GaussMarkovConfig{
		Terrain:   mobility.Terrain{Width: 1500, Height: 300},
		MeanSpeed: 10,
		Alpha:     0.75,
	}, rng.New(seed))
}

// TestManhattanPositionsOnStreets is the model's defining invariant:
// every queried position lies on a street segment of the grid.
func TestManhattanPositionsOnStreets(t *testing.T) {
	m := manhattanModel(10, 1)
	for step := 0; step < 2000; step++ {
		at := time.Duration(step) * 500 * time.Millisecond
		for id := 0; id < m.NumNodes(); id++ {
			if p := m.Position(id, at); !m.OnStreet(p, 1e-6) {
				t.Fatalf("node %d off-street at t=%v: %+v", id, at, p)
			}
		}
	}
}

func TestManhattanStaysInsideTerrain(t *testing.T) {
	m := manhattanModel(10, 2)
	terrain := mobility.Terrain{Width: 1500, Height: 300}
	for step := 0; step < 2000; step++ {
		at := time.Duration(step) * 500 * time.Millisecond
		for id := 0; id < m.NumNodes(); id++ {
			if p := m.Position(id, at); !terrain.Contains(p) {
				t.Fatalf("node %d left terrain at t=%v: %+v", id, at, p)
			}
		}
	}
}

func TestManhattanEventuallyMoves(t *testing.T) {
	m := manhattanModel(5, 3)
	moved := false
	for id := 0; id < 5 && !moved; id++ {
		if m.Position(id, 0) != m.Position(id, 60*time.Second) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("no node moved within a minute")
	}
}

// TestManhattanRespectsSpeedBound: per-street speed classes only slow
// streets down (classes ≤ 1), so MaxSpeed bounds all displacement.
func TestManhattanRespectsSpeedBound(t *testing.T) {
	m := manhattanModel(8, 4)
	const dt = 100 * time.Millisecond
	for id := 0; id < 8; id++ {
		prev := m.Position(id, 0)
		for step := 1; step < 3000; step++ {
			at := time.Duration(step) * dt
			cur := m.Position(id, at)
			if d := prev.Dist(cur); d > 2.0+1e-9 {
				t.Fatalf("node %d moved %.3f m in %v (max speed 20 m/s)", id, d, dt)
			}
			prev = cur
		}
	}
}

// TestManhattanQueryPatternInvariance: querying a node densely or
// sparsely must not change where it ends up — the invariance the radio
// grid's lookup skipping relies on.
func TestManhattanQueryPatternInvariance(t *testing.T) {
	dense := manhattanModel(4, 5)
	sparse := manhattanModel(4, 5)
	final := 120 * time.Second
	for id := 0; id < 4; id++ {
		for step := 0; step < 1200; step++ {
			dense.Position(id, time.Duration(step)*100*time.Millisecond)
		}
		a := dense.Position(id, final)
		b := sparse.Position(id, final)
		if a != b {
			t.Fatalf("node %d: dense queries end at %+v, sparse at %+v", id, a, b)
		}
	}
}

// TestManhattanTerrainProperty checks the street invariant across random
// grid shapes, turn probabilities, and pauses.
func TestManhattanTerrainProperty(t *testing.T) {
	f := func(w, h uint16, sx, sy uint8, turn uint8, seed int64) bool {
		terrain := mobility.Terrain{Width: float64(w%2000) + 50, Height: float64(h%2000) + 50}
		m := mobility.NewManhattan(3, mobility.ManhattanConfig{
			Terrain:  terrain,
			StreetsX: int(sx%6) + 2,
			StreetsY: int(sy%6) + 2,
			MinSpeed: 1,
			MaxSpeed: 20,
			TurnProb: float64(turn) / 255,
			Pause:    time.Duration(turn%3) * time.Second,
		}, rng.New(seed))
		for step := 0; step < 100; step++ {
			at := time.Duration(step) * time.Second
			for id := 0; id < 3; id++ {
				p := m.Position(id, at)
				if !terrain.Contains(p) || !m.OnStreet(p, 1e-6) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGaussMarkovStaysInsideTerrain(t *testing.T) {
	m := gaussMarkovModel(10, 1)
	terrain := mobility.Terrain{Width: 1500, Height: 300}
	for step := 0; step < 4000; step++ {
		at := time.Duration(step) * 250 * time.Millisecond
		for id := 0; id < m.NumNodes(); id++ {
			if p := m.Position(id, at); !terrain.Contains(p) {
				t.Fatalf("node %d left terrain at t=%v: %+v", id, at, p)
			}
		}
	}
}

// TestGaussMarkovVelocityBounded: the evolved speed stays in
// [0, MaxSpeed], so displacement per interval is bounded too.
func TestGaussMarkovVelocityBounded(t *testing.T) {
	m := gaussMarkovModel(8, 2)
	const dt = 250 * time.Millisecond
	maxStep := 20.0 * dt.Seconds() // MaxSpeed defaults to 2×MeanSpeed = 20
	for id := 0; id < 8; id++ {
		prev := m.Position(id, 0)
		for step := 1; step < 2000; step++ {
			at := time.Duration(step) * dt
			cur := m.Position(id, at)
			// A reflection can fold a step but never lengthens it.
			if d := prev.Dist(cur); d > maxStep+1e-9 {
				t.Fatalf("node %d moved %.3f m in %v (bound %.3f)", id, d, at, maxStep)
			}
			if s := m.Speed(id); s < 0 || s > 20+1e-9 {
				t.Fatalf("node %d speed %.3f out of [0, 20]", id, s)
			}
			prev = cur
		}
	}
}

// TestGaussMarkovSmoothness: with high memory the direction changes
// slowly — consecutive steps should be far more correlated than random
// waypoint teleports. Verified as: mean displacement over 1 s is a large
// fraction of the speed (no jitter-in-place) and positions never jump.
func TestGaussMarkovEventuallyMoves(t *testing.T) {
	m := gaussMarkovModel(5, 3)
	moved := false
	for id := 0; id < 5 && !moved; id++ {
		if m.Position(id, 0) != m.Position(id, 30*time.Second) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("no node moved within 30 s")
	}
}

func TestGaussMarkovQueryPatternInvariance(t *testing.T) {
	dense := gaussMarkovModel(4, 5)
	sparse := gaussMarkovModel(4, 5)
	final := 120 * time.Second
	for id := 0; id < 4; id++ {
		for step := 0; step < 1200; step++ {
			dense.Position(id, time.Duration(step)*100*time.Millisecond)
		}
		a := dense.Position(id, final)
		b := sparse.Position(id, final)
		if a != b {
			t.Fatalf("node %d: dense queries end at %+v, sparse at %+v", id, a, b)
		}
	}
}

// TestGaussMarkovTerrainProperty checks containment across random
// terrain shapes and memory parameters.
func TestGaussMarkovTerrainProperty(t *testing.T) {
	f := func(w, h uint16, alpha uint8, seed int64) bool {
		terrain := mobility.Terrain{Width: float64(w%2000) + 50, Height: float64(h%2000) + 50}
		m := mobility.NewGaussMarkov(3, mobility.GaussMarkovConfig{
			Terrain:   terrain,
			MeanSpeed: 10,
			Alpha:     float64(alpha%100) / 100,
		}, rng.New(seed))
		for step := 0; step < 100; step++ {
			at := time.Duration(step) * time.Second
			for id := 0; id < 3; id++ {
				if !terrain.Contains(m.Position(id, at)) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
