package mobility

// Manhattan-grid mobility: nodes are constrained to a street grid laid
// over the terrain and move from intersection to intersection, turning
// with configurable probabilities. The model follows the ETSI urban
// vehicular pattern used by the MANET comparison literature ("Simulation
// Analysis of Routing Protocols using Manhattan Grid Mobility Model in
// MANET"): street-constrained movement concentrates nodes on shared
// lines, creating chains of short-lived links that flip protocol
// rankings relative to open-field random waypoint.

import (
	"strconv"
	"time"

	"github.com/manetlab/ldr/internal/rng"
)

// ManhattanConfig parameterizes the street grid.
type ManhattanConfig struct {
	Terrain Terrain
	// StreetsX and StreetsY are the number of vertical and horizontal
	// streets (≥ 2 each; the terrain edges are always streets). Zero
	// selects a density of roughly one street every 150 m.
	StreetsX, StreetsY int
	MinSpeed, MaxSpeed float64 // m/s base speed, drawn per leg
	// TurnProb is the probability of leaving the current heading at an
	// intersection where a turn is possible; the remainder continues
	// straight. Turns split evenly between the available left/right
	// options. U-turns happen only at dead ends (terrain edges).
	TurnProb float64
	// Pause is an optional fixed stop at every intersection (a traffic
	// light stand-in). Zero keeps nodes moving.
	Pause time.Duration
	// SpeedClasses are per-street speed multipliers: street i (counting
	// vertical streets west→east, then horizontal streets south→north)
	// uses SpeedClasses[i % len]. This models avenues vs side streets.
	// Empty means every street has class 1.0.
	SpeedClasses []float64
}

// withDefaults fills unset fields.
func (c ManhattanConfig) withDefaults() ManhattanConfig {
	if c.StreetsX <= 1 {
		c.StreetsX = int(c.Terrain.Width/150) + 1
		if c.StreetsX < 2 {
			c.StreetsX = 2
		}
	}
	if c.StreetsY <= 1 {
		c.StreetsY = int(c.Terrain.Height/150) + 1
		if c.StreetsY < 2 {
			c.StreetsY = 2
		}
	}
	if c.MinSpeed <= 0 {
		c.MinSpeed = 1
	}
	if c.MaxSpeed < c.MinSpeed {
		c.MaxSpeed = c.MinSpeed
	}
	if c.TurnProb < 0 {
		c.TurnProb = 0
	}
	if c.TurnProb > 1 {
		c.TurnProb = 1
	}
	if len(c.SpeedClasses) == 0 {
		c.SpeedClasses = []float64{1}
	}
	return c
}

// heading is a cardinal movement direction on the grid.
type heading int

const (
	east heading = iota
	west
	north
	south
)

// Manhattan implements the Manhattan-grid model.
//
// Like Waypoint, trajectories are advanced lazily leg by leg on Position
// queries and every node draws from its own split stream, so a node's
// position is a pure function of (seed, node, time): neither the order of
// queries across nodes nor the query cadence changes anyone's path. This
// keeps the radio grid's position-lookup skipping sound.
type Manhattan struct {
	cfg    ManhattanConfig
	dx, dy float64 // street spacing
	nodes  []manhattanState
}

type manhattanState struct {
	ix, iy     int     // intersection the current leg starts from
	dir        heading // current leg's direction
	from, to   Point
	segStart   time.Duration
	segEnd     time.Duration
	pauseUntil time.Duration
	rng        *rng.Source
}

var _ Model = (*Manhattan)(nil)

// NewManhattan places n nodes at random intersections with random
// feasible headings.
func NewManhattan(n int, cfg ManhattanConfig, src *rng.Source) *Manhattan {
	cfg = cfg.withDefaults()
	m := &Manhattan{
		cfg:   cfg,
		dx:    cfg.Terrain.Width / float64(cfg.StreetsX-1),
		dy:    cfg.Terrain.Height / float64(cfg.StreetsY-1),
		nodes: make([]manhattanState, n),
	}
	for i := range m.nodes {
		st := &m.nodes[i]
		st.rng = src.Split("manhattan" + strconv.Itoa(i))
		st.ix = st.rng.Intn(cfg.StreetsX)
		st.iy = st.rng.Intn(cfg.StreetsY)
		st.dir = m.randomFeasibleHeading(st)
		p := m.intersection(st.ix, st.iy)
		st.from, st.to = p, p
		st.pauseUntil = 0 // first leg starts immediately
	}
	return m
}

// NumNodes implements Model.
func (m *Manhattan) NumNodes() int { return len(m.nodes) }

// Position implements Model.
func (m *Manhattan) Position(id int, at time.Duration) Point {
	st := &m.nodes[id]
	for at > st.pauseUntil {
		m.nextLeg(st)
	}
	if at >= st.segEnd || st.segEnd == st.segStart {
		return st.to // paused at the intersection
	}
	frac := float64(at-st.segStart) / float64(st.segEnd-st.segStart)
	return Point{
		X: st.from.X + (st.to.X-st.from.X)*frac,
		Y: st.from.Y + (st.to.Y-st.from.Y)*frac,
	}
}

// intersection returns the coordinates of grid intersection (ix, iy).
func (m *Manhattan) intersection(ix, iy int) Point {
	return Point{X: float64(ix) * m.dx, Y: float64(iy) * m.dy}
}

// feasible reports whether a heading stays on the grid from (ix, iy).
func (m *Manhattan) feasible(ix, iy int, d heading) bool {
	switch d {
	case east:
		return ix+1 < m.cfg.StreetsX
	case west:
		return ix > 0
	case north:
		return iy+1 < m.cfg.StreetsY
	default: // south
		return iy > 0
	}
}

func (m *Manhattan) randomFeasibleHeading(st *manhattanState) heading {
	// One unconditional draw keeps the per-node stream position fixed;
	// rotate from the drawn candidate until feasible (≤ 3 extra checks,
	// no draws). Every interior intersection admits all four headings.
	d := heading(st.rng.Intn(4))
	for i := 0; i < 4; i++ {
		if m.feasible(st.ix, st.iy, d) {
			return d
		}
		d = (d + 1) % 4
	}
	return east // unreachable: grids are at least 2×2
}

// turn returns the headings perpendicular to d.
func turns(d heading) (heading, heading) {
	if d == east || d == west {
		return north, south
	}
	return east, west
}

// reverse returns the opposite heading.
func reverse(d heading) heading {
	switch d {
	case east:
		return west
	case west:
		return east
	case north:
		return south
	default:
		return north
	}
}

// chooseHeading picks the next leg's direction at the current
// intersection: continue straight with probability 1-TurnProb, otherwise
// turn onto a feasible cross street; dead ends force a turn or U-turn.
// Draws are unconditional (one uniform plus one coin) so the stream
// position after a leg never depends on the intersection's geometry.
func (m *Manhattan) chooseHeading(st *manhattanState) heading {
	turnRoll := st.rng.Float64()
	sideRoll := st.rng.Float64()
	l, r := turns(st.dir)
	lOK := m.feasible(st.ix, st.iy, l)
	rOK := m.feasible(st.ix, st.iy, r)
	straightOK := m.feasible(st.ix, st.iy, st.dir)

	wantTurn := turnRoll < m.cfg.TurnProb
	if straightOK && !wantTurn {
		return st.dir
	}
	switch {
	case lOK && rOK:
		if sideRoll < 0.5 {
			return l
		}
		return r
	case lOK:
		return l
	case rOK:
		return r
	case straightOK:
		return st.dir // wanted to turn but no cross street exists here
	default:
		return reverse(st.dir) // dead end: U-turn
	}
}

// streetIndex numbers the street a heading travels on from (ix, iy):
// vertical streets first (by x index), then horizontal (by y index).
func (m *Manhattan) streetIndex(st *manhattanState, d heading) int {
	if d == north || d == south {
		return st.ix
	}
	return m.cfg.StreetsX + st.iy
}

// nextLeg advances st to its next intersection-to-intersection segment.
func (m *Manhattan) nextLeg(st *manhattanState) {
	st.dir = m.chooseHeading(st)
	nix, niy := st.ix, st.iy
	switch st.dir {
	case east:
		nix++
	case west:
		nix--
	case north:
		niy++
	case south:
		niy--
	}
	class := m.cfg.SpeedClasses[m.streetIndex(st, st.dir)%len(m.cfg.SpeedClasses)]
	speed := st.rng.Range(m.cfg.MinSpeed, m.cfg.MaxSpeed) * class
	if speed <= 0 {
		speed = m.cfg.MinSpeed
	}
	st.from = m.intersection(st.ix, st.iy)
	st.to = m.intersection(nix, niy)
	st.ix, st.iy = nix, niy
	dist := st.from.Dist(st.to)
	st.segStart = st.pauseUntil
	st.segEnd = st.segStart + time.Duration(dist/speed*float64(time.Second))
	st.pauseUntil = st.segEnd + m.cfg.Pause
}

// OnStreet reports whether p lies on a street line of the grid, within
// tol meters — the Manhattan invariant the property tests assert.
func (m *Manhattan) OnStreet(p Point, tol float64) bool {
	if !m.cfg.Terrain.Contains(p) {
		return false
	}
	onVertical := nearMultiple(p.X, m.dx, tol)
	onHorizontal := nearMultiple(p.Y, m.dy, tol)
	return onVertical || onHorizontal
}

func nearMultiple(v, step, tol float64) bool {
	if step <= 0 {
		return false
	}
	k := v / step
	frac := k - float64(int(k+0.5))
	d := frac * step
	if d < 0 {
		d = -d
	}
	return d <= tol
}
