package mobility

import (
	"math"
	"time"
)

// Density-gradient placement. A Warp is a deterministic, terrain-
// preserving map applied to every position an inner model reports, so a
// uniform movement model becomes a dense/sparse one without touching a
// single RNG draw: the inner model's streams are byte-identical whether
// or not a warp wraps it, replay across worker counts is untouched
// (warps are pure functions), and the identity case is simply "no
// wrapper". This is how the scenario layer expresses the dense-core /
// sparse-edge regimes of the Manhattan-grid simulation literature on top
// of any mobility model.

// Warp maps a position to a warped position. Implementations must map
// the terrain onto itself (no node may leave the area) and should be
// monotone per axis so trajectories stay continuous.
type Warp func(Point) Point

// Warped decorates a Model with a position warp.
type Warped struct {
	inner Model
	warp  Warp
}

// NewWarped wraps model so every reported position passes through warp.
func NewWarped(model Model, warp Warp) *Warped {
	return &Warped{inner: model, warp: warp}
}

// NumNodes implements Model.
func (w *Warped) NumNodes() int { return w.inner.NumNodes() }

// Position implements Model.
func (w *Warped) Position(id int, at time.Duration) Point {
	return w.warp(w.inner.Position(id, at))
}

// GradientWarp concentrates nodes toward the x = 0 edge: a uniform
// x-coordinate u·W maps to u²·W, giving a density that falls off as
// 1/√x across the terrain — dense near one edge, sparse at the far end.
// The y axis is untouched.
func GradientWarp(t Terrain) Warp {
	return func(p Point) Point {
		u := clamp01(p.X / t.Width)
		return Point{X: u * u * t.Width, Y: p.Y}
	}
}

// HotspotWarp concentrates nodes around the terrain center on both axes:
// each normalized coordinate u maps to 0.5 + 4(u−0.5)³, a cubic that
// fixes the edges and center but pulls everything else inward, producing
// a dense core with sparse borders.
func HotspotWarp(t Terrain) Warp {
	pull := func(u float64) float64 {
		d := clamp01(u) - 0.5
		return 0.5 + 4*d*d*d
	}
	return func(p Point) Point {
		return Point{X: pull(p.X/t.Width) * t.Width, Y: pull(p.Y/t.Height) * t.Height}
	}
}

func clamp01(u float64) float64 {
	return math.Min(1, math.Max(0, u))
}
