// Package mobility provides node mobility models for the simulator.
//
// Models are analytic: a node's position is a closed-form function of
// virtual time, so mobility adds no events to the simulation. The random
// waypoint model matches the evaluation setup of the LDR paper (nodes pick
// a uniform destination, move at a uniform speed in [MinSpeed, MaxSpeed],
// then pause for a fixed pause time).
package mobility

import (
	"math"
	"strconv"
	"time"

	"github.com/manetlab/ldr/internal/rng"
)

// Point is a position on the terrain, in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points in meters.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Model yields node positions over time. Queries must be issued with
// non-decreasing times per node; the simulator guarantees this because all
// queries happen at the current virtual time.
type Model interface {
	// Position returns the position of node id at virtual time at.
	Position(id int, at time.Duration) Point
	// NumNodes returns the number of nodes the model covers.
	NumNodes() int
}

// Terrain is the rectangular simulation area, in meters.
type Terrain struct {
	Width, Height float64
}

// Contains reports whether p lies within the terrain.
func (t Terrain) Contains(p Point) bool {
	return p.X >= 0 && p.X <= t.Width && p.Y >= 0 && p.Y <= t.Height
}

// WaypointConfig parameterizes the random waypoint model.
type WaypointConfig struct {
	Terrain  Terrain
	MinSpeed float64       // m/s, must be > 0 to avoid the stuck-node pathology
	MaxSpeed float64       // m/s
	Pause    time.Duration // fixed pause at each waypoint
}

// Waypoint implements the random waypoint model.
//
// Each node draws waypoints and speeds from its own PRNG stream (split
// from the scenario seed by node index), so a node's trajectory is a pure
// function of (seed, node, time): legs are advanced lazily on Position
// queries, and neither the order of queries across nodes nor how often a
// node is queried changes where anyone ends up. This query-pattern
// invariance is what allows the radio's spatial grid to skip position
// lookups for far-away nodes without perturbing the simulation.
type Waypoint struct {
	cfg   WaypointConfig
	nodes []waypointState
}

type waypointState struct {
	from, to   Point
	segStart   time.Duration // movement start
	segEnd     time.Duration // arrival at `to`
	pauseUntil time.Duration // end of pause following arrival
	rng        *rng.Source   // this node's private stream
}

var _ Model = (*Waypoint)(nil)

// NewWaypoint places n nodes uniformly on the terrain. Every node begins
// with an initial pause (so a pause time equal to the simulation length
// yields a static network, as in the paper's 900 s pause-time data points).
func NewWaypoint(n int, cfg WaypointConfig, src *rng.Source) *Waypoint {
	if cfg.MinSpeed <= 0 {
		cfg.MinSpeed = 1
	}
	if cfg.MaxSpeed < cfg.MinSpeed {
		cfg.MaxSpeed = cfg.MinSpeed
	}
	w := &Waypoint{
		cfg:   cfg,
		nodes: make([]waypointState, n),
	}
	for i := range w.nodes {
		st := &w.nodes[i]
		st.rng = src.Split("waypoint" + strconv.Itoa(i))
		p := w.randomPoint(st)
		st.from = p
		st.to = p
		st.pauseUntil = cfg.Pause
	}
	return w
}

// NumNodes implements Model.
func (w *Waypoint) NumNodes() int { return len(w.nodes) }

// Position implements Model.
func (w *Waypoint) Position(id int, at time.Duration) Point {
	st := &w.nodes[id]
	for at > st.pauseUntil {
		w.nextLeg(st)
	}
	if at >= st.segEnd {
		return st.to // paused at the waypoint
	}
	if st.segEnd == st.segStart {
		return st.to
	}
	frac := float64(at-st.segStart) / float64(st.segEnd-st.segStart)
	return Point{
		X: st.from.X + (st.to.X-st.from.X)*frac,
		Y: st.from.Y + (st.to.Y-st.from.Y)*frac,
	}
}

func (w *Waypoint) nextLeg(st *waypointState) {
	st.from = st.to
	st.to = w.randomPoint(st)
	speed := st.rng.Range(w.cfg.MinSpeed, w.cfg.MaxSpeed)
	dist := st.from.Dist(st.to)
	st.segStart = st.pauseUntil
	st.segEnd = st.segStart + time.Duration(dist/speed*float64(time.Second))
	st.pauseUntil = st.segEnd + w.cfg.Pause
}

func (w *Waypoint) randomPoint(st *waypointState) Point {
	return Point{
		X: st.rng.Float64() * w.cfg.Terrain.Width,
		Y: st.rng.Float64() * w.cfg.Terrain.Height,
	}
}

// Static is a mobility model in which nodes never move.
type Static struct {
	pts []Point
}

var _ Model = (*Static)(nil)

// NewStatic pins nodes at the given positions.
func NewStatic(pts []Point) *Static {
	cp := make([]Point, len(pts))
	copy(cp, pts)
	return &Static{pts: cp}
}

// NumNodes implements Model.
func (s *Static) NumNodes() int { return len(s.pts) }

// Position implements Model.
func (s *Static) Position(id int, _ time.Duration) Point { return s.pts[id] }

// Line places n static nodes on a horizontal line with the given spacing,
// a convenient topology for protocol unit tests (node i can only hear
// nodes i-1 and i+1 when spacing is just under the radio range).
func Line(n int, spacing float64) *Static {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: float64(i) * spacing, Y: 0}
	}
	return NewStatic(pts)
}

// Grid places n static nodes row-major on a grid with the given spacing.
func Grid(n, cols int, spacing float64) *Static {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X: float64(i%cols) * spacing,
			Y: float64(i/cols) * spacing,
		}
	}
	return NewStatic(pts)
}

// Script is a mobility model driven by per-node piecewise-linear
// trajectories, useful for reproducing hand-constructed scenarios such as
// the paper's Figure 1 example and for partition/heal demonstrations.
type Script struct {
	tracks [][]ScriptLeg
}

// ScriptLeg is one segment of a scripted trajectory: the node is at Pos at
// time At, and moves linearly toward the next leg's Pos thereafter.
type ScriptLeg struct {
	At  time.Duration
	Pos Point
}

var _ Model = (*Script)(nil)

// NewScript builds a scripted model. Each track must be sorted by time and
// non-empty; the node holds its first position before the first leg and its
// last position after the final leg.
func NewScript(tracks [][]ScriptLeg) *Script {
	return &Script{tracks: tracks}
}

// NumNodes implements Model.
func (s *Script) NumNodes() int { return len(s.tracks) }

// Position implements Model.
func (s *Script) Position(id int, at time.Duration) Point {
	track := s.tracks[id]
	if len(track) == 0 {
		return Point{}
	}
	if at <= track[0].At {
		return track[0].Pos
	}
	for i := 1; i < len(track); i++ {
		if at <= track[i].At {
			a, b := track[i-1], track[i]
			if b.At == a.At {
				return b.Pos
			}
			frac := float64(at-a.At) / float64(b.At-a.At)
			return Point{
				X: a.Pos.X + (b.Pos.X-a.Pos.X)*frac,
				Y: a.Pos.Y + (b.Pos.Y-a.Pos.Y)*frac,
			}
		}
	}
	return track[len(track)-1].Pos
}
