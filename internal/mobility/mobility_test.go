package mobility_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/rng"
)

func waypointModel(n int, pause time.Duration, seed int64) *mobility.Waypoint {
	return mobility.NewWaypoint(n, mobility.WaypointConfig{
		Terrain:  mobility.Terrain{Width: 1500, Height: 300},
		MinSpeed: 1,
		MaxSpeed: 20,
		Pause:    pause,
	}, rng.New(seed))
}

func TestWaypointStaysInsideTerrain(t *testing.T) {
	m := waypointModel(10, 0, 1)
	terrain := mobility.Terrain{Width: 1500, Height: 300}
	for step := 0; step < 2000; step++ {
		at := time.Duration(step) * 500 * time.Millisecond
		for id := 0; id < m.NumNodes(); id++ {
			if p := m.Position(id, at); !terrain.Contains(p) {
				t.Fatalf("node %d left terrain at t=%v: %+v", id, at, p)
			}
		}
	}
}

func TestWaypointInitialPauseHoldsStill(t *testing.T) {
	m := waypointModel(5, 30*time.Second, 2)
	for id := 0; id < 5; id++ {
		p0 := m.Position(id, 0)
		p1 := m.Position(id, 29*time.Second)
		if p0 != p1 {
			t.Fatalf("node %d moved during its initial pause: %+v -> %+v", id, p0, p1)
		}
	}
}

func TestWaypointEventuallyMoves(t *testing.T) {
	m := waypointModel(5, time.Second, 3)
	moved := false
	for id := 0; id < 5 && !moved; id++ {
		if m.Position(id, 0) != m.Position(id, 60*time.Second) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("no node moved within a minute despite a 1s pause time")
	}
}

func TestWaypointRespectsSpeedBound(t *testing.T) {
	m := waypointModel(8, 0, 4)
	const dt = 100 * time.Millisecond
	for id := 0; id < 8; id++ {
		prev := m.Position(id, 0)
		for step := 1; step < 3000; step++ {
			at := time.Duration(step) * dt
			cur := m.Position(id, at)
			// 20 m/s over 100 ms = 2 m max displacement (+ epsilon).
			if d := prev.Dist(cur); d > 2.0+1e-9 {
				t.Fatalf("node %d moved %.3f m in %v (max speed 20 m/s)", id, d, dt)
			}
			prev = cur
		}
	}
}

func TestLinePlacement(t *testing.T) {
	m := mobility.Line(4, 250)
	for i := 0; i < 4; i++ {
		p := m.Position(i, 0)
		if p.X != float64(i)*250 || p.Y != 0 {
			t.Fatalf("node %d at %+v, want (%d, 0)", i, p, i*250)
		}
	}
	if m.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", m.NumNodes())
	}
}

func TestGridPlacement(t *testing.T) {
	m := mobility.Grid(6, 3, 100)
	want := []mobility.Point{
		{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0},
		{X: 0, Y: 100}, {X: 100, Y: 100}, {X: 200, Y: 100},
	}
	for i, w := range want {
		if p := m.Position(i, time.Hour); p != w {
			t.Fatalf("node %d at %+v, want %+v", i, p, w)
		}
	}
}

func TestScriptInterpolation(t *testing.T) {
	m := mobility.NewScript([][]mobility.ScriptLeg{{
		{At: 0, Pos: mobility.Point{X: 0, Y: 0}},
		{At: 10 * time.Second, Pos: mobility.Point{X: 0, Y: 0}},
		{At: 20 * time.Second, Pos: mobility.Point{X: 100, Y: 0}},
	}})
	tests := []struct {
		at   time.Duration
		want mobility.Point
	}{
		{0, mobility.Point{X: 0, Y: 0}},
		{5 * time.Second, mobility.Point{X: 0, Y: 0}},
		{15 * time.Second, mobility.Point{X: 50, Y: 0}},
		{20 * time.Second, mobility.Point{X: 100, Y: 0}},
		{time.Hour, mobility.Point{X: 100, Y: 0}}, // holds the final position
	}
	for _, tt := range tests {
		if got := m.Position(0, tt.at); got != tt.want {
			t.Fatalf("Position(t=%v) = %+v, want %+v", tt.at, got, tt.want)
		}
	}
}

func TestDistSymmetricAndNonNegative(t *testing.T) {
	f := func(ax, ay, bx, by int16) bool {
		a := mobility.Point{X: float64(ax), Y: float64(ay)}
		b := mobility.Point{X: float64(bx), Y: float64(by)}
		return a.Dist(b) == b.Dist(a) && a.Dist(b) >= 0 && a.Dist(a) == 0
	}
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestWaypointTerrainProperty checks containment across random terrain
// shapes and pause times.
func TestWaypointTerrainProperty(t *testing.T) {
	f := func(w, h uint16, pauseSec uint8, seed int64) bool {
		terrain := mobility.Terrain{Width: float64(w%2000) + 10, Height: float64(h%2000) + 10}
		m := mobility.NewWaypoint(3, mobility.WaypointConfig{
			Terrain:  terrain,
			MinSpeed: 1,
			MaxSpeed: 20,
			Pause:    time.Duration(pauseSec) * time.Second,
		}, rng.New(seed))
		for step := 0; step < 100; step++ {
			at := time.Duration(step) * time.Second
			for id := 0; id < 3; id++ {
				if !terrain.Contains(m.Position(id, at)) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
