package mobility_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/rng"
)

// The warps must keep every node inside the terrain, actually skew the
// spatial distribution the way their names claim, and leave the inner
// model's draw streams untouched (a warped and an unwarped copy of the
// same seeded model stay in lockstep before warping).

func terrain() mobility.Terrain { return mobility.Terrain{Width: 1500, Height: 300} }

func waypoint(seed int64) *mobility.Waypoint {
	return mobility.NewWaypoint(40, mobility.WaypointConfig{
		Terrain:  terrain(),
		MinSpeed: 1,
		MaxSpeed: 20,
	}, rng.New(seed))
}

func TestWarpsStayInTerrain(t *testing.T) {
	tr := terrain()
	for _, tc := range []struct {
		name string
		warp mobility.Warp
	}{
		{"gradient", mobility.GradientWarp(tr)},
		{"hotspot", mobility.HotspotWarp(tr)},
	} {
		m := mobility.NewWarped(waypoint(3), tc.warp)
		for id := 0; id < m.NumNodes(); id++ {
			for s := 0; s <= 120; s += 5 {
				p := m.Position(id, time.Duration(s)*time.Second)
				if !tr.Contains(p) {
					t.Fatalf("%s: node %d at t=%ds left the terrain: %+v", tc.name, id, s, p)
				}
			}
		}
	}
}

func TestGradientWarpSkewsDensity(t *testing.T) {
	tr := terrain()
	m := mobility.NewWarped(waypoint(7), mobility.GradientWarp(tr))
	// Sample positions over time; far more mass must land in the left
	// half than the right (uniform would split ~50/50, the square warp
	// puts ~71% of a uniform marginal left of W/2).
	left, total := 0, 0
	for id := 0; id < m.NumNodes(); id++ {
		for s := 0; s <= 300; s += 3 {
			p := m.Position(id, time.Duration(s)*time.Second)
			total++
			if p.X < tr.Width/2 {
				left++
			}
		}
	}
	if frac := float64(left) / float64(total); frac < 0.60 {
		t.Fatalf("gradient warp left-half fraction %.2f, want ≥ 0.60", frac)
	}
}

func TestHotspotWarpConcentratesCenter(t *testing.T) {
	tr := terrain()
	warped := mobility.NewWarped(waypoint(11), mobility.HotspotWarp(tr))
	flat := waypoint(11)
	// The warped model must place strictly more samples in the central
	// quarter of each axis than the uniform one does.
	central := func(m mobility.Model) int {
		n := 0
		for id := 0; id < m.NumNodes(); id++ {
			for s := 0; s <= 300; s += 3 {
				p := m.Position(id, time.Duration(s)*time.Second)
				if p.X > tr.Width*3/8 && p.X < tr.Width*5/8 &&
					p.Y > tr.Height*3/8 && p.Y < tr.Height*5/8 {
					n++
				}
			}
		}
		return n
	}
	cw, cf := central(warped), central(flat)
	if cw <= cf {
		t.Fatalf("hotspot central-region samples %d not above uniform's %d", cw, cf)
	}
}

func TestWarpLeavesInnerModelUntouched(t *testing.T) {
	// Two identically seeded waypoint models, one warped: the inner
	// trajectories must stay in lockstep, proving the warp draws nothing
	// and perturbs no stream (the plumbing guarantee the replay tests
	// lean on).
	inner := waypoint(19)
	_ = mobility.NewWarped(inner, mobility.GradientWarp(terrain()))
	ref := waypoint(19)
	warp := mobility.GradientWarp(terrain())
	for id := 0; id < ref.NumNodes(); id++ {
		for s := 0; s <= 60; s += 7 {
			at := time.Duration(s) * time.Second
			got := inner.Position(id, at)
			want := ref.Position(id, at)
			if got != want {
				t.Fatalf("inner model diverged at node %d t=%v: %+v vs %+v", id, at, got, want)
			}
			_ = warp(got)
		}
	}
}
