// Package sim implements a deterministic discrete-event simulator.
//
// The simulator maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order, which —
// together with the seeded streams in package rng — makes every run fully
// reproducible from its scenario seed.
//
// The engine is intentionally single-threaded: all protocol, MAC, and radio
// code runs inside event callbacks on one goroutine. No locking is needed
// anywhere in the simulation path.
package sim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback. The zero value is not useful; obtain
// Events from Simulator.Schedule or Simulator.At.
type Event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	afn   func(any) // argument-style callback used by the transient path
	arg   any
	index int        // position in the heap, -1 once removed
	owner *Simulator // simulator holding the event while queued

	// transient events are pooled: no *Event pointer escapes to callers,
	// so the struct can be recycled the moment it fires.
	transient bool
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() time.Duration { return e.at }

// Cancel removes the event from the queue. Cancelling an event that has
// already fired or been cancelled is a no-op. The callback is released so
// a cancelled event does not pin its closure (and captured payloads)
// until the Event itself becomes unreachable.
func (e *Event) Cancel() {
	if e.index >= 0 && e.owner != nil {
		heap.Remove(&e.owner.queue, e.index)
		e.owner = nil
		e.fn = nil
		e.afn = nil
		e.arg = nil
	}
}

// Pending reports whether the event is still scheduled.
func (e *Event) Pending() bool { return e.index >= 0 }

// Simulator is a discrete-event simulation engine.
type Simulator struct {
	now    time.Duration
	queue  eventQueue
	seq    uint64
	fired  uint64
	halted bool
	free   []*Event // recycled transient events
}

// New returns a simulator with its clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// EventsFired returns the number of events executed so far, a cheap
// progress/cost measure for benchmarks.
func (s *Simulator) EventsFired() uint64 { return s.fired }

// Schedule runs fn after delay of virtual time. A negative delay is
// treated as zero (fire as soon as possible, after already-queued events
// at the current instant).
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// At runs fn at absolute virtual time t. Scheduling in the past is an
// error in the caller; the event is clamped to the current instant so the
// clock never runs backwards.
func (s *Simulator) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	s.seq++
	ev := &Event{at: t, seq: s.seq, fn: fn, owner: s}
	heap.Push(&s.queue, ev)
	return ev
}

// Every runs fn at absolute time start and then every interval, stopping
// once the next firing would pass until. The chain self-schedules, so it
// costs one queued event at a time regardless of how many ticks remain —
// and, unlike pre-scheduling the whole series, it cannot keep a drained
// queue alive past the last tick. Periodic instruments (fault injectors,
// invariant auditors) are the intended callers. A non-positive interval
// or start > until schedules nothing.
func (s *Simulator) Every(start, interval, until time.Duration, fn func()) {
	if interval <= 0 || start > until {
		return
	}
	var tick func()
	tick = func() {
		fn()
		if next := s.now + interval; next <= until {
			s.At(next, tick)
		}
	}
	s.At(start, tick)
}

// ScheduleTransient runs fn(arg) after delay of virtual time, like
// Schedule, but returns no handle: the event cannot be cancelled or
// observed. Because no *Event pointer escapes, the simulator recycles the
// event struct through an internal free list the moment it fires, so
// high-frequency callers (the radio schedules three of these per frame
// per receiver) pay no per-call allocation once the pool is warm.
func (s *Simulator) ScheduleTransient(delay time.Duration, fn func(any), arg any) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	var ev *Event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.at = s.now + delay
	ev.seq = s.seq
	ev.afn = fn
	ev.arg = arg
	ev.owner = s
	ev.transient = true
	heap.Push(&s.queue, ev)
}

// Step executes the next event, advancing the clock. It returns false if
// the queue is empty or the simulator has been halted.
func (s *Simulator) Step() bool {
	if s.halted || s.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*Event)
	ev.owner = nil
	s.now = ev.at
	s.fired++
	// Release the callback before invoking it so a fired event does not
	// pin its closure; transient events go back to the pool immediately
	// (safe: the callback may only schedule new events, never touch ev).
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	ev.fn, ev.afn, ev.arg = nil, nil, nil
	if ev.transient {
		s.free = append(s.free, ev)
	}
	if fn != nil {
		fn()
	} else if afn != nil {
		afn(arg)
	}
	return true
}

// Run executes events until the clock would pass `until`, the queue
// drains, or Halt is called. Events scheduled exactly at `until` still
// fire. The clock is left at min(until, time of last event).
func (s *Simulator) Run(until time.Duration) {
	for !s.halted && s.queue.Len() > 0 {
		next := s.queue.peek()
		if next.at > until {
			s.now = until
			return
		}
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// RunAll executes events until the queue drains or Halt is called.
func (s *Simulator) RunAll() {
	for s.Step() {
	}
}

// Halt stops the run loop after the current event returns. Subsequent
// Step and Run calls do nothing until Resume is called.
func (s *Simulator) Halt() { s.halted = true }

// Resume clears a Halt.
func (s *Simulator) Resume() { s.halted = false }

// Pending returns the number of events still queued.
func (s *Simulator) Pending() int { return s.queue.Len() }

// eventQueue is a binary min-heap ordered by (time, insertion sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

func (q eventQueue) peek() *Event { return q[0] }
