// Package sim implements a deterministic discrete-event simulator.
//
// The simulator maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order, which —
// together with the seeded streams in package rng — makes every run fully
// reproducible from its scenario seed.
//
// The engine is intentionally single-threaded: all protocol, MAC, and radio
// code runs inside event callbacks on one goroutine. No locking is needed
// anywhere in the simulation path.
//
// Every event object is recycled through a run-local free list
// (internal/runpool) the moment it fires or is cancelled, so the steady
// state of a warm run schedules events without allocating. Callers never
// hold *Event pointers: Schedule and At return a generation-stamped Timer
// handle whose Cancel and Pending become no-ops once the underlying event
// has fired and been reissued, making a stale handle harmless rather than
// a use-after-recycle bug.
package sim

import (
	"container/heap"
	"sync/atomic"
	"time"

	"github.com/manetlab/ldr/internal/runpool"
)

// Event is a scheduled callback. Event objects are owned and recycled by
// the Simulator; callers interact with them only through Timer handles.
type Event struct {
	at  time.Duration
	seq uint64
	gen uint32 // bumped on every recycle; Timer handles snapshot it
	fn  func()

	// Argument-style callback used by the transient path. Carrying both an
	// interface payload and a scalar lets hot callers pass a pointer and a
	// small integer (epoch, node id) without boxing either.
	afn func(any, uint64)
	arg any
	u   uint64

	index int        // position in the heap, -1 once removed
	owner *Simulator // simulator holding the event while queued
}

// Timer is a cancellable handle to a scheduled event. The zero Timer is
// valid and refers to nothing: Cancel is a no-op and Pending reports
// false. Handles are generation-checked, so holding one past its event's
// firing is safe — the recycled event cannot be cancelled by mistake.
type Timer struct {
	ev  *Event
	gen uint32
}

// Pending reports whether the timer's event is still scheduled.
func (t Timer) Pending() bool {
	return t.ev != nil && t.ev.gen == t.gen && t.ev.index >= 0
}

// Time returns the virtual time at which the event fires, or zero if the
// timer is no longer pending.
func (t Timer) Time() time.Duration {
	if !t.Pending() {
		return 0
	}
	return t.ev.at
}

// Cancel removes the event from the queue and recycles it. Cancelling an
// event that has already fired, been cancelled, or was never scheduled is
// a no-op.
func (t Timer) Cancel() {
	if !t.Pending() {
		return
	}
	ev := t.ev
	s := ev.owner
	heap.Remove(&s.queue, ev.index)
	s.recycle(ev)
}

// Simulator is a discrete-event simulation engine.
type Simulator struct {
	now    time.Duration
	queue  eventQueue
	seq    uint64
	fired  uint64
	halted bool
	pool   runpool.Pool[Event] // recycled events, transient and timed alike

	// interrupted is the only cross-goroutine door into the engine: other
	// goroutines (signal handlers, sweep watchdogs) may set it at any time,
	// and the run loop checks it between events. Everything else on the
	// struct stays single-threaded.
	interrupted atomic.Bool
}

// New returns a simulator with its clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// EventsFired returns the number of events executed so far, a cheap
// progress/cost measure for benchmarks.
func (s *Simulator) EventsFired() uint64 { return s.fired }

// get pops a pooled event (or allocates one) and stamps it for queueing.
func (s *Simulator) get(at time.Duration) *Event {
	s.seq++
	ev := s.pool.Get()
	ev.at = at
	ev.seq = s.seq
	ev.owner = s
	return ev
}

// recycle releases an event's callback and returns it to the pool. The
// generation bump invalidates every outstanding Timer handle.
func (s *Simulator) recycle(ev *Event) {
	ev.gen++
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	ev.u = 0
	ev.owner = nil
	s.pool.Put(ev)
}

// Schedule runs fn after delay of virtual time. A negative delay is
// treated as zero (fire as soon as possible, after already-queued events
// at the current instant).
func (s *Simulator) Schedule(delay time.Duration, fn func()) Timer {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// At runs fn at absolute virtual time t. Scheduling in the past is an
// error in the caller; the event is clamped to the current instant so the
// clock never runs backwards.
func (s *Simulator) At(t time.Duration, fn func()) Timer {
	if t < s.now {
		t = s.now
	}
	ev := s.get(t)
	ev.fn = fn
	heap.Push(&s.queue, ev)
	return Timer{ev: ev, gen: ev.gen}
}

// Every runs fn at absolute time start and then every interval, stopping
// once the next firing would pass until. The chain self-schedules, so it
// costs one queued event at a time regardless of how many ticks remain —
// and, unlike pre-scheduling the whole series, it cannot keep a drained
// queue alive past the last tick. Periodic instruments (fault injectors,
// invariant auditors) are the intended callers. A non-positive interval
// or start > until schedules nothing.
func (s *Simulator) Every(start, interval, until time.Duration, fn func()) {
	if interval <= 0 || start > until {
		return
	}
	var tick func()
	tick = func() {
		fn()
		if next := s.now + interval; next <= until {
			s.At(next, tick)
		}
	}
	s.At(start, tick)
}

// ScheduleTransient runs fn(arg, u) after delay of virtual time, like
// Schedule, but returns no handle: the event cannot be cancelled or
// observed. Because no Timer escapes, there is nothing for the caller to
// misuse and the event struct is recycled the moment it fires, so
// high-frequency callers (the radio schedules three of these per frame
// per receiver) pay no per-call allocation once the pool is warm.
//
// The payload is split in two on purpose: arg carries a pointer without
// allocating, and u carries a small scalar (an epoch, a node index)
// without the interface boxing that putting an int in arg would cost.
func (s *Simulator) ScheduleTransient(delay time.Duration, fn func(any, uint64), arg any, u uint64) {
	if delay < 0 {
		delay = 0
	}
	ev := s.get(s.now + delay)
	ev.afn = fn
	ev.arg = arg
	ev.u = u
	heap.Push(&s.queue, ev)
}

// Step executes the next event, advancing the clock. It returns false if
// the queue is empty or the simulator has been halted.
func (s *Simulator) Step() bool {
	if s.halted || s.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*Event)
	s.now = ev.at
	s.fired++
	// Copy the callback out and recycle before invoking: a fired event
	// must not pin its closure, and the callback may only schedule new
	// events — it can never reach the recycled struct because no *Event
	// escapes and the generation bump killed every Timer handle.
	fn, afn, arg, u := ev.fn, ev.afn, ev.arg, ev.u
	s.recycle(ev)
	if fn != nil {
		fn()
	} else if afn != nil {
		afn(arg, u)
	}
	return true
}

// Run executes events until the clock would pass `until`, the queue
// drains, Halt is called, or Interrupt is observed. Events scheduled
// exactly at `until` still fire. The clock is left at min(until, time of
// last event) — or wherever the last event left it if the run was
// interrupted, so partial metrics report the virtual time they cover.
func (s *Simulator) Run(until time.Duration) {
	for !s.halted && s.queue.Len() > 0 {
		if s.interrupted.Load() {
			return
		}
		next := s.queue.peek()
		if next.at > until {
			s.now = until
			return
		}
		s.Step()
	}
	if s.interrupted.Load() {
		return
	}
	if s.now < until {
		s.now = until
	}
}

// RunAll executes events until the queue drains, Halt is called, or
// Interrupt is observed.
func (s *Simulator) RunAll() {
	for !s.interrupted.Load() && s.Step() {
	}
}

// Halt stops the run loop after the current event returns. Subsequent
// Step and Run calls do nothing until Resume is called.
func (s *Simulator) Halt() { s.halted = true }

// Resume clears a Halt.
func (s *Simulator) Resume() { s.halted = false }

// Interrupt asks the run loop to stop at the next event boundary. Unlike
// Halt it is safe to call from any goroutine — signal handlers and sweep
// watchdogs use it to end a run cooperatively without tearing shared
// state. The current event always finishes; no event is cut in half.
func (s *Simulator) Interrupt() { s.interrupted.Store(true) }

// Interrupted reports whether Interrupt has been called. Safe for
// concurrent use.
func (s *Simulator) Interrupted() bool { return s.interrupted.Load() }

// Pending returns the number of events still queued.
func (s *Simulator) Pending() int { return s.queue.Len() }

// eventQueue is a binary min-heap ordered by (time, insertion sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

func (q eventQueue) peek() *Event { return q[0] }
