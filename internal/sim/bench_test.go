package sim_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/sim"
)

// BenchmarkScheduleAndFire measures raw engine throughput: the cost of
// scheduling and executing one event, the quantity every simulated frame,
// backoff, and timer pays.
func BenchmarkScheduleAndFire(b *testing.B) {
	s := sim.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Microsecond, func() {})
		s.Step()
	}
}

// BenchmarkDeepQueue measures heap behaviour with many pending events.
func BenchmarkDeepQueue(b *testing.B) {
	const depth = 4096
	s := sim.New()
	for i := 0; i < depth; i++ {
		var refill func()
		refill = func() { s.Schedule(time.Duration(i+1)*time.Microsecond, refill) }
		s.Schedule(time.Duration(i)*time.Microsecond, refill)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkCancel measures event cancellation (route timers are cancelled
// far more often than they fire).
func BenchmarkCancel(b *testing.B) {
	s := sim.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := s.Schedule(time.Hour, func() {})
		ev.Cancel()
	}
}

// BenchmarkScheduleTransient proves the unboxed transient path: a pointer
// payload plus a scalar argument schedule and fire at 0 allocs/op once
// the event pool is warm.
func BenchmarkScheduleTransient(b *testing.B) {
	s := sim.New()
	fn := func(any, uint64) {}
	payload := new(int)
	s.ScheduleTransient(0, fn, payload, 1)
	s.RunAll() // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScheduleTransient(time.Microsecond, fn, payload, uint64(i))
		s.Step()
	}
}
