package sim_test

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"github.com/manetlab/ldr/internal/sim"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := sim.New()
	var got []time.Duration
	for _, d := range []time.Duration{5, 1, 3, 2, 4} {
		d := d
		s.Schedule(d, func() { got = append(got, d) })
	}
	s.RunAll()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := sim.New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Second, func() { got = append(got, i) })
	}
	s.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	s := sim.New()
	var at time.Duration
	s.Schedule(7*time.Second, func() { at = s.Now() })
	s.RunAll()
	if at != 7*time.Second {
		t.Fatalf("Now() inside event = %v, want 7s", at)
	}
}

func TestRunStopsAtDeadline(t *testing.T) {
	s := sim.New()
	fired := 0
	s.Schedule(time.Second, func() { fired++ })
	s.Schedule(3*time.Second, func() { fired++ })
	s.Run(2 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (second event is past the deadline)", fired)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want exactly the deadline", s.Now())
	}
	s.Run(5 * time.Second)
	if fired != 2 {
		t.Fatalf("fired = %d after second Run, want 2", fired)
	}
}

func TestRunIncludesEventsExactlyAtDeadline(t *testing.T) {
	s := sim.New()
	fired := false
	s.Schedule(2*time.Second, func() { fired = true })
	s.Run(2 * time.Second)
	if !fired {
		t.Fatal("event exactly at the deadline did not fire")
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	s := sim.New()
	fired := false
	ev := s.Schedule(time.Second, func() { fired = true })
	if !ev.Pending() {
		t.Fatal("freshly scheduled event is not pending")
	}
	ev.Cancel()
	if ev.Pending() {
		t.Fatal("cancelled event still pending")
	}
	s.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	ev.Cancel() // double-cancel must be a no-op
}

func TestCancelFromInsideEarlierEvent(t *testing.T) {
	s := sim.New()
	fired := false
	later := s.Schedule(2*time.Second, func() { fired = true })
	s.Schedule(time.Second, func() { later.Cancel() })
	s.RunAll()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	s := sim.New()
	s.Schedule(time.Second, func() {
		s.Schedule(-5*time.Second, func() {
			if s.Now() != time.Second {
				t.Fatalf("negative delay fired at %v, want clamp to 1s", s.Now())
			}
		})
	})
	s.RunAll()
}

func TestHaltStopsRun(t *testing.T) {
	s := sim.New()
	fired := 0
	s.Schedule(1, func() { fired++; s.Halt() })
	s.Schedule(2, func() { fired++ })
	s.RunAll()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (halted after first)", fired)
	}
	s.Resume()
	s.RunAll()
	if fired != 2 {
		t.Fatalf("fired = %d after resume, want 2", fired)
	}
}

func TestEventsScheduledDuringRunFire(t *testing.T) {
	s := sim.New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			s.Schedule(time.Millisecond, recurse)
		}
	}
	s.Schedule(0, recurse)
	s.RunAll()
	if depth != 100 {
		t.Fatalf("chained scheduling reached depth %d, want 100", depth)
	}
	if want := uint64(100); s.EventsFired() != want {
		t.Fatalf("EventsFired = %d, want %d", s.EventsFired(), want)
	}
}

// TestRandomScheduleIsChronological is a property test: any batch of
// random delays fires in non-decreasing time order, with FIFO ties.
func TestRandomScheduleIsChronological(t *testing.T) {
	f := func(delays []uint16) bool {
		s := sim.New()
		type firing struct {
			at  time.Duration
			seq int
		}
		var fired []firing
		for i, d := range delays {
			i, at := i, time.Duration(d)*time.Millisecond
			s.Schedule(at, func() { fired = append(fired, firing{at: s.Now(), seq: i}) })
		}
		s.RunAll()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false // FIFO violated for ties
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
