package sim

import (
	"testing"
	"time"
)

// White-box tests for the event free list and callback-release semantics.

func TestCancelReleasesCallback(t *testing.T) {
	s := New()
	fired := false
	ev := s.Schedule(time.Hour, func() { fired = true })
	ev.Cancel()
	if ev.fn != nil || ev.afn != nil || ev.arg != nil {
		t.Fatal("Cancel left the callback pinned")
	}
	if ev.Pending() {
		t.Fatal("cancelled event still pending")
	}
	ev.Cancel() // double-cancel is a no-op
	s.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestFiredEventReleasesCallback(t *testing.T) {
	s := New()
	ev := s.Schedule(0, func() {})
	s.RunAll()
	if ev.fn != nil {
		t.Fatal("fired event still pins its closure")
	}
}

func TestTransientEventsAreRecycled(t *testing.T) {
	s := New()
	calls := 0
	fn := func(arg any) {
		if arg != "payload" {
			t.Fatalf("arg = %v", arg)
		}
		calls++
	}
	s.ScheduleTransient(0, fn, "payload")
	s.RunAll()
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
	if len(s.free) != 1 {
		t.Fatalf("free list has %d events, want 1", len(s.free))
	}
	recycled := s.free[0]
	if recycled.afn != nil || recycled.arg != nil {
		t.Fatal("recycled event still pins its callback")
	}
	s.ScheduleTransient(0, fn, "payload")
	if len(s.free) != 0 {
		t.Fatal("pooled event was not reused")
	}
	if s.queue[0] != recycled {
		t.Fatal("scheduled event is not the pooled one")
	}
	s.RunAll()
	if calls != 2 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestTransientZeroAllocsWhenWarm(t *testing.T) {
	s := New()
	fn := func(any) {}
	s.ScheduleTransient(0, fn, nil)
	s.RunAll() // warm the pool
	allocs := testing.AllocsPerRun(1000, func() {
		s.ScheduleTransient(0, fn, nil)
		s.RunAll()
	})
	if allocs > 0 {
		t.Fatalf("ScheduleTransient allocates %.1f/op with a warm pool", allocs)
	}
}

func TestTransientOrderingMatchesSchedule(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(time.Millisecond, func() { order = append(order, 1) })
	s.ScheduleTransient(time.Millisecond, func(any) { order = append(order, 2) }, nil)
	s.Schedule(time.Millisecond, func() { order = append(order, 3) })
	s.ScheduleTransient(0, func(any) { order = append(order, 0) }, nil)
	s.RunAll()
	for i, v := range order {
		if i != v {
			t.Fatalf("firing order = %v, want scheduling order within an instant", order)
		}
	}
}

func TestTransientNegativeDelayClamped(t *testing.T) {
	s := New()
	fired := false
	s.ScheduleTransient(-time.Second, func(any) { fired = true }, nil)
	if s.queue.peek().at != 0 {
		t.Fatal("negative delay not clamped to now")
	}
	s.RunAll()
	if !fired || s.Now() != 0 {
		t.Fatalf("fired=%v now=%v", fired, s.Now())
	}
}
