package sim

import (
	"testing"
	"time"
)

// White-box tests for the event free list, Timer generation checks, and
// callback-release semantics.

func TestCancelRecyclesEvent(t *testing.T) {
	s := New()
	fired := false
	ev := s.Schedule(time.Hour, func() { fired = true })
	ev.Cancel()
	if ev.Pending() {
		t.Fatal("cancelled event still pending")
	}
	if s.pool.Len() != 1 {
		t.Fatalf("free list has %d events after Cancel, want 1", s.pool.Len())
	}
	ev.Cancel() // double-cancel is a no-op
	if s.pool.Len() != 1 {
		t.Fatal("double-cancel recycled the event twice")
	}
	s.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestFiredEventIsRecycledAndReleased(t *testing.T) {
	s := New()
	s.Schedule(0, func() {})
	s.RunAll()
	if s.pool.Len() != 1 {
		t.Fatalf("free list has %d events after firing, want 1", s.pool.Len())
	}
	recycled := s.pool.Get() // pop the recycled event to inspect it
	if recycled.fn != nil || recycled.afn != nil || recycled.arg != nil {
		t.Fatal("recycled event still pins its callback")
	}
	s.pool.Put(recycled)
}

// TestStaleTimerIsInert is the generation-check property: a Timer held
// past its event's firing must not be able to cancel (or observe) the
// recycled event after it is reissued to an unrelated caller.
func TestStaleTimerIsInert(t *testing.T) {
	s := New()
	stale := s.Schedule(0, func() {})
	s.RunAll() // fires; event goes back to the pool
	fired := false
	fresh := s.Schedule(time.Second, func() { fired = true })
	if fresh.ev != stale.ev {
		t.Fatal("second Schedule did not reuse the pooled event (test setup)")
	}
	if stale.Pending() {
		t.Fatal("stale handle reports the reissued event as its own")
	}
	stale.Cancel() // must not touch the reissued event
	if !fresh.Pending() {
		t.Fatal("stale handle cancelled an unrelated reissued event")
	}
	s.RunAll()
	if !fired {
		t.Fatal("reissued event did not fire")
	}
}

func TestZeroTimerIsInert(t *testing.T) {
	var tm Timer
	if tm.Pending() {
		t.Fatal("zero Timer reports pending")
	}
	tm.Cancel() // must not panic
	if tm.Time() != 0 {
		t.Fatal("zero Timer has a firing time")
	}
}

func TestTransientEventsAreRecycled(t *testing.T) {
	s := New()
	calls := 0
	fn := func(arg any, u uint64) {
		if arg != "payload" || u != 7 {
			t.Fatalf("arg = %v, u = %d", arg, u)
		}
		calls++
	}
	s.ScheduleTransient(0, fn, "payload", 7)
	s.RunAll()
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
	if s.pool.Len() != 1 {
		t.Fatalf("free list has %d events, want 1", s.pool.Len())
	}
	recycled := s.pool.Get() // pop the recycled event to inspect it
	if recycled.afn != nil || recycled.arg != nil || recycled.u != 0 {
		t.Fatal("recycled event still pins its callback")
	}
	s.pool.Put(recycled)
	s.ScheduleTransient(0, fn, "payload", 7)
	if s.pool.Len() != 0 {
		t.Fatal("pooled event was not reused")
	}
	if s.queue[0] != recycled {
		t.Fatal("scheduled event is not the pooled one")
	}
	s.RunAll()
	if calls != 2 {
		t.Fatalf("calls = %d", calls)
	}
}

// TestScheduleZeroAllocsWhenWarm guards the pooled schedule/fire cycle:
// with a warm pool, neither Schedule nor firing may allocate.
func TestScheduleZeroAllocsWhenWarm(t *testing.T) {
	s := New()
	fn := func() {}
	s.Schedule(0, fn)
	s.RunAll() // warm the pool
	allocs := testing.AllocsPerRun(1000, func() {
		s.Schedule(0, fn)
		s.RunAll()
	})
	if allocs > 0 {
		t.Fatalf("Schedule allocates %.1f/op with a warm pool", allocs)
	}
}

// TestCancelZeroAllocsWhenWarm guards the schedule/cancel cycle (route
// timers are cancelled far more often than they fire).
func TestCancelZeroAllocsWhenWarm(t *testing.T) {
	s := New()
	fn := func() {}
	s.Schedule(0, fn).Cancel()
	allocs := testing.AllocsPerRun(1000, func() {
		s.Schedule(time.Hour, fn).Cancel()
	})
	if allocs > 0 {
		t.Fatalf("Schedule+Cancel allocates %.1f/op with a warm pool", allocs)
	}
}

// TestTransientZeroAllocsWhenWarm guards the no-boxing contract: a
// pointer payload in arg plus a scalar in u must not allocate.
func TestTransientZeroAllocsWhenWarm(t *testing.T) {
	s := New()
	fn := func(any, uint64) {}
	payload := new(int)
	s.ScheduleTransient(0, fn, payload, 1)
	s.RunAll() // warm the pool
	allocs := testing.AllocsPerRun(1000, func() {
		s.ScheduleTransient(0, fn, payload, 42)
		s.RunAll()
	})
	if allocs > 0 {
		t.Fatalf("ScheduleTransient allocates %.1f/op with a warm pool", allocs)
	}
}

func TestTransientOrderingMatchesSchedule(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(time.Millisecond, func() { order = append(order, 1) })
	s.ScheduleTransient(time.Millisecond, func(any, uint64) { order = append(order, 2) }, nil, 0)
	s.Schedule(time.Millisecond, func() { order = append(order, 3) })
	s.ScheduleTransient(0, func(any, uint64) { order = append(order, 0) }, nil, 0)
	s.RunAll()
	for i, v := range order {
		if i != v {
			t.Fatalf("firing order = %v, want scheduling order within an instant", order)
		}
	}
}

func TestTransientNegativeDelayClamped(t *testing.T) {
	s := New()
	fired := false
	s.ScheduleTransient(-time.Second, func(any, uint64) { fired = true }, nil, 0)
	if s.queue.peek().at != 0 {
		t.Fatal("negative delay not clamped to now")
	}
	s.RunAll()
	if !fired || s.Now() != 0 {
		t.Fatalf("fired=%v now=%v", fired, s.Now())
	}
}
