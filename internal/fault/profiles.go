package fault

import (
	"fmt"
	"time"
)

// ProfileNames lists the built-in fault profiles in presentation order.
// "none" is a real profile (an empty plan), so fault-free cells appear in
// the same chaos tables as faulted ones.
func ProfileNames() []string {
	return []string{"none", "reboot", "flap", "partition", "lossy", "mayhem"}
}

// Profile returns the named built-in plan scaled to a node count and run
// length, so the same profile is meaningful in a 20-second test and the
// paper's 900-second scenario. Fault pressure scales with the network:
// crash rounds hit ~10% of nodes, flap rounds ~20% of links-per-node.
func Profile(name string, nodes int, simTime time.Duration) (Plan, error) {
	tenth := max(nodes/10, 1)
	fifth := max(nodes/5, 1)
	switch name {
	case "none":
		return Plan{Name: "none"}, nil

	case "reboot":
		// Periodic crash rounds with volatile-state loss: the regime of
		// the van Glabbeek AODV-loop construction.
		return Plan{Name: "reboot", Specs: []Spec{{
			Kind:     Crash,
			At:       simTime / 10,
			Every:    max(simTime/30, 2*time.Second),
			Duration: 250 * time.Millisecond,
			Count:    tenth,
		}}}, nil

	case "flap":
		// Short random link blackouts: link-layer failure detection and
		// route-error churn without any node losing state.
		return Plan{Name: "flap", Specs: []Spec{{
			Kind:     LinkFlap,
			At:       simTime / 20,
			Every:    max(simTime/60, time.Second),
			Duration: time.Second,
			Count:    fifth,
		}}}, nil

	case "partition":
		// Recurring half/half splits with heals: every flow crossing the
		// cut loses its route, then rediscovers it.
		return Plan{Name: "partition", Specs: []Spec{{
			Kind:     Partition,
			At:       simTime / 6,
			Every:    simTime / 3,
			Duration: max(simTime/15, 2*time.Second),
		}}}, nil

	case "lossy":
		// A permanently degraded channel: 10% delivery loss, 5%
		// duplication, up to 20 ms of extra delivery latency.
		return Plan{Name: "lossy", Specs: []Spec{{
			Kind:     Lossy,
			At:       time.Second,
			Drop:     0.10,
			Dup:      0.05,
			DelayMax: 20 * time.Millisecond,
		}}}, nil

	case "mayhem":
		// Everything at once, each mechanism milder than its dedicated
		// profile: the kitchen-sink robustness check.
		return Plan{Name: "mayhem", Specs: []Spec{
			{
				Kind:     Crash,
				At:       simTime / 8,
				Every:    max(simTime/15, 4*time.Second),
				Duration: 250 * time.Millisecond,
				Count:    tenth,
			},
			{
				Kind:     LinkFlap,
				At:       simTime / 10,
				Every:    max(simTime/30, 2*time.Second),
				Duration: time.Second,
				Count:    tenth,
			},
			{
				Kind:     Partition,
				At:       simTime / 2,
				Duration: max(simTime/20, 2*time.Second),
			},
			{
				Kind:     Lossy,
				At:       time.Second,
				Drop:     0.05,
				Dup:      0.02,
				DelayMax: 10 * time.Millisecond,
			},
		}}, nil

	default:
		return Plan{}, fmt.Errorf("fault: unknown profile %q (have %v)", name, ProfileNames())
	}
}
