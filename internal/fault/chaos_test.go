package fault_test

// Property tests for the fault subsystem at large: every protocol must
// survive every built-in fault profile over a fixed seed matrix, LDR
// must come out with a spotless audit, repeated runs must be bit-equal,
// and the audit machinery itself must stay allocation-bounded.

import (
	"fmt"
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/fault"
	"github.com/manetlab/ldr/internal/loopcheck"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/scenario"
)

// chaosConfig is the reduced-scale scenario the property tests run:
// small enough that the full profile × seed matrix finishes in seconds,
// dense enough (25 nodes on 1000 m × 300 m) that routes have real
// multi-hop structure to corrupt.
func chaosConfig(proto scenario.ProtocolName, seed int64, plan *fault.Plan) scenario.Config {
	return scenario.Config{
		Protocol:     proto,
		Nodes:        25,
		Terrain:      mobility.Terrain{Width: 1000, Height: 300},
		Flows:        5,
		PauseTime:    0,
		MinSpeed:     1,
		MaxSpeed:     20,
		SimTime:      30 * time.Second,
		Seed:         seed,
		FaultPlan:    plan,
		AuditCadence: 50 * time.Millisecond,
	}
}

// TestChaosLDRCleanUnderEveryProfile is the headline property from the
// paper's Theorem 2: whatever the fault schedule does — crash/reboot
// cycles, link flaps, partitions, lossy delivery, or all four at once —
// LDR's successor graphs stay loop-free and its (seq, fd) labels keep
// the ordering criterion, at every audited instant of every seed.
func TestChaosLDRCleanUnderEveryProfile(t *testing.T) {
	for _, profile := range fault.ProfileNames() {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", profile, seed), func(t *testing.T) {
				plan, err := fault.Profile(profile, 25, 30*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				res, err := scenario.Run(chaosConfig(scenario.LDR, seed, &plan))
				if err != nil {
					t.Fatal(err)
				}
				c := res.Collector
				if c.LoopViolations != 0 || c.OrderingViolations != 0 {
					t.Errorf("LDR violated invariants: loops=%d ordering=%d (first: %v)",
						c.LoopViolations, c.OrderingViolations, res.Violations)
				}
				if c.AuditSnapshots == 0 {
					t.Error("auditor never ran")
				}
				switch profile {
				case "reboot", "mayhem":
					if res.Faults.Crashes == 0 {
						t.Errorf("profile %s executed no crashes: %+v", profile, res.Faults)
					}
				case "flap":
					if res.Faults.LinkOutages == 0 {
						t.Errorf("profile flap severed no links: %+v", res.Faults)
					}
				case "partition":
					if res.Faults.Partitions == 0 {
						t.Errorf("profile partition never split the network: %+v", res.Faults)
					}
				}
			})
		}
	}
}

// TestChaosEveryProtocolSurvives runs the comparison protocols through
// the harshest profiles. No invariant claim is made for them — AODV is
// *expected* to loop under reboot — but the runs must complete, deliver
// data, and keep the injector and auditor accounting coherent.
func TestChaosEveryProtocolSurvives(t *testing.T) {
	for _, proto := range scenario.AllProtocols {
		for _, profile := range []string{"reboot", "mayhem"} {
			for seed := int64(1); seed <= 2; seed++ {
				t.Run(fmt.Sprintf("%s/%s/seed%d", proto, profile, seed), func(t *testing.T) {
					plan, err := fault.Profile(profile, 25, 30*time.Second)
					if err != nil {
						t.Fatal(err)
					}
					res, err := scenario.Run(chaosConfig(proto, seed, &plan))
					if err != nil {
						t.Fatal(err)
					}
					if res.Collector.DataDelivered == 0 {
						t.Errorf("%s delivered nothing under %s", proto, profile)
					}
					if res.Faults.Crashes == 0 || res.Faults.Reboots != res.Faults.Crashes {
						t.Errorf("incoherent injector accounting: %+v", res.Faults)
					}
					if res.Collector.AuditSnapshots == 0 {
						t.Error("auditor never ran")
					}
				})
			}
		}
	}
}

// TestChaosRunsAreDeterministic re-runs one mayhem cell and requires the
// two results to agree on every counter the chaos table reports. The
// injector draws from its own split of the seed, so this also pins down
// that fault scheduling, delivery faults, and audit cadence are all on
// virtual time, never wall clock.
func TestChaosRunsAreDeterministic(t *testing.T) {
	fingerprint := func() string {
		plan, err := fault.Profile("mayhem", 25, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		res, err := scenario.Run(chaosConfig(scenario.AODV, 7, &plan))
		if err != nil {
			t.Fatal(err)
		}
		c := res.Collector
		return fmt.Sprintf("init=%d deliv=%d tx=%d drop=%d ctrl=%d lat=%v audits=%d loops=%d ord=%d faults=%+v events=%d",
			c.DataInitiated, c.DataDelivered, c.DataTransmitted, c.DataDropped,
			c.TotalControlTransmitted(), c.MeanLatency(), c.AuditSnapshots,
			c.LoopViolations, c.OrderingViolations, res.Faults, res.Events)
	}
	a, b := fingerprint(), fingerprint()
	if a != b {
		t.Fatalf("same config, different runs:\n  %s\n  %s", a, b)
	}
}

// TestAuditAllocationBounded pins the cost of a warm audit sweep: once
// the checker's buffers have sized themselves to the network, a full
// snapshot-and-verify pass over a live 25-node LDR scenario must not
// allocate. This is what makes a 10–20 ms audit cadence affordable
// inside a 900-second run.
func TestAuditAllocationBounded(t *testing.T) {
	nw, gen, err := scenario.Build(chaosConfig(scenario.LDR, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	gen.Start()
	nw.Sim.Run(10 * time.Second) // populate routing tables mid-flight
	defer nw.Stop()

	ck := loopcheck.NewChecker()
	if vs := ck.Check(nw.Nodes); len(vs) != 0 { // warm + sanity
		t.Fatalf("live LDR tables violate invariants: %v", vs)
	}
	avg := testing.AllocsPerRun(100, func() {
		ck.Check(nw.Nodes)
	})
	if avg > 0 {
		t.Errorf("warm audit sweep allocates %.1f times per pass, want 0", avg)
	}
}

// BenchmarkAuditOverhead measures what continuous auditing costs: the
// paper-scale 50-node scenario run twice per iteration, without and with
// a 100 ms audit cadence, reporting the wall-clock overhead percentage
// as a custom metric (the acceptance bar is < 10%).
func BenchmarkAuditOverhead(b *testing.B) {
	base := scenario.Nodes50(scenario.LDR, 10, 0, 1)
	base.SimTime = 30 * time.Second

	runOnce := func(cadence time.Duration) time.Duration {
		cfg := base
		cfg.AuditCadence = cadence
		start := time.Now()
		if _, err := scenario.Run(cfg); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}

	var plain, audited time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plain += runOnce(0)
		audited += runOnce(100 * time.Millisecond)
	}
	b.StopTimer()
	overhead := 100 * (float64(audited) - float64(plain)) / float64(plain)
	b.ReportMetric(overhead, "audit-overhead-%")
	b.ReportMetric(float64(audited)/float64(b.N)/1e6, "audited-ms/run")
}
