package fault

import (
	"time"

	"github.com/manetlab/ldr/internal/loopcheck"
	"github.com/manetlab/ldr/internal/routing"
)

// AuditConfig parameterizes the continuous invariant auditor.
type AuditConfig struct {
	// Cadence is the virtual-time period between table snapshots.
	// Zero selects 100 ms — fine enough to catch the transient loops
	// that matter (they persist for seconds once formed) while keeping
	// the audit itself a small fraction of run cost.
	Cadence time.Duration
	// Start is the first snapshot instant; zero selects one Cadence in.
	Start time.Duration
	// Until is the last instant a snapshot may fire (required: it bounds
	// the self-rescheduling chain so the auditor cannot keep a drained
	// event queue alive).
	Until time.Duration
	// MaxRecords caps the retained violation samples (counters are
	// always exact). Zero selects 16.
	MaxRecords int
}

// Record is one retained violation sample with its detection time.
type Record struct {
	At time.Duration
	V  loopcheck.Violation
}

// Auditor snapshots every routing table on a virtual-time cadence and
// scores violations into the network's metrics collector: each detected
// successor-graph cycle increments LoopViolations, each broken
// (seq, fd) ordering edge increments OrderingViolations, and every sweep
// increments AuditSnapshots. The first MaxRecords violations are kept
// verbatim for diagnosis. The underlying loopcheck.Checker reuses its
// buffers, so a clean sweep allocates nothing once warm.
type Auditor struct {
	nw      *routing.Network
	cfg     AuditConfig
	checker *loopcheck.Checker

	// Records holds the first violations seen, in detection order.
	Records []Record
}

// NewAuditor builds an auditor for the network. Call Start before the
// simulation runs, or drive it manually with CheckNow.
func NewAuditor(nw *routing.Network, cfg AuditConfig) *Auditor {
	if cfg.Cadence <= 0 {
		cfg.Cadence = 100 * time.Millisecond
	}
	if cfg.Start <= 0 {
		cfg.Start = cfg.Cadence
	}
	if cfg.MaxRecords <= 0 {
		cfg.MaxRecords = 16
	}
	return &Auditor{nw: nw, cfg: cfg, checker: loopcheck.NewChecker()}
}

// Start schedules the periodic sweeps up to cfg.Until.
func (a *Auditor) Start() {
	a.nw.Sim.Every(a.cfg.Start, a.cfg.Cadence, a.cfg.Until, func() { a.CheckNow() })
}

// CheckNow runs one sweep immediately and returns the number of
// violations it found.
func (a *Auditor) CheckNow() int {
	col := a.nw.Collector
	col.AuditSnapshots++
	vs := a.checker.Check(a.nw.Nodes)
	for _, v := range vs {
		if len(v.Cycle) > 0 {
			col.LoopViolations++
		} else {
			col.OrderingViolations++
		}
		if len(a.Records) < a.cfg.MaxRecords {
			a.Records = append(a.Records, Record{At: a.nw.Sim.Now(), V: v})
		}
	}
	return len(vs)
}
