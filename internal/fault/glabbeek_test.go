package fault_test

// The van Glabbeek et al. construction ("Sequence Numbers Do Not
// Guarantee Loop Freedom — AODV Can Yield Routing Loops"), replayed from
// a checker-emitted seed rather than a hand-coded choreography: the
// bounded model checker (internal/modelcheck) rediscovers the loop
// automatically — on the 3-node line with a crash-reboot and one message
// loss in budget, BFS finds a 9-step schedule ending in a mutual-
// successor loop — and its witness translator emits the conformance seed
// committed under internal/modelcheck/testdata/. This test replays that
// artifact through the full MAC/radio simulator.
//
// The schedule the checker found is exactly the published construction:
// A(0) discovers D(2) through B(1); the B–D link blacks out permanently;
// B crash-reboots, losing (for AODV) its own sequence knowledge; B
// re-solicits D and A answers from its stale-but-active route through B
// — so B installs D-via-A while A keeps D-via-B.
//
// LDR under the identical choreography stays clean for two reasons the
// paper builds in: B's solicitation for D arriving at A *from A's own
// successor for D* invalidates A's route (the request-as-error rule,
// §5), and a relay may only answer for a destination it still has an
// active route to. The auditor must find at least one loop for AODV and
// nothing at all for LDR.
//
// Regenerate the seed with `make modelcheck-seed`; the checker's own
// suite (internal/modelcheck) additionally verifies that a freshly
// discovered witness — not just the committed one — replays to a loop.

import (
	"path/filepath"
	"testing"

	"github.com/manetlab/ldr/internal/conformance"
	"github.com/manetlab/ldr/internal/scenario"
)

const glabbeekSeed = "../modelcheck/testdata/aodv-line3-loop.json"

func loadGlabbeek(t *testing.T) conformance.Spec {
	t.Helper()
	spec, err := conformance.LoadSpec(filepath.FromSlash(glabbeekSeed))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Protocol != string(scenario.AODV) || spec.Script == nil {
		t.Fatalf("committed seed is not a scripted AODV witness: %s", spec)
	}
	return spec
}

func TestGlabbeekLoopAODV(t *testing.T) {
	rep, err := conformance.CheckSpec(loadGlabbeek(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Collector.AuditSnapshots == 0 {
		t.Fatal("auditor never ran")
	}
	if rep.Collector.LoopViolations == 0 {
		t.Fatalf("auditor found no AODV routing loop; audits=%d", rep.Collector.AuditSnapshots)
	}
}

func TestGlabbeekCleanLDR(t *testing.T) {
	spec := loadGlabbeek(t)
	spec.Protocol = string(scenario.LDR)
	rep, err := conformance.CheckSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if l, o := rep.Collector.LoopViolations, rep.Collector.OrderingViolations; l != 0 || o != 0 {
		t.Fatalf("LDR violated invariants under the reboot choreography: loops=%d ordering=%d", l, o)
	}
	if rep.Collector.AuditSnapshots == 0 {
		t.Fatal("auditor never ran")
	}
	t.Logf("ldr: feasrej=%d audits=%d", rep.Collector.FeasibilityRejections, rep.Collector.AuditSnapshots)
}
