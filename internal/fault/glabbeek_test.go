package fault_test

// The directed reproduction of the van Glabbeek et al. construction
// ("Sequence Numbers Do Not Guarantee Loop Freedom — AODV Can Yield
// Routing Loops"): on a three-node line A–B–D, A holds a route to D
// through B. B crashes, losing its volatile state — including, for AODV,
// its own sequence number — and its link to D blacks out. After
// rebooting, B solicits a route to D with its sequence knowledge gone
// (UnknownSeq). A still holds the stale-but-active route *through B*,
// so AODV lets A answer — and B installs D-via-A while A keeps D-via-B:
// a mutual-successor loop that data then ping-pongs around until TTL
// death, with no RERR ever issued.
//
// LDR under the identical choreography stays clean for two reasons the
// paper builds in: B's solicitation for D arriving at A *from A's own
// successor for D* invalidates A's route (the request-as-error rule,
// §5), and a relay may only answer or forward a reply for a destination
// it still has an active route to. The auditor must find at least one
// loop for AODV and nothing at all for LDR.

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/fault"
	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/scenario"
)

// lineNetwork builds the static A(0)–B(1)–D(2) topology: adjacent nodes
// 220 m apart (within the 275 m range), the ends 440 m apart (out of
// range), so every A↔D path crosses B.
func lineNetwork(t *testing.T, proto scenario.ProtocolName) *routing.Network {
	t.Helper()
	factory, err := scenario.Factory(proto, nil)
	if err != nil {
		t.Fatal(err)
	}
	model := mobility.NewStatic([]mobility.Point{{X: 0}, {X: 220}, {X: 440}})
	return routing.NewNetwork(3, model, radio.DefaultConfig(), mac.DefaultConfig(), 1, factory)
}

// rebootPlan crashes B at 5 s for 100 ms and permanently severs B–D at
// the same instant, so D can neither answer B's post-reboot discovery
// nor repair the stale state.
func rebootPlan() fault.Plan {
	return fault.Plan{Name: "glabbeek", Specs: []fault.Spec{
		{Kind: fault.Crash, At: 5 * time.Second, Duration: 100 * time.Millisecond, Nodes: []int{1}},
		{Kind: fault.LinkFlap, At: 5 * time.Second, Duration: -1, Nodes: []int{1, 2}},
	}}
}

// runGlabbeek executes the choreography under the given protocol and
// returns the network after 8 simulated seconds.
func runGlabbeek(t *testing.T, proto scenario.ProtocolName) *routing.Network {
	t.Helper()
	const horizon = 8 * time.Second
	nw := lineNetwork(t, proto)
	inj := fault.NewInjector(nw, rebootPlan(), rng.New(1).Split("fault"), horizon)
	aud := fault.NewAuditor(nw, fault.AuditConfig{Cadence: 100 * time.Millisecond, Until: horizon})

	// A keeps its route to D warm right up to the crash (each use
	// refreshes AODV's active-route lifetime), then stays quiet so the
	// MAC never detects B's downtime on A's data path.
	for _, at := range []time.Duration{
		100 * time.Millisecond, time.Second, 2 * time.Second,
		3 * time.Second, 4 * time.Second, 4800 * time.Millisecond,
	} {
		nw.Sim.At(at, func() { nw.Nodes[0].OriginateData(2, 512) })
	}
	// B, rebooted and blank, asks for D. Only A can hear it.
	nw.Sim.At(5300*time.Millisecond, func() { nw.Nodes[1].OriginateData(2, 512) })

	nw.Start()
	inj.Start()
	aud.Start()
	nw.Sim.Run(horizon)
	nw.Stop()

	if inj.Stats.Crashes != 1 || inj.Stats.Reboots != 1 {
		t.Fatalf("injector executed %d crashes / %d reboots, want 1/1", inj.Stats.Crashes, inj.Stats.Reboots)
	}
	return nw
}

func TestGlabbeekLoopAODV(t *testing.T) {
	nw := runGlabbeek(t, scenario.AODV)
	if nw.Collector.LoopViolations == 0 {
		t.Fatalf("auditor found no AODV routing loop; audits=%d", nw.Collector.AuditSnapshots)
	}
}

func TestGlabbeekLoopRecorded(t *testing.T) {
	// Re-run with a handle on the auditor records: the loop must be a
	// genuine successor cycle toward D, not an ordering artifact.
	const horizon = 8 * time.Second
	nw := lineNetwork(t, scenario.AODV)
	inj := fault.NewInjector(nw, rebootPlan(), rng.New(1).Split("fault"), horizon)
	aud := fault.NewAuditor(nw, fault.AuditConfig{Cadence: 100 * time.Millisecond, Until: horizon})
	for _, at := range []time.Duration{
		100 * time.Millisecond, time.Second, 2 * time.Second,
		3 * time.Second, 4 * time.Second, 4800 * time.Millisecond,
	} {
		nw.Sim.At(at, func() { nw.Nodes[0].OriginateData(2, 512) })
	}
	nw.Sim.At(5300*time.Millisecond, func() { nw.Nodes[1].OriginateData(2, 512) })
	nw.Start()
	inj.Start()
	aud.Start()
	nw.Sim.Run(horizon)
	nw.Stop()

	for _, rec := range aud.Records {
		if len(rec.V.Cycle) > 0 {
			if rec.V.Dst != 2 {
				t.Fatalf("loop toward %d, want destination 2: %v", rec.V.Dst, rec.V)
			}
			if rec.At <= 5*time.Second {
				t.Fatalf("loop detected at %v, before the crash at 5s", rec.At)
			}
			return
		}
	}
	t.Fatalf("no cycle in audit records: %v", aud.Records)
}

func TestGlabbeekCleanLDR(t *testing.T) {
	nw := runGlabbeek(t, scenario.LDR)
	if l, o := nw.Collector.LoopViolations, nw.Collector.OrderingViolations; l != 0 || o != 0 {
		t.Fatalf("LDR violated invariants under the reboot choreography: loops=%d ordering=%d", l, o)
	}
	if nw.Collector.AuditSnapshots == 0 {
		t.Fatal("auditor never ran")
	}
}
