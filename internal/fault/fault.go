// Package fault injects deterministic faults into a running simulation
// and audits routing invariants while they happen.
//
// The LDR paper's central claim — that (sequence number, feasible
// distance) labels keep the successor graph loop-free at every instant —
// only earns its keep in the adversarial regime the benign mobility
// scenarios never reach: nodes crashing and rebooting with their
// volatile state gone, links blacking out, the network partitioning, and
// frames being lost or duplicated in flight. Van Glabbeek et al.
// ("Sequence Numbers Do Not Guarantee Loop Freedom — AODV Can Yield
// Routing Loops") show AODV forms persistent routing loops exactly
// there, when a rebooted node has lost its own sequence number. This
// package makes that regime a first-class scenario ingredient:
//
//   - an Injector executes a declarative Plan of timed or periodic fault
//     Specs — crash/reboot, link blackout, partition/heal, and
//     message-level drop/duplicate/delay at the radio boundary;
//   - an Auditor snapshots every routing table on a virtual-time cadence
//     via internal/loopcheck and records loop and ordering violations
//     into the run's metrics collector.
//
// Determinism: the injector draws from its own splittable RNG stream
// (conventionally root.Split("fault")), with a sub-stream per Spec, so a
// plan neither perturbs the mobility/traffic/MAC streams nor depends on
// them; every fault lands at the same virtual instant with the same
// victims on every run of the same seed, at any sweep worker count.
package fault

import (
	"strconv"
	"time"

	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/routing"
)

// Kind selects a fault mechanism.
type Kind int

// The four fault mechanisms.
const (
	// Crash powers victim nodes off, wipes their MAC and volatile
	// protocol state (routing.Resetter), and reboots them Duration later
	// via the protocol's Start. What survives the wipe is the protocol's
	// decision: LDR persists its own sequence number, AODV loses it.
	Crash Kind = iota + 1
	// LinkFlap severs the radio link between node pairs for Duration.
	LinkFlap
	// Partition splits the nodes into two cells chosen at random for
	// Duration; no signal crosses the cut.
	Partition
	// Lossy enables message-level drop/duplicate/delay at the radio
	// delivery boundary for Duration.
	Lossy
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case LinkFlap:
		return "linkflap"
	case Partition:
		return "partition"
	case Lossy:
		return "lossy"
	default:
		return "fault(" + strconv.Itoa(int(k)) + ")"
	}
}

// Spec is one timed fault. At is the first injection instant; a positive
// Every repeats the injection periodically until the plan horizon.
// Duration is how long each injection holds before recovery (crash →
// reboot, blackout → heal); zero selects a per-kind default and a
// negative Duration makes the fault permanent. Victims are either the
// explicit Nodes list (for Crash: node IDs; for LinkFlap: consecutive
// pairs) or Count random picks per injection.
type Spec struct {
	Kind     Kind
	At       time.Duration
	Every    time.Duration
	Duration time.Duration
	Nodes    []int
	Count    int

	// Lossy parameters; see radio.SetDeliveryFaults.
	Drop     float64
	Dup      float64
	DelayMax time.Duration
}

// Plan is a named, declarative fault schedule.
type Plan struct {
	Name  string
	Specs []Spec
}

// defaultHold is the per-kind recovery delay when Spec.Duration is zero.
func (s Spec) defaultHold() time.Duration {
	switch s.Kind {
	case Crash:
		return 250 * time.Millisecond
	case LinkFlap:
		return 500 * time.Millisecond
	case Partition:
		return time.Second
	default:
		return time.Second
	}
}

// Stats counts injector activity over a run.
type Stats struct {
	Crashes      int
	Reboots      int
	LinkOutages  int
	LinkHeals    int
	Partitions   int
	PartHeals    int
	LossyWindows int
}

// Injector executes a Plan against a network. Create one per run with
// NewInjector and call Start before the simulation begins; everything
// after that happens inside simulator events.
type Injector struct {
	nw    *routing.Network
	plan  Plan
	until time.Duration
	src   *rng.Source

	// Stats accumulates what was actually injected.
	Stats Stats
}

// NewInjector binds a plan to a network. src must be a dedicated stream
// (conventionally root.Split("fault")); until bounds periodic specs so
// the injector cannot keep an otherwise-drained event queue alive.
func NewInjector(nw *routing.Network, plan Plan, src *rng.Source, until time.Duration) *Injector {
	return &Injector{nw: nw, plan: plan, until: until, src: src}
}

// Start schedules every spec in the plan. Each spec gets its own RNG
// sub-stream, so specs are independent: editing one never shifts the
// victims another picks.
func (in *Injector) Start() {
	for i, spec := range in.plan.Specs {
		spec := spec
		stream := in.src.Split("spec" + strconv.Itoa(i))
		fire := func() { in.inject(spec, stream) }
		if spec.Every > 0 {
			in.nw.Sim.Every(spec.At, spec.Every, in.until, fire)
		} else if spec.At <= in.until {
			in.nw.Sim.At(spec.At, fire)
		}
	}
}

func (in *Injector) inject(spec Spec, stream *rng.Source) {
	switch spec.Kind {
	case Crash:
		in.crash(spec, stream)
	case LinkFlap:
		in.flap(spec, stream)
	case Partition:
		in.partition(spec, stream)
	case Lossy:
		in.lossy(spec, stream)
	}
}

// victims resolves a spec's targets: the explicit list, or Count random
// distinct nodes (drawn even when unused, so the stream position does not
// depend on network state).
func (in *Injector) victims(spec Spec, stream *rng.Source) []int {
	if len(spec.Nodes) > 0 {
		return spec.Nodes
	}
	count := spec.Count
	if count <= 0 {
		count = 1
	}
	if n := len(in.nw.Nodes); count > n {
		count = n
	}
	return stream.Perm(len(in.nw.Nodes))[:count]
}

// crash power-cycles the victims. A node already down (an overlapping
// crash window) is left to its pending reboot.
func (in *Injector) crash(spec Spec, stream *rng.Source) {
	hold := spec.Duration
	if hold == 0 {
		hold = spec.defaultHold()
	}
	for _, id := range in.victims(spec, stream) {
		node := in.nw.Nodes[id]
		if node.Down() {
			continue
		}
		// Crash powers the node off, accounts every data packet wiped from
		// its MAC queue (DropReset), and resets MAC + volatile protocol
		// state — see routing.Node.Crash.
		node.Crash()
		in.Stats.Crashes++
		if hold < 0 {
			continue // fail-stop: the node never comes back
		}
		in.nw.Sim.Schedule(hold, func() {
			node.SetDown(false)
			node.Protocol().Start()
			in.Stats.Reboots++
		})
	}
}

// flap severs links: the explicit Nodes pairs, or Count random pairs.
func (in *Injector) flap(spec Spec, stream *rng.Source) {
	hold := spec.Duration
	if hold == 0 {
		hold = spec.defaultHold()
	}
	if len(spec.Nodes) >= 2 {
		for i := 0; i+1 < len(spec.Nodes); i += 2 {
			in.outage(spec.Nodes[i], spec.Nodes[i+1], hold)
		}
		return
	}
	count := spec.Count
	if count <= 0 {
		count = 1
	}
	n := len(in.nw.Nodes)
	if n < 2 {
		return
	}
	for k := 0; k < count; k++ {
		a := stream.Intn(n)
		b := stream.Intn(n - 1)
		if b >= a {
			b++
		}
		in.outage(a, b, hold)
	}
}

// outage severs one link and schedules its heal. Overlapping outages on
// the same pair are not reference-counted: the earliest heal wins.
func (in *Injector) outage(a, b int, hold time.Duration) {
	m := in.nw.Medium
	m.SetLinkDown(a, b, true)
	in.Stats.LinkOutages++
	if hold < 0 {
		return // permanent blackout
	}
	in.nw.Sim.Schedule(hold, func() {
		m.SetLinkDown(a, b, false)
		in.Stats.LinkHeals++
	})
}

// partition splits the network into two random halves for the hold time.
func (in *Injector) partition(spec Spec, stream *rng.Source) {
	hold := spec.Duration
	if hold == 0 {
		hold = spec.defaultHold()
	}
	n := len(in.nw.Nodes)
	cells := make([]int, n)
	for i, id := range stream.Perm(n) {
		if i < n/2 {
			cells[id] = 1
		}
	}
	m := in.nw.Medium
	m.SetPartition(cells)
	in.Stats.Partitions++
	if hold < 0 {
		return
	}
	in.nw.Sim.Schedule(hold, func() {
		m.SetPartition(nil)
		in.Stats.PartHeals++
	})
}

// lossy opens a delivery-fault window. The spec's stream feeds the
// per-frame draws, so repeated windows continue one deterministic
// sequence.
func (in *Injector) lossy(spec Spec, stream *rng.Source) {
	m := in.nw.Medium
	m.SetDeliveryFaults(spec.Drop, spec.Dup, spec.DelayMax, stream)
	in.Stats.LossyWindows++
	if spec.Duration > 0 {
		in.nw.Sim.Schedule(spec.Duration, m.ClearDeliveryFaults)
	}
}
