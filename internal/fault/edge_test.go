package fault_test

// Edge-case coverage for the injector's Plan semantics: overlapping
// crash windows, zero-duration (default-hold) and negative-duration
// (permanent) faults, reboot-before-recrash ordering, and profile
// resolution errors.

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/fault"
	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/scenario"
)

// rig builds a small network plus a hand-made injector so tests can
// probe node state at exact virtual instants.
func rig(t *testing.T, plan fault.Plan, until time.Duration) (*routing.Network, *fault.Injector) {
	t.Helper()
	nw, _, err := scenario.Build(chaosConfig(scenario.LDR, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(nw, plan, rng.New(99).Split("fault"), until)
	in.Start()
	nw.Start()
	return nw, in
}

// TestOverlappingCrashWindows: a node crashed inside another crash's
// hold window is left to its pending reboot — one crash, one reboot,
// never a double power-off or an orphaned second reboot event.
func TestOverlappingCrashWindows(t *testing.T) {
	plan := fault.Plan{Name: "overlap", Specs: []fault.Spec{
		{Kind: fault.Crash, At: 1 * time.Second, Duration: 5 * time.Second, Nodes: []int{2}},
		{Kind: fault.Crash, At: 2 * time.Second, Duration: time.Second, Nodes: []int{2}},
	}}
	nw, in := rig(t, plan, 10*time.Second)

	var downMid, upAfter bool
	// 4 s is after the second spec's would-be reboot (3 s) but inside the
	// first window (1 s + 5 s): if the second crash had rescheduled the
	// reboot, the node would already be up here.
	nw.Sim.At(4*time.Second, func() { downMid = nw.Nodes[2].Down() })
	nw.Sim.At(7*time.Second, func() { upAfter = !nw.Nodes[2].Down() })
	nw.Sim.Run(10 * time.Second)
	nw.Stop()

	if in.Stats.Crashes != 1 || in.Stats.Reboots != 1 {
		t.Errorf("crashes=%d reboots=%d, want 1/1 (second crash lands in the first's window)",
			in.Stats.Crashes, in.Stats.Reboots)
	}
	if !downMid {
		t.Error("node came back before the first crash's hold expired")
	}
	if !upAfter {
		t.Error("node did not reboot when the first crash's hold expired")
	}
}

// TestZeroDurationUsesDefaultHold: Duration zero selects the per-kind
// default (250 ms for Crash), not an instant or permanent outage.
func TestZeroDurationUsesDefaultHold(t *testing.T) {
	plan := fault.Plan{Name: "defhold", Specs: []fault.Spec{
		{Kind: fault.Crash, At: 1 * time.Second, Nodes: []int{0}},
	}}
	nw, in := rig(t, plan, 5*time.Second)

	var downInside, upAfter bool
	nw.Sim.At(1*time.Second+100*time.Millisecond, func() { downInside = nw.Nodes[0].Down() })
	nw.Sim.At(1*time.Second+300*time.Millisecond, func() { upAfter = !nw.Nodes[0].Down() })
	nw.Sim.Run(5 * time.Second)
	nw.Stop()

	if !downInside {
		t.Error("node not down 100 ms into the default 250 ms hold")
	}
	if !upAfter {
		t.Error("node still down 300 ms after a zero-duration crash (default hold is 250 ms)")
	}
	if in.Stats.Crashes != 1 || in.Stats.Reboots != 1 {
		t.Errorf("crashes=%d reboots=%d, want 1/1", in.Stats.Crashes, in.Stats.Reboots)
	}
}

// TestPermanentCrash: a negative Duration is fail-stop — the node never
// reboots and the reboot counter stays behind the crash counter.
func TestPermanentCrash(t *testing.T) {
	plan := fault.Plan{Name: "failstop", Specs: []fault.Spec{
		{Kind: fault.Crash, At: 1 * time.Second, Duration: -1, Nodes: []int{5}},
	}}
	nw, in := rig(t, plan, 10*time.Second)
	nw.Sim.Run(10 * time.Second)
	nw.Stop()

	if !nw.Nodes[5].Down() {
		t.Error("fail-stopped node is back up")
	}
	if in.Stats.Crashes != 1 || in.Stats.Reboots != 0 {
		t.Errorf("crashes=%d reboots=%d, want 1/0", in.Stats.Crashes, in.Stats.Reboots)
	}
}

// TestRebootBeforeRecrash: once a crash's hold expires the node is fair
// game again — two disjoint windows on one node count two full
// crash/reboot cycles, in order.
func TestRebootBeforeRecrash(t *testing.T) {
	plan := fault.Plan{Name: "recrash", Specs: []fault.Spec{
		{Kind: fault.Crash, At: 1 * time.Second, Duration: time.Second, Nodes: []int{4}},
		{Kind: fault.Crash, At: 3 * time.Second, Duration: time.Second, Nodes: []int{4}},
	}}
	nw, in := rig(t, plan, 10*time.Second)

	var upBetween, downSecond bool
	nw.Sim.At(2*time.Second+500*time.Millisecond, func() { upBetween = !nw.Nodes[4].Down() })
	nw.Sim.At(3*time.Second+500*time.Millisecond, func() { downSecond = nw.Nodes[4].Down() })
	nw.Sim.Run(10 * time.Second)
	nw.Stop()

	if !upBetween {
		t.Error("node not rebooted between the two windows")
	}
	if !downSecond {
		t.Error("second crash did not take the rebooted node down")
	}
	if in.Stats.Crashes != 2 || in.Stats.Reboots != 2 {
		t.Errorf("crashes=%d reboots=%d, want 2/2", in.Stats.Crashes, in.Stats.Reboots)
	}
}

// TestPeriodicSpecRespectsHorizon: a periodic spec stops at the plan
// horizon; crash and reboot counts stay coherent afterwards.
func TestPeriodicSpecRespectsHorizon(t *testing.T) {
	plan := fault.Plan{Name: "periodic", Specs: []fault.Spec{
		{Kind: fault.Crash, At: 1 * time.Second, Every: 2 * time.Second, Duration: 500 * time.Millisecond, Count: 1},
	}}
	nw, in := rig(t, plan, 6*time.Second)
	nw.Sim.Run(20 * time.Second)
	nw.Stop()

	// Fires at 1, 3, 5 s (7 s is past the 6 s horizon). Random victims may
	// overlap a held window, so crashes can be fewer than firings but
	// never more, and every crash must have rebooted by t = 20 s.
	if in.Stats.Crashes < 1 || in.Stats.Crashes > 3 {
		t.Errorf("crashes=%d, want 1..3 firings inside the 6 s horizon", in.Stats.Crashes)
	}
	if in.Stats.Reboots != in.Stats.Crashes {
		t.Errorf("reboots=%d crashes=%d, want equal once all holds expired",
			in.Stats.Reboots, in.Stats.Crashes)
	}
}

// TestProfileErrors: unknown profile names must error with candidates,
// and every advertised profile must resolve at any scale.
func TestProfileErrors(t *testing.T) {
	if _, err := fault.Profile("bogus", 25, time.Minute); err == nil {
		t.Error("unknown fault profile resolved without error")
	}
	for _, name := range fault.ProfileNames() {
		for _, nodes := range []int{2, 25, 100} {
			if _, err := fault.Profile(name, nodes, 10*time.Second); err != nil {
				t.Errorf("profile %q at %d nodes: %v", name, nodes, err)
			}
		}
	}
}
