package traffic_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/traffic"
)

// sinkProtocol swallows all packets, recording originations.
type sinkProtocol struct {
	originated []*routing.DataPacket
}

func (p *sinkProtocol) Start()                                         {}
func (p *sinkProtocol) Stop()                                          {}
func (p *sinkProtocol) HandleControl(routing.NodeID, routing.Message)  {}
func (p *sinkProtocol) HandleData(routing.NodeID, *routing.DataPacket) {}
func (p *sinkProtocol) Originate(pkt *routing.DataPacket)              { p.originated = append(p.originated, pkt) }

func testNetwork(n int) (*routing.Network, []*sinkProtocol) {
	var sinks []*sinkProtocol
	nw := routing.NewNetwork(n, mobility.Line(n, 100), radio.DefaultConfig(), mac.DefaultConfig(), 1,
		func(node *routing.Node) routing.Protocol {
			s := &sinkProtocol{}
			sinks = append(sinks, s)
			return s
		})
	return nw, sinks
}

func TestOfferedLoadMatchesConfiguration(t *testing.T) {
	nw, sinks := testNetwork(10)
	cfg := traffic.DefaultConfig(5, 60*time.Second)
	gen := traffic.NewGenerator(nw.Sim, nw.Nodes, cfg, rng.New(2))
	gen.Start()
	nw.Sim.Run(60 * time.Second)

	var total int
	for _, s := range sinks {
		total += len(s.originated)
	}
	// 5 flows × 4 pkt/s × ~59 s ≈ 1180 packets. Flow-restart gaps lose a
	// few; anything within 10% is a correct offered load.
	want := 1180.0
	if float64(total) < want*0.9 || float64(total) > want*1.1 {
		t.Fatalf("originated %d packets, want ≈ %.0f", total, want)
	}
	if nw.Collector.DataInitiated != uint64(total) {
		t.Fatalf("collector counted %d initiated, protocols saw %d",
			nw.Collector.DataInitiated, total)
	}
}

func TestFlowsNeverSendToSelf(t *testing.T) {
	nw, sinks := testNetwork(4)
	gen := traffic.NewGenerator(nw.Sim, nw.Nodes, traffic.DefaultConfig(8, 120*time.Second), rng.New(3))
	gen.Start()
	nw.Sim.Run(120 * time.Second)

	for id, s := range sinks {
		for _, pkt := range s.originated {
			if pkt.Dst == routing.NodeID(id) {
				t.Fatalf("node %d originated a packet to itself", id)
			}
			if pkt.Src != routing.NodeID(id) {
				t.Fatalf("packet src %d does not match originating node %d", pkt.Src, id)
			}
			if pkt.Bytes != 512 {
				t.Fatalf("packet size %d, want 512", pkt.Bytes)
			}
		}
	}
}

func TestNoPacketsAfterStop(t *testing.T) {
	nw, sinks := testNetwork(6)
	cfg := traffic.DefaultConfig(3, 30*time.Second)
	gen := traffic.NewGenerator(nw.Sim, nw.Nodes, cfg, rng.New(4))
	gen.Start()
	nw.Sim.Run(90 * time.Second)

	for _, s := range sinks {
		for _, pkt := range s.originated {
			if pkt.SentAt >= 30*time.Second {
				t.Fatalf("packet originated at %v, after the 30s stop", pkt.SentAt)
			}
		}
	}
}

func TestFlowsRestartToKeepLoadConstant(t *testing.T) {
	nw, _ := testNetwork(8)
	cfg := traffic.DefaultConfig(2, 600*time.Second)
	// Short flows force many restarts within the run.
	cfg.MeanFlowLife = 5 * time.Second
	gen := traffic.NewGenerator(nw.Sim, nw.Nodes, cfg, rng.New(5))
	gen.Start()
	nw.Sim.Run(600 * time.Second)

	if gen.FlowsStarted < 50 {
		t.Fatalf("only %d flows started over 600s with 5s mean life", gen.FlowsStarted)
	}
	// Offered load must stay ≈ 2 flows × 4 pkt/s × 600 s = 4800.
	got := float64(nw.Collector.DataInitiated)
	if got < 4800*0.85 || got > 4800*1.15 {
		t.Fatalf("initiated %v packets, want ≈ 4800 despite flow churn", got)
	}
}

func TestBurstyDutyCycleReducesLoad(t *testing.T) {
	nw, _ := testNetwork(10)
	cfg := traffic.DefaultConfig(5, 300*time.Second)
	cfg.Pattern = traffic.Bursty
	cfg.MeanBurst = 2 * time.Second
	cfg.MeanGap = 3 * time.Second
	gen := traffic.NewGenerator(nw.Sim, nw.Nodes, cfg, rng.New(6))
	gen.Start()
	nw.Sim.Run(300 * time.Second)

	// Full CBR would offer 5 × 4 pkt/s × 299 s ≈ 5980 packets; a 2s-on /
	// 3s-off duty cycle should land near 40% of that. Accept a broad band —
	// the point is that gating visibly reduces load without silencing it.
	got := float64(nw.Collector.DataInitiated)
	if got < 5980*0.2 || got > 5980*0.6 {
		t.Fatalf("bursty initiated %v packets, want ≈ 40%% of 5980", got)
	}
}

func TestRequestResponseGeneratesReplies(t *testing.T) {
	nw, sinks := testNetwork(10)
	cfg := traffic.DefaultConfig(3, 60*time.Second)
	cfg.Pattern = traffic.RequestResponse
	gen := traffic.NewGenerator(nw.Sim, nw.Nodes, cfg, rng.New(7))
	gen.Start()
	nw.Sim.Run(60 * time.Second)

	var requests, responses int
	pairs := make(map[[2]routing.NodeID]bool)
	for _, s := range sinks {
		for _, pkt := range s.originated {
			if pkt.Bytes == 512 {
				requests++
				pairs[[2]routing.NodeID{pkt.Src, pkt.Dst}] = true
			}
		}
	}
	for _, s := range sinks {
		for _, pkt := range s.originated {
			switch pkt.Bytes {
			case 512:
			case 1024:
				responses++
				if !pairs[[2]routing.NodeID{pkt.Dst, pkt.Src}] {
					t.Fatalf("response %d→%d has no matching request", pkt.Src, pkt.Dst)
				}
			default:
				t.Fatalf("unexpected packet size %d", pkt.Bytes)
			}
		}
	}
	if requests == 0 || responses == 0 {
		t.Fatalf("requests=%d responses=%d, want both nonzero", requests, responses)
	}
	// Every request inside the run window gets exactly one reply; only
	// requests in the final ResponseDelay before Stop can go unanswered.
	if responses < requests*9/10 {
		t.Fatalf("%d responses for %d requests", responses, requests)
	}
}

func TestPatternsStopOriginatingAtStop(t *testing.T) {
	for _, pat := range traffic.Patterns() {
		nw, sinks := testNetwork(6)
		cfg := traffic.DefaultConfig(3, 30*time.Second)
		cfg.Pattern = pat
		gen := traffic.NewGenerator(nw.Sim, nw.Nodes, cfg, rng.New(8))
		gen.Start()
		nw.Sim.Run(90 * time.Second)
		for _, s := range sinks {
			for _, pkt := range s.originated {
				if pkt.SentAt >= 30*time.Second {
					t.Fatalf("%s: packet originated at %v, after the 30s stop", pat, pkt.SentAt)
				}
			}
		}
	}
}

func TestPatternsDeterministic(t *testing.T) {
	for _, pat := range traffic.Patterns() {
		counts := [2]uint64{}
		for trial := 0; trial < 2; trial++ {
			nw, _ := testNetwork(8)
			cfg := traffic.DefaultConfig(4, 60*time.Second)
			cfg.Pattern = pat
			gen := traffic.NewGenerator(nw.Sim, nw.Nodes, cfg, rng.New(9))
			gen.Start()
			nw.Sim.Run(60 * time.Second)
			counts[trial] = nw.Collector.DataInitiated
		}
		if counts[0] != counts[1] {
			t.Fatalf("%s: runs differ: %d vs %d packets", pat, counts[0], counts[1])
		}
		if counts[0] == 0 {
			t.Fatalf("%s originated nothing", pat)
		}
	}
}
