// Package traffic generates the constant-bit-rate workload used in the
// paper's evaluation: a fixed number of concurrent CBR flows of 512-byte
// packets at 4 packets per second, with flow lifetimes drawn from an
// exponential distribution with a 100-second mean. When a flow ends, a
// replacement flow with fresh random endpoints starts, keeping the offered
// load constant (10 flows ≈ 40 pkt/s aggregate, 30 flows ≈ 120 pkt/s).
package traffic

import (
	"time"

	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/sim"
)

// Config parameterizes the CBR workload.
type Config struct {
	Flows        int           // concurrent flows
	PacketBytes  int           // CBR payload size
	Interval     time.Duration // inter-packet gap within a flow
	MeanFlowLife time.Duration // mean of the exponential flow length
	Start        time.Duration // workload warm-up offset
	Stop         time.Duration // no packets are originated after this time
}

// DefaultConfig matches the paper: 512-byte packets at 4 pkt/s per flow,
// exponential flow lengths with a 100 s mean.
func DefaultConfig(flows int, stop time.Duration) Config {
	return Config{
		Flows:        flows,
		PacketBytes:  512,
		Interval:     250 * time.Millisecond,
		MeanFlowLife: 100 * time.Second,
		Start:        time.Second,
		Stop:         stop,
	}
}

// Generator drives the CBR flows over a network.
type Generator struct {
	sim   *sim.Simulator
	nodes []*routing.Node
	cfg   Config
	rng   *rng.Source

	FlowsStarted int
}

// NewGenerator builds a generator. Call Start to install the flows.
func NewGenerator(s *sim.Simulator, nodes []*routing.Node, cfg Config, src *rng.Source) *Generator {
	return &Generator{sim: s, nodes: nodes, cfg: cfg, rng: src}
}

// Start launches the configured number of concurrent flows. Flow start
// times are staggered across the first flow interval to avoid the
// synchronized-origination artifact of starting all flows at once.
func (g *Generator) Start() {
	for i := 0; i < g.cfg.Flows; i++ {
		stagger := time.Duration(g.rng.Float64() * float64(g.cfg.Interval))
		g.sim.At(g.cfg.Start+stagger, g.startFlow)
	}
}

func (g *Generator) startFlow() {
	now := g.sim.Now()
	if now >= g.cfg.Stop {
		return
	}
	src := g.rng.Intn(len(g.nodes))
	dst := g.rng.Intn(len(g.nodes) - 1)
	if dst >= src {
		dst++
	}
	life := time.Duration(g.rng.ExpFloat64() * float64(g.cfg.MeanFlowLife))
	end := now + life
	if end > g.cfg.Stop {
		end = g.cfg.Stop
	}
	g.FlowsStarted++
	g.tick(src, dst, end)
}

func (g *Generator) tick(src, dst int, end time.Duration) {
	now := g.sim.Now()
	if now >= end {
		// Flow over; keep the offered load constant with a fresh flow.
		g.startFlow()
		return
	}
	g.nodes[src].OriginateData(routing.NodeID(dst), g.cfg.PacketBytes)
	g.sim.Schedule(g.cfg.Interval, func() { g.tick(src, dst, end) })
}
