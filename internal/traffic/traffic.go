// Package traffic generates application workloads for the simulator.
//
// The default pattern is the paper's constant-bit-rate evaluation load: a
// fixed number of concurrent CBR flows of 512-byte packets at 4 packets
// per second, with flow lifetimes drawn from an exponential distribution
// with a 100-second mean. When a flow ends, a replacement flow with fresh
// random endpoints starts, keeping the offered load constant (10 flows ≈
// 40 pkt/s aggregate, 30 flows ≈ 120 pkt/s).
//
// Two further patterns stress routing differently: Bursty gates each flow
// through exponential on/off periods, so routes go cold and must be
// re-validated when a burst starts; RequestResponse pairs every request
// with a reverse-direction reply, exercising bidirectional route state
// (precursor lists, reverse routes) that one-way CBR never touches.
package traffic

import (
	"time"

	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/sim"
)

// Pattern names a traffic generation pattern.
type Pattern string

// The supported patterns.
const (
	CBR             Pattern = "cbr"     // constant bit rate (the paper's workload)
	Bursty          Pattern = "bursty"  // exponential on/off gating of each flow
	RequestResponse Pattern = "reqresp" // request packets answered by reverse-direction replies
)

// Patterns lists the valid pattern names, for flag validation and fuzzer
// draws.
func Patterns() []Pattern { return []Pattern{CBR, Bursty, RequestResponse} }

// ValidPattern reports whether name is a known pattern ("" selects CBR).
func ValidPattern(name string) bool {
	switch Pattern(name) {
	case "", CBR, Bursty, RequestResponse:
		return true
	}
	return false
}

// Config parameterizes the workload.
type Config struct {
	Pattern      Pattern       // generation pattern; "" selects CBR
	Flows        int           // concurrent flows
	PacketBytes  int           // payload size (requests, CBR packets)
	Interval     time.Duration // inter-packet gap within a flow / burst
	MeanFlowLife time.Duration // mean of the exponential flow length
	Start        time.Duration // workload warm-up offset
	Stop         time.Duration // no packets are originated after this time

	// Bursty pattern: flows alternate exponential on periods (sending at
	// Interval) and off periods (silent). Zeros select 2 s on, 3 s off.
	MeanBurst, MeanGap time.Duration

	// RequestResponse pattern: the source issues PacketBytes-sized
	// requests at Interval; each request's destination originates a
	// ResponseBytes reply after ResponseDelay. The reply is scheduled
	// unconditionally (an application-level model: whether the request
	// arrived is invisible to the generator), which keeps origination
	// events a pure function of the seed. Zeros select 1024 B and 30 ms.
	ResponseBytes int
	ResponseDelay time.Duration
}

// DefaultConfig matches the paper: 512-byte packets at 4 pkt/s per flow,
// exponential flow lengths with a 100 s mean.
func DefaultConfig(flows int, stop time.Duration) Config {
	return Config{
		Flows:        flows,
		PacketBytes:  512,
		Interval:     250 * time.Millisecond,
		MeanFlowLife: 100 * time.Second,
		Start:        time.Second,
		Stop:         stop,
	}
}

// Generator drives the CBR flows over a network.
type Generator struct {
	sim   *sim.Simulator
	nodes []*routing.Node
	cfg   Config
	rng   *rng.Source

	FlowsStarted int
}

// NewGenerator builds a generator. Call Start to install the flows.
func NewGenerator(s *sim.Simulator, nodes []*routing.Node, cfg Config, src *rng.Source) *Generator {
	if cfg.Pattern == "" {
		cfg.Pattern = CBR
	}
	if cfg.MeanBurst <= 0 {
		cfg.MeanBurst = 2 * time.Second
	}
	if cfg.MeanGap <= 0 {
		cfg.MeanGap = 3 * time.Second
	}
	if cfg.ResponseBytes <= 0 {
		cfg.ResponseBytes = 1024
	}
	if cfg.ResponseDelay <= 0 {
		cfg.ResponseDelay = 30 * time.Millisecond
	}
	return &Generator{sim: s, nodes: nodes, cfg: cfg, rng: src}
}

// Start launches the configured number of concurrent flows. Flow start
// times are staggered across the first flow interval to avoid the
// synchronized-origination artifact of starting all flows at once.
func (g *Generator) Start() {
	for i := 0; i < g.cfg.Flows; i++ {
		stagger := time.Duration(g.rng.Float64() * float64(g.cfg.Interval))
		g.sim.At(g.cfg.Start+stagger, g.startFlow)
	}
}

func (g *Generator) startFlow() {
	now := g.sim.Now()
	if now >= g.cfg.Stop {
		return
	}
	src := g.rng.Intn(len(g.nodes))
	dst := g.rng.Intn(len(g.nodes) - 1)
	if dst >= src {
		dst++
	}
	life := time.Duration(g.rng.ExpFloat64() * float64(g.cfg.MeanFlowLife))
	end := now + life
	if end > g.cfg.Stop {
		end = g.cfg.Stop
	}
	g.FlowsStarted++
	switch g.cfg.Pattern {
	case Bursty:
		g.burstOn(src, dst, end)
	case RequestResponse:
		g.reqTick(src, dst, end)
	default:
		g.tick(src, dst, end)
	}
}

func (g *Generator) tick(src, dst int, end time.Duration) {
	now := g.sim.Now()
	if now >= end {
		// Flow over; keep the offered load constant with a fresh flow.
		g.startFlow()
		return
	}
	g.nodes[src].OriginateData(routing.NodeID(dst), g.cfg.PacketBytes)
	g.sim.Schedule(g.cfg.Interval, func() { g.tick(src, dst, end) })
}

// burstOn begins an on period: pick its exponential length, then send at
// the CBR interval until it expires, after which burstOff idles the flow.
func (g *Generator) burstOn(src, dst int, end time.Duration) {
	burstEnd := g.sim.Now() + time.Duration(g.rng.ExpFloat64()*float64(g.cfg.MeanBurst))
	if burstEnd > end {
		burstEnd = end
	}
	g.burstTick(src, dst, end, burstEnd)
}

func (g *Generator) burstTick(src, dst int, end, burstEnd time.Duration) {
	now := g.sim.Now()
	if now >= end {
		g.startFlow()
		return
	}
	if now >= burstEnd {
		g.burstOff(src, dst, end)
		return
	}
	g.nodes[src].OriginateData(routing.NodeID(dst), g.cfg.PacketBytes)
	g.sim.Schedule(g.cfg.Interval, func() { g.burstTick(src, dst, end, burstEnd) })
}

// burstOff idles the flow for an exponential gap, long enough for routes
// to go stale, then starts the next burst.
func (g *Generator) burstOff(src, dst int, end time.Duration) {
	gap := time.Duration(g.rng.ExpFloat64() * float64(g.cfg.MeanGap))
	g.sim.Schedule(gap, func() {
		if g.sim.Now() >= end {
			g.startFlow()
			return
		}
		g.burstOn(src, dst, end)
	})
}

// reqTick originates one request and schedules the destination's reply.
// The reply fires whether or not the request is ever delivered: the
// generator models the application layer, and coupling origination events
// to delivery outcomes would make the workload depend on routing behavior
// (breaking replay determinism across protocols and fault schedules).
func (g *Generator) reqTick(src, dst int, end time.Duration) {
	now := g.sim.Now()
	if now >= end {
		g.startFlow()
		return
	}
	g.nodes[src].OriginateData(routing.NodeID(dst), g.cfg.PacketBytes)
	g.sim.Schedule(g.cfg.ResponseDelay, func() {
		if g.sim.Now() < g.cfg.Stop {
			g.nodes[dst].OriginateData(routing.NodeID(src), g.cfg.ResponseBytes)
		}
	})
	g.sim.Schedule(g.cfg.Interval, func() { g.reqTick(src, dst, end) })
}
