package dsr

import (
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/wire"
)

func encodeRoute(enc *wire.Encoder, route []routing.NodeID) {
	enc.U16(uint16(len(route)))
	for _, n := range route {
		enc.Node(int(n))
	}
}

func decodeRoute(d *wire.Decoder) []routing.NodeID {
	n := int(d.U16())
	var route []routing.NodeID
	for i := 0; i < n; i++ {
		route = append(route, routing.NodeID(d.Node()))
	}
	return route
}

// Marshal encodes the RREQ (with its accumulated route record).
func (q RREQ) Marshal() []byte {
	enc := wire.NewEncoder(wire.TypeDSRRREQ).
		Node(int(q.Target)).
		Node(int(q.Origin)).
		U32(q.ReqID).
		U8(uint8(max(min(q.TTL, 255), 0)))
	encodeRoute(enc, q.Route)
	return enc.Bytes()
}

// UnmarshalRREQ decodes a DSR RREQ.
func UnmarshalRREQ(b []byte) (RREQ, error) {
	d, err := wire.NewDecoder(b, wire.TypeDSRRREQ)
	if err != nil {
		return RREQ{}, err
	}
	var q RREQ
	q.Target = routing.NodeID(d.Node())
	q.Origin = routing.NodeID(d.Node())
	q.ReqID = d.U32()
	q.TTL = int(d.U8())
	q.Route = decodeRoute(d)
	return q, d.Err()
}

// Marshal encodes the RREP (carrying the complete discovered route).
func (p RREP) Marshal() []byte {
	enc := wire.NewEncoder(wire.TypeDSRRREP).
		Node(int(p.Origin)).
		Node(int(p.Target)).
		U32(p.ReqID).
		U16(uint16(p.Index))
	encodeRoute(enc, p.Route)
	return enc.Bytes()
}

// UnmarshalRREP decodes a DSR RREP.
func UnmarshalRREP(b []byte) (RREP, error) {
	d, err := wire.NewDecoder(b, wire.TypeDSRRREP)
	if err != nil {
		return RREP{}, err
	}
	var p RREP
	p.Origin = routing.NodeID(d.Node())
	p.Target = routing.NodeID(d.Node())
	p.ReqID = d.U32()
	p.Index = int(d.U16())
	p.Route = decodeRoute(d)
	return p, d.Err()
}

// Marshal encodes the RERR (with its source-routed return path).
func (e RERR) Marshal() []byte {
	enc := wire.NewEncoder(wire.TypeDSRRERR).
		Node(int(e.From)).
		Node(int(e.To)).
		Node(int(e.Origin)).
		U16(uint16(e.Index))
	encodeRoute(enc, e.Route)
	return enc.Bytes()
}

// UnmarshalRERR decodes a DSR RERR.
func UnmarshalRERR(b []byte) (RERR, error) {
	d, err := wire.NewDecoder(b, wire.TypeDSRRERR)
	if err != nil {
		return RERR{}, err
	}
	var e RERR
	e.From = routing.NodeID(d.Node())
	e.To = routing.NodeID(d.Node())
	e.Origin = routing.NodeID(d.Node())
	e.Index = int(d.U16())
	e.Route = decodeRoute(d)
	return e, d.Err()
}
