package dsr_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/dsr"
	"github.com/manetlab/ldr/internal/mobility"
)

// TestOverhearingLearnsRoutes: node 4 sits beside the 0→3 chain without
// carrying any traffic. With promiscuous mode it learns a route to the
// destination purely from overheard source-routed packets.
func TestOverhearingLearnsRoutes(t *testing.T) {
	// Chain 0-1-2-3 at y=0; bystander 4 within range of node 1 only.
	pts := []mobility.Point{
		{X: 0}, {X: 250}, {X: 500}, {X: 750},
		{X: 250, Y: 200},
	}
	run := func(promisc bool) []int {
		cfg := dsr.DefaultConfig()
		cfg.Promiscuous = promisc
		nw := buildNet(mobility.NewStatic(pts), 4, cfg)
		nw.Start()
		for ts := 100 * time.Millisecond; ts < 2*time.Second; ts += 250 * time.Millisecond {
			nw.Sim.At(ts, func() { nw.Nodes[0].OriginateData(3, 256) })
		}
		nw.Sim.Run(3 * time.Second)
		route := dsrAt(nw, 4).CachedRoute(3)
		if route == nil {
			return nil
		}
		out := make([]int, len(route))
		for i, n := range route {
			out[i] = int(n)
		}
		return out
	}

	if got := run(false); got != nil {
		t.Fatalf("without promiscuous mode the bystander learned %v", got)
	}
	got := run(true)
	want := []int{4, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("overheard route = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("overheard route = %v, want %v", got, want)
		}
	}
}

// TestOverhearingNeverLearnsRoutesThroughItself: a node already named in
// an overheard route must not cache it (that would make a self-loop).
func TestOverhearingSkipsOwnRoutes(t *testing.T) {
	pts := []mobility.Point{{X: 0}, {X: 250}, {X: 500}, {X: 750}}
	cfg := dsr.Draft7Config()
	cfg.Promiscuous = true
	nw := buildNet(mobility.NewStatic(pts), 8, cfg)
	nw.Start()
	for ts := 100 * time.Millisecond; ts < 2*time.Second; ts += 250 * time.Millisecond {
		nw.Sim.At(ts, func() { nw.Nodes[0].OriginateData(3, 256) })
	}
	nw.Sim.Run(3 * time.Second)

	// Relay 1 hears node 2's transmissions carrying routes that include
	// node 1 itself; its cached route to 3 must not pass through itself
	// twice.
	route := dsrAt(nw, 1).CachedRoute(3)
	seen := map[int]bool{}
	for _, n := range route {
		if seen[int(n)] {
			t.Fatalf("route %v visits %d twice", route, n)
		}
		seen[int(n)] = true
	}
}
