package dsr_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/dsr"
	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/routing"
)

func buildNet(model mobility.Model, seed int64, cfg dsr.Config) *routing.Network {
	return routing.NewNetwork(model.NumNodes(), model, radio.DefaultConfig(), mac.DefaultConfig(), seed,
		func(node *routing.Node) routing.Protocol {
			return dsr.New(node, cfg)
		})
}

func dsrAt(nw *routing.Network, id int) *dsr.DSR {
	return nw.Nodes[id].Protocol().(*dsr.DSR)
}

// TestRelaysLearnRoutesFromForwardedTraffic: after one discovery 0→4,
// relay nodes hold cached routes to the destination for free.
func TestRelaysLearnRoutesFromForwardedTraffic(t *testing.T) {
	nw := buildNet(mobility.Line(5, 250), 2, dsr.DefaultConfig())
	nw.Start()
	nw.Sim.Schedule(0, func() { nw.Nodes[0].OriginateData(4, 64) })
	nw.Sim.Run(3 * time.Second)

	for relay := 1; relay <= 3; relay++ {
		if dsrAt(nw, relay).CachedRoute(4) == nil {
			t.Fatalf("relay %d learned no route to 4 from forwarded traffic", relay)
		}
	}
	// And the reverse direction from the RREQ record.
	if dsrAt(nw, 3).CachedRoute(0) == nil {
		t.Fatal("relay 3 learned no reverse route to the origin")
	}
}

// TestReplyFromCacheShortCircuitsFlood: after a route is known at node 1,
// node 0's discovery for the same target is answered by node 1 without
// the flood reaching the destination.
func TestReplyFromCacheShortCircuitsFlood(t *testing.T) {
	nw := buildNet(mobility.Line(5, 250), 3, dsr.DefaultConfig())
	nw.Start()
	nw.Sim.Schedule(0, func() { nw.Nodes[1].OriginateData(4, 64) })

	var floodsBefore uint64
	nw.Sim.At(time.Second, func() {
		floodsBefore = nw.Collector.ControlTransmitted(metrics.RREQ)
		nw.Nodes[0].OriginateData(4, 64)
	})
	nw.Sim.Run(3 * time.Second)

	// Node 0's non-propagating TTL-1 request reaches node 1, which holds
	// a cached path: exactly one RREQ transmission suffices.
	floodsAfter := nw.Collector.ControlTransmitted(metrics.RREQ)
	if floodsAfter-floodsBefore != 1 {
		t.Fatalf("cache reply should cost 1 RREQ transmission, took %d", floodsAfter-floodsBefore)
	}
	if nw.Collector.DataDelivered != 2 {
		t.Fatalf("delivered %d, want both packets", nw.Collector.DataDelivered)
	}
}

// TestBrokenLinkPurgedEverywhereViaRERR: after a mid-path break, the
// origin's cache no longer contains the dead link.
func TestBrokenLinkPurgedEverywhereViaRERR(t *testing.T) {
	tracks := [][]mobility.ScriptLeg{
		{{At: 0, Pos: mobility.Point{X: 0}}},
		{{At: 0, Pos: mobility.Point{X: 250}}},
		{{At: 0, Pos: mobility.Point{X: 500}}},
		{
			{At: 0, Pos: mobility.Point{X: 750}},
			{At: 2 * time.Second, Pos: mobility.Point{X: 750}},
			{At: 4 * time.Second, Pos: mobility.Point{X: 750, Y: 3000}},
		},
	}
	nw := buildNet(mobility.NewScript(tracks), 4, dsr.DefaultConfig())
	nw.Start()
	for ts := 500 * time.Millisecond; ts < 10*time.Second; ts += 250 * time.Millisecond {
		nw.Sim.At(ts, func() { nw.Nodes[0].OriginateData(3, 64) })
	}
	nw.Sim.Run(15 * time.Second)

	if nw.Collector.ControlInitiated(metrics.RERR) == 0 {
		t.Fatal("no RERR initiated after the break")
	}
	if route := dsrAt(nw, 0).CachedRoute(3); route != nil {
		t.Fatalf("origin still caches a route to the departed node: %v", route)
	}
}

// TestSalvageReroutesMidPath (draft 7): when the primary next hop dies but
// the relay knows an alternate path, the packet is salvaged instead of
// dropped.
func TestSalvageReroutesMidPath(t *testing.T) {
	// Diamond: 0 — 1 — 3 and 0 — 1 — 2 — 3' where 3 is reachable from
	// both 1 (directly, until it moves) and 2.
	tracks := [][]mobility.ScriptLeg{
		{{At: 0, Pos: mobility.Point{X: 0, Y: 0}}},     // 0 origin
		{{At: 0, Pos: mobility.Point{X: 250, Y: 0}}},   // 1 relay
		{{At: 0, Pos: mobility.Point{X: 350, Y: 200}}}, // 2 alternate relay (in range of 1 and 3)
		{ // 3 destination: drifts out of 1's range but stays in 2's
			{At: 0, Pos: mobility.Point{X: 500, Y: 0}},
			{At: 2 * time.Second, Pos: mobility.Point{X: 500, Y: 0}},
			{At: 6 * time.Second, Pos: mobility.Point{X: 500, Y: 280}},
		},
	}
	cfg := dsr.Draft7Config()
	nw := buildNet(mobility.NewScript(tracks), 6, cfg)
	nw.Start()
	for ts := 500 * time.Millisecond; ts < 12*time.Second; ts += 200 * time.Millisecond {
		nw.Sim.At(ts, func() { nw.Nodes[0].OriginateData(3, 64) })
	}
	nw.Sim.Run(15 * time.Second)

	// With salvaging, delivery must stay high across the handover.
	if ratio := nw.Collector.DeliveryRatio(); ratio < 0.85 {
		t.Fatalf("delivery with salvage = %.2f, want ≥ 0.85", ratio)
	}
}

// TestSourceRouteCarriedInDataHeader: delivered packets grew their header
// by the source-route option (visible in DataTransmitted accounting via
// message sizes — here we check the SourceRoute survives end to end).
func TestSourceRouteNamesEveryHop(t *testing.T) {
	nw := buildNet(mobility.Line(4, 250), 5, dsr.DefaultConfig())
	received := make(chan []routing.NodeID, 1)
	// Intercept at the destination by swapping its protocol for a probe
	// that records the route then delegates.
	inner := dsrAt(nw, 3)
	nw.Nodes[3].SetProtocol(&probe{inner: inner, got: received})
	nw.Start()
	nw.Sim.Schedule(0, func() { nw.Nodes[0].OriginateData(3, 64) })
	nw.Sim.Run(3 * time.Second)

	select {
	case route := <-received:
		want := []routing.NodeID{0, 1, 2, 3}
		if len(route) != len(want) {
			t.Fatalf("source route = %v, want %v", route, want)
		}
		for i := range want {
			if route[i] != want[i] {
				t.Fatalf("source route = %v, want %v", route, want)
			}
		}
	default:
		t.Fatal("destination never received the data packet")
	}
}

type probe struct {
	inner routing.Protocol
	got   chan []routing.NodeID
}

func (p *probe) Start()                                               { p.inner.Start() }
func (p *probe) Stop()                                                { p.inner.Stop() }
func (p *probe) Originate(pkt *routing.DataPacket)                    { p.inner.Originate(pkt) }
func (p *probe) HandleControl(from routing.NodeID, m routing.Message) { p.inner.HandleControl(from, m) }
func (p *probe) HandleData(from routing.NodeID, pkt *routing.DataPacket) {
	if pkt.Dst == 3 {
		select {
		case p.got <- pkt.SourceRoute:
		default:
		}
	}
	p.inner.HandleData(from, pkt)
}
