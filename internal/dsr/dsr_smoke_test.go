package dsr_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/dsr"
	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/routing"
)

func chain(n int, seed int64, cfg dsr.Config) *routing.Network {
	return routing.NewNetwork(n, mobility.Line(n, 250), radio.DefaultConfig(), mac.DefaultConfig(), seed,
		func(node *routing.Node) routing.Protocol {
			return dsr.New(node, cfg)
		})
}

func TestDSRDeliversAlongChain(t *testing.T) {
	nw := chain(5, 1, dsr.DefaultConfig())
	nw.Start()
	for i := 0; i < 20; i++ {
		i := i
		nw.Sim.At(time.Duration(i)*100*time.Millisecond, func() {
			nw.Nodes[0].OriginateData(4, 512)
		})
	}
	nw.Sim.Run(10 * time.Second)

	if nw.Collector.DataDelivered < 19 {
		t.Fatalf("delivered %d of %d", nw.Collector.DataDelivered, nw.Collector.DataInitiated)
	}
}

func TestDSRDiscoversFullSourceRoute(t *testing.T) {
	nw := chain(4, 3, dsr.Draft7Config())
	nw.Start()
	nw.Sim.At(0, func() { nw.Nodes[0].OriginateData(3, 64) })

	var route []routing.NodeID
	nw.Sim.At(2*time.Second, func() {
		route = nw.Nodes[0].Protocol().(*dsr.DSR).CachedRoute(3)
	})
	nw.Sim.Run(3 * time.Second)

	want := []routing.NodeID{0, 1, 2, 3}
	if len(route) != len(want) {
		t.Fatalf("cached route = %v, want %v", route, want)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("cached route = %v, want %v", route, want)
		}
	}
}
