package dsr

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/manetlab/ldr/internal/routing"
)

func routeFrom(raw []int32) []routing.NodeID {
	if len(raw) == 0 {
		return nil
	}
	out := make([]routing.NodeID, len(raw))
	for i, v := range raw {
		out[i] = routing.NodeID(v)
	}
	return out
}

func TestRREQRoundTrip(t *testing.T) {
	f := func(target, origin int32, reqID uint32, ttl uint8, raw []int32) bool {
		q := RREQ{
			Target: routing.NodeID(target), Origin: routing.NodeID(origin),
			ReqID: reqID, TTL: int(ttl), Route: routeFrom(raw),
		}
		got, err := UnmarshalRREQ(q.Marshal())
		return err == nil && reflect.DeepEqual(got, q)
	}
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRREPRoundTrip(t *testing.T) {
	p := RREP{Origin: 0, Target: 5, ReqID: 9, Index: 2, Route: ids(0, 1, 2, 5)}
	got, err := UnmarshalRREP(p.Marshal())
	if err != nil || !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip: %+v != %+v (%v)", got, p, err)
	}
}

func TestRERRRoundTrip(t *testing.T) {
	e := RERR{From: 2, To: 3, Origin: 0, Index: 1, Route: ids(2, 1, 0)}
	got, err := UnmarshalRERR(e.Marshal())
	if err != nil || !reflect.DeepEqual(got, e) {
		t.Fatalf("round trip: %+v != %+v (%v)", got, e, err)
	}
}

func TestSizeGrowsWithRoute(t *testing.T) {
	short := RREQ{Route: ids(0)}
	long := RREQ{Route: ids(0, 1, 2, 3, 4, 5, 6, 7)}
	if long.Size() != short.Size()+7*4 {
		t.Fatalf("per-hop header cost: %d -> %d", short.Size(), long.Size())
	}
}

// TestSizesMatchEncodings pins the arithmetic Size() — used by the hot
// send path instead of marshalling — to the real encoded length.
func TestSizesMatchEncodings(t *testing.T) {
	q := RREQ{TTL: 3, Route: ids(0, 1, 2)}
	if q.Size() != len(q.Marshal()) {
		t.Fatalf("RREQ.Size = %d, encoding is %d bytes", q.Size(), len(q.Marshal()))
	}
	p := RREP{Route: ids(0, 1)}
	if p.Size() != len(p.Marshal()) {
		t.Fatalf("RREP.Size = %d, encoding is %d bytes", p.Size(), len(p.Marshal()))
	}
	e := RERR{Route: ids(2, 1, 0)}
	if e.Size() != len(e.Marshal()) {
		t.Fatalf("RERR.Size = %d, encoding is %d bytes", e.Size(), len(e.Marshal()))
	}
	if empty := (RERR{}); empty.Size() != len(empty.Marshal()) {
		t.Fatalf("empty RERR.Size = %d, encoding is %d bytes", empty.Size(), len(empty.Marshal()))
	}
}
