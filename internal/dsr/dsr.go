// Package dsr implements the Dynamic Source Routing protocol (Johnson,
// Maltz et al.), the source-routing baseline in the LDR paper.
//
// DSR avoids routing loops by carrying the complete route in every data
// packet: a route request accumulates the path it traverses, the reply
// returns that path to the origin, and data packets then specify every
// hop. Loop-freedom is structural, but the price is header overhead and a
// route cache whose staleness under mobility produces the sharp delivery
// degradation the paper's figures show.
//
// The DraftVariant switch approximates the two implementation generations
// evaluated in the paper: GloMoSim's draft-3 code (Figs. 2–5) and
// QualNet's draft-7 code (Fig. 6), which adds salvaging limits and
// discovery backoff and performs "slightly better, but still shows the
// same downward trend with increasing mobility".
package dsr

import (
	"time"

	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/runpool"
	"github.com/manetlab/ldr/internal/sim"
)

// Config parameterizes DSR.
type Config struct {
	DraftVariant     int           // 3 (GloMoSim) or 7 (QualNet)
	CacheCapacity    int           // cached source routes
	CacheLifetime    time.Duration // path expiry
	ReplyFromCache   bool          // intermediate nodes answer from cache
	MaxSalvage       int           // salvage attempts per packet (draft 7)
	MaxQueuedPerDest int
	DiscoveryTimeout time.Duration // per-attempt reply wait
	MaxRetries       int           // discovery attempts before giving up
	BackoffBase      time.Duration // inter-attempt backoff (draft 7: exponential)
	NetDiameter      int
	BroadcastJitter  time.Duration
	ReqCacheLife     time.Duration // RREQ duplicate-suppression window

	// Promiscuous enables overhearing: routes are learned from source
	// routes carried in traffic addressed to other nodes (one of the DSR
	// drafts' classic optimizations).
	Promiscuous bool
}

// DefaultConfig returns the draft-3 configuration used for Figs. 2–5.
func DefaultConfig() Config {
	return Config{
		DraftVariant:     3,
		CacheCapacity:    64,
		CacheLifetime:    300 * time.Second,
		ReplyFromCache:   true,
		MaxSalvage:       0,
		MaxQueuedPerDest: 16,
		DiscoveryTimeout: 500 * time.Millisecond,
		MaxRetries:       4,
		BackoffBase:      500 * time.Millisecond,
		NetDiameter:      35,
		BroadcastJitter:  10 * time.Millisecond,
		ReqCacheLife:     6 * time.Second,
	}
}

// Draft7Config returns the QualNet-style draft-7 configuration (Fig. 6):
// salvaging on, exponential discovery backoff.
func Draft7Config() Config {
	cfg := DefaultConfig()
	cfg.DraftVariant = 7
	cfg.MaxSalvage = 4
	cfg.BackoffBase = time.Second
	return cfg
}

// RREQ is a DSR route request with its accumulated route record.
type RREQ struct {
	Target routing.NodeID
	Origin routing.NodeID
	ReqID  uint32
	Route  []routing.NodeID // path traversed so far, Route[0] == Origin
	TTL    int
}

// Kind implements routing.Message.
func (RREQ) Kind() metrics.ControlKind { return metrics.RREQ }

// Size implements routing.Message: computed arithmetically from the wire
// layout so the hot send path does not marshal; the wire round-trip tests
// pin it to len(Marshal()).
func (q RREQ) Size() int { return rreqWireBase + wirePerHop*len(q.Route) }

// RREP carries the complete discovered route back to the origin. It is
// source-routed along the reversed request record.
type RREP struct {
	Origin routing.NodeID // RREQ origin (terminus of this reply)
	Target routing.NodeID // requested destination
	ReqID  uint32
	Route  []routing.NodeID // full path Origin..Target
	Index  int              // current position on the reversed return path
}

// Kind implements routing.Message.
func (RREP) Kind() metrics.ControlKind { return metrics.RREP }

// Size implements routing.Message.
func (p RREP) Size() int { return rrepWireBase + wirePerHop*len(p.Route) }

// RERR reports a broken source-route link to the packet's origin. It is
// source-routed back along the failed packet's traversed prefix.
type RERR struct {
	From, To routing.NodeID   // the broken link
	Origin   routing.NodeID   // who must learn about it
	Route    []routing.NodeID // return path to Origin
	Index    int
}

// Kind implements routing.Message.
func (RERR) Kind() metrics.ControlKind { return metrics.RERR }

// Size implements routing.Message.
func (e RERR) Size() int { return rerrWireBase + wirePerHop*len(e.Route) }

// Wire sizes of the fixed-layout prefixes (type byte and route-length
// count included); pinned against Marshal by the wire round-trip tests.
const (
	rreqWireBase = 1 + 4 + 4 + 4 + 1 + 2
	rrepWireBase = 1 + 4 + 4 + 4 + 2 + 2
	rerrWireBase = 1 + 4 + 4 + 4 + 2 + 2
	wirePerHop   = 4
)

type reqKey struct {
	origin routing.NodeID
	id     uint32
}

type discovery struct {
	id      uint32
	retries int
	timer   sim.Timer
}

// DSR is one node's protocol instance.
type DSR struct {
	node *routing.Node
	cfg  Config

	cache     *pathCache
	reqSeen   map[reqKey]struct{}
	pending   map[routing.NodeID][]*routing.DataPacket
	active    map[routing.NodeID]*discovery
	nextReqID uint32
	stopped   bool

	// Run-local message pools: wire messages are pooled pointers recycled
	// by the sending node once the MAC releases the frame.
	rreqPool runpool.Pool[RREQ]
	rrepPool runpool.Pool[RREP]
	rerrPool runpool.Pool[RERR]
}

var (
	_ routing.Protocol           = (*DSR)(nil)
	_ routing.Resetter           = (*DSR)(nil)
	_ routing.DataFailureHandler = (*DSR)(nil)
	_ routing.MessageRecycler    = (*DSR)(nil)
)

// New builds a DSR instance bound to a node.
func New(node *routing.Node, cfg Config) *DSR {
	return &DSR{
		node:    node,
		cfg:     cfg,
		cache:   newPathCache(node.ID(), cfg.CacheCapacity, cfg.CacheLifetime),
		reqSeen: make(map[reqKey]struct{}),
		pending: make(map[routing.NodeID][]*routing.DataPacket),
		active:  make(map[routing.NodeID]*discovery),
	}
}

// Start implements routing.Protocol.
func (d *DSR) Start() {
	if d.cfg.Promiscuous {
		d.node.SetPromiscuous(d.onOverhear)
	}
}

// onOverhear learns routes from traffic between other nodes: an overheard
// source-routed packet proves the transmitter is a neighbor, so the route
// from the transmitter onward is reachable through it.
func (d *DSR) onOverhear(from routing.NodeID, data *routing.DataPacket, msg routing.Message) {
	me := d.node.ID()
	now := d.node.Now()
	learn := func(route []routing.NodeID, at int) {
		if at < 0 || at >= len(route) || route[at] != from || hasNode(route, me) {
			return
		}
		d.cache.add(append([]routing.NodeID{me}, route[at:]...), now)
	}
	switch {
	case data != nil && len(data.SourceRoute) > 0:
		learn(data.SourceRoute, data.SRIndex)
	case msg != nil:
		// The reply travels the reversed route; the transmitter sits at
		// Index on the reversed path, i.e. len-1-Index on the forward
		// route, from where the route continues to the target.
		switch p := msg.(type) {
		case *RREP:
			learn(p.Route, len(p.Route)-1-p.Index)
		case RREP:
			learn(p.Route, len(p.Route)-1-p.Index)
		}
	}
}

// Stop implements routing.Protocol.
func (d *DSR) Stop() {
	d.stopped = true
	for _, disc := range d.active {
		disc.timer.Cancel()
	}
}

// Reset implements routing.Resetter: a crash empties the route cache,
// the duplicate-request memory, buffered data, and active discoveries.
// DSR keeps no sequence numbers, so nothing needs stable storage; only
// nextReqID survives (see the note on AODV's Reset). Stale delete
// closures scheduled against the old reqSeen map fire harmlessly against
// the fresh one.
func (d *DSR) Reset() {
	for _, disc := range d.active {
		disc.timer.Cancel()
	}
	for _, q := range d.pending {
		for _, pkt := range q {
			d.node.DropData(pkt, routing.DropReset)
		}
	}
	d.cache = newPathCache(d.node.ID(), d.cfg.CacheCapacity, d.cfg.CacheLifetime)
	d.reqSeen = make(map[reqKey]struct{})
	d.pending = make(map[routing.NodeID][]*routing.DataPacket)
	d.active = make(map[routing.NodeID]*discovery)
}

// WalkHeldData implements routing.HeldDataWalker: the only data packets
// DSR holds are those buffered while route discovery runs.
func (d *DSR) WalkHeldData(fn func(*routing.DataPacket)) {
	for _, q := range d.pending {
		for _, pkt := range q {
			fn(pkt)
		}
	}
}

// --- data plane ---

// Originate implements routing.Protocol.
func (d *DSR) Originate(pkt *routing.DataPacket) {
	now := d.node.Now()
	if route := d.cache.find(pkt.Dst, now); route != nil {
		pkt.SourceRoute = route
		pkt.SRIndex = 0
		d.transmitAlongRoute(pkt)
		return
	}
	d.queuePacket(pkt)
	d.solicit(pkt.Dst)
}

// HandleData implements routing.Protocol.
func (d *DSR) HandleData(from routing.NodeID, pkt *routing.DataPacket) {
	me := d.node.ID()
	if pkt.Dst == me {
		d.node.DeliverLocal(pkt)
		return
	}
	pkt.TTL--
	if pkt.TTL <= 0 {
		d.node.DropData(pkt, routing.DropTTL)
		return
	}
	// Advance along the source route. The packet names us at SRIndex+1.
	if pkt.SRIndex+1 >= len(pkt.SourceRoute) || pkt.SourceRoute[pkt.SRIndex+1] != me {
		d.node.DropData(pkt, routing.DropMalformed) // malformed or duplicated header
		return
	}
	pkt.SRIndex++
	// Relays learn the route suffix ahead of them for free.
	d.cache.add(pkt.SourceRoute[pkt.SRIndex:], d.node.Now())
	d.transmitAlongRoute(pkt)
}

// transmitAlongRoute sends pkt to the next node named in its source route.
func (d *DSR) transmitAlongRoute(pkt *routing.DataPacket) {
	if pkt.SRIndex+1 >= len(pkt.SourceRoute) {
		d.node.DropData(pkt, routing.DropMalformed)
		return
	}
	next := pkt.SourceRoute[pkt.SRIndex+1]
	d.node.SendData(next, pkt)
}

// DataFailed implements routing.DataFailureHandler: the MAC exhausted its
// retries on the next hop, so route maintenance takes the packet back.
// Note linkFailure's (pkt, next) argument order.
func (d *DSR) DataFailed(next routing.NodeID, pkt *routing.DataPacket) {
	d.linkFailure(pkt, next)
}

// linkFailure implements route maintenance: purge the link, notify the
// origin, and (draft 7) salvage the packet from the local cache.
func (d *DSR) linkFailure(pkt *routing.DataPacket, next routing.NodeID) {
	if d.stopped {
		return
	}
	me := d.node.ID()
	d.cache.removeLink(me, next)

	if pkt.Src != me {
		d.sendRERR(pkt, next)
	}

	// Salvage: re-route from the local cache if the variant allows it.
	if d.cfg.MaxSalvage > 0 && pkt.Salvaged < d.cfg.MaxSalvage {
		if route := d.cache.find(pkt.Dst, d.node.Now()); route != nil {
			pkt.Salvaged++
			pkt.SourceRoute = route
			pkt.SRIndex = 0
			d.transmitAlongRoute(pkt)
			return
		}
	}
	if pkt.Src == me {
		d.queuePacket(pkt)
		d.solicit(pkt.Dst)
		return
	}
	d.node.DropData(pkt, routing.DropLinkBreak)
}

// sendRERR reports the broken link to the packet's origin along the
// reversed traversed prefix.
func (d *DSR) sendRERR(pkt *routing.DataPacket, next routing.NodeID) {
	me := d.node.ID()
	// Reverse of SourceRoute[0..SRIndex]: me back to the origin.
	ret := reverse(pkt.SourceRoute[:pkt.SRIndex+1])
	if len(ret) < 2 || ret[0] != me {
		return
	}
	e := RERR{From: me, To: next, Origin: pkt.Src, Route: ret, Index: 0}
	d.node.Metrics().CountControlInitiate(metrics.RERR)
	d.emitRERR(ret[1], e)
}

// emitRREQ, emitRREP, and emitRERR copy a message value into a pooled
// wire message (reusing its route capacity) and hand it to the MAC; the
// node recycles it via RecycleMessage once the frame is released.
func (d *DSR) emitRREQ(to routing.NodeID, q RREQ) {
	m := d.rreqPool.Get()
	route := m.Route
	*m = q
	m.Route = append(route[:0], q.Route...)
	d.node.SendControl(to, m, nil)
}

func (d *DSR) emitRREP(to routing.NodeID, p RREP) {
	m := d.rrepPool.Get()
	route := m.Route
	*m = p
	m.Route = append(route[:0], p.Route...)
	d.node.SendControl(to, m, nil)
}

func (d *DSR) emitRERR(to routing.NodeID, e RERR) {
	m := d.rerrPool.Get()
	route := m.Route
	*m = e
	m.Route = append(route[:0], e.Route...)
	d.node.SendControl(to, m, nil)
}

// RecycleMessage implements routing.MessageRecycler.
func (d *DSR) RecycleMessage(msg routing.Message) {
	switch m := msg.(type) {
	case *RREQ:
		m.Route = m.Route[:0]
		d.rreqPool.Put(m)
	case *RREP:
		m.Route = m.Route[:0]
		d.rrepPool.Put(m)
	case *RERR:
		m.Route = m.Route[:0]
		d.rerrPool.Put(m)
	}
}

func (d *DSR) queuePacket(pkt *routing.DataPacket) {
	q := d.pending[pkt.Dst]
	if len(q) >= d.cfg.MaxQueuedPerDest {
		d.node.DropData(q[0], routing.DropQueueOverflow)
		q = q[1:]
	}
	d.pending[pkt.Dst] = append(q, pkt)
}

func (d *DSR) flushPending(dst routing.NodeID) {
	q := d.pending[dst]
	if len(q) == 0 {
		return
	}
	now := d.node.Now()
	route := d.cache.find(dst, now)
	if route == nil {
		return
	}
	delete(d.pending, dst)
	for _, pkt := range q {
		pkt.SourceRoute = append([]routing.NodeID(nil), route...)
		pkt.SRIndex = 0
		d.transmitAlongRoute(pkt)
	}
}

// --- route discovery ---

func (d *DSR) solicit(dst routing.NodeID) {
	if d.stopped || dst == d.node.ID() {
		return
	}
	if _, ok := d.active[dst]; ok {
		return
	}
	d.nextReqID++
	disc := &discovery{id: d.nextReqID}
	d.active[dst] = disc
	d.broadcastRREQ(dst, disc)
}

func (d *DSR) broadcastRREQ(dst routing.NodeID, disc *discovery) {
	me := d.node.ID()
	ttl := 1 // non-propagating ring-0 request first
	if disc.retries > 0 {
		ttl = d.cfg.NetDiameter
	}
	q := RREQ{
		Target: dst,
		Origin: me,
		ReqID:  disc.id,
		Route:  []routing.NodeID{me},
		TTL:    ttl,
	}
	d.node.Metrics().CountControlInitiate(metrics.RREQ)
	d.emitRREQ(routing.BroadcastID, q)

	wait := d.cfg.DiscoveryTimeout
	if disc.retries > 0 {
		backoff := d.cfg.BackoffBase
		if d.cfg.DraftVariant >= 7 {
			backoff <<= uint(disc.retries - 1) // exponential backoff
		}
		wait += backoff
	}
	disc.timer = d.node.Schedule(wait, func() { d.discoveryTimeout(dst, disc) })
}

func (d *DSR) discoveryTimeout(dst routing.NodeID, disc *discovery) {
	if d.stopped || d.active[dst] != disc {
		return
	}
	disc.retries++
	if disc.retries > d.cfg.MaxRetries {
		delete(d.active, dst)
		for _, pkt := range d.pending[dst] {
			d.node.DropData(pkt, routing.DropNoRoute)
		}
		delete(d.pending, dst)
		return
	}
	d.nextReqID++
	disc.id = d.nextReqID
	d.broadcastRREQ(dst, disc)
}

// --- control plane ---

// HandleControl implements routing.Protocol.
func (d *DSR) HandleControl(from routing.NodeID, msg routing.Message) {
	if d.stopped {
		return
	}
	// The wire path delivers pooled pointer messages (read-only, valid
	// only during the call); tests and the adversary layer may still hand
	// in plain values.
	switch m := msg.(type) {
	case *RREQ:
		d.handleRREQ(*m)
	case RREQ:
		d.handleRREQ(m)
	case *RREP:
		d.handleRREP(*m)
	case RREP:
		d.handleRREP(m)
	case *RERR:
		d.handleRERR(*m)
	case RERR:
		d.handleRERR(m)
	}
}

func (d *DSR) handleRREQ(q RREQ) {
	me := d.node.ID()
	if q.Origin == me || hasNode(q.Route, me) {
		return
	}
	key := reqKey{origin: q.Origin, id: q.ReqID}
	if _, seen := d.reqSeen[key]; seen {
		return
	}
	d.reqSeen[key] = struct{}{}
	d.node.Schedule(d.cfg.ReqCacheLife, func() { delete(d.reqSeen, key) })
	now := d.node.Now()

	// Learn the reverse of the accumulated record (symmetric links).
	d.cache.add(append([]routing.NodeID{me}, reverse(q.Route)...), now)

	route := append(append([]routing.NodeID(nil), q.Route...), me)

	if q.Target == me {
		d.reply(RREP{Origin: q.Origin, Target: me, ReqID: q.ReqID, Route: route})
		return
	}

	if d.cfg.ReplyFromCache {
		if tail := d.cache.find(q.Target, now); tail != nil {
			// Splice accumulated record + cached remainder, rejecting
			// routes that would visit a node twice.
			if spliced := splice(route, tail); spliced != nil {
				d.reply(RREP{Origin: q.Origin, Target: q.Target, ReqID: q.ReqID, Route: spliced})
				return
			}
		}
	}

	if q.TTL <= 1 {
		return
	}
	rq := q
	rq.TTL--
	rq.Route = route
	jitter := time.Duration(d.node.RNG().Float64() * float64(d.cfg.BroadcastJitter))
	d.node.Schedule(jitter, func() {
		if d.stopped {
			return
		}
		d.emitRREQ(routing.BroadcastID, rq)
	})
}

// reply sends a RREP source-routed along the reversed discovered route.
func (d *DSR) reply(p RREP) {
	me := d.node.ID()
	ret := reverse(p.Route)
	// Trim the return path to start at this node (the replier may be an
	// intermediate cache hit partway along the route).
	start := -1
	for i, n := range ret {
		if n == me {
			start = i
			break
		}
	}
	if start < 0 || start+1 >= len(ret) {
		return
	}
	p.Index = start
	d.node.Metrics().CountControlInitiate(metrics.RREP)
	d.emitRREP(ret[start+1], p)
}

func (d *DSR) handleRREP(p RREP) {
	me := d.node.ID()
	now := d.node.Now()
	ret := reverse(p.Route)

	if p.Origin == me {
		d.cache.add(p.Route, now)
		d.node.Metrics().RREPUsable++
		if disc, ok := d.active[p.Target]; ok {
			disc.timer.Cancel()
			delete(d.active, p.Target)
		}
		d.flushPending(p.Target)
		return
	}

	// Relays on the return path learn the downstream portion of the route.
	idx := p.Index + 1
	if idx >= len(ret) || ret[idx] != me {
		return
	}
	// From me, the discovered route reaches the target along ret[:idx+1]
	// reversed. Cache the forward suffix we now know.
	d.cache.add(reverse(ret[:idx+1]), now)
	d.node.Metrics().RREPUsable++
	if idx+1 >= len(ret) {
		return
	}
	fwd := p
	fwd.Index = idx
	d.emitRREP(ret[idx+1], fwd)
}

func (d *DSR) handleRERR(e RERR) {
	me := d.node.ID()
	d.cache.removeLink(e.From, e.To)
	if e.Origin == me {
		return
	}
	idx := e.Index + 1
	if idx >= len(e.Route) || e.Route[idx] != me {
		return
	}
	if idx+1 >= len(e.Route) {
		return
	}
	fwd := e
	fwd.Index = idx
	d.emitRERR(e.Route[idx+1], fwd)
}

// --- helpers ---

// CacheLen exposes the number of cached routes (for tests).
func (d *DSR) CacheLen() int { return d.cache.len() }

// CachedRoute exposes the cached route to dst, if any (for tests).
func (d *DSR) CachedRoute(dst routing.NodeID) []routing.NodeID {
	return d.cache.find(dst, d.node.Now())
}

func reverse(p []routing.NodeID) []routing.NodeID {
	out := make([]routing.NodeID, len(p))
	for i, n := range p {
		out[len(p)-1-i] = n
	}
	return out
}

// splice joins an accumulated record with a cached tail (head's last node
// == tail's first node), returning nil if any node would repeat.
func splice(head, tail []routing.NodeID) []routing.NodeID {
	if len(head) == 0 || len(tail) == 0 || head[len(head)-1] != tail[0] {
		return nil
	}
	seen := make(map[routing.NodeID]struct{}, len(head)+len(tail))
	for _, n := range head {
		if _, dup := seen[n]; dup {
			return nil
		}
		seen[n] = struct{}{}
	}
	out := append([]routing.NodeID(nil), head...)
	for _, n := range tail[1:] {
		if _, dup := seen[n]; dup {
			return nil
		}
		seen[n] = struct{}{}
		out = append(out, n)
	}
	return out
}
