package dsr

import (
	"time"

	"github.com/manetlab/ldr/internal/routing"
)

// pathCache is a DSR route cache: complete source routes from this node,
// with FIFO eviction and per-path expiry. DSR's correctness depends on
// aggressive cache maintenance (removing broken links everywhere) far more
// than on the discovery machinery — stale cache replies are the classic
// DSR failure mode under mobility that the paper's figures show.
type pathCache struct {
	owner    routing.NodeID
	capacity int
	lifetime time.Duration
	paths    []cachedPath
}

type cachedPath struct {
	nodes  []routing.NodeID // full path, nodes[0] == owner
	expiry time.Duration
}

func newPathCache(owner routing.NodeID, capacity int, lifetime time.Duration) *pathCache {
	return &pathCache{owner: owner, capacity: capacity, lifetime: lifetime}
}

// add inserts a path beginning at the cache owner. Duplicate paths only
// refresh the expiry.
func (c *pathCache) add(path []routing.NodeID, now time.Duration) {
	if len(path) < 2 || path[0] != c.owner {
		return
	}
	for i := range c.paths {
		if equalPath(c.paths[i].nodes, path) {
			c.paths[i].expiry = now + c.lifetime
			return
		}
	}
	if len(c.paths) >= c.capacity {
		c.paths = c.paths[1:]
	}
	cp := append([]routing.NodeID(nil), path...)
	c.paths = append(c.paths, cachedPath{nodes: cp, expiry: now + c.lifetime})
}

// find returns the shortest cached live path from the owner to dst
// (including both endpoints), or nil.
func (c *pathCache) find(dst routing.NodeID, now time.Duration) []routing.NodeID {
	var best []routing.NodeID
	for _, p := range c.paths {
		if p.expiry <= now {
			continue
		}
		for i, n := range p.nodes {
			if n == dst {
				if best == nil || i+1 < len(best) {
					best = p.nodes[:i+1]
				}
				break
			}
		}
	}
	if best == nil {
		return nil
	}
	return append([]routing.NodeID(nil), best...)
}

// removeLink deletes the directed link a→b (and b→a; links are symmetric
// in this model) from every cached path, truncating paths at the break.
func (c *pathCache) removeLink(a, b routing.NodeID) {
	out := c.paths[:0]
	for _, p := range c.paths {
		cut := len(p.nodes)
		for i := 0; i+1 < len(p.nodes); i++ {
			x, y := p.nodes[i], p.nodes[i+1]
			if (x == a && y == b) || (x == b && y == a) {
				cut = i + 1
				break
			}
		}
		if cut >= 2 {
			p.nodes = p.nodes[:cut]
			out = append(out, p)
		}
	}
	c.paths = out
}

// len returns the number of cached paths (for tests).
func (c *pathCache) len() int { return len(c.paths) }

func equalPath(a, b []routing.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hasNode reports whether path contains n.
func hasNode(path []routing.NodeID, n routing.NodeID) bool {
	for _, x := range path {
		if x == n {
			return true
		}
	}
	return false
}
