package dsr

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/manetlab/ldr/internal/routing"
)

const hold = 300 * time.Second

func ids(xs ...int) []routing.NodeID {
	out := make([]routing.NodeID, len(xs))
	for i, x := range xs {
		out[i] = routing.NodeID(x)
	}
	return out
}

func TestCacheFindShortest(t *testing.T) {
	c := newPathCache(0, 8, hold)
	c.add(ids(0, 1, 2, 3, 9), 0)
	c.add(ids(0, 4, 9), 0)
	got := c.find(9, 0)
	want := ids(0, 4, 9)
	if !equalPath(got, want) {
		t.Fatalf("find = %v, want the shorter %v", got, want)
	}
}

func TestCacheFindIntermediateNode(t *testing.T) {
	c := newPathCache(0, 8, hold)
	c.add(ids(0, 1, 2, 3), 0)
	// A path to 3 also yields paths to 1 and 2.
	if got := c.find(2, 0); !equalPath(got, ids(0, 1, 2)) {
		t.Fatalf("find(2) = %v", got)
	}
}

func TestCacheExpiry(t *testing.T) {
	c := newPathCache(0, 8, hold)
	c.add(ids(0, 1, 2), 0)
	if c.find(2, hold+1) != nil {
		t.Fatal("expired path still served")
	}
	// Re-adding refreshes.
	c.add(ids(0, 1, 2), hold)
	if c.find(2, hold+1) == nil {
		t.Fatal("refreshed path unavailable")
	}
	if c.len() != 1 {
		t.Fatalf("duplicate add grew the cache: %d entries", c.len())
	}
}

func TestCacheRejectsForeignAndTrivialPaths(t *testing.T) {
	c := newPathCache(0, 8, hold)
	c.add(ids(1, 2, 3), 0) // does not start at owner
	c.add(ids(0), 0)       // too short
	if c.len() != 0 {
		t.Fatalf("invalid paths cached: %d", c.len())
	}
}

func TestCacheCapacityFIFO(t *testing.T) {
	c := newPathCache(0, 2, hold)
	c.add(ids(0, 1), 0)
	c.add(ids(0, 2), 0)
	c.add(ids(0, 3), 0) // evicts the oldest
	if c.find(1, 0) != nil {
		t.Fatal("oldest path not evicted")
	}
	if c.find(3, 0) == nil {
		t.Fatal("newest path missing")
	}
}

func TestRemoveLinkTruncates(t *testing.T) {
	c := newPathCache(0, 8, hold)
	c.add(ids(0, 1, 2, 3, 4), 0)
	c.removeLink(2, 3)
	if c.find(4, 0) != nil || c.find(3, 0) != nil {
		t.Fatal("link removal did not cut downstream destinations")
	}
	// The prefix before the break survives.
	if got := c.find(2, 0); !equalPath(got, ids(0, 1, 2)) {
		t.Fatalf("prefix lost: %v", got)
	}
}

func TestRemoveLinkSymmetric(t *testing.T) {
	c := newPathCache(0, 8, hold)
	c.add(ids(0, 1, 2), 0)
	c.removeLink(2, 1) // reversed orientation must also cut 1→2
	if c.find(2, 0) != nil {
		t.Fatal("reverse link removal missed the path")
	}
}

func TestRemoveLinkDropsDegeneratePaths(t *testing.T) {
	c := newPathCache(0, 8, hold)
	c.add(ids(0, 1), 0)
	c.removeLink(0, 1)
	if c.len() != 0 {
		t.Fatal("single-hop path survived removal of its only link")
	}
}

func TestSplice(t *testing.T) {
	got := splice(ids(0, 1, 2), ids(2, 3, 4))
	if !equalPath(got, ids(0, 1, 2, 3, 4)) {
		t.Fatalf("splice = %v", got)
	}
	if splice(ids(0, 1, 2), ids(9, 3)) != nil {
		t.Fatal("splice with mismatched junction succeeded")
	}
	if splice(ids(0, 1, 2), ids(2, 1, 5)) != nil {
		t.Fatal("splice produced a route visiting node 1 twice")
	}
	if splice(nil, ids(1, 2)) != nil || splice(ids(0, 1), nil) != nil {
		t.Fatal("splice of empty input succeeded")
	}
}

// Property: find never returns a path with repeated nodes or one that
// does not start at the owner and end at the target.
func TestFindReturnsWellFormedPaths(t *testing.T) {
	f := func(hops []uint8, target uint8) bool {
		c := newPathCache(0, 16, hold)
		path := ids(0)
		seen := map[routing.NodeID]bool{0: true}
		for _, h := range hops {
			n := routing.NodeID(h%30 + 1)
			if seen[n] {
				continue
			}
			seen[n] = true
			path = append(path, n)
		}
		c.add(path, 0)
		got := c.find(routing.NodeID(target%31), 0)
		if got == nil {
			return true
		}
		if got[0] != 0 || got[len(got)-1] != routing.NodeID(target%31) {
			return false
		}
		dup := map[routing.NodeID]bool{}
		for _, n := range got {
			if dup[n] {
				return false
			}
			dup[n] = true
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
