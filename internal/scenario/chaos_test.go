package scenario_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/core"
	"github.com/manetlab/ldr/internal/loopcheck"
	"github.com/manetlab/ldr/internal/scenario"
)

// chaosLoops runs a constant-motion scenario and counts instantaneous
// successor cycles across frequent global snapshots.
func chaosLoops(t *testing.T, proto scenario.ProtocolName, seed int64) int {
	t.Helper()
	cfg := scenario.Nodes50(proto, 8, 0, seed)
	cfg.Nodes = 25
	cfg.SimTime = 45 * time.Second
	nw, gen, err := scenario.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	gen.Start()
	loops := 0
	for tick := time.Second; tick < cfg.SimTime; tick += 250 * time.Millisecond {
		nw.Sim.At(tick, func() {
			for _, v := range loopcheck.Check(nw.Nodes) {
				if len(v.Cycle) > 0 {
					loops++
				}
			}
		})
	}
	nw.Sim.Run(cfg.SimTime)
	return loops
}

// TestChaosNoRoutingLoops: LDR and AODV claim loop-freedom at every
// instant; under constant motion their successor graphs must never show a
// cycle. OLSR only *tolerates* temporary loops (the paper's §1 wording),
// which the companion test below demonstrates rather than forbids.
func TestChaosNoRoutingLoops(t *testing.T) {
	for _, proto := range []scenario.ProtocolName{scenario.LDR, scenario.AODV} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				if loops := chaosLoops(t, proto, seed); loops > 0 {
					t.Fatalf("seed %d: %d instantaneous routing loops", seed, loops)
				}
			}
		})
	}
}

// TestOLSRToleratesTransientLoops documents the proactive baseline's
// different guarantee: under high mobility its link-state tables pass
// through transient loops while HELLO/TC refloods catch up. This is
// expected protocol behaviour (§1 classifies OLSR as loop-tolerant), and
// the contrast is the motivation for LDR's instantaneous invariants.
func TestOLSRToleratesTransientLoops(t *testing.T) {
	total := 0
	for seed := int64(1); seed <= 3; seed++ {
		total += chaosLoops(t, scenario.OLSR, seed)
	}
	t.Logf("OLSR transient loops over 3 chaotic runs: %d", total)
	if total == 0 {
		t.Skip("no transient loops observed at these seeds (not an error)")
	}
}

// TestChaosLDRMultipathOrderingCriterion also enforces the full ordering
// criterion (not just acyclicity) for LDR with every extension enabled.
func TestChaosLDRAllOptionsOrderingCriterion(t *testing.T) {
	ldrCfg := defaultLDRAllOptions()
	for seed := int64(4); seed <= 6; seed++ {
		cfg := scenario.Nodes50(scenario.LDR, 8, 0, seed)
		cfg.Nodes = 25
		cfg.SimTime = 45 * time.Second
		cfg.LDRConfig = &ldrCfg
		nw, gen, err := scenario.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nw.Start()
		gen.Start()
		for tick := time.Second; tick < cfg.SimTime; tick += 250 * time.Millisecond {
			nw.Sim.At(tick, func() {
				for _, v := range loopcheck.Check(nw.Nodes) {
					t.Errorf("seed %d: %v", seed, v)
				}
			})
		}
		nw.Sim.Run(cfg.SimTime)
		if t.Failed() {
			return
		}
	}
}

// TestDeliveryBoundedByReachability sanity-checks the metrics against the
// topology oracle: nothing can beat physics.
func TestDeliveryBoundedByReachability(t *testing.T) {
	cfg := scenario.Nodes50(scenario.LDR, 5, 30*time.Second, 9)
	cfg.Nodes = 20
	cfg.SimTime = 60 * time.Second
	nw, gen, err := scenario.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Sample the reachable fraction over the run using the same mobility
	// the network sees (query through the medium's model via snapshots of
	// node positions — rebuild the model from the scenario for the oracle).
	nw.Start()
	gen.Start()
	nw.Sim.Run(cfg.SimTime)

	ratio := nw.Collector.DeliveryRatio()
	if ratio > 1.0 {
		t.Fatalf("delivery ratio %v exceeds 1", ratio)
	}
	if nw.Collector.DataDelivered > nw.Collector.DataInitiated {
		t.Fatal("delivered more packets than initiated")
	}
	// Mean hop count must be at least 1 and at most the TTL budget.
	if h := nw.Collector.MeanHops(); h < 1 || h > 64 {
		t.Fatalf("mean hops = %v, outside [1, 64]", h)
	}
}

// defaultLDRAllOptions enables every optimization plus the multipath
// extension — the widest invariant surface.
func defaultLDRAllOptions() core.Config {
	cfg := core.DefaultConfig()
	cfg.Multipath = true
	return cfg
}
