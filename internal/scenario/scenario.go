// Package scenario assembles complete simulation runs: terrain, mobility,
// radio, MAC, protocol, and CBR workload, following §4 of the LDR paper.
//
// The two canonical setups are 50 nodes on 1500 m × 300 m and 100 nodes on
// 2200 m × 600 m, with 10- or 30-flow CBR loads, node speeds of 1–20 m/s,
// and pause times swept from 0 (constant motion) to the simulation length
// (static).
package scenario

import (
	"fmt"
	"time"

	"github.com/manetlab/ldr/internal/adversary"
	"github.com/manetlab/ldr/internal/aodv"
	"github.com/manetlab/ldr/internal/core"
	"github.com/manetlab/ldr/internal/dsr"
	"github.com/manetlab/ldr/internal/fault"
	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/olsr"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/traffic"
)

// ProtocolName selects the routing protocol under test.
type ProtocolName string

// The four protocols compared in the paper.
const (
	LDR   ProtocolName = "ldr"
	AODV  ProtocolName = "aodv"
	DSR   ProtocolName = "dsr"
	DSR7  ProtocolName = "dsr7" // QualNet draft-7 variant (Fig. 6)
	OLSR  ProtocolName = "olsr"
	OLSRJ ProtocolName = "olsr-nojitter" // ablation: jitter queue disabled
)

// AllProtocols are the paper's four protocols in presentation order.
var AllProtocols = []ProtocolName{LDR, AODV, DSR, OLSR}

// Mobility names the selectable mobility models.
const (
	Waypoint    = "waypoint"    // random waypoint (the paper's model)
	Manhattan   = "manhattan"   // street-grid constrained movement
	GaussMarkov = "gaussmarkov" // correlated-velocity smooth motion
)

// Mobilities lists the valid mobility model names, for flag validation
// and fuzzer draws.
func Mobilities() []string { return []string{Waypoint, Manhattan, GaussMarkov} }

// ValidMobility reports whether name selects a known mobility model
// ("" selects random waypoint).
func ValidMobility(name string) bool {
	switch name {
	case "", Waypoint, Manhattan, GaussMarkov:
		return true
	}
	return false
}

// Radio names the selectable transmit-power profiles. Classes are
// assigned per node id (i % len(classes), see radio.Config.Classes), so
// a profile is a pure function of the node count — no randomness drawn.
const (
	RadioUniform = "uniform" // every node at the paper's 275 m disk
	RadioMixed   = "mixed"   // three interleaved classes around the default
	RadioAsym    = "asym"    // alternating long/short classes, maximizing one-way links
)

// Radios lists the valid radio profile names, for flag validation and
// fuzzer draws.
func Radios() []string { return []string{RadioUniform, RadioMixed, RadioAsym} }

// ValidRadio reports whether name selects a known radio profile
// ("" selects the uniform disk).
func ValidRadio(name string) bool {
	switch name {
	case "", RadioUniform, RadioMixed, RadioAsym:
		return true
	}
	return false
}

// RadioClasses maps a radio profile name to its transmit-power classes;
// nil means the uniform single-disk medium.
func RadioClasses(name string) []radio.Class {
	switch name {
	case RadioMixed:
		// Weak, default, and strong radios interleaved: plenty of
		// one-way links without stranding whole regions.
		return []radio.Class{
			{Range: 200, CSRange: 450},
			{Range: 275, CSRange: 550},
			{Range: 350, CSRange: 650},
		}
	case RadioAsym:
		// Every other node is a long-range transmitter the short-range
		// half can hear but never answer — the starkest asymmetric-link
		// regime the MAC ACK and reverse-path code must survive.
		return []radio.Class{
			{Range: 375, CSRange: 650},
			{Range: 150, CSRange: 450},
		}
	}
	return nil
}

// Density names the selectable node-placement warps (see
// mobility.NewWarped): deterministic terrain-preserving maps over the
// movement model's positions, so placement density changes without
// perturbing any seeded stream.
const (
	DensityUniform  = "uniform"  // the movement model's own placement
	DensityGradient = "gradient" // dense at x=0, thinning toward x=Width
	DensityHotspot  = "hotspot"  // dense core, sparse borders
)

// Densities lists the valid density profile names.
func Densities() []string { return []string{DensityUniform, DensityGradient, DensityHotspot} }

// ValidDensity reports whether name selects a known density profile
// ("" selects uniform placement).
func ValidDensity(name string) bool {
	switch name {
	case "", DensityUniform, DensityGradient, DensityHotspot:
		return true
	}
	return false
}

// Config describes one simulation run.
type Config struct {
	Protocol  ProtocolName
	Nodes     int
	Terrain   mobility.Terrain
	Flows     int
	PauseTime time.Duration
	MinSpeed  float64 // m/s
	MaxSpeed  float64 // m/s
	SimTime   time.Duration
	Seed      int64

	// Mobility selects the movement model ("" → random waypoint). The
	// speed and pause fields above parameterize whichever model runs:
	// Manhattan pauses at intersections and draws leg speeds from
	// [MinSpeed, MaxSpeed]; Gauss-Markov reverts to the mid-range speed.
	// Scripted Positions (below) override the model entirely.
	Mobility string

	// Radio selects a named heterogeneous transmit-power profile ("" or
	// "uniform" → the paper's single 275 m disk). Non-uniform profiles
	// assign radio.Config.Classes per node id, making links directional;
	// they compose with RadioConfig (the classes are stamped onto
	// whichever base config runs).
	Radio string

	// Density selects a named node-placement warp ("" or "uniform" → the
	// movement model's own uniform placement). Warps are deterministic
	// position maps (mobility.NewWarped), so enabling one draws no
	// randomness. Ignored when scripted Positions pin exact coordinates.
	Density string

	// TrafficPattern selects the workload generator ("" → CBR); see
	// internal/traffic for the bursty and request-response patterns.
	TrafficPattern traffic.Pattern

	// AdaptiveTimeout switches LDR and AODV from constant route
	// lifetimes to RTT-derived ones (routing.RTTEstimator). Ignored by
	// DSR and OLSR, which have no timeout-driven route expiry of the
	// same shape, so protocol sweeps can set it unconditionally.
	AdaptiveTimeout bool

	// RTSCTS enables the MAC's RTS/CTS virtual carrier sensing (off in
	// the paper's setup; exposed for the MAC-level ablation).
	RTSCTS bool

	// LDRConfig overrides the LDR configuration when Protocol == LDR
	// (used by the ablation benchmarks). Nil selects the defaults.
	LDRConfig *core.Config

	// FaultPlan, when non-nil, runs the scenario under fault injection:
	// node crash/reboot cycles, link blackouts, partitions, and
	// message-level delivery faults (see internal/fault). The injector
	// draws from its own seeded stream, so adding a plan does not
	// perturb the mobility, traffic, or MAC randomness of the run.
	FaultPlan *fault.Plan

	// AdversaryPlan, when non-nil, compromises nodes per the plan before
	// the run starts: blackhole/grayhole dropping, sequence-number
	// forgery, stale-label replay, and control storms (see
	// internal/adversary). Like FaultPlan it draws from a dedicated
	// stream (root.Split("adversary")) and composes freely with fault
	// injection in the same run.
	AdversaryPlan *adversary.Plan

	// AuditCadence > 0 enables the continuous invariant auditor: every
	// routing table is snapshotted at this virtual-time period and loop/
	// ordering violations are scored into the collector (AuditSnapshots,
	// LoopViolations, OrderingViolations).
	AuditCadence time.Duration

	// RadioConfig overrides the radio medium configuration (nil selects
	// radio.DefaultConfig). The conformance replay tests use it to pit
	// grid fast-path settings against each other on one seed.
	RadioConfig *radio.Config

	// Positions, when non-empty, replaces the random-waypoint model with
	// static nodes at these coordinates (len must equal Nodes). Scripted
	// replays — model-checker witnesses in particular — use it to pin the
	// exact topology the abstract schedule assumed.
	Positions []mobility.Point

	// Traffic, when non-empty, replaces the CBR generator with an explicit
	// origination script (Flows must be 0). Each event injects one data
	// packet at its source node at the given virtual time.
	Traffic []TrafficEvent
}

// TrafficEvent is one scripted data origination.
type TrafficEvent struct {
	At       time.Duration
	Src, Dst routing.NodeID
	Bytes    int // 0 → 512
}

// Nodes50 is the paper's 50-node scenario skeleton.
func Nodes50(proto ProtocolName, flows int, pause time.Duration, seed int64) Config {
	return Config{
		Protocol:  proto,
		Nodes:     50,
		Terrain:   mobility.Terrain{Width: 1500, Height: 300},
		Flows:     flows,
		PauseTime: pause,
		MinSpeed:  1,
		MaxSpeed:  20,
		SimTime:   900 * time.Second,
		Seed:      seed,
	}
}

// Nodes100 is the paper's 100-node scenario skeleton.
func Nodes100(proto ProtocolName, flows int, pause time.Duration, seed int64) Config {
	cfg := Nodes50(proto, flows, pause, seed)
	cfg.Nodes = 100
	cfg.Terrain = mobility.Terrain{Width: 2200, Height: 600}
	return cfg
}

// Result carries a finished run's metrics.
type Result struct {
	Config    Config
	Collector *metrics.Collector
	Events    uint64 // simulator events executed (cost measure)

	// Faults counts what the injector actually did (zero value when the
	// config had no plan).
	Faults fault.Stats
	// Adversary counts what the compromised nodes actually did (zero
	// value when the config had no adversary plan).
	Adversary adversary.Stats
	// Violations samples the first audited violations (nil when auditing
	// was off or the run was clean); counters live in the Collector.
	Violations []fault.Record

	// Interrupted reports that the run was stopped early at an event
	// boundary (Control.Interrupt — a SIGINT handler or sweep watchdog).
	// The metrics cover only the virtual time actually simulated.
	Interrupted bool `json:"Interrupted,omitempty"`
}

// SeqnoReporter is implemented by protocols that track destination
// sequence numbers (LDR, AODV) for the Fig. 7 measurement.
type SeqnoReporter interface {
	ReportSeqnos(*metrics.Collector)
}

// Instruments are the optional per-run fault instruments; Injector and
// Auditor are nil when the config does not enable them. Root is the
// scenario-level RNG root (mobility, traffic, faults); together with
// routing.Network.Root it accounts for every random draw of the run.
type Instruments struct {
	Injector  *fault.Injector
	Auditor   *fault.Auditor
	Adversary *adversary.Engine
	Root      *rng.Source
}

// Build constructs the network and workload without running them, for
// callers that need mid-run access (invariant checkers, examples).
func Build(cfg Config) (*routing.Network, *traffic.Generator, error) {
	nw, gen, _, err := BuildInstrumented(cfg)
	return nw, gen, err
}

// BuildInstrumented is Build plus the fault injector and continuous
// auditor requested by the config, already scheduled (they start firing
// when the simulation runs).
func BuildInstrumented(cfg Config) (*routing.Network, *traffic.Generator, *Instruments, error) {
	factory, err := FactoryFor(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	root := rng.New(cfg.Seed)
	model, err := buildMobility(cfg, root.Split("mobility"))
	if err != nil {
		return nil, nil, nil, err
	}

	macCfg := mac.DefaultConfig()
	macCfg.RTSCTSEnabled = cfg.RTSCTS
	radioCfg := radio.DefaultConfig()
	if cfg.RadioConfig != nil {
		radioCfg = *cfg.RadioConfig
	}
	if !ValidRadio(cfg.Radio) {
		return nil, nil, nil, fmt.Errorf("scenario: unknown radio profile %q", cfg.Radio)
	}
	if cls := RadioClasses(cfg.Radio); cls != nil {
		radioCfg.Classes = cls
	}
	nw := routing.NewNetwork(cfg.Nodes, model, radioCfg, macCfg, cfg.Seed, factory)
	if !traffic.ValidPattern(string(cfg.TrafficPattern)) {
		return nil, nil, nil, fmt.Errorf("scenario: unknown traffic pattern %q", cfg.TrafficPattern)
	}
	trafficCfg := traffic.DefaultConfig(cfg.Flows, cfg.SimTime)
	trafficCfg.Pattern = cfg.TrafficPattern
	gen := traffic.NewGenerator(nw.Sim, nw.Nodes, trafficCfg, root.Split("traffic"))
	if len(cfg.Traffic) > 0 {
		if cfg.Flows != 0 {
			return nil, nil, nil, fmt.Errorf("scenario: scripted traffic requires Flows=0 (have %d)", cfg.Flows)
		}
		for _, ev := range cfg.Traffic {
			if int(ev.Src) < 0 || int(ev.Src) >= cfg.Nodes || int(ev.Dst) < 0 || int(ev.Dst) >= cfg.Nodes {
				return nil, nil, nil, fmt.Errorf("scenario: traffic event %d->%d out of range", ev.Src, ev.Dst)
			}
			ev := ev
			bytes := ev.Bytes
			if bytes == 0 {
				bytes = 512
			}
			nw.Sim.Schedule(ev.At, func() { nw.Nodes[ev.Src].OriginateData(ev.Dst, bytes) })
		}
	}

	inst := &Instruments{Root: root}
	if cfg.AdversaryPlan != nil && len(cfg.AdversaryPlan.Compromises) > 0 {
		// Install before Start: compromising a node swaps its bound
		// protocol for the Byzantine wrapper.
		inst.Adversary = adversary.NewEngine(nw, *cfg.AdversaryPlan, root.Split("adversary"), cfg.SimTime)
		inst.Adversary.Install()
	}
	if cfg.FaultPlan != nil {
		inst.Injector = fault.NewInjector(nw, *cfg.FaultPlan, root.Split("fault"), cfg.SimTime)
		inst.Injector.Start()
	}
	if cfg.AuditCadence > 0 {
		inst.Auditor = fault.NewAuditor(nw, fault.AuditConfig{Cadence: cfg.AuditCadence, Until: cfg.SimTime})
		inst.Auditor.Start()
	}
	return nw, gen, inst, nil
}

// Run executes the scenario to completion and returns its metrics.
func Run(cfg Config) (Result, error) {
	return RunWithControl(cfg)
}

// RunWithControl is Run with zero or more Controls bound to the run's
// simulator, so signal handlers and sweep watchdogs can stop it at an
// event boundary. Nil controls are ignored. An interrupted run is not an
// error: it returns the partial Result with Interrupted set.
func RunWithControl(cfg Config, ctls ...*Control) (Result, error) {
	nw, gen, inst, err := BuildInstrumented(cfg)
	if err != nil {
		return Result{}, err
	}
	for _, c := range ctls {
		c.Bind(nw.Sim)
	}
	nw.Start()
	gen.Start()
	// Drain for a short tail so in-flight packets settle before metrics
	// are read (the paper's runs do the same implicitly by stopping flows
	// before the simulation end).
	nw.Sim.Run(cfg.SimTime + 2*time.Second)
	for _, n := range nw.Nodes {
		if r, ok := n.Protocol().(SeqnoReporter); ok {
			r.ReportSeqnos(nw.Collector)
		}
	}
	nw.Stop()
	res := Result{
		Config:      cfg,
		Collector:   nw.Collector,
		Events:      nw.Sim.EventsFired(),
		Interrupted: nw.Sim.Interrupted(),
	}
	if inst.Injector != nil {
		res.Faults = inst.Injector.Stats
	}
	if inst.Adversary != nil {
		res.Adversary = inst.Adversary.Stats
	}
	if inst.Auditor != nil {
		res.Violations = inst.Auditor.Records
	}
	return res, nil
}

// buildMobility resolves the config's movement model. Scripted Positions
// take precedence; otherwise the named model is parameterized from the
// scenario's terrain and speed fields, then wrapped in the config's
// density warp (a draw-free position map). Every model draws from the
// same root.Split("mobility") stream, so switching models or densities
// never perturbs the traffic, MAC, or fault randomness of the run.
func buildMobility(cfg Config, src *rng.Source) (mobility.Model, error) {
	if len(cfg.Positions) > 0 {
		if len(cfg.Positions) != cfg.Nodes {
			return nil, fmt.Errorf("scenario: %d positions for %d nodes", len(cfg.Positions), cfg.Nodes)
		}
		return mobility.NewStatic(cfg.Positions), nil
	}
	model, err := buildMovement(cfg, src)
	if err != nil {
		return nil, err
	}
	switch cfg.Density {
	case "", DensityUniform:
		return model, nil
	case DensityGradient:
		return mobility.NewWarped(model, mobility.GradientWarp(cfg.Terrain)), nil
	case DensityHotspot:
		return mobility.NewWarped(model, mobility.HotspotWarp(cfg.Terrain)), nil
	default:
		return nil, fmt.Errorf("scenario: unknown density profile %q", cfg.Density)
	}
}

// buildMovement resolves the named movement model itself.
func buildMovement(cfg Config, src *rng.Source) (mobility.Model, error) {
	switch cfg.Mobility {
	case "", Waypoint:
		return mobility.NewWaypoint(cfg.Nodes, mobility.WaypointConfig{
			Terrain:  cfg.Terrain,
			MinSpeed: cfg.MinSpeed,
			MaxSpeed: cfg.MaxSpeed,
			Pause:    cfg.PauseTime,
		}, src), nil
	case Manhattan:
		return mobility.NewManhattan(cfg.Nodes, mobility.ManhattanConfig{
			Terrain:  cfg.Terrain,
			MinSpeed: cfg.MinSpeed,
			MaxSpeed: cfg.MaxSpeed,
			TurnProb: 0.25,
			Pause:    cfg.PauseTime,
			// Alternate full-speed avenues with slower side streets.
			SpeedClasses: []float64{1, 0.6},
		}, src), nil
	case GaussMarkov:
		return mobility.NewGaussMarkov(cfg.Nodes, mobility.GaussMarkovConfig{
			Terrain:   cfg.Terrain,
			MeanSpeed: (cfg.MinSpeed + cfg.MaxSpeed) / 2,
			MaxSpeed:  cfg.MaxSpeed,
			Alpha:     0.75,
		}, src), nil
	default:
		return nil, fmt.Errorf("scenario: unknown mobility model %q", cfg.Mobility)
	}
}

// FactoryFor resolves the protocol factory for a full scenario config,
// layering config-level protocol options (AdaptiveTimeout) on top of
// Factory's per-protocol defaults.
func FactoryFor(cfg Config) (routing.ProtocolFactory, error) {
	if cfg.AdaptiveTimeout {
		switch cfg.Protocol {
		case LDR:
			c := core.DefaultConfig()
			if cfg.LDRConfig != nil {
				c = *cfg.LDRConfig
			}
			c.AdaptiveTimeout = true
			return func(n *routing.Node) routing.Protocol { return core.New(n, c) }, nil
		case AODV:
			c := aodv.DefaultConfig()
			c.AdaptiveTimeout = true
			return func(n *routing.Node) routing.Protocol { return aodv.New(n, c) }, nil
		}
	}
	return Factory(cfg.Protocol, cfg.LDRConfig)
}

// Factory returns the protocol constructor for a name. ldrCfg overrides
// the LDR configuration and may be nil.
func Factory(name ProtocolName, ldrCfg *core.Config) (routing.ProtocolFactory, error) {
	switch name {
	case LDR:
		cfg := core.DefaultConfig()
		if ldrCfg != nil {
			cfg = *ldrCfg
		}
		return func(n *routing.Node) routing.Protocol { return core.New(n, cfg) }, nil
	case AODV:
		return func(n *routing.Node) routing.Protocol { return aodv.New(n, aodv.DefaultConfig()) }, nil
	case DSR:
		return func(n *routing.Node) routing.Protocol { return dsr.New(n, dsr.DefaultConfig()) }, nil
	case DSR7:
		return func(n *routing.Node) routing.Protocol { return dsr.New(n, dsr.Draft7Config()) }, nil
	case OLSR:
		return func(n *routing.Node) routing.Protocol { return olsr.New(n, olsr.DefaultConfig()) }, nil
	case OLSRJ:
		cfg := olsr.DefaultConfig()
		cfg.JitterQueue = false
		return func(n *routing.Node) routing.Protocol { return olsr.New(n, cfg) }, nil
	default:
		if f, ok := registeredFactory(name); ok {
			return f, nil
		}
		return nil, fmt.Errorf("scenario: unknown protocol %q", name)
	}
}

// PauseTimes is the paper's pause-time sweep for a given simulation
// length: 0 s (constant motion) through the full length (static).
func PauseTimes(simTime time.Duration) []time.Duration {
	full := []time.Duration{
		0, 30 * time.Second, 60 * time.Second, 120 * time.Second,
		300 * time.Second, 600 * time.Second, 900 * time.Second,
	}
	var out []time.Duration
	for _, p := range full {
		if p < simTime {
			out = append(out, p)
		}
	}
	return append(out, simTime)
}
