package scenario

import (
	"sync"

	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/sim"
)

// Control is a goroutine-safe remote stop for scenario runs. A run bound
// to a Control stops at the next event boundary once Interrupt is called,
// finishes its teardown normally, and reports Interrupted in its Result —
// so a SIGINT or a sweep watchdog yields partial metrics instead of a
// torn process. One Control may be bound to many runs (ldrsim -trials
// shares one across every cell), and Interrupt before Bind still takes
// effect, so there is no race between installing a signal handler and
// starting the simulation.
type Control struct {
	mu          sync.Mutex
	interrupted bool
	sims        []*sim.Simulator
}

// NewControl returns an un-triggered Control.
func NewControl() *Control { return &Control{} }

// Interrupt asks every bound run — current and future — to stop at its
// next event boundary. Idempotent and safe from any goroutine.
func (c *Control) Interrupt() {
	c.mu.Lock()
	c.interrupted = true
	sims := append([]*sim.Simulator(nil), c.sims...)
	c.mu.Unlock()
	for _, s := range sims {
		s.Interrupt()
	}
}

// Interrupted reports whether Interrupt has been called.
func (c *Control) Interrupted() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.interrupted
}

// Bind attaches a simulator so a later (or earlier) Interrupt reaches it.
// Nil receivers and nil simulators are ignored, so callers can thread an
// optional Control without guarding every call site.
func (c *Control) Bind(s *sim.Simulator) {
	if c == nil || s == nil {
		return
	}
	c.mu.Lock()
	c.sims = append(c.sims, s)
	fired := c.interrupted
	c.mu.Unlock()
	if fired {
		s.Interrupt()
	}
}

// registeredProtocols holds protocol constructors installed at runtime
// via RegisterProtocol, consulted by Factory after the built-in names.
var (
	registeredMu        sync.Mutex
	registeredProtocols map[ProtocolName]routing.ProtocolFactory
)

// RegisterProtocol installs a custom protocol constructor under name,
// overriding nothing built in (built-in names win in Factory). The
// resilience harness uses it to inject deliberately misbehaving
// protocols — e.g. one that panics mid-run — so quarantine and
// reproducer paths can be exercised end to end; embedders can use it to
// sweep experimental protocols without forking the scenario package.
func RegisterProtocol(name ProtocolName, f routing.ProtocolFactory) {
	registeredMu.Lock()
	defer registeredMu.Unlock()
	if registeredProtocols == nil {
		registeredProtocols = make(map[ProtocolName]routing.ProtocolFactory)
	}
	registeredProtocols[name] = f
}

// registeredFactory looks up a runtime-registered protocol.
func registeredFactory(name ProtocolName) (routing.ProtocolFactory, bool) {
	registeredMu.Lock()
	defer registeredMu.Unlock()
	f, ok := registeredProtocols[name]
	return f, ok
}
