package scenario_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/loopcheck"
	"github.com/manetlab/ldr/internal/scenario"
)

// small returns a scaled-down mobile scenario that runs in well under a
// second, for CI-grade integration tests.
func small(proto scenario.ProtocolName, seed int64) scenario.Config {
	cfg := scenario.Nodes50(proto, 5, 0 /* constant motion */, seed)
	cfg.Nodes = 20
	cfg.SimTime = 60 * time.Second
	return cfg
}

func TestAllProtocolsDeliverUnderMobility(t *testing.T) {
	for _, proto := range []scenario.ProtocolName{
		scenario.LDR, scenario.AODV, scenario.DSR, scenario.DSR7,
		scenario.OLSR, scenario.OLSRJ,
	} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			res, err := scenario.Run(small(proto, 42))
			if err != nil {
				t.Fatal(err)
			}
			c := res.Collector
			if c.DataInitiated == 0 {
				t.Fatal("no data was initiated")
			}
			ratio := c.DeliveryRatio()
			if ratio < 0.30 {
				t.Fatalf("delivery ratio = %.2f (%d/%d), implausibly low",
					ratio, c.DataDelivered, c.DataInitiated)
			}
			t.Logf("%s: delivery=%.3f load=%.2f latency=%v events=%d",
				proto, ratio, c.NetworkLoad(), c.MeanLatency(), res.Events)
		})
	}
}

func TestLDRLoopFreeAtEveryInstant(t *testing.T) {
	cfg := small(scenario.LDR, 7)
	nw, gen, err := scenario.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	gen.Start()

	var violations []loopcheck.Violation
	// Check the global routing state every 100 ms of virtual time.
	var tick func()
	tick = func() {
		violations = append(violations, loopcheck.Check(nw.Nodes)...)
		if nw.Sim.Now() < cfg.SimTime && len(violations) == 0 {
			nw.Sim.Schedule(100*time.Millisecond, tick)
		}
	}
	nw.Sim.Schedule(100*time.Millisecond, tick)
	nw.Sim.Run(cfg.SimTime)

	for _, v := range violations {
		t.Error(v)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	// Every protocol, not just LDR: OLSR once diverged run-to-run because
	// its BFS next-hop choice leaked Go map iteration order.
	for _, proto := range []scenario.ProtocolName{
		scenario.LDR, scenario.AODV, scenario.DSR, scenario.DSR7,
		scenario.OLSR, scenario.OLSRJ,
	} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			a, err := scenario.Run(small(proto, 11))
			if err != nil {
				t.Fatal(err)
			}
			b, err := scenario.Run(small(proto, 11))
			if err != nil {
				t.Fatal(err)
			}
			if a.Events != b.Events ||
				a.Collector.DataDelivered != b.Collector.DataDelivered ||
				a.Collector.TotalControlTransmitted() != b.Collector.TotalControlTransmitted() {
				t.Fatalf("same seed diverged: events %d vs %d, delivered %d vs %d",
					a.Events, b.Events, a.Collector.DataDelivered, b.Collector.DataDelivered)
			}
		})
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, err := scenario.Run(small(scenario.LDR, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenario.Run(small(scenario.LDR, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Events == b.Events && a.Collector.DataDelivered == b.Collector.DataDelivered {
		t.Fatal("different seeds produced identical runs; RNG plumbing is broken")
	}
}
