// Package wire provides binary encodings for every control message in the
// repository, so that on-air packet sizes are the sizes of real encodings
// rather than estimates, and so the message structures are pinned by
// round-trip tests the way a production protocol implementation would pin
// its wire format.
//
// The format is deliberately simple and explicit: a one-byte message type,
// followed by fixed-width big-endian fields, followed by length-prefixed
// repeated sections. It is not any IETF standard format — the paper's
// protocols each have their own drafts — but it is faithful to their field
// inventories, which is what determines the control-overhead comparisons.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MsgType identifies an encoded message.
type MsgType uint8

// Message types across all protocols.
const (
	TypeLDRRREQ MsgType = iota + 1
	TypeLDRRREP
	TypeLDRRERR
	TypeAODVRREQ
	TypeAODVRREP
	TypeAODVRERR
	TypeDSRRREQ
	TypeDSRRREP
	TypeDSRRERR
	TypeOLSRHello
	TypeOLSRTC
	TypeAODVHello
)

// Errors returned by decoding.
var (
	ErrTruncated   = errors.New("wire: truncated message")
	ErrUnknownType = errors.New("wire: unknown message type")
)

// Encoder accumulates a message body.
type Encoder struct {
	buf []byte
}

// NewEncoder starts a message of the given type.
func NewEncoder(t MsgType) *Encoder {
	return &Encoder{buf: []byte{byte(t)}}
}

// Bytes returns the encoded message.
func (e *Encoder) Bytes() []byte { return e.buf }

// U8 appends a byte.
func (e *Encoder) U8(v uint8) *Encoder {
	e.buf = append(e.buf, v)
	return e
}

// U16 appends a big-endian 16-bit value.
func (e *Encoder) U16(v uint16) *Encoder {
	e.buf = binary.BigEndian.AppendUint16(e.buf, v)
	return e
}

// U32 appends a big-endian 32-bit value.
func (e *Encoder) U32(v uint32) *Encoder {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
	return e
}

// U64 appends a big-endian 64-bit value.
func (e *Encoder) U64(v uint64) *Encoder {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
	return e
}

// Node appends a node identifier (32-bit, two's complement for the
// broadcast sentinel).
func (e *Encoder) Node(id int) *Encoder {
	return e.U32(uint32(int32(id)))
}

// Decoder reads a message body.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps an encoded message, verifying its type byte.
func NewDecoder(b []byte, want MsgType) (*Decoder, error) {
	if len(b) < 1 {
		return nil, ErrTruncated
	}
	if MsgType(b[0]) != want {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrUnknownType, b[0], want)
	}
	return &Decoder{buf: b, off: 1}, nil
}

// Type peeks the type byte of an encoded message.
func Type(b []byte) (MsgType, error) {
	if len(b) < 1 {
		return 0, ErrTruncated
	}
	return MsgType(b[0]), nil
}

// Err returns the first error encountered while decoding.
func (d *Decoder) Err() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = ErrTruncated
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads a byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian 16-bit value.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian 32-bit value.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian 64-bit value.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Node reads a node identifier.
func (d *Decoder) Node() int {
	return int(int32(d.U32()))
}
