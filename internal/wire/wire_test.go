package wire_test

import (
	"testing"

	"github.com/manetlab/ldr/internal/wire"
)

func TestRoundTripPrimitives(t *testing.T) {
	b := wire.NewEncoder(wire.TypeLDRRREQ).
		U8(7).U16(513).U32(70000).U64(1 << 40).Node(-1).Node(42).
		Bytes()

	d, err := wire.NewDecoder(b, wire.TypeLDRRREQ)
	if err != nil {
		t.Fatal(err)
	}
	if v := d.U8(); v != 7 {
		t.Fatalf("U8 = %d", v)
	}
	if v := d.U16(); v != 513 {
		t.Fatalf("U16 = %d", v)
	}
	if v := d.U32(); v != 70000 {
		t.Fatalf("U32 = %d", v)
	}
	if v := d.U64(); v != 1<<40 {
		t.Fatalf("U64 = %d", v)
	}
	if v := d.Node(); v != -1 {
		t.Fatalf("Node = %d, want broadcast sentinel -1", v)
	}
	if v := d.Node(); v != 42 {
		t.Fatalf("Node = %d", v)
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderTypeMismatch(t *testing.T) {
	b := wire.NewEncoder(wire.TypeAODVRREQ).U8(1).Bytes()
	if _, err := wire.NewDecoder(b, wire.TypeLDRRREQ); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestDecoderTruncation(t *testing.T) {
	b := wire.NewEncoder(wire.TypeOLSRTC).U32(1).Bytes()
	d, err := wire.NewDecoder(b, wire.TypeOLSRTC)
	if err != nil {
		t.Fatal(err)
	}
	d.U64() // reads past the end
	if d.Err() == nil {
		t.Fatal("truncated read not reported")
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	b := wire.NewEncoder(wire.TypeOLSRTC).U32(1).U32(2).Bytes()
	d, err := wire.NewDecoder(b, wire.TypeOLSRTC)
	if err != nil {
		t.Fatal(err)
	}
	d.U32()
	if d.Err() == nil {
		t.Fatal("trailing bytes not reported")
	}
}

func TestEmptyBuffer(t *testing.T) {
	if _, err := wire.NewDecoder(nil, wire.TypeLDRRREQ); err == nil {
		t.Fatal("nil buffer accepted")
	}
	if _, err := wire.Type(nil); err == nil {
		t.Fatal("Type on nil buffer succeeded")
	}
}

func TestTypePeek(t *testing.T) {
	b := wire.NewEncoder(wire.TypeDSRRERR).Bytes()
	got, err := wire.Type(b)
	if err != nil || got != wire.TypeDSRRERR {
		t.Fatalf("Type = %d, %v", got, err)
	}
}
