package resilience

import (
	"errors"
	"fmt"
	"time"

	"github.com/manetlab/ldr/internal/scenario"
)

// CellPanic reports that a sweep cell panicked. The recover() at the
// cell boundary converts the panic into this error so one poisoned cell
// quarantines instead of tearing down the whole sweep; the stack is the
// panicking goroutine's, captured before any other cell ran on it.
type CellPanic struct {
	Index int              // cell index within the sweep
	Key   string           // spec hash, when the sweep was journaled
	Spec  *scenario.Config // the cell's config, when known
	Value any              // the recovered panic value
	Stack string           // captured stack of the panicking goroutine
	Repro string           // path of the auto-emitted reproducer, when one was written
}

func (e *CellPanic) Error() string {
	return fmt.Sprintf("cell %d panicked: %v", e.Index, e.Value)
}

// CellTimeout reports that a cell exceeded its watchdog deadline. The
// watchdog first interrupts the cell cooperatively (the simulator stops
// at its next event boundary); only if the cell ignores the interrupt
// past the grace period is its goroutine abandoned.
type CellTimeout struct {
	Index    int              // cell index within the sweep
	Key      string           // spec hash, when the sweep was journaled
	Spec     *scenario.Config // the cell's config, when known
	Deadline time.Duration    // the scaled wall-clock budget that expired
	LastBeat time.Duration    // age of the worker's last Progress heartbeat when the watchdog fired

	// Abandoned means the cell never reached an event boundary within the
	// grace period and its goroutine was leaked. Abandoned timeouts are
	// not retryable: the leaked goroutine may still be running, so
	// re-entering the cell could race it.
	Abandoned bool
}

func (e *CellTimeout) Error() string {
	state := "interrupted"
	if e.Abandoned {
		state = "abandoned (ignored interrupt)"
	}
	return fmt.Sprintf("cell %d exceeded %v watchdog deadline, %s (last heartbeat %v ago)",
		e.Index, e.Deadline, state, e.LastBeat.Round(time.Millisecond))
}

// Transient reports whether err is a failure class worth retrying
// deterministically from the same seed: today, a watchdog timeout whose
// cell honored the interrupt. Panics and plain errors are deterministic
// for a deterministic simulator, so retrying them would only repeat the
// failure; abandoned timeouts would race the leaked goroutine.
func Transient(err error) bool {
	var t *CellTimeout
	return errors.As(err, &t) && !t.Abandoned
}

// CellDeadline scales a base per-cell wall-clock budget by the cell's
// size, so one -cell-timeout flag covers a sweep mixing 20-node smoke
// cells and 100-node, 30-flow paper cells: base × (1 + nodes/25 +
// flows/10), integer division. A non-positive base disables the
// watchdog (returns 0).
func CellDeadline(base time.Duration, nodes, flows int) time.Duration {
	if base <= 0 {
		return 0
	}
	scale := 1 + nodes/25 + flows/10
	return base * time.Duration(scale)
}
