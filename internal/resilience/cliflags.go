package resilience

import (
	"flag"
	"fmt"
	"time"
)

// ExecFlags is the resilience flag set shared by the sweep commands
// (ldrbench, ldrchaos, ldrfuzz): journaled resumable sweeps, per-cell
// watchdogs, and keep-going quarantine. Register binds the flags;
// OpenJournal validates the combination and opens the journal.
type ExecFlags struct {
	JournalDir  string
	Resume      bool
	CellTimeout time.Duration
	KeepGoing   bool
}

// Register binds the shared resilience flags onto fs.
func (f *ExecFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.JournalDir, "journal", "",
		"journal directory: completed cells are durably recorded there, so a killed sweep resumes with -resume instead of starting over")
	fs.BoolVar(&f.Resume, "resume", false,
		"resume the sweep recorded in -journal, loading completed cells instead of re-running them")
	fs.DurationVar(&f.CellTimeout, "cell-timeout", 0,
		"per-cell watchdog base deadline, scaled by cell size (0 = no watchdog); a hung cell is interrupted and reported instead of wedging the sweep")
	fs.BoolVar(&f.KeepGoing, "keep-going", false,
		"quarantine failing cells and finish the sweep; failures land in the journal's manifest.json with auto-emitted reproducers")
}

// OpenJournal validates the flag combination and opens the journal (nil
// when -journal is unset). Resuming requires a journal, and a journal
// that already holds records requires an explicit -resume — so stale
// records from an earlier sweep are never silently mistaken for this
// one's.
func (f *ExecFlags) OpenJournal() (*Journal, error) {
	if f.CellTimeout < 0 {
		return nil, fmt.Errorf("-cell-timeout must not be negative (got %v)", f.CellTimeout)
	}
	if f.Resume && f.JournalDir == "" {
		return nil, fmt.Errorf("-resume requires -journal DIR (there is nothing to resume from)")
	}
	if f.JournalDir == "" {
		return nil, nil
	}
	j, err := Open(f.JournalDir)
	if err != nil {
		return nil, err
	}
	if !f.Resume && j.Len() > 0 {
		return nil, fmt.Errorf("journal %s already holds %d completed cell(s); pass -resume to continue that sweep, or point -journal at an empty directory",
			j.Dir(), j.Len())
	}
	return j, nil
}
