// Package resilience makes long experiment sweeps crash-safe.
//
// The paper's §5 argument is that LDR survives node crashes because its
// (sn, fd) labels persist in stable storage. This package is the same
// idea applied to the harness itself: a nightly chaos or fuzz sweep that
// is SIGKILLed, hangs, or panics at cell 900/1000 must not lose the 899
// finished cells. It provides
//
//   - a content-addressed sweep journal (SpecHash + Journal): each cell's
//     scenario.Config is hashed canonically; completed results are
//     persisted one record per file with write-temp → fsync → rename, so
//     a crash can only ever lose records — the one being written, or ones
//     whose directory entry Sync has not yet persisted — and lost cells
//     deterministically re-run on resume; a finished record is never
//     corrupt;
//   - typed cell failures (CellPanic, CellTimeout) that carry enough
//     context — spec, stack, heartbeat age — to quarantine, retry, or
//     reproduce a cell without rerunning the sweep;
//   - the failure manifest written next to the journal when a sweep
//     finishes degraded, and the SIGINT/SIGTERM handler that prints the
//     exact resume command.
//
// The journal is single-writer: one process per journal directory.
// Records are idempotent and content-addressed, so resuming a sweep —
// or sharing identical cells across one — is a map lookup.
package resilience

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"github.com/manetlab/ldr/internal/scenario"
)

// specHashVersion is mixed into every spec hash. Bump it whenever the
// canonicalization below (or the semantics of scenario.Config fields)
// changes incompatibly: old journal records then simply never match, and
// cells re-run instead of replaying stale payloads.
const specHashVersion = "ldr-spec-v1"

// SpecHash content-addresses one sweep cell. The canonical form is the
// encoding/json serialization of the scenario.Config: struct fields
// marshal in declaration order, durations as int64 nanoseconds, and
// float64s in shortest round-trip form, so the bytes are a pure function
// of the config's values. The scope string namespaces the payload type
// that callers store under the hash (e.g. "metrics" vs "chaos"), so two
// harnesses sweeping the same config into one journal can never replay
// each other's payloads.
func SpecHash(scope string, cfg scenario.Config) (string, error) {
	blob, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("resilience: hashing spec: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(specHashVersion))
	h.Write([]byte{0})
	h.Write([]byte(scope))
	h.Write([]byte{0})
	h.Write(blob)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// recordExt distinguishes cell records from the manifest and reproducer
// files that share the journal directory.
const recordExt = ".cell.json"

// recordVersion is the on-disk envelope version.
const recordVersion = 1

// record is the on-disk envelope of one completed cell. The checksum
// covers the payload bytes, so a torn write — a record truncated at any
// byte by a crash — fails either JSON parsing or the checksum and is
// treated as "cell not completed", never as corrupt data.
type record struct {
	V       int             `json:"v"`
	Key     string          `json:"key"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// Journal is a crash-safe store of completed sweep cells, one record per
// file under a directory. All methods are safe for concurrent use within
// one process; the directory itself is single-writer.
type Journal struct {
	dir string

	mu      sync.Mutex
	records map[string][]byte // key → payload
	corrupt int
	dirty   bool       // renamed records whose directory entry is not yet synced
	pending int        // records mid-write in background writers
	done    *sync.Cond // signaled when pending drops to zero
	werr    error      // first background write failure, surfaced by Sync
}

// Open creates the directory if needed and loads every valid record.
// Torn or corrupt records (e.g. from a crash mid-write, which the
// temp+rename protocol makes nearly impossible, or from a truncated
// filesystem) are counted in Corrupt and otherwise ignored — the cells
// they would have covered simply re-run.
func Open(dir string) (*Journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("resilience: journal directory must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resilience: creating journal: %w", err)
	}
	j := &Journal{dir: dir, records: make(map[string][]byte)}
	j.done = sync.NewCond(&j.mu)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("resilience: reading journal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, recordExt) {
			continue
		}
		key := strings.TrimSuffix(name, recordExt)
		payload, ok := loadRecord(filepath.Join(dir, name), key)
		if !ok {
			j.corrupt++
			continue
		}
		j.records[key] = payload
	}
	return j, nil
}

// loadRecord reads and validates one record file.
func loadRecord(path, key string) ([]byte, bool) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var rec record
	if err := json.Unmarshal(blob, &rec); err != nil {
		return nil, false
	}
	if rec.V != recordVersion || rec.Key != key || len(rec.Payload) == 0 {
		return nil, false
	}
	sum := sha256.Sum256(rec.Payload)
	if hex.EncodeToString(sum[:]) != rec.Sum {
		return nil, false
	}
	return rec.Payload, true
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Len returns the number of completed cells on record.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.records)
}

// Corrupt returns the number of record files Open rejected.
func (j *Journal) Corrupt() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.corrupt
}

// Get returns the payload recorded for key. Callers must not mutate the
// returned bytes.
func (j *Journal) Get(key string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	p, ok := j.records[key]
	return p, ok
}

// Put records a completed cell. The record becomes visible to Get
// immediately; its file is written temp → fsync → rename by a background
// writer so the disk barrier stays off the sweep workers' critical path.
// Records are content-addressed and idempotent, so they need no ordering
// between each other: a kill -9 before Sync can forget queued records —
// their cells deterministically re-run on resume — but a record that
// reaches disk is never corrupt, because its bytes are fsynced before
// the rename makes it visible. Re-putting an existing key is a no-op.
// Write failures surface on Sync.
func (j *Journal) Put(key string, payload []byte) error {
	sum := sha256.Sum256(payload)
	blob, err := json.Marshal(record{
		V:       recordVersion,
		Key:     key,
		Sum:     hex.EncodeToString(sum[:]),
		Payload: json.RawMessage(payload),
	})
	if err != nil {
		return fmt.Errorf("resilience: encoding record: %w", err)
	}

	j.mu.Lock()
	if _, ok := j.records[key]; ok {
		j.mu.Unlock()
		return nil
	}
	j.records[key] = payload
	j.dirty = true
	j.pending++
	j.mu.Unlock()

	// One goroutine per record, not a serial queue: concurrent fsyncs to
	// the same filesystem batch into shared journal commits, so a burst
	// of finishing cells pays ~one barrier, not one each. The temp →
	// fsync → rename protocol is intact; only its position moves — off
	// the sweep workers.
	go j.write(key+recordExt, append(blob, '\n'))
	return nil
}

// write performs one background record write and accounts for it.
func (j *Journal) write(name string, blob []byte) {
	err := writeFileDurable(j.dir, name, blob)
	j.mu.Lock()
	if err != nil && j.werr == nil {
		j.werr = err
	}
	j.pending--
	if j.pending == 0 {
		j.done.Broadcast()
	}
	j.mu.Unlock()
}

// Sync waits for every queued record to reach disk, persists the
// directory entries, and reports the first background write failure.
// Sweeps call it once at completion (and the signal handler on the way
// out), amortizing the directory barrier across all of a sweep's Puts.
// After Sync returns nil, a kill -9 cannot lose a recorded cell.
func (j *Journal) Sync() error {
	j.mu.Lock()
	for j.pending > 0 {
		j.done.Wait()
	}
	err := j.werr
	dirty := j.dirty
	j.dirty = false
	j.mu.Unlock()
	if err != nil {
		return err
	}
	if dirty {
		return syncDir(j.dir)
	}
	return nil
}

// WriteDurable writes name under dir with the full temp → fsync →
// rename → dir-fsync protocol. Reproducer seeds use it (manifests go
// through WriteManifest); unlike journal records these are emitted on
// failure paths where latency is irrelevant and immediate durability is
// the point.
func WriteDurable(dir, name string, blob []byte) error {
	return writeDurable(dir, name, blob)
}

// writeDurable writes name under dir with the temp → fsync → rename →
// dir-fsync protocol used for manifests and reproducers; records go
// through writeFileDurable + Journal.Sync instead so the directory
// barrier is paid once per sweep, not once per cell.
func writeDurable(dir, name string, blob []byte) error {
	if err := writeFileDurable(dir, name, blob); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir persists a directory's entries; best-effort on filesystems
// that refuse to sync directories.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// writeFileDurable writes name under dir via temp → fsync → rename. The
// file's bytes are durable before the rename makes them visible; the
// directory entry is the caller's to sync.
func writeFileDurable(dir, name string, blob []byte) error {
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("resilience: temp record: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("resilience: writing record: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("resilience: syncing record: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("resilience: closing record: %w", err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("resilience: record mode: %w", err)
	}
	final := filepath.Join(dir, name)
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("resilience: committing record: %w", err)
	}
	return nil
}
