package resilience

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/scenario"
)

func TestSpecHashDeterministicAndSensitive(t *testing.T) {
	a := scenario.Nodes50(scenario.LDR, 10, 30*time.Second, 42)
	b := scenario.Nodes50(scenario.LDR, 10, 30*time.Second, 42)

	ha, err := SpecHash("metrics", a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := SpecHash("metrics", b)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("identical configs hashed differently: %s vs %s", ha, hb)
	}
	if len(ha) != 64 {
		t.Fatalf("hash %q is not a sha256 hex digest", ha)
	}

	// Any config difference must change the hash.
	c := a
	c.Seed++
	if hc, _ := SpecHash("metrics", c); hc == ha {
		t.Fatal("seed change did not change the spec hash")
	}
	// The scope namespaces payload types: same config, different scope,
	// different key.
	if hs, _ := SpecHash("chaos", a); hs == ha {
		t.Fatal("scope change did not change the spec hash")
	}
}

func TestJournalPutGetReload(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatalf("fresh journal has %d records", j.Len())
	}
	if err := j.Put("aaaa", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Put("bbbb", []byte(`{"x":2}`)); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-put.
	if err := j.Put("aaaa", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Fatalf("Len = %d, want 2", j.Len())
	}
	if p, ok := j.Get("aaaa"); !ok || string(p) != `{"x":1}` {
		t.Fatalf("Get(aaaa) = %q, %v", p, ok)
	}

	// Sync drains the background writer; only then are the record files
	// guaranteed on disk for another process to load.
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}

	// A second Open sees exactly the same records.
	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 2 || j2.Corrupt() != 0 {
		t.Fatalf("reloaded journal: Len=%d Corrupt=%d", j2.Len(), j2.Corrupt())
	}
	if p, ok := j2.Get("bbbb"); !ok || string(p) != `{"x":2}` {
		t.Fatalf("reloaded Get(bbbb) = %q, %v", p, ok)
	}

	// The manifest never masquerades as a cell record.
	if _, err := WriteManifest(dir, Manifest{Cells: 2}); err != nil {
		t.Fatal(err)
	}
	j3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if j3.Len() != 2 {
		t.Fatalf("manifest leaked into records: Len=%d", j3.Len())
	}
}

// TestJournalTornWrite truncates the last record at every byte boundary
// and asserts the journal either still replays the cell (only when the
// record is fully intact) or treats it as not-yet-run — never as corrupt
// data. This is the crash model for a kill -9 landing mid-write, and the
// reason resume cannot corrupt aggregate output: a damaged record makes
// the cell re-run, and a deterministic cell re-produces the identical
// payload.
func TestJournalTornWrite(t *testing.T) {
	// Build a reference journal with three records; the third is the one
	// we tear.
	ref := t.TempDir()
	j, err := Open(ref)
	if err != nil {
		t.Fatal(err)
	}
	payloads := map[string]string{
		"k1": `{"cell":1,"delivery":0.971}`,
		"k2": `{"cell":2,"delivery":0.984}`,
		"k3": `{"cell":3,"delivery":0.993}`,
	}
	for k, p := range payloads {
		if err := j.Put(k, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	last, err := os.ReadFile(filepath.Join(ref, "k3"+recordExt))
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(last); cut++ {
		dir := t.TempDir()
		for _, k := range []string{"k1", "k2"} {
			full, err := os.ReadFile(filepath.Join(ref, k+recordExt))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, k+recordExt), full, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(dir, "k3"+recordExt), last[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		resumed, err := Open(dir)
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		for _, k := range []string{"k1", "k2"} {
			p, ok := resumed.Get(k)
			if !ok || string(p) != payloads[k] {
				t.Fatalf("cut=%d: intact record %s lost: %q, %v", cut, k, p, ok)
			}
		}
		p, ok := resumed.Get("k3")
		if ok {
			// Served records must carry exactly the committed payload —
			// the only truncation that can survive the checksum is the
			// cosmetic trailing newline.
			if string(p) != payloads["k3"] {
				t.Fatalf("cut=%d: torn record served as %q", cut, p)
			}
		} else {
			// Resume path: the cell re-runs and re-puts the same payload;
			// the record must end byte-identical to the uninterrupted one.
			if err := resumed.Put("k3", []byte(payloads["k3"])); err != nil {
				t.Fatalf("cut=%d: re-put after torn write: %v", cut, err)
			}
			if err := resumed.Sync(); err != nil {
				t.Fatalf("cut=%d: sync after re-put: %v", cut, err)
			}
			final, err := os.ReadFile(filepath.Join(dir, "k3"+recordExt))
			if err != nil {
				t.Fatalf("cut=%d: %v", cut, err)
			}
			if string(final) != string(last) {
				t.Fatalf("cut=%d: repaired record differs from uninterrupted record", cut)
			}
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := Manifest{
		Scope: "chaos",
		Cells: 8,
		Failures: []FailureRecord{
			{Index: 3, Key: "abc", Kind: "panic", Error: "cell 3 panicked: boom", Stack: "goroutine 1 ...", Repro: "repro-abc.json"},
			{Index: 5, Kind: "timeout", Error: "cell 5 exceeded 2s watchdog deadline", Retries: 2},
		},
	}
	path, err := WriteManifest(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != ManifestName {
		t.Fatalf("manifest written to %q", path)
	}
	got, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scope != m.Scope || got.Cells != m.Cells || len(got.Failures) != 2 ||
		got.Failures[0] != m.Failures[0] || got.Failures[1] != m.Failures[1] {
		t.Fatalf("manifest round-trip mismatch: %+v", got)
	}
}

func TestResumeCommand(t *testing.T) {
	got := ResumeCommand([]string{"ldrbench", "-exp", "table1", "-journal", "/tmp/j"})
	if want := "ldrbench -exp table1 -journal /tmp/j -resume"; got != want {
		t.Fatalf("ResumeCommand = %q, want %q", got, want)
	}
	// Already-resuming invocations are not double-flagged.
	got = ResumeCommand([]string{"ldrbench", "-journal", "/tmp/j", "-resume"})
	if strings.Count(got, "-resume") != 1 {
		t.Fatalf("ResumeCommand duplicated -resume: %q", got)
	}
	// Arguments with spaces stay shell-safe.
	got = ResumeCommand([]string{"ldrbench", "-out", "my dir/out.txt"})
	if want := "ldrbench -out 'my dir/out.txt' -resume"; got != want {
		t.Fatalf("ResumeCommand = %q, want %q", got, want)
	}
}

func TestCellDeadlineScaling(t *testing.T) {
	if d := CellDeadline(0, 100, 30); d != 0 {
		t.Fatalf("disabled watchdog scaled to %v", d)
	}
	base := 10 * time.Second
	small := CellDeadline(base, 20, 5)  // scale 1
	paper := CellDeadline(base, 50, 10) // scale 1+2+1 = 4
	big := CellDeadline(base, 100, 30)  // scale 1+4+3 = 8
	if small != base || paper != 4*base || big != 8*base {
		t.Fatalf("deadlines = %v, %v, %v", small, paper, big)
	}
}

func TestTransientClassification(t *testing.T) {
	if !Transient(&CellTimeout{Deadline: time.Second}) {
		t.Fatal("interrupted timeout should be transient")
	}
	if Transient(&CellTimeout{Deadline: time.Second, Abandoned: true}) {
		t.Fatal("abandoned timeout must not be retried")
	}
	if Transient(&CellPanic{Value: "boom"}) {
		t.Fatal("panics are deterministic; never transient")
	}
	if Kind(&CellPanic{}) != "panic" || Kind(&CellTimeout{}) != "timeout" || Kind(os.ErrNotExist) != "error" {
		t.Fatal("Kind misclassified")
	}
}
