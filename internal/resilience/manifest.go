package resilience

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestName is the failure manifest's filename inside a journal
// directory. It deliberately does not use recordExt, so Open never
// confuses it with a cell record.
const ManifestName = "manifest.json"

// FailureRecord is one failed cell in a sweep's failure manifest.
type FailureRecord struct {
	Index   int    `json:"index"`
	Key     string `json:"key,omitempty"`   // spec hash, when journaled
	Kind    string `json:"kind"`            // "panic", "timeout", or "error"
	Error   string `json:"error"`           // the failure's Error() text
	Stack   string `json:"stack,omitempty"` // captured stack for panics
	Repro   string `json:"repro,omitempty"` // auto-emitted reproducer path
	Retries int    `json:"retries,omitempty"`
}

// Manifest summarizes a degraded sweep: which cells were quarantined and
// why, written next to the journal so a finished -keep-going run leaves
// a machine-readable account of what its partial results omit.
type Manifest struct {
	Scope    string          `json:"scope,omitempty"`
	Cells    int             `json:"cells"` // total cells in the sweep
	Failures []FailureRecord `json:"failures"`
}

// Kind classifies an error for a FailureRecord.
func Kind(err error) string {
	var p *CellPanic
	if errors.As(err, &p) {
		return "panic"
	}
	var t *CellTimeout
	if errors.As(err, &t) {
		return "timeout"
	}
	return "error"
}

// WriteManifest durably writes the manifest into dir (same temp → fsync
// → rename protocol as cell records) and returns its path.
func WriteManifest(dir string, m Manifest) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("resilience: creating manifest dir: %w", err)
	}
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", fmt.Errorf("resilience: encoding manifest: %w", err)
	}
	if err := writeDurable(dir, ManifestName, append(blob, '\n')); err != nil {
		return "", err
	}
	return filepath.Join(dir, ManifestName), nil
}

// LoadManifest reads a previously written manifest.
func LoadManifest(dir string) (Manifest, error) {
	blob, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return Manifest{}, fmt.Errorf("resilience: decoding manifest: %w", err)
	}
	return m, nil
}
