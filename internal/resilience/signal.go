package resilience

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
)

// HandleSignals installs SIGINT/SIGTERM handling for a journaled sweep
// command. On the first signal it syncs the journal directory (making
// every renamed record durable), reports the journal state, prints the
// exact command that resumes the sweep, and exits 130. Without a journal
// it still explains how to make the run resumable. Call once, before the
// sweep starts.
func HandleSignals(j *Journal, out io.Writer) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		prog := progName(os.Args[0])
		if j != nil {
			_ = j.Sync()
			fmt.Fprintf(out, "\n%s: %v; journal %s holds %d completed cell(s), all durable\n",
				prog, sig, j.Dir(), j.Len())
			fmt.Fprintf(out, "%s: resume with: %s\n", prog, ResumeCommand(os.Args))
		} else {
			fmt.Fprintf(out, "\n%s: %v; no journal — progress is lost (rerun with -journal DIR to make sweeps resumable)\n",
				prog, sig)
		}
		os.Exit(130)
	}()
}

// progName trims the directory from a program path for log prefixes.
func progName(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// ResumeCommand renders the exact command line that resumes the current
// invocation: the original arguments with -resume appended if absent.
// Arguments containing whitespace are quoted so the line can be pasted
// into a shell verbatim.
func ResumeCommand(args []string) string {
	hasResume := false
	quoted := make([]string, 0, len(args)+1)
	for i, a := range args {
		if i > 0 && (a == "-resume" || a == "--resume" ||
			strings.HasPrefix(a, "-resume=") || strings.HasPrefix(a, "--resume=")) {
			hasResume = true
		}
		if strings.ContainsAny(a, " \t'\"") {
			a = "'" + strings.ReplaceAll(a, "'", `'\''`) + "'"
		}
		quoted = append(quoted, a)
	}
	if !hasResume {
		quoted = append(quoted, "-resume")
	}
	return strings.Join(quoted, " ")
}
