package sweep_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/resilience"
	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/sweep"
)

// benchCells is a reduced Table 1 cell set: 2 protocols × 2 pause times ×
// 2 seeds of a 25-node, 8-flow scenario. Big enough that each cell is
// real simulation work, small enough for go test -bench.
func benchCells() []scenario.Config {
	var cfgs []scenario.Config
	for _, proto := range []scenario.ProtocolName{scenario.LDR, scenario.AODV} {
		for _, pause := range []time.Duration{0, 30 * time.Second} {
			for seed := int64(1); seed <= 2; seed++ {
				cfg := scenario.Nodes50(proto, 8, pause, seed)
				cfg.Nodes = 25
				cfg.SimTime = 30 * time.Second
				cfgs = append(cfgs, cfg)
			}
		}
	}
	return cfgs
}

func benchSweep(b *testing.B, workers int) {
	cfgs := benchCells()
	b.ReportAllocs()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := sweep.Run(cfgs, sweep.Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			events += r.Events
		}
	}
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(b.N*len(cfgs))/secs, "cells/sec")
		b.ReportMetric(float64(events)/secs, "events/sec")
	}
}

// BenchmarkSweepSerial is the single-core baseline for the reduced
// Table 1 cell set.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepWorkers4 is the same cell set fanned across 4 workers;
// on a ≥4-core box ns/op should be ≥4× lower than BenchmarkSweepSerial
// (cells are share-nothing, so scaling is limited only by cores and the
// longest single cell).
func BenchmarkSweepWorkers4(b *testing.B) { benchSweep(b, 4) }

// BenchmarkSweepMaxProcs uses the default worker count (GOMAXPROCS).
func BenchmarkSweepMaxProcs(b *testing.B) { benchSweep(b, 0) }

// BenchmarkSweepJournaled is BenchmarkSweepWorkers4 with journaling on:
// the delta against the plain run is the full resilience overhead (spec
// hashing, JSON encoding, fsync'd record writes). Each iteration gets a
// fresh journal directory — reusing one would measure journal loads, not
// journaled runs.
func BenchmarkSweepJournaled(b *testing.B) {
	cfgs := benchCells()
	b.ReportAllocs()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		j, err := resilience.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		results, err := sweep.Run(cfgs, sweep.Options{
			Workers: 4,
			Exec:    sweep.ExecOptions{Journal: j},
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			events += r.Events
		}
	}
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(b.N*len(cfgs))/secs, "cells/sec")
		b.ReportMetric(float64(events)/secs, "events/sec")
	}
}
