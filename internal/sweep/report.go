package sweep

import (
	"errors"
	"fmt"
	"io"

	"github.com/manetlab/ldr/internal/resilience"
)

// ReportFailures is the commands' common exit path for a degraded
// keep-going sweep: when err wraps a Failures set it summarizes the
// quarantined cells on w and, given a journal, durably writes the
// failure manifest next to the records. Any other error (including nil)
// passes through untouched, so callers can end with
//
//	return sweep.ReportFailures(os.Stderr, "ldrchaos", j, "chaos", prog.Total(), err)
//
// and keep fail-fast behavior identical.
func ReportFailures(w io.Writer, prog string, j *resilience.Journal, scope string, cells int, err error) error {
	var fs Failures
	if err == nil || !errors.As(err, &fs) {
		return err
	}
	fmt.Fprintf(w, "%s: %d cell(s) quarantined; the rendered output covers the cells that completed\n", prog, len(fs))
	const maxListed = 8
	for i, ce := range fs {
		if i == maxListed {
			fmt.Fprintf(w, "%s:   … and %d more (see the manifest)\n", prog, len(fs)-maxListed)
			break
		}
		fmt.Fprintf(w, "%s:   cell %d [%s]: %v\n", prog, ce.Index, resilience.Kind(ce.Err), ce.Err)
		if ce.Repro != "" {
			fmt.Fprintf(w, "%s:   cell %d reproducer: %s\n", prog, ce.Index, ce.Repro)
		}
	}
	if j != nil {
		if path, werr := resilience.WriteManifest(j.Dir(), fs.Manifest(scope, cells)); werr != nil {
			fmt.Fprintf(w, "%s: writing failure manifest: %v\n", prog, werr)
		} else {
			fmt.Fprintf(w, "%s: failure manifest: %s\n", prog, path)
		}
	}
	return err
}
