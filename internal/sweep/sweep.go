// Package sweep is a deterministic parallel runner for independent
// simulation cells.
//
// The paper's evaluation is a sweep over hundreds of independent
// (protocol × node count × flow count × pause time × seed) scenario
// cells. Each cell owns its entire world — simulator, medium, nodes,
// RNG streams — so cells are share-nothing and embarrassingly parallel.
// sweep fans them out across a worker pool of goroutines while keeping
// every observable output identical to a serial run:
//
//   - Results are collected positionally, indexed by the cell's place in
//     the input, so aggregation and rendering order never depend on
//     completion order.
//   - On failure the runner stops claiming new cells, waits for in-flight
//     cells, and returns the error of the lowest-indexed failing cell —
//     the same error a serial run would have returned.
//
// Workers ≤ 1 degenerates to a plain serial loop with no goroutines.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/manetlab/ldr/internal/scenario"
)

// Options control a sweep.
type Options struct {
	// Workers is the number of concurrent cells. Zero or negative selects
	// GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is updated as cells start and finish. It
	// may be read concurrently from other goroutines (e.g. a status
	// ticker).
	Progress *Progress
}

// workers resolves the worker count for n cells.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Progress exposes live counters for a running sweep. All methods are
// safe for concurrent use.
type Progress struct {
	total   atomic.Int64
	started atomic.Int64
	done    atomic.Int64
	failed  atomic.Int64
}

// Total returns the number of cells in the sweep.
func (p *Progress) Total() int { return int(p.total.Load()) }

// Started returns the number of cells claimed by workers so far.
func (p *Progress) Started() int { return int(p.started.Load()) }

// Done returns the number of cells finished (successfully or not).
func (p *Progress) Done() int { return int(p.done.Load()) }

// Failed returns the number of cells that returned an error.
func (p *Progress) Failed() int { return int(p.failed.Load()) }

// Each runs fn(i) for every i in [0, n) across a pool of workers and
// returns the error of the lowest-indexed failing call, or nil. After the
// first failure no new indices are claimed; indices are claimed in
// ascending order, so the returned error is deterministic for
// deterministic fn. fn must not share mutable state across indices
// except through distinct, per-index slots (e.g. out[i] = ...).
func Each(n int, opt Options, fn func(i int) error) error {
	if opt.Progress != nil {
		opt.Progress.total.Store(int64(n))
	}
	if n == 0 {
		return nil
	}
	workers := opt.workers(n)
	if workers == 1 {
		return eachSerial(n, opt, fn)
	}

	var (
		next atomic.Int64 // next unclaimed index
		stop atomic.Bool  // set on first failure

		mu       sync.Mutex
		firstErr error
		errIndex int = -1
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if opt.Progress != nil {
					opt.Progress.started.Add(1)
				}
				err := fn(i)
				if opt.Progress != nil {
					if err != nil {
						opt.Progress.failed.Add(1)
					}
					opt.Progress.done.Add(1)
				}
				if err != nil {
					stop.Store(true)
					mu.Lock()
					if errIndex == -1 || i < errIndex {
						errIndex, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

func eachSerial(n int, opt Options, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if opt.Progress != nil {
			opt.Progress.started.Add(1)
		}
		err := fn(i)
		if opt.Progress != nil {
			if err != nil {
				opt.Progress.failed.Add(1)
			}
			opt.Progress.done.Add(1)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Run executes every scenario configuration and returns the results in
// input order, regardless of completion order. On error the slice is nil
// and the error is that of the lowest-indexed failing cell.
func Run(cfgs []scenario.Config, opt Options) ([]scenario.Result, error) {
	out := make([]scenario.Result, len(cfgs))
	err := Each(len(cfgs), opt, func(i int) error {
		res, err := scenario.Run(cfgs[i])
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
