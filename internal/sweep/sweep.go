// Package sweep is a deterministic parallel runner for independent
// simulation cells.
//
// The paper's evaluation is a sweep over hundreds of independent
// (protocol × node count × flow count × pause time × seed) scenario
// cells. Each cell owns its entire world — simulator, medium, nodes,
// RNG streams — so cells are share-nothing and embarrassingly parallel.
// sweep fans them out across a worker pool of goroutines while keeping
// every observable output identical to a serial run:
//
//   - Results are collected positionally, indexed by the cell's place in
//     the input, so aggregation and rendering order never depend on
//     completion order.
//   - On failure the runner stops claiming new cells, waits for in-flight
//     cells, and returns the error of the lowest-indexed failing cell —
//     the same error a serial run would have returned. With
//     ExecOptions.KeepGoing the sweep instead finishes every cell and
//     returns the full failure set as a Failures error.
//
// Workers ≤ 1 degenerates to a plain serial loop with no goroutines.
//
// RunCells layers crash-safety on top (see internal/resilience): a
// content-addressed journal that lets a killed sweep resume where it
// stopped, per-cell watchdog deadlines, panic quarantine, and bounded
// retry of transient failures.
package sweep

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/manetlab/ldr/internal/resilience"
	"github.com/manetlab/ldr/internal/scenario"
)

// Options control a sweep.
type Options struct {
	// Workers is the number of concurrent cells. Zero or negative selects
	// GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is updated as cells start and finish. It
	// may be read concurrently from other goroutines (e.g. a status
	// ticker).
	Progress *Progress
	// Exec holds the execution-resilience options: journaling, per-cell
	// watchdogs, quarantine, and retry. The zero value preserves the
	// original fail-fast, unjournaled behavior.
	Exec ExecOptions
}

// ExecOptions make a sweep crash-safe and degradation-tolerant. All
// fields are optional; the zero value is a plain fail-fast sweep.
type ExecOptions struct {
	// Journal, when non-nil, makes RunCells resumable: each cell's config
	// is content-addressed (resilience.SpecHash) and completed payloads
	// are durably recorded, so cells already on record are loaded instead
	// of re-run, and identical cells within one sweep share a single
	// execution.
	Journal *resilience.Journal
	// Scope namespaces the journal payload type (e.g. "metrics",
	// "chaos"); sweeps storing different payload shapes in one journal
	// must use distinct scopes.
	Scope string

	// CellTimeout, when positive, arms a wall-clock watchdog per cell,
	// scaled by cell size (resilience.CellDeadline). An expired cell is
	// interrupted at its next event boundary and reported as a typed
	// *resilience.CellTimeout.
	CellTimeout time.Duration
	// Grace is how long an interrupted cell may take to reach an event
	// boundary before its goroutine is abandoned (default 5s).
	Grace time.Duration

	// KeepGoing finishes the sweep despite cell failures and returns the
	// whole failure set as a Failures error alongside the partial
	// results; false preserves the first-error-abort semantics.
	KeepGoing bool

	// Retries is how many times a transient failure (an honored watchdog
	// timeout) is re-run, deterministically from the same seed, before
	// being reported. RetryBackoff is the first wait between attempts,
	// doubling each retry (default 250ms).
	Retries      int
	RetryBackoff time.Duration

	// OnFailure, when non-nil, is called once per definitively failed
	// cell (after retries), concurrently from worker goroutines. The
	// quarantine emitter uses it to write reproducer specs; hooks may set
	// the CellError's Repro field to record what they wrote.
	OnFailure func(*CellError)

	// Control, when non-nil, is a sweep-wide stop switch: once
	// interrupted, no new cells are claimed, in-flight cells bound to it
	// (sweep.Run binds every cell) stop at their next event boundary, and
	// their partial results are never journaled. ldrsim's SIGINT handler
	// uses it to turn ^C into partial metrics instead of a dead process.
	Control *scenario.Control
}

// workers resolves the worker count for n cells.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// workerBeat is one worker's liveness record.
type workerBeat struct {
	at   atomic.Int64 // unix nanos of the last heartbeat
	cell atomic.Int64 // 1+cell index while running a cell, 0 when idle
}

// Progress exposes live counters for a running sweep. All methods are
// safe for concurrent use. A Progress may be reused across sequential
// sweeps; each sweep resets the counters and the per-worker heartbeats.
type Progress struct {
	total   atomic.Int64
	started atomic.Int64
	done    atomic.Int64
	failed  atomic.Int64
	loaded  atomic.Int64
	retried atomic.Int64

	beats atomic.Pointer[[]workerBeat]
}

// Total returns the number of cells in the sweep.
func (p *Progress) Total() int { return int(p.total.Load()) }

// Started returns the number of cells claimed by workers so far.
func (p *Progress) Started() int { return int(p.started.Load()) }

// Done returns the number of cells finished (successfully or not).
func (p *Progress) Done() int { return int(p.done.Load()) }

// Failed returns the number of cells that returned an error.
func (p *Progress) Failed() int { return int(p.failed.Load()) }

// Loaded returns the number of cells satisfied from the journal (or a
// deduped twin cell) instead of executed.
func (p *Progress) Loaded() int { return int(p.loaded.Load()) }

// Retried returns the number of transient-failure re-runs so far.
func (p *Progress) Retried() int { return int(p.retried.Load()) }

// Workers returns the size of the worker pool of the current (or most
// recent) sweep, zero before any sweep ran.
func (p *Progress) Workers() int {
	if b := p.beats.Load(); b != nil {
		return len(*b)
	}
	return 0
}

// LastBeat returns the wall-clock time of worker w's last heartbeat
// (claiming or finishing a cell). The zero time means no such worker.
func (p *Progress) LastBeat(w int) time.Time {
	b := p.beats.Load()
	if b == nil || w < 0 || w >= len(*b) {
		return time.Time{}
	}
	return time.Unix(0, (*b)[w].at.Load())
}

// WorkerCell returns the cell index worker w is currently running, and
// whether it is running one at all.
func (p *Progress) WorkerCell(w int) (int, bool) {
	b := p.beats.Load()
	if b == nil || w < 0 || w >= len(*b) {
		return 0, false
	}
	c := (*b)[w].cell.Load()
	if c == 0 {
		return 0, false
	}
	return int(c - 1), true
}

// Stalled returns the ids of workers that are mid-cell and have not
// heartbeat within d — the liveness signal that separates a wedged
// worker from a merely slow sweep. Workers idle between cells are never
// stalled.
func (p *Progress) Stalled(d time.Duration) []int {
	b := p.beats.Load()
	if b == nil {
		return nil
	}
	cutoff := time.Now().Add(-d).UnixNano()
	var out []int
	for w := range *b {
		if (*b)[w].cell.Load() != 0 && (*b)[w].at.Load() < cutoff {
			out = append(out, w)
		}
	}
	return out
}

// reset prepares the counters and heartbeat slots for a new sweep.
func (p *Progress) reset(total, workers int) {
	p.total.Store(int64(total))
	p.started.Store(0)
	p.done.Store(0)
	p.failed.Store(0)
	p.loaded.Store(0)
	p.retried.Store(0)
	b := make([]workerBeat, workers)
	now := time.Now().UnixNano()
	for i := range b {
		b[i].at.Store(now)
	}
	p.beats.Store(&b)
}

// beat stamps worker w's heartbeat; cell is the index being started, or
// -1 when the worker goes idle.
func (p *Progress) beat(w, cell int) {
	b := p.beats.Load()
	if b == nil || w < 0 || w >= len(*b) {
		return
	}
	(*b)[w].at.Store(time.Now().UnixNano())
	(*b)[w].cell.Store(int64(cell) + 1)
}

// CellError is one failed sweep cell: the index, the underlying error,
// and — when the sweep was journaled or quarantined — the spec hash,
// config, reproducer path, and retry count.
type CellError struct {
	Index   int
	Key     string           // spec hash, when journaled
	Spec    *scenario.Config // the cell's config, when run via RunCells
	Repro   string           // reproducer path, when a quarantine hook wrote one
	Retries int              // transient re-runs consumed before giving up
	Err     error
}

// Error reports the cell's failure; typed panic/timeout errors already
// name their cell, so they pass through unwrapped.
func (e *CellError) Error() string {
	switch e.Err.(type) {
	case *resilience.CellPanic, *resilience.CellTimeout:
		return e.Err.Error()
	}
	return fmt.Sprintf("cell %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// Failures is the error a keep-going sweep returns when cells failed:
// every failure, sorted by cell index. The sweep's other cells completed
// and their results are valid.
type Failures []*CellError

// Error summarizes the failure set.
func (fs Failures) Error() string {
	if len(fs) == 0 {
		return "no sweep failures"
	}
	return fmt.Sprintf("%d sweep cell(s) failed; first: %v", len(fs), fs[0])
}

// Unwrap exposes every cell error to errors.Is/As.
func (fs Failures) Unwrap() []error {
	out := make([]error, len(fs))
	for i, ce := range fs {
		out[i] = ce
	}
	return out
}

// Manifest converts the failure set into a persistable failure manifest
// for the sweep's journal directory.
func (fs Failures) Manifest(scope string, cells int) resilience.Manifest {
	m := resilience.Manifest{Scope: scope, Cells: cells}
	for _, ce := range fs {
		rec := resilience.FailureRecord{
			Index:   ce.Index,
			Key:     ce.Key,
			Kind:    resilience.Kind(ce.Err),
			Error:   ce.Error(),
			Repro:   ce.Repro,
			Retries: ce.Retries,
		}
		if p, ok := asPanic(ce.Err); ok {
			rec.Stack = p.Stack
		}
		m.Failures = append(m.Failures, rec)
	}
	return m
}

// Each runs fn(i) for every i in [0, n) across a pool of workers and
// returns the error of the lowest-indexed failing call, or nil. After
// the first failure no new indices are claimed; indices are claimed in
// ascending order, so the returned error is deterministic for
// deterministic fn. With Exec.KeepGoing every index runs regardless of
// failures and the full set is returned as a Failures error. fn must not
// share mutable state across indices except through distinct, per-index
// slots (e.g. out[i] = ...). A panicking fn is converted into a
// *resilience.CellPanic error rather than crashing the pool.
func Each(n int, opt Options, fn func(i int) error) error {
	return eachWorker(n, opt, func(i, _ int) error { return fn(i) })
}

// eachWorker is Each with the worker id exposed to fn, so RunCells can
// attribute heartbeats and watchdog reports to the right worker.
func eachWorker(n int, opt Options, fn func(i, w int) error) error {
	workers := opt.workers(n)
	if opt.Progress != nil {
		opt.Progress.reset(n, workers)
	}
	if n == 0 {
		return nil
	}
	if workers == 1 {
		return eachSerial(n, opt, fn)
	}

	var (
		next atomic.Int64 // next unclaimed index
		stop atomic.Bool  // set on first failure (fail-fast mode only)

		mu       sync.Mutex
		firstErr error
		errIndex int = -1
		failures Failures
	)
	keepGoing := opt.Exec.KeepGoing
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if stop.Load() || opt.Exec.Control.Interrupted() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if opt.Progress != nil {
					opt.Progress.started.Add(1)
				}
				err := runIndex(opt, fn, i, w)
				if err != nil {
					mu.Lock()
					if keepGoing {
						failures = append(failures, asCellError(i, err))
					} else {
						stop.Store(true)
						if errIndex == -1 || i < errIndex {
							errIndex, firstErr = i, err
						}
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if keepGoing && len(failures) > 0 {
		sort.Slice(failures, func(a, b int) bool { return failures[a].Index < failures[b].Index })
		return failures
	}
	return firstErr
}

func eachSerial(n int, opt Options, fn func(i, w int) error) error {
	var failures Failures
	for i := 0; i < n; i++ {
		if opt.Exec.Control.Interrupted() {
			break
		}
		if opt.Progress != nil {
			opt.Progress.started.Add(1)
		}
		err := runIndex(opt, fn, i, 0)
		if err != nil {
			if !opt.Exec.KeepGoing {
				return err
			}
			failures = append(failures, asCellError(i, err))
		}
	}
	if len(failures) > 0 {
		return failures
	}
	return nil
}

// runIndex runs one cell with heartbeats, the panic net, and progress
// accounting.
func runIndex(opt Options, fn func(i, w int) error, i, w int) error {
	if opt.Progress != nil {
		opt.Progress.beat(w, i)
	}
	err := safeIndex(fn, i, w)
	if opt.Progress != nil {
		if err != nil {
			opt.Progress.failed.Add(1)
		}
		opt.Progress.done.Add(1)
		opt.Progress.beat(w, -1)
	}
	return err
}

// safeIndex converts a panicking cell into a typed error so one poisoned
// cell cannot crash the whole pool.
func safeIndex(fn func(i, w int) error, i, w int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &resilience.CellPanic{Index: i, Value: r, Stack: string(debug.Stack())}
		}
	}()
	return fn(i, w)
}

// asCellError wraps err for the failure set, preserving an existing
// *CellError (RunCells builds enriched ones).
func asCellError(i int, err error) *CellError {
	if ce, ok := err.(*CellError); ok {
		return ce
	}
	return &CellError{Index: i, Err: err}
}
