package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"github.com/manetlab/ldr/internal/resilience"
	"github.com/manetlab/ldr/internal/scenario"
)

// cellShare coordinates spec-hash dedup within one sweep: the first
// index with a given hash (the leader) executes; later indices wait for
// done and decode the leader's encoded payload into their own slot.
// Indices are claimed in ascending order, so a follower can only be
// in-flight if its leader already is, and done always closes — even
// when the leader fails or times out.
type cellShare struct {
	leader int
	done   chan struct{}
	blob   []byte
	err    error
}

// Watchdog commit states: the cell goroutine CASes running→committed
// before publishing its result; the watchdog CASes running→abandoned
// when the grace period expires. Whoever wins the CAS owns the outcome,
// so an abandoned (leaked) goroutine can never publish late and race the
// result slots.
const (
	cellRunning int32 = iota
	cellCommitted
	cellAbandoned
)

// RunCells executes run(i, ctl) for every config across the worker pool
// and collects the results positionally, layering on the resilience
// options: journal lookup/commit and in-sweep dedup (Exec.Journal),
// per-cell watchdog deadlines (Exec.CellTimeout), panic quarantine,
// and bounded retry of transient failures (Exec.Retries).
//
// run receives a per-cell Control; implementations that simulate must
// bind it (scenario.RunWithControl does) so the watchdog can interrupt
// a hung cell at an event boundary. Payloads cross the journal as JSON,
// so T must round-trip through encoding/json exactly.
//
// On a fail-fast sweep the results are nil and the error is the lowest
// failing cell's. On a keep-going sweep the partial results are returned
// alongside a Failures error; failed cells hold T's zero value.
func RunCells[T any](cfgs []scenario.Config, opt Options, run func(i int, ctl *scenario.Control) (T, error)) ([]T, error) {
	n := len(cfgs)
	out := make([]T, n)
	exec := opt.Exec
	journaled := exec.Journal != nil

	var keys []string
	var shares map[string]*cellShare
	if journaled {
		keys = make([]string, n)
		shares = make(map[string]*cellShare, n)
		for i := range cfgs {
			k, err := resilience.SpecHash(exec.Scope, cfgs[i])
			if err != nil {
				return nil, err
			}
			keys[i] = k
			if _, ok := shares[k]; !ok {
				shares[k] = &cellShare{leader: i, done: make(chan struct{})}
			}
		}
	}

	err := eachWorker(n, opt, func(i, w int) error {
		var key string
		var sh *cellShare
		if journaled {
			key = keys[i]
			if blob, ok := exec.Journal.Get(key); ok {
				v, derr := decodeCell[T](blob)
				if derr != nil {
					return cellFailure(opt, i, key, &cfgs[i], 0,
						fmt.Errorf("journal payload does not decode (wrong -journal directory or scope?): %w", derr))
				}
				out[i] = v
				if opt.Progress != nil {
					opt.Progress.loaded.Add(1)
				}
				return nil
			}
			sh = shares[key]
			if sh.leader != i {
				<-sh.done
				if sh.err != nil {
					return cellFailure(opt, i, key, &cfgs[i], 0,
						fmt.Errorf("shares spec with failed cell %d: %w", sh.leader, sh.err))
				}
				v, derr := decodeCell[T](sh.blob)
				if derr != nil {
					return cellFailure(opt, i, key, &cfgs[i], 0, derr)
				}
				out[i] = v
				if opt.Progress != nil {
					opt.Progress.loaded.Add(1)
				}
				return nil
			}
		}

		v, retries, err := runRetried(cfgs, opt, run, i, w)
		var blob []byte
		if err == nil && journaled && !exec.Control.Interrupted() {
			// Encode-then-fsync before publishing to followers or the
			// result slot: after Put returns, a kill -9 cannot lose the
			// cell. Interrupted sweeps skip the commit — a partial result
			// must never masquerade as the cell's true payload.
			if blob, err = json.Marshal(v); err == nil {
				err = exec.Journal.Put(key, blob)
			}
			if err != nil {
				err = fmt.Errorf("journaling cell %d: %w", i, err)
			}
		}
		if journaled {
			sh.blob, sh.err = blob, err
			close(sh.done)
		}
		if err != nil {
			return cellFailure(opt, i, key, &cfgs[i], retries, err)
		}
		out[i] = v
		return nil
	})

	if journaled {
		// One directory barrier for the whole sweep: every record renamed
		// above becomes durable here (Put fsyncs the record bytes; Sync
		// persists the directory entries).
		if serr := exec.Journal.Sync(); serr != nil && err == nil {
			err = fmt.Errorf("syncing journal: %w", serr)
		}
	}
	if err != nil {
		if fs, ok := err.(Failures); ok {
			return out, fs
		}
		return nil, err
	}
	return out, nil
}

// runRetried runs one cell through the watchdog, re-running transient
// failures (honored watchdog timeouts) with doubling backoff, up to
// Exec.Retries times. Retries re-run from the same seed, so a retry that
// succeeds is byte-identical to the run that would have finished.
func runRetried[T any](cfgs []scenario.Config, opt Options, run func(int, *scenario.Control) (T, error), i, w int) (T, int, error) {
	exec := opt.Exec
	attempts := 0
	for {
		v, err := runWatched(cfgs, opt, run, i, w)
		if err == nil || attempts >= exec.Retries || !resilience.Transient(err) {
			return v, attempts, err
		}
		attempts++
		if opt.Progress != nil {
			opt.Progress.retried.Add(1)
		}
		backoff := exec.RetryBackoff
		if backoff <= 0 {
			backoff = 250 * time.Millisecond
		}
		if shift := attempts - 1; shift > 0 && shift < 16 {
			backoff <<= shift
		}
		time.Sleep(backoff)
	}
}

// runWatched runs one cell under its scaled watchdog deadline. On
// expiry the cell is interrupted cooperatively (its simulator stops at
// the next event boundary); a cell that ignores the interrupt past the
// grace period is abandoned — its goroutine leaks, but the commit CAS
// guarantees it can never publish a result afterwards.
func runWatched[T any](cfgs []scenario.Config, opt Options, run func(int, *scenario.Control) (T, error), i, w int) (T, error) {
	exec := opt.Exec
	deadline := resilience.CellDeadline(exec.CellTimeout, cfgs[i].Nodes, cfgs[i].Flows)
	ctl := scenario.NewControl()
	if exec.Control.Interrupted() {
		ctl.Interrupt()
	}
	if deadline <= 0 {
		return runCellSafe(run, i, ctl)
	}

	type cellResult struct {
		v   T
		err error
	}
	ch := make(chan cellResult, 1)
	var state atomic.Int32
	go func() {
		v, err := runCellSafe(run, i, ctl)
		if state.CompareAndSwap(cellRunning, cellCommitted) {
			ch <- cellResult{v, err}
		}
		// Abandoned: the watchdog won the CAS; nothing may be published.
	}()

	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-timer.C:
	}

	beatAge := deadline
	if opt.Progress != nil {
		if lb := opt.Progress.LastBeat(w); !lb.IsZero() {
			beatAge = time.Since(lb)
		}
	}
	ctl.Interrupt()
	grace := exec.Grace
	if grace <= 0 {
		grace = 5 * time.Second
	}
	to := &resilience.CellTimeout{Index: i, Deadline: deadline, LastBeat: beatAge}
	gt := time.NewTimer(grace)
	defer gt.Stop()
	select {
	case <-ch:
		// The cell honored the interrupt; its partial result is discarded
		// (a timed-out cell has no trustworthy payload).
	case <-gt.C:
		if state.CompareAndSwap(cellRunning, cellAbandoned) {
			to.Abandoned = true
		} else {
			<-ch // committed at the wire; drain and discard
		}
	}
	var zero T
	return zero, to
}

// runCellSafe invokes run with panic quarantine.
func runCellSafe[T any](run func(int, *scenario.Control) (T, error), i int, ctl *scenario.Control) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero T
			v = zero
			err = &resilience.CellPanic{Index: i, Value: r, Stack: string(debug.Stack())}
		}
	}()
	return run(i, ctl)
}

// cellFailure enriches a cell's error with its identity, fires the
// failure hook (quarantine emitters), and wraps it for the failure set.
func cellFailure(opt Options, i int, key string, cfg *scenario.Config, retries int, err error) error {
	if p, ok := asPanic(err); ok {
		p.Index, p.Key, p.Spec = i, key, cfg
	}
	var t *resilience.CellTimeout
	if errors.As(err, &t) {
		t.Index, t.Key, t.Spec = i, key, cfg
	}
	ce := &CellError{Index: i, Key: key, Spec: cfg, Retries: retries, Err: err}
	if opt.Exec.OnFailure != nil {
		opt.Exec.OnFailure(ce)
		if ce.Repro != "" {
			if p, ok := asPanic(err); ok {
				p.Repro = ce.Repro
			}
		}
	}
	return ce
}

// asPanic unwraps err to a *resilience.CellPanic, if it is one.
func asPanic(err error) (*resilience.CellPanic, bool) {
	var p *resilience.CellPanic
	if errors.As(err, &p) {
		return p, true
	}
	return nil, false
}

// decodeCell decodes a journaled payload into a fresh T, so deduped
// cells never share mutable structure with their leader.
func decodeCell[T any](blob []byte) (T, error) {
	var v T
	if err := json.Unmarshal(blob, &v); err != nil {
		return v, err
	}
	return v, nil
}

// Run executes every scenario configuration and returns the results in
// input order, regardless of completion order. On error the slice is
// nil and the error is that of the lowest-indexed failing cell — unless
// Exec.KeepGoing is set, in which case the partial results are returned
// with a Failures error and failed cells hold zero Results.
//
// With Exec.Journal set, completed cells are durably recorded under the
// "result" scope (or Exec.Scope if non-empty) and a killed sweep resumes
// to byte-identical aggregate output; cells loaded from the journal get
// their Config reattached from the input slice, so pointer-typed config
// fields (fault plans, LDR overrides) keep their original identity.
func Run(cfgs []scenario.Config, opt Options) ([]scenario.Result, error) {
	if opt.Exec.Scope == "" {
		opt.Exec.Scope = "result"
	}
	out, err := RunCells(cfgs, opt, func(i int, ctl *scenario.Control) (scenario.Result, error) {
		return scenario.RunWithControl(cfgs[i], ctl, opt.Exec.Control)
	})
	for i := range out {
		if out[i].Collector != nil {
			out[i].Config = cfgs[i]
		}
	}
	return out, err
}
