package sweep_test

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/sweep"
)

// smallCells is a reduced Table-1-style cell set: protocols × pause times
// × seeds, small enough to run in a couple of seconds.
func smallCells() []scenario.Config {
	var cfgs []scenario.Config
	for _, proto := range []scenario.ProtocolName{scenario.LDR, scenario.AODV} {
		for _, pause := range []time.Duration{0, 15 * time.Second} {
			for seed := int64(1); seed <= 2; seed++ {
				cfg := scenario.Nodes50(proto, 4, pause, seed)
				cfg.Nodes = 15
				cfg.SimTime = 15 * time.Second
				cfgs = append(cfgs, cfg)
			}
		}
	}
	return cfgs
}

// TestRunParallelIdenticalToSerial is the determinism contract: the same
// cell set run serially and with four workers must produce identical
// per-cell metrics, in the same (input) order.
func TestRunParallelIdenticalToSerial(t *testing.T) {
	cfgs := smallCells()
	serial, err := sweep.Run(cfgs, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sweep.Run(cfgs, sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if !reflect.DeepEqual(a.Config, b.Config) {
			t.Fatalf("cell %d: configs differ (results out of order)", i)
		}
		ac, bc := a.Collector, b.Collector
		if a.Events != b.Events ||
			ac.DataInitiated != bc.DataInitiated ||
			ac.DataDelivered != bc.DataDelivered ||
			ac.DataDropped != bc.DataDropped ||
			ac.TotalLatency != bc.TotalLatency ||
			ac.TotalControlTransmitted() != bc.TotalControlTransmitted() {
			t.Errorf("cell %d (%s seed %d): serial and parallel metrics diverge\n"+
				"  events %d vs %d, delivered %d vs %d, control %d vs %d",
				i, a.Config.Protocol, a.Config.Seed,
				a.Events, b.Events, ac.DataDelivered, bc.DataDelivered,
				ac.TotalControlTransmitted(), bc.TotalControlTransmitted())
		}
	}
}

func TestEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		const n = 200
		counts := make([]atomic.Int32, n)
		var prog sweep.Progress
		err := sweep.Each(n, sweep.Options{Workers: workers, Progress: &prog}, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
		if prog.Total() != n || prog.Done() != n || prog.Started() != n || prog.Failed() != 0 {
			t.Fatalf("workers=%d: progress = total %d started %d done %d failed %d",
				workers, prog.Total(), prog.Started(), prog.Done(), prog.Failed())
		}
	}
}

// TestEachReturnsLowestIndexError: whichever worker fails first, the
// error reported is the one a serial run would have hit.
func TestEachReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var prog sweep.Progress
		err := sweep.Each(50, sweep.Options{Workers: workers, Progress: &prog}, func(i int) error {
			if i >= 7 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 7 failed" {
			t.Fatalf("workers=%d: err = %v, want cell 7's error", workers, err)
		}
		if prog.Failed() == 0 {
			t.Fatalf("workers=%d: no failures counted", workers)
		}
	}
}

// TestEachStopsClaimingAfterError: after a failure no new indices are
// claimed, so a long tail of cells is never started.
func TestEachStopsClaimingAfterError(t *testing.T) {
	const n = 10_000
	var ran atomic.Int64
	boom := errors.New("boom")
	_ = sweep.Each(n, sweep.Options{Workers: 4}, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if got := ran.Load(); got >= n {
		t.Fatalf("all %d cells ran despite an error at index 0", n)
	}
}

func TestEachZeroCells(t *testing.T) {
	if err := sweep.Each(0, sweep.Options{Workers: 8}, func(int) error {
		t.Fatal("fn called for empty sweep")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestEachConcurrentStress exercises the pool under the race detector:
// many tiny cells, workers exceeding GOMAXPROCS, and a goroutine polling
// the progress counters while the sweep runs.
func TestEachConcurrentStress(t *testing.T) {
	const n = 5000
	out := make([]int, n)
	var prog sweep.Progress
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = prog.Done() + prog.Started() + prog.Total()
			}
		}
	}()
	err := sweep.Each(n, sweep.Options{Workers: 32, Progress: &prog}, func(i int) error {
		out[i] = i * i
		return nil
	})
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
