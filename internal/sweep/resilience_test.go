package sweep_test

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/resilience"
	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/sweep"
)

// syntheticCells builds n distinct tiny configs. The cells are never
// simulated by the synthetic RunCells tests — they exist so spec hashing
// and watchdog scaling have real configs to look at.
func syntheticCells(n int) []scenario.Config {
	cfgs := make([]scenario.Config, n)
	for i := range cfgs {
		cfgs[i] = scenario.Nodes50(scenario.LDR, 4, 0, int64(i+1))
		cfgs[i].Nodes = 10
		cfgs[i].SimTime = 5 * time.Second
	}
	return cfgs
}

// TestEachCancellationProperty is the sweep cancellation property test:
// for every worker count × failing-index set, the lowest-indexed error
// is returned, every started cell drains before Each returns, and — in
// keep-going mode — the failure set matches the injected set exactly.
// Run under -race via `make race`.
func TestEachCancellationProperty(t *testing.T) {
	const n = 24
	for _, workers := range []int{1, 2, 4, 8} {
		for first := 0; first < n; first++ {
			// Inject failures at {first, first+5, first+10, ...} so
			// multi-failure selection is exercised, not just a lone error.
			injected := make(map[int]bool)
			for i := first; i < n; i += 5 {
				injected[i] = true
			}

			// Fail-fast arm: lowest-indexed error, started == done.
			var prog sweep.Progress
			var inFlight, maxInFlight atomic.Int64
			err := sweep.Each(n, sweep.Options{Workers: workers, Progress: &prog}, func(i int) error {
				cur := inFlight.Add(1)
				for {
					prev := maxInFlight.Load()
					if cur <= prev || maxInFlight.CompareAndSwap(prev, cur) {
						break
					}
				}
				defer inFlight.Add(-1)
				if injected[i] {
					return fmt.Errorf("injected failure at %d", i)
				}
				return nil
			})
			if err == nil || err.Error() != fmt.Sprintf("injected failure at %d", first) {
				t.Fatalf("workers=%d first=%d: err = %v, want lowest-indexed", workers, first, err)
			}
			if inFlight.Load() != 0 {
				t.Fatalf("workers=%d first=%d: %d cells still in flight after Each returned", workers, first, inFlight.Load())
			}
			if prog.Started() != prog.Done() {
				t.Fatalf("workers=%d first=%d: started %d != done %d (in-flight cells did not drain)",
					workers, first, prog.Started(), prog.Done())
			}

			// Keep-going arm: every cell runs; the failure set is exactly
			// the injected set, sorted by index.
			var ran atomic.Int64
			err = sweep.Each(n, sweep.Options{
				Workers: workers,
				Exec:    sweep.ExecOptions{KeepGoing: true},
			}, func(i int) error {
				ran.Add(1)
				if injected[i] {
					return fmt.Errorf("injected failure at %d", i)
				}
				return nil
			})
			var fs sweep.Failures
			if !errors.As(err, &fs) {
				t.Fatalf("workers=%d first=%d: keep-going err = %T %v, want Failures", workers, first, err, err)
			}
			if int(ran.Load()) != n {
				t.Fatalf("workers=%d first=%d: keep-going ran %d of %d cells", workers, first, ran.Load(), n)
			}
			if len(fs) != len(injected) {
				t.Fatalf("workers=%d first=%d: %d failures, want %d", workers, first, len(fs), len(injected))
			}
			prev := -1
			for _, ce := range fs {
				if !injected[ce.Index] {
					t.Fatalf("workers=%d first=%d: unexpected failure at %d", workers, first, ce.Index)
				}
				if ce.Index <= prev {
					t.Fatalf("workers=%d first=%d: failures not sorted: %d after %d", workers, first, ce.Index, prev)
				}
				prev = ce.Index
			}
		}
	}
}

// tinyCells is a small mixed cell set with real simulation work,
// auditing, and fault injection, for the resume-determinism tests.
func tinyCells(t *testing.T) []scenario.Config {
	t.Helper()
	var cfgs []scenario.Config
	for _, proto := range []scenario.ProtocolName{scenario.LDR, scenario.AODV} {
		for seed := int64(1); seed <= 2; seed++ {
			cfg := scenario.Nodes50(proto, 4, 0, seed)
			cfg.Nodes = 12
			cfg.SimTime = 8 * time.Second
			cfg.AuditCadence = time.Second
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

// renderResults reduces a result slice to the strings an experiment
// table would print; byte-equality here is the paper-output contract.
func renderResults(results []scenario.Result) string {
	var b strings.Builder
	for i, r := range results {
		c := r.Collector
		if c == nil {
			fmt.Fprintf(&b, "%d: <missing>\n", i)
			continue
		}
		fmt.Fprintf(&b, "%d: %s seed=%d delivery=%.6f latency=%v load=%.6f rreq=%.6f rrepi=%.6f rrepr=%.6f hops=%.6f seqno=%.6f events=%d audits=%d loops=%d drops=%d inflight=%d viol=%d faults=%+v\n",
			i, r.Config.Protocol, r.Config.Seed,
			c.DeliveryRatio(), c.MeanLatency(), c.NetworkLoad(), c.RREQLoad(),
			c.RREPInitPerRREQ(), c.RREPRecvPerRREQ(), c.MeanHops(), c.MeanSeqno(),
			r.Events, c.AuditSnapshots, c.LoopViolations,
			c.DroppedBy(0)+c.DroppedBy(1), c.InFlight(), len(r.Violations), r.Faults)
	}
	return b.String()
}

// TestRunJournalResumeByteIdentical is the kill-resume determinism
// contract: a journaled sweep stopped after k cells (the crash model: a
// kill -9 after k durable commits) and resumed in a fresh process
// produces byte-identical rendered output to the same sweep run
// uninterrupted, at any worker count.
func TestRunJournalResumeByteIdentical(t *testing.T) {
	cfgs := tinyCells(t)
	ref, err := sweep.Run(cfgs, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := renderResults(ref)

	for _, k := range []int{0, 1, 3, len(cfgs)} {
		for _, workers := range []int{1, 3} {
			dir := t.TempDir()
			if k > 0 {
				j, err := resilience.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sweep.Run(cfgs[:k], sweep.Options{
					Workers: workers,
					Exec:    sweep.ExecOptions{Journal: j},
				}); err != nil {
					t.Fatal(err)
				}
				if j.Len() != k {
					t.Fatalf("k=%d: journal holds %d records", k, j.Len())
				}
			}

			// "New process": reopen the journal from disk and resume.
			j2, err := resilience.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			var prog sweep.Progress
			got, err := sweep.Run(cfgs, sweep.Options{
				Workers:  workers,
				Progress: &prog,
				Exec:     sweep.ExecOptions{Journal: j2},
			})
			if err != nil {
				t.Fatal(err)
			}
			if prog.Loaded() != k {
				t.Fatalf("k=%d workers=%d: %d cells loaded from journal, want %d", k, workers, prog.Loaded(), k)
			}
			if r := renderResults(got); r != want {
				t.Fatalf("k=%d workers=%d: resumed output differs from uninterrupted run:\n--- resumed\n%s--- uninterrupted\n%s", k, workers, r, want)
			}
		}
	}
}

// TestRunCellsDedupSharesExecution: identical specs within one journaled
// sweep execute once; followers decode the leader's payload into their
// own slots.
func TestRunCellsDedupSharesExecution(t *testing.T) {
	base := syntheticCells(3)
	cfgs := []scenario.Config{base[0], base[1], base[0], base[2], base[1], base[0]}
	j, err := resilience.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var executions atomic.Int64
	var prog sweep.Progress
	out, err := sweep.RunCells(cfgs, sweep.Options{
		Workers:  4,
		Progress: &prog,
		Exec:     sweep.ExecOptions{Journal: j, Scope: "dedup-test"},
	}, func(i int, _ *scenario.Control) (map[string]int64, error) {
		executions.Add(1)
		return map[string]int64{"seed": cfgs[i].Seed}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := executions.Load(); got != 3 {
		t.Fatalf("%d executions for 3 unique specs", got)
	}
	if prog.Loaded() != len(cfgs)-3 {
		t.Fatalf("Loaded = %d, want %d", prog.Loaded(), len(cfgs)-3)
	}
	for i, m := range out {
		if m["seed"] != cfgs[i].Seed {
			t.Fatalf("out[%d] = %v, want seed %d", i, m, cfgs[i].Seed)
		}
	}
	if j.Len() != 3 {
		t.Fatalf("journal holds %d records, want 3", j.Len())
	}
}

// TestRunCellsWatchdogInterrupts: a hung cell that honors the interrupt
// is reported as a transient CellTimeout carrying the cell's spec.
func TestRunCellsWatchdogInterrupts(t *testing.T) {
	cfgs := syntheticCells(3)
	_, err := sweep.RunCells(cfgs, sweep.Options{
		Workers: 2,
		Exec:    sweep.ExecOptions{CellTimeout: 30 * time.Millisecond, Grace: 2 * time.Second},
	}, func(i int, ctl *scenario.Control) (int, error) {
		if i != 1 {
			return i, nil
		}
		for !ctl.Interrupted() {
			time.Sleep(time.Millisecond)
		}
		return 0, nil
	})
	var to *resilience.CellTimeout
	if !errors.As(err, &to) {
		t.Fatalf("err = %T %v, want CellTimeout", err, err)
	}
	if to.Index != 1 || to.Abandoned || to.Spec == nil || to.Spec.Seed != cfgs[1].Seed {
		t.Fatalf("timeout not enriched: %+v", to)
	}
	if !resilience.Transient(err) {
		t.Fatal("honored timeout should be transient")
	}
}

// TestRunCellsWatchdogAbandons: a cell that ignores the interrupt past
// the grace period is abandoned and marked non-retryable.
func TestRunCellsWatchdogAbandons(t *testing.T) {
	cfgs := syntheticCells(1)
	release := make(chan struct{})
	defer close(release)
	_, err := sweep.RunCells(cfgs, sweep.Options{
		Workers: 1,
		Exec:    sweep.ExecOptions{CellTimeout: 20 * time.Millisecond, Grace: 20 * time.Millisecond},
	}, func(i int, _ *scenario.Control) (int, error) {
		<-release // never honors the interrupt
		return 7, nil
	})
	var to *resilience.CellTimeout
	if !errors.As(err, &to) {
		t.Fatalf("err = %T %v, want CellTimeout", err, err)
	}
	if !to.Abandoned {
		t.Fatal("cell ignored the interrupt but was not abandoned")
	}
	if resilience.Transient(err) {
		t.Fatal("abandoned timeouts must not be retryable")
	}
}

// TestRunCellsRetryTransient: a cell that times out once and then
// completes is retried from the same seed and succeeds.
func TestRunCellsRetryTransient(t *testing.T) {
	cfgs := syntheticCells(1)
	var attempts atomic.Int64
	var prog sweep.Progress
	out, err := sweep.RunCells(cfgs, sweep.Options{
		Workers:  1,
		Progress: &prog,
		Exec: sweep.ExecOptions{
			CellTimeout:  30 * time.Millisecond,
			Grace:        2 * time.Second,
			Retries:      2,
			RetryBackoff: time.Millisecond,
		},
	}, func(i int, ctl *scenario.Control) (int, error) {
		if attempts.Add(1) == 1 {
			for !ctl.Interrupted() {
				time.Sleep(time.Millisecond)
			}
			return 0, nil
		}
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 42 {
		t.Fatalf("out[0] = %d", out[0])
	}
	if attempts.Load() != 2 || prog.Retried() != 1 {
		t.Fatalf("attempts=%d retried=%d, want 2/1", attempts.Load(), prog.Retried())
	}
}

// TestRunCellsPanicQuarantine: a panicking cell in a keep-going sweep is
// quarantined — the other cells complete, the failure set names the
// cell with its stack, and the OnFailure hook fires exactly once with
// its Repro propagated into the typed error.
func TestRunCellsPanicQuarantine(t *testing.T) {
	cfgs := syntheticCells(5)
	var hooks atomic.Int64
	out, err := sweep.RunCells(cfgs, sweep.Options{
		Workers: 2,
		Exec: sweep.ExecOptions{
			KeepGoing: true,
			OnFailure: func(ce *sweep.CellError) {
				hooks.Add(1)
				ce.Repro = "repro-test.json"
			},
		},
	}, func(i int, _ *scenario.Control) (int, error) {
		if i == 2 {
			panic("deliberately poisoned cell")
		}
		return i * 10, nil
	})
	var fs sweep.Failures
	if !errors.As(err, &fs) || len(fs) != 1 {
		t.Fatalf("err = %T %v, want one-element Failures", err, err)
	}
	var p *resilience.CellPanic
	if !errors.As(fs[0].Err, &p) {
		t.Fatalf("failure is %T, want CellPanic", fs[0].Err)
	}
	if p.Index != 2 || p.Value != "deliberately poisoned cell" || !strings.Contains(p.Stack, "goroutine") {
		t.Fatalf("panic not captured: %+v", p)
	}
	if p.Repro != "repro-test.json" || fs[0].Repro != "repro-test.json" {
		t.Fatal("OnFailure's Repro did not propagate")
	}
	if hooks.Load() != 1 {
		t.Fatalf("OnFailure fired %d times", hooks.Load())
	}
	for i, v := range out {
		if i == 2 {
			continue
		}
		if v != i*10 {
			t.Fatalf("cell %d did not complete despite quarantine: %d", i, v)
		}
	}

	m := fs.Manifest("test", len(cfgs))
	if m.Cells != 5 || len(m.Failures) != 1 || m.Failures[0].Kind != "panic" ||
		m.Failures[0].Index != 2 || m.Failures[0].Stack == "" || m.Failures[0].Repro != "repro-test.json" {
		t.Fatalf("manifest wrong: %+v", m)
	}
}

// TestProgressStalled: a worker stuck mid-cell shows up in Stalled;
// idle and lively workers do not.
func TestProgressStalled(t *testing.T) {
	var prog sweep.Progress
	block := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sweep.Each(4, sweep.Options{Workers: 2, Progress: &prog}, func(i int) error {
			if i == 0 {
				<-block
			}
			return nil
		})
	}()

	deadline := time.After(5 * time.Second)
	for {
		stalled := prog.Stalled(50 * time.Millisecond)
		if len(stalled) == 1 {
			w := stalled[0]
			if cell, ok := prog.WorkerCell(w); !ok || cell != 0 {
				t.Fatalf("stalled worker %d running cell %v, want 0", w, cell)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("blocked worker never reported stalled")
		case <-time.After(10 * time.Millisecond):
		}
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(prog.Stalled(0)) != 0 {
		t.Fatal("idle workers reported stalled after the sweep")
	}
	if prog.Workers() != 2 {
		t.Fatalf("Workers = %d", prog.Workers())
	}
}
