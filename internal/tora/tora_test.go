package tora_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/tora"
)

// ring builds a cycle of n nodes with destination 0.
func ring(n int, v tora.Variant) *tora.Network {
	nw := tora.New(n, 0, v)
	for i := 0; i < n; i++ {
		nw.AddLink(i, (i+1)%n)
	}
	nw.Stabilize()
	return nw
}

func TestInitialOrientationRoutesEverything(t *testing.T) {
	for _, v := range []tora.Variant{tora.FullReversal, tora.PartialReversal} {
		nw := ring(6, v)
		if err := nw.CheckDAG(); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < 6; i++ {
			if !nw.RouteExists(i) {
				t.Fatalf("variant %d: node %d has no downhill route", v, i)
			}
		}
	}
}

func TestReversalRepairsAfterLinkLoss(t *testing.T) {
	for _, v := range []tora.Variant{tora.FullReversal, tora.PartialReversal} {
		nw := ring(8, v)
		// Cut one of the destination's links; the nodes that drained
		// through it must reverse until they point the long way round.
		nw.RemoveLink(0, 1)
		nw.Stabilize()
		if err := nw.CheckDAG(); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < 8; i++ {
			if !nw.RouteExists(i) {
				t.Fatalf("variant %d: node %d stranded after repair", v, i)
			}
		}
		if nw.Reversals == 0 {
			t.Fatalf("variant %d: repair required no reversals?", v)
		}
	}
}

func TestPartialReversalTouchesFewerNodes(t *testing.T) {
	// The selling point of partial reversal: smaller reaction region.
	// On a long cycle, cutting next to the destination makes full
	// reversal churn at least as much as partial.
	full := ring(20, tora.FullReversal)
	full.RemoveLink(0, 1)
	full.Stabilize()

	part := ring(20, tora.PartialReversal)
	part.RemoveLink(0, 1)
	part.Stabilize()

	if part.Reversals > full.Reversals {
		t.Fatalf("partial reversal (%d) churned more than full (%d)",
			part.Reversals, full.Reversals)
	}
}

func TestPartitionDoesNotLivelock(t *testing.T) {
	nw := tora.New(4, 0, tora.FullReversal)
	nw.AddLink(0, 1)
	nw.AddLink(2, 3) // island without the destination
	rounds := nw.Stabilize()
	if rounds > 4 {
		t.Fatalf("partitioned island caused %d rounds", rounds)
	}
	if nw.RouteExists(2) {
		t.Fatal("partitioned node claims a route")
	}
}

func TestHeightOrderingIsTotal(t *testing.T) {
	f := func(a1, b1, a2, b2 int8, id1, id2 uint8) bool {
		h1 := tora.Height{A: int(a1), B: int(b1), ID: int(id1)}
		h2 := tora.Height{A: int(a2), B: int(b2), ID: int(id2)}
		if h1 == h2 {
			return !h1.Less(h2) && !h2.Less(h1)
		}
		return h1.Less(h2) != h2.Less(h1) // exactly one direction
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRandomChurnKeepsDestinationOrientation: under random link churn on
// random graphs, stabilization always terminates, the orientation stays a
// DAG, and every connected node has a route.
func TestRandomChurnKeepsDestinationOrientation(t *testing.T) {
	f := func(seed int64, variantBit bool) bool {
		v := tora.FullReversal
		if variantBit {
			v = tora.PartialReversal
		}
		r := rng.New(seed)
		const n = 12
		nw := tora.New(n, 0, v)
		type e struct{ a, b int }
		var present []e
		for i := 1; i < n; i++ {
			a := r.Intn(i)
			nw.AddLink(a, i)
			present = append(present, e{a, i})
		}
		nw.Stabilize()
		for step := 0; step < 25; step++ {
			if len(present) > 0 && r.Float64() < 0.45 {
				i := r.Intn(len(present))
				nw.RemoveLink(present[i].a, present[i].b)
				present = append(present[:i], present[i+1:]...)
			} else {
				a, b := r.Intn(n), r.Intn(n)
				if a != b {
					nw.AddLink(a, b)
					present = append(present, e{a, b})
				}
			}
			nw.Stabilize()
			if nw.CheckDAG() != nil {
				return false
			}
			for id := 1; id < n; id++ {
				if nw.Connected(id) != nw.RouteExists(id) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
