// Package tora implements the link-reversal routing algorithms of Gafni
// and Bertsekas (1981) that TORA (Park & Corson, 1997) builds on — the
// third loop-free-routing lineage the LDR paper positions itself against
// (§1: "TORA uses a link-reversal algorithm to maintain loop-free
// multipaths... TORA relies on synchronized clocks... The link-reversal
// algorithm is a form of synchronization among nodes spanning multiple
// hops").
//
// Nodes carry totally ordered heights; every link is directed from the
// higher to the lower endpoint, and data flows downhill to the
// destination. A node that loses its last outgoing link reverses: it
// raises its height above (some of) its neighbors, which may strand them
// in turn — reversals cascade until the graph is again destination-
// oriented. Full reversal lifts above all neighbors; partial reversal
// (what TORA uses) lifts only above the neighbors that did not recently
// reverse, touching a smaller region.
//
// The implementation runs on an abstract graph with synchronous reversal
// rounds, which is the standard setting for analyzing these algorithms;
// the bench suite compares its reversal counts against DUAL's diffusing
// messages and LDR's local label decisions for the same topology events.
package tora

import "fmt"

// Variant selects the reversal rule.
type Variant int

// The two Gafni-Bertsekas reversal rules.
const (
	FullReversal Variant = iota + 1
	PartialReversal
)

// Height is a totally ordered node label. Links point from greater to
// smaller heights. The triple mirrors the partial-reversal algorithm's
// (a, b, id) form; full reversal uses only (a, id).
type Height struct {
	A  int // reversal generation
	B  int // partial-reversal sublevel
	ID int // node identifier, the unique tiebreak
}

// Less orders heights lexicographically.
func (h Height) Less(o Height) bool {
	if h.A != o.A {
		return h.A < o.A
	}
	if h.B != o.B {
		return h.B < o.B
	}
	return h.ID < o.ID
}

// Network is a graph with destination-oriented heights.
type Network struct {
	variant Variant
	dest    int
	adj     [][]int
	present []map[int]bool
	heights []Height

	// Reversals counts node reversal operations; Rounds counts the
	// synchronous rounds needed to re-orient after the last event. Both
	// measure the multi-hop coordination the paper attributes to
	// link-reversal routing.
	Reversals int
	Rounds    int
}

// New builds a network of n nodes with the given destination and variant.
// Initial heights make node IDs the gradient, which is destination-
// oriented only by accident; call Stabilize after adding links.
func New(n, dest int, variant Variant) *Network {
	nw := &Network{
		variant: variant,
		dest:    dest,
		adj:     make([][]int, n),
		present: make([]map[int]bool, n),
		heights: make([]Height, n),
	}
	for i := 0; i < n; i++ {
		nw.present[i] = make(map[int]bool)
		nw.heights[i] = Height{A: 0, B: 0, ID: i}
	}
	nw.heights[dest] = Height{A: -1, B: 0, ID: dest} // globally lowest
	return nw
}

// AddLink inserts the undirected link a–b.
func (nw *Network) AddLink(a, b int) {
	if a == b || nw.present[a][b] {
		return
	}
	nw.present[a][b] = true
	nw.present[b][a] = true
	nw.adj[a] = append(nw.adj[a], b)
	nw.adj[b] = append(nw.adj[b], a)
}

// RemoveLink deletes the undirected link a–b.
func (nw *Network) RemoveLink(a, b int) {
	if !nw.present[a][b] {
		return
	}
	delete(nw.present[a], b)
	delete(nw.present[b], a)
	nw.adj[a] = remove(nw.adj[a], b)
	nw.adj[b] = remove(nw.adj[b], a)
}

func remove(xs []int, v int) []int {
	for i, x := range xs {
		if x == v {
			return append(xs[:i], xs[i+1:]...)
		}
	}
	return xs
}

// Height returns node id's current height.
func (nw *Network) HeightOf(id int) Height { return nw.heights[id] }

// Downstream returns the neighbors of id with lower height (the outgoing
// links data may use).
func (nw *Network) Downstream(id int) []int {
	var out []int
	for _, nb := range nw.adj[id] {
		if nw.heights[nb].Less(nw.heights[id]) {
			out = append(out, nb)
		}
	}
	return out
}

// isStranded reports whether id needs to reverse: it has neighbors but no
// outgoing link, and is not the destination.
func (nw *Network) isStranded(id int) bool {
	if id == nw.dest || len(nw.adj[id]) == 0 {
		return false
	}
	return len(nw.Downstream(id)) == 0
}

// Stabilize runs synchronous reversal rounds until no node is stranded,
// returning the number of rounds. It panics only on a logic error (the
// algorithms are proven to terminate on any graph).
func (nw *Network) Stabilize() int {
	rounds := 0
	for {
		var stranded []int
		for id := range nw.adj {
			// Nodes partitioned away from the destination would reverse
			// forever (the known Gafni-Bertsekas behaviour); TORA detects
			// partitions and clears their routes instead. The connectivity
			// filter stands in for that detection.
			if nw.isStranded(id) && nw.Connected(id) {
				stranded = append(stranded, id)
			}
		}
		if len(stranded) == 0 {
			nw.Rounds = rounds
			return rounds
		}
		rounds++
		if rounds > 1<<20 {
			panic("tora: reversal did not terminate")
		}
		for _, id := range stranded {
			nw.reverse(id)
			nw.Reversals++
		}
	}
}

// reverse applies the variant's reversal rule at a stranded node.
func (nw *Network) reverse(id int) {
	switch nw.variant {
	case FullReversal:
		// Raise above every neighbor: new A = max(neighbor A) + 1.
		maxA := nw.heights[id].A
		for _, nb := range nw.adj[id] {
			if nw.heights[nb].A > maxA {
				maxA = nw.heights[nb].A
			}
		}
		nw.heights[id] = Height{A: maxA + 1, B: 0, ID: id}
	case PartialReversal:
		// Raise above only the neighbors that did not just reverse: take
		// the minimum neighbor A-level; climb to it and sit below its
		// recently reversed members via the B sublevel.
		minA := nw.heights[nw.adj[id][0]].A
		for _, nb := range nw.adj[id][1:] {
			if nw.heights[nb].A < minA {
				minA = nw.heights[nb].A
			}
		}
		newA := minA + 1
		// Sit just below the smallest B among neighbors at newA.
		minB := 0
		first := true
		for _, nb := range nw.adj[id] {
			if nw.heights[nb].A == newA {
				if first || nw.heights[nb].B < minB {
					minB = nw.heights[nb].B
					first = false
				}
			}
		}
		b := 0
		if !first {
			b = minB - 1
		}
		nw.heights[id] = Height{A: newA, B: b, ID: id}
	default:
		panic(fmt.Sprintf("tora: unknown variant %d", nw.variant))
	}
}

// RouteExists reports whether id has a directed (downhill) path to the
// destination.
func (nw *Network) RouteExists(id int) bool {
	seen := make(map[int]bool)
	var walk func(int) bool
	walk = func(cur int) bool {
		if cur == nw.dest {
			return true
		}
		if seen[cur] {
			return false
		}
		seen[cur] = true
		for _, nb := range nw.Downstream(cur) {
			if walk(nb) {
				return true
			}
		}
		return false
	}
	return walk(id)
}

// CheckDAG verifies the height orientation is acyclic (it is by
// construction — heights are a total order — but the check guards the
// implementation).
func (nw *Network) CheckDAG() error {
	for id := range nw.adj {
		for _, nb := range nw.Downstream(id) {
			if !nw.heights[nb].Less(nw.heights[id]) {
				return fmt.Errorf("tora: edge %d→%d not strictly downhill", id, nb)
			}
		}
	}
	return nil
}

// Connected reports whether id and the destination share a component.
func (nw *Network) Connected(id int) bool {
	seen := make(map[int]bool)
	queue := []int{id}
	seen[id] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == nw.dest {
			return true
		}
		for _, nb := range nw.adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return false
}
