package tora_test

import (
	"fmt"

	"github.com/manetlab/ldr/internal/tora"
)

// Example shows link reversal re-orienting a ring after a cut: the nodes
// stranded by the break reverse until every height gradient leads to the
// destination again.
func Example() {
	nw := tora.New(6, 0, tora.PartialReversal)
	for i := 0; i < 6; i++ {
		nw.AddLink(i, (i+1)%6)
	}
	nw.Stabilize()
	fmt.Println("routed before break:", nw.RouteExists(1))

	nw.RemoveLink(0, 1)
	rounds := nw.Stabilize()
	fmt.Printf("routed after %d reversal rounds: %v\n", rounds, nw.RouteExists(1))
	// Output:
	// routed before break: true
	// routed after 4 reversal rounds: true
}
