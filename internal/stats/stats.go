// Package stats provides the summary statistics used to report experiment
// results: means and 95% confidence intervals over repeated trials, as in
// the error bars and ± columns of the paper's Table 1 and figures.
package stats

import "math"

// Summary is the mean and the half-width of the 95% confidence interval
// of a sample.
type Summary struct {
	N    int
	Mean float64
	SD   float64 // sample standard deviation
	CI95 float64 // half-width of the 95% confidence interval
}

// Summarize computes a Summary over xs using the Student t distribution
// for small samples. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	if n == 1 {
		return Summary{N: 1, Mean: mean}
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	se := sd / math.Sqrt(float64(n))
	return Summary{
		N:    n,
		Mean: mean,
		SD:   sd,
		CI95: tCritical(n-1) * se,
	}
}

// Overlaps reports whether the 95% confidence intervals of two summaries
// overlap — the paper's criterion for "statistically identical".
func (s Summary) Overlaps(o Summary) bool {
	lo1, hi1 := s.Mean-s.CI95, s.Mean+s.CI95
	lo2, hi2 := o.Mean-o.CI95, o.Mean+o.CI95
	return lo1 <= hi2 && lo2 <= hi1
}

// tCritical returns the two-tailed 97.5th percentile of the Student t
// distribution with df degrees of freedom.
func tCritical(df int) float64 {
	// Standard table; beyond 30 degrees of freedom the normal value is
	// accurate to better than 2%.
	table := [...]float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return math.NaN()
	}
	if df <= len(table) {
		return table[df-1]
	}
	return 1.96
}

// Mean returns the arithmetic mean of xs (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
