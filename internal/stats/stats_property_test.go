package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSummarizeNeverProducesNonFinite: for any nonempty sample of finite
// values, every Summary field must be finite — no NaN or ±Inf can leak
// into reported tables.
func TestSummarizeNeverProducesNonFinite(t *testing.T) {
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	prop := func(raw []float64, extra float64) bool {
		// Map arbitrary inputs onto a nonempty, finite sample.
		xs := append(raw, extra)
		for i, x := range xs {
			if !finite(x) {
				xs[i] = 0
			}
			// Clamp so intermediate sums of squares cannot overflow;
			// 1e150² = 1e300 is still finite.
			xs[i] = math.Mod(xs[i], 1e150)
		}
		s := Summarize(xs)
		return s.N == len(xs) &&
			finite(s.Mean) && finite(s.SD) && finite(s.CI95) &&
			s.SD >= 0 && s.CI95 >= 0
	}
	if err := quick.Check(prop, &quick.Config{
		MaxCount: 2000,
		Rand:     rand.New(rand.NewSource(1)),
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSummarizeConstantSample: a constant sample has zero spread and a
// zero-width interval, exactly.
func TestSummarizeConstantSample(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 3.25
		}
		s := Summarize(xs)
		if s.Mean != 3.25 || s.SD != 0 || s.CI95 != 0 {
			t.Fatalf("n=%d: Summary = %+v, want mean 3.25, SD 0, CI95 0", n, s)
		}
	}
}

// TestTCriticalTableBoundary pins the hand-off from the Student t table
// to the normal approximation: df 30 is the last table entry (2.042),
// df 31 is the first normal value (1.96), and the critical value must
// decrease monotonically toward it through the whole table.
func TestTCriticalTableBoundary(t *testing.T) {
	if got := tCritical(30); got != 2.042 {
		t.Fatalf("tCritical(30) = %v, want 2.042 (last table entry)", got)
	}
	if got := tCritical(31); got != 1.96 {
		t.Fatalf("tCritical(31) = %v, want 1.96 (normal approximation)", got)
	}
	if got := tCritical(1); got != 12.706 {
		t.Fatalf("tCritical(1) = %v, want 12.706", got)
	}
	for df := 2; df <= 40; df++ {
		if tCritical(df) > tCritical(df-1) {
			t.Fatalf("tCritical(%d) = %v > tCritical(%d) = %v; must be non-increasing",
				df, tCritical(df), df-1, tCritical(df-1))
		}
	}
	if got := tCritical(0); !math.IsNaN(got) {
		t.Fatalf("tCritical(0) = %v, want NaN (undefined)", got)
	}
}

// TestOverlapsDegenerateIntervals: N=1 summaries have CI95 == 0, so
// their "interval" is a point. Two points overlap only when equal, and
// a point overlaps a wide interval exactly when it lies inside it.
func TestOverlapsDegenerateIntervals(t *testing.T) {
	point := func(v float64) Summary { return Summarize([]float64{v}) }
	a, b := point(5), point(5)
	if a.CI95 != 0 || a.N != 1 {
		t.Fatalf("Summarize of one value = %+v, want N 1, CI95 0", a)
	}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("equal point intervals must overlap")
	}
	c := point(5.000001)
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Fatal("distinct point intervals must not overlap")
	}
	wide := Summary{N: 3, Mean: 4, CI95: 2} // interval [2, 6]
	if !a.Overlaps(wide) || !wide.Overlaps(a) {
		t.Fatal("point 5 must overlap interval [2,6]")
	}
	outside := point(7)
	if outside.Overlaps(wide) || wide.Overlaps(outside) {
		t.Fatal("point 7 must not overlap interval [2,6]")
	}
	edge := point(6)
	if !edge.Overlaps(wide) || !wide.Overlaps(edge) {
		t.Fatal("point 6 on the closed boundary of [2,6] must overlap")
	}
}

// TestOverlapsIsSymmetric: Overlaps(a,b) == Overlaps(b,a) for arbitrary
// finite summaries.
func TestOverlapsIsSymmetric(t *testing.T) {
	prop := func(m1, w1, m2, w2 float64) bool {
		mk := func(m, w float64) Summary {
			if math.IsNaN(m) || math.IsInf(m, 0) {
				m = 0
			}
			if math.IsNaN(w) || math.IsInf(w, 0) {
				w = 0
			}
			return Summary{N: 2, Mean: math.Mod(m, 1e12), CI95: math.Abs(math.Mod(w, 1e12))}
		}
		a, b := mk(m1, w1), mk(m2, w2)
		return a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(prop, &quick.Config{
		MaxCount: 2000,
		Rand:     rand.New(rand.NewSource(2)),
	}); err != nil {
		t.Fatal(err)
	}
}
