package stats_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/manetlab/ldr/internal/stats"
)

func TestSummarizeKnownSample(t *testing.T) {
	// Sample 2, 4, 4, 4, 5, 5, 7, 9: mean 5, sample SD 2.138..., n=8.
	s := stats.Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d, want 8", s.N)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", s.Mean)
	}
	wantSD := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.SD-wantSD) > 1e-12 {
		t.Fatalf("SD = %v, want %v", s.SD, wantSD)
	}
	// CI = t(7) * SD / sqrt(8) with t(7) = 2.365.
	wantCI := 2.365 * wantSD / math.Sqrt(8)
	if math.Abs(s.CI95-wantCI) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v", s.CI95, wantCI)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := stats.Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty sample: %+v", s)
	}
	s := stats.Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.CI95 != 0 {
		t.Fatalf("single sample: %+v", s)
	}
}

func TestLargeSampleUsesNormalCritical(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 10)
	}
	s := stats.Summarize(xs)
	wantCI := 1.96 * s.SD / 10 // sqrt(100) = 10
	if math.Abs(s.CI95-wantCI) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v (z=1.96 for df=99)", s.CI95, wantCI)
	}
}

func TestOverlaps(t *testing.T) {
	a := stats.Summary{Mean: 10, CI95: 2} // [8, 12]
	b := stats.Summary{Mean: 13, CI95: 2} // [11, 15] — overlaps
	c := stats.Summary{Mean: 20, CI95: 1} // [19, 21] — disjoint
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("overlapping intervals reported disjoint")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Fatal("disjoint intervals reported overlapping")
	}
	if !a.Overlaps(a) {
		t.Fatal("interval does not overlap itself")
	}
}

func TestMeanBetweenMinAndMax(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return stats.Mean(xs) == 0
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // out of scope for this property
			}
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		m := stats.Mean(xs)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCIShrinksWithSampleSize(t *testing.T) {
	base := []float64{1, 9, 1, 9, 1, 9, 1, 9}
	small := stats.Summarize(base)
	big := stats.Summarize(append(append([]float64{}, base...), base...))
	if big.CI95 >= small.CI95 {
		t.Fatalf("CI did not shrink with more data: %v -> %v", small.CI95, big.CI95)
	}
}
