// Fault-injection hooks for the medium: link blackout, network
// partition, and message-level drop/duplicate/delay. All state lives
// behind a single pointer that is nil in a fault-free simulation, so the
// hot paths (Transmit, signalEnd) pay one nil check and nothing else.
//
// Blackouts and partitions act at the physical layer: a blocked receiver
// gets neither the decodable frame nor its interference energy, exactly
// as if an obstacle absorbed the signal. Delivery faults act at the
// radio/MAC boundary instead — the frame occupies the channel normally
// (it collides, it defers other senders) and is then dropped, duplicated,
// or delayed at the moment it would be handed to the receiver's MAC.

package radio

import (
	"time"

	"github.com/manetlab/ldr/internal/rng"
)

// faults bundles every active fault hook; see the file comment.
type faults struct {
	linkDown map[uint64]struct{} // severed undirected node pairs
	part     []int32             // partition cell per node; nil = healed

	drop     float64       // P(frame silently lost at delivery)
	dup      float64       // P(frame delivered twice)
	delayMax time.Duration // uniform extra delivery latency bound
	src      *rng.Source   // stream for the delivery-fault draws

	// pending holds the payloads of delay-deferred deliveries between the
	// fault draw and the scheduled hand-off. Without this registry a
	// delayed frame exists only inside its event closure, invisible to
	// the conformance auditor's packet census.
	pending map[uint64]any
	pendSeq uint64
}

// FaultStats counts fault-hook activity, for diagnostics and tests.
type FaultStats struct {
	Blocked    uint64 // receptions suppressed by blackout or partition
	Dropped    uint64 // deliveries lost to the drop probability
	Duplicated uint64 // deliveries duplicated
	Delayed    uint64 // deliveries deferred by a random delay
}

func (m *Medium) faultState() *faults {
	if m.flt == nil {
		m.flt = &faults{}
	}
	return m.flt
}

// pairKey canonicalizes an undirected node pair into one map key.
func pairKey(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// SetLinkDown severs (down=true) or heals (down=false) the radio link
// between nodes a and b in both directions. While severed, no signal —
// decodable or interfering — crosses the pair.
func (m *Medium) SetLinkDown(a, b int, down bool) {
	f := m.faultState()
	if f.linkDown == nil {
		f.linkDown = make(map[uint64]struct{})
	}
	if down {
		f.linkDown[pairKey(a, b)] = struct{}{}
	} else {
		delete(f.linkDown, pairKey(a, b))
	}
}

// SetPartition splits the network into cells: cells[i] is node i's cell
// number, and signals only propagate within a cell. Passing nil heals the
// partition. The slice is copied.
func (m *Medium) SetPartition(cells []int) {
	f := m.faultState()
	if cells == nil {
		f.part = nil
		return
	}
	f.part = make([]int32, len(cells))
	for i, c := range cells {
		f.part[i] = int32(c)
	}
}

// SetDeliveryFaults enables message-level faults: each frame that would
// be delivered is instead dropped with probability drop, duplicated with
// probability dup, and (independently) deferred by a uniform random delay
// in [0, delayMax). Draws come from src in delivery order, so runs remain
// reproducible. Passing a nil src disables delivery faults.
func (m *Medium) SetDeliveryFaults(drop, dup float64, delayMax time.Duration, src *rng.Source) {
	f := m.faultState()
	f.drop, f.dup, f.delayMax, f.src = drop, dup, delayMax, src
}

// ClearDeliveryFaults disables message-level faults; blackouts and
// partitions are unaffected.
func (m *Medium) ClearDeliveryFaults() {
	if m.flt != nil {
		m.flt.drop, m.flt.dup, m.flt.delayMax, m.flt.src = 0, 0, 0, nil
	}
}

// blocked reports whether the a↔b link is currently severed by a
// blackout or partition. Only called with m.flt non-nil.
func (m *Medium) blocked(a, b int) bool {
	f := m.flt
	if f.part != nil && f.part[a] != f.part[b] {
		return true
	}
	if len(f.linkDown) > 0 {
		if _, ok := f.linkDown[pairKey(a, b)]; ok {
			return true
		}
	}
	return false
}

// deliverFaulty applies the delivery-fault draws to one decodable,
// uncorrupted reception and invokes the receiver zero, one, or two
// times. A delayed copy re-reads the receiver callback at fire time, so
// delivery to a node detached mid-delay is dropped, not crashed.
func (m *Medium) deliverFaulty(f *faults, rc *reception) {
	copies := 1
	if f.drop > 0 && f.src.Float64() < f.drop {
		copies = 0
		m.FaultStats.Dropped++
	} else if f.dup > 0 && f.src.Float64() < f.dup {
		copies = 2
		m.FaultStats.Duplicated++
	}
	for c := 0; c < copies; c++ {
		var delay time.Duration
		if f.delayMax > 0 {
			delay = time.Duration(f.src.Float64() * float64(f.delayMax))
		}
		if delay <= 0 {
			m.nodes[rc.dst].rx(int(rc.from), rc.payload)
			continue
		}
		m.FaultStats.Delayed++
		from, dst, payload := int(rc.from), int(rc.dst), rc.payload
		if f.pending == nil {
			f.pending = make(map[uint64]any)
		}
		key := f.pendSeq
		f.pendSeq++
		f.pending[key] = payload
		// The deferred delivery outlives the reception, so it holds its own
		// payload reference until the hand-off fires.
		ref(payload)
		m.sim.Schedule(delay, func() {
			delete(f.pending, key)
			if rx := m.nodes[dst].rx; rx != nil {
				rx(from, payload)
			}
			unref(payload)
		})
	}
}

// ForEachPendingDelivery invokes fn for the payload of every delivery
// currently deferred by the delay fault hook. Iteration order is
// unspecified; callers build order-insensitive sets from it.
func (m *Medium) ForEachPendingDelivery(fn func(payload any)) {
	if m.flt == nil {
		return
	}
	for _, p := range m.flt.pending {
		fn(p)
	}
}
