package radio_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/sim"
)

// benchMedium builds a 100-node random-waypoint medium matching the
// paper's dense scenario (2200 m × 600 m, speeds 1–20 m/s, constant
// motion), with every node attached.
func benchMedium() (*sim.Simulator, *radio.Medium) {
	s := sim.New()
	model := mobility.NewWaypoint(100, mobility.WaypointConfig{
		Terrain:  mobility.Terrain{Width: 2200, Height: 600},
		MinSpeed: 1,
		MaxSpeed: 20,
	}, rng.New(1))
	m := radio.New(s, model, radio.DefaultConfig())
	for i := 0; i < model.NumNodes(); i++ {
		m.Attach(i, func(int, any) {})
	}
	return s, m
}

// BenchmarkTransmit measures one frame put on the air and fully delivered
// (receiver-set computation plus the signal start/end events), the radio
// hot path every MAC transmission pays.
func BenchmarkTransmit(b *testing.B) {
	s, m := benchMedium()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Transmit(i%100, 4096+512*8, nil)
		s.RunAll()
	}
}

// BenchmarkTransmitBurst measures overlapping transmissions (the
// contention regime): eight senders put frames on the air in the same
// microsecond window before the queue drains.
func BenchmarkTransmitBurst(b *testing.B) {
	s, m := benchMedium()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base := i * 8
		for j := 0; j < 8; j++ {
			src := (base + j) % 100
			s.Schedule(time.Duration(j)*time.Microsecond, func() {
				m.Transmit(src, 4096, nil)
			})
		}
		s.RunAll()
	}
}

// BenchmarkNeighbors measures the observability helper with a
// caller-provided buffer (allocs/op should be zero once warm).
func BenchmarkNeighbors(b *testing.B) {
	s, m := benchMedium()
	_ = s
	b.ReportAllocs()
	var buf []int
	for i := 0; i < b.N; i++ {
		buf = m.NeighborsAppend(i%100, buf[:0])
	}
}
