package radio_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/sim"
)

// TestDeliveryConservation: across random topologies and random
// transmission schedules, every frame is decoded at most once per
// receiver, never by the sender, and never beyond decodable range.
func TestDeliveryConservation(t *testing.T) {
	f := func(seed int64, nTx uint8) bool {
		r := rng.New(seed)
		const n = 8
		pts := make([]mobility.Point, n)
		for i := range pts {
			pts[i] = mobility.Point{X: r.Float64() * 1000, Y: r.Float64() * 400}
		}
		s := sim.New()
		m := radio.New(s, mobility.NewStatic(pts), radio.DefaultConfig())

		type delivery struct {
			rx, from int
			payload  any
		}
		var got []delivery
		for i := 0; i < n; i++ {
			i := i
			m.Attach(i, func(from int, payload any) {
				got = append(got, delivery{rx: i, from: from, payload: payload})
			})
		}

		type tx struct {
			src     int
			payload int
		}
		var sent []tx
		for k := 0; k < int(nTx%20)+1; k++ {
			src := r.Intn(n)
			payload := k
			sent = append(sent, tx{src: src, payload: payload})
			at := time.Duration(r.Intn(20)) * 100 * time.Microsecond
			s.At(at, func() { m.Transmit(src, 1000, payload) })
		}
		s.RunAll()

		// Each (receiver, payload) pair at most once; receivers in range.
		seen := make(map[[2]int]bool)
		for _, d := range got {
			p := d.payload.(int)
			key := [2]int{d.rx, p}
			if seen[key] {
				return false // duplicate decode
			}
			seen[key] = true
			src := sent[p].src
			if d.rx == src || d.from != src {
				return false
			}
			if pts[src].Dist(pts[d.rx]) > 275 {
				return false // decoded beyond range
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(14))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
