// Package radio models the shared wireless medium.
//
// The propagation model is a unit disk: a frame transmitted by a node is
// decodable by every node within Range meters and causes interference at
// every node within CSRange meters (carrier-sense/interference range). Two
// signals overlapping in time at a receiver corrupt each other, as does
// receiving while transmitting. This reproduces the contention behaviour
// that drives the relative protocol performance in the LDR paper without
// modelling an explicit PHY.
//
// The paper's simulations use "the MAC layer with a 275 m transmission
// range" at 2 Mb/s; those are the defaults here.
package radio

import (
	"time"

	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/sim"
)

// Config parameterizes the medium.
type Config struct {
	Range     float64       // decodable range, meters
	CSRange   float64       // carrier-sense/interference range, meters
	BitRate   float64       // channel rate, bits per second
	PropDelay time.Duration // fixed propagation delay
}

// DefaultConfig matches the paper's simulation setup: 275 m transmission
// range, 2 Mb/s channel, interference out to twice the decodable range.
func DefaultConfig() Config {
	return Config{
		Range:     275,
		CSRange:   550,
		BitRate:   2e6,
		PropDelay: time.Microsecond,
	}
}

// ReceiverFunc is invoked for every frame successfully decoded at a node.
// Addressing and ACKing are the MAC's concern; the radio delivers any
// uncorrupted frame that arrives within decodable range.
type ReceiverFunc func(from int, payload any)

// Medium is the shared channel connecting every node's radio.
type Medium struct {
	sim   *sim.Simulator
	model mobility.Model
	cfg   Config
	nodes []nodeState

	// Transmissions counts frames put on the air, for diagnostics.
	Transmissions uint64
	// Corrupted counts per-receiver receptions lost to collisions.
	Corrupted uint64
}

type nodeState struct {
	rx      ReceiverFunc
	signals int           // overlapping signals currently sensed
	txUntil time.Duration // end of this node's own transmission
	active  []*reception  // decodable receptions currently in the air here
	onIdle  []func()      // one-shot callbacks for channel-idle
}

type reception struct {
	from      int
	payload   any
	corrupted bool
}

// New builds a medium over the given mobility model. Positions are sampled
// from the model at transmission start; a frame's receiver set is fixed at
// that instant (frames are microseconds long, far below node motion scale).
func New(s *sim.Simulator, model mobility.Model, cfg Config) *Medium {
	if cfg.CSRange < cfg.Range {
		cfg.CSRange = cfg.Range
	}
	return &Medium{
		sim:   s,
		model: model,
		cfg:   cfg,
		nodes: make([]nodeState, model.NumNodes()),
	}
}

// Config returns the medium's configuration.
func (m *Medium) Config() Config { return m.cfg }

// Model exposes the mobility model driving node positions, for analysis
// tools (e.g. the topology oracle).
func (m *Medium) Model() mobility.Model { return m.model }

// Attach registers the frame-delivery callback for a node.
func (m *Medium) Attach(id int, rx ReceiverFunc) {
	m.nodes[id].rx = rx
}

// Busy reports whether node id currently senses the channel busy (a signal
// in the air within carrier-sense range, or its own transmission).
func (m *Medium) Busy(id int) bool {
	st := &m.nodes[id]
	return st.signals > 0 || st.txUntil > m.sim.Now()
}

// NotifyIdle registers a one-shot callback invoked the next moment node
// id's channel becomes idle. If the channel is already idle the callback
// runs in a zero-delay event.
func (m *Medium) NotifyIdle(id int, fn func()) {
	if !m.Busy(id) {
		m.sim.Schedule(0, fn)
		return
	}
	st := &m.nodes[id]
	st.onIdle = append(st.onIdle, fn)
}

// AirTime returns how long a frame of the given size occupies the channel.
func (m *Medium) AirTime(bits int) time.Duration {
	return time.Duration(float64(bits) / m.cfg.BitRate * float64(time.Second))
}

// Transmit puts a frame on the air from node src and returns its airtime.
// The MAC is responsible for carrier sensing before calling Transmit; the
// radio faithfully transmits (and collides) regardless.
func (m *Medium) Transmit(src, bits int, payload any) time.Duration {
	now := m.sim.Now()
	air := m.AirTime(bits)
	m.Transmissions++

	sender := &m.nodes[src]
	sender.txUntil = now + air
	// Receiving while transmitting corrupts anything arriving here.
	for _, rc := range sender.active {
		if !rc.corrupted {
			rc.corrupted = true
			m.Corrupted++
		}
	}
	m.sim.Schedule(air, func() { m.checkIdle(src) })

	srcPos := m.model.Position(src, now)
	for i := range m.nodes {
		if i == src || m.nodes[i].rx == nil {
			continue
		}
		d := srcPos.Dist(m.model.Position(i, now))
		if d > m.cfg.CSRange {
			continue
		}
		decodable := d <= m.cfg.Range
		dst := i
		rc := &reception{from: src, payload: payload}
		m.sim.Schedule(m.cfg.PropDelay, func() { m.signalStart(dst, decodable, rc) })
		m.sim.Schedule(m.cfg.PropDelay+air, func() { m.signalEnd(dst, decodable, rc) })
	}
	return air
}

func (m *Medium) signalStart(id int, decodable bool, rc *reception) {
	st := &m.nodes[id]
	st.signals++
	if decodable {
		st.active = append(st.active, rc)
	}
	if st.signals > 1 {
		// Collision: every decodable reception currently in the air at this
		// node is lost, including the one that just began.
		for _, r := range st.active {
			if !r.corrupted {
				r.corrupted = true
				m.Corrupted++
			}
		}
	}
	if st.txUntil > m.sim.Now() && decodable && !rc.corrupted {
		rc.corrupted = true
		m.Corrupted++
	}
}

func (m *Medium) signalEnd(id int, decodable bool, rc *reception) {
	st := &m.nodes[id]
	st.signals--
	if decodable {
		for i, r := range st.active {
			if r == rc {
				st.active = append(st.active[:i], st.active[i+1:]...)
				break
			}
		}
		if !rc.corrupted && st.txUntil <= m.sim.Now() && st.rx != nil {
			st.rx(rc.from, rc.payload)
		}
	}
	m.checkIdle(id)
}

func (m *Medium) checkIdle(id int) {
	st := &m.nodes[id]
	if st.signals > 0 || st.txUntil > m.sim.Now() {
		return
	}
	if len(st.onIdle) == 0 {
		return
	}
	cbs := st.onIdle
	st.onIdle = nil
	for _, fn := range cbs {
		fn()
	}
}

// InRange reports whether two nodes are currently within decodable range,
// a helper for connectivity analysis in tests and the loop checker.
func (m *Medium) InRange(a, b int) bool {
	now := m.sim.Now()
	return m.model.Position(a, now).Dist(m.model.Position(b, now)) <= m.cfg.Range
}

// Neighbors returns the nodes currently within decodable range of id.
// It is an observability helper for analysis tools, not a protocol input.
func (m *Medium) Neighbors(id int) []int {
	now := m.sim.Now()
	p := m.model.Position(id, now)
	var out []int
	for i := range m.nodes {
		if i == id {
			continue
		}
		if p.Dist(m.model.Position(i, now)) <= m.cfg.Range {
			out = append(out, i)
		}
	}
	return out
}
