// Package radio models the shared wireless medium.
//
// The propagation model is a per-transmitter disk: a frame transmitted by
// a node is decodable by every node within the *transmitter's* decodable
// range and causes interference at every node within the transmitter's
// carrier-sense range. With a single global Range/CSRange (the default)
// this is the classic symmetric unit disk; with per-class ranges
// (Config.Classes) links become directional — a long-range node's frames
// reach a short-range node that can never answer. Two signals overlapping
// in time at a receiver corrupt each other, as does receiving while
// transmitting. This reproduces the contention behaviour that drives the
// relative protocol performance in the LDR paper without modelling an
// explicit PHY.
//
// The paper's simulations use "the MAC layer with a 275 m transmission
// range" at 2 Mb/s; those are the defaults here.
//
// Receiver lookup is a uniform spatial-hash grid (see grid.go) instead of
// an O(N) scan over all nodes, and node positions are computed at most
// once per transmit instant and cached, so the per-frame cost scales with
// the local node density rather than the network size.
package radio

import (
	"sort"
	"time"

	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/sim"
)

// Class is one transmit-power class: the decodable and carrier-sense
// ranges governing every frame sent by a node assigned to it. Reception
// is decided by the transmitter's class alone — a weak node still hears
// a strong one from far away — which is what makes mixed classes produce
// genuinely one-way links.
type Class struct {
	Range   float64 // decodable range, meters
	CSRange float64 // carrier-sense/interference range, meters
}

// Config parameterizes the medium.
type Config struct {
	Range     float64       // decodable range, meters
	CSRange   float64       // carrier-sense/interference range, meters
	BitRate   float64       // channel rate, bits per second
	PropDelay time.Duration // fixed propagation delay

	// Classes, when non-empty, assigns heterogeneous transmit power:
	// node i sends with Classes[i % len(Classes)] instead of the global
	// Range/CSRange. The assignment is a pure function of the node id so
	// enabling classes draws no randomness and cannot perturb any seeded
	// stream. Empty keeps the uniform disk, byte-identical to a medium
	// built before classes existed.
	Classes []Class

	// GridWindow bounds how stale a node's spatial-grid bucket may get:
	// every node is re-bucketed at least once per window of virtual time.
	// GridSlack pads the grid cell size beyond CSRange so the 3×3 cell
	// lookup stays exhaustive while buckets age; it must be at least
	// (max node speed) × GridWindow. The defaults (100 ms, 50 m) are
	// exhaustive for node speeds up to 500 m/s. Zero values select the
	// defaults. Receiver sets are exact regardless — candidates are
	// always re-checked against exact positions.
	GridWindow time.Duration
	GridSlack  float64
}

// DefaultConfig matches the paper's simulation setup: 275 m transmission
// range, 2 Mb/s channel, interference out to twice the decodable range.
func DefaultConfig() Config {
	return Config{
		Range:     275,
		CSRange:   550,
		BitRate:   2e6,
		PropDelay: time.Microsecond,
	}
}

// ReceiverFunc is invoked for every frame successfully decoded at a node.
// Addressing and ACKing are the MAC's concern; the radio delivers any
// uncorrupted frame that arrives within decodable range.
type ReceiverFunc func(from int, payload any)

// Releasable is implemented by payloads whose lifetime is reference
// counted (pooled MAC air frames). The medium takes a reference for every
// reception it creates and for every delivery the fault hook defers, and
// drops it when the reception ends (or the deferred delivery fires), so a
// pooled payload is never recycled while the radio can still read it.
// Payloads that do not implement Releasable are managed by the garbage
// collector as before.
type Releasable interface {
	Ref()
	Unref()
}

// ref takes a reference on a refcounted payload; a no-op otherwise.
func ref(payload any) {
	if r, ok := payload.(Releasable); ok {
		r.Ref()
	}
}

// unref drops a reference on a refcounted payload; a no-op otherwise.
func unref(payload any) {
	if r, ok := payload.(Releasable); ok {
		r.Unref()
	}
}

// IdleWaiter is the channel-idle callback target: w.ChannelIdle(u) runs
// the next moment the channel at the registered node goes idle. The
// scalar u is carried through untouched (the MAC passes its power-cycle
// epoch), so waiters need no per-wait closure state.
type IdleWaiter interface {
	ChannelIdle(u uint64)
}

// idleWait is one registered channel-idle callback.
type idleWait struct {
	w IdleWaiter
	u uint64
}

// Medium is the shared channel connecting every node's radio.
type Medium struct {
	sim   *sim.Simulator
	model mobility.Model
	cfg   Config
	nodes []nodeState

	// Per-node transmit ranges, resolved once from cfg.Classes (or filled
	// uniformly from cfg.Range/CSRange), so the hot path indexes a slice
	// instead of re-deriving class membership per frame.
	txRange []float64
	csRange []float64

	// Position cache: pos[i] is node i's position at virtual time
	// posTime[i]. Every lookup in one transmit instant hits the cache, so
	// Position is computed once per node per instant, not once per
	// (sender, receiver) pair.
	pos     []mobility.Point
	posTime []time.Duration

	grid      *grid
	gridTime  time.Duration // time of the last full re-bucketing
	gridFresh bool

	cand []int32 // scratch receiver-candidate buffer, reused per call

	rcFree []*reception // reception free list

	// Pre-bound event callbacks, so the hot path schedules no closures.
	startFn func(any, uint64)
	endFn   func(any, uint64)
	idleFn  func(any, uint64)

	// flt holds the fault-injection hooks (see fault.go); nil while no
	// fault has ever been installed, which keeps the fault-free hot path
	// to a single pointer test.
	flt *faults

	// Transmissions counts frames put on the air, for diagnostics.
	Transmissions uint64
	// Corrupted counts per-receiver receptions lost to collisions.
	Corrupted uint64
	// FaultStats counts fault-hook activity (zero without faults).
	FaultStats FaultStats
}

type nodeState struct {
	rx      ReceiverFunc
	signals int           // overlapping signals currently sensed
	txUntil time.Duration // end of this node's own transmission
	active  []*reception  // decodable receptions currently in the air here

	// onIdle holds one-shot channel-idle waiters; idleSpare is the
	// detached buffer from the previous checkIdle, kept so the two swap
	// roles and neither list ever reallocates in steady state.
	onIdle    []idleWait
	idleSpare []idleWait
}

type reception struct {
	from      int32
	dst       int32
	decodable bool
	corrupted bool
	payload   any
}

// New builds a medium over the given mobility model. Positions are sampled
// from the model at transmission start; a frame's receiver set is fixed at
// that instant (frames are microseconds long, far below node motion scale).
func New(s *sim.Simulator, model mobility.Model, cfg Config) *Medium {
	if cfg.CSRange < cfg.Range {
		cfg.CSRange = cfg.Range
	}
	// Clamp per-class carrier sense on a private copy (the caller's slice
	// stays untouched), mirroring the global clamp above.
	cfg.Classes = append([]Class(nil), cfg.Classes...)
	for i := range cfg.Classes {
		if cfg.Classes[i].CSRange < cfg.Classes[i].Range {
			cfg.Classes[i].CSRange = cfg.Classes[i].Range
		}
	}
	if cfg.GridWindow <= 0 {
		cfg.GridWindow = 100 * time.Millisecond
	}
	if cfg.GridSlack <= 0 {
		cfg.GridSlack = 50
	}
	n := model.NumNodes()
	// The grid's 3×3 lookup is exhaustive only if cells are at least as
	// wide as the largest range any transmitter reaches, so with mixed
	// classes the cell size must come from the class *maximum* — sizing
	// it from a class minimum (or the global default) would silently drop
	// far receivers of the strongest transmitters.
	maxCS := cfg.CSRange
	if len(cfg.Classes) > 0 {
		maxCS = cfg.Classes[0].CSRange
		for _, c := range cfg.Classes[1:] {
			if c.CSRange > maxCS {
				maxCS = c.CSRange
			}
		}
	}
	m := &Medium{
		sim:     s,
		model:   model,
		cfg:     cfg,
		nodes:   make([]nodeState, n),
		txRange: make([]float64, n),
		csRange: make([]float64, n),
		pos:     make([]mobility.Point, n),
		posTime: make([]time.Duration, n),
		grid:    newGrid(n, maxCS+cfg.GridSlack),
	}
	for i := 0; i < n; i++ {
		r, c := cfg.Range, cfg.CSRange
		if len(cfg.Classes) > 0 {
			cl := cfg.Classes[i%len(cfg.Classes)]
			r, c = cl.Range, cl.CSRange
		}
		m.txRange[i], m.csRange[i] = r, c
	}
	for i := range m.posTime {
		m.posTime[i] = -1 // sentinel: no position cached yet
	}
	m.startFn = m.signalStart
	m.endFn = m.signalEnd
	m.idleFn = m.idleAt
	return m
}

// Config returns the medium's configuration.
func (m *Medium) Config() Config { return m.cfg }

// Model exposes the mobility model driving node positions, for analysis
// tools (e.g. the topology oracle).
func (m *Medium) Model() mobility.Model { return m.model }

// Attach registers the frame-delivery callback for a node.
func (m *Medium) Attach(id int, rx ReceiverFunc) {
	m.nodes[id].rx = rx
}

// position returns node id's position at the current instant, computing
// it at most once per instant and keeping the node's grid bucket fresh.
func (m *Medium) position(id int) mobility.Point {
	now := m.sim.Now()
	if m.posTime[id] != now {
		m.pos[id] = m.model.Position(id, now)
		m.posTime[id] = now
		m.grid.update(id, m.pos[id])
	}
	return m.pos[id]
}

// maybeRefresh re-buckets every node once the grid's staleness window has
// elapsed, bounding how far any bucket can lag its node's true position.
// Amortized cost: one O(N) position pass per GridWindow of virtual time,
// versus one per transmission before the grid existed.
func (m *Medium) maybeRefresh() {
	now := m.sim.Now()
	if m.gridFresh && now-m.gridTime <= m.cfg.GridWindow {
		return
	}
	for i := range m.nodes {
		m.position(i)
	}
	m.gridTime = now
	m.gridFresh = true
}

// Busy reports whether node id currently senses the channel busy (a signal
// in the air within carrier-sense range, or its own transmission).
func (m *Medium) Busy(id int) bool {
	st := &m.nodes[id]
	return st.signals > 0 || st.txUntil > m.sim.Now()
}

// NotifyIdle registers a one-shot waiter invoked (as w.ChannelIdle(u))
// the next moment node id's channel becomes idle. If the channel is
// already idle the callback runs in a zero-delay event.
func (m *Medium) NotifyIdle(id int, w IdleWaiter, u uint64) {
	if !m.Busy(id) {
		m.sim.ScheduleTransient(0, idleNowFn, w, u)
		return
	}
	st := &m.nodes[id]
	st.onIdle = append(st.onIdle, idleWait{w: w, u: u})
}

// idleNowFn fires an already-idle NotifyIdle registration; package-level
// so scheduling it allocates no closure.
func idleNowFn(arg any, u uint64) { arg.(IdleWaiter).ChannelIdle(u) }

// idleAt is the pre-bound transient callback for the sender's own
// end-of-transmission idle check; the node index travels in u unboxed.
func (m *Medium) idleAt(_ any, u uint64) { m.checkIdle(int(u)) }

// AirTime returns how long a frame of the given size occupies the channel.
func (m *Medium) AirTime(bits int) time.Duration {
	return time.Duration(float64(bits) / m.cfg.BitRate * float64(time.Second))
}

// newReception draws a reception from the free list.
func (m *Medium) newReception(from, dst int, decodable bool, payload any) *reception {
	var rc *reception
	if n := len(m.rcFree); n > 0 {
		rc = m.rcFree[n-1]
		m.rcFree[n-1] = nil
		m.rcFree = m.rcFree[:n-1]
	} else {
		rc = &reception{}
	}
	rc.from = int32(from)
	rc.dst = int32(dst)
	rc.decodable = decodable
	rc.corrupted = false
	rc.payload = payload
	return rc
}

// Transmit puts a frame on the air from node src and returns its airtime.
// The MAC is responsible for carrier sensing before calling Transmit; the
// radio faithfully transmits (and collides) regardless.
func (m *Medium) Transmit(src, bits int, payload any) time.Duration {
	now := m.sim.Now()
	air := m.AirTime(bits)
	m.Transmissions++

	sender := &m.nodes[src]
	sender.txUntil = now + air
	// Receiving while transmitting corrupts anything arriving here.
	for _, rc := range sender.active {
		if !rc.corrupted {
			rc.corrupted = true
			m.Corrupted++
		}
	}
	m.sim.ScheduleTransient(air, m.idleFn, nil, uint64(src))

	m.maybeRefresh()
	srcPos := m.position(src)
	m.cand = m.grid.appendCandidates(srcPos, m.cand[:0])
	for _, c := range m.cand {
		i := int(c)
		if i == src || m.nodes[i].rx == nil {
			continue
		}
		if m.flt != nil && m.blocked(src, i) {
			m.FaultStats.Blocked++
			continue
		}
		d := srcPos.Dist(m.position(i))
		if d > m.csRange[src] {
			continue
		}
		rc := m.newReception(src, i, d <= m.txRange[src], payload)
		ref(payload) // the reception reads the payload until it ends
		m.sim.ScheduleTransient(m.cfg.PropDelay, m.startFn, rc, 0)
		m.sim.ScheduleTransient(m.cfg.PropDelay+air, m.endFn, rc, 0)
	}
	return air
}

func (m *Medium) signalStart(arg any, _ uint64) {
	rc := arg.(*reception)
	st := &m.nodes[rc.dst]
	st.signals++
	if rc.decodable {
		st.active = append(st.active, rc)
	}
	if st.signals > 1 {
		// Collision: every decodable reception currently in the air at this
		// node is lost, including the one that just began.
		for _, r := range st.active {
			if !r.corrupted {
				r.corrupted = true
				m.Corrupted++
			}
		}
	}
	if st.txUntil > m.sim.Now() && rc.decodable && !rc.corrupted {
		rc.corrupted = true
		m.Corrupted++
	}
}

func (m *Medium) signalEnd(arg any, _ uint64) {
	rc := arg.(*reception)
	st := &m.nodes[rc.dst]
	st.signals--
	if rc.decodable {
		for i, r := range st.active {
			if r == rc {
				st.active = append(st.active[:i], st.active[i+1:]...)
				break
			}
		}
		if !rc.corrupted && st.txUntil <= m.sim.Now() && st.rx != nil {
			if f := m.flt; f != nil && f.src != nil {
				m.deliverFaulty(f, rc)
			} else {
				st.rx(int(rc.from), rc.payload)
			}
		}
	}
	m.checkIdle(int(rc.dst))
	// The reception's start and end have both fired and it is off every
	// active list: drop its payload reference and recycle it.
	unref(rc.payload)
	rc.payload = nil
	m.rcFree = append(m.rcFree, rc)
}

func (m *Medium) checkIdle(id int) {
	st := &m.nodes[id]
	if st.signals > 0 || st.txUntil > m.sim.Now() {
		return
	}
	if len(st.onIdle) == 0 {
		return
	}
	// Detach before invoking — a waiter may re-register during the loop —
	// and keep the detached buffer as the next registration list, so the
	// two buffers alternate and neither ever reallocates once warm.
	cbs := st.onIdle
	st.onIdle = st.idleSpare[:0]
	for i, w := range cbs {
		cbs[i] = idleWait{}
		w.w.ChannelIdle(w.u)
	}
	st.idleSpare = cbs[:0]
}

// TxRange returns node id's decodable transmit range in meters.
func (m *Medium) TxRange(id int) float64 { return m.txRange[id] }

// TxRanges returns every node's decodable transmit range, indexed by node
// id. The slice is the medium's own — callers must not mutate it. It
// feeds the topology oracle's per-node connectivity snapshots.
func (m *Medium) TxRanges() []float64 { return m.txRange }

// InRangeFrom reports whether dst can currently decode src's
// transmissions. The predicate is directional: with mixed transmit-power
// classes InRangeFrom(a, b) says nothing about InRangeFrom(b, a).
func (m *Medium) InRangeFrom(src, dst int) bool {
	return m.position(src).Dist(m.position(dst)) <= m.txRange[src]
}

// InRange reports whether two nodes can currently decode each other — a
// usable link, since unicast data needs the return direction for the MAC
// ACK. With uniform ranges this is the classic symmetric disk predicate.
func (m *Medium) InRange(a, b int) bool {
	d := m.position(a).Dist(m.position(b))
	return d <= m.txRange[a] && d <= m.txRange[b]
}

// ReachableFrom returns the nodes that can currently decode id's
// transmissions (id's out-neighbors), in ascending id order. With
// heterogeneous classes this is NOT the set id can hear from.
func (m *Medium) ReachableFrom(id int) []int {
	return m.ReachableFromAppend(id, nil)
}

// ReachableFromAppend appends id's out-neighbors to out (in ascending id
// order) and returns the extended slice. Candidates come from the grid,
// whose cells are sized from the maximum class range, so the scan stays
// exhaustive for the strongest transmitter.
func (m *Medium) ReachableFromAppend(id int, out []int) []int {
	m.maybeRefresh()
	p := m.position(id)
	base := len(out)
	m.cand = m.grid.appendCandidates(p, m.cand[:0])
	for _, c := range m.cand {
		i := int(c)
		if i == id {
			continue
		}
		if p.Dist(m.position(i)) <= m.txRange[id] {
			out = append(out, i)
		}
	}
	sort.Ints(out[base:])
	return out
}

// Neighbors returns the nodes id currently shares a usable (mutually
// decodable) link with, in ascending id order. It is an observability
// helper for analysis tools, not a protocol input.
func (m *Medium) Neighbors(id int) []int {
	return m.NeighborsAppend(id, nil)
}

// NeighborsAppend appends the nodes id currently shares a usable link
// with to out (in ascending id order) and returns the extended slice,
// allowing callers that poll connectivity (loop checkers, topology
// oracles) to reuse one buffer across calls instead of allocating per
// query. Under uniform ranges this is exactly the old within-Range set.
func (m *Medium) NeighborsAppend(id int, out []int) []int {
	m.maybeRefresh()
	p := m.position(id)
	base := len(out)
	m.cand = m.grid.appendCandidates(p, m.cand[:0])
	for _, c := range m.cand {
		i := int(c)
		if i == id {
			continue
		}
		if d := p.Dist(m.position(i)); d <= m.txRange[id] && d <= m.txRange[i] {
			out = append(out, i)
		}
	}
	sort.Ints(out[base:])
	return out
}
