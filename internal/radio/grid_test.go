package radio_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/sim"
)

// The spatial grid is only a candidate filter: receiver sets must be
// byte-for-byte the sets the seed's brute-force O(N) scan produced. These
// property tests compare the medium's observable behaviour (who decodes a
// frame, who senses the channel busy) against an independent brute-force
// oracle computed straight from the mobility model, across random
// positions, grid-boundary straddlers, and moving nodes.

// classRanges resolves node i's transmit/carrier-sense ranges exactly as
// the medium documents: Classes[i % len(Classes)] when classes are set,
// the global Range/CSRange otherwise, with carrier sense clamped to at
// least the decodable range.
func classRanges(cfg radio.Config, i int) (tx, cs float64) {
	tx, cs = cfg.Range, cfg.CSRange
	if len(cfg.Classes) > 0 {
		cl := cfg.Classes[i%len(cfg.Classes)]
		tx, cs = cl.Range, cl.CSRange
	}
	if cs < tx {
		cs = tx
	}
	return tx, cs
}

// oracleSets computes the in-range (decodable) and carrier-sense sets of
// src from exact model positions at time at, using the transmitter's own
// class ranges (reception is governed by the sender's power, so the sets
// are directional under mixed classes).
func oracleSets(model mobility.Model, cfg radio.Config, src int, at time.Duration) (inRange, senses map[int]bool) {
	inRange = make(map[int]bool)
	senses = make(map[int]bool)
	tx, cs := classRanges(cfg, src)
	p := model.Position(src, at)
	for i := 0; i < model.NumNodes(); i++ {
		if i == src {
			continue
		}
		d := p.Dist(model.Position(i, at))
		if d <= tx {
			inRange[i] = true
		}
		if d <= cs {
			senses[i] = true
		}
	}
	return inRange, senses
}

// checkTransmits drives one transmission per entry of srcs, spaced widely
// enough that frames never overlap, and asserts after each that (a) the
// decoded set equals the oracle's in-range set and (b) the mid-flight
// Busy set equals the oracle's carrier-sense set. model and oracle must
// be two independently constructed but identical mobility models.
func checkTransmits(t *testing.T, model, oracle mobility.Model, cfg radio.Config, srcs []int, gap time.Duration) {
	t.Helper()
	s := sim.New()
	m := radio.New(s, model, cfg)
	n := model.NumNodes()

	decoded := make(map[int]bool)
	for i := 0; i < n; i++ {
		i := i
		m.Attach(i, func(from int, payload any) { decoded[i] = true })
	}

	const bits = 8192 // ≈4 ms airtime at 2 Mb/s, well under gap
	air := m.AirTime(bits)
	if air+cfg.PropDelay >= gap {
		t.Fatalf("frames overlap: air %v ≥ gap %v", air, gap)
	}

	for k, src := range srcs {
		k, src := k, src
		at := time.Duration(k) * gap
		s.At(at, func() {
			for i := range decoded {
				delete(decoded, i)
			}
			m.Transmit(src, bits, k)
		})
		// Probe carrier sense mid-flight: just after the signal arrives
		// everywhere (prop delay + 1ns beats the same-instant start events).
		s.At(at+cfg.PropDelay+time.Nanosecond, func() {
			_, senses := oracleSets(oracle, cfg, src, at)
			for i := 0; i < n; i++ {
				if i == src {
					if !m.Busy(i) {
						t.Errorf("t=%v src=%d: sender does not sense its own transmission", at, src)
					}
					continue
				}
				if m.Busy(i) != senses[i] {
					t.Errorf("t=%v src=%d: Busy(%d)=%v, oracle carrier-sense says %v",
						at, src, i, m.Busy(i), senses[i])
				}
			}
		})
		// After the frame lands, the decoded set must match the oracle.
		s.At(at+cfg.PropDelay+air+time.Nanosecond, func() {
			inRange, _ := oracleSets(oracle, cfg, src, at)
			for i := 0; i < n; i++ {
				if i == src {
					continue
				}
				if decoded[i] != inRange[i] {
					t.Errorf("t=%v src=%d: decoded[%d]=%v, oracle in-range says %v",
						at, src, i, decoded[i], inRange[i])
				}
			}
		})
	}
	s.RunAll()
}

func TestGridMatchesBruteForceRandomStatic(t *testing.T) {
	cfg := radio.DefaultConfig()
	r := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		// Terrain much larger than one grid cell so many cells are live.
		pts := make([]mobility.Point, 60)
		for i := range pts {
			pts[i] = mobility.Point{X: r.Float64() * 4000, Y: r.Float64() * 3000}
		}
		srcs := make([]int, 12)
		for i := range srcs {
			srcs[i] = r.Intn(len(pts))
		}
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			checkTransmits(t, mobility.NewStatic(pts), mobility.NewStatic(pts), cfg, srcs, 100*time.Millisecond)
		})
	}
}

func TestGridMatchesBruteForceBoundaryStraddlers(t *testing.T) {
	cfg := radio.DefaultConfig()
	cell := cfg.CSRange + 50 // the grid's cell size at defaults
	eps := 1e-9
	// Nodes packed directly on and around cell corners and edges, the
	// degenerate geometry for a spatial hash, plus exact-distance pairs.
	var pts []mobility.Point
	for _, cx := range []float64{0, cell, 2 * cell} {
		for _, cy := range []float64{0, cell} {
			pts = append(pts,
				mobility.Point{X: cx, Y: cy},
				mobility.Point{X: cx - eps, Y: cy},
				mobility.Point{X: cx + eps, Y: cy},
				mobility.Point{X: cx, Y: cy - eps},
				mobility.Point{X: cx, Y: cy + eps},
				mobility.Point{X: cx + cfg.Range, Y: cy},         // exactly decodable
				mobility.Point{X: cx + cfg.CSRange, Y: cy},       // exactly at CS edge
				mobility.Point{X: cx + cfg.CSRange + eps, Y: cy}, // just outside
				mobility.Point{X: cx - cfg.Range/2, Y: cy + 10},  // interior
			)
		}
	}
	srcs := make([]int, 0, len(pts))
	for i := range pts {
		srcs = append(srcs, i)
	}
	checkTransmits(t, mobility.NewStatic(pts), mobility.NewStatic(pts), cfg, srcs, 100*time.Millisecond)
}

// mixedConfig is the regression geometry for heterogeneous grid sizing:
// the global Range/CSRange (which the grid used to be sized from) belong
// to the *weakest* class, while the strongest class transmits far past
// it. If cell sizing ever reverts to the global or a non-maximum range,
// the strong class's far receivers fall outside the 3×3 scan and these
// oracle comparisons fail.
func mixedConfig() radio.Config {
	cfg := radio.DefaultConfig()
	cfg.Range, cfg.CSRange = 150, 300
	cfg.Classes = []radio.Class{
		{Range: 150, CSRange: 300},
		{Range: 275, CSRange: 550},
		{Range: 450, CSRange: 900},
	}
	return cfg
}

func TestGridMatchesBruteForceMixedRangesStatic(t *testing.T) {
	cfg := mixedConfig()
	r := rng.New(17)
	for trial := 0; trial < 20; trial++ {
		pts := make([]mobility.Point, 60)
		for i := range pts {
			pts[i] = mobility.Point{X: r.Float64() * 4000, Y: r.Float64() * 3000}
		}
		srcs := make([]int, 12)
		for i := range srcs {
			srcs[i] = r.Intn(len(pts))
		}
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			checkTransmits(t, mobility.NewStatic(pts), mobility.NewStatic(pts), cfg, srcs, 100*time.Millisecond)
		})
	}
}

func TestGridMatchesBruteForceMixedRangesBoundary(t *testing.T) {
	cfg := mixedConfig()
	cell := 900.0 + 50 // max class CSRange + slack: the correct cell size
	eps := 1e-9
	// Straddlers around the *max-range* cell corners, plus exact-distance
	// receivers at every class's decode and carrier-sense edge. Node ids
	// cycle through classes (i % 3), so sources of all three classes hit
	// the degenerate geometry.
	var pts []mobility.Point
	for _, cx := range []float64{0, cell, 2 * cell} {
		for _, cy := range []float64{0, cell} {
			pts = append(pts,
				mobility.Point{X: cx, Y: cy},
				mobility.Point{X: cx - eps, Y: cy},
				mobility.Point{X: cx + eps, Y: cy},
				mobility.Point{X: cx + 150, Y: cy}, // weak class decode edge
				mobility.Point{X: cx + 450, Y: cy}, // strong class decode edge
				mobility.Point{X: cx + 550, Y: cy}, // mid class CS edge
				mobility.Point{X: cx + 900, Y: cy}, // strong class CS edge
				mobility.Point{X: cx + 900 + eps, Y: cy},
			)
		}
	}
	srcs := make([]int, 0, len(pts))
	for i := range pts {
		srcs = append(srcs, i)
	}
	checkTransmits(t, mobility.NewStatic(pts), mobility.NewStatic(pts), cfg, srcs, 100*time.Millisecond)
}

func TestGridMatchesBruteForceMixedRangesMoving(t *testing.T) {
	cfg := mixedConfig()
	for seed := int64(1); seed <= 3; seed++ {
		model, oracle := waypointPair(40, 20, 0, 200+seed)
		r := rng.New(300 + seed)
		srcs := make([]int, 200)
		for i := range srcs {
			srcs[i] = r.Intn(40)
		}
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			checkTransmits(t, model, oracle, cfg, srcs, 500*time.Millisecond)
		})
	}
}

func waypointPair(n int, maxSpeed float64, pause time.Duration, seed int64) (a, b mobility.Model) {
	mk := func() mobility.Model {
		return mobility.NewWaypoint(n, mobility.WaypointConfig{
			Terrain:  mobility.Terrain{Width: 3000, Height: 2400},
			MinSpeed: 1,
			MaxSpeed: maxSpeed,
			Pause:    pause,
		}, rng.New(seed))
	}
	// Waypoint trajectories are query-pattern invariant (per-node RNG
	// streams), so two identically seeded models stay in lockstep no
	// matter how differently the medium and the oracle query them.
	return mk(), mk()
}

func TestGridMatchesBruteForceMovingNodes(t *testing.T) {
	cfg := radio.DefaultConfig()
	for seed := int64(1); seed <= 4; seed++ {
		model, oracle := waypointPair(40, 20, 0, seed)
		r := rng.New(100 + seed)
		// 240 transmissions spread over 120 s of virtual time: nodes cross
		// many cell boundaries and every bucket goes stale repeatedly.
		srcs := make([]int, 240)
		for i := range srcs {
			srcs[i] = r.Intn(40)
		}
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			checkTransmits(t, model, oracle, cfg, srcs, 500*time.Millisecond)
		})
	}
}

func TestGridMatchesBruteForceFastMovers(t *testing.T) {
	// 200 m/s movers: 20 m of drift per 100 ms staleness window, still
	// within the 50 m default slack. Exercises the staleness contract
	// hard rather than the paper's gentle 20 m/s.
	cfg := radio.DefaultConfig()
	model, oracle := waypointPair(30, 200, 0, 9)
	r := rng.New(99)
	srcs := make([]int, 160)
	for i := range srcs {
		srcs[i] = r.Intn(30)
	}
	checkTransmits(t, model, oracle, cfg, srcs, 250*time.Millisecond)
}

func TestNeighborsMatchesBruteForce(t *testing.T) {
	cfg := radio.DefaultConfig()
	model, oracle := waypointPair(50, 20, 0, 5)
	s := sim.New()
	m := radio.New(s, model, cfg)

	var buf []int
	for step := 0; step < 200; step++ {
		at := time.Duration(step) * 300 * time.Millisecond
		id := step % 50
		s.At(at, func() {
			buf = m.NeighborsAppend(id, buf[:0])
			inRange, _ := oracleSets(oracle, cfg, id, at)
			if len(buf) != len(inRange) {
				t.Errorf("t=%v: Neighbors(%d) has %d entries, oracle %d", at, id, len(buf), len(inRange))
				return
			}
			prev := -1
			for _, v := range buf {
				if !inRange[v] {
					t.Errorf("t=%v: Neighbors(%d) contains %d, oracle disagrees", at, id, v)
				}
				if v <= prev {
					t.Errorf("t=%v: Neighbors(%d) not in ascending order: %v", at, id, buf)
				}
				prev = v
			}
		})
	}
	s.RunAll()
}

// TestDirectionalQueriesMixedRanges pins the directional query API on a
// hand-placed asymmetric pair and cross-checks ReachableFrom/Neighbors
// against the brute-force oracle under mixed classes: ReachableFrom is
// the transmitter-range set, Neighbors only keeps mutually decodable
// links.
func TestDirectionalQueriesMixedRanges(t *testing.T) {
	cfg := radio.DefaultConfig()
	cfg.Classes = []radio.Class{
		{Range: 400, CSRange: 800}, // node 0: long
		{Range: 150, CSRange: 300}, // node 1: short
	}
	// 250 m apart: within 0's range, beyond 1's.
	pts := []mobility.Point{{X: 0, Y: 0}, {X: 250, Y: 0}}
	s := sim.New()
	m := radio.New(s, mobility.NewStatic(pts), cfg)

	if !m.InRangeFrom(0, 1) {
		t.Error("InRangeFrom(0,1): long-range node should reach the short one")
	}
	if m.InRangeFrom(1, 0) {
		t.Error("InRangeFrom(1,0): short-range node must not reach back")
	}
	if m.InRange(0, 1) || m.InRange(1, 0) {
		t.Error("InRange: a one-way pair is not a usable link")
	}
	if got := m.ReachableFrom(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("ReachableFrom(0) = %v, want [1]", got)
	}
	if got := m.ReachableFrom(1); len(got) != 0 {
		t.Errorf("ReachableFrom(1) = %v, want []", got)
	}
	if got := m.Neighbors(0); len(got) != 0 {
		t.Errorf("Neighbors(0) = %v, want [] (link is one-way)", got)
	}
	if got, want := m.TxRange(0), 400.0; got != want {
		t.Errorf("TxRange(0) = %v, want %v", got, want)
	}
	if got := m.TxRanges(); len(got) != 2 || got[1] != 150 {
		t.Errorf("TxRanges() = %v, want [400 150]", got)
	}

	// Randomized cross-check of the directional sets against the oracle.
	mcfg := mixedConfig()
	r := rng.New(23)
	rpts := make([]mobility.Point, 50)
	for i := range rpts {
		rpts[i] = mobility.Point{X: r.Float64() * 3000, Y: r.Float64() * 2000}
	}
	s2 := sim.New()
	m2 := radio.New(s2, mobility.NewStatic(rpts), mcfg)
	oracle := mobility.NewStatic(rpts)
	var buf []int
	for id := 0; id < len(rpts); id++ {
		inRange, _ := oracleSets(oracle, mcfg, id, 0)
		buf = m2.ReachableFromAppend(id, buf[:0])
		if len(buf) != len(inRange) {
			t.Errorf("ReachableFrom(%d): %d entries, oracle %d", id, len(buf), len(inRange))
		}
		for _, v := range buf {
			if !inRange[v] {
				t.Errorf("ReachableFrom(%d) contains %d, oracle disagrees", id, v)
			}
		}
		for _, v := range m2.Neighbors(id) {
			back, _ := oracleSets(oracle, mcfg, v, 0)
			if !inRange[v] || !back[id] {
				t.Errorf("Neighbors(%d) contains %d but the link is not mutual", id, v)
			}
		}
	}
}
