package radio

import (
	"math"

	"github.com/manetlab/ldr/internal/mobility"
)

// grid is a uniform spatial hash over node positions, keyed by cells of
// side cellSize ≥ max carrier-sense range + GridSlack — the *maximum*
// over the medium's transmit-power classes, because the 3×3 scan must be
// exhaustive for the strongest transmitter, not an average one. It
// answers "which nodes could be within any transmitter's CSRange of this
// point?" by scanning the 3×3 cell neighborhood, replacing the O(N)
// all-nodes scan in Transmit.
//
// Bucket positions are allowed to go stale for up to Config.GridWindow of
// virtual time (the medium refreshes every node at least that often, and
// opportunistically whenever it computes a node's exact position). The
// 3×3 lookup stays exhaustive while every cached position is within
// GridSlack meters of the node's true position, i.e. for node speeds up
// to GridSlack/GridWindow — 500 m/s at the defaults, far above the
// paper's 20 m/s. Candidate sets are a superset of the truth; the medium
// always re-checks candidates against exact positions, so receiver sets
// are identical to the brute-force scan, not an approximation.
type grid struct {
	cellSize float64
	cells    map[uint64][]int32
	cellOf   []uint64 // current cell key per node
	inCell   []bool   // whether the node has been bucketed yet
}

func newGrid(n int, cellSize float64) *grid {
	return &grid{
		cellSize: cellSize,
		cells:    make(map[uint64][]int32),
		cellOf:   make([]uint64, n),
		inCell:   make([]bool, n),
	}
}

// cellKey packs the cell coordinates of p into one map key. Coordinates
// are floored, so negative positions (scripted models) hash correctly.
func (g *grid) cellKey(p mobility.Point) uint64 {
	cx := int32(math.Floor(p.X / g.cellSize))
	cy := int32(math.Floor(p.Y / g.cellSize))
	return uint64(uint32(cx))<<32 | uint64(uint32(cy))
}

// update moves node id to the cell containing p, if it changed.
func (g *grid) update(id int, p mobility.Point) {
	k := g.cellKey(p)
	if g.inCell[id] {
		if k == g.cellOf[id] {
			return
		}
		g.remove(id)
	}
	g.cells[k] = append(g.cells[k], int32(id))
	g.cellOf[id] = k
	g.inCell[id] = true
}

func (g *grid) remove(id int) {
	k := g.cellOf[id]
	b := g.cells[k]
	for i, v := range b {
		if v == int32(id) {
			b[i] = b[len(b)-1]
			g.cells[k] = b[:len(b)-1]
			break
		}
	}
}

// appendCandidates appends every node bucketed in the 3×3 cell
// neighborhood of p to out and returns the extended slice. The result is
// a superset of all nodes within cellSize - GridSlack meters of p
// (assuming the staleness contract holds); callers must distance-check
// candidates against exact positions.
func (g *grid) appendCandidates(p mobility.Point, out []int32) []int32 {
	cx := int32(math.Floor(p.X / g.cellSize))
	cy := int32(math.Floor(p.Y / g.cellSize))
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			k := uint64(uint32(cx+dx))<<32 | uint64(uint32(cy+dy))
			out = append(out, g.cells[k]...)
		}
	}
	return out
}
