package radio_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/sim"
)

// rig builds a medium over static node positions and records deliveries.
type rig struct {
	s        *sim.Simulator
	m        *radio.Medium
	received map[int][]any // node → payloads decoded
}

func newRig(pts []mobility.Point) *rig {
	s := sim.New()
	r := &rig{
		s:        s,
		m:        radio.New(s, mobility.NewStatic(pts), radio.DefaultConfig()),
		received: make(map[int][]any),
	}
	for i := range pts {
		i := i
		r.m.Attach(i, func(_ int, payload any) {
			r.received[i] = append(r.received[i], payload)
		})
	}
	return r
}

func TestDeliveryWithinRange(t *testing.T) {
	r := newRig([]mobility.Point{{X: 0}, {X: 200}, {X: 600}})
	r.s.Schedule(0, func() { r.m.Transmit(0, 1000, "hello") })
	r.s.RunAll()

	if len(r.received[1]) != 1 || r.received[1][0] != "hello" {
		t.Fatalf("node 1 (200 m away) received %v, want [hello]", r.received[1])
	}
	if len(r.received[2]) != 0 {
		t.Fatalf("node 2 (600 m away, beyond CS range) received %v", r.received[2])
	}
}

func TestConcurrentTransmissionsCollide(t *testing.T) {
	// Nodes 0 and 2 both in range of node 1; simultaneous frames collide.
	r := newRig([]mobility.Point{{X: 0}, {X: 200}, {X: 400}})
	r.s.Schedule(0, func() { r.m.Transmit(0, 1000, "a") })
	r.s.Schedule(0, func() { r.m.Transmit(2, 1000, "b") })
	r.s.RunAll()

	if len(r.received[1]) != 0 {
		t.Fatalf("node 1 decoded %v during a collision", r.received[1])
	}
	if r.m.Corrupted == 0 {
		t.Fatal("collision not recorded in Corrupted counter")
	}
}

func TestPartialOverlapCollides(t *testing.T) {
	r := newRig([]mobility.Point{{X: 0}, {X: 200}, {X: 400}})
	// Second transmission starts halfway through the first (1000 bits at
	// 2 Mb/s = 500 µs airtime).
	r.s.Schedule(0, func() { r.m.Transmit(0, 1000, "a") })
	r.s.Schedule(250*time.Microsecond, func() { r.m.Transmit(2, 1000, "b") })
	r.s.RunAll()

	if len(r.received[1]) != 0 {
		t.Fatalf("node 1 decoded %v despite overlapping signals", r.received[1])
	}
}

func TestSequentialTransmissionsBothDecode(t *testing.T) {
	r := newRig([]mobility.Point{{X: 0}, {X: 200}})
	r.s.Schedule(0, func() { r.m.Transmit(0, 1000, "first") })
	r.s.Schedule(time.Millisecond, func() { r.m.Transmit(0, 1000, "second") })
	r.s.RunAll()

	if len(r.received[1]) != 2 {
		t.Fatalf("node 1 received %d frames, want 2", len(r.received[1]))
	}
}

func TestHiddenTerminalInterference(t *testing.T) {
	// 0 and 2 are 800 m apart (out of each other's CS range via default
	// 550 m) but node 1 sits between them: classic hidden terminals.
	r := newRig([]mobility.Point{{X: 0}, {X: 400}, {X: 800}})
	if r.m.Busy(2) {
		t.Fatal("node 2 busy before any transmission")
	}
	r.s.Schedule(0, func() {
		r.m.Transmit(0, 4000, "a")
		if r.m.Busy(2) {
			t.Error("node 2 senses node 0's signal from 800 m")
		}
	})
	r.s.Schedule(100*time.Microsecond, func() { r.m.Transmit(2, 4000, "b") })
	r.s.RunAll()

	if len(r.received[1]) != 0 {
		t.Fatalf("victim decoded %v despite hidden-terminal collision", r.received[1])
	}
}

func TestReceivingWhileTransmittingLosesFrame(t *testing.T) {
	r := newRig([]mobility.Point{{X: 0}, {X: 200}})
	// Node 1 starts transmitting shortly after node 0; node 1 cannot
	// decode node 0's frame.
	r.s.Schedule(0, func() { r.m.Transmit(0, 4000, "from0") })
	r.s.Schedule(50*time.Microsecond, func() { r.m.Transmit(1, 400, "from1") })
	r.s.RunAll()

	for _, p := range r.received[1] {
		if p == "from0" {
			t.Fatal("node 1 decoded a frame that arrived while it was transmitting")
		}
	}
}

func TestBusyDuringTransmission(t *testing.T) {
	r := newRig([]mobility.Point{{X: 0}, {X: 200}})
	r.s.Schedule(0, func() {
		r.m.Transmit(0, 2000, "x") // 1 ms airtime at 2 Mb/s
	})
	r.s.Schedule(500*time.Microsecond, func() {
		if !r.m.Busy(0) {
			t.Error("sender not busy during its own transmission")
		}
		if !r.m.Busy(1) {
			t.Error("receiver not busy mid-reception")
		}
	})
	r.s.Schedule(2*time.Millisecond, func() {
		if r.m.Busy(0) || r.m.Busy(1) {
			t.Error("channel still busy after the frame ended")
		}
	})
	r.s.RunAll()
}

// idleFunc adapts a func to the IdleWaiter interface for tests.
type idleFunc func(u uint64)

func (f idleFunc) ChannelIdle(u uint64) { f(u) }

func TestNotifyIdleFiresWhenChannelClears(t *testing.T) {
	r := newRig([]mobility.Point{{X: 0}, {X: 200}})
	var idleAt time.Duration
	r.s.Schedule(0, func() { r.m.Transmit(0, 2000, "x") })
	// Register once the signal has propagated and the channel is busy.
	r.s.Schedule(10*time.Microsecond, func() {
		if !r.m.Busy(1) {
			t.Error("channel not busy 10µs into a 1ms frame")
		}
		r.m.NotifyIdle(1, idleFunc(func(uint64) { idleAt = r.s.Now() }), 0)
	})
	r.s.RunAll()

	want := time.Millisecond + time.Microsecond // airtime + propagation
	if idleAt != want {
		t.Fatalf("idle callback at %v, want %v", idleAt, want)
	}
}

func TestNotifyIdleImmediateWhenIdle(t *testing.T) {
	r := newRig([]mobility.Point{{X: 0}, {X: 200}})
	fired := false
	seen := uint64(0)
	r.m.NotifyIdle(0, idleFunc(func(u uint64) { fired = true; seen = u }), 7)
	r.s.RunAll()
	if !fired {
		t.Fatal("NotifyIdle on an idle channel never fired")
	}
	if seen != 7 {
		t.Fatalf("idle callback saw u=%d, want the registered scalar 7", seen)
	}
}

func TestAirTime(t *testing.T) {
	r := newRig([]mobility.Point{{X: 0}})
	if got := r.m.AirTime(2_000_000); got != time.Second {
		t.Fatalf("AirTime(2Mb) = %v, want 1s at 2 Mb/s", got)
	}
	if got := r.m.AirTime(1000); got != 500*time.Microsecond {
		t.Fatalf("AirTime(1000 bits) = %v, want 500µs", got)
	}
}

func TestNeighborsAndInRange(t *testing.T) {
	r := newRig([]mobility.Point{{X: 0}, {X: 200}, {X: 400}, {X: 1000}})
	if !r.m.InRange(0, 1) || r.m.InRange(0, 2) {
		t.Fatal("InRange wrong for 275 m unit disk")
	}
	n := r.m.Neighbors(1)
	if len(n) != 2 || n[0] != 0 || n[1] != 2 {
		t.Fatalf("Neighbors(1) = %v, want [0 2]", n)
	}
}
