// Package dual implements a single-destination version of the Diffusing
// Update Algorithm (DUAL, Garcia-Luna-Aceves 1993) — the loop-free
// distance-vector algorithm whose feasibility condition LDR's Numbered
// Distance Condition descends from, and whose *coordination machinery*
// LDR's destination-controlled sequence numbers eliminate.
//
// DUAL runs over reliable, in-order links (it was designed for wire-line
// networks; EIGRP is its production descendant). A node may switch
// successor locally only when the Source Node Condition holds — some
// neighbor's reported distance is strictly below the node's feasible
// distance. Otherwise it must become *active*: freeze its route, send
// queries to every neighbor, and wait for all replies (a diffusing
// computation, Dijkstra–Scholten style) before resetting its feasible
// distance and choosing again.
//
// The package exists to make the paper's §1 comparison concrete and
// measurable: the bench in bench_test.go counts coordination messages per
// topology change for DUAL against LDR's purely local NDC decision. The
// implementation follows the classic algorithm but simplifies the
// active-state bookkeeping to a single diffusing computation per node at
// a time (no reply-status matrix across four active states); queries
// reaching an already-active node are answered immediately with its
// frozen distance, which preserves termination and loop-freedom at the
// price of occasionally suboptimal first answers — both properties the
// tests verify.
package dual

import (
	"fmt"
	"time"

	"github.com/manetlab/ldr/internal/sim"
)

// Infinity marks an unreachable destination.
const Infinity = 1 << 24

// msgKind labels DUAL's three message types.
type msgKind uint8

const (
	msgUpdate msgKind = iota + 1
	msgQuery
	msgReply
)

func (k msgKind) String() string {
	switch k {
	case msgUpdate:
		return "update"
	case msgQuery:
		return "query"
	case msgReply:
		return "reply"
	default:
		return "?"
	}
}

// message is one DUAL control message for the single destination.
type message struct {
	kind msgKind
	from int
	dist int
}

// Network is a wire-line topology running DUAL toward one destination.
type Network struct {
	sim     *sim.Simulator
	dest    int
	latency time.Duration
	nodes   []*node
	links   map[[2]int]int // cost per undirected edge

	// Messages counts control messages by kind, the coordination-cost
	// measure the LDR comparison uses.
	Messages map[string]int
}

type node struct {
	id             int
	dist           int
	fd             int
	successor      int         // -1 when none
	reported       map[int]int // neighbor → last distance it advertised
	active         bool
	pending        map[int]bool // neighbors owing a reply
	frozen         int          // distance advertised while active
	pendingReplyTo []int        // queriers awaiting this node's own computation
}

// NewNetwork creates a DUAL network of n nodes with the given destination.
// Links are added with AddLink before Run-style event injection.
func NewNetwork(s *sim.Simulator, n, dest int, latency time.Duration) *Network {
	nw := &Network{
		sim:      s,
		dest:     dest,
		latency:  latency,
		links:    make(map[[2]int]int),
		Messages: make(map[string]int),
	}
	for i := 0; i < n; i++ {
		nd := &node{
			id:        i,
			dist:      Infinity,
			fd:        Infinity,
			successor: -1,
			reported:  make(map[int]int),
			pending:   make(map[int]bool),
		}
		if i == dest {
			nd.dist, nd.fd = 0, 0
			nd.successor = i
		}
		nw.nodes = append(nw.nodes, nd)
	}
	return nw
}

func edge(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// AddLink installs (or re-costs) the undirected link a–b and triggers the
// distributed recomputation.
func (nw *Network) AddLink(a, b, cost int) {
	nw.links[edge(a, b)] = cost
	// Each endpoint learns the other's current advertised distance.
	nw.send(b, a, msgUpdate, nw.nodes[b].advertised())
	nw.send(a, b, msgUpdate, nw.nodes[a].advertised())
}

// RemoveLink deletes the link a–b and lets DUAL reconverge.
func (nw *Network) RemoveLink(a, b int) {
	delete(nw.links, edge(a, b))
	na, nb := nw.nodes[a], nw.nodes[b]
	delete(na.reported, b)
	delete(nb.reported, a)
	delete(na.pending, b)
	delete(nb.pending, a)
	nw.sim.Schedule(0, func() { nw.recompute(a) })
	nw.sim.Schedule(0, func() { nw.recompute(b) })
}

// neighbors lists the current neighbors of id with costs.
func (nw *Network) neighbors(id int) map[int]int {
	out := make(map[int]int)
	for e, c := range nw.links {
		if e[0] == id {
			out[e[1]] = c
		} else if e[1] == id {
			out[e[0]] = c
		}
	}
	return out
}

// advertised is the distance a node currently reports to its neighbors.
func (n *node) advertised() int {
	if n.active {
		return n.frozen
	}
	return n.dist
}

// send transports one control message over a (reliable) link.
func (nw *Network) send(from, to int, kind msgKind, dist int) {
	if _, ok := nw.links[edge(from, to)]; !ok && kind != msgUpdate {
		return
	}
	nw.Messages[kind.String()]++
	nw.sim.Schedule(nw.latency, func() {
		nw.receive(to, message{kind: kind, from: from, dist: dist})
	})
}

func (nw *Network) receive(id int, m message) {
	n := nw.nodes[id]
	if _, stillLinked := nw.links[edge(id, m.from)]; !stillLinked {
		return // link vanished while the message was in flight
	}
	switch m.kind {
	case msgUpdate:
		n.reported[m.from] = m.dist
		nw.recompute(id)
	case msgQuery:
		n.reported[m.from] = m.dist
		if id == nw.dest {
			nw.send(id, m.from, msgReply, 0)
			return
		}
		if n.active {
			if m.from == n.successor {
				// A query from the successor means our frozen distance is
				// built on the very route being torn down; the reply must
				// wait for our own computation to complete.
				n.pendingReplyTo = append(n.pendingReplyTo, m.from)
				return
			}
			// Non-successor queriers get the frozen distance immediately
			// (they are not downstream of us on the route in question).
			nw.send(id, m.from, msgReply, n.frozen)
			return
		}
		// Passive: recompute; if still feasible, answer with the result,
		// otherwise this node goes active itself and will answer when its
		// own computation completes.
		nw.recompute(id)
		if !n.active {
			nw.send(id, m.from, msgReply, n.dist)
		} else {
			n.pendingReplyTo = append(n.pendingReplyTo, m.from)
		}
	case msgReply:
		if !n.active {
			return
		}
		n.reported[m.from] = m.dist
		delete(n.pending, m.from)
		if len(n.pending) == 0 {
			nw.completeDiffusing(id)
		}
	}
}

// recompute applies the Source Node Condition at node id.
func (nw *Network) recompute(id int) {
	n := nw.nodes[id]
	if id == nw.dest || n.active {
		return
	}
	nbs := nw.neighbors(id)
	best, bestVia := Infinity, -1
	feasible := false
	for nb, cost := range nbs {
		rd, ok := n.reported[nb]
		if !ok {
			continue
		}
		d := rd + cost
		if d >= Infinity {
			d = Infinity
		}
		if d < best || (d == best && nb == n.successor) {
			best, bestVia = d, nb
		}
	}
	// The distance through the current successor, which is what a node
	// must freeze and advertise while active. If the successor link is
	// gone (or was never set) this is Infinity — crucially NOT the best
	// distance over other neighbors, whose reports may be stale values
	// that route back through us (the count-to-infinity poison DUAL's
	// freezing discipline exists to prevent).
	viaSucc := Infinity
	if n.successor >= 0 && n.successor != id {
		if cost, linked := nbs[n.successor]; linked {
			if rd, ok := n.reported[n.successor]; ok && rd+cost < Infinity {
				viaSucc = rd + cost
			}
		}
	}
	if best >= Infinity {
		// Unreachability is a valid resting state: no diffusing
		// computation is needed to *stay* at infinity, only to get there
		// from a finite distance.
		if n.dist >= Infinity {
			n.successor = -1
			return
		}
		nw.startDiffusing(id, Infinity)
		return
	}
	if bestVia >= 0 {
		// SNC: the chosen neighbor's reported distance must be below fd.
		if n.reported[bestVia] < n.fd {
			feasible = true
		}
	}
	if feasible {
		changed := n.dist != best || n.successor != bestVia
		n.dist = best
		if best < n.fd {
			n.fd = best
		}
		n.successor = bestVia
		if changed {
			nw.broadcastUpdate(id)
		}
		return
	}
	// No feasible successor: start a diffusing computation, freezing the
	// distance through the current successor.
	nw.startDiffusing(id, viaSucc)
}

func (nw *Network) startDiffusing(id, proposed int) {
	n := nw.nodes[id]
	n.active = true
	n.frozen = proposed
	if n.frozen >= Infinity {
		n.frozen = Infinity
	}
	nbs := nw.neighbors(id)
	if len(nbs) == 0 {
		nw.completeDiffusing(id)
		return
	}
	for nb := range nbs {
		n.pending[nb] = true
		nw.send(id, nb, msgQuery, n.frozen)
	}
}

// completeDiffusing ends the computation: every neighbor has replied, so
// no neighbor can be using this node as successor with stale state — the
// feasible distance may be reset and any successor chosen.
func (nw *Network) completeDiffusing(id int) {
	n := nw.nodes[id]
	n.active = false
	n.fd = Infinity
	best, bestVia := Infinity, -1
	for nb, cost := range nw.neighbors(id) {
		rd, ok := n.reported[nb]
		if !ok {
			continue
		}
		if d := rd + cost; d < best {
			best, bestVia = d, nb
		}
	}
	if bestVia >= 0 && best < Infinity {
		n.dist = best
		n.fd = best
		n.successor = bestVia
	} else {
		n.dist = Infinity
		n.successor = -1
	}
	nw.broadcastUpdate(id)
	for _, waiter := range n.pendingReplyTo {
		nw.send(id, waiter, msgReply, n.dist)
	}
	n.pendingReplyTo = nil
	// The frozen answer may have been superseded; re-run SNC to settle.
	nw.recompute(id)
}

func (nw *Network) broadcastUpdate(id int) {
	n := nw.nodes[id]
	for nb := range nw.neighbors(id) {
		nw.send(id, nb, msgUpdate, n.advertised())
	}
}

// Dist returns node id's current distance to the destination.
func (nw *Network) Dist(id int) int { return nw.nodes[id].dist }

// Successor returns node id's successor (-1 when none).
func (nw *Network) Successor(id int) int { return nw.nodes[id].successor }

// Active reports whether node id is inside a diffusing computation.
func (nw *Network) Active(id int) bool { return nw.nodes[id].active }

// TotalMessages sums all coordination messages sent so far.
func (nw *Network) TotalMessages() int {
	var sum int
	for _, v := range nw.Messages {
		sum += v
	}
	return sum
}

// CheckLoopFree walks every successor chain and returns an error if any
// cycle exists — DUAL's instantaneous loop-freedom invariant.
func (nw *Network) CheckLoopFree() error {
	for start := range nw.nodes {
		slow, fast := start, start
		for {
			fast = nw.step(fast)
			if fast < 0 || fast == nw.dest {
				break
			}
			fast = nw.step(fast)
			if fast < 0 || fast == nw.dest {
				break
			}
			slow = nw.step(slow)
			if slow == fast {
				return fmt.Errorf("dual: successor loop through node %d toward %d", slow, nw.dest)
			}
		}
	}
	return nil
}

func (nw *Network) step(id int) int {
	if id < 0 || id == nw.dest {
		return -1
	}
	s := nw.nodes[id].successor
	if s == id {
		return -1
	}
	return s
}
