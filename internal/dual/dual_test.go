package dual_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/manetlab/ldr/internal/dual"
	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/sim"
)

const lat = time.Millisecond

// line builds a 0-1-2-...-n chain with unit costs toward destination 0.
func line(s *sim.Simulator, n int) *dual.Network {
	nw := dual.NewNetwork(s, n, 0, lat)
	for i := 0; i+1 < n; i++ {
		nw.AddLink(i, i+1, 1)
	}
	return nw
}

func settle(s *sim.Simulator) { s.RunAll() }

func TestConvergesOnChain(t *testing.T) {
	s := sim.New()
	nw := line(s, 6)
	settle(s)
	for i := 0; i < 6; i++ {
		if got := nw.Dist(i); got != i {
			t.Fatalf("node %d dist = %d, want %d", i, got, i)
		}
		if nw.Active(i) {
			t.Fatalf("node %d still active after convergence", i)
		}
	}
	if err := nw.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
}

func TestShortcutImprovesLocally(t *testing.T) {
	s := sim.New()
	nw := line(s, 6)
	settle(s)
	queriesBefore := nw.Messages["query"]

	// A shortcut 0–5 makes node 5's distance 1: strictly better routes
	// always satisfy SNC, so no diffusing computation may start.
	nw.AddLink(0, 5, 1)
	settle(s)

	if got := nw.Dist(5); got != 1 {
		t.Fatalf("node 5 dist = %d, want 1 after shortcut", got)
	}
	if got := nw.Dist(4); got != 2 {
		t.Fatalf("node 4 dist = %d, want 2 via the shortcut", got)
	}
	if nw.Messages["query"] != queriesBefore {
		t.Fatalf("distance improvement triggered %d queries; SNC must allow local update",
			nw.Messages["query"]-queriesBefore)
	}
}

func TestLinkLossForcesDiffusingComputation(t *testing.T) {
	s := sim.New()
	nw := line(s, 5)
	settle(s)
	queriesBefore := nw.Messages["query"]

	// Breaking 0–1 strands everyone: feasible distances cannot admit any
	// successor, so diffusing computations (queries) are mandatory.
	nw.RemoveLink(0, 1)
	settle(s)

	if nw.Messages["query"] == queriesBefore {
		t.Fatal("link loss did not trigger any diffusing computation")
	}
	for i := 1; i < 5; i++ {
		if nw.Dist(i) < dual.Infinity {
			t.Fatalf("node %d still claims distance %d to an unreachable destination", i, nw.Dist(i))
		}
	}
	if err := nw.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
}

func TestReroutesAroundBreak(t *testing.T) {
	// Ring: 0-1-2-3-4-0. Breaking 0-1 leaves the long way round.
	s := sim.New()
	nw := dual.NewNetwork(s, 5, 0, lat)
	for i := 0; i < 5; i++ {
		nw.AddLink(i, (i+1)%5, 1)
	}
	settle(s)
	if nw.Dist(1) != 1 || nw.Dist(2) != 2 {
		t.Fatalf("ring did not converge: d(1)=%d d(2)=%d", nw.Dist(1), nw.Dist(2))
	}

	nw.RemoveLink(0, 1)
	settle(s)

	// Node 1 now reaches 0 the long way: 1-2-3-4-0 = 4 hops.
	if got := nw.Dist(1); got != 4 {
		t.Fatalf("node 1 dist = %d after break, want 4", got)
	}
	if err := nw.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
}

// TestLoopFreeUnderRandomChurn is the package's core property: random
// sequences of link additions and removals on random graphs never create
// a successor loop, checked after every quiescent point.
func TestLoopFreeUnderRandomChurn(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(seed)
		s := sim.New()
		const n = 10
		nw := dual.NewNetwork(s, n, 0, lat)
		type e struct{ a, b int }
		var present []e
		// Start from a random connected-ish graph.
		for i := 1; i < n; i++ {
			a := r.Intn(i)
			nw.AddLink(a, i, 1+r.Intn(3))
			present = append(present, e{a, i})
		}
		settle(s)
		if nw.CheckLoopFree() != nil {
			return false
		}
		for step := 0; step < 30; step++ {
			if len(present) > 0 && r.Float64() < 0.5 {
				i := r.Intn(len(present))
				nw.RemoveLink(present[i].a, present[i].b)
				present = append(present[:i], present[i+1:]...)
			} else {
				a, b := r.Intn(n), r.Intn(n)
				if a != b {
					nw.AddLink(a, b, 1+r.Intn(3))
					present = append(present, e{a, b})
				}
			}
			settle(s)
			if nw.CheckLoopFree() != nil {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(10))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinationCostGrowsWithDependentSubtree(t *testing.T) {
	// The paper's point about DUAL/ROAM: a reset synchronizes a whole
	// region. On a long chain, breaking the link next to the destination
	// forces every downstream node through a diffusing computation,
	// so queries scale with the subtree size.
	cost := func(n int) int {
		s := sim.New()
		nw := line(s, n)
		settle(s)
		before := nw.Messages["query"]
		nw.RemoveLink(0, 1)
		settle(s)
		return nw.Messages["query"] - before
	}
	short, long := cost(4), cost(12)
	if long <= short {
		t.Fatalf("queries did not grow with dependent subtree: %d (n=4) vs %d (n=12)", short, long)
	}
}
