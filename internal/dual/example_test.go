package dual_test

import (
	"fmt"
	"time"

	"github.com/manetlab/ldr/internal/dual"
	"github.com/manetlab/ldr/internal/sim"
)

// Example shows DUAL's two repair modes on a five-node ring: a distance
// improvement is a free local decision; losing the only feasible
// successor forces a diffusing computation (queries).
func Example() {
	s := sim.New()
	nw := dual.NewNetwork(s, 5, 0, time.Millisecond)
	for i := 0; i < 5; i++ {
		nw.AddLink(i, (i+1)%5, 1)
	}
	s.RunAll()
	fmt.Printf("converged: node 2 at distance %d, %d queries so far\n",
		nw.Dist(2), nw.Messages["query"])

	nw.RemoveLink(0, 1) // node 1 loses its only feasible successor
	s.RunAll()
	fmt.Printf("after break: node 1 at distance %d, queries used: %v\n",
		nw.Dist(1), nw.Messages["query"] > 0)
	// Output:
	// converged: node 2 at distance 2, 0 queries so far
	// after break: node 1 at distance 4, queries used: true
}
