package metrics

import "time"

// numLatencyBuckets is the bucket count of latencyBuckets.
const numLatencyBuckets = 15

// latencyBuckets are the upper bounds of the latency histogram, spaced
// roughly logarithmically from 1 ms to 60 s. Latencies above the last
// bound land in the overflow bucket.
var latencyBuckets = [numLatencyBuckets]time.Duration{
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second,
	10 * time.Second, 30 * time.Second, 60 * time.Second,
}

// LatencyHistogram is a fixed-bucket histogram of end-to-end latencies.
// Percentile estimates are resolved to bucket upper bounds, which is
// plenty for the paper's comparisons (the protocols differ by multiples,
// not percents).
type LatencyHistogram struct {
	counts   [numLatencyBuckets + 1]uint64
	total    uint64
	maxValue time.Duration
}

// Observe records one latency sample.
func (h *LatencyHistogram) Observe(d time.Duration) {
	h.total++
	if d > h.maxValue {
		h.maxValue = d
	}
	for i, ub := range latencyBuckets {
		if d <= ub {
			h.counts[i]++
			return
		}
	}
	h.counts[numLatencyBuckets]++
}

// Count returns the number of samples observed.
func (h *LatencyHistogram) Count() uint64 { return h.total }

// Max returns the largest sample observed.
func (h *LatencyHistogram) Max() time.Duration { return h.maxValue }

// Percentile returns an upper bound on the p-th percentile latency
// (0 < p ≤ 100). With no samples it returns zero.
func (h *LatencyHistogram) Percentile(p float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	threshold := uint64(float64(h.total) * p / 100)
	if threshold == 0 {
		threshold = 1
	}
	var cum uint64
	for i, c := range h.counts[:numLatencyBuckets] {
		cum += c
		if cum >= threshold {
			return latencyBuckets[i]
		}
	}
	return h.maxValue
}
