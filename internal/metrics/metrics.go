// Package metrics collects the per-run counters behind every table and
// figure in the LDR paper's evaluation (§4).
//
// Terminology follows the paper: a "transmitted" count includes every
// hop-wise transmission, an "initiated" count only the first transmission
// of a packet. The derived quantities (delivery ratio, network load, RREQ
// load, RREP Init, RREP Recv, mean latency) are the paper's six metrics.
package metrics

import "time"

// ControlKind classifies control packets for load accounting.
type ControlKind int

// Control packet kinds across all four protocols.
const (
	RREQ ControlKind = iota + 1
	RREP
	RERR
	Hello
	TC
	OtherControl

	numKinds
)

// String returns the kind's wire name.
func (k ControlKind) String() string {
	switch k {
	case RREQ:
		return "RREQ"
	case RREP:
		return "RREP"
	case RERR:
		return "RERR"
	case Hello:
		return "HELLO"
	case TC:
		return "TC"
	default:
		return "CTRL"
	}
}

// NumControlKinds is the number of distinct control-kind slots, for
// callers that iterate every ledger (the conformance auditor).
const NumControlKinds = int(numKinds)

// DropReason classifies why a data packet was dropped. Reason-resolved
// drop counters let the conformance auditor separate expected losses
// (no route during discovery, TTL expiry) from the losses that indicate
// an accounting bug when they go missing (crash/Reset wipes).
type DropReason uint8

// Data-packet drop reasons across all four protocols.
const (
	DropOther DropReason = iota
	DropNoRoute
	DropTTL
	DropQueueOverflow
	DropLinkBreak
	DropMalformed
	DropNodeDown
	DropReset
	DropAdversary

	numReasons
)

// NumDropReasons is the number of distinct drop-reason slots.
const NumDropReasons = int(numReasons)

// String names the reason for reports.
func (r DropReason) String() string {
	switch r {
	case DropNoRoute:
		return "no-route"
	case DropTTL:
		return "ttl"
	case DropQueueOverflow:
		return "queue-overflow"
	case DropLinkBreak:
		return "link-break"
	case DropMalformed:
		return "malformed"
	case DropNodeDown:
		return "node-down"
	case DropReset:
		return "reset"
	case DropAdversary:
		return "adversary"
	default:
		return "other"
	}
}

// PacketFate is the recorded lifecycle state of one (Src, ID) data
// packet: never seen, initiated and not yet terminal, or terminal.
type PacketFate uint8

// Packet fates, in lifecycle order.
const (
	FateNone PacketFate = iota
	FateInFlight
	FateDelivered
	FateDropped
)

// packetKey identifies a data packet network-wide.
type packetKey struct {
	src int32
	id  uint64
}

// Collector accumulates the counters for one simulation run.
type Collector struct {
	// Data plane.
	DataInitiated   uint64        // CBR packets handed to the network layer
	DataDelivered   uint64        // CBR packets received at their destination
	DataTransmitted uint64        // hop-wise data transmissions
	DataDropped     uint64        // packets dropped (no route, TTL, queue)
	TotalLatency    time.Duration // sum of end-to-end latencies of delivered packets

	// Control plane, indexed by ControlKind.
	ctrlTransmitted [numKinds]uint64
	ctrlInitiated   [numKinds]uint64
	ctrlDropped     [numKinds]uint64

	// RREPUsable counts hop-wise usable RREP receptions: a RREP counts once
	// at every node along its path that can use it to install or improve a
	// route (the paper's "RREP Recv" numerator).
	RREPUsable uint64

	// Latency distribution of delivered packets (p50/p95/p99 reporting).
	Latency LatencyHistogram

	// Path-length accounting for delivered packets: HopsSum/DataDelivered
	// is the mean path length, comparable against the topology oracle's
	// shortest paths for a stretch measure.
	HopsSum uint64

	// Destination sequence number samples (Fig. 7). Protocols that use
	// destination sequence numbers record the counter value of every
	// routing-table entry at the end of the run.
	SeqnoSum   float64
	SeqnoCount uint64

	// Continuous invariant auditing (internal/fault): table snapshots
	// taken by the loopcheck auditor and the violations they exposed.
	// A loop violation is a cycle in some destination's successor graph;
	// an ordering violation is a (seq, fd) label pair breaking the
	// paper's Theorem 2 criterion along a successor edge.
	AuditSnapshots     uint64
	LoopViolations     uint64
	OrderingViolations uint64

	// Packet-conservation ledger: every initiated data packet is tracked
	// by (Src, ID) until its first terminal event — delivery or drop —
	// and only that first event counts. Repeat terminal events (a copy
	// duplicated by the radio fault hook arriving after the original, or
	// a stale copy dropped after delivery) land in DuplicateDeliveries /
	// LateDrops instead of inflating the paper's metrics.
	DuplicateDeliveries uint64 // deliveries suppressed: packet already terminal
	LateDrops           uint64 // drops suppressed: packet already terminal

	// Adversary-resilience counters (internal/adversary). A feasibility
	// rejection is an advertisement LDR's NDC refused — under seqno
	// forgery or stale-label replay these count refused forgeries; the
	// suppression counters tally control messages discarded by the
	// per-neighbor rate limiters before processing. All three are
	// receive-side events, so they never unbalance the control ledgers
	// (initiated/transmitted/dropped are all sender-side).
	FeasibilityRejections uint64 // LDR NDC refusals of advertisements
	RREQSuppressed        uint64 // RREQs discarded by receive rate limiting
	RERRSuppressed        uint64 // RERRs discarded by receive damping

	dropByReason [numReasons]uint64
	fates        map[packetKey]PacketFate
	inFlight     int64 // initiated packets with no terminal event yet
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

func (c *Collector) fate(src int, id uint64) PacketFate {
	if c.fates == nil {
		return FateNone
	}
	return c.fates[packetKey{src: int32(src), id: id}]
}

func (c *Collector) setFate(src int, id uint64, f PacketFate) {
	if c.fates == nil {
		c.fates = make(map[packetKey]PacketFate)
	}
	c.fates[packetKey{src: int32(src), id: id}] = f
}

// NoteInitiated records the origination of data packet (src, id) and
// opens its conservation ledger entry.
func (c *Collector) NoteInitiated(src int, id uint64) {
	c.DataInitiated++
	c.setFate(src, id, FateInFlight)
	c.inFlight++
}

// NoteDelivered records an end-to-end delivery of packet (src, id). It
// returns false — and counts a DuplicateDelivery instead of a delivery —
// when the packet already had a terminal event: the first terminal event
// wins, so a radio-duplicated copy arriving after the original cannot
// inflate DataDelivered or the latency sums. Packets never initiated
// through the ledger (direct injection in tests) count normally.
func (c *Collector) NoteDelivered(src int, id uint64) bool {
	switch c.fate(src, id) {
	case FateDelivered, FateDropped:
		c.DuplicateDeliveries++
		return false
	case FateInFlight:
		c.inFlight--
	}
	c.setFate(src, id, FateDelivered)
	c.DataDelivered++
	return true
}

// NoteDropped records the loss of packet (src, id) for the given reason.
// It returns false — and counts a LateDrop instead of a drop — when the
// packet already had a terminal event (a stale duplicate copy dying
// after the original was delivered or dropped).
func (c *Collector) NoteDropped(src int, id uint64, reason DropReason) bool {
	switch c.fate(src, id) {
	case FateDelivered, FateDropped:
		c.LateDrops++
		return false
	case FateInFlight:
		c.inFlight--
	}
	c.setFate(src, id, FateDropped)
	c.DataDropped++
	if reason < numReasons {
		c.dropByReason[reason]++
	} else {
		c.dropByReason[DropOther]++
	}
	return true
}

// FateOf returns the recorded fate of packet (src, id).
func (c *Collector) FateOf(src int, id uint64) PacketFate { return c.fate(src, id) }

// InFlight returns the number of initiated data packets with no terminal
// event yet. Together with the terminal counters it closes the paper's
// conservation equation: DataInitiated == DataDelivered + DataDropped +
// InFlight (it can go negative only if packets bypass NoteInitiated,
// which scenario runs never do).
func (c *Collector) InFlight() int64 { return c.inFlight }

// DroppedBy returns the drop count for one reason.
func (c *Collector) DroppedBy(reason DropReason) uint64 {
	if reason >= numReasons {
		reason = DropOther
	}
	return c.dropByReason[reason]
}

// CountControlTransmit records one hop-wise control transmission.
func (c *Collector) CountControlTransmit(k ControlKind) {
	c.ctrlTransmitted[kindIndex(k)]++
}

// CountControlInitiate records the first transmission of a control packet.
func (c *Collector) CountControlInitiate(k ControlKind) {
	c.ctrlInitiated[kindIndex(k)]++
}

// CountControlDrop records a control packet discarded before it reached
// the medium (a jitter queue wiped by a crash, for example). The
// conformance ledger needs these so initiated packets never appear to
// vanish without a transmit, a drop, or a queue slot accounting for
// them.
func (c *Collector) CountControlDrop(k ControlKind) {
	c.ctrlDropped[kindIndex(k)]++
}

// ObserveSeqno records one destination sequence-number sample.
func (c *Collector) ObserveSeqno(v float64) {
	c.SeqnoSum += v
	c.SeqnoCount++
}

// ControlTransmitted returns the hop-wise transmission count for a kind.
func (c *Collector) ControlTransmitted(k ControlKind) uint64 {
	return c.ctrlTransmitted[kindIndex(k)]
}

// ControlInitiated returns the initiation count for a kind.
func (c *Collector) ControlInitiated(k ControlKind) uint64 {
	return c.ctrlInitiated[kindIndex(k)]
}

// ControlDropped returns the pre-transmission discard count for a kind.
func (c *Collector) ControlDropped(k ControlKind) uint64 {
	return c.ctrlDropped[kindIndex(k)]
}

// TotalControlTransmitted sums hop-wise transmissions over all kinds.
func (c *Collector) TotalControlTransmitted() uint64 {
	var sum uint64
	for _, v := range c.ctrlTransmitted {
		sum += v
	}
	return sum
}

// DeliveryRatio is the fraction of initiated CBR packets delivered.
func (c *Collector) DeliveryRatio() float64 {
	if c.DataInitiated == 0 {
		return 0
	}
	return float64(c.DataDelivered) / float64(c.DataInitiated)
}

// NetworkLoad is total control packets transmitted per received data
// packet (the paper's "network load").
func (c *Collector) NetworkLoad() float64 {
	if c.DataDelivered == 0 {
		return float64(c.TotalControlTransmitted())
	}
	return float64(c.TotalControlTransmitted()) / float64(c.DataDelivered)
}

// RREQLoad is RREQs transmitted per received data packet.
func (c *Collector) RREQLoad() float64 {
	if c.DataDelivered == 0 {
		return float64(c.ControlTransmitted(RREQ))
	}
	return float64(c.ControlTransmitted(RREQ)) / float64(c.DataDelivered)
}

// MeanLatency is the mean end-to-end latency of delivered data packets.
func (c *Collector) MeanLatency() time.Duration {
	if c.DataDelivered == 0 {
		return 0
	}
	return c.TotalLatency / time.Duration(c.DataDelivered)
}

// RREPInitPerRREQ is RREPs initiated per RREQ initiated ("RREP Init").
func (c *Collector) RREPInitPerRREQ() float64 {
	if c.ControlInitiated(RREQ) == 0 {
		return 0
	}
	return float64(c.ControlInitiated(RREP)) / float64(c.ControlInitiated(RREQ))
}

// RREPRecvPerRREQ is hop-wise usable RREPs received per RREQ initiated
// ("RREP Recv").
func (c *Collector) RREPRecvPerRREQ() float64 {
	if c.ControlInitiated(RREQ) == 0 {
		return 0
	}
	return float64(c.RREPUsable) / float64(c.ControlInitiated(RREQ))
}

// MeanHops is the mean hop count of delivered data packets.
func (c *Collector) MeanHops() float64 {
	if c.DataDelivered == 0 {
		return 0
	}
	return float64(c.HopsSum) / float64(c.DataDelivered)
}

// MeanSeqno is the mean recorded destination sequence number (Fig. 7).
func (c *Collector) MeanSeqno() float64 {
	if c.SeqnoCount == 0 {
		return 0
	}
	return c.SeqnoSum / float64(c.SeqnoCount)
}

func kindIndex(k ControlKind) int {
	if k <= 0 || k >= numKinds {
		return int(OtherControl)
	}
	return int(k)
}
