// Package metrics collects the per-run counters behind every table and
// figure in the LDR paper's evaluation (§4).
//
// Terminology follows the paper: a "transmitted" count includes every
// hop-wise transmission, an "initiated" count only the first transmission
// of a packet. The derived quantities (delivery ratio, network load, RREQ
// load, RREP Init, RREP Recv, mean latency) are the paper's six metrics.
package metrics

import "time"

// ControlKind classifies control packets for load accounting.
type ControlKind int

// Control packet kinds across all four protocols.
const (
	RREQ ControlKind = iota + 1
	RREP
	RERR
	Hello
	TC
	OtherControl

	numKinds
)

// String returns the kind's wire name.
func (k ControlKind) String() string {
	switch k {
	case RREQ:
		return "RREQ"
	case RREP:
		return "RREP"
	case RERR:
		return "RERR"
	case Hello:
		return "HELLO"
	case TC:
		return "TC"
	default:
		return "CTRL"
	}
}

// Collector accumulates the counters for one simulation run.
type Collector struct {
	// Data plane.
	DataInitiated   uint64        // CBR packets handed to the network layer
	DataDelivered   uint64        // CBR packets received at their destination
	DataTransmitted uint64        // hop-wise data transmissions
	DataDropped     uint64        // packets dropped (no route, TTL, queue)
	TotalLatency    time.Duration // sum of end-to-end latencies of delivered packets

	// Control plane, indexed by ControlKind.
	ctrlTransmitted [numKinds]uint64
	ctrlInitiated   [numKinds]uint64

	// RREPUsable counts hop-wise usable RREP receptions: a RREP counts once
	// at every node along its path that can use it to install or improve a
	// route (the paper's "RREP Recv" numerator).
	RREPUsable uint64

	// Latency distribution of delivered packets (p50/p95/p99 reporting).
	Latency LatencyHistogram

	// Path-length accounting for delivered packets: HopsSum/DataDelivered
	// is the mean path length, comparable against the topology oracle's
	// shortest paths for a stretch measure.
	HopsSum uint64

	// Destination sequence number samples (Fig. 7). Protocols that use
	// destination sequence numbers record the counter value of every
	// routing-table entry at the end of the run.
	SeqnoSum   float64
	SeqnoCount uint64

	// Continuous invariant auditing (internal/fault): table snapshots
	// taken by the loopcheck auditor and the violations they exposed.
	// A loop violation is a cycle in some destination's successor graph;
	// an ordering violation is a (seq, fd) label pair breaking the
	// paper's Theorem 2 criterion along a successor edge.
	AuditSnapshots     uint64
	LoopViolations     uint64
	OrderingViolations uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// CountControlTransmit records one hop-wise control transmission.
func (c *Collector) CountControlTransmit(k ControlKind) {
	c.ctrlTransmitted[kindIndex(k)]++
}

// CountControlInitiate records the first transmission of a control packet.
func (c *Collector) CountControlInitiate(k ControlKind) {
	c.ctrlInitiated[kindIndex(k)]++
}

// ObserveSeqno records one destination sequence-number sample.
func (c *Collector) ObserveSeqno(v float64) {
	c.SeqnoSum += v
	c.SeqnoCount++
}

// ControlTransmitted returns the hop-wise transmission count for a kind.
func (c *Collector) ControlTransmitted(k ControlKind) uint64 {
	return c.ctrlTransmitted[kindIndex(k)]
}

// ControlInitiated returns the initiation count for a kind.
func (c *Collector) ControlInitiated(k ControlKind) uint64 {
	return c.ctrlInitiated[kindIndex(k)]
}

// TotalControlTransmitted sums hop-wise transmissions over all kinds.
func (c *Collector) TotalControlTransmitted() uint64 {
	var sum uint64
	for _, v := range c.ctrlTransmitted {
		sum += v
	}
	return sum
}

// DeliveryRatio is the fraction of initiated CBR packets delivered.
func (c *Collector) DeliveryRatio() float64 {
	if c.DataInitiated == 0 {
		return 0
	}
	return float64(c.DataDelivered) / float64(c.DataInitiated)
}

// NetworkLoad is total control packets transmitted per received data
// packet (the paper's "network load").
func (c *Collector) NetworkLoad() float64 {
	if c.DataDelivered == 0 {
		return float64(c.TotalControlTransmitted())
	}
	return float64(c.TotalControlTransmitted()) / float64(c.DataDelivered)
}

// RREQLoad is RREQs transmitted per received data packet.
func (c *Collector) RREQLoad() float64 {
	if c.DataDelivered == 0 {
		return float64(c.ControlTransmitted(RREQ))
	}
	return float64(c.ControlTransmitted(RREQ)) / float64(c.DataDelivered)
}

// MeanLatency is the mean end-to-end latency of delivered data packets.
func (c *Collector) MeanLatency() time.Duration {
	if c.DataDelivered == 0 {
		return 0
	}
	return c.TotalLatency / time.Duration(c.DataDelivered)
}

// RREPInitPerRREQ is RREPs initiated per RREQ initiated ("RREP Init").
func (c *Collector) RREPInitPerRREQ() float64 {
	if c.ControlInitiated(RREQ) == 0 {
		return 0
	}
	return float64(c.ControlInitiated(RREP)) / float64(c.ControlInitiated(RREQ))
}

// RREPRecvPerRREQ is hop-wise usable RREPs received per RREQ initiated
// ("RREP Recv").
func (c *Collector) RREPRecvPerRREQ() float64 {
	if c.ControlInitiated(RREQ) == 0 {
		return 0
	}
	return float64(c.RREPUsable) / float64(c.ControlInitiated(RREQ))
}

// MeanHops is the mean hop count of delivered data packets.
func (c *Collector) MeanHops() float64 {
	if c.DataDelivered == 0 {
		return 0
	}
	return float64(c.HopsSum) / float64(c.DataDelivered)
}

// MeanSeqno is the mean recorded destination sequence number (Fig. 7).
func (c *Collector) MeanSeqno() float64 {
	if c.SeqnoCount == 0 {
		return 0
	}
	return c.SeqnoSum / float64(c.SeqnoCount)
}

func kindIndex(k ControlKind) int {
	if k <= 0 || k >= numKinds {
		return int(OtherControl)
	}
	return int(k)
}
