package metrics

import (
	"encoding/json"
	"time"
)

// JSON round-tripping for journaled sweep results (internal/resilience).
//
// The collector's counters — including the unexported control ledgers,
// drop-reason array, and in-flight gauge — must survive a marshal/
// unmarshal cycle exactly, so a sweep resumed from its journal renders
// byte-identical tables: every counter is an integer, and float64 values
// (SeqnoSum) round-trip losslessly through encoding/json's shortest-form
// formatting. The one deliberate omission is the per-packet fates map:
// it exists to dedup terminal events during the run and is dead weight
// once the run has ended, so journaled collectors report FateNone for
// every packet.

// histogramJSON is the serialized form of LatencyHistogram.
type histogramJSON struct {
	Counts []uint64      `json:"counts"`
	Total  uint64        `json:"total"`
	Max    time.Duration `json:"max"`
}

// MarshalJSON serializes the histogram's buckets, sample count, and max.
func (h *LatencyHistogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(h.toJSON())
}

// UnmarshalJSON restores a histogram serialized by MarshalJSON.
func (h *LatencyHistogram) UnmarshalJSON(b []byte) error {
	var hj histogramJSON
	if err := json.Unmarshal(b, &hj); err != nil {
		return err
	}
	h.fromJSON(hj)
	return nil
}

func (h *LatencyHistogram) toJSON() histogramJSON {
	return histogramJSON{Counts: h.counts[:], Total: h.total, Max: h.maxValue}
}

func (h *LatencyHistogram) fromJSON(hj histogramJSON) {
	*h = LatencyHistogram{total: hj.Total, maxValue: hj.Max}
	copy(h.counts[:], hj.Counts)
}

// collectorJSON is the serialized form of Collector.
type collectorJSON struct {
	DataInitiated   uint64        `json:"data_initiated"`
	DataDelivered   uint64        `json:"data_delivered"`
	DataTransmitted uint64        `json:"data_transmitted"`
	DataDropped     uint64        `json:"data_dropped"`
	TotalLatency    time.Duration `json:"total_latency"`

	CtrlTransmitted []uint64 `json:"ctrl_transmitted"`
	CtrlInitiated   []uint64 `json:"ctrl_initiated"`
	CtrlDropped     []uint64 `json:"ctrl_dropped"`

	RREPUsable uint64        `json:"rrep_usable"`
	Latency    histogramJSON `json:"latency"`
	HopsSum    uint64        `json:"hops_sum"`

	SeqnoSum   float64 `json:"seqno_sum"`
	SeqnoCount uint64  `json:"seqno_count"`

	AuditSnapshots     uint64 `json:"audit_snapshots"`
	LoopViolations     uint64 `json:"loop_violations"`
	OrderingViolations uint64 `json:"ordering_violations"`

	DuplicateDeliveries uint64 `json:"duplicate_deliveries"`
	LateDrops           uint64 `json:"late_drops"`

	FeasibilityRejections uint64 `json:"feasibility_rejections"`
	RREQSuppressed        uint64 `json:"rreq_suppressed"`
	RERRSuppressed        uint64 `json:"rerr_suppressed"`

	DropByReason []uint64 `json:"drop_by_reason"`
	InFlight     int64    `json:"in_flight"`
}

// MarshalJSON serializes every counter the paper's metrics derive from,
// including the unexported control ledgers and drop-reason array. The
// per-packet fates map is intentionally not serialized (see the package
// comment above).
func (c *Collector) MarshalJSON() ([]byte, error) {
	return json.Marshal(collectorJSON{
		DataInitiated:   c.DataInitiated,
		DataDelivered:   c.DataDelivered,
		DataTransmitted: c.DataTransmitted,
		DataDropped:     c.DataDropped,
		TotalLatency:    c.TotalLatency,

		CtrlTransmitted: c.ctrlTransmitted[:],
		CtrlInitiated:   c.ctrlInitiated[:],
		CtrlDropped:     c.ctrlDropped[:],

		RREPUsable: c.RREPUsable,
		Latency:    c.Latency.toJSON(),
		HopsSum:    c.HopsSum,

		SeqnoSum:   c.SeqnoSum,
		SeqnoCount: c.SeqnoCount,

		AuditSnapshots:     c.AuditSnapshots,
		LoopViolations:     c.LoopViolations,
		OrderingViolations: c.OrderingViolations,

		DuplicateDeliveries: c.DuplicateDeliveries,
		LateDrops:           c.LateDrops,

		FeasibilityRejections: c.FeasibilityRejections,
		RREQSuppressed:        c.RREQSuppressed,
		RERRSuppressed:        c.RERRSuppressed,

		DropByReason: c.dropByReason[:],
		InFlight:     c.inFlight,
	})
}

// UnmarshalJSON restores a collector serialized by MarshalJSON.
func (c *Collector) UnmarshalJSON(b []byte) error {
	var cj collectorJSON
	if err := json.Unmarshal(b, &cj); err != nil {
		return err
	}
	*c = Collector{
		DataInitiated:   cj.DataInitiated,
		DataDelivered:   cj.DataDelivered,
		DataTransmitted: cj.DataTransmitted,
		DataDropped:     cj.DataDropped,
		TotalLatency:    cj.TotalLatency,

		RREPUsable: cj.RREPUsable,
		HopsSum:    cj.HopsSum,

		SeqnoSum:   cj.SeqnoSum,
		SeqnoCount: cj.SeqnoCount,

		AuditSnapshots:     cj.AuditSnapshots,
		LoopViolations:     cj.LoopViolations,
		OrderingViolations: cj.OrderingViolations,

		DuplicateDeliveries: cj.DuplicateDeliveries,
		LateDrops:           cj.LateDrops,

		FeasibilityRejections: cj.FeasibilityRejections,
		RREQSuppressed:        cj.RREQSuppressed,
		RERRSuppressed:        cj.RERRSuppressed,

		inFlight: cj.InFlight,
	}
	c.Latency.fromJSON(cj.Latency)
	copy(c.ctrlTransmitted[:], cj.CtrlTransmitted)
	copy(c.ctrlInitiated[:], cj.CtrlInitiated)
	copy(c.ctrlDropped[:], cj.CtrlDropped)
	copy(c.dropByReason[:], cj.DropByReason)
	return nil
}
