package metrics

import (
	"encoding/json"
	"testing"
	"time"
)

// TestCollectorJSONRoundTrip populates every counter family and asserts
// a marshal/unmarshal cycle preserves all derived metrics and re-encodes
// byte-identically — the property journaled sweep resume depends on.
func TestCollectorJSONRoundTrip(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 40; i++ {
		c.NoteInitiated(i%5, uint64(i))
	}
	for i := 0; i < 25; i++ {
		c.NoteDelivered(i%5, uint64(i))
		c.Latency.Observe(time.Duration(i+1) * 7 * time.Millisecond)
		c.TotalLatency += time.Duration(i+1) * 7 * time.Millisecond
		c.HopsSum += uint64(i%4 + 1)
	}
	for i := 25; i < 33; i++ {
		c.NoteDropped(i%5, uint64(i), DropReason(i%NumDropReasons))
	}
	c.NoteDelivered(0, 0) // duplicate
	c.NoteDropped(1, 1, DropTTL)
	c.DataTransmitted = 301
	for k := RREQ; k <= TC; k++ {
		for i := 0; i < int(k); i++ {
			c.CountControlTransmit(k)
			c.CountControlInitiate(k)
			c.CountControlDrop(k)
		}
	}
	c.RREPUsable = 17
	c.ObserveSeqno(3.25)
	c.ObserveSeqno(11.5)
	c.AuditSnapshots, c.LoopViolations, c.OrderingViolations = 9, 1, 2
	c.FeasibilityRejections, c.RREQSuppressed, c.RERRSuppressed = 4, 5, 6

	blob, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	got := NewCollector()
	if err := json.Unmarshal(blob, got); err != nil {
		t.Fatal(err)
	}

	if got.DeliveryRatio() != c.DeliveryRatio() ||
		got.NetworkLoad() != c.NetworkLoad() ||
		got.RREQLoad() != c.RREQLoad() ||
		got.MeanLatency() != c.MeanLatency() ||
		got.RREPInitPerRREQ() != c.RREPInitPerRREQ() ||
		got.RREPRecvPerRREQ() != c.RREPRecvPerRREQ() ||
		got.MeanHops() != c.MeanHops() ||
		got.MeanSeqno() != c.MeanSeqno() {
		t.Fatal("derived metrics changed across JSON round-trip")
	}
	for k := RREQ; k < ControlKind(NumControlKinds); k++ {
		if got.ControlTransmitted(k) != c.ControlTransmitted(k) ||
			got.ControlInitiated(k) != c.ControlInitiated(k) ||
			got.ControlDropped(k) != c.ControlDropped(k) {
			t.Fatalf("control ledger for %v changed across round-trip", k)
		}
	}
	for r := DropReason(0); r < DropReason(NumDropReasons); r++ {
		if got.DroppedBy(r) != c.DroppedBy(r) {
			t.Fatalf("drop reason %v changed across round-trip", r)
		}
	}
	if got.InFlight() != c.InFlight() {
		t.Fatalf("in-flight gauge: got %d want %d", got.InFlight(), c.InFlight())
	}
	if got.Latency.Count() != c.Latency.Count() ||
		got.Latency.Max() != c.Latency.Max() ||
		got.Latency.Percentile(50) != c.Latency.Percentile(50) ||
		got.Latency.Percentile(99) != c.Latency.Percentile(99) {
		t.Fatal("latency histogram changed across round-trip")
	}
	if got.DuplicateDeliveries != c.DuplicateDeliveries || got.LateDrops != c.LateDrops {
		t.Fatal("dedup counters changed across round-trip")
	}

	// The fates map is deliberately not serialized: a journaled collector
	// reports FateNone, and re-encoding is byte-stable.
	if got.FateOf(0, 0) != FateNone {
		t.Fatal("fates map unexpectedly survived serialization")
	}
	blob2, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("re-encoding a decoded collector changed the bytes")
	}
}
