package metrics_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/metrics"
)

func TestDerivedMetrics(t *testing.T) {
	c := metrics.NewCollector()
	c.DataInitiated = 200
	c.DataDelivered = 150
	c.TotalLatency = 150 * 20 * time.Millisecond

	for i := 0; i < 30; i++ {
		c.CountControlTransmit(metrics.RREQ)
	}
	for i := 0; i < 15; i++ {
		c.CountControlTransmit(metrics.RREP)
	}
	for i := 0; i < 5; i++ {
		c.CountControlTransmit(metrics.RERR)
	}
	for i := 0; i < 10; i++ {
		c.CountControlInitiate(metrics.RREQ)
	}
	for i := 0; i < 4; i++ {
		c.CountControlInitiate(metrics.RREP)
	}
	c.RREPUsable = 12

	if got := c.DeliveryRatio(); got != 0.75 {
		t.Fatalf("delivery = %v, want 0.75", got)
	}
	if got := c.TotalControlTransmitted(); got != 50 {
		t.Fatalf("total control = %d, want 50", got)
	}
	if got := c.NetworkLoad(); got != 50.0/150.0 {
		t.Fatalf("network load = %v", got)
	}
	if got := c.RREQLoad(); got != 30.0/150.0 {
		t.Fatalf("rreq load = %v", got)
	}
	if got := c.MeanLatency(); got != 20*time.Millisecond {
		t.Fatalf("latency = %v, want 20ms", got)
	}
	if got := c.RREPInitPerRREQ(); got != 0.4 {
		t.Fatalf("rrep init = %v, want 0.4", got)
	}
	if got := c.RREPRecvPerRREQ(); got != 1.2 {
		t.Fatalf("rrep recv = %v, want 1.2", got)
	}
}

func TestZeroDenominators(t *testing.T) {
	c := metrics.NewCollector()
	if c.DeliveryRatio() != 0 || c.MeanLatency() != 0 ||
		c.RREPInitPerRREQ() != 0 || c.RREPRecvPerRREQ() != 0 || c.MeanSeqno() != 0 {
		t.Fatal("zero-sample metrics must be zero")
	}
	// With no delivered data, loads degrade to raw counts rather than
	// dividing by zero.
	c.CountControlTransmit(metrics.RREQ)
	if c.NetworkLoad() != 1 || c.RREQLoad() != 1 {
		t.Fatalf("loads with zero delivered: %v, %v", c.NetworkLoad(), c.RREQLoad())
	}
}

func TestSeqnoObservation(t *testing.T) {
	c := metrics.NewCollector()
	c.ObserveSeqno(2)
	c.ObserveSeqno(4)
	c.ObserveSeqno(0)
	if got := c.MeanSeqno(); got != 2 {
		t.Fatalf("mean seqno = %v, want 2", got)
	}
}

func TestUnknownKindMapsToOther(t *testing.T) {
	c := metrics.NewCollector()
	c.CountControlTransmit(metrics.ControlKind(99))
	c.CountControlTransmit(metrics.ControlKind(-1))
	if got := c.ControlTransmitted(metrics.OtherControl); got != 2 {
		t.Fatalf("other-control = %d, want 2", got)
	}
	if got := c.TotalControlTransmitted(); got != 2 {
		t.Fatalf("total = %d, want 2", got)
	}
}

func TestKindStrings(t *testing.T) {
	tests := []struct {
		k    metrics.ControlKind
		want string
	}{
		{metrics.RREQ, "RREQ"}, {metrics.RREP, "RREP"}, {metrics.RERR, "RERR"},
		{metrics.Hello, "HELLO"}, {metrics.TC, "TC"}, {metrics.OtherControl, "CTRL"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Fatalf("%d.String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}
