package metrics_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/metrics"
)

func TestHistogramPercentiles(t *testing.T) {
	var h metrics.LatencyHistogram
	// 90 samples at ~5 ms, 10 samples at ~1 s.
	for i := 0; i < 90; i++ {
		h.Observe(4 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(900 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Percentile(50); got != 5*time.Millisecond {
		t.Fatalf("p50 = %v, want 5ms bucket", got)
	}
	if got := h.Percentile(95); got != time.Second {
		t.Fatalf("p95 = %v, want 1s bucket", got)
	}
	if h.Max() != 900*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h metrics.LatencyHistogram
	if h.Percentile(99) != 0 || h.Count() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h metrics.LatencyHistogram
	h.Observe(5 * time.Minute)
	if got := h.Percentile(100); got != 5*time.Minute {
		t.Fatalf("overflow percentile = %v, want the recorded max", got)
	}
}

func TestHistogramMonotonePercentiles(t *testing.T) {
	var h metrics.LatencyHistogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	prev := time.Duration(0)
	for _, p := range []float64{10, 25, 50, 75, 90, 95, 99, 100} {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("percentiles not monotone: p%.0f = %v after %v", p, v, prev)
		}
		prev = v
	}
}
