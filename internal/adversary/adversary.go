// Package adversary turns simulated nodes Byzantine: a seeded,
// declarative engine compromises chosen nodes and makes them forge,
// replay, drop, and flood, while the rest of the toolchain — the
// loopcheck auditor, the conformance conservation harness, the metrics
// collector — keeps watching the honest remainder of the network.
//
// The point is the LDR paper's §5 claim: destination-controlled sequence
// numbers plus feasible-distance labels keep the *honest* successor
// graph loop-free even when a neighbor lies, where AODV's acceptance
// rule (believe any equal-or-newer sequence number) lets one forged
// reply stitch honest nodes into a cycle. A Byzantine node's own table
// is unattested — it can claim anything, so a compromised node exposes
// an empty table to the auditors and every invariant is quantified over
// correct nodes only, the standard convention in Byzantine analysis.
//
// Accounting discipline: a blackholed packet is an accounted drop
// (routing.DropAdversary), never a vanished one, so the conformance
// equation DataInitiated == DataDelivered + DataDropped + InFlight holds
// under every attack; forged and replayed control messages count an
// initiation before transmission, keeping the control ledgers balanced.
//
// Determinism matches internal/fault: the engine draws victims and
// attack randomness from its own splittable stream (conventionally
// root.Split("adversary")) with a sub-stream per compromise and per
// wrapped node, so adding an adversary plan never perturbs mobility,
// traffic, MAC, or fault randomness, and the same seed compromises the
// same nodes at any sweep worker count.
package adversary

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/routing"
)

// Behavior selects an attack repertoire for a compromised node.
type Behavior int

// The five attack behaviors.
const (
	// Blackhole forwards control traffic normally (best camouflage, the
	// routing protocol keeps choosing the node) but silently discards
	// every transit data packet.
	Blackhole Behavior = iota + 1
	// Grayhole drops transit data selectively: with probability DropProb
	// per packet, or deterministically for half the flows (PerFlow).
	Grayhole
	// SeqnoInflate answers overheard route requests with forged replies
	// carrying an enormous destination sequence number and a lying hop
	// count, attracting traffic toward the adversary. Protocols without
	// destination sequence numbers (DSR, OLSR) are structurally immune
	// and the behavior is a no-op there.
	SeqnoInflate
	// StaleReplay records route replies, errors, and topology messages,
	// then re-broadcasts them after they have gone stale, re-advertising
	// expired LDR (sn, fd) labels and dead AODV routes.
	StaleReplay
	// Storm floods forged RREQs and RERRs on a timer, the classic
	// control-plane resource-exhaustion attack the per-neighbor rate
	// limiters in internal/core and internal/aodv are built to contain.
	Storm
)

// String names the behavior for reports and profile errors.
func (b Behavior) String() string {
	switch b {
	case Blackhole:
		return "blackhole"
	case Grayhole:
		return "grayhole"
	case SeqnoInflate:
		return "seqno-inflate"
	case StaleReplay:
		return "stale-replay"
	case Storm:
		return "storm"
	default:
		return "behavior(" + strconv.Itoa(int(b)) + ")"
	}
}

// Compromise turns some nodes Byzantine with one behavior. Victims are
// the explicit Nodes list or Count random picks; At delays activation
// (zero activates at simulation start). Zero-valued knobs select the
// defaults in parentheses.
type Compromise struct {
	Behavior Behavior
	Nodes    []int         // explicit victims; empty → Count random picks
	Count    int           // random victims when Nodes is empty (1)
	At       time.Duration // activation time

	// Grayhole.
	DropProb float64 // per-packet drop probability (0.5)
	PerFlow  bool    // instead drop a deterministic half of the flows

	// SeqnoInflate and Storm forgery. ForgedSeq is the absolute sequence
	// number forged into replies and storm requests (1<<30 — enormous but
	// far from uint32 wraparound); for LDR it becomes the timestamp half
	// of the packed Seqno, equally dominant. MaxHopLie bounds the lying
	// hop counts, drawn uniformly from [0, MaxHopLie] (4): the *same*
	// forged number with *varying* distances is what bends AODV's
	// equal-seqno acceptance into honest-node loops.
	ForgedSeq uint32
	MaxHopLie int

	// StaleReplay.
	ReplayEvery time.Duration // replay cadence (500 ms)
	ReplayAge   time.Duration // minimum recorded age before replay (2 s)
	ReplayBurst int           // messages re-broadcast per tick (4)

	// Storm.
	StormEvery time.Duration // burst cadence (200 ms)
	StormBurst int           // forged RREQs per burst, plus one RERR (8)
}

// withDefaults resolves the zero-valued knobs.
func (c Compromise) withDefaults() Compromise {
	if c.Count <= 0 {
		c.Count = 1
	}
	if c.DropProb <= 0 {
		c.DropProb = 0.5
	}
	if c.ForgedSeq == 0 {
		c.ForgedSeq = 1 << 30
	}
	if c.MaxHopLie <= 0 {
		c.MaxHopLie = 4
	}
	if c.ReplayEvery <= 0 {
		c.ReplayEvery = 500 * time.Millisecond
	}
	if c.ReplayAge <= 0 {
		c.ReplayAge = 2 * time.Second
	}
	if c.ReplayBurst <= 0 {
		c.ReplayBurst = 4
	}
	if c.StormEvery <= 0 {
		c.StormEvery = 200 * time.Millisecond
	}
	if c.StormBurst <= 0 {
		c.StormBurst = 8
	}
	return c
}

// Plan is a named, declarative compromise schedule, the adversarial
// sibling of fault.Plan — the two compose freely in one scenario.
type Plan struct {
	Name        string
	Compromises []Compromise
}

// Stats counts what the compromised nodes actually did. All counters
// are engine-wide sums over every compromised node.
type Stats struct {
	Compromised int    // distinct nodes turned Byzantine
	DataDropped uint64 // transit data blackholed/grayholed (accounted drops)
	ForgedRREPs uint64 // inflated-seqno replies forged
	Replayed    uint64 // stale recorded messages re-broadcast
	StormRREQs  uint64 // forged route requests flooded
	StormRERRs  uint64 // forged route errors flooded
}

// Engine executes a Plan against a network: it wraps the chosen nodes'
// protocols in Byzantine interceptors before the simulation starts.
// Create one per run with NewEngine and call Install before
// routing.Network.Start.
type Engine struct {
	nw    *routing.Network
	plan  Plan
	src   *rng.Source
	until time.Duration

	// Stats accumulates attack activity across all compromised nodes.
	Stats Stats

	wrapped map[routing.NodeID]*wrapped
}

// NewEngine binds a plan to a network. src must be a dedicated stream
// (conventionally root.Split("adversary")); until bounds the attack
// timers so the engine cannot keep a drained event queue alive.
func NewEngine(nw *routing.Network, plan Plan, src *rng.Source, until time.Duration) *Engine {
	return &Engine{
		nw:      nw,
		plan:    plan,
		src:     src,
		until:   until,
		wrapped: make(map[routing.NodeID]*wrapped),
	}
}

// Install resolves every compromise's victims and wraps their protocol
// instances. Each compromise draws victims from its own sub-stream —
// drawn unconditionally, so editing one compromise never shifts the
// victims another picks — and a node named by several compromises gets
// one wrapper carrying all of its behaviors. Must run before the
// network starts (wrapping swaps the node's bound protocol).
func (e *Engine) Install() {
	for i, c := range e.plan.Compromises {
		c = c.withDefaults()
		stream := e.src.Split("compromise" + strconv.Itoa(i))
		for _, id := range e.victims(c, stream) {
			if id < 0 || id >= len(e.nw.Nodes) {
				continue
			}
			e.compromise(routing.NodeID(id), c)
		}
	}
	e.Stats.Compromised = len(e.wrapped)
}

// victims resolves a compromise's targets: the explicit list, or Count
// random distinct nodes (drawn even when unused, for stream stability).
func (e *Engine) victims(c Compromise, stream *rng.Source) []int {
	perm := stream.Perm(len(e.nw.Nodes))
	if len(c.Nodes) > 0 {
		return c.Nodes
	}
	count := c.Count
	if count > len(perm) {
		count = len(perm)
	}
	return perm[:count]
}

func (e *Engine) compromise(id routing.NodeID, c Compromise) {
	w := e.wrapped[id]
	if w == nil {
		node := e.nw.Nodes[id]
		w = newWrapped(e, node, e.src.Split("node"+strconv.Itoa(int(id))))
		e.wrapped[id] = w
		node.SetProtocol(w)
	}
	w.behaviors = append(w.behaviors, c)
}

// Compromised lists the Byzantine nodes in ascending order.
func (e *Engine) Compromised() []routing.NodeID {
	out := make([]routing.NodeID, 0, len(e.wrapped))
	for id := range e.wrapped {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsCompromised reports whether a node is Byzantine.
func (e *Engine) IsCompromised(id routing.NodeID) bool {
	_, ok := e.wrapped[id]
	return ok
}

// String summarizes the plan for logs.
func (p Plan) String() string {
	if len(p.Compromises) == 0 {
		return fmt.Sprintf("adversary plan %q (empty)", p.Name)
	}
	return fmt.Sprintf("adversary plan %q (%d compromises)", p.Name, len(p.Compromises))
}
