package adversary_test

// Attack-property tests for the Byzantine-node subsystem: LDR's honest
// subgraph must stay loop-free under every attack profile, the forged-
// seqno loop AODV is known to form must reproduce from the committed
// regression seed, every attack's packet accounting must balance, the
// receive-side rate limiters must actually suppress storms, and attacked
// runs must be bit-equal across repeats.

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/adversary"
	"github.com/manetlab/ldr/internal/conformance"
	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/scenario"
)

// attackConfig is the reduced-scale rig the property tests run, matching
// the fault suite's: 25 nodes on a 1000 m × 300 m strip, dense enough
// that compromised nodes sit on real multi-hop routes.
func attackConfig(proto scenario.ProtocolName, seed int64, plan *adversary.Plan) scenario.Config {
	return scenario.Config{
		Protocol:      proto,
		Nodes:         25,
		Terrain:       mobility.Terrain{Width: 1000, Height: 300},
		Flows:         5,
		PauseTime:     0,
		MinSpeed:      1,
		MaxSpeed:      20,
		SimTime:       20 * time.Second,
		Seed:          seed,
		AdversaryPlan: plan,
		AuditCadence:  50 * time.Millisecond,
	}
}

func attackPlan(t *testing.T, profile string) *adversary.Plan {
	t.Helper()
	plan, err := adversary.Profile(profile, 25, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return &plan
}

// TestLDRCleanUnderEveryAdversary is the headline property from the
// paper's §5: destination-controlled sequence numbers plus the NDC
// feasibility check keep the honest successor graph loop-free and
// ordering-correct no matter what compromised neighbors forge, replay,
// or flood. The conformance harness audits conservation in the same
// runs, so attacked drops must also stay fully accounted.
func TestLDRCleanUnderEveryAdversary(t *testing.T) {
	for _, profile := range adversary.ProfileNames() {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", profile, seed), func(t *testing.T) {
				spec := conformance.Spec{
					Protocol: string(scenario.LDR), Nodes: 25, Flows: 5,
					SimTimeSec: 20, Seed: seed,
					Profile: "none", Adversary: profile, AuditMS: 50,
				}
				r, err := conformance.CheckSpec(spec)
				if err != nil {
					t.Fatal(err)
				}
				if r.Total != 0 {
					t.Errorf("conservation violated under %s: %d violations (first: %v)",
						profile, r.Total, r.Violations)
				}
				c := r.Collector
				if c.LoopViolations != 0 || c.OrderingViolations != 0 {
					t.Errorf("LDR honest subgraph violated invariants under %s: loops=%d ordering=%d",
						profile, c.LoopViolations, c.OrderingViolations)
				}
			})
		}
	}
}

// TestAODVSeqnoForgeryLoopRegression replays the committed shrunk
// reproducer: forged maximal-seqno replies with varying hop-count lies
// stitch honest AODV nodes into successor-graph loops, while packet
// conservation stays clean — the failure is protocol logic, not
// accounting.
func TestAODVSeqnoForgeryLoopRegression(t *testing.T) {
	spec, err := conformance.LoadSpec(filepath.Join("testdata", "aodv-seqno-loop.json"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := conformance.CheckSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total != 0 {
		t.Errorf("conservation violated: %d violations (first: %v)", r.Total, r.Violations)
	}
	if r.Collector.LoopViolations == 0 {
		t.Errorf("regression seed no longer reproduces the AODV forged-seqno loop (spec %s)", spec)
	}
}

// TestLDRImmuneToCommittedAODVLoop runs the very same reproducer with
// the protocol swapped to LDR: zero loop violations, with the NDC
// feasibility counter showing the forged advertisements were seen and
// refused rather than never offered.
func TestLDRImmuneToCommittedAODVLoop(t *testing.T) {
	spec, err := conformance.LoadSpec(filepath.Join("testdata", "aodv-seqno-loop.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec.Protocol = string(scenario.LDR)
	r, err := conformance.CheckSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := r.Collector
	if r.Total != 0 || c.LoopViolations != 0 || c.OrderingViolations != 0 {
		t.Errorf("LDR on the AODV loop seed: conservation=%d loops=%d ordering=%d",
			r.Total, c.LoopViolations, c.OrderingViolations)
	}
	if c.FeasibilityRejections == 0 {
		t.Error("expected NDC feasibility rejections while refusing forged advertisements, got none")
	}
}

// TestConservationUnderByzantine: every protocol's packet ledger must
// balance under the kitchen-sink profile — dropping, forging, and
// flooding at once.
func TestConservationUnderByzantine(t *testing.T) {
	for _, proto := range scenario.AllProtocols {
		t.Run(string(proto), func(t *testing.T) {
			spec := conformance.Spec{
				Protocol: string(proto), Nodes: 25, Flows: 5,
				SimTimeSec: 20, Seed: 2,
				Profile: "none", Adversary: "byzantine", AuditMS: 50,
			}
			r, err := conformance.CheckSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			if r.Total != 0 {
				t.Errorf("conservation violated: %d violations (first: %v)", r.Total, r.Violations)
			}
		})
	}
}

// TestBlackholeDropsAccounted: every packet a blackhole eats must appear
// as an accounted DropAdversary, and the engine's own count must agree
// with the collector's.
func TestBlackholeDropsAccounted(t *testing.T) {
	for _, proto := range scenario.AllProtocols {
		t.Run(string(proto), func(t *testing.T) {
			res, err := scenario.Run(attackConfig(proto, 1, attackPlan(t, "blackhole")))
			if err != nil {
				t.Fatal(err)
			}
			dropped := res.Collector.DroppedBy(metrics.DropAdversary)
			if res.Adversary.Compromised == 0 {
				t.Fatal("blackhole profile compromised no nodes")
			}
			if dropped == 0 {
				t.Errorf("%s: blackholes on 2/25 nodes ate no transit data over 20 s", proto)
			}
			if dropped != res.Adversary.DataDropped {
				t.Errorf("ledger mismatch: collector counts %d adversary drops, engine counts %d",
					dropped, res.Adversary.DataDropped)
			}
		})
	}
}

// TestStormSuppression: the per-neighbor token buckets in LDR and AODV
// must actually discard flood traffic — the receive-side hardening the
// Storm behavior exists to exercise.
func TestStormSuppression(t *testing.T) {
	for _, proto := range []scenario.ProtocolName{scenario.LDR, scenario.AODV} {
		t.Run(string(proto), func(t *testing.T) {
			res, err := scenario.Run(attackConfig(proto, 1, attackPlan(t, "storm")))
			if err != nil {
				t.Fatal(err)
			}
			if res.Adversary.StormRREQs == 0 {
				t.Fatal("storm profile flooded nothing")
			}
			if res.Collector.RREQSuppressed == 0 {
				t.Errorf("%s: %d forged RREQs flooded but the rate limiter suppressed none",
					proto, res.Adversary.StormRREQs)
			}
		})
	}
}

// TestAdversaryDeterminism: an attacked run is a pure function of its
// config — stats, delivery, control volume, and audit counters must be
// bit-equal across repeats.
func TestAdversaryDeterminism(t *testing.T) {
	cfg := attackConfig(scenario.AODV, 7, attackPlan(t, "byzantine"))
	a, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Adversary != b.Adversary {
		t.Errorf("adversary stats diverged:\n%+v\n%+v", a.Adversary, b.Adversary)
	}
	type digest struct {
		delivered, dropped, ctrl, loops uint64
	}
	da := digest{a.Collector.DataDelivered, a.Collector.DataDropped, a.Collector.TotalControlTransmitted(), a.Collector.LoopViolations}
	db := digest{b.Collector.DataDelivered, b.Collector.DataDropped, b.Collector.TotalControlTransmitted(), b.Collector.LoopViolations}
	if da != db {
		t.Errorf("collector counters diverged:\n%+v\n%+v", da, db)
	}
}

// TestProfileValidation: unknown names must error with the candidate
// list, and every advertised name must resolve.
func TestProfileValidation(t *testing.T) {
	if _, err := adversary.Profile("bogus", 25, time.Minute); err == nil {
		t.Error("unknown profile resolved without error")
	}
	for _, name := range adversary.ProfileNames() {
		if _, err := adversary.Profile(name, 25, time.Minute); err != nil {
			t.Errorf("advertised profile %q failed to resolve: %v", name, err)
		}
	}
}

// TestExplicitVictims: a compromise naming explicit nodes must wrap
// exactly those nodes, regardless of the random stream.
func TestExplicitVictims(t *testing.T) {
	plan := adversary.Plan{Name: "explicit", Compromises: []adversary.Compromise{
		{Behavior: adversary.Blackhole, Nodes: []int{3, 7}},
	}}
	cfg := attackConfig(scenario.LDR, 1, &plan)
	nw, gen, inst, err := scenario.BuildInstrumented(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = gen
	_ = nw
	eng := inst.Adversary
	if eng == nil {
		t.Fatal("no adversary engine installed")
	}
	got := eng.Compromised()
	if len(got) != 2 || int(got[0]) != 3 || int(got[1]) != 7 {
		t.Errorf("compromised %v, want [3 7]", got)
	}
	if !eng.IsCompromised(3) || eng.IsCompromised(4) {
		t.Error("IsCompromised disagrees with the explicit victim list")
	}
}
