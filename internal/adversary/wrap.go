package adversary

import (
	"time"

	"github.com/manetlab/ldr/internal/aodv"
	"github.com/manetlab/ldr/internal/core"
	"github.com/manetlab/ldr/internal/dsr"
	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/olsr"
	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/routing"
)

// stormTTL is the hop budget on forged flood requests: the protocols'
// default NetDiameter, so every storm packet is relayed network-wide by
// nodes that have not rate-limited the attacker yet.
const stormTTL = 35

// recordCap bounds the stale-replay ring buffer per compromised node.
const recordCap = 32

// recorded is one overheard control message retained for replay.
type recorded struct {
	at  time.Duration
	msg routing.Message
}

// wrapped is the Byzantine interceptor around one node's real protocol
// instance. The inner protocol keeps running — relaying floods,
// answering requests, holding honestly learned routes — which is both
// the best camouflage and what keeps the node attracting traffic; the
// wrapper adds the lying on top.
//
// Observability: the wrapper exposes an EMPTY routing table. A
// Byzantine node's table rows are under the attacker's control, so a
// cycle through them is trivially constructible and proves nothing;
// what the loopcheck auditor must certify is the honest subgraph, and
// hiding the compromised table is exactly the quantification
// "invariants hold over correct nodes" from Byzantine analysis. Held
// data and control, by contrast, ARE delegated: the packets buffered
// inside the inner protocol are real, and hiding them would break the
// conformance census.
type wrapped struct {
	eng   *Engine
	node  *routing.Node
	inner routing.Protocol
	src   *rng.Source

	behaviors  []Compromise
	forger     forger
	recorded   []recorded
	flowSalt   int
	stormReqID uint32
	timersOn   bool
	stopped    bool
}

var (
	_ routing.Protocol           = (*wrapped)(nil)
	_ routing.TableAppender      = (*wrapped)(nil)
	_ routing.TableSnapshotter   = (*wrapped)(nil)
	_ routing.Resetter           = (*wrapped)(nil)
	_ routing.HeldDataWalker     = (*wrapped)(nil)
	_ routing.HeldControlWalker  = (*wrapped)(nil)
	_ routing.DataFailureHandler = (*wrapped)(nil)
	_ routing.MessageRecycler    = (*wrapped)(nil)
)

func newWrapped(eng *Engine, node *routing.Node, src *rng.Source) *wrapped {
	w := &wrapped{
		eng:        eng,
		node:       node,
		inner:      node.Protocol(),
		src:        src,
		flowSalt:   src.Intn(2),
		stormReqID: 1 << 20, // far above the inner protocol's request IDs
	}
	switch w.inner.(type) {
	case *aodv.AODV:
		w.forger = aodvForger{}
	case *core.LDR:
		w.forger = ldrForger{}
	default:
		// DSR and OLSR carry no destination sequence number to forge;
		// their storms re-broadcast recorded control traffic instead.
		w.forger = genericForger{}
	}
	return w
}

// active returns the first activated compromise with the behavior, or
// nil before its activation time.
func (w *wrapped) active(b Behavior) *Compromise {
	now := w.node.Now()
	for i := range w.behaviors {
		if c := &w.behaviors[i]; c.Behavior == b && now >= c.At {
			return c
		}
	}
	return nil
}

// --- routing.Protocol ---

// Start starts the inner protocol and, once per run, the attack timers.
// A reboot after a crash re-enters here; the timers survive on the
// simulator and need no rescheduling (their ticks check Down).
func (w *wrapped) Start() {
	w.inner.Start()
	if w.timersOn {
		return
	}
	w.timersOn = true
	for i := range w.behaviors {
		c := &w.behaviors[i]
		start := c.At
		switch c.Behavior {
		case Storm:
			if start <= 0 {
				start = c.StormEvery
			}
			w.eng.nw.Sim.Every(start, c.StormEvery, w.eng.until, func() { w.stormTick(c) })
		case StaleReplay:
			if start <= 0 {
				start = c.ReplayEvery
			}
			w.eng.nw.Sim.Every(start, c.ReplayEvery, w.eng.until, func() { w.replayTick(c) })
		}
	}
}

// Stop stops the inner protocol and silences the attack timers.
func (w *wrapped) Stop() {
	w.stopped = true
	w.inner.Stop()
}

// HandleData intercepts transit data for the dropping behaviors; data
// addressed to the compromised node itself is delivered normally (a
// blackhole that stopped receiving would blow its cover immediately).
// Every adversarial discard is an accounted drop — DropAdversary — so
// the conservation equation holds under attack.
func (w *wrapped) HandleData(from routing.NodeID, pkt *routing.DataPacket) {
	if pkt.Dst != w.node.ID() {
		if w.active(Blackhole) != nil {
			w.node.DropData(pkt, routing.DropAdversary)
			w.eng.Stats.DataDropped++
			return
		}
		if c := w.active(Grayhole); c != nil && w.grayDrop(c, pkt) {
			w.node.DropData(pkt, routing.DropAdversary)
			w.eng.Stats.DataDropped++
			return
		}
	}
	w.inner.HandleData(from, pkt)
}

// grayDrop decides a grayhole discard: per-flow (a deterministic half of
// all (src, dst) pairs, chosen by a seeded salt) or per-packet with
// DropProb.
func (w *wrapped) grayDrop(c *Compromise, pkt *routing.DataPacket) bool {
	if c.PerFlow {
		return (int(pkt.Src)+int(pkt.Dst)+w.flowSalt)%2 == 0
	}
	return w.src.Float64() < c.DropProb
}

// HandleControl records replay material, forges inflated-seqno replies
// to overheard requests, and always lets the inner protocol process the
// original message (the adversary stays a correctly-behaving router on
// the control plane it does not actively forge).
func (w *wrapped) HandleControl(from routing.NodeID, msg routing.Message) {
	if w.active(StaleReplay) != nil || w.active(Storm) != nil {
		w.record(msg)
	}
	if c := w.active(SeqnoInflate); c != nil {
		if w.forger.forgeReply(w, from, msg, c) {
			w.eng.Stats.ForgedRREPs++
		}
	}
	w.inner.HandleControl(from, msg)
}

// Originate passes the node's own traffic through untouched.
func (w *wrapped) Originate(pkt *routing.DataPacket) { w.inner.Originate(pkt) }

// DataFailed delegates MAC-level data failures to the inner protocol's
// route maintenance. The node resolves this handler from its installed
// protocol — the wrapper — so without the delegation a failed frame's
// packet would never be returned and the conformance census would flag
// it as vanished.
func (w *wrapped) DataFailed(next routing.NodeID, pkt *routing.DataPacket) {
	if h, ok := w.inner.(routing.DataFailureHandler); ok {
		h.DataFailed(next, pkt)
	}
}

// RecycleMessage delegates wire-message recycling to the inner protocol's
// pools. The wrapper's own sends (forged and replayed messages) are plain
// values, which every recycler ignores, so only the inner protocol's
// pooled pointers ever come back through here.
func (w *wrapped) RecycleMessage(msg routing.Message) {
	if r, ok := w.inner.(routing.MessageRecycler); ok {
		r.RecycleMessage(msg)
	}
}

// record retains replies, errors, and topology messages — the messages
// that carry route state worth replaying after it goes stale. The wire
// path delivers pooled pointers that the sender recycles once the frame
// completes, so the wrapper must deep-clone what it keeps.
func (w *wrapped) record(msg routing.Message) {
	switch msg.Kind() {
	case metrics.RREP, metrics.RERR, metrics.TC:
	default:
		return
	}
	if len(w.recorded) >= recordCap {
		copy(w.recorded, w.recorded[1:])
		w.recorded = w.recorded[:recordCap-1]
	}
	w.recorded = append(w.recorded, recorded{at: w.node.Now(), msg: cloneMessage(msg)})
}

// cloneMessage deep-copies a pooled pointer message into a self-contained
// value; value messages (from tests or other wrappers) are already safe
// copies and pass through unchanged.
func cloneMessage(msg routing.Message) routing.Message {
	switch m := msg.(type) {
	case *core.RREP:
		return *m
	case *core.RERR:
		cp := *m
		cp.Unreachable = append([]core.RERRDest(nil), m.Unreachable...)
		return cp
	case *aodv.RREP:
		return *m
	case *aodv.RERR:
		cp := *m
		cp.Unreachable = append([]aodv.RERRDest(nil), m.Unreachable...)
		return cp
	case *dsr.RREP:
		cp := *m
		cp.Route = append([]routing.NodeID(nil), m.Route...)
		return cp
	case *dsr.RERR:
		cp := *m
		cp.Route = append([]routing.NodeID(nil), m.Route...)
		return cp
	case *olsr.TC:
		cp := *m
		cp.Selectors = append([]routing.NodeID(nil), m.Selectors...)
		return cp
	}
	return msg
}

// --- attack timers ---

func (w *wrapped) stormTick(c *Compromise) {
	if w.stopped || w.node.Down() {
		return
	}
	w.forger.storm(w, c)
}

// replayTick re-broadcasts up to ReplayBurst recorded messages that
// have aged past ReplayAge: expired LDR (sn, fd) labels, dead AODV
// routes, stale OLSR topology. Each replay counts an initiation before
// transmission, keeping the control ledgers balanced.
func (w *wrapped) replayTick(c *Compromise) {
	if w.stopped || w.node.Down() {
		return
	}
	now := w.node.Now()
	sent := 0
	for _, rec := range w.recorded {
		if sent >= c.ReplayBurst {
			break
		}
		if now-rec.at < c.ReplayAge {
			continue
		}
		w.node.Metrics().CountControlInitiate(rec.msg.Kind())
		w.node.SendControl(routing.BroadcastID, rec.msg, nil)
		w.eng.Stats.Replayed++
		sent++
	}
}

// --- delegated observability ---

// AppendTable implements routing.TableAppender with an empty table: a
// Byzantine node's routing claims are unattested, so the loopcheck
// auditor scores the honest subgraph only (see the package comment).
func (w *wrapped) AppendTable(out []routing.RouteEntry) []routing.RouteEntry { return out }

// SnapshotTable implements routing.TableSnapshotter (empty; see
// AppendTable).
func (w *wrapped) SnapshotTable() []routing.RouteEntry { return nil }

// Reset implements routing.Resetter: the crash wipes the inner
// protocol's volatile state and the replay buffer, but the compromise
// itself persists across the reboot — malware survives power cycles.
func (w *wrapped) Reset() {
	if r, ok := w.inner.(routing.Resetter); ok {
		r.Reset()
	}
	w.recorded = w.recorded[:0]
}

// WalkHeldData implements routing.HeldDataWalker by delegation: packets
// buffered inside the inner protocol are real and must stay visible to
// the conformance census.
func (w *wrapped) WalkHeldData(fn func(*routing.DataPacket)) {
	if h, ok := w.inner.(routing.HeldDataWalker); ok {
		h.WalkHeldData(fn)
	}
}

// WalkHeldControl implements routing.HeldControlWalker by delegation.
func (w *wrapped) WalkHeldControl(fn func(metrics.ControlKind)) {
	if h, ok := w.inner.(routing.HeldControlWalker); ok {
		h.WalkHeldControl(fn)
	}
}

// ReportSeqnos delegates the Fig. 7 sequence-number sampling when the
// inner protocol supports it (the interface itself lives in
// internal/scenario; structural typing matches this method to it).
func (w *wrapped) ReportSeqnos(col *metrics.Collector) {
	if r, ok := w.inner.(interface{ ReportSeqnos(*metrics.Collector) }); ok {
		r.ReportSeqnos(col)
	}
}

// Unwrap exposes the inner protocol for tests.
func (w *wrapped) Unwrap() routing.Protocol { return w.inner }

// --- protocol-specific forgery ---

// forger adapts the forging behaviors to one protocol's wire formats.
type forger interface {
	// forgeReply answers an overheard route request with a forged,
	// inflated-seqno reply unicast back to the relay that delivered it,
	// reporting whether a reply was sent.
	forgeReply(w *wrapped, from routing.NodeID, msg routing.Message, c *Compromise) bool
	// storm emits one burst of forged control traffic.
	storm(w *wrapped, c *Compromise)
}

// aodvForger forges AODV messages. The loop construction: every forged
// RREP carries the SAME enormous destination sequence number with a
// VARYING hop-count lie. AODV accepts an equal-seqno reply whenever the
// current route is expired or longer, and forwards every RREP along
// reverse routes regardless — so two honest nodes can each come to
// believe the other is its next hop toward the destination at the same
// forged number, a cycle among correct nodes that the loopcheck auditor
// flags. LDR is immune to the same play: relays re-advertise their OWN
// (sn, fd) labels rather than incrementing the forged distance, and NDC
// refuses any advertisement that does not beat the stored label.
type aodvForger struct{}

func (aodvForger) forgeReply(w *wrapped, from routing.NodeID, msg routing.Message, c *Compromise) bool {
	var q aodv.RREQ
	switch m := msg.(type) {
	case *aodv.RREQ:
		q = *m
	case aodv.RREQ:
		q = m
	default:
		return false
	}
	if q.Dst == w.node.ID() || q.Origin == w.node.ID() {
		return false
	}
	p := aodv.RREP{
		Dst:      q.Dst,
		DstSeq:   c.ForgedSeq,
		Origin:   q.Origin,
		HopCount: w.src.Intn(c.MaxHopLie + 1),
		Lifetime: 9 * time.Second,
	}
	w.node.Metrics().CountControlInitiate(metrics.RREP)
	w.node.SendControl(from, p, nil)
	return true
}

func (aodvForger) storm(w *wrapped, c *Compromise) {
	me := w.node.ID()
	n := len(w.eng.nw.Nodes)
	if n < 2 {
		return
	}
	for i := 0; i < c.StormBurst; i++ {
		dst := w.randOther(n)
		w.stormReqID++
		q := aodv.RREQ{
			Dst:       dst,
			DstSeq:    c.ForgedSeq, // unanswerable: nobody honest holds this
			Origin:    me,
			OriginSeq: c.ForgedSeq,
			ReqID:     w.stormReqID,
			TTL:       stormTTL,
		}
		w.node.Metrics().CountControlInitiate(metrics.RREQ)
		w.node.SendControl(routing.BroadcastID, q, nil)
		w.eng.Stats.StormRREQs++
	}
	e := aodv.RERR{Unreachable: []aodv.RERRDest{{Dst: w.randOther(n), Seq: c.ForgedSeq}}}
	w.node.Metrics().CountControlInitiate(metrics.RERR)
	w.node.SendControl(routing.BroadcastID, e, nil)
	w.eng.Stats.StormRERRs++
}

// ldrForger forges LDR messages. The forged sequence number occupies
// the timestamp half of the packed Seqno, dominating any honest value;
// the destination recovers by jumping its own number past the forgery
// the next time it answers (ldr.destinationReply's stale-universe
// branch) — destination control of the number is exactly the paper's §5
// defense.
type ldrForger struct{}

func (ldrForger) forgeReply(w *wrapped, from routing.NodeID, msg routing.Message, c *Compromise) bool {
	var q core.RREQ
	switch m := msg.(type) {
	case *core.RREQ:
		q = *m
	case core.RREQ:
		q = m
	default:
		return false
	}
	if q.Dst == w.node.ID() || q.Origin == w.node.ID() {
		return false
	}
	p := core.RREP{
		Dst:      q.Dst,
		DstSeq:   core.NewSeqno(c.ForgedSeq, 0),
		Origin:   q.Origin,
		ReqID:    q.ReqID,
		Dist:     w.src.Intn(c.MaxHopLie + 1),
		Lifetime: 10 * time.Second,
	}
	w.node.Metrics().CountControlInitiate(metrics.RREP)
	w.node.SendControl(from, p, nil)
	return true
}

func (ldrForger) storm(w *wrapped, c *Compromise) {
	me := w.node.ID()
	n := len(w.eng.nw.Nodes)
	if n < 2 {
		return
	}
	forged := core.NewSeqno(c.ForgedSeq, 0)
	for i := 0; i < c.StormBurst; i++ {
		dst := w.randOther(n)
		w.stormReqID++
		q := core.RREQ{
			Dst:        dst,
			DstSeq:     forged, // unanswerable by honest state
			HaveDstSeq: true,
			Origin:     me,
			OriginSeq:  forged,
			ReqID:      w.stormReqID,
			FD:         core.Infinity,
			AnsDist:    core.Infinity,
			TTL:        stormTTL,
		}
		w.node.Metrics().CountControlInitiate(metrics.RREQ)
		w.node.SendControl(routing.BroadcastID, q, nil)
		w.eng.Stats.StormRREQs++
	}
	e := core.RERR{Unreachable: []core.RERRDest{{Dst: w.randOther(n), Seq: forged}}}
	w.node.Metrics().CountControlInitiate(metrics.RERR)
	w.node.SendControl(routing.BroadcastID, e, nil)
	w.eng.Stats.StormRERRs++
}

// genericForger covers protocols without destination sequence numbers
// (DSR, OLSR): nothing to forge into a reply, and its storm
// re-broadcasts recorded control traffic as a flooding attack instead
// of fabricating messages.
type genericForger struct{}

func (genericForger) forgeReply(*wrapped, routing.NodeID, routing.Message, *Compromise) bool {
	return false
}

func (genericForger) storm(w *wrapped, c *Compromise) {
	for i := 0; i < len(w.recorded) && i < c.StormBurst; i++ {
		msg := w.recorded[i].msg
		w.node.Metrics().CountControlInitiate(msg.Kind())
		w.node.SendControl(routing.BroadcastID, msg, nil)
		if msg.Kind() == metrics.RERR {
			w.eng.Stats.StormRERRs++
		} else {
			w.eng.Stats.StormRREQs++
		}
	}
}

// randOther draws a uniform node id other than the wrapper's own.
func (w *wrapped) randOther(n int) routing.NodeID {
	id := w.src.Intn(n - 1)
	if id >= int(w.node.ID()) {
		id++
	}
	return routing.NodeID(id)
}
