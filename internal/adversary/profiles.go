package adversary

import (
	"fmt"
	"time"
)

// ProfileNames lists the built-in adversary profiles in presentation
// order. "none" is a real profile (an empty plan), so attack-free cells
// appear in the same tables as attacked ones.
func ProfileNames() []string {
	return []string{"none", "blackhole", "grayhole", "seqno-forge", "replay", "storm", "byzantine"}
}

// Profile returns the named built-in plan scaled to a node count and
// run length, mirroring fault.Profile: the same profile is meaningful
// in a 20-second test and a 900-second scenario. Attack pressure scales
// with the network — each single-behavior profile compromises ~10% of
// the nodes; "byzantine" stacks three behaviors on separate picks.
func Profile(name string, nodes int, simTime time.Duration) (Plan, error) {
	tenth := max(nodes/10, 1)
	warmup := simTime / 10 // let routes form before the attack starts
	switch name {
	case "none":
		return Plan{Name: "none"}, nil

	case "blackhole":
		return Plan{Name: "blackhole", Compromises: []Compromise{{
			Behavior: Blackhole,
			Count:    tenth,
			At:       warmup,
		}}}, nil

	case "grayhole":
		return Plan{Name: "grayhole", Compromises: []Compromise{{
			Behavior: Grayhole,
			Count:    tenth,
			At:       warmup,
			DropProb: 0.5,
		}}}, nil

	case "seqno-forge":
		return Plan{Name: "seqno-forge", Compromises: []Compromise{{
			Behavior: SeqnoInflate,
			Count:    tenth,
			At:       warmup,
		}}}, nil

	case "replay":
		return Plan{Name: "replay", Compromises: []Compromise{{
			Behavior:    StaleReplay,
			Count:       tenth,
			At:          warmup,
			ReplayEvery: max(simTime/60, 250*time.Millisecond),
			ReplayAge:   max(simTime/15, 2*time.Second),
		}}}, nil

	case "storm":
		return Plan{Name: "storm", Compromises: []Compromise{{
			Behavior:   Storm,
			Count:      tenth,
			At:         warmup,
			StormEvery: max(simTime/150, 100*time.Millisecond),
		}}}, nil

	case "byzantine":
		// The kitchen sink: dropping, forging, and flooding at once, each
		// on its own victim draw (picks may overlap — a node can both
		// blackhole and forge, like a real compromised device).
		return Plan{Name: "byzantine", Compromises: []Compromise{
			{Behavior: Blackhole, Count: tenth, At: warmup},
			{Behavior: SeqnoInflate, Count: tenth, At: warmup},
			{
				Behavior:   Storm,
				Count:      tenth,
				At:         simTime / 5,
				StormEvery: max(simTime/75, 200*time.Millisecond),
				StormBurst: 4,
			},
		}}, nil

	default:
		return Plan{}, fmt.Errorf("adversary: unknown profile %q (have %v)", name, ProfileNames())
	}
}
