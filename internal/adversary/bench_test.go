package adversary_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/adversary"
	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/scenario"
)

// BenchmarkAttackImpact records what each attack profile costs the two
// on-demand protocols at paper scale (50 nodes, 10 flows, 30 s): an
// attacked run paired with an attack-free baseline on the same seed per
// iteration, reported as custom metrics — delivery under attack vs
// baseline, the control-amplification factor (attacked control
// transmissions / baseline), accounted adversary drops, and the NDC
// feasibility rejections that are LDR's defense doing its work. The
// `make bench-adversary` target snapshots these into
// BENCH_adversary.json.
func BenchmarkAttackImpact(b *testing.B) {
	for _, profile := range adversary.ProfileNames() {
		if profile == "none" {
			continue
		}
		for _, proto := range []scenario.ProtocolName{scenario.LDR, scenario.AODV} {
			b.Run(profile+"/"+string(proto), func(b *testing.B) {
				plan, err := adversary.Profile(profile, 50, 30*time.Second)
				if err != nil {
					b.Fatal(err)
				}
				var attacked, baseline, ctrlAtk, ctrlBase, drops, feasRej, loops float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					base := scenario.Nodes50(proto, 10, 0, int64(i+1))
					base.SimTime = 30 * time.Second
					base.AuditCadence = 100 * time.Millisecond
					bres, err := scenario.Run(base)
					if err != nil {
						b.Fatal(err)
					}
					atk := base
					atk.AdversaryPlan = &plan
					ares, err := scenario.Run(atk)
					if err != nil {
						b.Fatal(err)
					}
					attacked += 100 * ares.Collector.DeliveryRatio()
					baseline += 100 * bres.Collector.DeliveryRatio()
					ctrlAtk += float64(ares.Collector.TotalControlTransmitted())
					ctrlBase += float64(bres.Collector.TotalControlTransmitted())
					drops += float64(ares.Collector.DroppedBy(metrics.DropAdversary))
					feasRej += float64(ares.Collector.FeasibilityRejections)
					loops += float64(ares.Collector.LoopViolations)
				}
				b.StopTimer()
				n := float64(b.N)
				b.ReportMetric(attacked/n, "delivery-%")
				b.ReportMetric(baseline/n, "baseline-%")
				if ctrlBase > 0 {
					b.ReportMetric(ctrlAtk/ctrlBase, "caf")
				}
				b.ReportMetric(drops/n, "adv-drops/run")
				b.ReportMetric(feasRej/n, "feas-rej/run")
				b.ReportMetric(loops/n, "loops/run")
			})
		}
	}
}
