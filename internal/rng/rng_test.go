package rng_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/manetlab/ldr/internal/rng"
)

func TestSameSeedSameStream(t *testing.T) {
	a, b := rng.New(42), rng.New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := rng.New(1), rng.New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 identical draws across different seeds", same)
	}
}

func TestSplitIsStableRegardlessOfParentDraws(t *testing.T) {
	a := rng.New(7)
	s1 := a.Split("mac")
	first := s1.Uint64()

	b := rng.New(7)
	b.Uint64() // advance the parent before splitting
	s2 := b.Split("mac")
	if got := s2.Uint64(); got != first {
		t.Fatalf("split stream depends on parent draw position: %d vs %d", got, first)
	}
}

func TestSplitNamesAreIndependent(t *testing.T) {
	a := rng.New(7)
	if a.Split("mac").Uint64() == a.Split("mobility").Uint64() {
		t.Fatal("differently named splits produced the same first draw")
	}
}

func TestIntnBounds(t *testing.T) {
	r := rng.New(3)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	rng.New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := rng.New(5)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %.4f, want ≈ 0.5", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := rng.New(9)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %.4f, want ≈ 1", mean)
	}
}

func TestRangeProperty(t *testing.T) {
	r := rng.New(11)
	f := func(lo, span uint16) bool {
		l := float64(lo)
		h := l + float64(span) + 1
		v := r.Range(l, h)
		return v >= l && v < h
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := rng.New(13)
	f := func(n uint8) bool {
		p := r.Perm(int(n))
		if len(p) != int(n) {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestReseedResets(t *testing.T) {
	r := rng.New(21)
	first := r.Uint64()
	r.Uint64()
	r.Reseed(21)
	if got := r.Uint64(); got != first {
		t.Fatalf("Reseed did not reset the stream: %d vs %d", got, first)
	}
}
