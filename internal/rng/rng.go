// Package rng provides deterministic, splittable pseudo-random number
// streams for the simulator.
//
// Every stochastic component of a simulation (mobility, traffic, MAC
// backoff, protocol jitter) draws from its own named stream derived from a
// single scenario seed. Splitting by name keeps components decoupled: adding
// a random draw to one component does not perturb the sequences seen by the
// others, so regression baselines stay stable.
package rng

import (
	"hash/fnv"
	"math"
)

// Source is a deterministic PRNG stream. It implements a 64-bit
// SplitMix64-seeded xoshiro256** generator, which is small, fast, and has
// well-understood statistical quality for simulation workloads.
//
// Source is not safe for concurrent use; the simulator is single-threaded
// by design.
type Source struct {
	s    [4]uint64
	seed int64 // the seed this stream was created from, for Split

	// draws counts Uint64 calls across the whole split tree: every child
	// shares its root's counter, so Draws on the root totals the tree. A
	// cheap determinism fingerprint — two runs of the same scenario must
	// consume exactly the same number of random words.
	draws *uint64
}

// New returns a Source seeded from seed.
func New(seed int64) *Source {
	var src Source
	src.draws = new(uint64)
	src.Reseed(seed)
	return &src
}

// Reseed resets the stream to the state derived from seed.
func (r *Source) Reseed(seed int64) {
	r.seed = seed
	// SplitMix64 expansion of the seed into four non-zero words.
	x := uint64(seed)
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1 // xoshiro must not start from the all-zero state
	}
}

// Split derives an independent stream keyed by name. The derivation uses
// the parent's original seed, not its current state, so derived streams
// are stable regardless of the order of creation or of draws from the
// parent.
func (r *Source) Split(name string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	child := New(int64(h.Sum64()) ^ r.seed)
	child.draws = r.draws // one counter for the whole tree
	return child
}

// Draws returns the number of random words drawn so far across this
// stream and every stream split from it (transitively).
func (r *Source) Draws() uint64 { return *r.draws }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *Source) Uint64() uint64 {
	*r.draws++
	rotl := func(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Int63 returns a non-negative random 63-bit integer.
func (r *Source) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation would be faster, but
	// modulo over 64 bits has negligible bias for the n used here.
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi).
func (r *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1,
// via inversion sampling.
func (r *Source) ExpFloat64() float64 {
	// 1-Float64() is in (0, 1], avoiding log(0).
	return -math.Log(1 - r.Float64())
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
