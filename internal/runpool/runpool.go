// Package runpool provides run-local free lists: the allocation-recycling
// primitive behind the simulator's zero-GC steady state.
//
// A Pool is deliberately NOT a sync.Pool. Every simulation run is
// single-threaded, and the parallel sweep gives each run its own pools, so
// no synchronization is needed and — unlike sync.Pool — nothing is emptied
// behind the run's back by the garbage collector. A pool's free list grows
// to the run's high-water mark of simultaneously live objects and then
// every Get is a pointer pop: once warm, the steady state allocates
// nothing.
//
// Recycle invariant: Put hands the object's memory back to the pool, so
// the caller must not retain the pointer, and the next Get's caller must
// overwrite every field it reads (Put does not zero the object — resetting
// is the owner's job precisely because owners know which fields are cheap
// to reset and which, like backing arrays of slices, are the point of
// recycling).
package runpool

// Pool is a free list of *T. The zero value is ready to use.
type Pool[T any] struct {
	free []*T
}

// Get pops a recycled object, or allocates a zero T when the pool is
// empty. Objects come back exactly as Put left them — callers reset.
func (p *Pool[T]) Get() *T {
	if n := len(p.free); n > 0 {
		x := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return x
	}
	return new(T)
}

// Put recycles an object. The caller must not use x afterwards.
func (p *Pool[T]) Put(x *T) {
	p.free = append(p.free, x)
}

// Len returns the number of objects currently on the free list (tests).
func (p *Pool[T]) Len() int { return len(p.free) }
