package modelcheck_test

// The abstraction bridge: every committed witness seed must reproduce
// its violation under the FULL simulator — MAC contention, radio timing,
// real timers — not just under the abstract model that found it. This is
// the arbiter for the witness translator's heuristics (time mapping,
// link-outage placement): if a translation rule drifts, this test
// catches it against the committed artifacts.
//
// The same schedule is then replayed with LDR substituted for the
// violating protocol: the point of the paper's design is that the exact
// choreography that loops AODV leaves LDR loop-free.

import (
	"path/filepath"
	"testing"

	"github.com/manetlab/ldr/internal/conformance"
	"github.com/manetlab/ldr/internal/scenario"
)

func TestWitnessBridge(t *testing.T) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 {
		t.Fatal("no committed witness seeds under testdata/")
	}
	for _, path := range seeds {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			spec, err := conformance.LoadSpec(path)
			if err != nil {
				t.Fatal(err)
			}
			if spec.Script == nil {
				t.Fatalf("%s is not a scripted witness seed", path)
			}

			rep, err := conformance.CheckSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s replay: loops=%d ordering=%d audits=%d",
				spec.Protocol, rep.Collector.LoopViolations,
				rep.Collector.OrderingViolations, rep.Collector.AuditSnapshots)
			if rep.Collector.AuditSnapshots == 0 {
				t.Fatal("auditor never ran")
			}
			if rep.Collector.LoopViolations == 0 {
				t.Fatalf("witness seed %s no longer reproduces a loop under the full simulator", path)
			}

			// LDR under the identical choreography: same positions, same
			// origination times, same crash and link outage.
			ldr := spec
			ldr.Protocol = string(scenario.LDR)
			lrep, err := conformance.CheckSpec(ldr)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("ldr replay: loops=%d ordering=%d feasrej=%d",
				lrep.Collector.LoopViolations, lrep.Collector.OrderingViolations,
				lrep.Collector.FeasibilityRejections)
			if l, o := lrep.Collector.LoopViolations, lrep.Collector.OrderingViolations; l != 0 || o != 0 {
				t.Fatalf("LDR violated invariants under the witness schedule: loops=%d ordering=%d", l, o)
			}
		})
	}
}
