package modelcheck

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/manetlab/ldr/internal/conformance"
)

func TestConnectedGraphCounts(t *testing.T) {
	for _, tc := range []struct{ n, want int }{{2, 1}, {3, 2}, {4, 6}, {5, 21}} {
		gs, err := ConnectedGraphs(tc.n)
		if err != nil {
			t.Fatalf("ConnectedGraphs(%d): %v", tc.n, err)
		}
		if len(gs) != tc.want {
			t.Errorf("ConnectedGraphs(%d) = %d graphs, want %d", tc.n, len(gs), tc.want)
		}
	}
}

func TestNamedTopology(t *testing.T) {
	for name, g := range namedTopologies {
		got, err := NamedTopology(name)
		if err != nil {
			t.Fatalf("NamedTopology(%q): %v", name, err)
		}
		if got.N != g.N || len(got.Edges) != len(g.Edges) {
			t.Errorf("NamedTopology(%q) = %v", name, got)
		}
	}
	if g, err := NamedTopology("n4-2"); err != nil || g.N != 4 {
		t.Errorf("NamedTopology(n4-2) = %v, %v", g, err)
	}
	if _, err := NamedTopology("n4-99"); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("NamedTopology(n4-99) error = %v, want out-of-range", err)
	}
	if _, err := NamedTopology("pentagon"); err == nil || !strings.Contains(err.Error(), "line3") {
		t.Errorf("NamedTopology(pentagon) error = %v, want a list of valid names", err)
	}
}

// TestLayoutsRealizeSweepDomain pins the property witness replay depends
// on: every graph in the checker's sweep domain (all connected 3- and
// 4-node graphs) and every named 5-node shape has a unit-disk layout
// under the simulator's default radio range.
func TestLayoutsRealizeSweepDomain(t *testing.T) {
	var graphs []Graph
	for _, n := range []int{3, 4} {
		gs, err := ConnectedGraphs(n)
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, gs...)
	}
	for _, name := range []string{"line5", "ring5"} {
		g, err := NamedTopology(name)
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, g)
	}
	for _, g := range graphs {
		pts, err := Layout(g)
		if err != nil {
			t.Errorf("Layout(%s): %v", g, err)
			continue
		}
		if len(pts) != g.N {
			t.Errorf("Layout(%s): %d points for %d nodes", g, len(pts), g.N)
		}
	}
}

func TestSupports(t *testing.T) {
	for name, want := range map[string]bool{"ldr": true, "aodv": true, "dsr": false, "olsr": false} {
		if got := Supports(name); got != want {
			t.Errorf("Supports(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestCheckRejectsUnsupportedProtocol(t *testing.T) {
	g, _ := NamedTopology("line3")
	_, err := Check(&Scenario{Graph: g, Protocol: "dsr", Seed: 1}, Options{MaxDepth: 2})
	if err == nil || !strings.Contains(err.Error(), "ModelStater") {
		t.Fatalf("Check(dsr) error = %v, want a ModelStater complaint", err)
	}
}

// TestEncoderDeterminism guards state-key stability: materializing the
// same trace twice must produce identical keys (the BFS relies on this
// to dedupe), even though the encoder walks Go maps internally.
func TestEncoderDeterminism(t *testing.T) {
	g, _ := NamedTopology("line3")
	sc := &Scenario{Graph: g, Protocol: "ldr", Seed: 1, Flows: DefaultFlows(g)}
	trace := []Action{
		{Kind: ActOriginate, Flow: 0},
		{Kind: ActDeliver, From: 0, To: 1},
		{Kind: ActDeliver, From: 1, To: 2},
	}
	enc := newEncoder(g.N, automorphisms(g, []int{0, 1, 2}))
	var keys []stateKey
	for i := 0; i < 3; i++ {
		w, err := materialize(sc, trace)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, enc.key(w, budgets{}))
	}
	if keys[0] != keys[1] || keys[1] != keys[2] {
		t.Fatalf("same trace produced distinct state keys: %x %x %x", keys[0], keys[1], keys[2])
	}
}

// TestLDRLine3Clean is the checker's positive verdict at the van
// Glabbeek regime: on the 3-node line with a crash-reboot and a message
// loss in the budget, LDR's bounded state space contains no loop or
// ordering violation. (The identical budget finds the AODV loop — see
// TestAODVLine3Violation — so the clean verdict is not vacuous.)
func TestLDRLine3Clean(t *testing.T) {
	g, _ := NamedTopology("line3")
	sc := &Scenario{Graph: g, Protocol: "ldr", Seed: 1}
	res, err := Check(sc, Options{MaxDepth: 12, MaxResets: 1, MaxDrops: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("states=%d transitions=%d depth=%d elapsed=%s", res.States, res.Transitions, res.Depth, res.Elapsed)
	if res.Violation != nil {
		t.Fatalf("LDR violated an invariant:\n%s", res.Violation)
	}
	if res.Truncated {
		t.Fatal("exploration truncated; the verdict is not exhaustive")
	}
	if res.States < 1000 {
		t.Fatalf("only %d states explored; the abstraction is likely not exercising the protocol", res.States)
	}
}

// TestLDRVolatileLine3Clean explores the regime the paper's §5 storage
// prescription exists for: a crash that wipes the stable store too.
// Within these budgets LDR still holds its invariants — the
// request-as-error rule blocks the stale-route reply that seeds AODV's
// loop — which the checker verifies rather than assumes.
func TestLDRVolatileLine3Clean(t *testing.T) {
	g, _ := NamedTopology("line3")
	sc := &Scenario{Graph: g, Protocol: "ldr", Seed: 1}
	res, err := Check(sc, Options{MaxDepth: 12, MaxVResets: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("states=%d transitions=%d depth=%d elapsed=%s", res.States, res.Transitions, res.Depth, res.Elapsed)
	if res.Violation != nil {
		t.Fatalf("volatile LDR violated an invariant:\n%s", res.Violation)
	}
	if res.Truncated {
		t.Fatal("exploration truncated; the verdict is not exhaustive")
	}
}

// TestLDRPaw4Clean keeps one 4-node topology in the fast suite (the paw:
// a triangle with a pendant node). The full 4-node sweep runs under
// `make modelcheck`.
func TestLDRPaw4Clean(t *testing.T) {
	g, err := NamedTopology("n4-1")
	if err != nil {
		t.Fatal(err)
	}
	sc := &Scenario{Graph: g, Protocol: "ldr", Seed: 1}
	res, err := Check(sc, Options{MaxDepth: 10, MaxResets: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("states=%d transitions=%d depth=%d elapsed=%s", res.States, res.Transitions, res.Depth, res.Elapsed)
	if res.Violation != nil {
		t.Fatalf("LDR violated an invariant on %s:\n%s", g, res.Violation)
	}
	if res.Truncated {
		t.Fatal("exploration truncated; the verdict is not exhaustive")
	}
}

// TestAODVLine3Violation is the checker's negative control and the
// acceptance path in one: the checker must REdiscover the van Glabbeek
// et al. AODV loop on the 3-node line from nothing but the protocol
// implementation and the budgets, and the emitted witness spec must
// replay to a real routing loop under the full MAC/radio simulator.
func TestAODVLine3Violation(t *testing.T) {
	g, err := NamedTopology("line3")
	if err != nil {
		t.Fatal(err)
	}
	sc := &Scenario{Graph: g, Protocol: "aodv", Seed: 1}
	res, err := Check(sc, Options{MaxDepth: 12, MaxResets: 1, MaxDrops: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("states=%d transitions=%d depth=%d elapsed=%s", res.States, res.Transitions, res.Depth, res.Elapsed)
	if res.Violation == nil {
		t.Fatal("expected AODV loop violation on line3, found none")
	}
	t.Logf("witness:\n%s", res.Violation)

	// The BFS finds a minimal-length schedule; the known construction
	// needs a crash plus one message suppression, nothing more.
	if len(res.Violation.Trace) > 10 {
		t.Errorf("witness has %d steps; the van Glabbeek schedule needs at most 10", len(res.Violation.Trace))
	}

	spec, err := res.Violation.Spec("checker-emitted witness")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.MarshalIndent(spec, "", "  ")
	t.Logf("spec:\n%s", raw)
	rep, err := conformance.CheckSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("replay: loops=%d violations=%d", rep.Collector.LoopViolations, rep.Total)
	if rep.Collector.LoopViolations == 0 {
		t.Fatal("witness replay under the full simulator produced no loop")
	}
}
