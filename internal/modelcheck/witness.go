package modelcheck

// Witness extraction: an abstract violating trace becomes a
// conformance.Spec the full MAC/radio simulator can replay.
//
// Time mapping. Each externally scheduled action slot k (originations,
// resets) maps to virtual time t(k) = 500 ms + k·250 ms — enough spacing
// that one slot's radio/MAC cascade settles before the next fires.
// Deliveries need no scheduling: the radio delivers within microseconds,
// so a whole handler cascade happens at the time of its causal ROOT
// action, which is why the checker tracks a root slot on every emission
// (env.go). Message losses become link outages placed by root times:
//
//   - a crossing the abstract schedule delivered must get through, so
//     its link is up at t(root);
//   - a crossing that was explicitly dropped, or still in flight at the
//     violation with a root AFTER every delivered root on that link,
//     must not happen, so the link goes down permanently between the
//     last delivered root and the first suppressed one (the shape of
//     the van Glabbeek witness: sever B–D before B's re-solicitation);
//   - an in-flight crossing with an EARLY root is simply a message the
//     abstract schedule had not consumed yet — the violation state does
//     not depend on it, and the replay lets it through.
//
// An explicit early drop (interleaved with needed deliveries on the same
// link at the same root time) cannot be honored by any outage window;
// the builder emits a best-effort ±120 ms window and flags the Note. The
// abstract model can also reorder deliveries arbitrarily; the radio
// cannot. Both are heuristic gaps — the bridge test, which re-runs every
// committed seed through the full simulator, is the arbiter.

import (
	"fmt"
	"sort"
	"time"

	"github.com/manetlab/ldr/internal/conformance"
)

const (
	slotBase   = 500 * time.Millisecond
	slotPitch  = 250 * time.Millisecond
	crashHold  = 100 * time.Millisecond
	dropWindow = 120 * time.Millisecond
	witAuditMS = 50
	specTail   = 1500 * time.Millisecond
)

// slotTime maps an action slot to replay virtual time. Root -1 (initial
// protocol start) precedes every slot.
func slotTime(slot int) time.Duration {
	if slot < 0 {
		return 50 * time.Millisecond
	}
	return slotBase + time.Duration(slot)*slotPitch
}

// Spec converts the witness into a committed-seed conformance spec. It
// fails if the trace uses an action the full simulator cannot express
// (volatile resets) or the topology has no unit-disk layout.
func (w *Witness) Spec(note string) (conformance.Spec, error) {
	g := w.Scenario.Graph
	pts, err := Layout(g)
	if err != nil {
		return conformance.Spec{}, err
	}
	script := &conformance.Script{Positions: make([][2]float64, g.N)}
	for i, p := range pts {
		script.Positions[i] = [2]float64{p.X, p.Y}
	}

	lastSlot := len(w.Trace) - 1
	if lastSlot < 0 {
		lastSlot = 0
	}
	for slot, a := range w.Trace {
		switch a.Kind {
		case ActOriginate:
			f := w.Scenario.Flows[a.Flow]
			script.Traffic = append(script.Traffic, conformance.ScriptTraffic{
				AtMS: slotTime(slot).Milliseconds(),
				Src:  int(f.Src), Dst: int(f.Dst), Bytes: originateBytes,
			})
		case ActReset:
			script.Faults = append(script.Faults, conformance.ScriptFault{
				Kind: "crash", AtMS: slotTime(slot).Milliseconds(),
				DurationMS: crashHold.Milliseconds(), Nodes: []int{int(a.Node)},
			})
		case ActResetVolatile:
			return conformance.Spec{}, fmt.Errorf(
				"modelcheck: witness uses a volatile reset, which the fault injector cannot express")
		}
	}

	// Per undirected link: delivered roots (must pass) vs suppressed
	// roots (must not).
	type linkTimes struct {
		up   []int
		down []emission
	}
	links := map[[2]int]*linkTimes{}
	at := func(a, b int) *linkTimes {
		if a > b {
			a, b = b, a
		}
		k := [2]int{a, b}
		if links[k] == nil {
			links[k] = &linkTimes{}
		}
		return links[k]
	}
	for _, e := range w.delivered {
		lt := at(int(e.from), int(e.to))
		lt.up = append(lt.up, e.root)
	}
	for _, e := range w.drops {
		lt := at(int(e.from), int(e.to))
		lt.down = append(lt.down, e)
	}
	for _, e := range w.inflight {
		lt := at(int(e.from), int(e.to))
		lt.down = append(lt.down, e)
	}

	var keys [][2]int
	for k := range links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	approx := false
	for _, k := range keys {
		lt := links[k]
		maxUp := -2 // below root -1, so an all-suppressed link still splits cleanly
		for _, s := range lt.up {
			if s > maxUp {
				maxUp = s
			}
		}
		minLate := -1
		haveLate := false
		for _, d := range lt.down {
			if d.root > maxUp && (!haveLate || d.root < minLate) {
				minLate, haveLate = d.root, true
			}
		}
		if haveLate {
			start := slotTime(minLate) - dropWindow
			if maxUp > -2 {
				start = (slotTime(maxUp) + slotTime(minLate)) / 2
			}
			script.Faults = append(script.Faults, conformance.ScriptFault{
				Kind: "linkdown", AtMS: start.Milliseconds(),
				DurationMS: -1, Nodes: []int{k[0], k[1]},
			})
		}
		// Early suppressions: in-flight ones are harmless by construction
		// (the violation state never consumed them); explicit early drops
		// get a best-effort window and taint the spec.
		seen := map[int]bool{}
		for _, d := range lt.down {
			if d.root > maxUp || !d.explicit || seen[d.root] {
				continue
			}
			seen[d.root] = true
			approx = true
			t := slotTime(d.root)
			script.Faults = append(script.Faults, conformance.ScriptFault{
				Kind: "linkdown", AtMS: (t - dropWindow).Milliseconds(),
				DurationMS: (2 * dropWindow).Milliseconds(), Nodes: []int{k[0], k[1]},
			})
		}
	}
	if approx {
		note += " [approximate replay: an explicit drop is interleaved with needed deliveries]"
	}

	sort.Slice(script.Faults, func(i, j int) bool { return script.Faults[i].AtMS < script.Faults[j].AtMS })
	end := slotTime(lastSlot) + specTail
	return conformance.Spec{
		Protocol:   w.Scenario.Protocol,
		Nodes:      g.N,
		Flows:      0,
		SimTimeSec: end.Seconds(),
		Seed:       w.Scenario.Seed,
		Profile:    "none",
		AuditMS:    witAuditMS,
		Note:       note,
		Script:     script,
	}, nil
}
