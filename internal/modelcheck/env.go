package modelcheck

// The abstract execution environment: a real protocol instance per node
// (built through the ordinary scenario factory), with the MAC/radio
// transport and the timer wheel replaced by a routing.ModelEnv. Outgoing
// messages land in per-link pending multisets; the checker's actions
// deliver, drop, or duplicate them one at a time. Short timers (the
// broadcast-jitter relay delay) run as immediate FIFO microtasks drained
// after every top-level step; long timers (discovery timeouts, cache
// expiry) park on the node's simulator queue, which the model never
// advances — at the model's frozen clock they are unreachable, which is
// part of the abstraction (see DESIGN.md for the soundness discussion).
//
// The world is not copyable — protocol state lives in unexported maps —
// so the search engine reconstructs any state by replaying its action
// prefix from a fresh world. Everything here is deterministic: per-node
// RNG streams are seeded identically on every rebuild, map iteration
// never reaches an emission path, and microtasks run in schedule order.

import (
	"fmt"
	"time"

	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/sim"
)

// ActionKind enumerates the checker's transition types.
type ActionKind uint8

const (
	// ActDeliver hands one pending message on a link to its receiver.
	ActDeliver ActionKind = iota + 1
	// ActDrop discards one pending message (link-layer loss).
	ActDrop
	// ActDup appends a copy of a pending message (link-layer duplication).
	ActDup
	// ActReset crash-reboots a node through its ordinary Resetter —
	// whatever the protocol persists across crashes survives.
	ActReset
	// ActResetVolatile crash-reboots a node wiping even the protocol's
	// stable storage (routing.VolatileResetter).
	ActResetVolatile
	// ActOriginate injects the scenario's next data flow at its source.
	ActOriginate
)

// Action is one transition of the abstract model.
type Action struct {
	Kind     ActionKind
	From, To routing.NodeID // directed link, for Deliver/Drop/Dup
	Index    int            // position in that link's pending queue
	Node     routing.NodeID // for Reset/ResetVolatile
	Flow     int            // for Originate: index into Scenario.Flows
}

// String renders the action for witnesses and progress output.
func (a Action) String() string {
	switch a.Kind {
	case ActDeliver:
		return fmt.Sprintf("deliver %d->%d[%d]", a.From, a.To, a.Index)
	case ActDrop:
		return fmt.Sprintf("drop %d->%d[%d]", a.From, a.To, a.Index)
	case ActDup:
		return fmt.Sprintf("dup %d->%d[%d]", a.From, a.To, a.Index)
	case ActReset:
		return fmt.Sprintf("reset %d", a.Node)
	case ActResetVolatile:
		return fmt.Sprintf("reset-volatile %d", a.Node)
	case ActOriginate:
		return fmt.Sprintf("originate flow %d", a.Flow)
	}
	return fmt.Sprintf("action(%d)", a.Kind)
}

// Flow is one scripted data origination: Src sends a packet toward Dst
// when the corresponding Originate action fires.
type Flow struct {
	Src, Dst routing.NodeID
}

// linkMsg is one in-flight item on a directed link. Exactly one of
// msg/pkt is set. root is the slot of the action whose cascade emitted
// it (-1 for emissions during initial Start): delivering a message and
// everything its handler emits happens, under the full simulator, at the
// root action's virtual time — the whole cascade is quasi-instantaneous
// there — so the witness builder maps roots, not emission slots, back to
// simulator time.
type linkMsg struct {
	msg  routing.Message
	pkt  *routing.DataPacket
	root int
}

// emission records one link crossing (delivered, dropped, or still
// pending) with its causal root slot, for witness reconstruction.
type emission struct {
	from, to routing.NodeID
	root     int
	explicit bool // an explicit Drop action removed it (vs merely in flight)
}

// microDelayMax separates microtask timers from parked ones: the
// broadcast-jitter relay delay (10 ms) and anything comparably immediate
// runs inline; discovery timeouts (≥160 ms) and cache lifetimes (seconds)
// park. The gap between 10 ms and 160 ms is wide enough that the
// threshold is not load-bearing.
const microDelayMax = 50 * time.Millisecond

// microCap bounds a single drain; a protocol whose microtasks re-schedule
// each other unboundedly would otherwise hang the checker silently.
const microCap = 100000

// world is one concrete state of the abstract model: a live network plus
// the pending-message multisets. It implements routing.ModelEnv for every
// node it owns.
type world struct {
	sc      *Scenario
	nbrs    [][]int // graph adjacency, from topo
	adj     []bool  // n*n adjacency matrix
	nw      *routing.Network
	pending [][]linkMsg // n*n directed slots; only adjacent pairs used
	micro   []func()

	slot     int // index of the action currently being applied
	curRoot  int // causal root slot for emissions during the current step
	nextFlow int // next unoriginated Scenario.Flows index

	delLog  []emission // every Deliver, with the message's root slot
	dropLog []emission // every explicit Drop, with the victim's root slot

	lostUnicasts int // unicasts addressed to non-neighbors (sent into the void)
}

var _ routing.ModelEnv = (*world)(nil)

// newWorld builds the initial state: a fresh network with every node's
// ModelEnv installed before its protocol starts, then the start-time
// microtask cascade drained. Deterministic: equal scenarios produce
// byte-identical worlds.
func newWorld(sc *Scenario) (*world, error) {
	factory, err := scenario.Factory(scenario.ProtocolName(sc.Protocol), sc.LDRConfig)
	if err != nil {
		return nil, err
	}
	n := sc.Graph.N
	w := &world{
		sc:      sc,
		nbrs:    sc.Graph.Neighbors(),
		adj:     make([]bool, n*n),
		pending: make([][]linkMsg, n*n),
		slot:    -1,
		curRoot: -1,
	}
	for _, e := range sc.Graph.Edges {
		w.adj[e[0]*n+e[1]] = true
		w.adj[e[1]*n+e[0]] = true
	}
	// Positions are irrelevant — no frame ever reaches the radio — but the
	// network constructor wants a mobility model.
	w.nw = routing.NewNetwork(n, mobility.NewStatic(make([]mobility.Point, n)),
		radio.DefaultConfig(), mac.DefaultConfig(), sc.Seed, factory)
	for _, node := range w.nw.Nodes {
		node.SetModelEnv(w)
	}
	w.nw.Start()
	w.drain()
	w.slot = 0
	return w, nil
}

func (w *world) adjacent(a, b routing.NodeID) bool {
	n := w.sc.Graph.N
	if int(a) < 0 || int(a) >= n || int(b) < 0 || int(b) >= n {
		return false
	}
	return w.adj[int(a)*n+int(b)]
}

func (w *world) push(from, to routing.NodeID, m linkMsg) {
	w.pending[int(from)*w.sc.Graph.N+int(to)] = append(w.pending[int(from)*w.sc.Graph.N+int(to)], m)
}

// ModelSendControl implements routing.ModelEnv. A broadcast fans out to
// every neighbor; the message object is shared between their queue
// entries, which is safe because received control messages are read-only
// by contract and the protocol's pools never get the object back (no
// frame is ever released under the model).
func (w *world) ModelSendControl(from, to routing.NodeID, msg routing.Message) {
	if to == routing.BroadcastID {
		for _, nb := range w.nbrs[from] {
			w.push(from, routing.NodeID(nb), linkMsg{msg: msg, root: w.curRoot})
		}
		return
	}
	if w.adjacent(from, to) {
		w.push(from, to, linkMsg{msg: msg, root: w.curRoot})
		return
	}
	w.lostUnicasts++
}

// ModelSendData implements routing.ModelEnv. The packet is already an
// unpooled deep copy owned by the environment.
func (w *world) ModelSendData(from, next routing.NodeID, pkt *routing.DataPacket) {
	if w.adjacent(from, next) {
		w.push(from, next, linkMsg{pkt: pkt, root: w.curRoot})
		return
	}
	w.lostUnicasts++
}

// ModelSchedule implements routing.ModelEnv: immediate timers become
// microtasks, long timers park on the node's never-advanced simulator.
func (w *world) ModelSchedule(delay time.Duration, fn func()) (sim.Timer, bool) {
	if delay <= microDelayMax {
		w.micro = append(w.micro, fn)
		return sim.Timer{}, true
	}
	return sim.Timer{}, false
}

// drain runs queued microtasks FIFO until quiescence.
func (w *world) drain() {
	for steps := 0; len(w.micro) > 0; steps++ {
		if steps > microCap {
			panic("modelcheck: microtask cascade did not quiesce")
		}
		fn := w.micro[0]
		w.micro = w.micro[1:]
		fn()
	}
}

// apply executes one action and drains the resulting cascade. The caller
// guarantees the action is enabled (indices in range, budgets respected);
// apply panics otherwise, because a mis-replayed trace means the engine's
// reconstruction is broken and no result can be trusted.
func (w *world) apply(a Action) {
	n := w.sc.Graph.N
	w.curRoot = w.slot
	switch a.Kind {
	case ActDeliver, ActDrop, ActDup:
		li := int(a.From)*n + int(a.To)
		q := w.pending[li]
		if a.Index < 0 || a.Index >= len(q) {
			panic(fmt.Sprintf("modelcheck: %v out of range (queue %d)", a, len(q)))
		}
		m := q[a.Index]
		switch a.Kind {
		case ActDeliver:
			// The handler's own emissions inherit the delivered message's
			// causal root: under the full simulator, delivery and reaction
			// both happen at the root emission's instant.
			w.curRoot = m.root
			w.pending[li] = append(q[:a.Index], q[a.Index+1:]...)
			w.delLog = append(w.delLog, emission{from: a.From, to: a.To, root: m.root})
			proto := w.nw.Nodes[a.To].Protocol()
			if m.msg != nil {
				proto.HandleControl(a.From, m.msg)
			} else {
				proto.HandleData(a.From, m.pkt)
			}
		case ActDrop:
			w.pending[li] = append(q[:a.Index], q[a.Index+1:]...)
			w.dropLog = append(w.dropLog, emission{from: a.From, to: a.To, root: m.root, explicit: true})
		case ActDup:
			cp := m // same airing, same causal root: a radio-level duplicate
			if m.pkt != nil {
				cp.pkt = routing.CloneDataPacket(m.pkt)
			}
			w.pending[li] = append(q, cp)
		}
	case ActReset:
		node := w.nw.Nodes[a.Node]
		node.Crash()
		node.SetDown(false)
		node.Protocol().Start()
	case ActResetVolatile:
		node := w.nw.Nodes[a.Node]
		vr, ok := node.Protocol().(routing.VolatileResetter)
		if !ok {
			panic(fmt.Sprintf("modelcheck: %v on protocol without VolatileResetter", a))
		}
		node.SetDown(true)
		vr.ResetVolatile()
		node.SetDown(false)
		node.Protocol().Start()
	case ActOriginate:
		if a.Flow != w.nextFlow || a.Flow >= len(w.sc.Flows) {
			panic(fmt.Sprintf("modelcheck: %v out of order (next %d of %d)", a, w.nextFlow, len(w.sc.Flows)))
		}
		f := w.sc.Flows[a.Flow]
		w.nextFlow++
		w.nw.Nodes[f.Src].OriginateData(f.Dst, originateBytes)
	default:
		panic(fmt.Sprintf("modelcheck: unknown action %v", a))
	}
	w.drain()
	w.slot++
}

// originateBytes is the payload size of model-injected packets; it only
// matters because it is part of the state encoding and of the witness's
// scripted traffic.
const originateBytes = 512

// budgets are the remaining allowances for the fault-flavored actions.
type budgets struct {
	drops, dups, resets, vresets int
}

// enabled enumerates every action applicable in the current state, in a
// fixed deterministic order: delivers (links sorted by (from, to), queue
// order), then drops, dups, resets, volatile resets, and finally the next
// origination. The engine relies on this order being a pure function of
// the state so that reconstruction by prefix replay stays aligned.
func (w *world) enabled(b budgets) []Action {
	n := w.sc.Graph.N
	var acts []Action
	forEachPending := func(kind ActionKind) {
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				for idx := range w.pending[from*n+to] {
					acts = append(acts, Action{Kind: kind, From: routing.NodeID(from), To: routing.NodeID(to), Index: idx})
				}
			}
		}
	}
	forEachPending(ActDeliver)
	if b.drops > 0 {
		forEachPending(ActDrop)
	}
	if b.dups > 0 {
		forEachPending(ActDup)
	}
	if b.resets > 0 {
		for i := 0; i < n; i++ {
			acts = append(acts, Action{Kind: ActReset, Node: routing.NodeID(i)})
		}
	}
	if b.vresets > 0 {
		if _, ok := w.nw.Nodes[0].Protocol().(routing.VolatileResetter); ok {
			for i := 0; i < n; i++ {
				acts = append(acts, Action{Kind: ActResetVolatile, Node: routing.NodeID(i)})
			}
		}
	}
	if w.nextFlow < len(w.sc.Flows) {
		acts = append(acts, Action{Kind: ActOriginate, Flow: w.nextFlow})
	}
	return acts
}

// tables snapshots every node's routing table for the invariant check,
// reusing buf (a [][]RouteEntry whose inner slices are reused).
func (w *world) tables(buf [][]routing.RouteEntry) [][]routing.RouteEntry {
	n := w.sc.Graph.N
	if cap(buf) < n {
		buf = make([][]routing.RouteEntry, n)
	}
	buf = buf[:n]
	for i, node := range w.nw.Nodes {
		ta, ok := node.Protocol().(routing.TableAppender)
		if !ok {
			buf[i] = buf[i][:0]
			continue
		}
		buf[i] = ta.AppendTable(buf[i][:0])
	}
	return buf
}
