package modelcheck

// Canonical state encoding. A state is (per-node protocol state,
// per-link pending multisets, origination progress, remaining fault
// budgets). Two states are identified when some automorphism of the
// topology that fixes every flow endpoint maps one onto the other; the
// canonical form is the lexicographically minimal serialization over the
// automorphism group, and the BFS memoizes its 128-bit FNV-1a hash.
//
// Per-link queues are serialized as sorted multisets: the checker can
// deliver any pending item in any order, so queue position carries no
// information and states differing only by it must collide.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"github.com/manetlab/ldr/internal/aodv"
	"github.com/manetlab/ldr/internal/core"
	"github.com/manetlab/ldr/internal/routing"
)

// stateKey is the 128-bit memoization key of a canonical state.
type stateKey [16]byte

// encoder canonicalizes and hashes world states, reusing its buffers
// across calls. Not safe for concurrent use.
type encoder struct {
	n     int
	autos [][]int // automorphism group, identity included
	inv   []int   // scratch: inverse permutation
	buf   []byte  // candidate serialization under one automorphism
	best  []byte  // minimal serialization so far
	item  []byte  // scratch for one pending item
	items [][]byte
}

func newEncoder(n int, autos [][]int) *encoder {
	return &encoder{n: n, autos: autos, inv: make([]int, n)}
}

// key returns the canonical hash of w given the remaining budgets
// (budgets gate which actions are enabled, so two protocol-identical
// states with different allowances are distinct).
func (e *encoder) key(w *world, b budgets) stateKey {
	e.best = e.best[:0]
	for ai, perm := range e.autos {
		e.buf = e.encodeUnder(e.buf[:0], w, b, perm)
		if ai == 0 || lessBytes(e.buf, e.best) {
			e.best = append(e.best[:0], e.buf...)
		}
	}
	h := fnv.New128a()
	h.Write(e.best)
	var k stateKey
	h.Sum(k[:0])
	return k
}

func lessBytes(a, b []byte) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// encodeUnder serializes w relabeled by perm.
func (e *encoder) encodeUnder(out []byte, w *world, b budgets, perm []int) []byte {
	n := e.n
	for i, p := range perm {
		e.inv[p] = i
	}
	mapID := func(id routing.NodeID) routing.NodeID {
		if int(id) < 0 || int(id) >= n {
			return id // BroadcastID and other sentinels pass through
		}
		return routing.NodeID(perm[id])
	}

	// Context: origination progress and remaining budgets.
	out = binary.AppendUvarint(out, uint64(w.nextFlow))
	out = binary.AppendUvarint(out, uint64(b.drops))
	out = binary.AppendUvarint(out, uint64(b.dups))
	out = binary.AppendUvarint(out, uint64(b.resets))
	out = binary.AppendUvarint(out, uint64(b.vresets))

	// Node states, in mapped-identifier order: position p holds the state
	// of the node that perm maps to p.
	for p := 0; p < n; p++ {
		ms, ok := w.nw.Nodes[e.inv[p]].Protocol().(routing.ModelStater)
		if !ok {
			panic(fmt.Sprintf("modelcheck: protocol %T does not implement routing.ModelStater", w.nw.Nodes[e.inv[p]].Protocol()))
		}
		out = ms.AppendModelState(out, mapID)
	}

	// Pending multisets, links sorted by mapped (from, to), items sorted
	// by their serialized form.
	type lrow struct {
		mf, mt   int
		from, to int
	}
	var rows []lrow
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if len(w.pending[from*n+to]) > 0 {
				rows = append(rows, lrow{mf: perm[from], mt: perm[to], from: from, to: to})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].mf != rows[j].mf {
			return rows[i].mf < rows[j].mf
		}
		return rows[i].mt < rows[j].mt
	})
	out = binary.AppendUvarint(out, uint64(len(rows)))
	for _, r := range rows {
		out = binary.AppendUvarint(out, uint64(r.mf))
		out = binary.AppendUvarint(out, uint64(r.mt))
		q := w.pending[r.from*n+r.to]
		e.items = e.items[:0]
		for _, m := range q {
			e.item = encodeItem(e.item[:0], m, mapID)
			e.items = append(e.items, append([]byte(nil), e.item...))
		}
		sort.Slice(e.items, func(i, j int) bool { return lessBytes(e.items[i], e.items[j]) })
		out = binary.AppendUvarint(out, uint64(len(e.items)))
		for _, it := range e.items {
			out = append(out, it...)
		}
	}
	return out
}

// encodeItem serializes one pending link item under the relabeling.
// Every behaviour-relevant field of every message type the two modeled
// protocols emit is covered; an unknown type panics rather than silently
// aliasing distinct states.
func encodeItem(out []byte, m linkMsg, mapID func(routing.NodeID) routing.NodeID) []byte {
	if m.pkt != nil {
		p := m.pkt
		out = append(out, 0)
		out = binary.AppendVarint(out, int64(mapID(p.Src)))
		out = binary.AppendVarint(out, int64(mapID(p.Dst)))
		out = binary.AppendUvarint(out, p.ID)
		out = binary.AppendVarint(out, int64(p.TTL))
		out = binary.AppendVarint(out, int64(p.Bytes))
		out = binary.AppendVarint(out, int64(p.SRIndex))
		out = binary.AppendVarint(out, int64(p.Salvaged))
		out = binary.AppendUvarint(out, uint64(len(p.SourceRoute)))
		for _, h := range p.SourceRoute {
			out = binary.AppendVarint(out, int64(mapID(h)))
		}
		return out
	}
	switch q := m.msg.(type) {
	case *core.RREQ:
		return encodeCoreRREQ(out, *q, mapID)
	case core.RREQ:
		return encodeCoreRREQ(out, q, mapID)
	case *core.RREP:
		return encodeCoreRREP(out, *q, mapID)
	case core.RREP:
		return encodeCoreRREP(out, q, mapID)
	case *core.RERR:
		return encodeCoreRERR(out, *q, mapID)
	case core.RERR:
		return encodeCoreRERR(out, q, mapID)
	case *aodv.RREQ:
		return encodeAODVRREQ(out, *q, mapID)
	case aodv.RREQ:
		return encodeAODVRREQ(out, q, mapID)
	case *aodv.RREP:
		return encodeAODVRREP(out, *q, mapID)
	case aodv.RREP:
		return encodeAODVRREP(out, q, mapID)
	case *aodv.RERR:
		return encodeAODVRERR(out, *q, mapID)
	case aodv.RERR:
		return encodeAODVRERR(out, q, mapID)
	case *aodv.Hello:
		return encodeAODVHello(out, *q, mapID)
	case aodv.Hello:
		return encodeAODVHello(out, q, mapID)
	}
	panic(fmt.Sprintf("modelcheck: cannot encode message type %T", m.msg))
}

func encodeCoreRREQ(out []byte, q core.RREQ, mapID func(routing.NodeID) routing.NodeID) []byte {
	out = append(out, 1)
	out = binary.AppendVarint(out, int64(mapID(q.Dst)))
	out = binary.AppendUvarint(out, uint64(q.DstSeq))
	out = encFlag(out, q.HaveDstSeq)
	out = binary.AppendVarint(out, int64(mapID(q.Origin)))
	out = binary.AppendUvarint(out, uint64(q.OriginSeq))
	out = binary.AppendUvarint(out, uint64(q.ReqID))
	out = binary.AppendVarint(out, int64(q.FD))
	out = binary.AppendVarint(out, int64(q.AnsDist))
	out = binary.AppendVarint(out, int64(q.Dist))
	out = binary.AppendVarint(out, int64(q.TTL))
	out = encFlag(out, q.T)
	out = encFlag(out, q.N)
	out = encFlag(out, q.D)
	return out
}

func encodeCoreRREP(out []byte, p core.RREP, mapID func(routing.NodeID) routing.NodeID) []byte {
	out = append(out, 2)
	out = binary.AppendVarint(out, int64(mapID(p.Dst)))
	out = binary.AppendUvarint(out, uint64(p.DstSeq))
	out = binary.AppendVarint(out, int64(mapID(p.Origin)))
	out = binary.AppendUvarint(out, uint64(p.ReqID))
	out = binary.AppendVarint(out, int64(p.Dist))
	out = binary.AppendVarint(out, int64(p.Lifetime))
	out = encFlag(out, p.N)
	return out
}

func encodeCoreRERR(out []byte, e core.RERR, mapID func(routing.NodeID) routing.NodeID) []byte {
	out = append(out, 3)
	type dest struct {
		dst routing.NodeID
		seq uint64
	}
	ds := make([]dest, 0, len(e.Unreachable))
	for _, u := range e.Unreachable {
		ds = append(ds, dest{mapID(u.Dst), uint64(u.Seq)})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].dst < ds[j].dst })
	out = binary.AppendUvarint(out, uint64(len(ds)))
	for _, d := range ds {
		out = binary.AppendVarint(out, int64(d.dst))
		out = binary.AppendUvarint(out, d.seq)
	}
	return out
}

func encodeAODVRREQ(out []byte, q aodv.RREQ, mapID func(routing.NodeID) routing.NodeID) []byte {
	out = append(out, 4)
	out = binary.AppendVarint(out, int64(mapID(q.Dst)))
	out = binary.AppendUvarint(out, uint64(q.DstSeq))
	out = encFlag(out, q.UnknownSeq)
	out = binary.AppendVarint(out, int64(mapID(q.Origin)))
	out = binary.AppendUvarint(out, uint64(q.OriginSeq))
	out = binary.AppendUvarint(out, uint64(q.ReqID))
	out = binary.AppendVarint(out, int64(q.HopCount))
	out = binary.AppendVarint(out, int64(q.TTL))
	return out
}

func encodeAODVRREP(out []byte, p aodv.RREP, mapID func(routing.NodeID) routing.NodeID) []byte {
	out = append(out, 5)
	out = binary.AppendVarint(out, int64(mapID(p.Dst)))
	out = binary.AppendUvarint(out, uint64(p.DstSeq))
	out = binary.AppendVarint(out, int64(mapID(p.Origin)))
	out = binary.AppendVarint(out, int64(p.HopCount))
	out = binary.AppendVarint(out, int64(p.Lifetime))
	return out
}

func encodeAODVRERR(out []byte, e aodv.RERR, mapID func(routing.NodeID) routing.NodeID) []byte {
	out = append(out, 6)
	type dest struct {
		dst routing.NodeID
		seq uint64
	}
	ds := make([]dest, 0, len(e.Unreachable))
	for _, u := range e.Unreachable {
		ds = append(ds, dest{mapID(u.Dst), uint64(u.Seq)})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].dst < ds[j].dst })
	out = binary.AppendUvarint(out, uint64(len(ds)))
	for _, d := range ds {
		out = binary.AppendVarint(out, int64(d.dst))
		out = binary.AppendUvarint(out, d.seq)
	}
	return out
}

func encodeAODVHello(out []byte, h aodv.Hello, mapID func(routing.NodeID) routing.NodeID) []byte {
	out = append(out, 7)
	out = binary.AppendVarint(out, int64(mapID(h.Origin)))
	out = binary.AppendUvarint(out, uint64(h.Seq))
	return out
}

func encFlag(out []byte, b bool) []byte {
	if b {
		return append(out, 1)
	}
	return append(out, 0)
}
