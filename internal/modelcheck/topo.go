package modelcheck

// Small-topology machinery: enumeration of every non-isomorphic connected
// graph on 3–5 nodes (the checker's sweep domain), named topologies for
// the CLI, automorphism groups (the state-level symmetry reduction), and
// unit-disk layouts realizing each graph under the simulator's radio
// range (witness replay needs real coordinates).

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/manetlab/ldr/internal/mobility"
)

// Graph is an undirected topology over nodes 0..N-1.
type Graph struct {
	N     int
	Edges [][2]int // each pair (a, b) with a < b
	Name  string   // stable name: "n<N>-<k>" or a well-known alias
}

// maxNodes bounds enumeration and exploration; 2^(n(n-1)/2) edge masks ×
// n! permutations stays trivial through n=5.
const maxNodes = 5

// bitmask packs the adjacency of g (edge (a,b) → bit a*N+b with a<b).
func (g Graph) bitmask() uint64 {
	var m uint64
	for _, e := range g.Edges {
		m |= 1 << uint(e[0]*g.N+e[1])
	}
	return m
}

// Adjacent reports whether a and b share an edge.
func (g Graph) Adjacent(a, b int) bool {
	if a > b {
		a, b = b, a
	}
	for _, e := range g.Edges {
		if e[0] == a && e[1] == b {
			return true
		}
	}
	return false
}

// Neighbors returns each node's sorted neighbor list.
func (g Graph) Neighbors() [][]int {
	nb := make([][]int, g.N)
	for _, e := range g.Edges {
		nb[e[0]] = append(nb[e[0]], e[1])
		nb[e[1]] = append(nb[e[1]], e[0])
	}
	for i := range nb {
		sort.Ints(nb[i])
	}
	return nb
}

// String renders the graph compactly: "n4-2 {0-1 1-2 2-3}".
func (g Graph) String() string {
	var b strings.Builder
	b.WriteString(g.Name)
	b.WriteString(" {")
	for i, e := range g.Edges {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d-%d", e[0], e[1])
	}
	b.WriteString("}")
	return b.String()
}

// permutations returns every permutation of 0..n-1.
func permutations(n int) [][]int {
	var out [][]int
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return out
}

// relabel returns g with node i renamed perm[i].
func relabel(g Graph, perm []int) Graph {
	out := Graph{N: g.N, Name: g.Name, Edges: make([][2]int, 0, len(g.Edges))}
	for _, e := range g.Edges {
		a, b := perm[e[0]], perm[e[1]]
		if a > b {
			a, b = b, a
		}
		out.Edges = append(out.Edges, [2]int{a, b})
	}
	sort.Slice(out.Edges, func(i, j int) bool {
		if out.Edges[i][0] != out.Edges[j][0] {
			return out.Edges[i][0] < out.Edges[j][0]
		}
		return out.Edges[i][1] < out.Edges[j][1]
	})
	return out
}

// connected reports whether the graph is connected.
func connected(g Graph) bool {
	if g.N == 0 {
		return false
	}
	nb := g.Neighbors()
	seen := make([]bool, g.N)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range nb[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.N
}

// ConnectedGraphs enumerates every non-isomorphic connected graph on n
// nodes (n ≤ 5), returning the lexicographically minimal representative
// of each isomorphism class, named "n<n>-<k>" in enumeration order.
// Counts: n=3 → 2, n=4 → 6, n=5 → 21 (OEIS A001349).
func ConnectedGraphs(n int) ([]Graph, error) {
	if n < 2 || n > maxNodes {
		return nil, fmt.Errorf("modelcheck: topology size %d out of range [2, %d]", n, maxNodes)
	}
	perms := permutations(n)
	pairs := make([][2]int, 0, n*(n-1)/2)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			pairs = append(pairs, [2]int{a, b})
		}
	}
	seen := make(map[uint64]bool)
	var out []Graph
	for mask := 0; mask < 1<<len(pairs); mask++ {
		g := Graph{N: n}
		for i, p := range pairs {
			if mask&(1<<i) != 0 {
				g.Edges = append(g.Edges, p)
			}
		}
		if !connected(g) {
			continue
		}
		// Canonical representative: minimal bitmask over all relabelings.
		canon := g.bitmask()
		for _, perm := range perms {
			if m := relabel(g, perm).bitmask(); m < canon {
				canon = m
			}
		}
		if seen[canon] {
			continue
		}
		seen[canon] = true
		if g.bitmask() != canon {
			continue // keep only the class's minimal representative
		}
		g.Name = fmt.Sprintf("n%d-%d", n, len(out))
		out = append(out, g)
	}
	return out, nil
}

// namedTopologies are the CLI aliases for common shapes.
var namedTopologies = map[string]Graph{
	"line3": {N: 3, Edges: [][2]int{{0, 1}, {1, 2}}, Name: "line3"},
	"ring3": {N: 3, Edges: [][2]int{{0, 1}, {0, 2}, {1, 2}}, Name: "ring3"},
	"line4": {N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}}, Name: "line4"},
	"star4": {N: 4, Edges: [][2]int{{0, 1}, {0, 2}, {0, 3}}, Name: "star4"},
	"ring4": {N: 4, Edges: [][2]int{{0, 1}, {0, 3}, {1, 2}, {2, 3}}, Name: "ring4"},
	"line5": {N: 5, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}, Name: "line5"},
	"ring5": {N: 5, Edges: [][2]int{{0, 1}, {0, 4}, {1, 2}, {2, 3}, {3, 4}}, Name: "ring5"},
}

// NamedTopology resolves a topology by name: a well-known alias (line3,
// ring3, line4, star4, ring4, line5, ring5) or an enumeration name like
// "n4-2" from ConnectedGraphs.
func NamedTopology(name string) (Graph, error) {
	if g, ok := namedTopologies[name]; ok {
		return g, nil
	}
	var n, k int
	if _, err := fmt.Sscanf(name, "n%d-%d", &n, &k); err == nil {
		gs, err := ConnectedGraphs(n)
		if err != nil {
			return Graph{}, fmt.Errorf("modelcheck: topology %q: %w", name, err)
		}
		if k < 0 || k >= len(gs) {
			return Graph{}, fmt.Errorf("modelcheck: topology %q: index out of range (n=%d has %d graphs)", name, n, len(gs))
		}
		return gs[k], nil
	}
	names := make([]string, 0, len(namedTopologies))
	for n := range namedTopologies {
		names = append(names, n)
	}
	sort.Strings(names)
	return Graph{}, fmt.Errorf("modelcheck: unknown topology %q (have %s, or n<nodes>-<k>)", name, strings.Join(names, ", "))
}

// automorphisms returns every permutation of the nodes that preserves
// adjacency AND fixes each pinned node (origination sources and
// destinations must keep their roles for two states to be symmetric).
// The identity is always included; for role-pinned scenarios on
// asymmetric graphs it is usually the whole group.
func automorphisms(g Graph, pinned []int) [][]int {
	isPinned := make([]bool, g.N)
	for _, p := range pinned {
		isPinned[p] = true
	}
	want := g.bitmask()
	var out [][]int
	for _, perm := range permutations(g.N) {
		ok := true
		for i := 0; i < g.N && ok; i++ {
			if isPinned[i] && perm[i] != i {
				ok = false
			}
		}
		if ok && relabel(g, perm).bitmask() == want {
			out = append(out, perm)
		}
	}
	return out
}

// Layout places the graph's nodes on the plane so that adjacent pairs
// sit within the simulator's default radio range (275 m) and
// non-adjacent pairs sit beyond it — a unit-disk realization, needed to
// replay an abstract witness through the full MAC/radio stack. Every
// graph on ≤4 nodes (and the named 5-node shapes) is realizable with
// the layouts tried here; an unrealizable graph returns an error rather
// than a silently wrong replay.
func Layout(g Graph) ([]mobility.Point, error) {
	// Candidate layouts: a line (catches paths), circles of varying
	// radius (catches rings/cliques/stars via radius sweep), and a
	// two-row band. The first candidate satisfying the unit-disk check
	// wins, so layouts are deterministic.
	const spacing = 220 // m; inside range at 1 hop, outside at 2
	var candidates [][]mobility.Point

	line := make([]mobility.Point, g.N)
	for i := range line {
		line[i] = mobility.Point{X: float64(i) * spacing}
	}
	candidates = append(candidates, line)

	for _, r := range []float64{130, 150, 170, 190, 220, 250} {
		circ := make([]mobility.Point, g.N)
		for i := range circ {
			ang := 2 * math.Pi * float64(i) / float64(g.N)
			circ[i] = mobility.Point{X: 400 + r*math.Cos(ang), Y: 400 + r*math.Sin(ang)}
		}
		candidates = append(candidates, circ)
	}

	if g.N == 4 {
		// Diamond for K4−e and friends: 0 and 3 far apart, 1 and 2 close
		// to both.
		candidates = append(candidates, []mobility.Point{
			{X: 0, Y: 150}, {X: 180, Y: 280}, {X: 180, Y: 20}, {X: 360, Y: 150},
		})
		// Star: hub 0, three leaves at 120° (leaf-leaf ≈ 381 m > range).
		candidates = append(candidates, []mobility.Point{
			{X: 400, Y: 400}, {X: 620, Y: 400}, {X: 290, Y: 590.5}, {X: 290, Y: 209.5},
		})
		// Paw/triangle+pendant: triangle 0-1-2 with 3 hanging off 2.
		candidates = append(candidates, []mobility.Point{
			{X: 0, Y: 0}, {X: 200, Y: 0}, {X: 100, Y: 173}, {X: 100, Y: 393},
		})
		// T/star with one long arm.
		candidates = append(candidates, []mobility.Point{
			{X: 220, Y: 220}, {X: 0, Y: 220}, {X: 440, Y: 220}, {X: 220, Y: 440},
		})
	}

	// Candidates fix a geometric shape, not a labeling; the enumeration's
	// lex-min representatives label nodes arbitrarily, so each shape is
	// tried under every node assignment (n ≤ 5 keeps this trivial). The
	// first (candidate, permutation) pair that satisfies the unit-disk
	// check wins, keeping layouts deterministic.
	perms := permutations(g.N)
	assigned := make([]mobility.Point, g.N)
	for _, pts := range candidates {
		for _, perm := range perms {
			for i := range assigned {
				assigned[i] = pts[perm[i]]
			}
			if layoutMatches(g, assigned) {
				return append([]mobility.Point(nil), assigned...), nil
			}
		}
	}
	return nil, fmt.Errorf("modelcheck: no unit-disk layout found for %s", g)
}

// layoutMatches verifies pts realizes exactly g's adjacency under the
// default radio range, with a safety margin on both sides so MAC-level
// behaviour is unambiguous.
func layoutMatches(g Graph, pts []mobility.Point) bool {
	const radioRange = 275.0 // radio.DefaultConfig().Range, pinned by test
	const margin = 15.0
	for a := 0; a < g.N; a++ {
		for b := a + 1; b < g.N; b++ {
			dx, dy := pts[a].X-pts[b].X, pts[a].Y-pts[b].Y
			d := math.Sqrt(dx*dx + dy*dy)
			if g.Adjacent(a, b) {
				if d > radioRange-margin {
					return false
				}
			} else if d < radioRange+margin {
				return false
			}
		}
	}
	return true
}
