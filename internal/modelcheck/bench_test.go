package modelcheck

// Exploration-throughput benchmarks, recorded as BENCH_modelcheck.json
// by `make bench-modelcheck`. The dominant cost is state
// re-materialization (protocol state is not copyable, so every expansion
// replays its action prefix), so states/sec is the number to watch; the
// state counts themselves are exact and double as a symmetry-reduction
// regression guard.

import "testing"

func benchCheck(b *testing.B, proto string, opts Options) {
	g, err := NamedTopology("line3")
	if err != nil {
		b.Fatal(err)
	}
	var states, transitions int
	for i := 0; i < b.N; i++ {
		sc := &Scenario{Graph: g, Protocol: proto, Seed: 1}
		res, err := Check(sc, opts)
		if err != nil {
			b.Fatal(err)
		}
		states, transitions = res.States, res.Transitions
	}
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(states*b.N)/elapsed, "states/sec")
		b.ReportMetric(float64(transitions*b.N)/elapsed, "trans/sec")
	}
	b.ReportMetric(float64(states), "states")
}

func BenchmarkCheckLDRLine3(b *testing.B) {
	benchCheck(b, "ldr", Options{MaxDepth: 12, MaxResets: 1, MaxDrops: 1})
}

func BenchmarkCheckAODVLine3(b *testing.B) {
	// Stops at the first violation, so this measures time-to-witness.
	benchCheck(b, "aodv", Options{MaxDepth: 12, MaxResets: 1, MaxDrops: 1})
}
