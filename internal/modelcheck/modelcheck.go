// Package modelcheck is an explicit-state bounded model checker for the
// repository's routing protocols. It drives real protocol instances (the
// same code the simulator runs) through every message interleaving, loss,
// duplication, and crash schedule reachable on a small topology within
// configurable budgets, and checks LDR's loop-freedom and (sn, fd)
// ordering invariants — through the same loopcheck predicate the runtime
// auditor uses — at every reachable state. A violation comes back as a
// minimal action trace plus a conformance-replay seed that reproduces it
// under the full MAC/radio simulator.
//
// The abstraction is protocol-level: no MAC contention, no radio timing,
// no clock. Messages sit in per-link multisets until a deliver action
// consumes them; broadcast jitter runs as an immediate microtask;
// discovery timeouts and cache expiry never fire (the model's clock is
// frozen at zero). See DESIGN.md for the soundness argument and its
// caveats.
package modelcheck

import (
	"fmt"
	"time"

	"github.com/manetlab/ldr/internal/core"
	"github.com/manetlab/ldr/internal/loopcheck"
	"github.com/manetlab/ldr/internal/routing"
)

// Scenario fixes the model's environment: a topology, a protocol, and an
// ordered list of data flows the checker may originate (each at most
// once, in order, at any point in the schedule).
type Scenario struct {
	Graph     Graph
	Protocol  string // "ldr" or "aodv" (any scenario.Factory name with ModelStater support)
	LDRConfig *core.Config
	Flows     []Flow
	Seed      int64 // per-node RNG seed; only jitter draws consume it
}

// DefaultFlows is the standard sweep workload: every node except the
// last originates one packet toward the last node. On the 3-node line
// this is exactly the van Glabbeek et al. construction's traffic
// pattern.
func DefaultFlows(g Graph) []Flow {
	flows := make([]Flow, 0, g.N-1)
	for i := 0; i < g.N-1; i++ {
		flows = append(flows, Flow{Src: routing.NodeID(i), Dst: routing.NodeID(g.N - 1)})
	}
	return flows
}

// Options bound the exploration.
type Options struct {
	MaxDepth   int // actions per schedule (0 → 12)
	MaxDrops   int // message-loss budget per schedule
	MaxDups    int // duplication budget per schedule
	MaxResets  int // crash-reboot budget (protocol's own persistence rules)
	MaxVResets int // volatile crash budget (stable storage wiped too)
	MaxStates  int // distinct-state cap (0 → 2_000_000); exceeding it truncates

	// Progress, when non-nil, is called every ProgressEvery expanded
	// states (default 5000) and once at the end.
	Progress      func(Progress)
	ProgressEvery int
}

func (o Options) withDefaults() Options {
	if o.MaxDepth == 0 {
		o.MaxDepth = 12
	}
	if o.MaxStates == 0 {
		o.MaxStates = 2_000_000
	}
	if o.ProgressEvery == 0 {
		o.ProgressEvery = 5000
	}
	return o
}

// Progress is a periodic snapshot of a running exploration.
type Progress struct {
	States      int // distinct states found so far
	Frontier    int // states awaiting expansion
	Transitions int // transitions executed
	Depth       int // depth of the state being expanded
	Elapsed     time.Duration
}

// Result summarizes one exploration.
type Result struct {
	Scenario    *Scenario
	States      int  // distinct reachable states (initial state included)
	Transitions int  // transitions executed (successor constructions)
	Depth       int  // deepest layer reached
	Truncated   bool // hit MaxStates before exhausting the bounded space
	Violation   *Witness
	Elapsed     time.Duration
}

// Witness is a violating schedule: the minimal-length action trace from
// the initial state to a state breaching an invariant, plus everything
// the replay layer needs to re-enact it under the full simulator.
type Witness struct {
	Scenario   *Scenario
	Trace      []Action
	Violations []loopcheck.Violation

	// Captured from the violating world for Spec building.
	delivered []emission // every delivered crossing, with causal roots
	drops     []emission // explicitly dropped crossings
	inflight  []emission // undelivered items still pending at the violation
}

// String renders the witness trace.
func (w *Witness) String() string {
	s := fmt.Sprintf("%s %s: %d-step violation:", w.Scenario.Protocol, w.Scenario.Graph, len(w.Trace))
	for i, a := range w.Trace {
		s += fmt.Sprintf("\n  %2d. %s", i, a)
	}
	for _, v := range w.Violations {
		s += "\n  => " + v.Error()
	}
	return s
}

// rec is one discovered state, stored as a back-pointer into the state
// arena plus the action that produced it; traces are reconstructed by
// walking parents. Worlds are never stored — protocol state is not
// copyable, so states are re-materialized by replaying their prefix.
type rec struct {
	parent int32
	depth  int32
	action Action
}

// used counts budget consumption along a trace.
type used struct {
	drops, dups, resets, vresets int
}

func countUsed(trace []Action) used {
	var u used
	for _, a := range trace {
		switch a.Kind {
		case ActDrop:
			u.drops++
		case ActDup:
			u.dups++
		case ActReset:
			u.resets++
		case ActResetVolatile:
			u.vresets++
		}
	}
	return u
}

func (o Options) remaining(u used) budgets {
	return budgets{
		drops:   o.MaxDrops - u.drops,
		dups:    o.MaxDups - u.dups,
		resets:  o.MaxResets - u.resets,
		vresets: o.MaxVResets - u.vresets,
	}
}

// materialize rebuilds the world at the end of trace by replaying it
// from a fresh initial state. Determinism of newWorld and apply makes
// this exact.
func materialize(sc *Scenario, trace []Action) (*world, error) {
	w, err := newWorld(sc)
	if err != nil {
		return nil, err
	}
	for _, a := range trace {
		w.apply(a)
	}
	return w, nil
}

// traceOf reconstructs the action trace leading to state idx.
func traceOf(recs []rec, idx int32) []Action {
	var n int
	for i := idx; recs[i].parent >= 0; i = recs[i].parent {
		n++
	}
	trace := make([]Action, n)
	for i := idx; recs[i].parent >= 0; i = recs[i].parent {
		n--
		trace[n] = recs[i].action
	}
	return trace
}

// Supports reports whether the named protocol implements the state
// hooks (routing.ModelStater) the checker requires. DSR and OLSR do
// not; sweeps skip them.
func Supports(protocol string) bool {
	g := Graph{N: 2, Edges: [][2]int{{0, 1}}, Name: "pair"}
	sc := &Scenario{Graph: g, Protocol: protocol, Seed: 1, Flows: []Flow{{Src: 0, Dst: 1}}}
	w, err := newWorld(sc)
	if err != nil {
		return false
	}
	_, ok := w.nw.Nodes[0].Protocol().(routing.ModelStater)
	return ok
}

// Check explores the scenario's bounded state space breadth-first and
// returns the first invariant violation found (at minimal action depth)
// or the exhaustive count of clean reachable states.
func Check(sc *Scenario, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	start := time.Now()
	if sc.Flows == nil {
		sc.Flows = DefaultFlows(sc.Graph)
	}
	if sc.Graph.N < 2 || sc.Graph.N > maxNodes {
		return nil, fmt.Errorf("modelcheck: graph size %d out of range [2, %d]", sc.Graph.N, maxNodes)
	}
	for _, f := range sc.Flows {
		if int(f.Src) < 0 || int(f.Src) >= sc.Graph.N || int(f.Dst) < 0 || int(f.Dst) >= sc.Graph.N || f.Src == f.Dst {
			return nil, fmt.Errorf("modelcheck: flow %d->%d invalid for %d nodes", f.Src, f.Dst, sc.Graph.N)
		}
	}

	// Symmetry: states are identified under graph automorphisms that fix
	// every flow endpoint (those nodes have distinguishable roles).
	var pinned []int
	for _, f := range sc.Flows {
		pinned = append(pinned, int(f.Src), int(f.Dst))
	}
	enc := newEncoder(sc.Graph.N, automorphisms(sc.Graph, pinned))
	checker := loopcheck.NewChecker()

	res := &Result{Scenario: sc}
	w0, err := materialize(sc, nil)
	if err != nil {
		return nil, err
	}
	if _, ok := w0.nw.Nodes[0].Protocol().(routing.ModelStater); !ok {
		return nil, fmt.Errorf("modelcheck: protocol %q does not implement routing.ModelStater (have: ldr, aodv)", sc.Protocol)
	}
	var tbuf [][]routing.RouteEntry
	tbuf = w0.tables(tbuf)
	if v := checker.CheckTables(tbuf); len(v) > 0 {
		res.States, res.Elapsed = 1, time.Since(start)
		res.Violation = newWitness(sc, nil, v, w0)
		return res, nil
	}

	recs := []rec{{parent: -1}}
	visited := map[stateKey]struct{}{enc.key(w0, opts.remaining(used{})): {}}
	queue := []int32{0}
	res.States = 1

	for head := 0; head < len(queue); head++ {
		idx := queue[head]
		depth := int(recs[idx].depth)
		if depth > res.Depth {
			res.Depth = depth
		}
		if depth >= opts.MaxDepth {
			continue
		}
		trace := traceOf(recs, idx)
		rem := opts.remaining(countUsed(trace))
		parent, err := materialize(sc, trace)
		if err != nil {
			return nil, err
		}
		acts := parent.enabled(rem)
		for _, a := range acts {
			child, err := materialize(sc, append(trace[:len(trace):len(trace)], a))
			if err != nil {
				return nil, err
			}
			res.Transitions++
			tbuf = child.tables(tbuf)
			if v := checker.CheckTables(tbuf); len(v) > 0 {
				res.Elapsed = time.Since(start)
				res.Violation = newWitness(sc, append(trace[:len(trace):len(trace)], a), v, child)
				return res, nil
			}
			crem := rem
			switch a.Kind {
			case ActDrop:
				crem.drops--
			case ActDup:
				crem.dups--
			case ActReset:
				crem.resets--
			case ActResetVolatile:
				crem.vresets--
			}
			k := enc.key(child, crem)
			if _, ok := visited[k]; ok {
				continue
			}
			if res.States >= opts.MaxStates {
				res.Truncated = true
				continue
			}
			visited[k] = struct{}{}
			recs = append(recs, rec{parent: idx, depth: int32(depth + 1), action: a})
			queue = append(queue, int32(len(recs)-1))
			res.States++
		}
		if opts.Progress != nil && (head+1)%opts.ProgressEvery == 0 {
			opts.Progress(Progress{
				States:      res.States,
				Frontier:    len(queue) - head - 1,
				Transitions: res.Transitions,
				Depth:       depth,
				Elapsed:     time.Since(start),
			})
		}
	}
	res.Elapsed = time.Since(start)
	if opts.Progress != nil {
		opts.Progress(Progress{
			States:      res.States,
			Frontier:    0,
			Transitions: res.Transitions,
			Depth:       res.Depth,
			Elapsed:     res.Elapsed,
		})
	}
	return res, nil
}

// newWitness captures everything Spec building needs from the violating
// world, so the Witness stays useful after the world is garbage.
func newWitness(sc *Scenario, trace []Action, v []loopcheck.Violation, w *world) *Witness {
	wit := &Witness{
		Scenario:   sc,
		Trace:      trace,
		Violations: v,
		delivered:  append([]emission(nil), w.delLog...),
		drops:      append([]emission(nil), w.dropLog...),
	}
	n := sc.Graph.N
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			for _, m := range w.pending[from*n+to] {
				wit.inflight = append(wit.inflight, emission{
					from: routing.NodeID(from), to: routing.NodeID(to), root: m.root,
				})
			}
		}
	}
	return wit
}
