package olsr_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/routing"
)

// TestMPRSetAlwaysCoversTwoHopNeighborhood: for random one- and two-hop
// neighborhoods, the greedy MPR selection must cover every strict
// two-hop node (RFC 3626 §8.3.1's correctness requirement; minimality is
// heuristic, coverage is not).
func TestMPRSetAlwaysCoversTwoHopNeighborhood(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(seed)
		nw, p := isolated(seed)
		nw.Start()

		// Random neighborhood: up to 6 neighbors (ids 1..6), each with a
		// random set of two-hop nodes (ids 10..19).
		reach := make(map[routing.NodeID][]routing.NodeID)
		nNbrs := 1 + r.Intn(6)
		nw.Sim.Schedule(0, func() {
			for nb := routing.NodeID(1); int(nb) <= nNbrs; nb++ {
				sym := []routing.NodeID{0}
				for th := 10; th < 20; th++ {
					if r.Float64() < 0.3 {
						sym = append(sym, routing.NodeID(th))
						reach[nb] = append(reach[nb], routing.NodeID(th))
					}
				}
				p.HandleControl(nb, hello(nb, sym...))
			}
		})
		// Let one hello cycle elapse so MPRs are recomputed.
		nw.Sim.Run(2500 * time.Millisecond)

		covered := make(map[routing.NodeID]bool)
		for _, m := range p.MPRs() {
			for _, th := range reach[m] {
				covered[th] = true
			}
		}
		for _, ths := range reach {
			for _, th := range ths {
				if !covered[th] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(15))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
