package olsr_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/olsr"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/routing"
)

// isolated returns an OLSR instance whose control plane is driven by
// hand-crafted messages (the node exists but the scenario keeps every
// other node out of radio range, so nothing real interferes).
func isolated(seed int64) (*routing.Network, *olsr.OLSR) {
	nw := routing.NewNetwork(1, mobility.Line(1, 250), radio.DefaultConfig(), mac.DefaultConfig(), seed,
		func(node *routing.Node) routing.Protocol {
			return olsr.New(node, olsr.DefaultConfig())
		})
	return nw, nw.Nodes[0].Protocol().(*olsr.OLSR)
}

// hello crafts a HELLO from `from` listing the given symmetric neighbors.
func hello(from routing.NodeID, sym ...routing.NodeID) olsr.Hello {
	h := olsr.Hello{Origin: from}
	for _, n := range sym {
		h.Neighbors = append(h.Neighbors, olsr.HelloNeighbor{ID: n, Code: olsr.LinkSym})
	}
	return h
}

func TestLinkBecomesSymmetricOnEcho(t *testing.T) {
	nw, p := isolated(1)
	nw.Start()
	nw.Sim.Schedule(0, func() {
		// First HELLO from node 1 does not list us: asymmetric.
		p.HandleControl(1, hello(1, 99))
		if _, _, ok := p.RouteTo(1); ok {
			t.Error("asymmetric link produced a route")
		}
		// Second HELLO lists us: now symmetric, one-hop route appears.
		p.HandleControl(1, hello(1, 0))
		if next, hops, ok := p.RouteTo(1); !ok || next != 1 || hops != 1 {
			t.Errorf("symmetric neighbor route = (%d,%d,%v)", next, hops, ok)
		}
	})
	nw.Sim.Run(time.Second)
}

func TestTwoHopRouteViaNeighborHello(t *testing.T) {
	nw, p := isolated(2)
	nw.Start()
	nw.Sim.Schedule(0, func() {
		p.HandleControl(1, hello(1, 0, 5)) // neighbor 1 also hears node 5
		next, hops, ok := p.RouteTo(5)
		if !ok || next != 1 || hops != 2 {
			t.Errorf("two-hop route = (%d,%d,%v), want via 1 in 2 hops", next, hops, ok)
		}
	})
	nw.Sim.Run(time.Second)
}

func TestTopologyRouteViaTC(t *testing.T) {
	nw, p := isolated(3)
	nw.Start()
	nw.Sim.Schedule(0, func() {
		p.HandleControl(1, hello(1, 0))
		p.HandleControl(1, hello(1, 0, 7))
		// Node 7 (2 hops away) advertises selector 9 via a TC relayed to us.
		p.HandleControl(1, olsr.TC{Origin: 7, Seq: 1, ANSN: 1, Selectors: []routing.NodeID{9}, TTL: 10})
		next, hops, ok := p.RouteTo(9)
		if !ok || next != 1 || hops != 3 {
			t.Errorf("TC-derived route = (%d,%d,%v), want via 1 in 3 hops", next, hops, ok)
		}
	})
	nw.Sim.Run(time.Second)
}

func TestTCIgnoredFromAsymmetricLink(t *testing.T) {
	nw, p := isolated(4)
	nw.Start()
	nw.Sim.Schedule(0, func() {
		// No HELLO exchange: link to node 1 is not symmetric.
		p.HandleControl(1, olsr.TC{Origin: 7, Seq: 1, ANSN: 1, Selectors: []routing.NodeID{9}, TTL: 10})
		if _, _, ok := p.RouteTo(9); ok {
			t.Error("TC over an asymmetric link installed topology")
		}
	})
	nw.Sim.Run(time.Second)
}

func TestMPRSelectionCoversTwoHopSet(t *testing.T) {
	nw, p := isolated(5)
	nw.Start()
	nw.Sim.Schedule(0, func() {
		// Neighbor 1 reaches {10, 11}; neighbor 2 reaches {11}; neighbor 3
		// reaches {12}. Minimal cover: {1, 3}.
		p.HandleControl(1, hello(1, 0, 10, 11))
		p.HandleControl(2, hello(2, 0, 11))
		p.HandleControl(3, hello(3, 0, 12))
	})
	// MPRs are recomputed on the HELLO timer; wait one period.
	nw.Sim.Run(3 * time.Second)

	mprs := p.MPRs()
	want := map[routing.NodeID]bool{1: true, 3: true}
	if len(mprs) != 2 {
		t.Fatalf("MPRs = %v, want exactly {1, 3}", mprs)
	}
	for _, m := range mprs {
		if !want[m] {
			t.Fatalf("MPRs = %v, want {1, 3}", mprs)
		}
	}
}

func TestNeighborExpiryDropsRoutes(t *testing.T) {
	nw, p := isolated(6)
	nw.Start()
	nw.Sim.Schedule(0, func() { p.HandleControl(1, hello(1, 0)) })
	// NeighborHold is 6 s; after 8 s with no HELLO the link must be gone.
	nw.Sim.Run(8 * time.Second)
	if _, _, ok := p.RouteTo(1); ok {
		t.Fatal("expired neighbor still routed")
	}
}

func TestDuplicateTCNotReprocessed(t *testing.T) {
	nw, p := isolated(7)
	nw.Start()
	nw.Sim.Schedule(0, func() {
		p.HandleControl(1, hello(1, 0, 7))
		tc := olsr.TC{Origin: 7, Seq: 5, ANSN: 2, Selectors: []routing.NodeID{9}, TTL: 10}
		p.HandleControl(1, tc)
		// A duplicate with different content must be ignored (same Seq).
		dup := olsr.TC{Origin: 7, Seq: 5, ANSN: 3, Selectors: []routing.NodeID{13}, TTL: 10}
		p.HandleControl(1, dup)
		if _, _, ok := p.RouteTo(13); ok {
			t.Error("duplicate TC was processed")
		}
		if _, _, ok := p.RouteTo(9); !ok {
			t.Error("original TC content lost")
		}
	})
	nw.Sim.Run(time.Second)
}
