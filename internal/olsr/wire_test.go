package olsr

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/manetlab/ldr/internal/routing"
)

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{
		Origin: 4,
		Neighbors: []HelloNeighbor{
			{ID: 1, Code: LinkSym},
			{ID: 2, Code: LinkMPR},
			{ID: 3, Code: LinkAsym},
		},
	}
	got, err := UnmarshalHello(h.Marshal())
	if err != nil || !reflect.DeepEqual(got, h) {
		t.Fatalf("round trip: %+v != %+v (%v)", got, h, err)
	}
}

func TestEmptyHelloRoundTrip(t *testing.T) {
	h := Hello{Origin: 0}
	got, err := UnmarshalHello(h.Marshal())
	if err != nil || got.Origin != 0 || len(got.Neighbors) != 0 {
		t.Fatalf("empty hello: %+v (%v)", got, err)
	}
}

func TestTCRoundTrip(t *testing.T) {
	f := func(origin int32, seq, ansn uint16, ttl uint8, raw []int32) bool {
		tc := TC{Origin: routing.NodeID(origin), Seq: seq, ANSN: ansn, TTL: int(ttl)}
		for _, v := range raw {
			tc.Selectors = append(tc.Selectors, routing.NodeID(v))
		}
		got, err := UnmarshalTC(tc.Marshal())
		return err == nil && reflect.DeepEqual(got, tc)
	}
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSizesMatchEncodings(t *testing.T) {
	h := Hello{Origin: 1, Neighbors: make([]HelloNeighbor, 4)}
	if h.Size() != len(h.Marshal()) {
		t.Fatal("Hello.Size diverges from encoding")
	}
	tc := TC{Selectors: make([]routing.NodeID, 3), TTL: 10}
	if tc.Size() != len(tc.Marshal()) {
		t.Fatal("TC.Size diverges from encoding")
	}
}
