package olsr

import (
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/wire"
)

// Marshal encodes the HELLO to its wire format.
func (h Hello) Marshal() []byte {
	enc := wire.NewEncoder(wire.TypeOLSRHello).
		Node(int(h.Origin)).
		U16(uint16(len(h.Neighbors)))
	for _, n := range h.Neighbors {
		enc.Node(int(n.ID)).U8(uint8(n.Code))
	}
	return enc.Bytes()
}

// UnmarshalHello decodes an OLSR HELLO.
func UnmarshalHello(b []byte) (Hello, error) {
	d, err := wire.NewDecoder(b, wire.TypeOLSRHello)
	if err != nil {
		return Hello{}, err
	}
	var h Hello
	h.Origin = routing.NodeID(d.Node())
	n := int(d.U16())
	for i := 0; i < n; i++ {
		h.Neighbors = append(h.Neighbors, HelloNeighbor{
			ID:   routing.NodeID(d.Node()),
			Code: LinkCode(d.U8()),
		})
	}
	return h, d.Err()
}

// Marshal encodes the TC to its wire format.
func (t TC) Marshal() []byte {
	enc := wire.NewEncoder(wire.TypeOLSRTC).
		Node(int(t.Origin)).
		U16(t.Seq).
		U16(t.ANSN).
		U8(uint8(max(min(t.TTL, 255), 0))).
		U16(uint16(len(t.Selectors)))
	for _, s := range t.Selectors {
		enc.Node(int(s))
	}
	return enc.Bytes()
}

// UnmarshalTC decodes an OLSR TC.
func UnmarshalTC(b []byte) (TC, error) {
	d, err := wire.NewDecoder(b, wire.TypeOLSRTC)
	if err != nil {
		return TC{}, err
	}
	var t TC
	t.Origin = routing.NodeID(d.Node())
	t.Seq = d.U16()
	t.ANSN = d.U16()
	t.TTL = int(d.U8())
	n := int(d.U16())
	for i := 0; i < n; i++ {
		t.Selectors = append(t.Selectors, routing.NodeID(d.Node()))
	}
	return t, d.Err()
}
