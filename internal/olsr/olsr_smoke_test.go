package olsr_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/olsr"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/routing"
)

func chain(n int, seed int64) *routing.Network {
	return routing.NewNetwork(n, mobility.Line(n, 250), radio.DefaultConfig(), mac.DefaultConfig(), seed,
		func(node *routing.Node) routing.Protocol {
			return olsr.New(node, olsr.DefaultConfig())
		})
}

func TestOLSRBuildsRoutesProactively(t *testing.T) {
	nw := chain(5, 1)
	nw.Start()
	// No data at all: after a few HELLO/TC rounds every node must know a
	// route to every other node.
	nw.Sim.Run(30 * time.Second)

	p := nw.Nodes[0].Protocol().(*olsr.OLSR)
	next, hops, ok := p.RouteTo(4)
	if !ok {
		t.Fatal("node 0 has no route to node 4")
	}
	if next != 1 || hops != 4 {
		t.Fatalf("route = via %d, %d hops; want via 1, 4 hops", next, hops)
	}
}

func TestOLSRDeliversWithoutDiscoveryDelay(t *testing.T) {
	nw := chain(5, 2)
	nw.Start()
	// Warm up the topology, then send; latency should be pure forwarding.
	for i := 0; i < 20; i++ {
		i := i
		nw.Sim.At(30*time.Second+time.Duration(i)*100*time.Millisecond, func() {
			nw.Nodes[0].OriginateData(4, 512)
		})
	}
	nw.Sim.Run(40 * time.Second)

	c := nw.Collector
	if c.DataDelivered < 19 {
		t.Fatalf("delivered %d of %d", c.DataDelivered, c.DataInitiated)
	}
	if lat := c.MeanLatency(); lat > 100*time.Millisecond {
		t.Fatalf("mean latency = %v, want < 100ms for warmed-up proactive routes", lat)
	}
	if c.ControlInitiated(4 /* Hello */) == 0 {
		t.Fatal("no HELLOs were initiated")
	}
}

func TestOLSRChainMPRSelection(t *testing.T) {
	nw := chain(3, 3)
	nw.Start()
	nw.Sim.Run(20 * time.Second)

	// The middle node is the only path between the ends, so both ends must
	// select it as MPR.
	for _, end := range []int{0, 2} {
		p := nw.Nodes[end].Protocol().(*olsr.OLSR)
		mprs := p.MPRs()
		if len(mprs) != 1 || mprs[0] != 1 {
			t.Fatalf("node %d MPRs = %v, want [1]", end, mprs)
		}
	}
}
