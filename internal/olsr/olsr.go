// Package olsr implements the Optimized Link State Routing protocol
// (Clausen et al., draft-ietf-manet-olsr), the proactive baseline in the
// LDR paper.
//
// OLSR floods topology information continuously: HELLO messages build the
// one- and two-hop neighborhoods and elect multipoint relays (MPRs), and
// TC messages — forwarded only by MPRs — advertise each node's MPR
// selectors network-wide. Every node runs a shortest-path computation over
// the resulting partial topology graph, so routes exist before data needs
// them (the low-latency advantage the paper observes) at the cost of
// constant control overhead.
//
// The paper found "packet jitter problems in the OLSR code from INRIA" and
// introduced a FIFO jitter queue that spaces broadcast transmissions by a
// uniform 0–15 ms while preserving FIFO order; the same queue is
// implemented here (Config.JitterQueue) and its effect is measurable in
// the ablation benchmark.
package olsr

import (
	"sort"
	"time"

	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/runpool"
	"github.com/manetlab/ldr/internal/sim"
)

// LinkCode describes a neighbor's status inside a HELLO.
type LinkCode uint8

// Link codes, a condensed version of RFC 3626 §6.
const (
	LinkAsym LinkCode = iota + 1 // heard them; not yet bidirectional
	LinkSym                      // bidirectional
	LinkMPR                      // bidirectional and selected as our MPR
)

// Config parameterizes OLSR.
type Config struct {
	HelloInterval time.Duration
	TCInterval    time.Duration
	NeighborHold  time.Duration // link expiry (3 × hello)
	TopologyHold  time.Duration // TC tuple expiry (3 × TC)
	DupHold       time.Duration // duplicate-set retention
	JitterQueue   bool          // the paper's FIFO jitter queue
	MaxJitter     time.Duration // uniform inter-packet jitter bound
	NetDiameter   int
}

// DefaultConfig returns RFC-3626 default intervals with the paper's
// jitter-queue fix enabled.
func DefaultConfig() Config {
	return Config{
		HelloInterval: 2 * time.Second,
		TCInterval:    5 * time.Second,
		NeighborHold:  6 * time.Second,
		TopologyHold:  15 * time.Second,
		DupHold:       30 * time.Second,
		JitterQueue:   true,
		MaxJitter:     15 * time.Millisecond,
		NetDiameter:   35,
	}
}

// HelloNeighbor is one entry in a HELLO message.
type HelloNeighbor struct {
	ID   routing.NodeID
	Code LinkCode
}

// Hello advertises this node's current neighborhood. Never forwarded.
type Hello struct {
	Origin    routing.NodeID
	Neighbors []HelloNeighbor
}

// Kind implements routing.Message.
func (Hello) Kind() metrics.ControlKind { return metrics.Hello }

// Size implements routing.Message: computed arithmetically from the wire
// layout so the periodic send path does not marshal; the wire round-trip
// tests pin it to len(Marshal()).
func (h Hello) Size() int { return helloWireBase + helloWirePerNbr*len(h.Neighbors) }

// TC advertises the origin's MPR selector set; flooded via MPRs.
type TC struct {
	Origin    routing.NodeID
	Seq       uint16 // message sequence number for duplicate suppression
	ANSN      uint16 // advertised neighbor sequence number
	Selectors []routing.NodeID
	TTL       int
}

// Kind implements routing.Message.
func (TC) Kind() metrics.ControlKind { return metrics.TC }

// Size implements routing.Message.
func (t TC) Size() int { return tcWireBase + tcWirePerSel*len(t.Selectors) }

// Wire sizes of the fixed-layout prefixes (type byte and entry-count
// fields included); pinned against Marshal by the wire round-trip tests.
const (
	helloWireBase   = 1 + 4 + 2
	helloWirePerNbr = 4 + 1
	tcWireBase      = 1 + 4 + 2 + 2 + 1 + 2
	tcWirePerSel    = 4
)

type linkState struct {
	symmetric bool
	isMPR     bool // we selected this neighbor as MPR
	expiry    time.Duration
}

type topoTuple struct {
	lastHop routing.NodeID // TC origin
	ansn    uint16
	expiry  time.Duration
}

type dupKey struct {
	origin routing.NodeID
	seq    uint16
}

// OLSR is one node's protocol instance.
type OLSR struct {
	node *routing.Node
	cfg  Config

	links     map[routing.NodeID]*linkState
	twoHop    map[routing.NodeID]map[routing.NodeID]time.Duration // neighbor → its neighbors → expiry
	selectors map[routing.NodeID]time.Duration                    // neighbors that chose us as MPR
	topology  map[routing.NodeID]map[routing.NodeID]topoTuple     // dest → lastHop → tuple
	dup       map[dupKey]time.Duration

	routes     map[routing.NodeID]routing.NodeID // dest → next hop
	hops       map[routing.NodeID]int
	dirty      bool
	ansn       uint16
	msgSeq     uint16
	helloTimer sim.Timer
	tcTimer    sim.Timer
	sweeper    sim.Timer
	queue      *jitterQueue
	stopped    bool

	// Run-local message pools: wire messages are pooled pointers recycled
	// by the sending node once the MAC releases the frame.
	helloPool runpool.Pool[Hello]
	tcPool    runpool.Pool[TC]
}

var (
	_ routing.Protocol           = (*OLSR)(nil)
	_ routing.TableSnapshotter   = (*OLSR)(nil)
	_ routing.TableAppender      = (*OLSR)(nil)
	_ routing.Resetter           = (*OLSR)(nil)
	_ routing.DataFailureHandler = (*OLSR)(nil)
	_ routing.MessageRecycler    = (*OLSR)(nil)
)

// New builds an OLSR instance bound to a node.
func New(node *routing.Node, cfg Config) *OLSR {
	o := &OLSR{
		node:      node,
		cfg:       cfg,
		links:     make(map[routing.NodeID]*linkState),
		twoHop:    make(map[routing.NodeID]map[routing.NodeID]time.Duration),
		selectors: make(map[routing.NodeID]time.Duration),
		topology:  make(map[routing.NodeID]map[routing.NodeID]topoTuple),
		dup:       make(map[dupKey]time.Duration),
		routes:    make(map[routing.NodeID]routing.NodeID),
		hops:      make(map[routing.NodeID]int),
	}
	o.queue = newJitterQueue(o, cfg)
	return o
}

// Start implements routing.Protocol: begins the HELLO/TC emission cycle,
// desynchronized across nodes by a random initial phase.
func (o *OLSR) Start() {
	helloPhase := time.Duration(o.node.RNG().Float64() * float64(o.cfg.HelloInterval))
	tcPhase := o.cfg.HelloInterval + time.Duration(o.node.RNG().Float64()*float64(o.cfg.TCInterval))
	o.helloTimer = o.node.Schedule(helloPhase, o.sendHello)
	o.tcTimer = o.node.Schedule(tcPhase, o.sendTC)
	o.sweeper = o.node.Schedule(time.Second, o.sweep)
}

// Stop implements routing.Protocol.
func (o *OLSR) Stop() {
	o.stopped = true
	o.helloTimer.Cancel()
	o.tcTimer.Cancel()
	o.sweeper.Cancel()
}

// Reset implements routing.Resetter: a crash clears the entire link-state
// view — links, two-hop sets, MPR selectors, topology tuples, duplicate
// table, and computed routes — and cancels the periodic timers, which
// Start re-arms with fresh phases at reboot. ansn and msgSeq survive:
// they version this node's advertisements, and restarting them at zero
// would make neighbors' duplicate and topology tables discard the
// rebooted node's fresh messages as stale for a full holding time.
func (o *OLSR) Reset() {
	o.helloTimer.Cancel()
	o.tcTimer.Cancel()
	o.sweeper.Cancel()
	o.helloTimer, o.tcTimer, o.sweeper = sim.Timer{}, sim.Timer{}, sim.Timer{}
	clear(o.links)
	clear(o.twoHop)
	clear(o.selectors)
	clear(o.topology)
	clear(o.dup)
	clear(o.routes)
	clear(o.hops)
	o.dirty = false
	o.queue.reset()
}

// WalkHeldControl implements routing.HeldControlWalker: messages sitting
// in the jitter queue have been counted as initiated (or are relayed
// floods) but have not reached SendControl yet, so the conformance
// control ledger must see them as held rather than vanished.
func (o *OLSR) WalkHeldControl(fn func(metrics.ControlKind)) {
	for _, msg := range o.queue.queue {
		fn(msg.Kind())
	}
}

// --- periodic emission ---

func (o *OLSR) sendHello() {
	if o.stopped {
		return
	}
	o.recomputeMPRs()
	h := o.helloPool.Get()
	neighbors := h.Neighbors
	*h = Hello{Origin: o.node.ID(), Neighbors: neighbors[:0]}
	for id, l := range o.links {
		code := LinkAsym
		switch {
		case l.symmetric && l.isMPR:
			code = LinkMPR
		case l.symmetric:
			code = LinkSym
		}
		h.Neighbors = append(h.Neighbors, HelloNeighbor{ID: id, Code: code})
	}
	sort.Slice(h.Neighbors, func(i, j int) bool { return h.Neighbors[i].ID < h.Neighbors[j].ID })
	o.node.Metrics().CountControlInitiate(metrics.Hello)
	o.queue.push(h)
	o.helloTimer = o.node.Schedule(o.cfg.HelloInterval, o.sendHello)
}

func (o *OLSR) sendTC() {
	if o.stopped {
		return
	}
	if len(o.selectors) > 0 {
		o.msgSeq++
		tc := o.tcPool.Get()
		selectors := tc.Selectors
		*tc = TC{
			Origin:    o.node.ID(),
			Seq:       o.msgSeq,
			ANSN:      o.ansn,
			TTL:       o.cfg.NetDiameter,
			Selectors: selectors[:0],
		}
		for id := range o.selectors {
			tc.Selectors = append(tc.Selectors, id)
		}
		sortNodeIDs(tc.Selectors)
		o.node.Metrics().CountControlInitiate(metrics.TC)
		o.queue.push(tc)
	}
	o.tcTimer = o.node.Schedule(o.cfg.TCInterval, o.sendTC)
}

// sweep expires links, two-hop tuples, selectors, topology, and duplicate
// entries once per second.
func (o *OLSR) sweep() {
	if o.stopped {
		return
	}
	now := o.node.Now()
	for id, l := range o.links {
		if l.expiry <= now {
			delete(o.links, id)
			delete(o.twoHop, id)
			o.dirty = true
		}
	}
	for n, set := range o.twoHop {
		for th, exp := range set {
			if exp <= now {
				delete(set, th)
				o.dirty = true
			}
		}
		if len(set) == 0 {
			delete(o.twoHop, n)
		}
	}
	for id, exp := range o.selectors {
		if exp <= now {
			delete(o.selectors, id)
			o.ansn++
		}
	}
	for dst, set := range o.topology {
		for last, tup := range set {
			if tup.expiry <= now {
				delete(set, last)
				o.dirty = true
			}
		}
		if len(set) == 0 {
			delete(o.topology, dst)
		}
	}
	for k, exp := range o.dup {
		if exp <= now {
			delete(o.dup, k)
		}
	}
	o.sweeper = o.node.Schedule(time.Second, o.sweep)
}

// --- control plane ---

// HandleControl implements routing.Protocol.
func (o *OLSR) HandleControl(from routing.NodeID, msg routing.Message) {
	if o.stopped {
		return
	}
	// The wire path delivers pooled pointer messages (read-only, valid
	// only during the call); tests and the adversary layer may still hand
	// in plain values.
	switch m := msg.(type) {
	case *Hello:
		o.handleHello(from, *m)
	case Hello:
		o.handleHello(from, m)
	case *TC:
		o.handleTC(from, *m)
	case TC:
		o.handleTC(from, m)
	}
}

func (o *OLSR) handleHello(from routing.NodeID, h Hello) {
	now := o.node.Now()
	me := o.node.ID()

	l := o.links[from]
	if l == nil {
		l = &linkState{}
		o.links[from] = l
		o.dirty = true
	}
	l.expiry = now + o.cfg.NeighborHold

	heardUs := false
	selectedUs := false
	for _, n := range h.Neighbors {
		if n.ID == me {
			heardUs = true
			selectedUs = n.Code == LinkMPR
		}
	}
	if heardUs != l.symmetric {
		l.symmetric = heardUs
		o.dirty = true
	}

	if selectedUs {
		if _, ok := o.selectors[from]; !ok {
			o.ansn++
		}
		o.selectors[from] = now + o.cfg.NeighborHold
	} else if _, ok := o.selectors[from]; ok {
		delete(o.selectors, from)
		o.ansn++
	}

	// Two-hop neighborhood: symmetric neighbors of a symmetric neighbor.
	if l.symmetric {
		set := o.twoHop[from]
		if set == nil {
			set = make(map[routing.NodeID]time.Duration)
			o.twoHop[from] = set
		}
		for _, n := range h.Neighbors {
			if n.ID == me || n.Code == LinkAsym {
				continue
			}
			if _, ok := set[n.ID]; !ok {
				o.dirty = true
			}
			set[n.ID] = now + o.cfg.NeighborHold
		}
	}
}

func (o *OLSR) handleTC(from routing.NodeID, tc TC) {
	me := o.node.ID()
	if tc.Origin == me {
		return
	}
	now := o.node.Now()

	// Only process TCs arriving over a symmetric link (RFC 3626 §9.2).
	l := o.links[from]
	if l == nil || !l.symmetric {
		return
	}

	key := dupKey{origin: tc.Origin, seq: tc.Seq}
	_, isDup := o.dup[key]
	o.dup[key] = now + o.cfg.DupHold

	if !isDup {
		set := o.topology[tc.Origin]
		// Discard stale information per ANSN; tc.Origin is the lastHop of
		// every advertised selector.
		fresh := true
		for _, tup := range set {
			if seqGreater(tup.ansn, tc.ANSN) {
				fresh = false
				break
			}
		}
		if fresh {
			// Rebuild the origin's advertised set.
			for dst, tset := range o.topology {
				if _, ok := tset[tc.Origin]; ok {
					delete(tset, tc.Origin)
					if len(tset) == 0 {
						delete(o.topology, dst)
					}
				}
			}
			for _, sel := range tc.Selectors {
				if sel == me {
					continue
				}
				tset := o.topology[sel]
				if tset == nil {
					tset = make(map[routing.NodeID]topoTuple)
					o.topology[sel] = tset
				}
				tset[tc.Origin] = topoTuple{
					lastHop: tc.Origin,
					ansn:    tc.ANSN,
					expiry:  now + o.cfg.TopologyHold,
				}
			}
			o.dirty = true
		}
	}

	// MPR forwarding: relay only if the sender selected us as MPR.
	if isDup || tc.TTL <= 1 {
		return
	}
	if _, selected := o.selectors[from]; !selected {
		return
	}
	// The incoming tc's Selectors alias the sender's pooled message, which
	// is recycled once its frame completes; the jitter queue outlives that,
	// so the relayed copy must own its selector list.
	fwd := o.tcPool.Get()
	selectors := fwd.Selectors
	*fwd = tc
	fwd.Selectors = append(selectors[:0], tc.Selectors...)
	fwd.TTL--
	o.queue.pushForward(fwd)
}

// RecycleMessage implements routing.MessageRecycler.
func (o *OLSR) RecycleMessage(msg routing.Message) {
	switch m := msg.(type) {
	case *Hello:
		m.Neighbors = m.Neighbors[:0]
		o.helloPool.Put(m)
	case *TC:
		m.Selectors = m.Selectors[:0]
		o.tcPool.Put(m)
	}
}

// sortNodeIDs sorts in place; wire formats and BFS expansion use it so no
// observable behaviour depends on map iteration order.
func sortNodeIDs(ids []routing.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// seqGreater compares 16-bit sequence numbers with wraparound.
func seqGreater(a, b uint16) bool {
	return (a > b && a-b <= 32768) || (a < b && b-a > 32768)
}

// --- MPR selection ---

// recomputeMPRs runs the greedy RFC 3626 §8.3.1 heuristic: first take
// neighbors that are the sole reach to some two-hop node, then repeatedly
// take the neighbor covering the most uncovered two-hop nodes.
func (o *OLSR) recomputeMPRs() {
	now := o.node.Now()
	// Uncovered two-hop set (excluding me and direct neighbors).
	uncovered := make(map[routing.NodeID]struct{})
	reach := make(map[routing.NodeID][]routing.NodeID) // neighbor → two-hops
	for n, l := range o.links {
		if !l.symmetric {
			continue
		}
		for th, exp := range o.twoHop[n] {
			if exp <= now || th == o.node.ID() {
				continue
			}
			if ln, direct := o.links[th]; direct && ln.symmetric {
				continue
			}
			uncovered[th] = struct{}{}
			reach[n] = append(reach[n], th)
		}
	}
	mpr := make(map[routing.NodeID]bool)
	// Mandatory: sole providers.
	counts := make(map[routing.NodeID]int) // two-hop → #neighbors reaching it
	for _, ths := range reach {
		for _, th := range ths {
			counts[th]++
		}
	}
	for n, ths := range reach {
		for _, th := range ths {
			if counts[th] == 1 {
				mpr[n] = true
				break
			}
		}
	}
	cover := func(n routing.NodeID) {
		for _, th := range reach[n] {
			delete(uncovered, th)
		}
	}
	for n := range mpr {
		cover(n)
	}
	// Greedy: highest coverage first; ties broken by lowest ID for
	// determinism.
	for len(uncovered) > 0 {
		best := routing.NodeID(-1)
		bestCount := 0
		for n := range reach {
			if mpr[n] {
				continue
			}
			c := 0
			for _, th := range reach[n] {
				if _, ok := uncovered[th]; ok {
					c++
				}
			}
			if c > bestCount || (c == bestCount && c > 0 && (best < 0 || n < best)) {
				best = n
				bestCount = c
			}
		}
		if best < 0 || bestCount == 0 {
			break
		}
		mpr[best] = true
		cover(best)
	}
	for n, l := range o.links {
		l.isMPR = mpr[n]
	}
}

// --- routing table (shortest path over the partial topology graph) ---

// recompute rebuilds the routing table with a BFS over: symmetric links,
// two-hop tuples, and TC topology edges.
func (o *OLSR) recompute() {
	now := o.node.Now()
	me := o.node.ID()
	o.routes = make(map[routing.NodeID]routing.NodeID)
	o.hops = make(map[routing.NodeID]int)

	type qe struct {
		node routing.NodeID
		next routing.NodeID // first hop on the path
		dist int
	}
	// Expansion order must not depend on map iteration order: equal-cost
	// destinations keep whichever first hop the BFS reaches first, and a
	// run-to-run change there changes forwarding (and so the whole
	// simulation). Seed and expand in sorted NodeID order.
	var queue []qe
	neigh := make([]routing.NodeID, 0, len(o.links))
	for n, l := range o.links {
		if l.symmetric {
			neigh = append(neigh, n)
		}
	}
	sortNodeIDs(neigh)
	for _, n := range neigh {
		o.routes[n] = n
		o.hops[n] = 1
		queue = append(queue, qe{node: n, next: n, dist: 1})
	}
	var targets []routing.NodeID
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		targets = targets[:0]
		// Two-hop tuples extend one hop past direct neighbors.
		for th, exp := range o.twoHop[cur.node] {
			if exp > now {
				targets = append(targets, th)
			}
		}
		// Topology tuples: lastHop → dest edges from TCs.
		for dst, tset := range o.topology {
			if tup, ok := tset[cur.node]; ok && tup.expiry > now {
				targets = append(targets, dst)
			}
		}
		sortNodeIDs(targets)
		for _, to := range targets {
			if to == me {
				continue
			}
			if _, seen := o.routes[to]; seen {
				continue
			}
			o.routes[to] = cur.next
			o.hops[to] = cur.dist + 1
			queue = append(queue, qe{node: to, next: cur.next, dist: cur.dist + 1})
		}
	}
	o.dirty = false
}

// --- data plane ---

// Originate implements routing.Protocol.
func (o *OLSR) Originate(pkt *routing.DataPacket) { o.forward(pkt) }

// HandleData implements routing.Protocol.
func (o *OLSR) HandleData(_ routing.NodeID, pkt *routing.DataPacket) {
	if pkt.Dst == o.node.ID() {
		o.node.DeliverLocal(pkt)
		return
	}
	pkt.TTL--
	if pkt.TTL <= 0 {
		o.node.DropData(pkt, routing.DropTTL)
		return
	}
	o.forward(pkt)
}

func (o *OLSR) forward(pkt *routing.DataPacket) {
	if o.dirty {
		o.recompute()
	}
	next, ok := o.routes[pkt.Dst]
	if !ok {
		o.node.DropData(pkt, routing.DropNoRoute)
		return
	}
	o.node.SendData(next, pkt)
}

// DataFailed implements routing.DataFailureHandler. Retried distinguishes
// the two failure stages that used to be chained closures: a first failure
// runs route maintenance, a failure of the retry drops the packet.
func (o *OLSR) DataFailed(next routing.NodeID, pkt *routing.DataPacket) {
	if pkt.Retried {
		o.node.DropData(pkt, routing.DropLinkBreak)
		return
	}
	if o.stopped {
		return
	}
	o.linkFailure(next, pkt)
}

// linkFailure drops the link immediately rather than waiting out the
// HELLO hold time, then retries the packet once over a recomputed table.
func (o *OLSR) linkFailure(next routing.NodeID, pkt *routing.DataPacket) {
	delete(o.links, next)
	delete(o.twoHop, next)
	o.dirty = true
	o.recompute()
	if alt, ok := o.routes[pkt.Dst]; ok && alt != next {
		pkt.Retried = true
		o.node.SendData(alt, pkt)
		return
	}
	o.node.DropData(pkt, routing.DropLinkBreak)
}

// --- observability ---

// SnapshotTable implements routing.TableSnapshotter.
func (o *OLSR) SnapshotTable() []routing.RouteEntry {
	return o.AppendTable(make([]routing.RouteEntry, 0, len(o.routes)))
}

// AppendTable implements routing.TableAppender.
func (o *OLSR) AppendTable(out []routing.RouteEntry) []routing.RouteEntry {
	if o.dirty {
		o.recompute()
	}
	for dst, next := range o.routes {
		out = append(out, routing.RouteEntry{
			Dst: dst, Next: next, Metric: o.hops[dst], Valid: true,
		})
	}
	return out
}

// RouteTo exposes (next hop, hop count, ok) for tests and examples.
func (o *OLSR) RouteTo(dst routing.NodeID) (routing.NodeID, int, bool) {
	if o.dirty {
		o.recompute()
	}
	next, ok := o.routes[dst]
	return next, o.hops[dst], ok
}

// MPRs returns the node's currently selected multipoint relays (tests).
func (o *OLSR) MPRs() []routing.NodeID {
	var out []routing.NodeID
	for n, l := range o.links {
		if l.isMPR {
			out = append(out, n)
		}
	}
	return out
}

// --- the paper's FIFO jitter queue ---

// jitterQueue spaces broadcast control transmissions by a uniform jitter
// while preserving FIFO order (§4: "We introduce a new FIFO jitter queue
// to OLSR... adds a uniformly chosen inter-packet jitter between 0 and
// 15 ms and maintains FIFO packet order").
type jitterQueue struct {
	o     *OLSR
	queue []routing.Message
	busy  bool
}

func newJitterQueue(o *OLSR, _ Config) *jitterQueue {
	return &jitterQueue{o: o}
}

// push enqueues a locally originated broadcast message.
func (q *jitterQueue) push(msg routing.Message) {
	if !q.o.cfg.JitterQueue {
		q.o.node.SendControl(routing.BroadcastID, msg, nil)
		return
	}
	q.queue = append(q.queue, msg)
	q.kick()
}

// pushForward enqueues a flooded (relayed) message; identical to push,
// named for call-site clarity.
func (q *jitterQueue) pushForward(msg routing.Message) { q.push(msg) }

func (q *jitterQueue) kick() {
	if q.busy || len(q.queue) == 0 {
		return
	}
	q.busy = true
	jitter := time.Duration(q.o.node.RNG().Float64() * float64(q.o.cfg.MaxJitter))
	q.o.node.Schedule(jitter, q.pop)
}

// reset drops all queued messages (crash path), counting each as a
// pre-transmission control drop so the conformance ledger can still
// account for every initiated packet. A pending pop event may still
// fire; it finds the queue empty, clears busy, and stops — so the flag
// is deliberately left alone here rather than cleared under it.
func (q *jitterQueue) reset() {
	for i, msg := range q.queue {
		q.o.node.Metrics().CountControlDrop(msg.Kind())
		q.o.RecycleMessage(msg)
		q.queue[i] = nil
	}
	q.queue = q.queue[:0]
}

func (q *jitterQueue) pop() {
	q.busy = false
	if q.o.stopped || len(q.queue) == 0 {
		return
	}
	msg := q.queue[0]
	q.queue[0] = nil
	q.queue = q.queue[1:]
	q.o.node.SendControl(routing.BroadcastID, msg, nil)
	q.kick()
}
