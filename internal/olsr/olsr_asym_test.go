package olsr_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/olsr"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/routing"
)

// TestOLSRRefusesOneWayLinks pins the RFC 3626 link-sensing gate against
// heterogeneous transmit powers: a link becomes symmetric only once a
// HELLO from the far side lists us in its heard set, so a one-way link
// (long-range transmitter, short-range receiver) must never enter the
// routing table — data toward an unreachable destination fails at the
// source as no-route rather than being forwarded into a next hop that
// cannot ACK.
//
// Topology (classes assigned id%2: even = 375 m range, odd = 150 m):
//
//	node 0 (long) —— 120 m —— node 1 (short) —— 270 m —— node 2 (long)
//
// 0↔1 is mutual (120 ≤ both ranges). 2→1 is one-way (270 ≤ 375 but
// 270 > 150). 0 and 2 are 390 m apart — out of even the long range.
func TestOLSRRefusesOneWayLinks(t *testing.T) {
	rcfg := radio.DefaultConfig()
	rcfg.Classes = []radio.Class{
		{Range: 375, CSRange: 650},
		{Range: 150, CSRange: 450},
	}
	pts := []mobility.Point{{X: 0, Y: 0}, {X: 120, Y: 0}, {X: 390, Y: 0}}
	nw := routing.NewNetwork(3, mobility.NewStatic(pts), rcfg, mac.DefaultConfig(), 1,
		func(node *routing.Node) routing.Protocol {
			return olsr.New(node, olsr.DefaultConfig())
		})
	nw.Start()
	nw.Sim.Run(30 * time.Second)

	p0 := nw.Nodes[0].Protocol().(*olsr.OLSR)
	p1 := nw.Nodes[1].Protocol().(*olsr.OLSR)
	p2 := nw.Nodes[2].Protocol().(*olsr.OLSR)

	// The mutual pair must route to each other despite the mixed classes.
	if _, _, ok := p0.RouteTo(1); !ok {
		t.Fatal("node 0 has no route to mutual neighbor 1")
	}
	if _, _, ok := p1.RouteTo(0); !ok {
		t.Fatal("node 1 has no route to mutual neighbor 0")
	}

	// The one-way 2→1 link must never surface as a route anywhere: node 1
	// hears node 2's HELLOs but node 2 never hears node 1 confirm, so the
	// link stays asymmetric on node 1's side and unknown on node 2's.
	for _, c := range []struct {
		p        *olsr.OLSR
		from, to routing.NodeID
	}{
		{p1, 1, 2}, {p2, 2, 1}, {p0, 0, 2}, {p2, 2, 0},
	} {
		if next, _, ok := c.p.RouteTo(c.to); ok {
			t.Fatalf("node %d routes to %d via %d over a one-way link", c.from, c.to, next)
		}
	}

	// Data across the one-way link fails visibly at the source.
	nw.Sim.At(nw.Sim.Now()+time.Second, func() { nw.Nodes[2].OriginateData(1, 512) })
	nw.Sim.At(nw.Sim.Now()+time.Second, func() { nw.Nodes[0].OriginateData(1, 512) })
	nw.Sim.Run(nw.Sim.Now() + 5*time.Second)

	if got := nw.Collector.DroppedBy(metrics.DropNoRoute); got == 0 {
		t.Fatal("expected a no-route drop for data across the one-way link")
	}
	if nw.Collector.DataDelivered == 0 {
		t.Fatal("mutual-pair data was not delivered")
	}
}
