package topology_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/topology"
)

func TestChainGraph(t *testing.T) {
	g := topology.Snapshot(mobility.Line(5, 250), 0, 275)
	if g.Components() != 1 {
		t.Fatalf("chain has %d components", g.Components())
	}
	if d := g.Dist(0, 4); d != 4 {
		t.Fatalf("Dist(0,4) = %d, want 4", d)
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Fatalf("degrees wrong: %d, %d", g.Degree(0), g.Degree(2))
	}
	path := g.ShortestPath(0, 4)
	want := []int{0, 1, 2, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v", path)
		}
	}
}

func TestPartitionedGraph(t *testing.T) {
	pts := []mobility.Point{{X: 0}, {X: 200}, {X: 2000}, {X: 2200}}
	g := topology.Snapshot(mobility.NewStatic(pts), 0, 275)
	if g.Components() != 2 {
		t.Fatalf("components = %d, want 2", g.Components())
	}
	if g.Connected(0, 2) {
		t.Fatal("cross-partition nodes reported connected")
	}
	if g.Dist(0, 2) != -1 || g.ShortestPath(0, 2) != nil {
		t.Fatal("path exists across the partition")
	}
	// 2 pairs reachable within each 2-node island: 4 ordered pairs of 12.
	if got := g.ReachableFraction(); got != 4.0/12.0 {
		t.Fatalf("reachable fraction = %v, want 1/3", got)
	}
}

func TestSelfDistance(t *testing.T) {
	g := topology.Snapshot(mobility.Line(3, 250), 0, 275)
	if g.Dist(1, 1) != 0 {
		t.Fatal("self distance not 0")
	}
	if p := g.ShortestPath(1, 1); len(p) != 1 || p[0] != 1 {
		t.Fatalf("self path = %v", p)
	}
}

func TestSnapshotTracksMobility(t *testing.T) {
	tracks := [][]mobility.ScriptLeg{
		{{At: 0, Pos: mobility.Point{X: 0}}},
		{
			{At: 0, Pos: mobility.Point{X: 200}},
			{At: 10 * time.Second, Pos: mobility.Point{X: 200}},
			{At: 20 * time.Second, Pos: mobility.Point{X: 2000}},
		},
	}
	model := mobility.NewScript(tracks)
	if !topology.Snapshot(model, 0, 275).Connected(0, 1) {
		t.Fatal("nodes disconnected at t=0")
	}
	if topology.Snapshot(model, 30*time.Second, 275).Connected(0, 1) {
		t.Fatal("nodes still connected after the departure")
	}
}

// SnapshotRanges keeps only mutually-decodable links: a long-range node
// hearing a short-range one that cannot answer contributes no edge.
func TestSnapshotRangesMutualOnly(t *testing.T) {
	// 0 —250m— 1 —250m— 2, with node 1 short-ranged: both its links are
	// one-way inbound only, so the graph is fully partitioned.
	pts := []mobility.Point{{X: 0}, {X: 250}, {X: 500}}
	g := topology.SnapshotRanges(mobility.NewStatic(pts), 0, []float64{375, 150, 375})
	if g.Components() != 3 {
		t.Fatalf("components = %d, want 3 (one-way links must not count)", g.Components())
	}
	// Move the ends within the short node's range: both links become
	// mutual and the chain connects.
	pts = []mobility.Point{{X: 0}, {X: 140}, {X: 280}}
	g = topology.SnapshotRanges(mobility.NewStatic(pts), 0, []float64{200, 150, 200})
	if g.Components() != 1 || g.Dist(0, 2) != 2 {
		t.Fatalf("components = %d, Dist(0,2) = %d; want 1 chain of 2 hops",
			g.Components(), g.Dist(0, 2))
	}
	// Uniform ranges must agree with the classic Snapshot.
	model := mobility.Line(5, 250)
	a := topology.Snapshot(model, 0, 275)
	b := topology.SnapshotRanges(model, 0, []float64{275, 275, 275, 275, 275})
	for i := 0; i < 5; i++ {
		if a.Degree(i) != b.Degree(i) {
			t.Fatalf("node %d: Snapshot degree %d != SnapshotRanges degree %d",
				i, a.Degree(i), b.Degree(i))
		}
	}
}

// Property: Dist is symmetric, satisfies the handshake with ShortestPath,
// and -1 exactly when Connected is false.
func TestDistanceProperties(t *testing.T) {
	f := func(seed int64) bool {
		model := mobility.NewWaypoint(12, mobility.WaypointConfig{
			Terrain:  mobility.Terrain{Width: 1200, Height: 400},
			MinSpeed: 1, MaxSpeed: 5, Pause: 0,
		}, rng.New(seed))
		g := topology.Snapshot(model, 0, 275)
		for a := 0; a < 12; a++ {
			for b := 0; b < 12; b++ {
				dab, dba := g.Dist(a, b), g.Dist(b, a)
				if dab != dba {
					return false
				}
				if (dab < 0) == g.Connected(a, b) {
					return false
				}
				if p := g.ShortestPath(a, b); dab >= 0 && len(p) != dab+1 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
