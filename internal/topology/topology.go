// Package topology provides a god's-eye connectivity oracle over a
// mobility model: the instantaneous unit-disk graph, shortest paths,
// partition structure, and reachability. Protocols never see it — it
// exists so that tests, analysis tools, and experiments can separate
// protocol losses from physical impossibility (a packet whose destination
// sits in another partition is not the routing protocol's failure).
package topology

import (
	"time"

	"github.com/manetlab/ldr/internal/mobility"
)

// Graph is a snapshot of the connectivity graph at one instant.
type Graph struct {
	n     int
	adj   [][]int
	comp  []int // connected-component index per node
	ncomp int
}

// Snapshot builds the unit-disk graph of the model at time at, with links
// between nodes at most radioRange apart.
func Snapshot(model mobility.Model, at time.Duration, radioRange float64) *Graph {
	n := model.NumNodes()
	ranges := make([]float64, n)
	for i := range ranges {
		ranges[i] = radioRange
	}
	return SnapshotRanges(model, at, ranges)
}

// SnapshotRanges builds the connectivity graph under per-node transmit
// ranges: a link exists between i and j only when each is within the
// other's range, i.e. the pair can exchange (and ACK) frames in both
// directions. One-way reachability — a long-range node heard by a
// short-range one that cannot answer — is deliberately excluded: the
// oracle bounds what an ACK-based MAC can actually use.
func SnapshotRanges(model mobility.Model, at time.Duration, ranges []float64) *Graph {
	n := model.NumNodes()
	if len(ranges) != n {
		panic("topology: ranges length does not match node count")
	}
	pts := make([]mobility.Point, n)
	for i := 0; i < n; i++ {
		pts[i] = model.Position(i, at)
	}
	g := &Graph{n: n, adj: make([][]int, n)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := pts[i].Dist(pts[j])
			if d <= ranges[i] && d <= ranges[j] {
				g.adj[i] = append(g.adj[i], j)
				g.adj[j] = append(g.adj[j], i)
			}
		}
	}
	g.computeComponents()
	return g
}

func (g *Graph) computeComponents() {
	g.comp = make([]int, g.n)
	for i := range g.comp {
		g.comp[i] = -1
	}
	var queue []int
	for start := 0; start < g.n; start++ {
		if g.comp[start] >= 0 {
			continue
		}
		g.comp[start] = g.ncomp
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range g.adj[cur] {
				if g.comp[nb] < 0 {
					g.comp[nb] = g.ncomp
					queue = append(queue, nb)
				}
			}
		}
		g.ncomp++
	}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// Neighbors returns the adjacency list of node i (shared slice; callers
// must not mutate).
func (g *Graph) Neighbors(i int) []int { return g.adj[i] }

// Degree returns the number of links at node i.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// Connected reports whether a and b are in the same partition.
func (g *Graph) Connected(a, b int) bool { return g.comp[a] == g.comp[b] }

// Components returns the number of connected components.
func (g *Graph) Components() int { return g.ncomp }

// Dist returns the hop distance between a and b, or -1 if disconnected.
func (g *Graph) Dist(a, b int) int {
	if a == b {
		return 0
	}
	if !g.Connected(a, b) {
		return -1
	}
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[a] = 0
	queue := []int{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[cur] {
			if dist[nb] < 0 {
				dist[nb] = dist[cur] + 1
				if nb == b {
					return dist[nb]
				}
				queue = append(queue, nb)
			}
		}
	}
	return -1
}

// ShortestPath returns one shortest path from a to b (inclusive), or nil
// if disconnected.
func (g *Graph) ShortestPath(a, b int) []int {
	if a == b {
		return []int{a}
	}
	if !g.Connected(a, b) {
		return nil
	}
	prev := make([]int, g.n)
	for i := range prev {
		prev[i] = -1
	}
	prev[a] = a
	queue := []int{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[cur] {
			if prev[nb] < 0 {
				prev[nb] = cur
				if nb == b {
					queue = nil
					break
				}
				queue = append(queue, nb)
			}
		}
	}
	if prev[b] < 0 {
		return nil
	}
	var rev []int
	for cur := b; cur != a; cur = prev[cur] {
		rev = append(rev, cur)
	}
	rev = append(rev, a)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ReachableFraction returns the fraction of ordered node pairs that are
// connected — an upper bound on any protocol's delivery ratio for
// uniformly chosen flows at this instant.
func (g *Graph) ReachableFraction() float64 {
	if g.n < 2 {
		return 1
	}
	sizes := make([]int, g.ncomp)
	for _, c := range g.comp {
		sizes[c]++
	}
	var reachable int
	for _, s := range sizes {
		reachable += s * (s - 1)
	}
	return float64(reachable) / float64(g.n*(g.n-1))
}
