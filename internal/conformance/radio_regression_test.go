package conformance

import (
	"path/filepath"
	"testing"

	"github.com/manetlab/ldr/internal/metrics"
)

// TestAsymAckExhaustAccounted: on one-way links (long-range transmitter,
// short-range receiver) unicast data exhausts the MAC's ACK-timeout
// retries. Those packets must terminate as link-break drops — if the
// retry-exhaustion path ever stops reporting DataFailed, this seed's
// drops either vanish (census violation, caught by TestRegressionSeeds)
// or land under the wrong reason (caught here).
func TestAsymAckExhaustAccounted(t *testing.T) {
	s, err := LoadSpec(filepath.Join("testdata", "asym-ack-exhaust.json"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := CheckSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total > 0 {
		t.Fatalf("%s: %d conservation violations: %v", s, r.Total, r.Violations)
	}
	if lb := r.Collector.DroppedBy(metrics.DropLinkBreak); lb == 0 {
		t.Fatalf("%s: expected ACK-retry-exhaustion drops under DropLinkBreak, got 0", s)
	}
}

// TestOLSRAsymNoBlackhole: OLSR's hello gating must keep one-way links
// out of the symmetric neighbor set. With the asym radio profile the
// seed still delivers over the mutually-decodable links, and traffic
// with no bidirectional path fails visibly at the source as no-route —
// it is never forwarded into a next hop that cannot ACK.
func TestOLSRAsymNoBlackhole(t *testing.T) {
	s, err := LoadSpec(filepath.Join("testdata", "olsr-asym-oneway.json"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := CheckSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total > 0 {
		t.Fatalf("%s: %d conservation violations: %v", s, r.Total, r.Violations)
	}
	if r.Collector.DataDelivered == 0 {
		t.Fatalf("%s: nothing delivered over the usable links", s)
	}
	if nr := r.Collector.DroppedBy(metrics.DropNoRoute); nr == 0 {
		t.Fatalf("%s: expected visible no-route drops for one-way-only destinations, got 0", s)
	}
}
