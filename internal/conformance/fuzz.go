// Seeded scenario fuzzing with greedy shrinking. The fuzzer sweeps
// random (protocol × node count × fault profile × traffic) scenarios
// through the conservation harness; any violating run is minimized —
// drop flows, then drop faults, then shorten simtime — into a small
// reproducer that can be committed as a regression seed under
// testdata/.

package conformance

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/manetlab/ldr/internal/adversary"
	"github.com/manetlab/ldr/internal/fault"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/rng"
	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/sweep"
	"github.com/manetlab/ldr/internal/traffic"
)

// Spec is a serializable fuzz scenario: everything needed to rebuild a
// run, in JSON-friendly units. Committed regression seeds are Specs.
type Spec struct {
	Protocol   string  `json:"protocol"`
	Nodes      int     `json:"nodes"`
	Flows      int     `json:"flows"`
	PauseSec   float64 `json:"pause_sec"`
	SimTimeSec float64 `json:"simtime_sec"`
	Seed       int64   `json:"seed"`
	Profile    string  `json:"profile"`             // fault.ProfileNames entry
	Adversary  string  `json:"adversary,omitempty"` // adversary.ProfileNames entry
	Mobility   string  `json:"mobility,omitempty"`  // scenario.Mobilities entry ("" → waypoint)
	Traffic    string  `json:"traffic,omitempty"`   // traffic pattern ("" → cbr)
	Radio      string  `json:"radio,omitempty"`     // scenario.Radios entry ("" → uniform disk)
	Density    string  `json:"density,omitempty"`   // scenario.Densities entry ("" → uniform placement)
	Adaptive   bool    `json:"adaptive,omitempty"`  // RTT-derived route timeouts
	AuditMS    int     `json:"audit_ms"`
	Note       string  `json:"note,omitempty"`

	// Exact-geometry overrides, used by reproducers emitted from sweep
	// cells (SpecFromConfig) so a seed replays the cell's true terrain
	// and speed range rather than the fuzzer's derived defaults. Zero
	// values select the defaults: a 40 m × Nodes by 300 m strip and the
	// paper's 1–20 m/s speed range.
	TerrainW float64 `json:"terrain_w,omitempty"`
	TerrainH float64 `json:"terrain_h,omitempty"`
	MinSpeed float64 `json:"min_speed,omitempty"`
	MaxSpeed float64 `json:"max_speed,omitempty"`

	// Script, when non-nil, replaces the randomized workload with exact
	// positions, origination times, and fault timing (see Script). Used
	// by model-checker witnesses.
	Script *Script `json:"script,omitempty"`
}

// String renders the spec compactly for logs.
func (s Spec) String() string {
	adv := ""
	if s.Adversary != "" && s.Adversary != "none" {
		adv = "+" + s.Adversary
	}
	axes := ""
	if s.Mobility != "" && s.Mobility != scenario.Waypoint {
		axes += " mobility=" + s.Mobility
	}
	if s.Traffic != "" && s.Traffic != string(traffic.CBR) {
		axes += " traffic=" + s.Traffic
	}
	if s.Radio != "" && s.Radio != scenario.RadioUniform {
		axes += " radio=" + s.Radio
	}
	if s.Density != "" && s.Density != scenario.DensityUniform {
		axes += " density=" + s.Density
	}
	if s.Adaptive {
		axes += " adaptive"
	}
	return fmt.Sprintf("%s/%s%s nodes=%d flows=%d pause=%.0fs sim=%.0fs seed=%d%s",
		s.Protocol, s.Profile, adv, s.Nodes, s.Flows, s.PauseSec, s.SimTimeSec, s.Seed, axes)
}

// Config expands the spec into a runnable scenario configuration. The
// terrain scales with the node count at the chaos rig's density (a
// 25-node spec gets the 1000 m × 300 m strip the fault tests use).
func (s Spec) Config() (scenario.Config, error) {
	simTime := time.Duration(s.SimTimeSec * float64(time.Second))
	terrain := mobility.Terrain{Width: float64(40 * s.Nodes), Height: 300}
	if s.TerrainW > 0 {
		terrain.Width = s.TerrainW
	}
	if s.TerrainH > 0 {
		terrain.Height = s.TerrainH
	}
	minSpeed, maxSpeed := 1.0, 20.0
	if s.MinSpeed > 0 {
		minSpeed = s.MinSpeed
	}
	if s.MaxSpeed > 0 {
		maxSpeed = s.MaxSpeed
	}
	cfg := scenario.Config{
		Protocol:        scenario.ProtocolName(s.Protocol),
		Nodes:           s.Nodes,
		Terrain:         terrain,
		Flows:           s.Flows,
		PauseTime:       time.Duration(s.PauseSec * float64(time.Second)),
		MinSpeed:        minSpeed,
		MaxSpeed:        maxSpeed,
		SimTime:         simTime,
		Seed:            s.Seed,
		Mobility:        s.Mobility,
		TrafficPattern:  traffic.Pattern(s.Traffic),
		Radio:           s.Radio,
		Density:         s.Density,
		AdaptiveTimeout: s.Adaptive,
	}
	if _, err := scenario.Factory(cfg.Protocol, nil); err != nil {
		return scenario.Config{}, err
	}
	if !scenario.ValidMobility(s.Mobility) {
		return scenario.Config{}, fmt.Errorf("conformance: unknown mobility %q", s.Mobility)
	}
	if !traffic.ValidPattern(s.Traffic) {
		return scenario.Config{}, fmt.Errorf("conformance: unknown traffic pattern %q", s.Traffic)
	}
	if !scenario.ValidRadio(s.Radio) {
		return scenario.Config{}, fmt.Errorf("conformance: unknown radio profile %q", s.Radio)
	}
	if !scenario.ValidDensity(s.Density) {
		return scenario.Config{}, fmt.Errorf("conformance: unknown density profile %q", s.Density)
	}
	if s.Profile != "" && s.Profile != "none" {
		plan, err := fault.Profile(s.Profile, s.Nodes, simTime)
		if err != nil {
			return scenario.Config{}, err
		}
		cfg.FaultPlan = &plan
	}
	if s.Adversary != "" && s.Adversary != "none" {
		plan, err := adversary.Profile(s.Adversary, s.Nodes, simTime)
		if err != nil {
			return scenario.Config{}, err
		}
		cfg.AdversaryPlan = &plan
	}
	if s.AuditMS > 0 {
		cfg.AuditCadence = time.Duration(s.AuditMS) * time.Millisecond
	}
	if s.Script != nil {
		if err := s.Script.apply(&cfg); err != nil {
			return scenario.Config{}, err
		}
	}
	return cfg, nil
}

// LoadSpec reads a Spec from a JSON file (a committed regression seed).
func LoadSpec(path string) (Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	var s Spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return Spec{}, fmt.Errorf("conformance: %s: %w", path, err)
	}
	return s, nil
}

// CheckSpec runs the spec under the conservation harness, auditing at
// the spec's cadence (default 100 ms).
func CheckSpec(s Spec) (Report, error) {
	return checkSpecControlled(s, nil)
}

// checkSpecControlled is CheckSpec bound to an optional sweep Control so
// a fuzz cell's watchdog can interrupt it.
func checkSpecControlled(s Spec, ctl *scenario.Control) (Report, error) {
	cfg, err := s.Config()
	if err != nil {
		return Report{}, err
	}
	cadence := 100 * time.Millisecond
	if s.AuditMS > 0 {
		cadence = time.Duration(s.AuditMS) * time.Millisecond
	}
	return CheckControlled(cfg, CheckConfig{Cadence: cadence}, ctl)
}

// violates decides whether a report fails the fuzzer's invariants:
// any conservation violation, a delivery ratio above one, or — for LDR,
// whose loop freedom is the paper's central claim — any loop violation
// from the continuous loopcheck auditor. (AODV forming loops under
// reboot faults is the van Glabbeek result, not an implementation bug,
// so other protocols' loop counters are not failures here.)
func violates(s Spec, r Report) bool {
	if r.Total > 0 {
		return true
	}
	if r.Collector.DeliveryRatio() > 1 {
		return true
	}
	if s.Protocol == string(scenario.LDR) && r.Collector.LoopViolations > 0 {
		return true
	}
	return false
}

// Options parameterize a fuzz sweep. Zero values select the defaults in
// parentheses.
type Options struct {
	Runs        int                              // scenarios to generate (32)
	Seed        int64                            // generator seed (1)
	Workers     int                              // parallel cells (GOMAXPROCS)
	MaxNodes    int                              // node-count bound (30, min 8)
	MaxSimTime  time.Duration                    // simulated length bound (45 s, min 5 s)
	Protocols   []string                         // candidate protocols (the paper's four)
	Profiles    []string                         // candidate fault profiles (all built-ins)
	Adversaries []string                         // candidate adversary profiles (all built-ins)
	Mobilities  []string                         // candidate mobility models (all of scenario.Mobilities)
	Traffics    []string                         // candidate traffic patterns (all of traffic.Patterns)
	Radios      []string                         // candidate radio profiles (all of scenario.Radios)
	Densities   []string                         // candidate density profiles (all of scenario.Densities)
	Shrink      bool                             // minimize findings
	Log         func(format string, args ...any) // progress sink, may be nil

	// Exec carries the sweep resilience options: journal (scope "fuzz"),
	// per-cell watchdog, keep-going quarantine, retry. A journaled fuzz
	// sweep killed mid-run resumes without re-checking completed
	// scenarios and reports the identical findings.
	Exec sweep.ExecOptions
	// Progress, when non-nil, is wired through to the sweep.
	Progress *sweep.Progress
}

func (o *Options) defaults() {
	if o.Runs <= 0 {
		o.Runs = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxNodes < 8 {
		o.MaxNodes = 30
	}
	if o.MaxSimTime < 5*time.Second {
		o.MaxSimTime = 45 * time.Second
	}
	if len(o.Protocols) == 0 {
		for _, p := range scenario.AllProtocols {
			o.Protocols = append(o.Protocols, string(p))
		}
	}
	if len(o.Profiles) == 0 {
		o.Profiles = fault.ProfileNames()
	}
	if len(o.Adversaries) == 0 {
		o.Adversaries = adversary.ProfileNames()
	}
	if len(o.Mobilities) == 0 {
		o.Mobilities = scenario.Mobilities()
	}
	if len(o.Traffics) == 0 {
		for _, p := range traffic.Patterns() {
			o.Traffics = append(o.Traffics, string(p))
		}
	}
	if len(o.Radios) == 0 {
		o.Radios = scenario.Radios()
	}
	if len(o.Densities) == 0 {
		o.Densities = scenario.Densities()
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
}

// Finding is one violating scenario, with its minimized form.
type Finding struct {
	Spec       Spec     `json:"spec"`
	Shrunk     Spec     `json:"shrunk"`
	Total      uint64   `json:"violation_total"`
	Violations []string `json:"violations"`
}

// genSpec draws one scenario from the generator stream. Every draw
// happens unconditionally so the stream position after spec i never
// depends on the values drawn for specs 0..i-1's fields.
func genSpec(o *Options, src *rng.Source) Spec {
	proto := o.Protocols[src.Intn(len(o.Protocols))]
	nodes := 8 + src.Intn(o.MaxNodes-7)
	flows := 1 + src.Intn(8)
	pause := float64(src.Intn(31))
	minSim := 5.0
	maxSim := o.MaxSimTime.Seconds()
	simt := minSim + float64(src.Intn(int(maxSim-minSim)+1))
	seed := src.Int63()
	profile := o.Profiles[src.Intn(len(o.Profiles))]
	adv := o.Adversaries[src.Intn(len(o.Adversaries))]
	mob := o.Mobilities[src.Intn(len(o.Mobilities))]
	traf := o.Traffics[src.Intn(len(o.Traffics))]
	rad := o.Radios[src.Intn(len(o.Radios))]
	dens := o.Densities[src.Intn(len(o.Densities))]
	adaptive := src.Intn(2) == 1
	audit := 50 + src.Intn(150)
	return Spec{
		Protocol: proto, Nodes: nodes, Flows: flows,
		PauseSec: pause, SimTimeSec: simt, Seed: seed,
		Profile: profile, Adversary: adv,
		Mobility: mob, Traffic: traf,
		Radio: rad, Density: dens, Adaptive: adaptive,
		AuditMS: audit,
	}
}

// fuzzOutcome is the journaled payload of one fuzz cell: just the
// verdict, not the full report, so records stay small and the journal
// never has to round-trip a collector it does not render.
type fuzzOutcome struct {
	Violates   bool     `json:"violates"`
	Total      uint64   `json:"total"`
	Violations []string `json:"violations,omitempty"`
}

// Fuzz generates Runs random scenarios, checks them across a worker
// pool, and returns the violating ones (shrunk when requested) in
// generation order. The sweep is deterministic in (Seed, Runs): worker
// count changes neither the scenarios generated nor the findings, and a
// journaled sweep resumed after a kill reports the identical findings —
// the generator stream is a pure function of Seed, so resumed cells
// re-derive the same specs and completed ones replay from the journal.
//
// With Exec.KeepGoing, findings from completed cells are returned
// alongside the sweep.Failures error describing quarantined cells.
func Fuzz(o Options) ([]Finding, error) {
	o.defaults()
	src := rng.New(o.Seed)
	specs := make([]Spec, o.Runs)
	cfgs := make([]scenario.Config, o.Runs)
	for i := range specs {
		specs[i] = genSpec(&o, src)
		cfg, err := specs[i].Config()
		if err != nil {
			return nil, fmt.Errorf("conformance: spec %d: %w", i, err)
		}
		cfgs[i] = cfg
	}

	exec := o.Exec
	if exec.Scope == "" {
		exec.Scope = "fuzz"
	}
	outcomes, sweepErr := sweep.RunCells(cfgs, sweep.Options{
		Workers:  o.Workers,
		Progress: o.Progress,
		Exec:     exec,
	}, func(i int, ctl *scenario.Control) (fuzzOutcome, error) {
		r, err := checkSpecControlled(specs[i], ctl)
		if err != nil {
			return fuzzOutcome{}, err
		}
		out := fuzzOutcome{Violates: violates(specs[i], r), Total: r.Total}
		for _, v := range r.Violations {
			out.Violations = append(out.Violations, v.String())
		}
		return out, nil
	})
	if sweepErr != nil && outcomes == nil {
		return nil, sweepErr
	}

	var findings []Finding
	for i, out := range outcomes {
		if !out.Violates {
			continue
		}
		o.Log("violation: %s (%d violations)", specs[i], out.Total)
		f := Finding{Spec: specs[i], Shrunk: specs[i], Total: out.Total, Violations: out.Violations}
		if o.Shrink {
			shrunk, sr, err := Shrink(specs[i], o.Log)
			if err != nil {
				return nil, err
			}
			f.Shrunk, f.Total = shrunk, sr.Total
			f.Violations = nil
			for _, v := range sr.Violations {
				f.Violations = append(f.Violations, v.String())
			}
		}
		findings = append(findings, f)
	}
	return findings, sweepErr
}

// Shrink greedily minimizes a violating spec while it keeps violating:
// halve the flow count, then drop the fault profile, then drop the
// adversary profile, then revert mobility/traffic/radio/density/
// adaptive-timeout to their waypoint/CBR/uniform/uniform/constant
// defaults, then halve the simulated time (floor 2 s). Each accepted step re-verifies the violation, so the
// result is always a genuine reproducer. logf may be nil.
func Shrink(s Spec, logf func(string, ...any)) (Spec, Report, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	best := s
	bestReport, err := CheckSpec(best)
	if err != nil {
		return Spec{}, Report{}, err
	}
	if !violates(best, bestReport) {
		return best, bestReport, fmt.Errorf("conformance: shrink of non-violating spec %s", s)
	}
	try := func(cand Spec) bool {
		r, err := CheckSpec(cand)
		if err != nil || !violates(cand, r) {
			return false
		}
		best, bestReport = cand, r
		logf("shrink: kept %s", cand)
		return true
	}
	for best.Flows > 1 {
		cand := best
		cand.Flows = best.Flows / 2
		if !try(cand) {
			break
		}
	}
	if best.Profile != "" && best.Profile != "none" {
		cand := best
		cand.Profile = "none"
		try(cand)
	}
	if best.Adversary != "" && best.Adversary != "none" {
		cand := best
		cand.Adversary = "none"
		try(cand)
	}
	if best.Mobility != "" && best.Mobility != scenario.Waypoint {
		cand := best
		cand.Mobility = ""
		try(cand)
	}
	if best.Traffic != "" && best.Traffic != string(traffic.CBR) {
		cand := best
		cand.Traffic = ""
		try(cand)
	}
	if best.Radio != "" && best.Radio != scenario.RadioUniform {
		cand := best
		cand.Radio = ""
		try(cand)
	}
	if best.Density != "" && best.Density != scenario.DensityUniform {
		cand := best
		cand.Density = ""
		try(cand)
	}
	if best.Adaptive {
		cand := best
		cand.Adaptive = false
		try(cand)
	}
	for best.SimTimeSec > 2 {
		cand := best
		cand.SimTimeSec = best.SimTimeSec / 2
		if cand.SimTimeSec < 2 {
			cand.SimTimeSec = 2
		}
		if !try(cand) {
			break
		}
	}
	return best, bestReport, nil
}
