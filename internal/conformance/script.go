// Scripted replay specs. A Script pins everything the fuzzer normally
// randomizes — node positions, origination times, and fault timing — so
// a spec can replay an exact schedule rather than a seeded distribution.
// The bounded model checker (internal/modelcheck) emits its violation
// witnesses in this form: an abstract counterexample becomes a concrete
// full-stack scenario the conservation harness re-runs under MAC and
// radio timing.

package conformance

import (
	"fmt"
	"time"

	"github.com/manetlab/ldr/internal/fault"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/scenario"
)

// Script is the deterministic part of a Spec: static positions plus
// timed originations and faults. When present it overrides the spec's
// Flows/PauseSec randomized workload (Flows must be 0).
type Script struct {
	// Positions are static node coordinates in meters; len must equal the
	// spec's node count.
	Positions [][2]float64 `json:"positions"`
	// Traffic injects one data packet per event.
	Traffic []ScriptTraffic `json:"traffic,omitempty"`
	// Faults schedules crashes and link outages at exact instants.
	Faults []ScriptFault `json:"faults,omitempty"`
}

// ScriptTraffic is one scripted origination.
type ScriptTraffic struct {
	AtMS  int64 `json:"at_ms"`
	Src   int   `json:"src"`
	Dst   int   `json:"dst"`
	Bytes int   `json:"bytes,omitempty"` // 0 → 512
}

// ScriptFault is one scripted fault. Kind is "crash" or "linkdown";
// DurationMS < 0 means permanent (never heals), 0 selects the injector's
// default hold.
type ScriptFault struct {
	Kind       string `json:"kind"`
	AtMS       int64  `json:"at_ms"`
	DurationMS int64  `json:"duration_ms,omitempty"`
	Nodes      []int  `json:"nodes"`
}

// apply folds the script into a scenario config built from the spec.
func (sc *Script) apply(cfg *scenario.Config) error {
	if len(sc.Positions) != cfg.Nodes {
		return fmt.Errorf("conformance: script has %d positions for %d nodes", len(sc.Positions), cfg.Nodes)
	}
	if cfg.Flows != 0 {
		return fmt.Errorf("conformance: scripted spec requires flows=0 (have %d)", cfg.Flows)
	}
	cfg.Positions = make([]mobility.Point, len(sc.Positions))
	for i, p := range sc.Positions {
		cfg.Positions[i] = mobility.Point{X: p[0], Y: p[1]}
	}
	for _, ev := range sc.Traffic {
		cfg.Traffic = append(cfg.Traffic, scenario.TrafficEvent{
			At:  time.Duration(ev.AtMS) * time.Millisecond,
			Src: routing.NodeID(ev.Src), Dst: routing.NodeID(ev.Dst),
			Bytes: ev.Bytes,
		})
	}
	if len(sc.Faults) > 0 {
		if cfg.FaultPlan != nil {
			return fmt.Errorf("conformance: spec has both a fault profile (%s) and scripted faults", cfg.FaultPlan.Name)
		}
		plan := fault.Plan{Name: "script"}
		for _, f := range sc.Faults {
			var kind fault.Kind
			switch f.Kind {
			case "crash":
				kind = fault.Crash
			case "linkdown":
				kind = fault.LinkFlap
			default:
				return fmt.Errorf("conformance: unknown scripted fault kind %q", f.Kind)
			}
			plan.Specs = append(plan.Specs, fault.Spec{
				Kind:     kind,
				At:       time.Duration(f.AtMS) * time.Millisecond,
				Duration: time.Duration(f.DurationMS) * time.Millisecond,
				Nodes:    append([]int(nil), f.Nodes...),
			})
		}
		cfg.FaultPlan = &plan
	}
	return nil
}
