// Record/replay: the full routing.TraceEvent stream of a run is encoded
// to a compact varint log, together with a fingerprint of the run's
// random-draw and event counts. Two runs of the same scenario must
// produce byte-identical logs — across sweep worker counts, across grid
// fast-path settings — and when they do not, Diff pins the divergence to
// the first event that differs.

package conformance

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"time"

	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/scenario"
)

// Fingerprint condenses a run's deterministic totals: if any field
// differs between two runs of one scenario, the runs diverged even if
// their packet traces happen to agree.
type Fingerprint struct {
	TraceEvents uint64 // packet lifecycle events logged
	SimEvents   uint64 // simulator events executed
	RNGDraws    uint64 // random words drawn across every stream
	Initiated   uint64
	Delivered   uint64
	Dropped     uint64
	Transmitted uint64
}

// Log is a compact, append-only record of a run's trace-event stream.
// The zero value is ready to use; Log implements routing.Tracer.
//
// Encoding, per event: uvarint delta of At against the previous event
// (nanoseconds), one byte of kind, varint Node, varint Src, varint Dst,
// uvarint ID, varint Next, one byte of drop reason. Delta-encoded times
// and varints keep the log a few bytes per event.
type Log struct {
	Fingerprint Fingerprint

	data   []byte
	count  int
	lastAt time.Duration
}

var _ routing.Tracer = (*Log)(nil)

// Trace implements routing.Tracer by appending the event to the log.
func (l *Log) Trace(ev routing.TraceEvent) {
	l.data = binary.AppendUvarint(l.data, uint64(ev.At-l.lastAt))
	l.lastAt = ev.At
	l.data = append(l.data, byte(ev.Kind))
	l.data = binary.AppendVarint(l.data, int64(ev.Node))
	l.data = binary.AppendVarint(l.data, int64(ev.Src))
	l.data = binary.AppendVarint(l.data, int64(ev.Dst))
	l.data = binary.AppendUvarint(l.data, ev.ID)
	l.data = binary.AppendVarint(l.data, int64(ev.Next))
	l.data = append(l.data, byte(ev.Reason))
	l.count++
}

// Len returns the number of logged events.
func (l *Log) Len() int { return l.count }

// Bytes returns the encoded stream (not a copy).
func (l *Log) Bytes() []byte { return l.data }

// Events decodes and returns every logged event.
func (l *Log) Events() ([]routing.TraceEvent, error) {
	out := make([]routing.TraceEvent, 0, l.count)
	d := decoder{data: l.data}
	for {
		ev, ok, err := d.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, ev)
	}
}

// decoder walks an encoded event stream.
type decoder struct {
	data []byte
	off  int
	at   time.Duration
}

func (d *decoder) next() (routing.TraceEvent, bool, error) {
	if d.off >= len(d.data) {
		return routing.TraceEvent{}, false, nil
	}
	fail := func() (routing.TraceEvent, bool, error) {
		return routing.TraceEvent{}, false, fmt.Errorf("conformance: truncated log at offset %d", d.off)
	}
	uv := func() (uint64, bool) {
		v, n := binary.Uvarint(d.data[d.off:])
		if n <= 0 {
			return 0, false
		}
		d.off += n
		return v, true
	}
	sv := func() (int64, bool) {
		v, n := binary.Varint(d.data[d.off:])
		if n <= 0 {
			return 0, false
		}
		d.off += n
		return v, true
	}
	dt, ok := uv()
	if !ok {
		return fail()
	}
	if d.off >= len(d.data) {
		return fail()
	}
	kind := d.data[d.off]
	d.off++
	node, ok := sv()
	if !ok {
		return fail()
	}
	src, ok := sv()
	if !ok {
		return fail()
	}
	dst, ok := sv()
	if !ok {
		return fail()
	}
	id, ok := uv()
	if !ok {
		return fail()
	}
	next, ok := sv()
	if !ok {
		return fail()
	}
	if d.off >= len(d.data) {
		return fail()
	}
	reason := d.data[d.off]
	d.off++

	d.at += time.Duration(dt)
	return routing.TraceEvent{
		At:     d.at,
		Kind:   routing.TraceEventKind(kind),
		Node:   routing.NodeID(node),
		Src:    routing.NodeID(src),
		Dst:    routing.NodeID(dst),
		ID:     id,
		Next:   routing.NodeID(next),
		Reason: metrics.DropReason(reason),
	}, true, nil
}

// Capture runs a scenario with a Log attached as its tracer and returns
// the log, fingerprint filled.
func Capture(cfg scenario.Config) (*Log, error) {
	nw, gen, inst, err := scenario.BuildInstrumented(cfg)
	if err != nil {
		return nil, err
	}
	log := &Log{}
	nw.SetTracer(log)
	nw.Start()
	gen.Start()
	nw.Sim.Run(cfg.SimTime + 2*time.Second)
	nw.Stop()
	col := nw.Collector
	log.Fingerprint = Fingerprint{
		TraceEvents: uint64(log.count),
		SimEvents:   nw.Sim.EventsFired(),
		RNGDraws:    nw.Root.Draws() + inst.Root.Draws(),
		Initiated:   col.DataInitiated,
		Delivered:   col.DataDelivered,
		Dropped:     col.DataDropped,
		Transmitted: col.DataTransmitted,
	}
	return log, nil
}

// Divergence describes where two logs first disagree. Index is the
// 0-based event position; A/B are the differing events, nil on the side
// whose stream ended early. Index -1 with a Detail means the event
// streams matched but the fingerprints did not.
type Divergence struct {
	Index  int
	A, B   *routing.TraceEvent
	Detail string
}

// String renders the divergence for reports.
func (d *Divergence) String() string {
	switch {
	case d.Index < 0:
		return "fingerprint divergence: " + d.Detail
	case d.A == nil:
		return fmt.Sprintf("event %d: stream A ended, B has %+v", d.Index, *d.B)
	case d.B == nil:
		return fmt.Sprintf("event %d: stream B ended, A has %+v", d.Index, *d.A)
	default:
		return fmt.Sprintf("event %d: A %+v != B %+v", d.Index, *d.A, *d.B)
	}
}

// Diff compares two logs and returns nil when they are byte-identical
// with matching fingerprints, or the first divergence otherwise.
func Diff(a, b *Log) *Divergence {
	if !bytes.Equal(a.data, b.data) {
		da, db := decoder{data: a.data}, decoder{data: b.data}
		for i := 0; ; i++ {
			evA, okA, errA := da.next()
			evB, okB, errB := db.next()
			if errA != nil || errB != nil {
				return &Divergence{Index: i, Detail: "undecodable log"}
			}
			switch {
			case !okA && !okB:
				// Same events, different encoding cannot happen with one
				// encoder version; treat as identical streams.
				return &Divergence{Index: i, Detail: "byte-level divergence with equal events"}
			case !okA:
				return &Divergence{Index: i, B: &evB}
			case !okB:
				return &Divergence{Index: i, A: &evA}
			case evA != evB:
				return &Divergence{Index: i, A: &evA, B: &evB}
			}
		}
	}
	if a.Fingerprint != b.Fingerprint {
		return &Divergence{Index: -1, Detail: fmt.Sprintf("%+v vs %+v", a.Fingerprint, b.Fingerprint)}
	}
	return nil
}
