// Reproducer emission for quarantined sweep cells. When a cell of a
// journaled sweep panics (or hangs past its watchdog grace), the sweep's
// failure hook lands here: the cell's scenario.Config is folded back
// into a portable Spec — the same JSON format ldrfuzz and ldrcheck emit
// and `ldrfuzz -replay` consumes — and written durably next to the
// journal, so the failure replays standalone without re-running the
// sweep.

package conformance

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"time"

	"github.com/manetlab/ldr/internal/adversary"
	"github.com/manetlab/ldr/internal/fault"
	"github.com/manetlab/ldr/internal/resilience"
	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/sweep"
)

// SpecFromConfig folds a scenario configuration back into a portable
// Spec. Fault and adversary plans are kept when they are exactly a named
// profile's expansion (the case for every experiment and chaos cell);
// scripted positions and traffic round-trip through the Script form.
// Anything the Spec format cannot carry — a custom plan, an LDR/radio
// parameter override, RTS/CTS — is recorded in Note so the reproducer
// never silently claims more fidelity than it has.
func SpecFromConfig(cfg scenario.Config) (Spec, error) {
	s := Spec{
		Protocol:   string(cfg.Protocol),
		Nodes:      cfg.Nodes,
		Flows:      cfg.Flows,
		PauseSec:   cfg.PauseTime.Seconds(),
		SimTimeSec: cfg.SimTime.Seconds(),
		Seed:       cfg.Seed,
		Mobility:   cfg.Mobility,
		Traffic:    string(cfg.TrafficPattern),
		Radio:      cfg.Radio,
		Density:    cfg.Density,
		Adaptive:   cfg.AdaptiveTimeout,
		TerrainW:   cfg.Terrain.Width,
		TerrainH:   cfg.Terrain.Height,
		MinSpeed:   cfg.MinSpeed,
		MaxSpeed:   cfg.MaxSpeed,
		AuditMS:    int(cfg.AuditCadence / time.Millisecond),
	}
	var lost []string
	if cfg.FaultPlan != nil {
		if plan, err := fault.Profile(cfg.FaultPlan.Name, cfg.Nodes, cfg.SimTime); err == nil && reflect.DeepEqual(plan, *cfg.FaultPlan) {
			s.Profile = cfg.FaultPlan.Name
		} else if cfg.FaultPlan.Name == "script" {
			// Re-expressed below through the Script form.
		} else {
			lost = append(lost, fmt.Sprintf("fault plan %q (not a named profile)", cfg.FaultPlan.Name))
		}
	}
	if cfg.AdversaryPlan != nil {
		if plan, err := adversary.Profile(cfg.AdversaryPlan.Name, cfg.Nodes, cfg.SimTime); err == nil && reflect.DeepEqual(plan, *cfg.AdversaryPlan) {
			s.Adversary = cfg.AdversaryPlan.Name
		} else {
			lost = append(lost, fmt.Sprintf("adversary plan %q (not a named profile)", cfg.AdversaryPlan.Name))
		}
	}
	if len(cfg.Positions) > 0 || len(cfg.Traffic) > 0 {
		sc := &Script{}
		for _, p := range cfg.Positions {
			sc.Positions = append(sc.Positions, [2]float64{p.X, p.Y})
		}
		for _, ev := range cfg.Traffic {
			if ev.At%time.Millisecond != 0 {
				lost = append(lost, "sub-millisecond traffic timing")
			}
			sc.Traffic = append(sc.Traffic, ScriptTraffic{
				AtMS: int64(ev.At / time.Millisecond),
				Src:  int(ev.Src), Dst: int(ev.Dst), Bytes: ev.Bytes,
			})
		}
		if cfg.FaultPlan != nil && cfg.FaultPlan.Name == "script" {
			for _, f := range cfg.FaultPlan.Specs {
				var kind string
				switch f.Kind {
				case fault.Crash:
					kind = "crash"
				case fault.LinkFlap:
					kind = "linkdown"
				default:
					lost = append(lost, fmt.Sprintf("scripted fault kind %v", f.Kind))
					continue
				}
				sc.Faults = append(sc.Faults, ScriptFault{
					Kind: kind,
					AtMS: int64(f.At / time.Millisecond), DurationMS: int64(f.Duration / time.Millisecond),
					Nodes: append([]int(nil), f.Nodes...),
				})
			}
		}
		s.Script = sc
	} else if cfg.FaultPlan != nil && cfg.FaultPlan.Name == "script" {
		lost = append(lost, "scripted faults without scripted positions")
	}
	if cfg.RTSCTS {
		lost = append(lost, "RTS/CTS")
	}
	if cfg.LDRConfig != nil {
		lost = append(lost, "LDR parameter overrides")
	}
	if cfg.RadioConfig != nil {
		lost = append(lost, "radio parameter overrides")
	}
	for _, l := range lost {
		if s.Note != "" {
			s.Note += "; "
		}
		s.Note += "not carried: " + l
	}
	if _, err := s.Config(); err != nil {
		return Spec{}, fmt.Errorf("conformance: config does not fold into a spec: %w", err)
	}
	return s, nil
}

// EmitReproducer writes spec as a standalone JSON seed under dir, named
// by content hash (repro-<12 hex>.json), with the full durable-write
// protocol. The file is in the same format as committed regression seeds
// and replays via LoadSpec + CheckSpec or `ldrfuzz -replay`.
func EmitReproducer(dir string, spec Spec) (string, error) {
	blob, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return "", err
	}
	blob = append(blob, '\n')
	sum := sha256.Sum256(blob)
	name := "repro-" + hex.EncodeToString(sum[:6]) + ".json"
	if err := resilience.WriteDurable(dir, name, blob); err != nil {
		return "", err
	}
	return filepath.Join(dir, name), nil
}

// QuarantineEmitter returns a sweep failure hook that auto-emits a
// reproducer seed for every quarantined panic and every abandoned (hung
// past grace) cell — the failures worth replaying standalone. Transient
// timeouts and plain errors carry no seed; the manifest already names
// them. The emitted path lands in the failure's Repro field and hence in
// the manifest. logf may be nil.
func QuarantineEmitter(dir string, logf func(format string, args ...any)) func(*sweep.CellError) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return func(ce *sweep.CellError) {
		if ce.Spec == nil || dir == "" {
			return
		}
		if resilience.Kind(ce.Err) != "panic" && !abandoned(ce.Err) {
			return
		}
		spec, err := SpecFromConfig(*ce.Spec)
		if err != nil {
			logf("quarantine: cell %d: %v", ce.Index, err)
			return
		}
		note := fmt.Sprintf("auto-emitted reproducer: %v", ce.Err)
		if spec.Note != "" {
			note = spec.Note + "; " + note
		}
		spec.Note = note
		path, err := EmitReproducer(dir, spec)
		if err != nil {
			logf("quarantine: cell %d: emitting reproducer: %v", ce.Index, err)
			return
		}
		ce.Repro = path
		logf("quarantine: cell %d: reproducer %s", ce.Index, path)
	}
}

// abandoned reports whether err is a watchdog timeout whose cell ignored
// the interrupt — a deterministic hang, worth a reproducer.
func abandoned(err error) bool {
	var to *resilience.CellTimeout
	return errors.As(err, &to) && to.Abandoned
}
