package conformance

import (
	"bytes"
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/sweep"
)

func replayConfig(seed int64) scenario.Config {
	s := Spec{
		Protocol: "ldr", Nodes: 15, Flows: 3,
		SimTimeSec: 6, Seed: seed, Profile: "mayhem",
	}
	cfg, err := s.Config()
	if err != nil {
		panic(err)
	}
	return cfg
}

// TestLogRoundTrip: encoding then decoding a stream reproduces it
// field-for-field, including negative node IDs (BroadcastID) and drop
// reasons.
func TestLogRoundTrip(t *testing.T) {
	events := []routing.TraceEvent{
		{At: 0, Kind: routing.TraceOriginate, Node: 0, Src: 0, Dst: 7, ID: 1, Next: routing.BroadcastID},
		{At: 1500, Kind: routing.TraceForward, Node: 0, Src: 0, Dst: 7, ID: 1, Next: 3},
		{At: 1500, Kind: routing.TraceForward, Node: 3, Src: 0, Dst: 7, ID: 1, Next: 7},
		{At: 2100, Kind: routing.TraceDeliver, Node: 7, Src: 0, Dst: 7, ID: 1, Next: 7},
		{At: 9 * time.Second, Kind: routing.TraceDrop, Node: 2, Src: 2, Dst: 5, ID: 42,
			Next: routing.BroadcastID, Reason: metrics.DropReset},
	}
	var l Log
	for _, ev := range events {
		l.Trace(ev)
	}
	got, err := l.Events()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

// TestCaptureByteIdentical: two runs of one scenario must produce
// byte-identical logs and matching fingerprints.
func TestCaptureByteIdentical(t *testing.T) {
	a, err := Capture(replayConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Capture(replayConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 {
		t.Fatal("empty trace log: scenario generated no packets")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("logs not byte-identical: %v", Diff(a, b))
	}
	if d := Diff(a, b); d != nil {
		t.Fatalf("Diff = %v, want nil", d)
	}
}

// TestPoolRecyclingByteIdentical: the pool-recycling correctness
// property. Every run-local pool (sim events, MAC air frames, data
// packets, control messages) recycles objects without zeroing them on
// Put — the next Get's caller is responsible for resetting every field
// it uses. If a recycled object ever carries a stale field into a new
// life (an old timer generation, a leftover Route hop, a Failed flag,
// an unreset TTL), the second run of a scenario sees different pool
// history than the first and its packet trace diverges. Running each
// protocol under the crash-heavy "reboot" profile — node resets are
// the densest recycle path: Stop cancels pooled timers, Reset drops
// pending pooled packets, and restarts re-Get from dirty pools — and
// byte-diffing two captures proves no stale field survived recycling.
func TestPoolRecyclingByteIdentical(t *testing.T) {
	for _, proto := range []string{"ldr", "aodv", "dsr", "olsr"} {
		t.Run(proto, func(t *testing.T) {
			spec := Spec{
				Protocol: proto, Nodes: 12, Flows: 3,
				SimTimeSec: 6, Seed: 23, Profile: "reboot",
			}
			cfg, err := spec.Config()
			if err != nil {
				t.Fatal(err)
			}
			a, err := Capture(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Capture(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a.Len() == 0 {
				t.Fatal("empty trace log: scenario generated no packets")
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("recycled state leaked between runs: %v", Diff(a, b))
			}
			if d := Diff(a, b); d != nil {
				t.Fatalf("fingerprints diverge: %v", d)
			}
		})
	}
}

// TestCaptureWorkerInvariance: capturing cells under a parallel sweep
// must produce the same per-cell log as a serial sweep — the
// nondeterminism probe the ISSUE calls for (same seed, different
// -workers).
func TestCaptureWorkerInvariance(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	capture := func(workers int) []*Log {
		logs := make([]*Log, len(seeds))
		err := sweep.Each(len(seeds), sweep.Options{Workers: workers}, func(i int) error {
			l, err := Capture(replayConfig(seeds[i]))
			if err != nil {
				return err
			}
			logs[i] = l
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return logs
	}
	serial := capture(1)
	parallel := capture(4)
	for i := range seeds {
		if d := Diff(serial[i], parallel[i]); d != nil {
			t.Fatalf("seed %d diverges across worker counts: %v", seeds[i], d)
		}
	}
}

// TestGridFastPathInvariance: shrinking the spatial grid's staleness
// window changes how receiver candidates are found but must not change
// a single delivered frame — the second nondeterminism probe (same
// seed, with/without the grid fast path's amortization).
func TestGridFastPathInvariance(t *testing.T) {
	base := replayConfig(11)
	a, err := Capture(base)
	if err != nil {
		t.Fatal(err)
	}
	tight := radio.DefaultConfig()
	tight.GridWindow = 2 * time.Millisecond // re-bucket ~50× more often
	withOverride := base
	withOverride.RadioConfig = &tight
	b, err := Capture(withOverride)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffEvents(a, b); d != nil {
		t.Fatalf("grid window changed the packet trace: %v", d)
	}
}

// diffEvents compares only the event streams, ignoring fingerprints:
// the grid-window probe legitimately changes how often positions are
// recomputed (and so simulator event counts) without being allowed to
// change any packet event.
func diffEvents(a, b *Log) *Divergence {
	ca, cb := *a, *b
	ca.Fingerprint, cb.Fingerprint = Fingerprint{}, Fingerprint{}
	return Diff(&ca, &cb)
}

// TestDiffPinpointsFirstDivergence: synthetic logs differing at a known
// position must be diffed to exactly that event index.
func TestDiffPinpointsFirstDivergence(t *testing.T) {
	mk := func(n int, mutate int) *Log {
		var l Log
		for i := 0; i < n; i++ {
			ev := routing.TraceEvent{
				At:   time.Duration(i) * time.Millisecond,
				Kind: routing.TraceForward,
				Node: routing.NodeID(i % 5), Src: 0, Dst: 9,
				ID: uint64(i), Next: routing.NodeID((i + 1) % 5),
			}
			if i == mutate {
				ev.Next = 99 // the divergent hop choice
			}
			l.Trace(ev)
		}
		return &l
	}
	a, b := mk(20, -1), mk(20, 13)
	d := Diff(a, b)
	if d == nil {
		t.Fatal("Diff = nil for diverging logs")
	}
	if d.Index != 13 {
		t.Fatalf("divergence at index %d, want 13", d.Index)
	}
	if d.A == nil || d.B == nil || d.A.Next == d.B.Next {
		t.Fatalf("divergence events not reported: %v", d)
	}

	// A strict-prefix log must report the first missing index.
	short := mk(15, -1)
	d = Diff(a, short)
	if d == nil || d.Index != 15 || d.B != nil || d.A == nil {
		t.Fatalf("prefix divergence = %v, want index 15 with only A set", d)
	}

	if d := Diff(a, mk(20, -1)); d != nil {
		t.Fatalf("identical logs diff non-nil: %v", d)
	}
}
