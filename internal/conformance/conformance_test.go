package conformance

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/fault"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/sweep"
)

// matrixSpec is one conservation cell: small enough that the full
// protocol × profile matrix stays test-sized, long enough for crash
// rounds, lossy windows, and route churn to all fire.
func matrixSpec(proto scenario.ProtocolName, profile string) Spec {
	return Spec{
		Protocol:   string(proto),
		Nodes:      15,
		Flows:      3,
		PauseSec:   0,
		SimTimeSec: 8,
		Seed:       1000,
		Profile:    profile,
		AuditMS:    100,
	}
}

// TestConservationMatrix is the acceptance sweep: all four protocols ×
// every fault profile, audited continuously, under sweep worker counts
// 1 and 8. Every cell must conserve packets exactly, never deliver more
// than was sent, and produce identical counters at both worker counts.
func TestConservationMatrix(t *testing.T) {
	var specs []Spec
	for _, proto := range scenario.AllProtocols {
		for _, profile := range fault.ProfileNames() {
			specs = append(specs, matrixSpec(proto, profile))
		}
	}

	type cell struct {
		initiated, delivered, dropped uint64
		inFlight                      int64
	}
	run := func(workers int) []cell {
		out := make([]cell, len(specs))
		err := sweep.Each(len(specs), sweep.Options{Workers: workers}, func(i int) error {
			r, err := CheckSpec(specs[i])
			if err != nil {
				return err
			}
			if r.Total > 0 {
				return fmt.Errorf("%s: %d violations, first: %v", specs[i], r.Total, r.Violations[0])
			}
			c := r.Collector
			if c.DeliveryRatio() > 1 {
				return fmt.Errorf("%s: delivery ratio %.3f > 1", specs[i], c.DeliveryRatio())
			}
			if int64(c.DataInitiated) != int64(c.DataDelivered)+int64(c.DataDropped)+c.InFlight() {
				return fmt.Errorf("%s: conservation broken: %d != %d+%d+%d",
					specs[i], c.DataInitiated, c.DataDelivered, c.DataDropped, c.InFlight())
			}
			if r.Checks == 0 {
				return fmt.Errorf("%s: auditor never ran", specs[i])
			}
			out[i] = cell{c.DataInitiated, c.DataDelivered, c.DataDropped, c.InFlight()}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}

	serial := run(1)
	parallel := run(8)
	for i := range specs {
		if serial[i] != parallel[i] {
			t.Fatalf("%s: counters differ across worker counts: %+v vs %+v",
				specs[i], serial[i], parallel[i])
		}
	}
}

// TestDeliveryRatioAtMostOneUnderEveryProfile is the chaos regression
// for the duplicate-delivery bug: under the lossy profiles the radio
// hands some frames to the MAC twice, and before destination-side
// dedup that inflated DataDelivered past DataInitiated.
func TestDeliveryRatioAtMostOneUnderEveryProfile(t *testing.T) {
	for _, profile := range fault.ProfileNames() {
		for _, proto := range scenario.AllProtocols {
			s := matrixSpec(proto, profile)
			s.Seed = 77
			r, err := CheckSpec(s)
			if err != nil {
				t.Fatal(err)
			}
			c := r.Collector
			if c.DeliveryRatio() > 1 {
				t.Fatalf("%s: delivery ratio %.3f > 1 (delivered %d > initiated %d)",
					s, c.DeliveryRatio(), c.DataDelivered, c.DataInitiated)
			}
			if c.DataDelivered > c.DataInitiated {
				t.Fatalf("%s: delivered %d > initiated %d", s, c.DataDelivered, c.DataInitiated)
			}
		}
	}
}

// TestRegressionSeeds replays every committed shrunk reproducer in
// testdata/: scenarios that violated conservation before the
// crash-wipe and duplicate-delivery fixes must now run clean.
func TestRegressionSeeds(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no regression seeds committed under testdata/")
	}
	for _, path := range files {
		s, err := LoadSpec(path)
		if err != nil {
			t.Fatal(err)
		}
		r, err := CheckSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		if r.Total > 0 {
			t.Errorf("%s (%s): %d violations, first: %v",
				filepath.Base(path), s, r.Total, r.Violations[0])
		}
		if violates(s, r) {
			t.Errorf("%s (%s): still violating", filepath.Base(path), s)
		}
	}
}

// TestFuzzSmoke is the bounded sweep wired into `make fuzz-smoke`: a
// handful of small random scenarios across all protocols and profiles
// must produce zero findings.
func TestFuzzSmoke(t *testing.T) {
	findings, err := Fuzz(Options{
		Runs:       8,
		Seed:       42,
		Workers:    4,
		MaxNodes:   20,
		MaxSimTime: 12 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("finding: %s (%d violations)", f.Spec, f.Total)
	}
}

// TestLedgerFlagsLifecycleViolations unit-tests the ledger's event
// grammar directly.
func TestLedgerFlagsLifecycleViolations(t *testing.T) {
	ev := func(kind routing.TraceEventKind, id uint64) routing.TraceEvent {
		return routing.TraceEvent{At: time.Second, Kind: kind, Src: 1, Dst: 2, ID: id}
	}

	l := NewLedger()
	l.Trace(ev(routing.TraceOriginate, 1))
	l.Trace(ev(routing.TraceDeliver, 1))
	l.Trace(ev(routing.TraceDeliver, 1)) // duplicate
	if got := l.ViolationCount(DuplicateDelivery); got != 1 {
		t.Fatalf("DuplicateDelivery = %d, want 1", got)
	}

	l.Trace(ev(routing.TraceOriginate, 2))
	l.Trace(ev(routing.TraceDrop, 2))
	l.Trace(ev(routing.TraceDrop, 2)) // late
	if got := l.ViolationCount(LateDrop); got != 1 {
		t.Fatalf("LateDrop = %d, want 1", got)
	}

	l.Trace(ev(routing.TraceOriginate, 3))
	l.Trace(ev(routing.TraceOriginate, 3)) // double originate
	if got := l.ViolationCount(DoubleOriginate); got != 1 {
		t.Fatalf("DoubleOriginate = %d, want 1", got)
	}

	l.Trace(ev(routing.TraceDeliver, 9)) // never originated
	if got := l.ViolationCount(Untracked); got != 1 {
		t.Fatalf("Untracked = %d, want 1", got)
	}

	l.Trace(ev(routing.TraceOriginate, 4))
	if l.Outstanding() != 2 { // id 3 (still in flight) and id 4
		t.Fatalf("Outstanding = %d, want 2", l.Outstanding())
	}
	if l.ViolationTotal() != 4 {
		t.Fatalf("ViolationTotal = %d, want 4", l.ViolationTotal())
	}
}

// TestShrinkRejectsCleanSpec guards the shrinker's contract: it must
// refuse to "minimize" a spec that does not violate anything.
func TestShrinkRejectsCleanSpec(t *testing.T) {
	s := matrixSpec(scenario.LDR, "none")
	if _, _, err := Shrink(s, nil); err == nil {
		t.Fatal("Shrink accepted a non-violating spec")
	}
}
