// Package conformance audits packet conservation during simulation runs
// and provides the record/replay and fuzzing machinery built on it.
//
// The paper's evaluation (§4) is a comparison of per-run counters —
// delivery ratio, network load, latency — so the counters themselves
// need an integrity argument. This package supplies it as three layers:
//
//   - a Ledger (a routing.Tracer) that follows every data packet by
//     (Src, ID) from origination to its first terminal event and flags
//     lifecycle violations: double origination, duplicate delivery,
//     drops of already-terminal packets;
//   - a Harness that, on a virtual-time cadence and at end of run,
//     cross-checks the ledger against the metrics.Collector, enforces
//     the conservation equation DataInitiated == DataDelivered +
//     DataDropped + InFlight, verifies control-packet initiated ≤
//     transmitted ledgers, and runs a census of every place a live
//     packet can legitimately wait (protocol pending buffers, MAC
//     queues, radio delay-fault registry) to catch packets that
//     vanished without an accounting event;
//   - Check, which runs a scenario under both.
//
// Census semantics are one-directional on purpose: every outstanding
// packet must be somewhere (no vanishing), but a censused packet need
// not be outstanding — under radio duplication or crash-interrupted
// ACKs, stale copies of already-terminal packets legitimately linger in
// queues until they die quietly (their terminal events are suppressed
// by first-terminal-event-wins accounting, see metrics.Collector).
// The census assumes data packets travel by unicast, which holds for
// all four protocols here; only control packets are broadcast.
package conformance

import (
	"fmt"
	"time"

	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/scenario"
)

// PacketKey identifies a data packet network-wide.
type PacketKey struct {
	Src routing.NodeID
	ID  uint64
}

// ViolationKind classifies a conservation violation.
type ViolationKind uint8

// The conservation violations the harness can detect.
const (
	// DoubleOriginate: two originate events for one (Src, ID).
	DoubleOriginate ViolationKind = iota + 1
	// DuplicateDelivery: a deliver event for an already-terminal packet.
	DuplicateDelivery
	// LateDrop: a drop event for an already-terminal packet.
	LateDrop
	// Untracked: a deliver/drop event for a packet never originated.
	Untracked
	// VanishedPacket: an outstanding packet found in no queue, buffer,
	// or delayed-delivery registry during a census.
	VanishedPacket
	// CounterMismatch: collector counters disagree with the ledger or
	// the conservation equation does not balance.
	CounterMismatch
	// ControlLedger: some control kind has initiated > transmitted.
	ControlLedger

	numViolationKinds
)

// String names the violation kind.
func (k ViolationKind) String() string {
	switch k {
	case DoubleOriginate:
		return "double-originate"
	case DuplicateDelivery:
		return "duplicate-delivery"
	case LateDrop:
		return "late-drop"
	case Untracked:
		return "untracked"
	case VanishedPacket:
		return "vanished-packet"
	case CounterMismatch:
		return "counter-mismatch"
	case ControlLedger:
		return "control-ledger"
	default:
		return "violation"
	}
}

// Violation is one detected conservation breach.
type Violation struct {
	At     time.Duration
	Kind   ViolationKind
	Key    PacketKey // zero for run-level violations
	Detail string
}

// String renders the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("%v %s pkt(src=%d,id=%d): %s", v.At, v.Kind, v.Key.Src, v.Key.ID, v.Detail)
}

// maxRecordedViolations bounds the retained Violation records; counts
// per kind are exact regardless.
const maxRecordedViolations = 64

type pktFate uint8

const (
	fateDelivered pktFate = iota + 1
	fateDropped
)

// Ledger is a routing.Tracer that follows every data packet's lifecycle
// independently of the metrics collector, so the two can be
// cross-checked against each other.
type Ledger struct {
	Originated uint64
	Delivered  uint64
	Dropped    uint64

	outstanding map[PacketKey]struct{} // originated, no terminal event yet
	terminal    map[PacketKey]pktFate  // first terminal event per packet

	records    []Violation
	kindCounts [numViolationKinds]uint64
}

var _ routing.Tracer = (*Ledger)(nil)

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		outstanding: make(map[PacketKey]struct{}),
		terminal:    make(map[PacketKey]pktFate),
	}
}

func (l *Ledger) record(v Violation) {
	l.kindCounts[v.Kind]++
	if len(l.records) < maxRecordedViolations {
		l.records = append(l.records, v)
	}
}

// Trace implements routing.Tracer.
func (l *Ledger) Trace(ev routing.TraceEvent) {
	k := PacketKey{Src: ev.Src, ID: ev.ID}
	switch ev.Kind {
	case routing.TraceOriginate:
		if _, out := l.outstanding[k]; out {
			l.record(Violation{At: ev.At, Kind: DoubleOriginate, Key: k,
				Detail: "second originate while in flight"})
			return
		}
		if _, term := l.terminal[k]; term {
			l.record(Violation{At: ev.At, Kind: DoubleOriginate, Key: k,
				Detail: "originate after terminal event"})
			return
		}
		l.outstanding[k] = struct{}{}
		l.Originated++
	case routing.TraceDeliver:
		l.Delivered++
		if _, out := l.outstanding[k]; out {
			delete(l.outstanding, k)
			l.terminal[k] = fateDelivered
			return
		}
		if fate, term := l.terminal[k]; term {
			detail := "delivered twice"
			if fate == fateDropped {
				detail = "delivered after drop"
			}
			l.record(Violation{At: ev.At, Kind: DuplicateDelivery, Key: k, Detail: detail})
			return
		}
		l.record(Violation{At: ev.At, Kind: Untracked, Key: k,
			Detail: "delivered but never originated"})
		l.terminal[k] = fateDelivered
	case routing.TraceDrop:
		l.Dropped++
		if _, out := l.outstanding[k]; out {
			delete(l.outstanding, k)
			l.terminal[k] = fateDropped
			return
		}
		if _, term := l.terminal[k]; term {
			l.record(Violation{At: ev.At, Kind: LateDrop, Key: k,
				Detail: "dropped after terminal event (reason " + ev.Reason.String() + ")"})
			return
		}
		l.record(Violation{At: ev.At, Kind: Untracked, Key: k,
			Detail: "dropped but never originated"})
		l.terminal[k] = fateDropped
	}
	// Forward events carry no ledger obligation: stale copies of a
	// terminal packet may legitimately still be relayed.
}

// Outstanding returns the number of originated packets with no terminal
// event yet.
func (l *Ledger) Outstanding() int { return len(l.outstanding) }

// Violations returns the retained violation records (capped; see
// ViolationTotal for exact counts).
func (l *Ledger) Violations() []Violation {
	return append([]Violation(nil), l.records...)
}

// ViolationCount returns the exact number of violations of one kind.
func (l *Ledger) ViolationCount(k ViolationKind) uint64 {
	if k >= numViolationKinds {
		return 0
	}
	return l.kindCounts[k]
}

// ViolationTotal returns the exact number of violations of every kind.
func (l *Ledger) ViolationTotal() uint64 {
	var sum uint64
	for _, c := range l.kindCounts {
		sum += c
	}
	return sum
}

// Harness wires a Ledger to a network and audits conservation on demand.
type Harness struct {
	nw  *routing.Network
	led *Ledger

	census     map[PacketKey]struct{}
	vanishSeen map[PacketKey]struct{} // report each vanished packet once

	// Checks counts audits performed (ticks + the final check).
	Checks uint64
}

// NewHarness builds a harness over a network. The caller must install
// Ledger() as (part of) the network's tracer before the run starts.
func NewHarness(nw *routing.Network) *Harness {
	return &Harness{
		nw:         nw,
		led:        NewLedger(),
		census:     make(map[PacketKey]struct{}),
		vanishSeen: make(map[PacketKey]struct{}),
	}
}

// Ledger returns the harness's ledger, a routing.Tracer.
func (h *Harness) Ledger() *Ledger { return h.led }

// Schedule arranges a CheckNow every cadence of virtual time until the
// given horizon, mirroring the fault auditor's cadence scheme.
func (h *Harness) Schedule(cadence, until time.Duration) {
	h.nw.Sim.Every(cadence, cadence, until, func() { h.CheckNow() })
}

// CheckNow audits conservation at the current instant: collector vs
// ledger counters, the conservation equation, control-packet ledgers,
// and the no-vanished-packets census.
func (h *Harness) CheckNow() {
	h.Checks++
	now := h.nw.Sim.Now()
	col := h.nw.Collector

	// Collector and ledger must agree event-for-event.
	if col.DataInitiated != h.led.Originated ||
		col.DataDelivered != h.led.Delivered ||
		col.DataDropped != h.led.Dropped {
		h.led.record(Violation{At: now, Kind: CounterMismatch, Detail: fmt.Sprintf(
			"collector init/del/drop %d/%d/%d vs ledger %d/%d/%d",
			col.DataInitiated, col.DataDelivered, col.DataDropped,
			h.led.Originated, h.led.Delivered, h.led.Dropped)})
	}

	// The conservation equation, with the collector's own in-flight count.
	if int64(col.DataInitiated) != int64(col.DataDelivered)+int64(col.DataDropped)+col.InFlight() {
		h.led.record(Violation{At: now, Kind: CounterMismatch, Detail: fmt.Sprintf(
			"conservation: initiated %d != delivered %d + dropped %d + in-flight %d",
			col.DataInitiated, col.DataDelivered, col.DataDropped, col.InFlight())})
	}

	// The two independent in-flight counts must agree too.
	if col.InFlight() != int64(h.led.Outstanding()) {
		h.led.record(Violation{At: now, Kind: CounterMismatch, Detail: fmt.Sprintf(
			"in-flight: collector %d vs ledger %d", col.InFlight(), h.led.Outstanding())})
	}

	// Every initiated control packet must be accounted for: transmitted,
	// discarded pre-transmission (a crash wiping a staging queue), or
	// still sitting in a protocol staging queue right now.
	var heldCtrl [metrics.NumControlKinds]uint64
	h.nw.WalkHeldControl(func(k metrics.ControlKind) {
		if k > 0 && int(k) < metrics.NumControlKinds {
			heldCtrl[k]++
		}
	})
	for k := 1; k < metrics.NumControlKinds; k++ {
		kind := metrics.ControlKind(k)
		init := col.ControlInitiated(kind)
		tx, dropped, held := col.ControlTransmitted(kind), col.ControlDropped(kind), heldCtrl[k]
		if init > tx+dropped+held {
			h.led.record(Violation{At: now, Kind: ControlLedger, Detail: fmt.Sprintf(
				"%v initiated %d > transmitted %d + dropped %d + held %d",
				kind, init, tx, dropped, held)})
		}
	}

	// Census: every outstanding packet must be held somewhere.
	clear(h.census)
	h.nw.WalkHeldData(func(p *routing.DataPacket) {
		h.census[PacketKey{Src: p.Src, ID: p.ID}] = struct{}{}
	})
	for k := range h.led.outstanding {
		if _, ok := h.census[k]; ok {
			continue
		}
		if _, seen := h.vanishSeen[k]; seen {
			continue
		}
		h.vanishSeen[k] = struct{}{}
		h.led.record(Violation{At: now, Kind: VanishedPacket, Key: k,
			Detail: "outstanding but in no MAC queue, pending buffer, or delayed delivery"})
	}
}

// Finish runs the end-of-run audit. Outstanding packets are legal at the
// end (flows can still be mid-discovery when the clock stops); vanished
// ones are not.
func (h *Harness) Finish() { h.CheckNow() }

// CheckConfig parameterizes Check.
type CheckConfig struct {
	// Cadence between mid-run audits; zero audits only at end of run.
	Cadence time.Duration
	// Tracers are additional tracers to run alongside the ledger (a
	// replay log, say).
	Tracers []routing.Tracer
}

// Report is the outcome of a checked run.
type Report struct {
	Config      scenario.Config
	Collector   *metrics.Collector
	Violations  []Violation // retained records (capped)
	Total       uint64      // exact violation count
	Checks      uint64      // audits performed
	Events      uint64      // simulator events executed
	Interrupted bool        // run stopped early by a Control
}

// Check runs one scenario under the conservation harness and reports
// every violation it detected.
func Check(cfg scenario.Config, cc CheckConfig) (Report, error) {
	return CheckControlled(cfg, cc, nil)
}

// CheckControlled is Check with an optional remote stop: the Control is
// bound to the run's simulator, so a sweep watchdog or signal handler
// can interrupt a checked run at an event boundary. A nil Control is
// Check.
func CheckControlled(cfg scenario.Config, cc CheckConfig, ctl *scenario.Control) (Report, error) {
	nw, gen, _, err := scenario.BuildInstrumented(cfg)
	if err != nil {
		return Report{}, err
	}
	ctl.Bind(nw.Sim)
	h := NewHarness(nw)
	if len(cc.Tracers) == 0 {
		nw.SetTracer(h.Ledger())
	} else {
		nw.SetTracer(append(routing.MultiTracer{h.Ledger()}, cc.Tracers...))
	}
	if cc.Cadence > 0 {
		h.Schedule(cc.Cadence, cfg.SimTime)
	}
	nw.Start()
	gen.Start()
	nw.Sim.Run(cfg.SimTime + 2*time.Second)
	nw.Stop()
	h.Finish()
	return Report{
		Config:      cfg,
		Collector:   nw.Collector,
		Violations:  h.led.Violations(),
		Total:       h.led.ViolationTotal(),
		Checks:      h.Checks,
		Events:      nw.Sim.EventsFired(),
		Interrupted: nw.Sim.Interrupted(),
	}, nil
}
