package conformance

import (
	"bytes"
	"testing"

	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/sweep"
)

// TestDiversityByteIdenticalAcrossWorkers: the new mobility models and
// traffic patterns must keep the replay guarantee the rest of the suite
// relies on — same spec, same trace, at any worker count (the
// TestPoolRecyclingByteIdentical capture-diff pattern applied to the
// scenario-diversity axes).
func TestDiversityByteIdenticalAcrossWorkers(t *testing.T) {
	specs := []Spec{
		{Protocol: "ldr", Nodes: 12, Flows: 3, SimTimeSec: 6, Seed: 31,
			Profile: "reboot", Mobility: scenario.Manhattan, Traffic: "bursty"},
		{Protocol: "aodv", Nodes: 12, Flows: 3, SimTimeSec: 6, Seed: 32,
			Profile: "mayhem", Mobility: scenario.GaussMarkov, Traffic: "reqresp", Adaptive: true},
		{Protocol: "ldr", Nodes: 12, Flows: 3, SimTimeSec: 6, Seed: 33,
			Profile: "none", Mobility: scenario.GaussMarkov, Adaptive: true},
		{Protocol: "dsr", Nodes: 12, Flows: 3, SimTimeSec: 6, Seed: 34,
			Profile: "none", Mobility: scenario.Manhattan, Traffic: "reqresp"},
		{Protocol: "ldr", Nodes: 12, Flows: 3, SimTimeSec: 6, Seed: 35,
			Profile: "reboot", Radio: scenario.RadioMixed, Density: scenario.DensityGradient},
		{Protocol: "aodv", Nodes: 12, Flows: 3, SimTimeSec: 6, Seed: 36,
			Profile: "none", Mobility: scenario.GaussMarkov, Traffic: "bursty",
			Radio: scenario.RadioAsym, Density: scenario.DensityHotspot},
		{Protocol: "olsr", Nodes: 12, Flows: 3, SimTimeSec: 6, Seed: 37,
			Profile: "none", Radio: scenario.RadioAsym},
	}
	capture := func(workers int) []*Log {
		logs := make([]*Log, len(specs))
		err := sweep.Each(len(specs), sweep.Options{Workers: workers}, func(i int) error {
			cfg, err := specs[i].Config()
			if err != nil {
				return err
			}
			l, err := Capture(cfg)
			if err != nil {
				return err
			}
			logs[i] = l
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return logs
	}
	serial := capture(1)
	parallel := capture(4)
	for i := range specs {
		if serial[i].Len() == 0 {
			t.Fatalf("%s: empty trace log", specs[i])
		}
		if !bytes.Equal(serial[i].Bytes(), parallel[i].Bytes()) {
			t.Fatalf("%s diverges across worker counts: %v", specs[i], Diff(serial[i], parallel[i]))
		}
	}
}

// TestLDRCleanAcrossDiversityMatrix: the paper's loop-freedom claim must
// survive every new mobility × traffic × fault combination — and every
// radio × density combination, where one-way links starve hello
// exchanges and route replies — and every run must still satisfy
// conservation and the vanished-packet census.
func TestLDRCleanAcrossDiversityMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in full mode only")
	}
	check := func(s Spec) {
		t.Helper()
		r, err := CheckSpec(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if r.Total > 0 {
			t.Fatalf("%s: %d conservation violations: %v", s, r.Total, r.Violations)
		}
		if r.Collector.LoopViolations > 0 {
			t.Fatalf("%s: %d loop violations", s, r.Collector.LoopViolations)
		}
		if r.Collector.DeliveryRatio() > 1 {
			t.Fatalf("%s: delivery ratio %.3f > 1", s, r.Collector.DeliveryRatio())
		}
	}
	for _, mob := range scenario.Mobilities() {
		for _, traf := range []string{"cbr", "bursty", "reqresp"} {
			for _, profile := range []string{"none", "reboot"} {
				check(Spec{
					Protocol: "ldr", Nodes: 15, Flows: 3,
					SimTimeSec: 8, Seed: 41, Profile: profile,
					Mobility: mob, Traffic: traf, Adaptive: true,
					AuditMS: 100,
				})
			}
		}
	}
	for _, rad := range scenario.Radios() {
		for _, dens := range scenario.Densities() {
			for _, profile := range []string{"none", "reboot"} {
				check(Spec{
					Protocol: "ldr", Nodes: 15, Flows: 3,
					SimTimeSec: 8, Seed: 42, Profile: profile,
					Radio: rad, Density: dens, Adaptive: true,
					AuditMS: 100,
				})
			}
		}
	}
}

// TestHeteroRadioChaosClean: the acceptance scenario for the
// heterogeneous-radio work — mixed transmit-power classes over a
// density-gradient placement, under the mayhem fault profile, must
// finish with zero conservation or census violations and zero LDR
// loop violations even though many links are one-way.
func TestHeteroRadioChaosClean(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenario in full mode only")
	}
	s := Spec{
		Protocol: "ldr", Nodes: 25, Flows: 5,
		SimTimeSec: 12, Seed: 61, Profile: "mayhem",
		Radio: scenario.RadioMixed, Density: scenario.DensityGradient,
		AuditMS: 100,
	}
	r, err := CheckSpec(s)
	if err != nil {
		t.Fatalf("%s: %v", s, err)
	}
	if r.Total > 0 {
		t.Fatalf("%s: %d conservation violations: %v", s, r.Total, r.Violations)
	}
	if r.Collector.LoopViolations > 0 {
		t.Fatalf("%s: %d loop violations", s, r.Collector.LoopViolations)
	}
}

// TestAdaptiveTimeoutConservation: adaptive lifetimes change only how
// long routes live, so the accounting invariants must hold exactly as
// they do with constant timeouts — for both protocols that implement
// the option, under faults.
func TestAdaptiveTimeoutConservation(t *testing.T) {
	for _, proto := range []string{"ldr", "aodv"} {
		s := Spec{
			Protocol: proto, Nodes: 15, Flows: 4,
			SimTimeSec: 8, Seed: 51, Profile: "mayhem",
			Adaptive: true, AuditMS: 100,
		}
		r, err := CheckSpec(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if r.Total > 0 {
			t.Fatalf("%s: %d conservation violations: %v", s, r.Total, r.Violations)
		}
		if r.Collector.DeliveryRatio() > 1 {
			t.Fatalf("%s: delivery ratio %.3f > 1", s, r.Collector.DeliveryRatio())
		}
	}
}
