package conformance

import (
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/resilience"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/scenario"
	"github.com/manetlab/ldr/internal/sweep"
)

// poisonedProto panics as soon as the network starts — a stand-in for a
// protocol bug that would otherwise abort a whole sweep.
type poisonedProto struct{}

func (poisonedProto) Start()                                        { panic("poisoned protocol: deliberate test panic") }
func (poisonedProto) HandleControl(routing.NodeID, routing.Message) {}
func (poisonedProto) HandleData(routing.NodeID, *routing.DataPacket) {
}
func (poisonedProto) Originate(*routing.DataPacket) {}
func (poisonedProto) Stop()                         {}

const poisonedName scenario.ProtocolName = "poisoned-test-proto"

func registerPoisoned(t *testing.T) {
	t.Helper()
	scenario.RegisterProtocol(poisonedName, func(*routing.Node) routing.Protocol {
		return poisonedProto{}
	})
}

// TestPanicQuarantineEndToEnd is the acceptance path for panic
// quarantine: a sweep containing a deliberately panicking protocol cell,
// run keep-going with a journal, completes its healthy cells, names the
// poisoned cell in the failure manifest, and auto-emits a reproducer
// seed that replays the panic standalone.
func TestPanicQuarantineEndToEnd(t *testing.T) {
	registerPoisoned(t)
	dir := t.TempDir()
	j, err := resilience.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	var cfgs []scenario.Config
	for seed := int64(1); seed <= 3; seed++ {
		cfg := scenario.Nodes50(scenario.LDR, 2, 0, seed)
		cfg.Nodes = 8
		cfg.SimTime = 4 * time.Second
		cfgs = append(cfgs, cfg)
	}
	poisoned := scenario.Nodes50(poisonedName, 2, 0, 99)
	poisoned.Nodes = 8
	poisoned.SimTime = 4 * time.Second
	cfgs = append(cfgs[:1], append([]scenario.Config{poisoned}, cfgs[1:]...)...) // poison cell 1

	results, err := sweep.Run(cfgs, sweep.Options{
		Workers: 2,
		Exec: sweep.ExecOptions{
			Journal:   j,
			KeepGoing: true,
			OnFailure: QuarantineEmitter(dir, t.Logf),
		},
	})
	var fs sweep.Failures
	if !errors.As(err, &fs) || len(fs) != 1 {
		t.Fatalf("err = %T %v, want one-failure sweep.Failures", err, err)
	}
	ce := fs[0]
	if ce.Index != 1 {
		t.Fatalf("quarantined cell %d, want 1", ce.Index)
	}
	if resilience.Kind(ce.Err) != "panic" {
		t.Fatalf("failure kind %q, want panic", resilience.Kind(ce.Err))
	}
	for i, r := range results {
		if i == 1 {
			if r.Collector != nil {
				t.Fatal("poisoned cell produced a result")
			}
			continue
		}
		if r.Collector == nil || r.Events == 0 {
			t.Fatalf("healthy cell %d did not complete despite quarantine", i)
		}
	}

	// The manifest names the cell and points at the reproducer.
	if ce.Repro == "" {
		t.Fatal("quarantine did not emit a reproducer")
	}
	if _, err := resilience.WriteManifest(dir, fs.Manifest("result", len(cfgs))); err != nil {
		t.Fatal(err)
	}
	m, err := resilience.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Failures) != 1 || m.Failures[0].Index != 1 || m.Failures[0].Kind != "panic" ||
		m.Failures[0].Repro != ce.Repro || !strings.Contains(m.Failures[0].Stack, "poisonedProto") {
		t.Fatalf("manifest does not name the quarantined cell: %+v", m.Failures)
	}

	// The reproducer replays the panic standalone — no sweep, no journal.
	spec, err := LoadSpec(ce.Repro)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Protocol != string(poisonedName) || spec.Seed != 99 {
		t.Fatalf("reproducer spec does not pin the poisoned cell: %+v", spec)
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("reproducer did not replay the panic")
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, "poisoned protocol") {
				t.Fatalf("reproducer panicked differently: %v", r)
			}
		}()
		_, _ = CheckSpec(spec)
	}()
}

// TestSpecFromConfigRoundTrip: a sweep cell's config folds into a Spec
// whose expansion is the identical config, so reproducers replay the
// exact cell.
func TestSpecFromConfigRoundTrip(t *testing.T) {
	cfg := scenario.Nodes50(scenario.LDR, 6, 30*time.Second, 7)
	cfg.AuditCadence = 250 * time.Millisecond
	spec, err := SpecFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Note != "" {
		t.Fatalf("lossless config produced note %q", spec.Note)
	}
	back, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, back) {
		t.Fatalf("round trip changed the config:\n have %+v\n want %+v", back, cfg)
	}

	// Non-representable knobs are disclosed, not dropped silently.
	cfg.RTSCTS = true
	spec, err = SpecFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(spec.Note, "RTS/CTS") {
		t.Fatalf("lossy fold not disclosed: note %q", spec.Note)
	}
}

// TestFuzzJournalResume: a journaled fuzz sweep killed after a partial
// pass resumes to identical findings, loading completed cells from the
// journal instead of re-simulating them.
func TestFuzzJournalResume(t *testing.T) {
	dir := t.TempDir()
	base := Options{
		Runs:        6,
		Seed:        11,
		Workers:     2,
		MaxNodes:    10,
		MaxSimTime:  6 * time.Second,
		Profiles:    []string{"none"},
		Adversaries: []string{"none"},
		Mobilities:  []string{scenario.Waypoint},
		Radios:      []string{scenario.RadioUniform},
		Densities:   []string{scenario.DensityUniform},
	}

	ref, err := Fuzz(base)
	if err != nil {
		t.Fatal(err)
	}

	// First journaled pass ("the run that got killed").
	j, err := resilience.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := base
	o.Exec = sweep.ExecOptions{Journal: j}
	if _, err := Fuzz(o); err != nil {
		t.Fatal(err)
	}
	if j.Len() != base.Runs {
		t.Fatalf("journal holds %d records, want %d", j.Len(), base.Runs)
	}

	// Resume in a "fresh process": all cells load, findings identical.
	j2, err := resilience.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var prog sweep.Progress
	o = base
	o.Exec = sweep.ExecOptions{Journal: j2}
	o.Progress = &prog
	got, err := Fuzz(o)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Loaded() != base.Runs {
		t.Fatalf("resume loaded %d of %d cells", prog.Loaded(), base.Runs)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("resumed findings differ:\n have %+v\n want %+v", got, ref)
	}
}

// TestEmitReproducerDurable: the emitted seed is content-addressed,
// valid JSON, and idempotent.
func TestEmitReproducerDurable(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Protocol: "ldr", Nodes: 8, Flows: 1, SimTimeSec: 5, Seed: 3, AuditMS: 100}
	p1, err := EmitReproducer(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := EmitReproducer(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("same spec emitted to different paths: %s vs %s", p1, p2)
	}
	loaded, err := LoadSpec(p1)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != spec {
		t.Fatalf("reproducer round trip changed the spec: %+v", loaded)
	}
	if fi, err := os.Stat(p1); err != nil || fi.Mode().Perm() != 0o644 {
		t.Fatalf("reproducer stat: %v %v", fi, err)
	}
}
