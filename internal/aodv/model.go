package aodv

// Model-checker integration: the deterministic full-state serialization
// the bounded model checker (internal/modelcheck) memoizes on. AODV has
// no VolatileResetter — its ordinary Reset already loses everything,
// which is the premise of the van Glabbeek loop the checker rediscovers.

import (
	"encoding/binary"
	"sort"

	"github.com/manetlab/ldr/internal/routing"
)

var _ routing.ModelStater = (*AODV)(nil)

// AppendModelState implements routing.ModelStater: own sequence number,
// the full routing table (invalid entries included — their stored
// sequence numbers gate RERR propagation and future installs), the
// RREQ duplicate cache, buffered data, active discoveries, repair and
// hello-liveness sets, and the request-ID counter, all sorted under the
// mapped identifiers. Expiry durations are included — AODV propagates
// remaining lifetimes in RREPs, so they are behaviour-relevant even at
// the model's frozen clock. The per-neighbor rate limiters are omitted
// (their buckets cannot empty within a bounded exploration).
func (a *AODV) AppendModelState(out []byte, mapID func(routing.NodeID) routing.NodeID) []byte {
	out = append(out, 'A')
	out = binary.AppendUvarint(out, uint64(a.ownSeq))

	type rrow struct {
		dst routing.NodeID
		e   *entry
	}
	rows := make([]rrow, 0, len(a.routes))
	for dst, e := range a.routes {
		rows = append(rows, rrow{mapID(dst), e})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].dst < rows[j].dst })
	out = binary.AppendUvarint(out, uint64(len(rows)))
	for _, r := range rows {
		e := r.e
		out = binary.AppendVarint(out, int64(r.dst))
		out = appendFlag(out, e.valid)
		out = appendFlag(out, e.haveSeq)
		out = binary.AppendUvarint(out, uint64(e.seq))
		out = binary.AppendVarint(out, int64(e.hops))
		out = binary.AppendVarint(out, int64(mapID(e.next)))
		out = binary.AppendVarint(out, int64(e.expiry))
		pre := make([]routing.NodeID, 0, len(e.precursors))
		for p := range e.precursors {
			pre = append(pre, mapID(p))
		}
		sort.Slice(pre, func(i, j int) bool { return pre[i] < pre[j] })
		out = binary.AppendUvarint(out, uint64(len(pre)))
		for _, p := range pre {
			out = binary.AppendVarint(out, int64(p))
		}
	}

	type qrow struct {
		origin routing.NodeID
		id     uint32
	}
	qrows := make([]qrow, 0, len(a.reqSeen))
	for k := range a.reqSeen {
		qrows = append(qrows, qrow{mapID(k.origin), k.id})
	}
	sort.Slice(qrows, func(i, j int) bool {
		if qrows[i].origin != qrows[j].origin {
			return qrows[i].origin < qrows[j].origin
		}
		return qrows[i].id < qrows[j].id
	})
	out = binary.AppendUvarint(out, uint64(len(qrows)))
	for _, q := range qrows {
		out = binary.AppendVarint(out, int64(q.origin))
		out = binary.AppendUvarint(out, uint64(q.id))
	}

	out = routing.AppendPendingModelState(out, a.pending, mapID)

	type arow struct {
		dst routing.NodeID
		d   *discovery
	}
	arows := make([]arow, 0, len(a.active))
	for dst, d := range a.active {
		arows = append(arows, arow{mapID(dst), d})
	}
	sort.Slice(arows, func(i, j int) bool { return arows[i].dst < arows[j].dst })
	out = binary.AppendUvarint(out, uint64(len(arows)))
	for _, r := range arows {
		out = binary.AppendVarint(out, int64(r.dst))
		out = binary.AppendUvarint(out, uint64(r.d.id))
		out = binary.AppendVarint(out, int64(r.d.ttl))
		out = binary.AppendVarint(out, int64(r.d.retries))
	}

	out = appendIDSet(out, a.repairing, mapID)
	heard := make([]routing.NodeID, 0, len(a.lastHeard))
	for nb := range a.lastHeard {
		heard = append(heard, mapID(nb))
	}
	sort.Slice(heard, func(i, j int) bool { return heard[i] < heard[j] })
	out = binary.AppendUvarint(out, uint64(len(heard)))
	for _, nb := range heard {
		out = binary.AppendVarint(out, int64(nb))
	}

	out = binary.AppendUvarint(out, uint64(a.nextReqID))
	return out
}

func appendIDSet(out []byte, set map[routing.NodeID]bool, mapID func(routing.NodeID) routing.NodeID) []byte {
	ids := make([]routing.NodeID, 0, len(set))
	for id, on := range set {
		if on {
			ids = append(ids, mapID(id))
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out = binary.AppendUvarint(out, uint64(len(ids)))
	for _, id := range ids {
		out = binary.AppendVarint(out, int64(id))
	}
	return out
}

func appendFlag(out []byte, b bool) []byte {
	if b {
		return append(out, 1)
	}
	return append(out, 0)
}
