package aodv_test

import (
	"reflect"
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/aodv"
	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/routing"
)

func buildCfgNet(model mobility.Model, seed int64, cfg aodv.Config) *routing.Network {
	return routing.NewNetwork(model.NumNodes(), model, radio.DefaultConfig(), mac.DefaultConfig(), seed,
		func(node *routing.Node) routing.Protocol {
			return aodv.New(node, cfg)
		})
}

func TestHelloRoundTrip(t *testing.T) {
	h := aodv.Hello{Origin: 7, Seq: 99}
	got, err := aodv.UnmarshalHello(h.Marshal())
	if err != nil || !reflect.DeepEqual(got, h) {
		t.Fatalf("round trip: %+v != %+v (%v)", got, h, err)
	}
}

func TestHellosOnlyFromActiveNodes(t *testing.T) {
	cfg := aodv.DefaultConfig()
	cfg.UseHello = true
	nw := buildCfgNet(mobility.Line(3, 250), 3, cfg)
	nw.Start()
	// No traffic at all: no node holds an active route, so no hellos.
	nw.Sim.Run(10 * time.Second)
	if got := nw.Collector.ControlInitiated(metrics.Hello); got != 0 {
		t.Fatalf("%d hellos beaconed with no active routes", got)
	}

	// With traffic, hellos flow.
	nw2 := buildCfgNet(mobility.Line(3, 250), 3, cfg)
	nw2.Start()
	for ts := time.Second; ts < 9*time.Second; ts += 250 * time.Millisecond {
		nw2.Sim.At(ts, func() { nw2.Nodes[0].OriginateData(2, 64) })
	}
	nw2.Sim.Run(10 * time.Second)
	if got := nw2.Collector.ControlInitiated(metrics.Hello); got == 0 {
		t.Fatal("no hellos beaconed despite active routes")
	}
}

func TestHelloLossDetectsBreak(t *testing.T) {
	// Node 2 departs; with hellos enabled, node 1 must invalidate even
	// without trying to send data (pure liveness detection).
	tracks := [][]mobility.ScriptLeg{
		{{At: 0, Pos: mobility.Point{X: 0}}},
		{{At: 0, Pos: mobility.Point{X: 250}}},
		{
			{At: 0, Pos: mobility.Point{X: 500}},
			{At: 4 * time.Second, Pos: mobility.Point{X: 500}},
			{At: 5 * time.Second, Pos: mobility.Point{X: 500, Y: 3000}},
		},
	}
	cfg := aodv.DefaultConfig()
	cfg.UseHello = true
	nw := buildCfgNet(mobility.NewScript(tracks), 4, cfg)
	nw.Start()
	// Prime the route 0→2 then stop sending entirely at t=3.5s.
	for ts := time.Second; ts < 3500*time.Millisecond; ts += 250 * time.Millisecond {
		nw.Sim.At(ts, func() { nw.Nodes[0].OriginateData(2, 64) })
	}
	nw.Sim.Run(12 * time.Second)

	if nw.Collector.ControlInitiated(metrics.RERR) == 0 {
		t.Fatal("hello loss produced no RERR")
	}
	if _, _, ok := nw.Nodes[1].Protocol().(*aodv.AODV).RouteTo(2); ok {
		t.Fatal("node 1 still routes to the silent departed neighbor")
	}
}

func TestLocalRepairAvoidsSourceRediscovery(t *testing.T) {
	// Chain 0-1-2-3 plus a bypass node 4 near the 2-3 gap. When node 3
	// drifts out of 2's range but stays within 4's, node 2 repairs
	// locally (dst was 1 hop away) and the origin never rediscovers.
	tracks := [][]mobility.ScriptLeg{
		{{At: 0, Pos: mobility.Point{X: 0}}},
		{{At: 0, Pos: mobility.Point{X: 250}}},
		{{At: 0, Pos: mobility.Point{X: 500}}},
		{ // destination drifts
			{At: 0, Pos: mobility.Point{X: 750, Y: 0}},
			{At: 4 * time.Second, Pos: mobility.Point{X: 750, Y: 0}},
			{At: 8 * time.Second, Pos: mobility.Point{X: 760, Y: 400}},
		},
		{{At: 0, Pos: mobility.Point{X: 600, Y: 220}}}, // bypass relay
	}
	run := func(repair bool) (origRREQs uint64, delivery float64) {
		cfg := aodv.DefaultConfig()
		cfg.LocalRepair = repair
		nw := buildCfgNet(mobility.NewScript(tracks), 6, cfg)
		nw.Start()
		for ts := time.Second; ts < 20*time.Second; ts += 250 * time.Millisecond {
			nw.Sim.At(ts, func() { nw.Nodes[0].OriginateData(3, 64) })
		}
		nw.Sim.Run(22 * time.Second)
		return nw.Collector.ControlInitiated(metrics.RREQ), nw.Collector.DeliveryRatio()
	}

	_, plainDelivery := run(false)
	_, repairDelivery := run(true)

	if repairDelivery < plainDelivery-0.02 {
		t.Fatalf("local repair hurt delivery: %.3f vs %.3f", repairDelivery, plainDelivery)
	}
	if repairDelivery < 0.9 {
		t.Fatalf("delivery with local repair = %.3f, want ≥ 0.9", repairDelivery)
	}
}
