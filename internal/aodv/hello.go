package aodv

import (
	"time"

	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/wire"
)

// Hello is AODV's neighbor-liveness beacon (draft-10 §8.4): a node with
// active routes broadcasts one per HelloInterval; missing several in a
// row from a next hop is treated as a link break. The paper's simulations
// rely on link-layer feedback instead (our default); hellos are provided
// for completeness and for the hello-vs-feedback comparison test.
type Hello struct {
	Origin routing.NodeID
	Seq    uint32
}

// Kind implements routing.Message.
func (Hello) Kind() metrics.ControlKind { return metrics.Hello }

// Size implements routing.Message.
func (Hello) Size() int { return helloWireSize }

// Marshal encodes the Hello to its wire format.
func (h Hello) Marshal() []byte {
	return wire.NewEncoder(wire.TypeAODVHello).
		Node(int(h.Origin)).
		U32(h.Seq).
		Bytes()
}

// UnmarshalHello decodes an AODV Hello.
func UnmarshalHello(b []byte) (Hello, error) {
	d, err := wire.NewDecoder(b, wire.TypeAODVHello)
	if err != nil {
		return Hello{}, err
	}
	var h Hello
	h.Origin = routing.NodeID(d.Node())
	h.Seq = d.U32()
	return h, d.Err()
}

// startHello begins the hello cycle (when Config.UseHello is set).
func (a *AODV) startHello() {
	phase := time.Duration(a.node.RNG().Float64() * float64(a.cfg.HelloInterval))
	a.helloTimer = a.node.Schedule(phase, a.helloTick)
}

func (a *AODV) helloTick() {
	if a.stopped {
		return
	}
	now := a.node.Now()
	// Only nodes with active routes beacon (draft-10 §8.4).
	hasActive := false
	for _, e := range a.routes {
		if e.active(now) {
			hasActive = true
			break
		}
	}
	if hasActive {
		a.ownSeq++
		a.node.Metrics().CountControlInitiate(metrics.Hello)
		h := a.helloPool.Get()
		*h = Hello{Origin: a.node.ID(), Seq: a.ownSeq}
		a.node.SendControl(routing.BroadcastID, h, nil)
	}
	a.checkNeighborLiveness(now)
	a.helloTimer = a.node.Schedule(a.cfg.HelloInterval, a.helloTick)
}

func (a *AODV) handleHello(from routing.NodeID, h Hello) {
	a.lastHeard[from] = a.node.Now()
	// A hello also refreshes (or creates) the one-hop route to the sender.
	a.installReverse(h.Origin, h.Seq, 0, from)
}

// checkNeighborLiveness declares next hops dead after AllowedHelloLoss
// silent intervals and runs the usual break handling for their routes.
func (a *AODV) checkNeighborLiveness(now time.Duration) {
	deadline := time.Duration(a.cfg.AllowedHelloLoss) * a.cfg.HelloInterval
	for nb, heard := range a.lastHeard {
		if now-heard <= deadline {
			continue
		}
		delete(a.lastHeard, nb)
		broken := a.rerrBuf[:0]
		for dst, e := range a.routes {
			if e.valid && e.next == nb {
				e.seq++
				e.valid = false
				broken = append(broken, RERRDest{Dst: dst, Seq: e.seq})
			}
		}
		a.rerrBuf = broken[:0]
		if len(broken) > 0 {
			a.sendRERR(broken)
		}
	}
}
