package aodv

import (
	"time"

	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/wire"
)

const flagUnknownSeq = 1 << 0

// Marshal encodes the RREQ to its wire format.
func (q RREQ) Marshal() []byte {
	var flags uint8
	if q.UnknownSeq {
		flags |= flagUnknownSeq
	}
	return wire.NewEncoder(wire.TypeAODVRREQ).
		U8(flags).
		Node(int(q.Dst)).
		U32(q.DstSeq).
		Node(int(q.Origin)).
		U32(q.OriginSeq).
		U32(q.ReqID).
		U8(uint8(min(q.HopCount, 255))).
		U8(uint8(max(min(q.TTL, 255), 0))).
		Bytes()
}

// UnmarshalRREQ decodes an AODV RREQ.
func UnmarshalRREQ(b []byte) (RREQ, error) {
	d, err := wire.NewDecoder(b, wire.TypeAODVRREQ)
	if err != nil {
		return RREQ{}, err
	}
	flags := d.U8()
	q := RREQ{UnknownSeq: flags&flagUnknownSeq != 0}
	q.Dst = routing.NodeID(d.Node())
	q.DstSeq = d.U32()
	q.Origin = routing.NodeID(d.Node())
	q.OriginSeq = d.U32()
	q.ReqID = d.U32()
	q.HopCount = int(d.U8())
	q.TTL = int(d.U8())
	return q, d.Err()
}

// Marshal encodes the RREP to its wire format.
func (p RREP) Marshal() []byte {
	return wire.NewEncoder(wire.TypeAODVRREP).
		Node(int(p.Dst)).
		U32(p.DstSeq).
		Node(int(p.Origin)).
		U8(uint8(min(p.HopCount, 255))).
		U32(uint32(p.Lifetime / time.Millisecond)).
		Bytes()
}

// UnmarshalRREP decodes an AODV RREP.
func UnmarshalRREP(b []byte) (RREP, error) {
	d, err := wire.NewDecoder(b, wire.TypeAODVRREP)
	if err != nil {
		return RREP{}, err
	}
	var p RREP
	p.Dst = routing.NodeID(d.Node())
	p.DstSeq = d.U32()
	p.Origin = routing.NodeID(d.Node())
	p.HopCount = int(d.U8())
	p.Lifetime = time.Duration(d.U32()) * time.Millisecond
	return p, d.Err()
}

// Marshal encodes the RERR to its wire format.
func (e RERR) Marshal() []byte {
	enc := wire.NewEncoder(wire.TypeAODVRERR).U16(uint16(len(e.Unreachable)))
	for _, u := range e.Unreachable {
		enc.Node(int(u.Dst)).U32(u.Seq)
	}
	return enc.Bytes()
}

// UnmarshalRERR decodes an AODV RERR.
func UnmarshalRERR(b []byte) (RERR, error) {
	d, err := wire.NewDecoder(b, wire.TypeAODVRERR)
	if err != nil {
		return RERR{}, err
	}
	n := int(d.U16())
	var e RERR
	for i := 0; i < n; i++ {
		e.Unreachable = append(e.Unreachable, RERRDest{
			Dst: routing.NodeID(d.Node()),
			Seq: d.U32(),
		})
	}
	return e, d.Err()
}
