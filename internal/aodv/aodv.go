// Package aodv implements the Ad hoc On-demand Distance Vector protocol
// (Perkins, Belding-Royer, Das — draft-ietf-manet-aodv-10), the primary
// baseline in the LDR paper.
//
// AODV's loop-freedom rests entirely on per-destination sequence numbers:
// a node that loses a route increments its *stored copy* of the
// destination's sequence number before rediscovering, which prevents any
// upstream node from answering with stale state — but also silences
// downstream nodes that still hold perfectly good loop-free routes with
// the prior number. That asymmetry (and the resulting sequence-number
// inflation, Fig. 7 of the paper) is exactly what LDR's feasible-distance
// label removes.
package aodv

import (
	"time"

	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/runpool"
	"github.com/manetlab/ldr/internal/sim"
)

// Config carries AODV's protocol constants (draft-10 defaults).
type Config struct {
	ActiveRouteTimeout time.Duration
	MyRouteTimeout     time.Duration
	NodeTraversalTime  time.Duration
	NetDiameter        int
	TTLStart           int
	TTLIncrement       int
	TTLThreshold       int
	RREQRetries        int
	RREQCacheLife      time.Duration
	MaxQueuedPerDest   int
	BroadcastJitter    time.Duration
	DestinationOnly    bool // D flag: only the destination may answer
	GratuitousRREP     bool // notify the destination on intermediate replies

	// UseHello enables periodic HELLO beacons for neighbor liveness in
	// place of relying solely on MAC-layer feedback (draft-10 §8.4).
	UseHello         bool
	HelloInterval    time.Duration
	AllowedHelloLoss int

	// LocalRepair lets a relay close to the destination repair a broken
	// route in place with a small-TTL discovery instead of dropping the
	// packet and pushing a RERR all the way upstream (draft-10 §8.12).
	LocalRepair   bool
	MaxRepairHops int

	// Per-neighbor control hardening (internal/adversary): RREQs and
	// RERRs arriving from one neighbor faster than these token-bucket
	// rates are discarded on receipt, bounding the reach of a control
	// storm to the attacker's own links. The defaults sit far above any
	// benign per-neighbor rate (a neighbor relays each flood once), so
	// honest discovery is untouched; zero disables a limiter.
	RREQRatePerNeighbor float64 // sustained RREQs/sec accepted per neighbor
	RREQRateBurst       int     // bucket depth for RREQ bursts
	RERRRatePerNeighbor float64 // sustained RERRs/sec accepted per neighbor
	RERRRateBurst       int     // bucket depth for RERR bursts

	// AdaptiveTimeout derives route lifetimes from observed discovery
	// round-trip times (routing.RTTEstimator) in place of the constant
	// ActiveRouteTimeout, which stays as the pre-sample fallback — the
	// adaptive delay-based timeout scheme from the AODV literature.
	AdaptiveTimeout bool
}

// DefaultConfig returns the draft-10 defaults used in the paper's
// simulations.
func DefaultConfig() Config {
	return Config{
		ActiveRouteTimeout: 3 * time.Second,
		MyRouteTimeout:     6 * time.Second,
		NodeTraversalTime:  40 * time.Millisecond,
		NetDiameter:        35,
		TTLStart:           2,
		TTLIncrement:       2,
		TTLThreshold:       7,
		RREQRetries:        2,
		RREQCacheLife:      6 * time.Second,
		MaxQueuedPerDest:   16,
		BroadcastJitter:    10 * time.Millisecond,

		HelloInterval:    time.Second,
		AllowedHelloLoss: 2,
		MaxRepairHops:    3,

		RREQRatePerNeighbor: 20,
		RREQRateBurst:       40,
		RERRRatePerNeighbor: 10,
		RERRRateBurst:       20,
	}
}

// RREQ is an AODV route request.
type RREQ struct {
	Dst        routing.NodeID
	DstSeq     uint32
	UnknownSeq bool
	Origin     routing.NodeID
	OriginSeq  uint32
	ReqID      uint32
	HopCount   int
	TTL        int
}

// Kind implements routing.Message.
func (RREQ) Kind() metrics.ControlKind { return metrics.RREQ }

// Size implements routing.Message: arithmetic wire size, pinned to
// len(Marshal()) by the wire tests.
func (RREQ) Size() int { return rreqWireSize }

// RREP is an AODV route reply.
type RREP struct {
	Dst      routing.NodeID
	DstSeq   uint32
	Origin   routing.NodeID
	HopCount int
	Lifetime time.Duration
}

// Kind implements routing.Message.
func (RREP) Kind() metrics.ControlKind { return metrics.RREP }

// Size implements routing.Message.
func (RREP) Size() int { return rrepWireSize }

// RERRDest names one newly unreachable destination.
type RERRDest struct {
	Dst routing.NodeID
	Seq uint32 // the incremented sequence number
}

// RERR reports broken routes.
type RERR struct {
	Unreachable []RERRDest
}

// Kind implements routing.Message.
func (RERR) Kind() metrics.ControlKind { return metrics.RERR }

// Size implements routing.Message.
func (e RERR) Size() int { return rerrWireBase + rerrWirePerDest*len(e.Unreachable) }

// Wire sizes of the fixed-layout encodings (type byte included); pinned
// against Marshal by the wire round-trip tests.
const (
	rreqWireSize    = 1 + 1 + 4 + 4 + 4 + 4 + 4 + 1 + 1
	rrepWireSize    = 1 + 4 + 4 + 4 + 1 + 4
	rerrWireBase    = 1 + 2
	rerrWirePerDest = 4 + 4
	helloWireSize   = 1 + 4 + 4
)

// entry is one AODV routing-table row.
type entry struct {
	seq        uint32
	haveSeq    bool
	hops       int
	next       routing.NodeID
	valid      bool
	expiry     time.Duration
	precursors map[routing.NodeID]struct{}
}

func (e *entry) active(now time.Duration) bool {
	return e != nil && e.valid && e.expiry > now
}

func (e *entry) refresh(now, lifetime time.Duration) {
	if exp := now + lifetime; exp > e.expiry {
		e.expiry = exp
	}
}

type reqKey struct {
	origin routing.NodeID
	id     uint32
}

type discovery struct {
	id      uint32
	ttl     int
	retries int
	timer   sim.Timer
	sentAt  time.Duration // when the latest RREQ attempt left, for RTT
}

// AODV is one node's protocol instance.
type AODV struct {
	node *routing.Node
	cfg  Config

	ownSeq     uint32
	routes     map[routing.NodeID]*entry
	reqSeen    map[reqKey]time.Duration
	pending    map[routing.NodeID][]*routing.DataPacket
	active     map[routing.NodeID]*discovery
	lastHeard  map[routing.NodeID]time.Duration // hello liveness per neighbor
	repairing  map[routing.NodeID]bool          // destinations under local repair
	helloTimer sim.Timer
	nextReqID  uint32
	stopped    bool

	rreqLimiter *routing.RateLimiter
	rerrLimiter *routing.RateLimiter

	rtt *routing.RTTEstimator // nil unless cfg.AdaptiveTimeout

	// Free lists for outgoing control messages (recycled by the node
	// layer once the carrying frame is released) and a scratch buffer
	// for assembling RERR destination lists.
	rreqPool  runpool.Pool[RREQ]
	rrepPool  runpool.Pool[RREP]
	rerrPool  runpool.Pool[RERR]
	helloPool runpool.Pool[Hello]
	rerrBuf   []RERRDest
}

var (
	_ routing.Protocol           = (*AODV)(nil)
	_ routing.TableSnapshotter   = (*AODV)(nil)
	_ routing.TableAppender      = (*AODV)(nil)
	_ routing.Resetter           = (*AODV)(nil)
	_ routing.DataFailureHandler = (*AODV)(nil)
	_ routing.MessageRecycler    = (*AODV)(nil)
)

// New builds an AODV instance bound to a node.
func New(node *routing.Node, cfg Config) *AODV {
	a := &AODV{
		node:      node,
		cfg:       cfg,
		routes:    make(map[routing.NodeID]*entry),
		reqSeen:   make(map[reqKey]time.Duration),
		pending:   make(map[routing.NodeID][]*routing.DataPacket),
		active:    make(map[routing.NodeID]*discovery),
		lastHeard: make(map[routing.NodeID]time.Duration),
		repairing: make(map[routing.NodeID]bool),

		rreqLimiter: routing.NewRateLimiter(cfg.RREQRatePerNeighbor, cfg.RREQRateBurst),
		rerrLimiter: routing.NewRateLimiter(cfg.RERRRatePerNeighbor, cfg.RERRRateBurst),
	}
	if cfg.AdaptiveTimeout {
		a.rtt = routing.NewRTTEstimator()
	}
	return a
}

// RTT exposes the adaptive-timeout estimator (nil when disabled), for
// tests and experiment diagnostics.
func (a *AODV) RTT() *routing.RTTEstimator { return a.rtt }

// lifetime returns the route lifetime for a path of hops hops: adaptive
// when enabled and samples exist, the constant otherwise.
func (a *AODV) lifetime(hops int) time.Duration {
	if a.rtt == nil {
		return a.cfg.ActiveRouteTimeout
	}
	return a.rtt.Lifetime(hops, a.cfg.ActiveRouteTimeout)
}

// Start implements routing.Protocol.
func (a *AODV) Start() {
	if a.cfg.UseHello {
		a.startHello()
	}
}

// Stop implements routing.Protocol.
func (a *AODV) Stop() {
	a.stopped = true
	for _, d := range a.active {
		d.timer.Cancel()
	}
	a.helloTimer.Cancel()
}

// Reset implements routing.Resetter: a crash loses everything, including
// the node's own sequence number — draft-10 AODV keeps it in volatile
// memory, and this loss is the premise of the van Glabbeek et al. loop
// construction ("Sequence Numbers Do Not Guarantee Loop Freedom"): the
// rebooted node must solicit with UnknownSeq set, so a neighbor holding a
// stale route *through* it may answer and close a cycle. Only nextReqID
// survives, as a stand-in for the randomized RREQ ID real implementations
// pick at boot; keeping it monotone stops neighbors' reqSeen caches from
// eating the first post-reboot discovery, which is a simulation artifact
// rather than protocol behaviour.
func (a *AODV) Reset() {
	for _, d := range a.active {
		d.timer.Cancel()
	}
	a.helloTimer.Cancel()
	a.helloTimer = sim.Timer{}
	for _, q := range a.pending {
		for _, pkt := range q {
			a.node.DropData(pkt, routing.DropReset)
		}
	}
	a.ownSeq = 0
	a.routes = make(map[routing.NodeID]*entry)
	a.reqSeen = make(map[reqKey]time.Duration)
	a.pending = make(map[routing.NodeID][]*routing.DataPacket)
	a.active = make(map[routing.NodeID]*discovery)
	a.lastHeard = make(map[routing.NodeID]time.Duration)
	a.repairing = make(map[routing.NodeID]bool)
	a.rreqLimiter.Reset()
	a.rerrLimiter.Reset()
	if a.rtt != nil {
		a.rtt.Reset()
	}
}

// WalkHeldData implements routing.HeldDataWalker: the only data packets
// AODV holds are those buffered while route discovery runs.
func (a *AODV) WalkHeldData(fn func(*routing.DataPacket)) {
	for _, q := range a.pending {
		for _, pkt := range q {
			fn(pkt)
		}
	}
}

// --- data plane ---

// Originate implements routing.Protocol.
func (a *AODV) Originate(pkt *routing.DataPacket) { a.sendOrQueue(pkt) }

// HandleData implements routing.Protocol.
func (a *AODV) HandleData(from routing.NodeID, pkt *routing.DataPacket) {
	if pkt.Dst == a.node.ID() {
		a.node.DeliverLocal(pkt)
		return
	}
	pkt.TTL--
	if pkt.TTL <= 0 {
		a.node.DropData(pkt, routing.DropTTL)
		return
	}
	a.sendOrQueue(pkt)
}

func (a *AODV) sendOrQueue(pkt *routing.DataPacket) {
	now := a.node.Now()
	e := a.routes[pkt.Dst]
	if e.active(now) {
		e.refresh(now, a.lifetime(e.hops))
		a.node.SendData(e.next, pkt)
		return
	}
	if pkt.Src == a.node.ID() {
		a.queuePacket(pkt)
		a.solicit(pkt.Dst)
		return
	}
	dst := pkt.Dst
	a.node.DropData(pkt, routing.DropNoRoute)
	// A relay with no route reports the destination unreachable so that
	// upstream holders of the stale route purge it.
	seq := uint32(0)
	if e != nil {
		seq = e.seq + 1
	}
	a.rerrBuf = append(a.rerrBuf[:0], RERRDest{Dst: dst, Seq: seq})
	a.sendRERR(a.rerrBuf)
}

func (a *AODV) queuePacket(pkt *routing.DataPacket) {
	q := a.pending[pkt.Dst]
	if len(q) >= a.cfg.MaxQueuedPerDest {
		a.node.DropData(q[0], routing.DropQueueOverflow)
		q = q[1:]
	}
	a.pending[pkt.Dst] = append(q, pkt)
}

func (a *AODV) flushPending(dst routing.NodeID) {
	delete(a.repairing, dst)
	q := a.pending[dst]
	if len(q) == 0 {
		return
	}
	delete(a.pending, dst)
	for _, pkt := range q {
		a.sendOrQueue(pkt)
	}
}

// DataFailed implements routing.DataFailureHandler: the MAC exhausted its
// retries toward next, returning the packet's ownership to the protocol.
func (a *AODV) DataFailed(next routing.NodeID, pkt *routing.DataPacket) {
	a.linkFailure(next, pkt)
}

// RecycleMessage implements routing.MessageRecycler: the node layer hands
// back a control message once its frame is fully released.
func (a *AODV) RecycleMessage(msg routing.Message) {
	switch m := msg.(type) {
	case *RREQ:
		a.rreqPool.Put(m)
	case *RREP:
		a.rrepPool.Put(m)
	case *RERR:
		m.Unreachable = m.Unreachable[:0] // keep capacity for reuse
		a.rerrPool.Put(m)
	case *Hello:
		a.helloPool.Put(m)
	}
}

// sendRREQ, sendRREP: wrap a handler-built value in a pooled message for
// the wire. The pooled object belongs to the frame until recycled.
func (a *AODV) sendRREQ(to routing.NodeID, q RREQ) {
	m := a.rreqPool.Get()
	*m = q
	a.node.SendControl(to, m, nil)
}

func (a *AODV) sendRREP(to routing.NodeID, p RREP) {
	m := a.rrepPool.Get()
	*m = p
	a.node.SendControl(to, m, func() { a.rrepFailed(to) })
}

// rrepFailed handles a MAC-failed RREP unicast toward next. Reverse
// routes are installed from broadcast RREQs, which need no return link —
// so on a one-way link the reply rides a route that never worked, and
// draft AODV would lose it silently (the bidirectionality assumption the
// AWN formalization calls out). Treat it as the link failure it is:
// invalidate every route through next with the usual seqno bump and RERR,
// so upstream nodes stop soliciting answers across a dead reverse path.
func (a *AODV) rrepFailed(next routing.NodeID) {
	if a.stopped {
		return
	}
	broken := a.rerrBuf[:0]
	for dst, e := range a.routes {
		if e.valid && e.next == next {
			e.seq++
			e.valid = false
			broken = append(broken, RERRDest{Dst: dst, Seq: e.seq})
		}
	}
	a.rerrBuf = broken[:0]
	if len(broken) > 0 {
		a.sendRERR(broken)
	}
}

// linkFailure invalidates routes through the broken next hop. AODV
// increments each invalidated destination's stored sequence number — the
// mechanism whose side effects the LDR paper analyzes.
func (a *AODV) linkFailure(next routing.NodeID, pkt *routing.DataPacket) {
	if a.stopped {
		return
	}
	broken := a.rerrBuf[:0]
	for dst, e := range a.routes {
		if e.valid && e.next == next {
			e.seq++
			e.valid = false
			broken = append(broken, RERRDest{Dst: dst, Seq: e.seq})
		}
	}
	a.rerrBuf = broken[:0]
	if pkt.Src != a.node.ID() && a.cfg.LocalRepair && a.canRepair(pkt.Dst) {
		// Local repair: hold the RERR, buffer the packet, and try a
		// small-TTL rediscovery from here (the stored seq was already
		// incremented above, so stale upstream state cannot answer).
		a.queuePacket(pkt)
		a.repairing[pkt.Dst] = true
		a.solicit(pkt.Dst)
		// Report the other broken destinations normally.
		var others []RERRDest
		for _, b := range broken {
			if b.Dst != pkt.Dst {
				others = append(others, b)
			}
		}
		if len(others) > 0 {
			a.sendRERR(others)
		}
		return
	}
	if len(broken) > 0 {
		a.sendRERR(broken)
	}
	if pkt.Src == a.node.ID() {
		a.queuePacket(pkt)
		a.solicit(pkt.Dst)
	} else {
		a.node.DropData(pkt, routing.DropLinkBreak)
	}
}

// canRepair limits local repair to destinations that were recently close
// (draft-10 bounds the repair to MAX_REPAIR_TTL).
func (a *AODV) canRepair(dst routing.NodeID) bool {
	e := a.routes[dst]
	return e != nil && e.hops > 0 && e.hops <= a.cfg.MaxRepairHops
}

// --- route discovery ---

func (a *AODV) solicit(dst routing.NodeID) {
	if a.stopped || dst == a.node.ID() {
		return
	}
	if _, ok := a.active[dst]; ok {
		return
	}
	a.nextReqID++
	d := &discovery{id: a.nextReqID, ttl: a.initialTTL(dst)}
	a.active[dst] = d
	a.broadcastRREQ(dst, d)
}

func (a *AODV) initialTTL(dst routing.NodeID) int {
	if e := a.routes[dst]; e != nil && e.hops > 0 {
		ttl := e.hops + a.cfg.TTLIncrement
		if ttl > a.cfg.NetDiameter {
			ttl = a.cfg.NetDiameter
		}
		return ttl
	}
	return a.cfg.TTLStart
}

func (a *AODV) broadcastRREQ(dst routing.NodeID, d *discovery) {
	// "When node A sends a route request for a destination, it increases
	// the sequence number for itself as well."
	a.ownSeq++
	q := RREQ{
		Dst:        dst,
		UnknownSeq: true,
		Origin:     a.node.ID(),
		OriginSeq:  a.ownSeq,
		ReqID:      d.id,
		TTL:        d.ttl,
	}
	if e := a.routes[dst]; e != nil && e.haveSeq {
		q.DstSeq = e.seq
		q.UnknownSeq = false
	}
	a.node.Metrics().CountControlInitiate(metrics.RREQ)
	d.sentAt = a.node.Now()
	a.sendRREQ(routing.BroadcastID, q)

	timeout := 2 * time.Duration(d.ttl) * a.cfg.NodeTraversalTime
	d.timer = a.node.Schedule(timeout, func() { a.discoveryTimeout(dst, d) })
}

func (a *AODV) discoveryTimeout(dst routing.NodeID, d *discovery) {
	if a.stopped || a.active[dst] != d {
		return
	}
	if d.ttl >= a.cfg.NetDiameter || (a.repairing[dst] && d.retries > 0) {
		d.retries++
		if d.retries > a.cfg.RREQRetries || a.repairing[dst] {
			delete(a.active, dst)
			for _, pkt := range a.pending[dst] {
				a.node.DropData(pkt, routing.DropNoRoute)
			}
			delete(a.pending, dst)
			if a.repairing[dst] {
				// Repair failed: emit the deferred RERR.
				delete(a.repairing, dst)
				if e := a.routes[dst]; e != nil {
					a.sendRERR([]RERRDest{{Dst: dst, Seq: e.seq}})
				}
			}
			return
		}
	} else {
		d.ttl += a.cfg.TTLIncrement
		if d.ttl > a.cfg.TTLThreshold {
			d.ttl = a.cfg.NetDiameter
		}
	}
	a.nextReqID++
	d.id = a.nextReqID
	a.broadcastRREQ(dst, d)
}

// --- control plane ---

// HandleControl implements routing.Protocol.
func (a *AODV) HandleControl(from routing.NodeID, msg routing.Message) {
	if a.stopped {
		return
	}
	// The wire carries pooled pointers; tests and the adversary layer may
	// still construct value messages directly.
	switch m := msg.(type) {
	case *RREQ:
		a.handleRREQ(from, *m)
	case *RREP:
		a.handleRREP(from, *m)
	case *RERR:
		a.handleRERR(from, *m)
	case *Hello:
		a.handleHello(from, *m)
	case RREQ:
		a.handleRREQ(from, m)
	case RREP:
		a.handleRREP(from, m)
	case RERR:
		a.handleRERR(from, m)
	case Hello:
		a.handleHello(from, m)
	}
}

func (a *AODV) handleRREQ(from routing.NodeID, q RREQ) {
	me := a.node.ID()
	if q.Origin == me {
		return
	}
	now := a.node.Now()
	if !a.rreqLimiter.Allow(from, now) {
		a.node.Metrics().RREQSuppressed++
		return
	}
	key := reqKey{origin: q.Origin, id: q.ReqID}
	if _, seen := a.reqSeen[key]; seen {
		return
	}
	a.reqSeen[key] = now
	a.node.Schedule(a.cfg.RREQCacheLife, func() {
		if t, ok := a.reqSeen[key]; ok && now == t {
			delete(a.reqSeen, key)
		}
	})

	a.installReverse(q.Origin, q.OriginSeq, q.HopCount, from)

	if q.Dst == me {
		// RFC: update own sequence number to max(own, requested).
		if !q.UnknownSeq && q.DstSeq > a.ownSeq {
			a.ownSeq = q.DstSeq
		}
		a.reply(RREP{
			Dst:      me,
			DstSeq:   a.ownSeq,
			Origin:   q.Origin,
			HopCount: 0,
			Lifetime: a.cfg.MyRouteTimeout,
		}, q.Origin)
		return
	}

	e := a.routes[q.Dst]
	canAnswer := !a.cfg.DestinationOnly && e.active(now) && e.haveSeq &&
		(!q.UnknownSeq && e.seq >= q.DstSeq || q.UnknownSeq)
	if canAnswer {
		// Intermediate reply: the sequence-number ordering guarantees no
		// node upstream of the breakpoint can answer, because the origin
		// incremented the stored number past anything they hold.
		e.precursor(from)
		a.reply(RREP{
			Dst:      q.Dst,
			DstSeq:   e.seq,
			Origin:   q.Origin,
			HopCount: e.hops,
			Lifetime: e.expiry - now,
		}, q.Origin)
		if a.cfg.GratuitousRREP {
			a.gratuitousRREP(q, e, now)
		}
		return
	}

	q.TTL--
	if q.TTL <= 0 {
		return
	}
	q.HopCount++
	// Relays advertise the highest destination sequence number they know.
	if e != nil && e.haveSeq && (q.UnknownSeq || e.seq > q.DstSeq) {
		q.DstSeq = e.seq
		q.UnknownSeq = false
	}
	rq := q
	jitter := time.Duration(a.node.RNG().Float64() * float64(a.cfg.BroadcastJitter))
	a.node.Schedule(jitter, func() {
		if a.stopped {
			return
		}
		a.sendRREQ(routing.BroadcastID, rq)
	})
}

// reply unicasts a RREP toward origin along the reverse route.
func (a *AODV) reply(p RREP, origin routing.NodeID) {
	rev := a.routes[origin]
	if !rev.active(a.node.Now()) {
		return
	}
	a.node.Metrics().CountControlInitiate(metrics.RREP)
	a.sendRREP(rev.next, p)
}

// gratuitousRREP tells the destination about the origin when an
// intermediate node short-circuits discovery, so reverse traffic works.
func (a *AODV) gratuitousRREP(q RREQ, e *entry, now time.Duration) {
	g := RREP{
		Dst:      q.Origin,
		DstSeq:   q.OriginSeq,
		Origin:   q.Dst,
		HopCount: q.HopCount,
		Lifetime: a.cfg.ActiveRouteTimeout,
	}
	a.node.Metrics().CountControlInitiate(metrics.RREP)
	a.sendRREP(e.next, g)
}

func (a *AODV) handleRREP(from routing.NodeID, p RREP) {
	me := a.node.ID()
	now := a.node.Now()

	usable := false
	if p.Dst != me {
		usable = a.installForward(p, from)
		if usable {
			a.node.Metrics().RREPUsable++
			a.flushPending(p.Dst)
		}
	}

	if p.Origin == me {
		if d, ok := a.active[p.Dst]; ok && usable {
			if a.rtt != nil {
				// One discovery round trip over HopCount+1 hops. A reply
				// racing a ring retry measures against the latest attempt,
				// slightly under-reporting — harmless for a windowed mean.
				a.rtt.Observe(now-d.sentAt, p.HopCount+1)
			}
			d.timer.Cancel()
			delete(a.active, p.Dst)
		}
		return
	}

	// Forward along the reverse route toward the origin.
	rev := a.routes[p.Origin]
	if !rev.active(now) {
		return
	}
	fwd := p
	fwd.HopCount++
	if e := a.routes[p.Dst]; e != nil {
		e.precursor(rev.next)
	}
	rev.refresh(now, a.lifetime(rev.hops))
	a.sendRREP(rev.next, fwd)
}

func (a *AODV) handleRERR(from routing.NodeID, e RERR) {
	if !a.rerrLimiter.Allow(from, a.node.Now()) {
		a.node.Metrics().RERRSuppressed++
		return
	}
	propagate := a.rerrBuf[:0]
	for _, u := range e.Unreachable {
		ent := a.routes[u.Dst]
		if ent != nil && ent.valid && ent.next == from {
			if u.Seq > ent.seq {
				ent.seq = u.Seq
			}
			ent.valid = false
			propagate = append(propagate, RERRDest{Dst: u.Dst, Seq: ent.seq})
		}
	}
	a.rerrBuf = propagate[:0]
	if len(propagate) > 0 {
		a.sendRERR(propagate)
	}
}

// sendRERR copies the broken-destination list into a pooled RERR; the
// caller's slice (typically a.rerrBuf) is free for reuse on return.
func (a *AODV) sendRERR(broken []RERRDest) {
	a.node.Metrics().CountControlInitiate(metrics.RERR)
	m := a.rerrPool.Get()
	m.Unreachable = append(m.Unreachable[:0], broken...)
	a.node.SendControl(routing.BroadcastID, m, nil)
}

// --- routing table updates ---

// installReverse creates/updates the reverse route to a RREQ origin.
func (a *AODV) installReverse(origin routing.NodeID, seq uint32, hops int, via routing.NodeID) {
	if origin == a.node.ID() {
		return
	}
	now := a.node.Now()
	d := hops + 1
	e := a.routes[origin]
	if e == nil {
		a.routes[origin] = &entry{
			seq: seq, haveSeq: true, hops: d, next: via, valid: true,
			expiry:     now + a.lifetime(d),
			precursors: make(map[routing.NodeID]struct{}),
		}
		return
	}
	if !e.haveSeq || seq > e.seq || (seq == e.seq && (!e.active(now) || d < e.hops)) {
		e.seq, e.haveSeq = seq, true
		e.hops = d
		e.next = via
		e.valid = true
		e.refresh(now, a.lifetime(d))
	}
}

// installForward applies the RREP acceptance rule (draft-10 §8.7): accept
// if the sequence number is newer, or equally new with an invalid or
// longer current route.
func (a *AODV) installForward(p RREP, via routing.NodeID) bool {
	now := a.node.Now()
	d := p.HopCount + 1
	life := p.Lifetime
	if life <= 0 {
		life = a.cfg.ActiveRouteTimeout
	}
	e := a.routes[p.Dst]
	if e == nil {
		a.routes[p.Dst] = &entry{
			seq: p.DstSeq, haveSeq: true, hops: d, next: via, valid: true,
			expiry:     now + life,
			precursors: make(map[routing.NodeID]struct{}),
		}
		return true
	}
	accept := !e.haveSeq || p.DstSeq > e.seq ||
		(p.DstSeq == e.seq && (!e.active(now) || d < e.hops))
	if !accept {
		return false
	}
	e.seq, e.haveSeq = p.DstSeq, true
	e.hops = d
	e.next = via
	e.valid = true
	e.expiry = now + life
	return true
}

func (e *entry) precursor(n routing.NodeID) {
	if e.precursors == nil {
		e.precursors = make(map[routing.NodeID]struct{})
	}
	e.precursors[n] = struct{}{}
}

// --- observability ---

// SnapshotTable implements routing.TableSnapshotter.
func (a *AODV) SnapshotTable() []routing.RouteEntry {
	return a.AppendTable(make([]routing.RouteEntry, 0, len(a.routes)))
}

// AppendTable implements routing.TableAppender.
func (a *AODV) AppendTable(out []routing.RouteEntry) []routing.RouteEntry {
	now := a.node.Now()
	for dst, e := range a.routes {
		out = append(out, routing.RouteEntry{
			Dst:    dst,
			Next:   e.next,
			Metric: e.hops,
			SeqNo:  uint64(e.seq),
			Valid:  e.active(now),
		})
	}
	return out
}

// ReportSeqnos records every stored destination sequence number plus the
// node's own (Fig. 7: AODV's numbers inflate with mobility; LDR's do not).
func (a *AODV) ReportSeqnos(col *metrics.Collector) {
	col.ObserveSeqno(float64(a.ownSeq))
	for _, e := range a.routes {
		if e.haveSeq {
			col.ObserveSeqno(float64(e.seq))
		}
	}
}

// RouteTo exposes (next hop, hop count, ok) for tests and examples.
func (a *AODV) RouteTo(dst routing.NodeID) (routing.NodeID, int, bool) {
	e := a.routes[dst]
	if !e.active(a.node.Now()) {
		return 0, 0, false
	}
	return e.next, e.hops, true
}

// OwnSeq exposes the node's own sequence number.
func (a *AODV) OwnSeq() uint32 { return a.ownSeq }
