package aodv_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/aodv"
	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/metrics"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/routing"
	"github.com/manetlab/ldr/internal/scenario"
)

func buildNet(model mobility.Model, seed int64) *routing.Network {
	return routing.NewNetwork(model.NumNodes(), model, radio.DefaultConfig(), mac.DefaultConfig(), seed,
		func(node *routing.Node) routing.Protocol {
			return aodv.New(node, aodv.DefaultConfig())
		})
}

func aodvAt(nw *routing.Network, id int) *aodv.AODV {
	return nw.Nodes[id].Protocol().(*aodv.AODV)
}

// TestRouteBreakInflatesStoredSequenceNumbers captures AODV's defining
// side effect (and the paper's Fig. 7 contrast with LDR): invalidating a
// route increments the *stored* destination sequence number — a third
// party changing the destination's number.
func TestRouteBreakInflatesStoredSequenceNumbers(t *testing.T) {
	tracks := [][]mobility.ScriptLeg{
		{{At: 0, Pos: mobility.Point{X: 0}}},
		{{At: 0, Pos: mobility.Point{X: 250}}},
		{
			{At: 0, Pos: mobility.Point{X: 500}},
			{At: 3 * time.Second, Pos: mobility.Point{X: 500}},
			{At: 5 * time.Second, Pos: mobility.Point{X: 500, Y: 3000}},
		},
	}
	nw := routing.NewNetwork(3, mobility.NewScript(tracks), radio.DefaultConfig(), mac.DefaultConfig(), 4,
		func(node *routing.Node) routing.Protocol {
			return aodv.New(node, aodv.DefaultConfig())
		})
	nw.Start()
	for ts := time.Second; ts < 10*time.Second; ts += 250 * time.Millisecond {
		nw.Sim.At(ts, func() { nw.Nodes[0].OriginateData(2, 64) })
	}

	var seqWhileRouted, destIssued uint64
	nw.Sim.At(2*time.Second, func() {
		for _, e := range aodvAt(nw, 1).SnapshotTable() {
			if e.Dst == 2 {
				seqWhileRouted = e.SeqNo
			}
		}
	})
	nw.Sim.Run(15 * time.Second)
	destIssued = uint64(aodvAt(nw, 2).OwnSeq())

	var seqAfterBreak uint64
	for _, e := range aodvAt(nw, 1).SnapshotTable() {
		if e.Dst == 2 {
			seqAfterBreak = e.SeqNo
		}
	}
	if seqAfterBreak <= seqWhileRouted {
		t.Fatalf("stored seq did not inflate on break: %d -> %d", seqWhileRouted, seqAfterBreak)
	}
	if seqAfterBreak <= destIssued {
		t.Fatalf("stored seq %d should exceed what the destination issued (%d) — the third-party increment",
			seqAfterBreak, destIssued)
	}
}

// TestIntermediateReplyRequiresFreshEnoughSeq: a relay may answer only
// with a sequence number at least as new as the request's.
func TestIntermediateReplySuppressedAfterBreak(t *testing.T) {
	// Chain 0-1-2-3. Prime routes 0→3. Then break 2-3 (node 3 leaves);
	// node 0's rediscovery carries seq+1, which node 1's stale entry can
	// no longer answer — the flood must travel on.
	tracks := [][]mobility.ScriptLeg{
		{{At: 0, Pos: mobility.Point{X: 0}}},
		{{At: 0, Pos: mobility.Point{X: 250}}},
		{{At: 0, Pos: mobility.Point{X: 500}}},
		{
			{At: 0, Pos: mobility.Point{X: 750}},
			{At: 4 * time.Second, Pos: mobility.Point{X: 750}},
			{At: 6 * time.Second, Pos: mobility.Point{X: 750, Y: 3000}},
		},
	}
	nw := routing.NewNetwork(4, mobility.NewScript(tracks), radio.DefaultConfig(), mac.DefaultConfig(), 6,
		func(node *routing.Node) routing.Protocol {
			return aodv.New(node, aodv.DefaultConfig())
		})
	nw.Start()
	for ts := time.Second; ts < 20*time.Second; ts += 250 * time.Millisecond {
		nw.Sim.At(ts, func() { nw.Nodes[0].OriginateData(3, 64) })
	}
	nw.Sim.Run(25 * time.Second)

	// Node 3 is gone for good: nobody may keep claiming a route to it.
	if _, _, ok := aodvAt(nw, 0).RouteTo(3); ok {
		t.Fatal("node 0 still has an active route to the departed node")
	}
	if _, _, ok := aodvAt(nw, 1).RouteTo(3); ok {
		t.Fatal("node 1 (stale relay) still answers for the departed node")
	}
	if nw.Collector.ControlInitiated(metrics.RERR) == 0 {
		t.Fatal("no RERR initiated on the break")
	}
}

// TestAODVSeqnoExceedsLDRs quantifies the Fig. 7 mechanism in a single
// mobile scenario: same workload, same mobility — AODV's mean stored
// sequence number must exceed LDR's by a wide margin.
func TestAODVSeqnoExceedsLDRs(t *testing.T) {
	runOne := func(proto scenario.ProtocolName) float64 {
		cfg := scenario.Nodes50(proto, 10, 0, 5)
		cfg.Nodes = 25
		cfg.SimTime = 120 * time.Second
		res, err := scenario.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Collector.MeanSeqno()
	}
	aodvMean := runOne(scenario.AODV)
	ldrMean := runOne(scenario.LDR)
	if aodvMean < 2*ldrMean || aodvMean < 1 {
		t.Fatalf("seqno separation missing: AODV %.2f vs LDR %.2f", aodvMean, ldrMean)
	}
}

// TestDestinationAdoptsRequestedSeq: on answering a RREQ, the destination
// must raise its own number to the maximum of its current one and the
// (possibly third-party-inflated) requested one — the adoption rule that
// lets AODV's numbers ratchet upward network-wide.
func TestDestinationAdoptsRequestedSeq(t *testing.T) {
	nw := buildNet(mobility.Line(2, 250), 8)
	nw.Start()
	dest := aodvAt(nw, 1)
	nw.Sim.Schedule(0, func() {
		dest.HandleControl(0, aodv.RREQ{
			Dst:       1,
			DstSeq:    41, // an upstream node inflated this across breaks
			Origin:    0,
			OriginSeq: 1,
			ReqID:     7,
			TTL:       3,
		})
	})
	nw.Sim.Run(time.Second)

	if got := dest.OwnSeq(); got < 41 {
		t.Fatalf("destination's own seq = %d, must adopt the requested 41", got)
	}
}
