package aodv_test

import (
	"testing"
	"time"

	"github.com/manetlab/ldr/internal/aodv"
	"github.com/manetlab/ldr/internal/mac"
	"github.com/manetlab/ldr/internal/mobility"
	"github.com/manetlab/ldr/internal/radio"
	"github.com/manetlab/ldr/internal/routing"
)

func chain(n int, seed int64) *routing.Network {
	return routing.NewNetwork(n, mobility.Line(n, 250), radio.DefaultConfig(), mac.DefaultConfig(), seed,
		func(node *routing.Node) routing.Protocol {
			return aodv.New(node, aodv.DefaultConfig())
		})
}

func TestAODVDeliversAlongChain(t *testing.T) {
	nw := chain(5, 1)
	nw.Start()
	for i := 0; i < 20; i++ {
		i := i
		nw.Sim.At(time.Duration(i)*100*time.Millisecond, func() {
			nw.Nodes[0].OriginateData(4, 512)
		})
	}
	nw.Sim.Run(10 * time.Second)

	c := nw.Collector
	if c.DataDelivered < 19 {
		t.Fatalf("delivered %d of %d", c.DataDelivered, c.DataInitiated)
	}
}

func TestAODVOriginSeqGrowsPerRREQ(t *testing.T) {
	nw := chain(3, 7)
	nw.Start()
	// Two separated discoveries (route expires in between).
	nw.Sim.At(0, func() { nw.Nodes[0].OriginateData(2, 64) })
	nw.Sim.At(8*time.Second, func() { nw.Nodes[0].OriginateData(2, 64) })
	nw.Sim.Run(15 * time.Second)

	p := nw.Nodes[0].Protocol().(*aodv.AODV)
	if p.OwnSeq() < 2 {
		t.Fatalf("own seq = %d, want ≥ 2 (one increment per RREQ)", p.OwnSeq())
	}
}
