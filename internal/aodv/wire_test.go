package aodv

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/manetlab/ldr/internal/routing"
)

func TestRREQRoundTrip(t *testing.T) {
	f := func(dst, origin int32, dstSeq, originSeq, reqID uint32, hop, ttl uint8, unknown bool) bool {
		q := RREQ{
			Dst: routing.NodeID(dst), DstSeq: dstSeq, UnknownSeq: unknown,
			Origin: routing.NodeID(origin), OriginSeq: originSeq,
			ReqID: reqID, HopCount: int(hop), TTL: int(ttl),
		}
		got, err := UnmarshalRREQ(q.Marshal())
		return err == nil && reflect.DeepEqual(got, q)
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRREPRoundTrip(t *testing.T) {
	p := RREP{Dst: 9, DstSeq: 17, Origin: 3, HopCount: 4, Lifetime: 2500 * time.Millisecond}
	got, err := UnmarshalRREP(p.Marshal())
	if err != nil || !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip: %+v != %+v (%v)", got, p, err)
	}
}

func TestRERRRoundTrip(t *testing.T) {
	e := RERR{Unreachable: []RERRDest{{Dst: 1, Seq: 2}, {Dst: 3, Seq: 4}}}
	got, err := UnmarshalRERR(e.Marshal())
	if err != nil || !reflect.DeepEqual(got, e) {
		t.Fatalf("round trip: %+v != %+v (%v)", got, e, err)
	}
}

func TestSizesMatchEncodings(t *testing.T) {
	msgs := []routing.Message{
		RREQ{TTL: 3},
		RREP{},
		RERR{Unreachable: make([]RERRDest, 2)},
	}
	for _, m := range msgs {
		var enc []byte
		switch v := m.(type) {
		case RREQ:
			enc = v.Marshal()
		case RREP:
			enc = v.Marshal()
		case RERR:
			enc = v.Marshal()
		}
		if m.Size() != len(enc) {
			t.Fatalf("%T.Size() = %d, encoding is %d bytes", m, m.Size(), len(enc))
		}
	}
}
