package routing

import "time"

// RateLimiter is a per-neighbor token bucket over virtual time, the
// hardening primitive behind RREQ rate limiting and RERR damping: a
// compromised neighbor flooding control packets exhausts its own bucket
// while every other neighbor's stays full, so the storm is contained to
// one link without throttling honest discovery. A nil limiter allows
// everything, so protocols can hold one pointer and skip the feature
// when the configured rate is zero.
type RateLimiter struct {
	rate    float64 // tokens replenished per second of virtual time
	burst   float64 // bucket capacity
	buckets map[NodeID]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Duration
}

// NewRateLimiter returns a limiter granting each source up to burst
// immediate tokens, replenished at rate per second. A non-positive rate
// or burst disables limiting: nil is returned and nil.Allow always
// grants.
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	if rate <= 0 || burst <= 0 {
		return nil
	}
	return &RateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[NodeID]*tokenBucket),
	}
}

// Allow takes one token from the source's bucket, reporting whether one
// was available at virtual time now.
func (r *RateLimiter) Allow(from NodeID, now time.Duration) bool {
	if r == nil {
		return true
	}
	b := r.buckets[from]
	if b == nil {
		b = &tokenBucket{tokens: r.burst, last: now}
		r.buckets[from] = b
	} else {
		b.tokens += (now - b.last).Seconds() * r.rate
		if b.tokens > r.burst {
			b.tokens = r.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Reset empties the limiter's per-neighbor state (a crash loses it with
// the rest of volatile memory).
func (r *RateLimiter) Reset() {
	if r == nil {
		return
	}
	clear(r.buckets)
}
